/**
 * @file
 * Figure 9(a): speedup of the (manually programmed) prefetcher as a
 * function of the PPU clock, 250 MHz to 2 GHz, with 12 PPUs.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 9(a): speedup vs PPU clock, 12 PPUs (scale "
              << scale << ") ===\n";

    struct Freq
    {
        const char *name;
        Tick period;
    };
    const std::vector<Freq> freqs = {
        {"250MHz", 64}, {"500MHz", 32}, {"1GHz", 16}, {"2GHz", 8}};

    std::vector<std::string> header = {"Benchmark"};
    for (const auto &f : freqs)
        header.push_back(f.name);
    TextTable table(header);

    BaselineCache base(scale);
    std::map<std::string, std::vector<double>> per_freq;

    for (const auto &wl : workloadNames()) {
        std::vector<std::string> row = {wl};
        for (const auto &f : freqs) {
            RunConfig cfg = baseConfig(Technique::kManual, scale);
            cfg.ppf.ppuPeriod = f.period;
            RunResult r = runExperiment(wl, cfg);
            double s = static_cast<double>(base.cycles(wl)) /
                       static_cast<double>(r.cycles);
            per_freq[f.name].push_back(s);
            row.push_back(TextTable::num(s) + "x");
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gm = {"geomean"};
    for (const auto &f : freqs)
        gm.push_back(TextTable::num(geomean(per_freq[f.name])) + "x");
    table.addRow(std::move(gm));

    table.print(std::cout);
    std::cout << "\npaper: about half the workloads are insensitive to "
                 "PPU clock; HJ-2 needs 500MHz;\n"
                 "ConjGrad and G500-CSR keep scaling; majority of benefit "
                 "reached at 1GHz.\n";
    return 0;
}
