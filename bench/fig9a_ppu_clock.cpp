/**
 * @file
 * Figure 9(a): speedup of the (manually programmed) prefetcher as a
 * function of the PPU clock, 250 MHz to 2 GHz, with 12 PPUs.  One
 * baseline plus four clock points per workload, swept in parallel over
 * identical inputs.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 9(a): speedup vs PPU clock, 12 PPUs (scale "
              << scale << ") ===\n";

    struct Freq
    {
        const char *name;
        Tick period;
    };
    const std::vector<Freq> freqs = {
        {"250MHz", 64}, {"500MHz", 32}, {"1GHz", 16}, {"2GHz", 8}};
    const auto workloads = workloadNames();
    const std::size_t ncols = 1 + freqs.size(); // baseline + clock points

    SweepEngine engine = makeEngine();
    for (const auto &wl : workloads) {
        engine.add(wl, baseConfig(Technique::kNone, scale), "baseline");
        for (const auto &f : freqs) {
            RunConfig cfg = baseConfig(Technique::kManual, scale);
            cfg.ppf.ppuPeriod = f.period;
            engine.add(wl, cfg, f.name, Technique::kNone);
        }
    }
    const auto outcomes = engine.run();
    requireAllOk(outcomes);

    std::vector<std::string> header = {"Benchmark"};
    for (const auto &f : freqs)
        header.push_back(f.name);
    TextTable table(header);

    std::map<std::string, std::vector<double>> per_freq;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const RunResult &base = outcomes[wi * ncols].result;
        std::vector<std::string> row = {workloads[wi]};
        for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
            const RunResult &r = outcomes[wi * ncols + 1 + fi].result;
            double s = speedupOver(base.cycles, r);
            per_freq[freqs[fi].name].push_back(s);
            row.push_back(TextTable::num(s) + "x");
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gm = {"geomean"};
    for (const auto &f : freqs)
        gm.push_back(TextTable::num(geomean(per_freq[f.name])) + "x");
    table.addRow(std::move(gm));

    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: about half the workloads are insensitive to "
                 "PPU clock; HJ-2 needs 500MHz;\n"
                 "ConjGrad and G500-CSR keep scaling; majority of benefit "
                 "reached at 1GHz.\n";
    return 0;
}
