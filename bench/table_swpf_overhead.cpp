/**
 * @file
 * Section 7.1 dynamic-instruction overhead of software prefetching: the
 * paper reports +113% for IntSort, +83% for RandAcc and +56% for HJ-2 —
 * the cost the programmable prefetcher moves off the main core.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Software-prefetch dynamic instruction overhead "
                 "(scale "
              << scale << ") ===\n";

    TextTable table({"Benchmark", "instrs (plain)", "instrs (swpf)",
                     "overhead"});

    for (const auto &wl : workloadNames()) {
        RunResult plain =
            runExperiment(wl, baseConfig(Technique::kNone, scale));
        RunResult sw =
            runExperiment(wl, baseConfig(Technique::kSoftware, scale));
        if (!sw.available) {
            table.addRow({wl, std::to_string(plain.instrs), "n/a", "n/a"});
            continue;
        }
        double ov = (static_cast<double>(sw.instrs) /
                         static_cast<double>(plain.instrs) -
                     1.0) * 100.0;
        table.addRow({wl, std::to_string(plain.instrs),
                      std::to_string(sw.instrs),
                      TextTable::num(ov, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "\npaper: IntSort +113%, RandAcc +83%, HJ-2 +56%.\n";
    return 0;
}
