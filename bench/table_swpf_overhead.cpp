/**
 * @file
 * Section 7.1 dynamic-instruction overhead of software prefetching: the
 * paper reports +113% for IntSort, +83% for RandAcc and +56% for HJ-2 —
 * the cost the programmable prefetcher moves off the main core.  Plain
 * and software-prefetch runs sweep in parallel on identical inputs.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Software-prefetch dynamic instruction overhead "
                 "(scale "
              << scale << ") ===\n";

    const std::vector<Technique> techs = {Technique::kNone,
                                          Technique::kSoftware};
    const auto workloads = workloadNames();

    SweepEngine engine = makeEngine();
    engine.addGrid(workloads, techs, baseConfig(Technique::kNone, scale),
                   Technique::kNone);
    const auto outcomes = engine.run();
    requireAllOk(outcomes);

    TextTable table({"Benchmark", "instrs (plain)", "instrs (swpf)",
                     "overhead"});

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const RunResult &plain = outcomes[wi * 2].result;
        const RunResult &sw = outcomes[wi * 2 + 1].result;
        if (!sw.available) {
            table.addRow({workloads[wi], std::to_string(plain.instrs),
                          "n/a", "n/a"});
            continue;
        }
        double ov = (static_cast<double>(sw.instrs) /
                         static_cast<double>(plain.instrs) -
                     1.0) * 100.0;
        table.addRow({workloads[wi], std::to_string(plain.instrs),
                      std::to_string(sw.instrs),
                      TextTable::num(ov, 1) + "%"});
    }
    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: IntSort +113%, RandAcc +83%, HJ-2 +56%.\n";
    return 0;
}
