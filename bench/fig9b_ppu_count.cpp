/**
 * @file
 * Figure 9(b): G500-CSR speedup for 3/6/12 PPUs across PPU clocks from
 * 125 MHz to 4 GHz — doubling the unit count should match doubling the
 * clock, since prefetch events are embarrassingly parallel.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv(0.1);
    std::cout << "=== Figure 9(b): G500-CSR speedup vs PPUs x clock "
                 "(scale "
              << scale << ") ===\n";

    struct Freq
    {
        const char *name;
        Tick period;
    };
    const std::vector<Freq> freqs = {{"125MHz", 128}, {"250MHz", 64},
                                     {"500MHz", 32},  {"1GHz", 16},
                                     {"2GHz", 8},     {"4GHz", 4}};
    const std::vector<unsigned> ppus = {3, 6, 12};

    std::vector<std::string> header = {"PPUs"};
    for (const auto &f : freqs)
        header.push_back(f.name);
    TextTable table(header);

    BaselineCache base(scale);
    std::uint64_t base_cycles = base.cycles("G500-CSR");

    for (unsigned n : ppus) {
        std::vector<std::string> row = {std::to_string(n)};
        for (const auto &f : freqs) {
            RunConfig cfg = baseConfig(Technique::kManual, scale);
            cfg.ppf.numPpus = n;
            cfg.ppf.ppuPeriod = f.period;
            RunResult r = runExperiment("G500-CSR", cfg);
            row.push_back(TextTable::num(static_cast<double>(base_cycles) /
                                         static_cast<double>(r.cycles)) +
                          "x");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\npaper: 3 PPUs @2GHz ~ 6 @1GHz ~ 12 @500MHz; "
                 "saturates by 12 PPUs @2GHz.\n";
    return 0;
}
