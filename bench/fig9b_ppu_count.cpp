/**
 * @file
 * Figure 9(b): G500-CSR speedup for 3/6/12 PPUs across PPU clocks from
 * 125 MHz to 4 GHz — doubling the unit count should match doubling the
 * clock, since prefetch events are embarrassingly parallel.  The 18-cell
 * grid plus baseline runs as one parallel sweep.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv(0.1);
    std::cout << "=== Figure 9(b): G500-CSR speedup vs PPUs x clock "
                 "(scale "
              << scale << ") ===\n";

    struct Freq
    {
        const char *name;
        Tick period;
    };
    const std::vector<Freq> freqs = {{"125MHz", 128}, {"250MHz", 64},
                                     {"500MHz", 32},  {"1GHz", 16},
                                     {"2GHz", 8},     {"4GHz", 4}};
    const std::vector<unsigned> ppus = {3, 6, 12};
    const std::string wl = "G500-CSR";

    SweepEngine engine = makeEngine();
    engine.add(wl, baseConfig(Technique::kNone, scale), "baseline");
    for (unsigned n : ppus) {
        for (const auto &f : freqs) {
            RunConfig cfg = baseConfig(Technique::kManual, scale);
            cfg.ppf.numPpus = n;
            cfg.ppf.ppuPeriod = f.period;
            engine.add(wl, cfg, std::to_string(n) + "ppu/" + f.name,
                       Technique::kNone);
        }
    }
    const auto outcomes = engine.run();
    requireAllOk(outcomes);
    const std::uint64_t base_cycles = outcomes[0].result.cycles;

    std::vector<std::string> header = {"PPUs"};
    for (const auto &f : freqs)
        header.push_back(f.name);
    TextTable table(header);

    for (std::size_t ni = 0; ni < ppus.size(); ++ni) {
        std::vector<std::string> row = {std::to_string(ppus[ni])};
        for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
            const RunResult &r =
                outcomes[1 + ni * freqs.size() + fi].result;
            row.push_back(TextTable::num(speedupOver(base_cycles, r)) +
                          "x");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: 3 PPUs @2GHz ~ 6 @1GHz ~ 12 @500MHz; "
                 "saturates by 12 PPUs @2GHz.\n";
    return 0;
}
