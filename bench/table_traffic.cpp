/**
 * @file
 * Section 7.1 "Extra Memory Accesses": DRAM accesses with the
 * programmable prefetcher relative to no prefetching.  The paper reports
 * negligible overhead except G500-List (+40%) and G500-CSR (+16%).
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Extra memory accesses with the programmable "
                 "prefetcher (scale "
              << scale << ") ===\n";

    TextTable table({"Benchmark", "DRAM reads (none)", "DRAM reads (PPF)",
                     "extra"});

    for (const auto &wl : workloadNames()) {
        RunResult none =
            runExperiment(wl, baseConfig(Technique::kNone, scale));
        RunResult ppf =
            runExperiment(wl, baseConfig(Technique::kManual, scale));
        double extra = none.dramReads > 0
                           ? (static_cast<double>(ppf.dramReads) /
                                  static_cast<double>(none.dramReads) -
                              1.0) * 100.0
                           : 0.0;
        table.addRow({wl, std::to_string(none.dramReads),
                      std::to_string(ppf.dramReads),
                      TextTable::num(extra, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "\npaper: negligible except G500-List +40% (no "
                 "fine-grained parallelism) and G500-CSR +16%\n"
                 "(lookahead overestimated relative to the EWMAs).\n";
    return 0;
}
