/**
 * @file
 * Section 7.1 "Extra Memory Accesses": DRAM accesses with the
 * programmable prefetcher relative to no prefetching.  The paper reports
 * negligible overhead except G500-List (+40%) and G500-CSR (+16%).
 * Both runs per workload sweep in parallel on identical inputs.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Extra memory accesses with the programmable "
                 "prefetcher (scale "
              << scale << ") ===\n";

    const std::vector<Technique> techs = {Technique::kNone,
                                          Technique::kManual};
    const auto workloads = workloadNames();

    SweepEngine engine = makeEngine();
    engine.addGrid(workloads, techs, baseConfig(Technique::kNone, scale),
                   Technique::kNone);
    const auto outcomes = engine.run();
    requireAllOk(outcomes);

    TextTable table({"Benchmark", "DRAM reads (none)", "DRAM reads (PPF)",
                     "extra"});

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const RunResult &none = outcomes[wi * 2].result;
        const RunResult &ppf = outcomes[wi * 2 + 1].result;
        double extra = none.dramReads > 0
                           ? (static_cast<double>(ppf.dramReads) /
                                  static_cast<double>(none.dramReads) -
                              1.0) * 100.0
                           : 0.0;
        table.addRow({workloads[wi], std::to_string(none.dramReads),
                      std::to_string(ppf.dramReads),
                      TextTable::num(extra, 1) + "%"});
    }
    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: negligible except G500-List +40% (no "
                 "fine-grained parallelism) and G500-CSR +16%\n"
                 "(lookahead overestimated relative to the EWMAs).\n";
    return 0;
}
