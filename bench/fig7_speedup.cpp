/**
 * @file
 * Figure 7: speedups over no prefetching for every benchmark under
 * stride, GHB (regular/large), software prefetching, and the
 * programmable prefetcher programmed via pragma / conversion / manual
 * events.  "n/a" marks modes the paper also reports as impossible
 * (PageRank software prefetch and conversion).
 *
 * All (workload x technique) runs execute as one parallel sweep; every
 * column of a workload shares the kNone-derived seed so speedups and
 * checksums compare runs over identical inputs.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 7: speedup over no prefetching (scale "
              << scale << ") ===\n";

    const std::vector<Technique> techs = {
        Technique::kNone,      Technique::kStride,
        Technique::kGhbRegular, Technique::kGhbLarge,
        Technique::kSoftware,  Technique::kPragma,
        Technique::kConverted, Technique::kManual,
    };
    const auto workloads = workloadNames();

    SweepEngine engine = makeEngine();
    engine.addGrid(workloads, techs, baseConfig(Technique::kNone, scale),
                   Technique::kNone);
    const auto outcomes = engine.run();
    requireAllOk(outcomes);
    const std::size_t ncols = techs.size();

    std::vector<std::string> header = {"Benchmark"};
    for (std::size_t ti = 1; ti < techs.size(); ++ti)
        header.push_back(techniqueName(techs[ti]));
    TextTable table(header);

    std::map<Technique, std::vector<double>> speedups;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const RunResult &base = outcomes[wi * ncols].result;
        std::vector<std::string> row = {workloads[wi]};
        for (std::size_t ti = 1; ti < techs.size(); ++ti) {
            const RunResult &r = outcomes[wi * ncols + ti].result;
            if (!r.available) {
                row.push_back("n/a");
                continue;
            }
            if (r.checksum != base.checksum) {
                row.push_back("BADSUM");
                continue;
            }
            double s = speedupOver(base.cycles, r);
            speedups[techs[ti]].push_back(s);
            row.push_back(TextTable::num(s) + "x");
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> gm = {"geomean"};
    for (std::size_t ti = 1; ti < techs.size(); ++ti)
        gm.push_back(TextTable::num(geomean(speedups[techs[ti]])) + "x");
    table.addRow(std::move(gm));

    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: stride <=1.4x, GHB(regular) ~1.0x, GHB(large) "
                 "helps only G500-List/ConjGrad,\n"
                 "software <=2.2x, manual up to 4.3x (geomean 3.0x), "
                 "converted ~manual except Graph500,\n"
                 "pragma trails on G500-*, HJ-8 and RandAcc.\n";
    return 0;
}
