/**
 * @file
 * Figure 7: speedups over no prefetching for every benchmark under
 * stride, GHB (regular/large), software prefetching, and the
 * programmable prefetcher programmed via pragma / conversion / manual
 * events.  "n/a" marks modes the paper also reports as impossible
 * (PageRank software prefetch and conversion).
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 7: speedup over no prefetching (scale "
              << scale << ") ===\n";

    const std::vector<Technique> techs = {
        Technique::kStride,    Technique::kGhbRegular,
        Technique::kGhbLarge,  Technique::kSoftware,
        Technique::kPragma,    Technique::kConverted,
        Technique::kManual,
    };

    std::vector<std::string> header = {"Benchmark"};
    for (auto t : techs)
        header.push_back(techniqueName(t));
    TextTable table(header);

    BaselineCache base(scale);
    std::map<Technique, std::vector<double>> speedups;

    for (const auto &wl : workloadNames()) {
        std::vector<std::string> row = {wl};
        std::uint64_t base_cycles = base.cycles(wl);
        for (auto t : techs) {
            RunResult r = runExperiment(wl, baseConfig(t, scale));
            if (!r.available) {
                row.push_back("n/a");
                continue;
            }
            if (r.checksum != base.checksum(wl)) {
                row.push_back("BADSUM");
                continue;
            }
            double s = static_cast<double>(base_cycles) /
                       static_cast<double>(r.cycles);
            speedups[t].push_back(s);
            row.push_back(TextTable::num(s) + "x");
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> gm = {"geomean"};
    for (auto t : techs)
        gm.push_back(TextTable::num(geomean(speedups[t])) + "x");
    table.addRow(std::move(gm));

    table.print(std::cout);
    std::cout << "\npaper: stride <=1.4x, GHB(regular) ~1.0x, GHB(large) "
                 "helps only G500-List/ConjGrad,\n"
                 "software <=2.2x, manual up to 4.3x (geomean 3.0x), "
                 "converted ~manual except Graph500,\n"
                 "pragma trails on G500-*, HJ-8 and RandAcc.\n";
    return 0;
}
