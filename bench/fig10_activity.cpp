/**
 * @file
 * Figure 10: per-PPU activity factors (12 PPUs at 1 GHz, lowest-ID-first
 * scheduling): min / quartiles / median / max of the fraction of time
 * each unit is awake.  One manual-technique run per workload, swept in
 * parallel.
 */

#include "bench_common.hpp"

#include "sim/stats.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 10: PPU activity factors, 12 PPUs @ 1GHz "
                 "(scale "
              << scale << ") ===\n";

    const auto workloads = workloadNames();

    SweepEngine engine = makeEngine();
    engine.addGrid(workloads, {Technique::kManual},
                   baseConfig(Technique::kManual, scale),
                   Technique::kNone);
    const auto outcomes = engine.run();
    requireAllOk(outcomes);

    TextTable table({"Benchmark", "min", "q1", "median", "q3", "max",
                     "idle PPUs"});

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const RunResult &r = outcomes[wi].result;
        SampleSummary s = SampleSummary::of(r.ppuActivity);
        unsigned idle = 0;
        for (double a : r.ppuActivity)
            idle += a == 0.0 ? 1 : 0;
        table.addRow({workloads[wi], TextTable::num(s.min),
                      TextTable::num(s.q1), TextTable::num(s.median),
                      TextTable::num(s.q3), TextTable::num(s.max),
                      std::to_string(idle)});
    }
    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: lowest-ID-first skews work onto low PPUs; "
                 "PageRank/RandAcc/IntSort leave at least one PPU\n"
                 "unused; no PPU runs continuously (max factor 0.82).\n";
    return 0;
}
