/**
 * @file
 * Figure 10: per-PPU activity factors (12 PPUs at 1 GHz, lowest-ID-first
 * scheduling): min / quartiles / median / max of the fraction of time
 * each unit is awake.
 */

#include "bench_common.hpp"

#include "sim/stats.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 10: PPU activity factors, 12 PPUs @ 1GHz "
                 "(scale "
              << scale << ") ===\n";

    TextTable table({"Benchmark", "min", "q1", "median", "q3", "max",
                     "idle PPUs"});

    for (const auto &wl : workloadNames()) {
        RunResult r =
            runExperiment(wl, baseConfig(Technique::kManual, scale));
        SampleSummary s = SampleSummary::of(r.ppuActivity);
        unsigned idle = 0;
        for (double a : r.ppuActivity)
            idle += a == 0.0 ? 1 : 0;
        table.addRow({wl, TextTable::num(s.min), TextTable::num(s.q1),
                      TextTable::num(s.median), TextTable::num(s.q3),
                      TextTable::num(s.max), std::to_string(idle)});
    }
    table.print(std::cout);
    std::cout << "\npaper: lowest-ID-first skews work onto low PPUs; "
                 "PageRank/RandAcc/IntSort leave at least one PPU\n"
                 "unused; no PPU runs continuously (max factor 0.82).\n";
    return 0;
}
