/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own components:
 * event-queue throughput, cache access path, PPU interpreter and the
 * compiler pass.  These measure the *host* cost of simulation, useful
 * when scaling inputs.
 */

#include <benchmark/benchmark.h>

#include "compiler/ir.hpp"
#include "compiler/passes.hpp"
#include "isa/builder.hpp"
#include "isa/interpreter.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        epf::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<epf::Tick>(i * 7 % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheHits(benchmark::State &state)
{
    epf::EventQueue eq;
    epf::DramParams dp;
    epf::Dram dram(eq, dp);
    epf::CacheParams cp;
    cp.sizeBytes = 32 * 1024;
    cp.ways = 2;
    cp.mshrs = 12;
    epf::Cache cache(eq, cp, dram);
    // Warm one line.
    cache.demandAccess(true, 0x1000, 0x1000, [] {});
    eq.run();

    for (auto _ : state) {
        cache.demandAccess(true, 0x1000, 0x1000, [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHits);

void
BM_Interpreter(benchmark::State &state)
{
    epf::KernelBuilder b("bench");
    b.vaddr(1).gread(2, 0).sub(1, 1, 2).shri(1, 1, 3).addi(1, 1, 16)
        .shli(1, 1, 3).add(1, 1, 2).prefetch(1).halt();
    epf::Kernel k = b.build();
    std::uint64_t globals[epf::kGlobalRegs] = {0x10000};
    epf::EventContext ctx;
    ctx.vaddr = 0x10400;
    ctx.globalRegs = globals;

    for (auto _ : state) {
        auto res = epf::Interpreter::run(k, ctx,
                                         [](const epf::PrefetchEmit &) {});
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Interpreter);

void
BM_ConversionPass(benchmark::State &state)
{
    for (auto _ : state) {
        epf::LoopIR ir;
        epf::IrNode *a = ir.addArray("A", 0x10000, 8, 4096);
        epf::IrNode *b = ir.addArray("B", 0x80000, 8, 4096);
        epf::IrNode *c = ir.addArray("C", 0xC0000, 8, 4096);
        epf::IrNode *x = ir.indVar();
        epf::IrNode *a2 = ir.loadForSwpf(
            ir.index(a, ir.bin(epf::IrBin::kAdd, x, ir.cnst(16)), 8), 8,
            "A");
        epf::IrNode *b2 = ir.loadForSwpf(ir.index(b, a2, 8), 8, "B");
        ir.swpf(ir.index(c, b2, 8));
        auto res = epf::convertSoftwarePrefetches(ir);
        benchmark::DoNotOptimize(res.ok);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConversionPass);

void
BM_Rng(benchmark::State &state)
{
    epf::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Rng);

} // namespace

BENCHMARK_MAIN();
