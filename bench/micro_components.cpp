/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own components:
 * event-queue throughput, cache access path, PPU interpreter and the
 * compiler pass.  These measure the *host* cost of simulation, useful
 * when scaling inputs.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "compiler/ir.hpp"
#include "compiler/passes.hpp"
#include "interp_kernels.hpp"
#include "isa/builder.hpp"
#include "isa/interpreter.hpp"
#include "isa/predecode.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "ppf/filter.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        epf::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<epf::Tick>(i * 7 % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

/**
 * The engine's real scheduling pattern: events that schedule follow-on
 * events, heavy same-tick fan-out (every completion path in the
 * hierarchy uses scheduleIn(0)), and capture sizes typical of the
 * demand path rather than a single reference.
 */
void
BM_EventQueueChained(benchmark::State &state)
{
    for (auto _ : state) {
        epf::EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 256; ++i) {
            std::uint64_t a = static_cast<std::uint64_t>(i);
            std::uint64_t b = a * 3, c = a * 5, d = a * 7;
            eq.schedule(static_cast<epf::Tick>(i % 31),
                        [&eq, &sink, a, b, c, d] {
                            sink += a + b;
                            eq.scheduleIn(0, [&eq, &sink, c, d] {
                                sink += c + d;
                                eq.scheduleIn(3, [&sink] { ++sink; });
                            });
                        });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 256 * 3);
}
BENCHMARK(BM_EventQueueChained);

/**
 * Host cost of the full demand path: TLB translate, L1/L2 lookup, MSHR
 * allocation and retry, DRAM timing, completion callbacks.  The working
 * set exceeds the L1 so iterations exercise a steady hit/miss mix.
 */
void
BM_DemandPath(benchmark::State &state)
{
    epf::EventQueue eq;
    epf::GuestMemory gmem;
    std::vector<std::uint64_t> data(1 << 16); // 512 KiB: > L1, < L2
    const epf::Addr base =
        gmem.addRegion("bench", data.data(), data.size() * 8);
    epf::MemoryHierarchy mem(eq, gmem, epf::MemParams::defaults());
    epf::Rng rng(1);
    std::uint64_t done = 0;

    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            const epf::Addr a =
                base + (rng.next() & ((data.size() * 8) - 1) & ~7ULL);
            mem.load(a, 0, [&done] { ++done; });
        }
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DemandPath);

/** Address-filter lookup, run on every snooped core read. */
void
BM_FilterMatch(benchmark::State &state)
{
    epf::FilterTable ft;
    for (int i = 0; i < 16; ++i) {
        epf::FilterEntry e;
        e.base = static_cast<epf::Addr>(i) * 0x100000;
        e.limit = e.base + 0x80000;
        ft.add(e);
    }
    epf::Rng rng(7);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const epf::Addr a = rng.next() & 0xFFFFFF;
        ft.match(a, [&](int idx, const epf::FilterEntry &) {
            sink += static_cast<std::uint64_t>(idx);
        });
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterMatch);

void
BM_CacheHits(benchmark::State &state)
{
    epf::EventQueue eq;
    epf::DramParams dp;
    epf::Dram dram(eq, dp);
    epf::CacheParams cp;
    cp.sizeBytes = 32 * 1024;
    cp.ways = 2;
    cp.mshrs = 12;
    epf::Cache cache(eq, cp, dram);
    // Warm one line.
    cache.demandAccess(true, 0x1000, 0x1000, [] {});
    eq.run();

    for (auto _ : state) {
        cache.demandAccess(true, 0x1000, 0x1000, [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHits);

void
BM_Interpreter(benchmark::State &state)
{
    epf::KernelBuilder b("bench");
    b.vaddr(1).gread(2, 0).sub(1, 1, 2).shri(1, 1, 3).addi(1, 1, 16)
        .shli(1, 1, 3).add(1, 1, 2).prefetch(1).halt();
    epf::Kernel k = b.build();
    std::uint64_t globals[epf::kGlobalRegs] = {0x10000};
    epf::EventContext ctx;
    ctx.vaddr = 0x10400;
    ctx.globalRegs = globals;

    for (auto _ : state) {
        auto res = epf::Interpreter::run(k, ctx,
                                         [](const epf::PrefetchEmit &) {});
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Interpreter);

/**
 * Reference switch interpreter vs the pre-decoded direct-threaded one
 * (superblocks off — the PR 5 decoded baseline) vs the superblock
 * interpreter (the PPF default) on the three kernel shapes of
 * tools/bench_interp.  Items processed = architectural PPU
 * instructions, so items/s compares directly across the
 * Ref/Decoded/Superblock triples (all execute the same instruction
 * stream).
 */
void
runInterpRef(benchmark::State &state, const epf::Kernel &k)
{
    const epf::bench::BenchInput in;
    std::vector<epf::PrefetchEmit> emits; // the PPF's pooled-buffer shape
    emits.reserve(64);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        emits.clear();
        auto res = epf::Interpreter::run(k, in.ctx, &emits);
        instrs += res.cycles;
        benchmark::DoNotOptimize(res.cycles);
        benchmark::DoNotOptimize(emits.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}

void
runInterpPredecoded(benchmark::State &state, const epf::Kernel &k,
                    bool superblocks)
{
    const epf::bench::BenchInput in;
    // Decoded once, as in the PPF cache; superblocks off is the PR 5
    // decoded baseline, on is what the PPF actually runs.
    const epf::DecodedKernel dk(k, superblocks);
    std::vector<epf::PrefetchEmit> emits;
    emits.reserve(64);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        emits.clear();
        auto res = epf::DecodedKernel::run(dk, in.ctx, &emits);
        instrs += res.cycles;
        benchmark::DoNotOptimize(res.cycles);
        benchmark::DoNotOptimize(emits.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}

void
runInterpDecoded(benchmark::State &state, const epf::Kernel &k)
{
    runInterpPredecoded(state, k, /*superblocks=*/false);
}

void
runInterpSuperblock(benchmark::State &state, const epf::Kernel &k)
{
    runInterpPredecoded(state, k, /*superblocks=*/true);
}

void
BM_InterpreterPointerChaseRef(benchmark::State &state)
{
    runInterpRef(state, epf::bench::pointerChaseKernel());
}
BENCHMARK(BM_InterpreterPointerChaseRef);

void
BM_InterpreterPointerChaseDecoded(benchmark::State &state)
{
    runInterpDecoded(state, epf::bench::pointerChaseKernel());
}
BENCHMARK(BM_InterpreterPointerChaseDecoded);

void
BM_InterpreterPointerChaseSuperblock(benchmark::State &state)
{
    runInterpSuperblock(state, epf::bench::pointerChaseKernel());
}
BENCHMARK(BM_InterpreterPointerChaseSuperblock);

void
BM_InterpreterHashProbeRef(benchmark::State &state)
{
    runInterpRef(state, epf::bench::hashProbeKernel());
}
BENCHMARK(BM_InterpreterHashProbeRef);

void
BM_InterpreterHashProbeDecoded(benchmark::State &state)
{
    runInterpDecoded(state, epf::bench::hashProbeKernel());
}
BENCHMARK(BM_InterpreterHashProbeDecoded);

void
BM_InterpreterHashProbeSuperblock(benchmark::State &state)
{
    runInterpSuperblock(state, epf::bench::hashProbeKernel());
}
BENCHMARK(BM_InterpreterHashProbeSuperblock);

void
BM_InterpreterCallbackChainRef(benchmark::State &state)
{
    runInterpRef(state, epf::bench::callbackChainKernel());
}
BENCHMARK(BM_InterpreterCallbackChainRef);

void
BM_InterpreterCallbackChainDecoded(benchmark::State &state)
{
    runInterpDecoded(state, epf::bench::callbackChainKernel());
}
BENCHMARK(BM_InterpreterCallbackChainDecoded);

void
BM_InterpreterCallbackChainSuperblock(benchmark::State &state)
{
    runInterpSuperblock(state, epf::bench::callbackChainKernel());
}
BENCHMARK(BM_InterpreterCallbackChainSuperblock);

void
BM_ConversionPass(benchmark::State &state)
{
    for (auto _ : state) {
        epf::LoopIR ir;
        epf::IrNode *a = ir.addArray("A", 0x10000, 8, 4096);
        epf::IrNode *b = ir.addArray("B", 0x80000, 8, 4096);
        epf::IrNode *c = ir.addArray("C", 0xC0000, 8, 4096);
        epf::IrNode *x = ir.indVar();
        epf::IrNode *a2 = ir.loadForSwpf(
            ir.index(a, ir.bin(epf::IrBin::kAdd, x, ir.cnst(16)), 8), 8,
            "A");
        epf::IrNode *b2 = ir.loadForSwpf(ir.index(b, a2, 8), 8, "B");
        ir.swpf(ir.index(c, b2, 8));
        auto res = epf::convertSoftwarePrefetches(ir);
        benchmark::DoNotOptimize(res.ok);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConversionPass);

void
BM_Rng(benchmark::State &state)
{
    epf::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Rng);

} // namespace

BENCHMARK_MAIN();
