/**
 * @file
 * Figure 8: (a) the fraction of prefetches brought into the L1 that are
 * used before eviction, and (b) the L1 read hit rate without prefetching
 * vs with the programmable prefetcher (plus the L2 hit rates that explain
 * G500-List's residual benefit).  Both runs per workload go through one
 * parallel sweep on the same dataset.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 8: L1 prefetch utilisation and hit rates "
                 "(scale "
              << scale << ") ===\n";

    const std::vector<Technique> techs = {Technique::kNone,
                                          Technique::kManual};
    const auto workloads = workloadNames();

    SweepEngine engine = makeEngine();
    engine.addGrid(workloads, techs, baseConfig(Technique::kNone, scale),
                   Technique::kNone);
    const auto outcomes = engine.run();
    requireAllOk(outcomes);

    TextTable table({"Benchmark", "PF utilisation", "L1 hit (no PF)",
                     "L1 hit (PPF)", "L2 hit (no PF)", "L2 hit (PPF)"});

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const RunResult &none = outcomes[wi * 2].result;
        const RunResult &ppf = outcomes[wi * 2 + 1].result;
        table.addRow({workloads[wi], TextTable::num(ppf.pfUtilisation),
                      TextTable::num(none.l1ReadHitRate),
                      TextTable::num(ppf.l1ReadHitRate),
                      TextTable::num(none.l2HitRate),
                      TextTable::num(ppf.l2HitRate)});
    }
    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: utilisation high everywhere except G500-List "
                 "(early prefetches evicted);\n"
                 "G500-List L1 hit rises only 0.34->0.42 but L2 hit "
                 "0.20->0.57.\n";
    return 0;
}
