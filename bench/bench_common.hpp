/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses.
 *
 * Every binary reads EPF_SCALE (default 0.25) to size the benchmark
 * inputs and prints the same rows/series as the corresponding figure or
 * table of the paper.  Absolute numbers differ from the paper (different
 * substrate, scaled inputs); the *shape* is the reproduction target —
 * see EXPERIMENTS.md.
 */

#ifndef EPF_BENCH_BENCH_COMMON_HPP
#define EPF_BENCH_BENCH_COMMON_HPP

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "runner/experiment.hpp"
#include "runner/tables.hpp"

namespace epf::bench
{

inline double
scaleFromEnv(double fallback = 0.25)
{
    if (const char *s = std::getenv("EPF_SCALE"))
        return std::atof(s);
    return fallback;
}

inline RunConfig
baseConfig(Technique t, double scale)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = scale;
    return cfg;
}

/** Cache of baseline (no-prefetch) cycle counts per workload. */
class BaselineCache
{
  public:
    explicit BaselineCache(double scale) : scale_(scale) {}

    std::uint64_t
    cycles(const std::string &wl)
    {
        auto it = cache_.find(wl);
        if (it != cache_.end())
            return it->second;
        RunResult r =
            runExperiment(wl, baseConfig(Technique::kNone, scale_));
        cache_[wl] = r.cycles;
        checksums_[wl] = r.checksum;
        return r.cycles;
    }

    std::uint64_t checksum(const std::string &wl) const
    {
        return checksums_.at(wl);
    }

  private:
    double scale_;
    std::map<std::string, std::uint64_t> cache_;
    std::map<std::string, std::uint64_t> checksums_;
};

} // namespace epf::bench

#endif // EPF_BENCH_BENCH_COMMON_HPP
