/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses.
 *
 * Every binary queues its whole run grid into a SweepEngine, executes it
 * in parallel across host threads, then formats the same rows/series as
 * the corresponding figure or table of the paper.  Absolute numbers
 * differ from the paper (different substrate, scaled inputs); the
 * *shape* is the reproduction target — see EXPERIMENTS.md.
 *
 * Environment knobs shared by all harnesses:
 *   EPF_SCALE    input scale factor (default 0.25; fig9b defaults 0.1)
 *   EPF_THREADS  sweep worker threads (default: all cores)
 *   EPF_CORES    simulated cores per run (default 1; fig13_multicore
 *                sweeps its own 1/2/4/8 grid and ignores this)
 *   EPF_SEED     base seed each cell's seed is derived from
 *   EPF_JSON     when set, also dump every run as JSON to this path
 *                ("-" for stdout)
 *   EPF_PROGRESS when set, print per-run progress lines to stderr
 *   EPF_TRACE_OUT when set, capture every cell's micro-op stream to this
 *                trace-file path; {workload}/{technique}/{label} expand
 *                per cell (the emitted JSON records each file under
 *                "trace")
 *   EPF_FAULTS   fault-injection schedule applied to every cell: a
 *                canonical schedule index or a site spec list (see
 *                parseFaultConfig() in sim/fault.hpp).  Architectural
 *                results are unaffected by construction; timing moves.
 *   EPF_CELL_TIMEOUT  per-cell wall-clock watchdog in seconds; a hung
 *                cell fails the whole run with its workload/technique/
 *                seed named instead of wedging the pool
 */

#ifndef EPF_BENCH_BENCH_COMMON_HPP
#define EPF_BENCH_BENCH_COMMON_HPP

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "runner/tables.hpp"

namespace epf::bench
{

inline double
scaleFromEnv(double fallback = 0.25)
{
    if (const char *s = std::getenv("EPF_SCALE"))
        return std::atof(s);
    return fallback;
}

inline RunConfig
baseConfig(Technique t, double scale)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = scale;
    cfg.cores = sweepCoresFromEnv(1);
    cfg.faults = sweepFaultsFromEnv();
    if (const char *p = std::getenv("EPF_TRACE_OUT"))
        cfg.tracePath = p;
    return cfg;
}

/** A SweepEngine configured from the environment. */
inline SweepEngine
makeEngine()
{
    SweepEngine::Options opts;
    opts.threads = sweepThreadsFromEnv(0);
    opts.cellTimeoutSeconds = sweepCellTimeoutFromEnv(0.0);
    if (const char *s = std::getenv("EPF_SEED"))
        opts.baseSeed = std::strtoull(s, nullptr, 0);
    if (std::getenv("EPF_PROGRESS")) {
        opts.progress = [](std::size_t done, std::size_t total,
                           const SweepOutcome &o) {
            const std::string tech =
                techniqueName(o.cell.config.technique);
            std::cerr << "[" << done << "/" << total << "] "
                      << o.cell.workload << " / " << tech
                      << (o.cell.label.empty() || o.cell.label == tech
                              ? ""
                              : " " + o.cell.label)
                      << (o.failed ? " FAILED: " + o.error : "") << "\n";
        };
    }
    return SweepEngine(opts);
}

/**
 * Exit with a diagnostic if any sweep cell failed: a default-constructed
 * RunResult (cycles 0) must never flow silently into a figure.
 */
inline void
requireAllOk(const std::vector<SweepOutcome> &outcomes)
{
    bool ok = true;
    for (const auto &o : outcomes) {
        if (o.failed) {
            std::cerr << "run failed: " << o.cell.workload << " / "
                      << techniqueName(o.cell.config.technique)
                      << (o.cell.label.empty() ? "" : " " + o.cell.label)
                      << ": " << o.error << "\n";
            ok = false;
        }
    }
    if (!ok)
        std::exit(1);
}

/** Honour EPF_JSON: dump the raw sweep next to the formatted table. */
inline void
maybeWriteJson(const std::vector<SweepOutcome> &outcomes)
{
    const char *path = std::getenv("EPF_JSON");
    if (!path)
        return;
    if (std::string(path) == "-") {
        SweepEngine::writeJson(std::cout, outcomes, true);
        return;
    }
    std::ofstream os(path);
    if (!os) {
        std::cerr << "EPF_JSON: cannot open " << path << "\n";
        return;
    }
    SweepEngine::writeJson(os, outcomes, true);
    std::cerr << "sweep JSON written to " << path << "\n";
}

/** Speedup of @p r over @p base_cycles ("n/a"/"BADSUM" handled by caller). */
inline double
speedupOver(std::uint64_t base_cycles, const RunResult &r)
{
    return static_cast<double>(base_cycles) / static_cast<double>(r.cycles);
}

} // namespace epf::bench

#endif // EPF_BENCH_BENCH_COMMON_HPP
