/**
 * @file
 * The PPU kernels measured by the BM_Interpreter* microbenches and by
 * tools/bench_interp.  Shared so the google-benchmark suite and the
 * JSON-writing trajectory tool time exactly the same programs.
 *
 * Each kernel is shaped like the manual kernels the workloads install
 * (randacc.cpp, hashjoin.cpp, g500_list.cpp): loop-heavy address
 * generation built from the traversal idioms the pre-decoder fuses —
 * address bump feeding a line load, mask+shift hashing, pointer
 * arithmetic feeding a prefetch, and counter+branch loop control.
 * One level up, the pointer-chase and callback-chain loops decode to
 * the canonical chase-loop superblock shape (fused bump+load, fused
 * hash+prefetch, self-loop branch) that the superblock layer executes
 * dispatch-free, while the hash-probe loop exercises the generic
 * positional-dispatch superblock path.
 */

#ifndef EPF_BENCH_INTERP_KERNELS_HPP
#define EPF_BENCH_INTERP_KERNELS_HPP

#include <cstdint>

#include "isa/builder.hpp"
#include "isa/interpreter.hpp"
#include "isa/isa.hpp"

namespace epf
{
namespace bench
{

/**
 * Pointer-chase kernel: walk the observed line as an array of links,
 * hash each link into a table slot and prefetch it — the RandAcc /
 * HJ-8 shape.  8 iterations x 7 instructions + 3 of setup.
 */
inline Kernel
pointerChaseKernel()
{
    KernelBuilder b("bench_pointer_chase");
    auto loop = b.newLabel();
    b.vaddr(1);            // r1 = table base proxy
    b.li(3, 0);            // r3 = byte offset into the line
    b.li(4, 64);           // r4 = line size (8 links)
    b.bind(loop);
    b.addi(3, 3, 8);       // \ fused: bump the link cursor...
    b.ldLine(2, 3, -8);    // / ...and load the link it passed
    b.andi(2, 2, 0x1FF);   // \ fused: hash the link into a slot
    b.shli(2, 2, 6);       // /
    b.add(2, 2, 1);        // \ fused: rebase and prefetch the slot
    b.prefetch(2);         // /
    b.bne(3, 4, loop);
    b.halt();
    return b.build();
}

/**
 * Hash-probe kernel: two rounds of mask/shift/xor mixing per probe,
 * tagged prefetch of the bucket header — the HJ-2 shape.  6 probes.
 */
inline Kernel
hashProbeKernel()
{
    KernelBuilder b("bench_hash_probe");
    auto loop = b.newLabel();
    b.vaddr(1);
    b.li(5, 0);            // probe counter
    b.li(6, 6);            // probes
    b.bind(loop);
    b.addi(1, 1, 40);      // next key address (struct stride)
    b.andi(2, 1, 0xFFFF);  // \ fused: first mixing round
    b.shli(2, 2, 3);       // /
    b.shri(3, 1, 7);
    b.xorr(2, 2, 3);
    b.andi(2, 2, 0x3FFF);  // \ fused: second mixing round
    b.shli(2, 2, 6);       // /
    b.add(2, 2, 1);        // \ fused: bucket address, tagged fetch
    b.prefetchTag(2, 1);   // /
    b.addi(5, 5, 1);       // \ fused: loop control
    b.bne(5, 6, loop);     // /
    b.halt();
    return b.build();
}

/**
 * Callback-chain kernel: compute the next links of a chained structure
 * from line data and prefetch each with a callback kernel id — the
 * G500-List / linked-list shape.  8 links (the whole line) per event.
 */
inline Kernel
callbackChainKernel()
{
    KernelBuilder b("bench_callback_chain");
    auto loop = b.newLabel();
    b.vaddr(5);
    b.li(3, 0);            // link cursor (bytes)
    b.li(4, 64);           // 8 links
    b.bind(loop);
    b.addi(3, 3, 8);       // \ fused: advance and load the link word
    b.ldLine(1, 3, -8);    // /
    b.andi(1, 1, 0xFFF);   // \ fused: wrap into the node pool
    b.shli(1, 1, 4);       // /
    b.add(1, 1, 5);        // \ fused: rebase, chase via callback
    b.prefetchCb(1, 2);    // /
    b.bne(3, 4, loop);
    b.halt();
    return b.build();
}

/** The event context the benches run against (line data present). */
inline EventContext
benchContext(const std::uint64_t *globals, const LineData &line)
{
    EventContext ctx;
    ctx.vaddr = 0x7F8040;
    ctx.hasLine = true;
    ctx.line = line;
    ctx.globalRegs = globals;
    return ctx;
}

/**
 * The complete shared bench input: one deterministic line payload and
 * global-register file, used by every harness (micro_components'
 * Ref/Decoded pairs and tools/bench_interp) so the compared numbers
 * can never measure different inputs.  Use in place — the context
 * points into the member arrays.
 */
struct BenchInput
{
    std::uint64_t globals[kGlobalRegs] = {0x40000};
    LineData line{};
    EventContext ctx;

    BenchInput()
    {
        for (unsigned i = 0; i < kLineBytes; ++i)
            line[i] = static_cast<std::byte>(i * 37 + 11);
        ctx = benchContext(globals, line);
    }
    BenchInput(const BenchInput &) = delete;
    BenchInput &operator=(const BenchInput &) = delete;
};

} // namespace bench
} // namespace epf

#endif // EPF_BENCH_INTERP_KERNELS_HPP
