/**
 * @file
 * Figure 11: performance with event triggering vs with PPUs blocking on
 * intermediate loads (12 units in both cases).  Blocking should be
 * competitive only for simple stride-indirect patterns and collapse for
 * complex chains.  Baseline, blocked and event-triggered runs per
 * workload execute as one parallel sweep over identical inputs.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 11: blocked vs event-triggered PPUs (scale "
              << scale << ") ===\n";

    const std::vector<Technique> techs = {Technique::kNone,
                                          Technique::kManualBlocked,
                                          Technique::kManual};
    const auto workloads = workloadNames();

    SweepEngine engine = makeEngine();
    engine.addGrid(workloads, techs, baseConfig(Technique::kNone, scale),
                   Technique::kNone);
    const auto outcomes = engine.run();
    requireAllOk(outcomes);

    TextTable table({"Benchmark", "Blocked", "Events", "Events/Blocked"});

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const RunResult &base = outcomes[wi * 3].result;
        const RunResult &blocked = outcomes[wi * 3 + 1].result;
        const RunResult &events = outcomes[wi * 3 + 2].result;
        double sb = speedupOver(base.cycles, blocked);
        double se = speedupOver(base.cycles, events);
        table.addRow({workloads[wi], TextTable::num(sb) + "x",
                      TextTable::num(se) + "x", TextTable::num(se / sb)});
    }
    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\npaper: close for plain stride-indirect; blocking "
                 "loses badly on complex patterns\n"
                 "(graph traversals, chained hash buckets).\n";
    return 0;
}
