/**
 * @file
 * Figure 11: performance with event triggering vs with PPUs blocking on
 * intermediate loads (12 units in both cases).  Blocking should be
 * competitive only for simple stride-indirect patterns and collapse for
 * complex chains.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 11: blocked vs event-triggered PPUs (scale "
              << scale << ") ===\n";

    TextTable table(
        {"Benchmark", "Blocked", "Events", "Events/Blocked"});

    BaselineCache base(scale);
    for (const auto &wl : workloadNames()) {
        RunResult blocked = runExperiment(
            wl, baseConfig(Technique::kManualBlocked, scale));
        RunResult events =
            runExperiment(wl, baseConfig(Technique::kManual, scale));
        double sb = static_cast<double>(base.cycles(wl)) /
                    static_cast<double>(blocked.cycles);
        double se = static_cast<double>(base.cycles(wl)) /
                    static_cast<double>(events.cycles);
        table.addRow({wl, TextTable::num(sb) + "x",
                      TextTable::num(se) + "x", TextTable::num(se / sb)});
    }
    table.print(std::cout);
    std::cout << "\npaper: close for plain stride-indirect; blocking "
                 "loses badly on complex patterns\n"
                 "(graph traversals, chained hash buckets).\n";
    return 0;
}
