/**
 * @file
 * "Figure 13" (beyond the paper): multi-core scaling of the
 * event-triggered prefetcher.
 *
 * The paper evaluates a Table 1 uniprocessor; this harness scales the
 * same machine to 1/2/4/8 cores — per-core L1 + PPF over a shared,
 * banked L2 with round-robin arbitration — and reruns the shardable
 * workloads under no prefetching, stride, and the hand-written event
 * kernels.  Reported per cell: cycles of the slowest core (the parallel
 * critical path) and the speedup over the same technique at one core.
 *
 * Every cell of a workload shares the kNone-derived seed, so all core
 * counts and techniques run over identical datasets and the checksum
 * column cross-checks functional equivalence of the sharded runs.
 * The sweep is deterministic: bit-identical output at any EPF_THREADS
 * and across repeated invocations.
 */

#include "bench_common.hpp"

using namespace epf;
using namespace epf::bench;

int
main()
{
    const double scale = scaleFromEnv();
    std::cout << "=== Figure 13: multi-core scaling (scale " << scale
              << ") ===\n";

    const std::vector<unsigned> core_counts = {1, 2, 4, 8};
    const std::vector<Technique> techs = {
        Technique::kNone,
        Technique::kStride,
        Technique::kManual,
    };
    // The shardable workloads (the rest are serial on core 0 and would
    // only measure uncore contention of an idle machine).
    std::vector<std::string> workloads;
    for (const auto &name : workloadNames()) {
        if (makeWorkload(name)->supportsSharding())
            workloads.push_back(name);
    }

    SweepEngine engine = makeEngine();
    for (const auto &wl : workloads) {
        for (Technique t : techs) {
            for (unsigned n : core_counts) {
                RunConfig cfg = baseConfig(t, scale);
                cfg.cores = n;
                // Trace capture is single-core only; under EPF_TRACE_OUT
                // capture the 1-core cells and run the rest uncaptured
                // rather than abort the sweep.
                if (n > 1)
                    cfg.tracePath.clear();
                engine.add(wl, cfg, std::to_string(n) + "c",
                           Technique::kNone);
            }
        }
    }
    const auto outcomes = engine.run();
    requireAllOk(outcomes);

    std::vector<std::string> header = {"Benchmark", "Technique"};
    for (unsigned n : core_counts)
        header.push_back(std::to_string(n) + " cores");
    TextTable table(header);

    std::size_t idx = 0;
    for (const auto &wl : workloads) {
        for (Technique t : techs) {
            std::vector<std::string> row = {wl, techniqueName(t)};
            const RunResult &one_core = outcomes[idx].result;
            for (std::size_t c = 0; c < core_counts.size(); ++c) {
                const RunResult &r = outcomes[idx + c].result;
                // Sharded writes are disjoint-or-commutative, so every
                // core count must reproduce the serial checksum.
                if (r.checksum != one_core.checksum) {
                    row.push_back("BADSUM");
                    continue;
                }
                const double s = speedupOver(one_core.cycles, r);
                row.push_back(TextTable::num(s) + "x");
            }
            idx += core_counts.size();
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    maybeWriteJson(outcomes);
    std::cout << "\nCells are speedups over the same technique at one "
                 "core (slowest-core cycles).\nPer-core PPU activity, "
                 "L2 arbitration and coherence counters are in the "
                 "EPF_JSON\ndetail dump (uncore.*, coreN.*).\n";
    return 0;
}
