/**
 * @file
 * Tests for the multi-core machine model: the CorePort/Uncore split,
 * L2 bank arbitration, the shared-read/exclusive-write coherence
 * directory, workload sharding, stream-id namespacing, per-core stat
 * prefixes, determinism across host thread counts, and the multi-core
 * trace-capture guard.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cpu/core.hpp"
#include "mem/core_port.hpp"
#include "mem/uncore.hpp"
#include "runner/experiment.hpp"
#include "runner/sweep.hpp"
#include "sim/event_queue.hpp"
#include "workloads/workload.hpp"

namespace epf
{
namespace
{

constexpr double kTinyScale = 0.004;

RunConfig
tinyConfig(Technique t, unsigned cores)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = kTinyScale;
    cfg.cores = cores;
    return cfg;
}

/** Flatten a result's full stats block for exact comparison. */
std::string
statsKey(const RunResult &r)
{
    std::string s = std::to_string(r.cycles) + "/" +
                    std::to_string(r.instrs) + "/" +
                    std::to_string(r.ticks) + "/" +
                    std::to_string(r.checksum);
    for (const auto &[k, v] : r.detail.all())
        s += ";" + k + "=" + std::to_string(v);
    return s;
}

// ---------------------------------------------------------------------
// Machine assembly
// ---------------------------------------------------------------------

TEST(UncoreTest, BankingSplitsCapacityAndSelectsByLine)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(1024, 1);
    gm.addRegion("buf", buf.data(), buf.size() * 8);

    MemParams p = MemParams::defaults();
    Uncore quad(eq, gm, p, 4); // l2Banks = 0 -> one bank per port
    EXPECT_EQ(quad.banks(), 4u);
    EXPECT_EQ(quad.l2Bank(0).params().sizeBytes, p.l2.sizeBytes / 4);
    EXPECT_EQ(quad.l2Bank(0).params().mshrs, p.l2.mshrs / 4);

    p.l2Banks = 2;
    Uncore two(eq, gm, p, 4);
    EXPECT_EQ(two.banks(), 2u);
}

TEST(UncoreTest, SinglePortForwardsWithoutArbitration)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(1024, 1);
    Addr va = gm.addRegion("buf", buf.data(), buf.size() * 8);

    Uncore uc(eq, gm, MemParams::defaults(), 1);
    int done = 0;
    LineRequest req;
    req.vaddr = va;
    req.paddr = va;
    uc.port(0).readLine(req, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(uc.stats().arbGrants, 0u); // pass-through path
}

TEST(UncoreTest, ContendingPortsGrantRoundRobin)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(4096, 1);
    Addr va = gm.addRegion("buf", buf.data(), buf.size() * 8);

    MemParams p = MemParams::defaults();
    p.l2Banks = 1; // force every request onto one arbiter
    Uncore uc(eq, gm, p, 2);

    // Two ports each queue two reads in the same tick.
    std::vector<int> order;
    for (int i = 0; i < 2; ++i) {
        for (unsigned port = 0; port < 2; ++port) {
            LineRequest req;
            req.vaddr = va + (static_cast<Addr>(order.size()) + 1) * 64;
            req.paddr = req.vaddr;
            const int tag = static_cast<int>(port) * 10 + i;
            uc.port(port).readLine(req, [&order, tag] {
                order.push_back(tag);
            });
        }
    }
    eq.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(uc.stats().arbGrants, 4u);
    EXPECT_GT(uc.stats().arbConflicts, 0u);
}

// ---------------------------------------------------------------------
// Coherence directory
// ---------------------------------------------------------------------

class TwoCoreFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        buf_.assign(1 << 14, 7);
        base_ = gm_.addRegion("buf", buf_.data(), buf_.size() * 8);
        uncore_ = std::make_unique<Uncore>(eq_, gm_, params_, 2);
        for (unsigned i = 0; i < 2; ++i) {
            ports_.push_back(std::make_unique<CorePort>(
                eq_, gm_, *uncore_, params_, i));
        }
    }

    /** Issue a demand access on port @p p and run to completion. */
    void
    access(unsigned p, Addr va, bool is_load)
    {
        bool done = false;
        if (is_load)
            ports_[p]->load(va, 0, [&done] { done = true; });
        else
            ports_[p]->store(va, 0, [&done] { done = true; });
        eq_.run();
        ASSERT_TRUE(done);
    }

    EventQueue eq_;
    GuestMemory gm_;
    MemParams params_ = MemParams::defaults();
    std::vector<std::uint64_t> buf_;
    Addr base_ = 0;
    std::unique_ptr<Uncore> uncore_;
    std::vector<std::unique_ptr<CorePort>> ports_;
};

TEST_F(TwoCoreFixture, WriteInvalidatesRemoteSharers)
{
    // Both cores read the same line: two shared copies.
    access(0, base_, true);
    access(1, base_, true);
    // The physical line address comes from the page table; both L1s
    // hold it now.
    EXPECT_EQ(uncore_->stats().invalidations, 0u);

    // Core 1 writes the line: core 0's copy must drop.
    access(1, base_ + 8, false);
    EXPECT_EQ(uncore_->stats().invalidations, 1u);
    EXPECT_EQ(ports_[0]->l1().stats().invalidations, 1u);

    // Core 0's next load of the line misses again (copy was dropped).
    const auto misses_before = ports_[0]->l1().stats().loads -
                               ports_[0]->l1().stats().loadHits;
    access(0, base_, true);
    const auto misses_after = ports_[0]->l1().stats().loads -
                              ports_[0]->l1().stats().loadHits;
    EXPECT_EQ(misses_after, misses_before + 1);
}

TEST_F(TwoCoreFixture, RemoteReadDowngradesExclusiveOwner)
{
    // Core 0 writes a line (exclusive), then core 1 reads it.
    access(0, base_ + 4096, false);
    EXPECT_EQ(uncore_->stats().downgrades, 0u);
    access(1, base_ + 4096, true);
    EXPECT_EQ(uncore_->stats().downgrades, 1u);
    // The owner keeps its copy: a re-read still hits.
    const auto hits_before = ports_[0]->l1().stats().loadHits;
    access(0, base_ + 4096, true);
    EXPECT_EQ(ports_[0]->l1().stats().loadHits, hits_before + 1);
}

TEST_F(TwoCoreFixture, DirtyLineWritesBackOnInvalidation)
{
    access(0, base_ + 8192, false); // dirty in core 0
    const auto wb_before = ports_[0]->l1().stats().writebacks;
    access(1, base_ + 8192, false); // core 1 takes exclusive
    EXPECT_EQ(ports_[0]->l1().stats().writebacks, wb_before + 1);
}

// ---------------------------------------------------------------------
// Stream-id namespacing
// ---------------------------------------------------------------------

TEST_F(TwoCoreFixture, CoreIdNamespacesStreamIds)
{
    class Recorder : public MemoryListener
    {
      public:
        std::vector<int> streams;
        void
        notifyDemand(Addr, bool, bool, int stream_id) override
        {
            streams.push_back(stream_id);
        }
    };

    Recorder rec0, rec1;
    ports_[0]->setListener(&rec0);
    ports_[1]->setListener(&rec1);
    Core c0(eq_, CoreParams{}, *ports_[0], 0);
    Core c1(eq_, CoreParams{}, *ports_[1], 1);

    auto one_load = [this](std::int16_t stream) -> Generator<MicroOp> {
        OpFactory f;
        ValueId v;
        co_yield f.load(base_, stream, v);
    };
    bool d0 = false, d1 = false;
    c0.run(one_load(5), [&d0] { d0 = true; });
    c1.run(one_load(5), [&d1] { d1 = true; });
    eq_.run();
    ASSERT_TRUE(d0 && d1);
    ASSERT_EQ(rec0.streams.size(), 1u);
    ASSERT_EQ(rec1.streams.size(), 1u);
    EXPECT_EQ(rec0.streams[0], 5);                             // identity
    EXPECT_EQ(rec1.streams[0], 5 | (1 << kStreamIdCoreShift)); // tagged
}

// ---------------------------------------------------------------------
// Sharded experiments
// ---------------------------------------------------------------------

TEST(MulticoreExperiment, ShardedRunsReproduceSerialChecksum)
{
    // RandAcc shards by LFSR stream (XOR updates commute); HJ shards
    // by probe range (disjoint output slices).  Either way the final
    // data — and so the checksum — must match the serial run exactly.
    for (const std::string wl : {"RandAcc", "HJ-2", "HJ-8"}) {
        const auto serial = runExperiment(wl, tinyConfig(Technique::kNone, 1));
        for (unsigned cores : {2u, 4u}) {
            const auto r =
                runExperiment(wl, tinyConfig(Technique::kNone, cores));
            EXPECT_EQ(r.checksum, serial.checksum)
                << wl << " at " << cores << " cores";
            // Total work matches the serial run except for branch-miss
            // markers: each shard models its own last-outcome predictor,
            // so at most a few ops differ at shard boundaries.
            const std::uint64_t hi = serial.instrs + 2 * cores;
            const std::uint64_t lo = serial.instrs - 2 * cores;
            EXPECT_GE(r.instrs, lo) << wl << " total work";
            EXPECT_LE(r.instrs, hi) << wl << " total work";
        }
    }
}

TEST(MulticoreExperiment, SerialWorkloadRunsOnCoreZero)
{
    ASSERT_FALSE(makeWorkload("IntSort")->supportsSharding());
    const auto serial = runExperiment("IntSort",
                                      tinyConfig(Technique::kNone, 1));
    const auto r = runExperiment("IntSort", tinyConfig(Technique::kNone, 2));
    EXPECT_EQ(r.checksum, serial.checksum);
    EXPECT_EQ(r.detail.get("core1.instrs", -1.0), 0.0);
    EXPECT_GT(r.detail.get("core0.instrs", -1.0), 0.0);

    // An idle second core must not throttle the busy one: the arbiter
    // paces only queued-behind-each-other work, so a serial workload
    // on a 2-core machine runs within a whisker of the 1-core machine
    // (same L2 capacity via one bank to keep geometry comparable).
    RunConfig same_l2 = tinyConfig(Technique::kNone, 2);
    same_l2.mem.l2Banks = 1;
    const auto r1bank = runExperiment("IntSort", same_l2);
    EXPECT_LT(static_cast<double>(r1bank.cycles),
              1.02 * static_cast<double>(serial.cycles));
}

TEST(MulticoreExperiment, NonPowerOfTwoCoresGetPowerOfTwoBanks)
{
    // cores=3 must run (banks auto-derive to 2, the largest power of
    // two <= ports); an explicit non-power-of-two bank count is a
    // configuration error.
    const auto serial = runExperiment("RandAcc",
                                      tinyConfig(Technique::kNone, 1));
    const auto r = runExperiment("RandAcc", tinyConfig(Technique::kNone, 3));
    EXPECT_EQ(r.checksum, serial.checksum);
    EXPECT_EQ(r.detail.get("uncore.l2Banks", -1.0), 2.0);

    RunConfig bad = tinyConfig(Technique::kNone, 2);
    bad.mem.l2Banks = 3;
    EXPECT_THROW(runExperiment("RandAcc", bad), std::invalid_argument);
}

TEST(MulticoreExperiment, PerCoreStatPrefixesAndUncoreBlock)
{
    const auto one = runExperiment("RandAcc",
                                   tinyConfig(Technique::kManual, 1));
    // Single-core runs publish the historical unprefixed names.
    EXPECT_TRUE(one.detail.has("core.cycles"));
    EXPECT_TRUE(one.detail.has("l1.loads"));
    EXPECT_TRUE(one.detail.has("ppf.eventsRun"));
    EXPECT_FALSE(one.detail.has("core0.core.cycles"));
    EXPECT_FALSE(one.detail.has("uncore.arbGrants"));

    const auto two = runExperiment("RandAcc",
                                   tinyConfig(Technique::kManual, 2));
    EXPECT_TRUE(two.detail.has("core0.cycles"));
    EXPECT_TRUE(two.detail.has("core1.cycles"));
    EXPECT_TRUE(two.detail.has("core0.l1.loads"));
    EXPECT_TRUE(two.detail.has("core1.ppf.eventsRun"));
    EXPECT_FALSE(two.detail.has("core.cycles"));
    EXPECT_TRUE(two.detail.has("uncore.arbGrants"));
    EXPECT_GT(two.detail.get("uncore.arbGrants"), 0.0);
    EXPECT_TRUE(two.detail.has("l2.b0.reads"));
    EXPECT_TRUE(two.detail.has("l2.b1.reads"));
    // Both cores ran PPUs: activity vector covers each core's PPUs.
    EXPECT_EQ(two.ppuActivity.size(), 2 * one.ppuActivity.size());
}

TEST(MulticoreExperiment, TraceCaptureRejectedWithMultipleCores)
{
    RunConfig cfg = tinyConfig(Technique::kNone, 2);
    cfg.tracePath = "/tmp/epf_multicore_capture_should_not_exist.trc";
    EXPECT_THROW(runExperiment("RandAcc", cfg), std::invalid_argument);
}

TEST(MulticoreExperiment, DuplicateStatNamesRejected)
{
    StatRegistry reg;
    reg.setUnique("a.b", 1.0);
    EXPECT_THROW(reg.setUnique("a.b", 2.0), std::logic_error);
    reg.set("a.b", 3.0); // plain set still overwrites
    EXPECT_EQ(reg.get("a.b"), 3.0);
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

TEST(MulticoreDeterminism, RunToRunStatsIdenticalAtFourCores)
{
    const auto a = runExperiment("RandAcc", tinyConfig(Technique::kManual, 4));
    const auto b = runExperiment("RandAcc", tinyConfig(Technique::kManual, 4));
    EXPECT_EQ(statsKey(a), statsKey(b));
}

TEST(MulticoreDeterminism, SweepThreadCountDoesNotChangeStats)
{
    // The same cores=4 grid swept with 1 worker thread and with 4 must
    // produce bit-identical stats (the EPF_THREADS=1 vs N guarantee).
    auto make = [](unsigned threads) {
        SweepEngine::Options opts;
        opts.threads = threads;
        SweepEngine e(opts);
        for (const std::string wl : {"RandAcc", "HJ-8"}) {
            for (Technique t : {Technique::kNone, Technique::kStride}) {
                e.add(wl, tinyConfig(t, 4));
            }
        }
        return e.run();
    };
    const auto a = make(1);
    const auto b = make(4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_FALSE(a[i].failed);
        ASSERT_FALSE(b[i].failed);
        EXPECT_EQ(statsKey(a[i].result), statsKey(b[i].result)) << i;
    }
}

} // namespace
} // namespace epf
