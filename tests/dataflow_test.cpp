/**
 * @file
 * Directed tests for the abstract-interpretation dataflow engine
 * (src/isa/analysis/dataflow.hpp).
 *
 * The load-bearing cases:
 *  - the two shipped G500-CSR watchdog-loop kernels, rebuilt verbatim:
 *    widening must terminate the fixpoint and narrowing must recover
 *    the loop-bound intervals the kernels actually maintain;
 *  - the strict-improvement pin: the clamp-arm div in
 *    on_vertex_prefetch may trap under the instruction-local facts of
 *    the old analysis but is proven trap-free by the value analysis,
 *    and the decoder consumes that proof;
 *  - interval soundness exactly at the i64 overflow boundaries;
 *  - known-bits through the and[i] + shli + add hash-bucket quad.
 */

#include <gtest/gtest.h>

#include <limits>

#include "isa/analysis/dataflow.hpp"
#include "isa/analysis/verifier.hpp"
#include "isa/builder.hpp"
#include "isa/predecode.hpp"

namespace epf
{
namespace
{

using analysis::AbsValue;
using analysis::DataflowResult;
using analysis::KernelContext;
using analysis::RegState;

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

/** The G500-CSR on_edges_prefetch tag kernel, verbatim
 *  (src/workloads/g500_csr.cpp; g_par is global 3 there). */
Kernel
buildEdgesKernel()
{
    KernelBuilder b("on_edges_prefetch");
    KernelBuilder::Label loop = b.newLabel();
    b.li(1, 0)
        .gread(2, 3)
        .li(3, kLineBytes)
        .bind(loop)
        .ldLine(4, 1, 0)
        .shli(4, 4, 3)
        .add(4, 4, 2)
        .prefetch(4)
        .addi(1, 1, 8)
        .blt(1, 3, loop)
        .halt();
    return b.build();
}

/** The G500-CSR on_vertex_prefetch kernel, verbatim (g_dest is global
 *  2 there; the tag value does not matter to the analysis). */
Kernel
buildVertexKernel()
{
    constexpr unsigned kMaxEdgeLines = 16;
    KernelBuilder b("on_vertex_prefetch");
    KernelBuilder::Label clamp_lo = b.newLabel();
    KernelBuilder::Label clamp_hi = b.newLabel();
    KernelBuilder::Label loop = b.newLabel();
    b.vaddr(1)
        .ldLine(2, 1, 0)
        .ldLine(3, 1, 8)
        .sub(4, 3, 2)
        .li(5, 1)
        .bge(4, 5, clamp_lo)
        .div(4, 5, 5) // pc 6: the proven-safe clamp arm
        .bind(clamp_lo)
        .li(5, kMaxEdgeLines * 8)
        .blt(4, 5, clamp_hi)
        .mov(4, 5)
        .bind(clamp_hi)
        .gread(6, 2)
        .shli(2, 2, 3)
        .add(6, 6, 2)
        .shli(4, 4, 3)
        .add(4, 6, 4)
        .bind(loop)
        .prefetchTag(6, 0)
        .addi(6, 6, kLineBytes)
        .blt(6, 4, loop)
        .halt();
    return b.build();
}

TEST(DataflowTest, EdgesWatchdogLoopConvergesWithBoundedCounter)
{
    const Kernel k = buildEdgesKernel();
    const DataflowResult df = analysis::analyzeDataflow(k, KernelContext{});
    ASSERT_TRUE(df.converged);

    // Loop head is pc 3 (the ldLine).  The counter r1 steps 0, 8, ...,
    // 56 — widening must not leave it at top, and narrowing must pull
    // the upper bound back under the loop limit (r3 == 64).
    const std::size_t loopHead = 3;
    ASSERT_LT(loopHead, df.in.size());
    const RegState &s = df.in[loopHead];
    ASSERT_TRUE(s.feasible);
    EXPECT_GE(s.reg[1].iv.lo, 0);
    EXPECT_LE(s.reg[1].iv.hi, 63);
    EXPECT_TRUE(s.reg[1].contains(0));
    EXPECT_TRUE(s.reg[1].contains(56));
    EXPECT_TRUE(s.reg[3].iv.isConst());
    EXPECT_EQ(s.reg[3].iv.lo, kLineBytes);

    // The counter never reaches 8-misaligned values; known-bits sees
    // the +8 stride keeps the low 3 bits zero.
    EXPECT_GE(s.reg[1].kb.trailingZeros(), 3u);
}

TEST(DataflowTest, VertexWatchdogLoopConverges)
{
    const Kernel k = buildVertexKernel();
    const DataflowResult df = analysis::analyzeDataflow(k, KernelContext{});
    ASSERT_TRUE(df.converged);
    // Every pc on the halt path is feasible (the kernel can run to
    // completion), including the loop body.
    ASSERT_TRUE(df.in.back().feasible);
}

TEST(DataflowTest, ClampArmDivProvenTrapFreeWhereOldFactsCannot)
{
    const Kernel k = buildVertexKernel();
    const std::size_t divPc = 6;
    ASSERT_EQ(k.code[divPc].op, Opcode::kDiv);

    // The instruction-local facts of the pre-dataflow analysis: a
    // register-divisor div may always trap.
    const KernelContext ctx;
    ASSERT_TRUE(analysis::mayTrap(k.code[divPc], ctx));

    // The value analysis proves r5 == 1 at pc 6 (li(5, 1) dominates),
    // so the div cannot trap.
    const DataflowResult df = analysis::analyzeDataflow(k, ctx);
    ASSERT_TRUE(df.converged);
    ASSERT_TRUE(df.in[divPc].feasible);
    EXPECT_TRUE(df.in[divPc].reg[5].iv.isConst());
    EXPECT_EQ(df.in[divPc].reg[5].iv.lo, 1);
    EXPECT_FALSE(df.mayTrapPc[divPc]);
    EXPECT_TRUE(df.provenTrapFree(divPc));

    // analyzeKernel exports the proof in its per-pc bitmap...
    const analysis::KernelAnalysis ka = analysis::analyzeKernel(k, ctx);
    ASSERT_EQ(ka.trapFreePc.size(), k.code.size());
    EXPECT_EQ(ka.trapFreePc[divPc], 1);

    // ...and the decoder consumes it: the pc is trap-free in the
    // decode-time (nothing-assumed) context too.
    const DecodedKernel dk(k);
    EXPECT_TRUE(dk.provenTrapFree(divPc));
    // The ldLine pcs, by contrast, may trap on line-less events.
    EXPECT_FALSE(dk.provenTrapFree(1));
}

TEST(DataflowTest, AdditionOverflowAtI64BoundaryStaysSound)
{
    // INT64_MAX + 1 wraps to INT64_MIN; the abstract state must still
    // contain the wrapped value (and the +0 identity stays exact).
    KernelBuilder b("ovf");
    b.li(1, kI64Max).addi(2, 1, 1).addi(3, 1, 0).halt();
    const Kernel k = b.build();
    const DataflowResult df =
        analysis::analyzeDataflow(k, KernelContext{});
    ASSERT_TRUE(df.converged);
    const RegState &atHalt = df.in.back();
    ASSERT_TRUE(atHalt.feasible);
    EXPECT_TRUE(
        atHalt.reg[2].contains(static_cast<std::uint64_t>(kI64Min)));
    ASSERT_TRUE(atHalt.reg[3].iv.isConst());
    EXPECT_EQ(atHalt.reg[3].iv.lo, kI64Max);
}

TEST(DataflowTest, SubtractionUnderflowAtI64BoundaryStaysSound)
{
    // INT64_MIN - 1 wraps to INT64_MAX.
    KernelBuilder b("udf");
    b.li(1, kI64Min).addi(2, 1, -1).halt();
    const Kernel k = b.build();
    const DataflowResult df =
        analysis::analyzeDataflow(k, KernelContext{});
    ASSERT_TRUE(df.converged);
    const RegState &atHalt = df.in.back();
    ASSERT_TRUE(atHalt.feasible);
    EXPECT_TRUE(
        atHalt.reg[2].contains(static_cast<std::uint64_t>(kI64Max)));
}

TEST(DataflowTest, ConstantsFoldExactlyThroughArithmetic)
{
    KernelBuilder b("fold");
    b.li(1, 40).addi(1, 1, 2).muli(2, 1, 3).divi(3, 2, 7).halt();
    const Kernel k = b.build();
    const DataflowResult df =
        analysis::analyzeDataflow(k, KernelContext{});
    ASSERT_TRUE(df.converged);
    const RegState &atHalt = df.in.back();
    ASSERT_TRUE(atHalt.feasible);
    EXPECT_EQ(atHalt.reg[1].asConst().value_or(-1), 42);
    EXPECT_EQ(atHalt.reg[2].asConst().value_or(-1), 126);
    EXPECT_EQ(atHalt.reg[3].asConst().value_or(-1), 18);
}

TEST(DataflowTest, KnownBitsFlowThroughHashQuad)
{
    // The hash-bucket idiom: mask to the table size, scale to slot
    // bytes, rebase on the (seeded) table base.
    KernelBuilder b("hash");
    b.vaddr(1).andi(2, 1, 1023).shli(2, 2, 3).gread(4, 0).add(3, 2, 4).halt();
    const Kernel k = b.build();

    KernelContext ctx;
    const std::int64_t base = 0x4000'0000;
    ctx.globalValues.push_back({0, static_cast<std::uint64_t>(base)});
    const DataflowResult df = analysis::analyzeDataflow(k, ctx);
    ASSERT_TRUE(df.converged);

    // After andi: r2 in [0, 1023], high 54 bits known zero.
    const RegState &afterAnd = df.in[2];
    ASSERT_TRUE(afterAnd.feasible);
    EXPECT_EQ(afterAnd.reg[2].iv.lo, 0);
    EXPECT_EQ(afterAnd.reg[2].iv.hi, 1023);
    EXPECT_EQ(afterAnd.reg[2].kb.mask & ~0x3FFull, ~0x3FFull);

    // After shli #3: scaled range, low 3 bits known zero.
    const RegState &afterShl = df.in[3];
    ASSERT_TRUE(afterShl.feasible);
    EXPECT_EQ(afterShl.reg[2].iv.lo, 0);
    EXPECT_EQ(afterShl.reg[2].iv.hi, 1023 * 8);
    EXPECT_GE(afterShl.reg[2].kb.trailingZeros(), 3u);

    // After the rebase: bucket addresses span [base, base + 8184] and
    // stay 8-byte aligned (the base itself is aligned).
    const RegState &atHalt = df.in.back();
    ASSERT_TRUE(atHalt.feasible);
    EXPECT_EQ(atHalt.reg[3].iv.lo, base);
    EXPECT_EQ(atHalt.reg[3].iv.hi, base + 1023 * 8);
    EXPECT_GE(atHalt.reg[3].kb.trailingZeros(), 3u);
}

TEST(DataflowTest, UnboundedLoopStillTerminatesViaWidening)
{
    // No exit condition at all: widening must drive the counter to a
    // fixpoint instead of iterating forever.  Top is also the only
    // sound answer — after 2^63 iterations the +1 stride really does
    // wrap past INT64_MAX into negative values.
    KernelBuilder b("runaway");
    KernelBuilder::Label loop = b.newLabel();
    b.li(1, 0).bind(loop).addi(1, 1, 1).jmp(loop);
    const Kernel k = b.build();
    const DataflowResult df =
        analysis::analyzeDataflow(k, KernelContext{});
    ASSERT_TRUE(df.converged);
    const RegState &body = df.in[1];
    ASSERT_TRUE(body.feasible);
    EXPECT_TRUE(body.reg[1].iv.isTop());
}

TEST(DataflowTest, BranchRefinementMakesDeadArmInfeasible)
{
    // beq r1, r1 always takes: the fall-through is dead, and the
    // analysis must say so (branchOutcome and feasibility agree).
    KernelBuilder b("dead");
    KernelBuilder::Label t = b.newLabel();
    b.li(1, 7).beq(1, 1, t).li(2, 1).bind(t).halt();
    const Kernel k = b.build();
    const DataflowResult df =
        analysis::analyzeDataflow(k, KernelContext{});
    ASSERT_TRUE(df.converged);
    EXPECT_EQ(analysis::branchOutcome(k.code[1], df.in[1]),
              analysis::BranchOutcome::kAlwaysTaken);
    EXPECT_FALSE(df.in[2].feasible); // the skipped li
    EXPECT_TRUE(df.in[3].feasible);
}

TEST(DataflowTest, SeededVaddrRangeReachesThePrefetchTarget)
{
    // A demand-filter kernel: the triggering address is bounded by the
    // filter range, so vaddr + 64 is provably inside [lo + 64, hi + 64].
    KernelBuilder b("next");
    b.vaddr(1).addi(1, 1, 64).prefetch(1).halt();
    const Kernel k = b.build();
    KernelContext ctx;
    ctx.vaddrLo = 0x1000;
    ctx.vaddrHi = 0x1FFF;
    const DataflowResult df = analysis::analyzeDataflow(k, ctx);
    ASSERT_TRUE(df.converged);
    const RegState &atPf = df.in[2];
    ASSERT_TRUE(atPf.feasible);
    EXPECT_EQ(atPf.reg[1].iv.lo, 0x1000 + 64);
    EXPECT_EQ(atPf.reg[1].iv.hi, 0x1FFF + 64);
}

} // namespace
} // namespace epf
