/**
 * @file
 * Fault-injection and graceful-degradation tests (tier 1).
 *
 * Covers the deterministic injector itself (stream independence,
 * period/burst semantics, the EPF_FAULTS grammar), the configuration
 * validation that replaced kernel-reachable asserts, directed checks of
 * every degradation mechanism (bounded-queue drops, event-storm
 * throttle, quarantine watchdog, sweep wall-clock watchdog), and fast
 * single-cell instances of the pure-hint parity property.  The full
 * schedule x workload x technique matrix runs in
 * tests/fault_parity_test.cpp (tier 2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/golden.hpp"
#include "runner/sweep.hpp"
#include "sim/fault.hpp"

namespace epf
{
namespace
{

/** Fire pattern of one site over @p visits eligible instants. */
std::vector<bool>
firePattern(const FaultConfig &cfg, std::uint64_t seed, FaultSite site,
            unsigned visits)
{
    FaultInjector inj(cfg, seed);
    std::vector<bool> out;
    out.reserve(visits);
    for (unsigned i = 0; i < visits; ++i)
        out.push_back(inj.fire(site));
    return out;
}

// ---------------------------------------------------------------------------
// Injector unit tests.
// ---------------------------------------------------------------------------

TEST(FaultInjector, ScheduleIsAPureFunctionOfSeedAndConfig)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.at(FaultSite::kObsDrop) = {.prob = 8192};

    const auto a = firePattern(cfg, 0xE7F5EED5, FaultSite::kObsDrop, 4096);
    const auto b = firePattern(cfg, 0xE7F5EED5, FaultSite::kObsDrop, 4096);
    EXPECT_EQ(a, b);

    const auto c = firePattern(cfg, 0xE7F5EED6, FaultSite::kObsDrop, 4096);
    EXPECT_NE(a, c);

    // A 1/8 probability over 4096 visits fires, statistically, hundreds
    // of times; exactly zero or all would mean the draw is broken.
    const auto hits = static_cast<std::size_t>(
        std::count(a.begin(), a.end(), true));
    EXPECT_GT(hits, 256u);
    EXPECT_LT(hits, 1024u);
}

TEST(FaultInjector, PeriodFiresOnEveryNthVisit)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.at(FaultSite::kReqDrop) = {.period = 4};

    FaultInjector inj(cfg, 1);
    for (unsigned visit = 1; visit <= 64; ++visit)
        EXPECT_EQ(inj.fire(FaultSite::kReqDrop), visit % 4 == 0) << visit;
    EXPECT_EQ(inj.fired(FaultSite::kReqDrop), 16u);
    EXPECT_EQ(inj.visits(FaultSite::kReqDrop), 64u);
    EXPECT_EQ(inj.totalFired(), 16u);
}

TEST(FaultInjector, BurstExtendsATriggerAcrossConsecutiveVisits)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.at(FaultSite::kObsOverflow) = {.period = 10, .burst = 3};

    FaultInjector inj(cfg, 1);
    unsigned fired = 0;
    std::vector<unsigned> fire_visits;
    for (unsigned visit = 1; visit <= 30; ++visit) {
        if (inj.fire(FaultSite::kObsOverflow)) {
            ++fired;
            fire_visits.push_back(visit);
        }
    }
    // Triggers at 10 and 20, each extended to 3 consecutive visits; the
    // visit-30 trigger opens the third burst.
    EXPECT_EQ(fire_visits,
              (std::vector<unsigned>{10, 11, 12, 20, 21, 22, 30}));
    EXPECT_EQ(fired, 7u);
}

TEST(FaultInjector, SiteStreamsAreIndependent)
{
    // Enabling (or visiting) one site must not shift another site's
    // schedule: each site owns its own RNG stream.
    FaultConfig only_drop;
    only_drop.enabled = true;
    only_drop.at(FaultSite::kObsDrop) = {.prob = 8192};

    FaultConfig both = only_drop;
    both.at(FaultSite::kDramJitter) = {.prob = 16384};

    FaultInjector a(only_drop, 99);
    FaultInjector b(both, 99);
    for (unsigned i = 0; i < 2048; ++i) {
        EXPECT_EQ(a.fire(FaultSite::kObsDrop), b.fire(FaultSite::kObsDrop))
            << i;
        // b also visits the jitter site between obs visits; a does not.
        b.fire(FaultSite::kDramJitter);
    }
}

TEST(FaultInjector, MagnitudeDrawsComeFromTheSiteStream)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.maxDelayTicks = 100;
    cfg.maxDramJitterTicks = 7;
    FaultInjector inj(cfg, 5);
    for (int i = 0; i < 256; ++i) {
        const Tick d = inj.delayTicks(FaultSite::kObsDelay);
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, 100u);
        const Tick j = inj.jitterTicks();
        EXPECT_GE(j, 1u);
        EXPECT_LE(j, 7u);
    }
}

// ---------------------------------------------------------------------------
// Canonical schedules and the EPF_FAULTS grammar.
// ---------------------------------------------------------------------------

TEST(FaultSchedules, AllCanonicalSchedulesAreWellFormed)
{
    for (unsigned idx = 0; idx < kNumFaultSchedules; ++idx) {
        const FaultConfig cfg = faultSchedule(idx);
        EXPECT_TRUE(cfg.enabled) << idx;
        EXPECT_TRUE(cfg.anySite()) << idx;
    }
    EXPECT_THROW(faultSchedule(kNumFaultSchedules), std::invalid_argument);
}

TEST(FaultParse, GrammarAccepted)
{
    EXPECT_FALSE(parseFaultConfig("").enabled);

    const FaultConfig sched = parseFaultConfig("3");
    EXPECT_TRUE(sched.enabled);
    EXPECT_EQ(sched.at(FaultSite::kReqDrop).prob,
              faultSchedule(3).at(FaultSite::kReqDrop).prob);

    const FaultConfig cfg =
        parseFaultConfig("obsDrop=1/8,dramJitter=@64,emitStorm=@16x4");
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.at(FaultSite::kObsDrop).prob, 65536u / 8);
    EXPECT_EQ(cfg.at(FaultSite::kDramJitter).period, 64u);
    EXPECT_EQ(cfg.at(FaultSite::kEmitStorm).period, 16u);
    EXPECT_EQ(cfg.at(FaultSite::kEmitStorm).burst, 4u);

    // A tiny probability must round to >= 1, not silently to zero.
    EXPECT_GE(parseFaultConfig("reqDrop=1/1000000").at(FaultSite::kReqDrop)
                  .prob,
              1u);
}

TEST(FaultParse, MalformedSpecsThrow)
{
    const char *bad[] = {
        "bogus=1/2",     // unknown site
        "obsDrop",       // no '='
        "obsDrop=",      // empty trigger
        "obsDrop=1",     // neither num/den nor @period
        "obsDrop=1/0",   // zero denominator
        "obsDrop=3/2",   // probability > 1
        "obsDrop=@0",    // zero period
        "obsDrop=@4x0",  // zero burst
        "obsDrop=@4xq",  // malformed burst
        "99",            // schedule index out of range
    };
    for (const char *spec : bad)
        EXPECT_THROW(parseFaultConfig(spec), std::invalid_argument) << spec;
}

// ---------------------------------------------------------------------------
// Configuration validation (kernel-reachable asserts became errors).
// ---------------------------------------------------------------------------

TEST(FaultConfigValidation, InvalidPpfConfigThrowsInsteadOfAsserting)
{
    const auto run_with = [](auto &&mutate) {
        RunConfig cfg = goldenConfig(Technique::kManual);
        cfg.scale.factor = 0.005;
        mutate(cfg.ppf);
        return runExperiment("RandAcc", cfg);
    };
    EXPECT_THROW(run_with([](PpfConfig &p) { p.numPpus = 0; }),
                 std::invalid_argument);
    EXPECT_THROW(run_with([](PpfConfig &p) { p.ppuPeriod = 0; }),
                 std::invalid_argument);
    EXPECT_THROW(run_with([](PpfConfig &p) { p.obsQueueCapacity = 0; }),
                 std::invalid_argument);
    EXPECT_THROW(run_with([](PpfConfig &p) { p.reqQueueCapacity = 0; }),
                 std::invalid_argument);
    EXPECT_THROW(run_with([](PpfConfig &p) {
                     p.stormWindowTicks = 100;
                     p.stormThreshold = 0;
                 }),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pure-hint parity, fast single cells (the matrix is tier 2).
// ---------------------------------------------------------------------------

/** Stats JSON with the fault/degradation counters stripped: under
 *  injection, parity of everything else is NOT expected (timing moves)
 *  — these tests compare checksum and instrs directly instead. */
void
expectArchitecturalParity(const RunResult &clean, const RunResult &faulted)
{
    EXPECT_EQ(clean.checksum, faulted.checksum);
    EXPECT_EQ(clean.instrs, faulted.instrs);
}

TEST(FaultParity, LayeredScheduleLeavesResultsUntouched)
{
    RunConfig cfg = goldenConfig(Technique::kManual);
    const RunResult clean = runExperiment("RandAcc", cfg);

    cfg.faults = faultSchedule(11); // every site at once
    const RunResult faulted = runExperiment("RandAcc", cfg);
    expectArchitecturalParity(clean, faulted);
    EXPECT_GT(faulted.faultsInjected, 0u);
    EXPECT_GT(faulted.detail.get("fault.injected"), 0.0);
    EXPECT_EQ(clean.faultsInjected, 0u);
}

TEST(FaultParity, JitterHitsNonPpfTechniquesToo)
{
    // DRAM jitter and TLB faults bite even without a programmable
    // prefetcher in the machine.
    RunConfig cfg = goldenConfig(Technique::kStride);
    const RunResult clean = runExperiment("RandAcc", cfg);

    cfg.faults = faultSchedule(8);
    const RunResult faulted = runExperiment("RandAcc", cfg);
    expectArchitecturalParity(clean, faulted);
    EXPECT_GT(faulted.detail.get("fault.dramJitter.injected"), 0.0);
}

TEST(FaultParity, RunawayKernelsAreContained)
{
    RunConfig cfg = goldenConfig(Technique::kManual);
    const RunResult clean = runExperiment("G500-CSR", cfg);

    cfg.faults = faultSchedule(10);
    const RunResult faulted = runExperiment("G500-CSR", cfg);
    expectArchitecturalParity(clean, faulted);
    EXPECT_GT(faulted.detail.get("fault.runaway.injected"), 0.0);
}

// ---------------------------------------------------------------------------
// Graceful degradation mechanisms.
// ---------------------------------------------------------------------------

TEST(FaultDegradation, StormThrottleEngagesAndPreservesResults)
{
    RunConfig cfg = goldenConfig(Technique::kManual);
    const RunResult clean = runExperiment("RandAcc", cfg);

    cfg.faults = parseFaultConfig("emitStorm=@3");
    cfg.faults.stormFactor = 16;
    cfg.ppf.stormWindowTicks = 50'000;
    cfg.ppf.stormThreshold = 8;
    const RunResult faulted = runExperiment("RandAcc", cfg);

    expectArchitecturalParity(clean, faulted);
    EXPECT_GT(faulted.detail.get("ppf.throttleEntries"), 0.0);
    EXPECT_GT(faulted.detail.get("ppf.throttleDropped"), 0.0);
}

TEST(FaultDegradation, QuarantineKillsReenablesDeterministically)
{
    RunConfig cfg = goldenConfig(Technique::kManual);
    const RunResult clean = runExperiment("RandAcc", cfg);

    cfg.faults = parseFaultConfig("runaway=@3");
    cfg.ppf.quarantineThreshold = 2;
    cfg.ppf.quarantineBaseTicks = 5'000;
    cfg.ppf.quarantineBackoffMax = 3;
    const RunResult a = runExperiment("RandAcc", cfg);
    const RunResult b = runExperiment("RandAcc", cfg);

    expectArchitecturalParity(clean, a);
    EXPECT_GT(a.detail.get("ppf.quarantineKills"), 0.0);
    EXPECT_GT(a.detail.get("ppf.quarantineSkips"), 0.0);
    EXPECT_GT(a.detail.get("ppf.quarantineReenables"), 0.0);

    // Same seed, same schedule: every kill/re-enable transition happens
    // at the identical tick — the transition-log hashes match exactly.
    EXPECT_EQ(a.detail.get("ppf.quarantineLogHash"),
              b.detail.get("ppf.quarantineLogHash"));
    EXPECT_EQ(a.detail.get("ppf.quarantineKills"),
              b.detail.get("ppf.quarantineKills"));
    EXPECT_EQ(a.detail.get("ppf.quarantineReenables"),
              b.detail.get("ppf.quarantineReenables"));
}

TEST(FaultDegradation, SweepIsThreadCountInvariantUnderFaults)
{
    // The whole degradation pipeline — schedules, quarantine, throttle —
    // must be bit-identical at any host thread count.
    const auto sweep_stats = [](unsigned threads) {
        SweepEngine::Options opts;
        opts.threads = threads;
        SweepEngine engine(opts);
        RunConfig proto = goldenConfig(Technique::kManual);
        proto.faults = faultSchedule(11);
        proto.ppf.quarantineThreshold = 3;
        proto.ppf.quarantineBaseTicks = 10'000;
        proto.ppf.stormWindowTicks = 50'000;
        proto.ppf.stormThreshold = 64;
        engine.addGrid({"IntSort", "RandAcc"},
                       {Technique::kManual, Technique::kNone}, proto);
        std::vector<std::string> stats;
        for (const auto &o : engine.run()) {
            EXPECT_FALSE(o.failed) << o.error;
            stats.push_back(goldenStatsJson(
                {o.cell.workload, o.cell.config.technique}, o.result));
        }
        return stats;
    };
    EXPECT_EQ(sweep_stats(1), sweep_stats(4));
}

TEST(FaultDegradation, QuarantineScheduleSurvivesCaptureReplay)
{
    // Capture a faulted run, then replay the trace under the identical
    // fault config and seed: the fault schedule, every quarantine
    // transition, and the full stats block must reproduce exactly.
    RunConfig cfg = goldenConfig(Technique::kManual);
    cfg.faults = faultSchedule(11);
    cfg.ppf.quarantineThreshold = 3;
    cfg.ppf.quarantineBaseTicks = 10'000;
    cfg.tracePath = ::testing::TempDir() + "faulted_capture.epftrace";
    const RunResult live = runExperiment("RandAcc", cfg);
    EXPECT_GT(live.faultsInjected, 0u);

    RunConfig replay_cfg = cfg;
    replay_cfg.tracePath.clear();
    const RunResult replay =
        runExperiment("trace:" + cfg.tracePath, replay_cfg);
    EXPECT_EQ(goldenStatsJson({"cell", cfg.technique}, live),
              goldenStatsJson({"cell", cfg.technique}, replay));
}

// ---------------------------------------------------------------------------
// Sweep wall-clock watchdog.
// ---------------------------------------------------------------------------

// Released by the watchdog test after the engine throws; static so the
// detached (unjoinable) worker can keep reading it while it winds down.
std::atomic<bool> g_release_hang{false};

TEST(FaultWatchdog, HungCellFailsTheSweepWithANamedError)
{
    SweepEngine::Options opts;
    opts.threads = 2;
    opts.cellTimeoutSeconds = 0.2;
    opts.runCell = [](const SweepCell &cell) {
        if (cell.workload == "HangWL") {
            while (!g_release_hang.load())
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return RunResult{};
    };
    SweepEngine engine(opts);
    engine.add("FastWL", goldenConfig(Technique::kNone));
    engine.add("HangWL", goldenConfig(Technique::kNone), "hung-label");

    try {
        engine.run();
        FAIL() << "watchdog did not fire";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
        EXPECT_NE(msg.find("HangWL"), std::string::npos) << msg;
        EXPECT_NE(msg.find("hung-label"), std::string::npos) << msg;
    }
    g_release_hang = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

TEST(FaultWatchdog, FastCellsPassUnderAnArmedWatchdog)
{
    SweepEngine::Options opts;
    opts.threads = 2;
    opts.cellTimeoutSeconds = 60.0;
    opts.runCell = [](const SweepCell &) {
        RunResult r;
        r.cycles = 1;
        return r;
    };
    SweepEngine engine(opts);
    engine.add("A", goldenConfig(Technique::kNone));
    engine.add("B", goldenConfig(Technique::kNone));
    engine.add("C", goldenConfig(Technique::kNone));
    const auto outcomes = engine.run();
    ASSERT_EQ(outcomes.size(), 3u);
    for (const auto &o : outcomes) {
        EXPECT_FALSE(o.failed) << o.error;
        EXPECT_EQ(o.result.cycles, 1u);
    }
}

TEST(FaultWatchdog, EnvKnobsParse)
{
    ::setenv("EPF_CELL_TIMEOUT", "2.5", 1);
    EXPECT_DOUBLE_EQ(sweepCellTimeoutFromEnv(), 2.5);
    ::unsetenv("EPF_CELL_TIMEOUT");
    EXPECT_DOUBLE_EQ(sweepCellTimeoutFromEnv(9.0), 9.0);

    ::setenv("EPF_FAULTS", "emitStorm=@16x4", 1);
    const FaultConfig cfg = sweepFaultsFromEnv();
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.at(FaultSite::kEmitStorm).period, 16u);
    ::unsetenv("EPF_FAULTS");
    EXPECT_FALSE(sweepFaultsFromEnv().enabled);
}

} // namespace
} // namespace epf
