/**
 * @file
 * End-to-end integration tests: whole-system runs per technique with
 * functional-correctness checks and directional performance invariants
 * from the paper (prefetching never corrupts results, the programmable
 * prefetcher beats no-prefetching, event triggering beats blocking for
 * pointer-chasing workloads, ...).  Inputs are scaled small to keep the
 * suite fast.
 */

#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace epf
{
namespace
{

RunConfig
tinyConfig(Technique t)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = 0.02;
    return cfg;
}

class TechniqueMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, Technique>>
{
};

TEST_P(TechniqueMatrix, RunsAndPreservesResults)
{
    auto [name, tech] = GetParam();
    RunResult base = runExperiment(name, tinyConfig(Technique::kNone));
    RunResult res = runExperiment(name, tinyConfig(tech));
    if (!res.available)
        GTEST_SKIP() << res.note;
    // Prefetching is purely a performance feature: results identical.
    EXPECT_EQ(res.checksum, base.checksum) << name;
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GE(res.pfUtilisation, 0.0);
    EXPECT_LE(res.pfUtilisation, 1.0);
    EXPECT_GE(res.l1ReadHitRate, 0.0);
    EXPECT_LE(res.l1ReadHitRate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, TechniqueMatrix,
    ::testing::Combine(
        ::testing::Values("G500-CSR", "G500-List", "HJ-2", "HJ-8",
                          "PageRank", "RandAcc", "IntSort", "ConjGrad"),
        ::testing::Values(Technique::kStride, Technique::kGhbRegular,
                          Technique::kSoftware, Technique::kPragma,
                          Technique::kConverted, Technique::kManual,
                          Technique::kManualBlocked)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_" +
                        techniqueName(std::get<1>(info.param));
        std::string out;
        for (char c : n)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

class ManualSpeedupParam : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ManualSpeedupParam, ManualBeatsNoPrefetch)
{
    RunResult base =
        runExperiment(GetParam(), tinyConfig(Technique::kNone));
    RunResult ppf =
        runExperiment(GetParam(), tinyConfig(Technique::kManual));
    ASSERT_TRUE(ppf.available);
    EXPECT_LT(ppf.cycles, base.cycles) << GetParam();
    EXPECT_GT(ppf.l1ReadHitRate, base.l1ReadHitRate) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ManualSpeedupParam,
                         ::testing::Values("HJ-2", "HJ-8", "PageRank",
                                           "RandAcc", "IntSort",
                                           "ConjGrad"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(IntegrationTest, PageRankSoftwareUnavailable)
{
    RunResult res =
        runExperiment("PageRank", tinyConfig(Technique::kSoftware));
    EXPECT_FALSE(res.available);
    EXPECT_NE(res.note.find("software prefetch"), std::string::npos);
}

TEST(IntegrationTest, BlockedNoFasterThanEvents)
{
    // Fig. 11: for the pointer-chasing join, event triggering must not
    // lose to blocking (it wins clearly at paper scale).
    RunResult events =
        runExperiment("HJ-8", tinyConfig(Technique::kManual));
    RunResult blocked =
        runExperiment("HJ-8", tinyConfig(Technique::kManualBlocked));
    ASSERT_TRUE(events.available);
    ASSERT_TRUE(blocked.available);
    EXPECT_LE(events.cycles, blocked.cycles + blocked.cycles / 20);
}

TEST(IntegrationTest, PpuActivityOnlyForProgrammable)
{
    RunResult stride =
        runExperiment("IntSort", tinyConfig(Technique::kStride));
    EXPECT_TRUE(stride.ppuActivity.empty());
    RunResult manual =
        runExperiment("IntSort", tinyConfig(Technique::kManual));
    ASSERT_EQ(manual.ppuActivity.size(), 12u);
    double total = 0;
    for (double a : manual.ppuActivity) {
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
        total += a;
    }
    EXPECT_GT(total, 0.0);
}

TEST(IntegrationTest, LowestIdSchedulingSkew)
{
    // Fig. 10's premise: with the lowest-ID policy, PPU 0 works at least
    // as much as PPU 11.
    RunResult manual =
        runExperiment("ConjGrad", tinyConfig(Technique::kManual));
    ASSERT_EQ(manual.ppuActivity.size(), 12u);
    EXPECT_GE(manual.ppuActivity.front(), manual.ppuActivity.back());
}

TEST(IntegrationTest, StrideHelpsStreamingButNotRandom)
{
    RunResult base =
        runExperiment("ConjGrad", tinyConfig(Technique::kNone));
    RunResult stride =
        runExperiment("ConjGrad", tinyConfig(Technique::kStride));
    // The colidx/a[] streams are stride friendly: some improvement.
    EXPECT_LT(stride.cycles, base.cycles);

    RunResult base_r =
        runExperiment("RandAcc", tinyConfig(Technique::kNone));
    RunResult stride_r =
        runExperiment("RandAcc", tinyConfig(Technique::kStride));
    // The random table dominates: stride gains little (allow 15%).
    double gain = static_cast<double>(base_r.cycles) /
                  static_cast<double>(stride_r.cycles);
    EXPECT_LT(gain, 1.15);
}

TEST(IntegrationTest, FunctionallyDeterministicAcrossRuns)
{
    // Guest addresses are live host addresses, so cycle counts can vary
    // slightly with allocator layout between runs; functional results
    // and traffic must stay (near-)identical.
    RunResult a = runExperiment("HJ-2", tinyConfig(Technique::kManual));
    RunResult b = runExperiment("HJ-2", tinyConfig(Technique::kManual));
    EXPECT_EQ(a.checksum, b.checksum);
    double dc = std::abs(static_cast<double>(a.cycles) -
                         static_cast<double>(b.cycles));
    EXPECT_LT(dc / static_cast<double>(a.cycles), 0.05);
}

TEST(IntegrationTest, PpuClockScalingMonotoneIsh)
{
    // Halving the PPU clock must not make things dramatically faster.
    RunConfig slow = tinyConfig(Technique::kManual);
    slow.ppf.ppuPeriod = 64; // 250 MHz
    RunConfig fast = tinyConfig(Technique::kManual);
    fast.ppf.ppuPeriod = 8; // 2 GHz
    RunResult r_slow = runExperiment("ConjGrad", slow);
    RunResult r_fast = runExperiment("ConjGrad", fast);
    EXPECT_LE(r_fast.cycles, r_slow.cycles + r_slow.cycles / 10);
}

TEST(IntegrationTest, TrafficAccountingSane)
{
    RunResult base =
        runExperiment("IntSort", tinyConfig(Technique::kNone));
    RunResult manual =
        runExperiment("IntSort", tinyConfig(Technique::kManual));
    // Stride-indirect prefetching is accurate: extra DRAM reads stay
    // within a modest bound of the baseline (paper: "negligible").
    EXPECT_LT(static_cast<double>(manual.dramReads),
              static_cast<double>(base.dramReads) * 1.3);
}

} // namespace
} // namespace epf
