/**
 * @file
 * ISA round-trip fuzzer (tier 2).
 *
 * Property: any PPU instruction survives every representation change
 * losslessly.  For 10k seeded-random programs (plus one deterministic
 * program covering every opcode), the same kernel is produced three
 * ways — raw Instr structs, the KernelBuilder fluent API, and
 * disassemble() -> parseInstr() — and all three must (a) re-encode to
 * identical bytes and (b) execute with identical effects: exit reason,
 * cycle count, and the exact emitted prefetch sequence.
 *
 * Differential harness: every program additionally runs through the
 * pre-decoded direct-threaded interpreter (predecode.hpp) at several
 * step budgets — including tiny ones that truncate execution in the
 * middle of a fused macro-op — and must match the reference switch
 * interpreter bit-for-bit: exit reason, cycle count, the emit
 * sequence, and the final register file.
 *
 * Dataflow soundness oracle: every program is also run through the
 * abstract interpreter (analysis/dataflow.hpp) under a context that
 * states exactly the facts of the concrete event, then traced on the
 * reference interpreter — every concrete register value observed at
 * every step must lie inside the abstract value the analysis computed
 * for that pc, an executed pc must never be claimed infeasible, and an
 * instruction the analysis proved trap-free must never be the one that
 * traps.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <iterator>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/analysis/dataflow.hpp"
#include "isa/analysis/verifier.hpp"
#include "isa/builder.hpp"
#include "isa/disasm.hpp"
#include "isa/interpreter.hpp"
#include "isa/predecode.hpp"
#include "sim/rng.hpp"

namespace epf
{
namespace
{

constexpr unsigned kPrograms = 10'000;
constexpr unsigned kMaxLen = 24;
constexpr unsigned kFuzzSteps = 256;

/** Canonical byte encoding of an instruction (no struct padding). */
std::array<std::uint8_t, 12>
encode(const Instr &in)
{
    std::array<std::uint8_t, 12> b{};
    b[0] = static_cast<std::uint8_t>(in.op);
    b[1] = in.rd;
    b[2] = in.rs;
    b[3] = in.rt;
    const auto imm = static_cast<std::uint64_t>(in.imm);
    for (int i = 0; i < 8; ++i)
        b[4 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(imm >> (8 * i));
    return b;
}

std::vector<std::uint8_t>
encodeAll(const std::vector<Instr> &code)
{
    std::vector<std::uint8_t> out;
    for (const Instr &in : code) {
        const auto b = encode(in);
        out.insert(out.end(), b.begin(), b.end());
    }
    return out;
}

/** Execution effects: result fields plus the exact emit sequence. */
struct Effects
{
    ExitReason exit;
    std::uint32_t cycles;
    std::uint32_t emitted;
    std::vector<PrefetchEmit> emits;

    bool
    operator==(const Effects &o) const
    {
        if (exit != o.exit || cycles != o.cycles || emitted != o.emitted ||
            emits.size() != o.emits.size())
            return false;
        for (std::size_t i = 0; i < emits.size(); ++i) {
            if (emits[i].vaddr != o.emits[i].vaddr ||
                emits[i].tag != o.emits[i].tag ||
                emits[i].cbKernel != o.emits[i].cbKernel)
                return false;
        }
        return true;
    }
};

Effects
execute(const Kernel &k, const EventContext &ctx)
{
    Effects fx;
    const ExecResult res = Interpreter::run(
        k, ctx, [&fx](const PrefetchEmit &e) { fx.emits.push_back(e); },
        kFuzzSteps);
    fx.exit = res.exit;
    fx.cycles = res.cycles;
    fx.emitted = res.emitted;
    return fx;
}

/**
 * Differential check: the pre-decoded interpreter — in both modes,
 * superblocks on (the PPF default) and off (the PR 5 fused-macro-op
 * baseline) — must match the reference switch interpreter bit-for-bit
 * on @p code: exit reason, cycles, emit sequence and the final
 * register file, at the full fuzz budget and at tiny budgets chosen to
 * truncate execution inside fused macro-ops and superblocks.
 */
void
checkDecodedMatchesReference(const std::vector<Instr> &code,
                             const EventContext &ctx,
                             const std::string &what)
{
    const Kernel k{"fuzz", code};
    const DecodedKernel dkSb(k, /*superblocks=*/true);
    const DecodedKernel dkPlain(k, /*superblocks=*/false);
    for (unsigned max_steps : {kFuzzSteps, 7u, 2u, 1u}) {
        std::vector<PrefetchEmit> refEmits;
        std::uint64_t refRegs[kPpuRegs];
        const ExecResult ref = Interpreter::run(
            k, ctx,
            [&](const PrefetchEmit &e) { refEmits.push_back(e); },
            max_steps, refRegs);

        for (const DecodedKernel *dk : {&dkSb, &dkPlain}) {
            std::vector<PrefetchEmit> decEmits;
            std::uint64_t decRegs[kPpuRegs];
            const ExecResult dec = DecodedKernel::run(
                *dk, ctx,
                [&](const PrefetchEmit &e) { decEmits.push_back(e); },
                max_steps, decRegs);

            const std::string where =
                what + " @max_steps=" + std::to_string(max_steps) +
                (dk->superblocksEnabled() ? " [superblocks]"
                                          : " [decoded]");
            ASSERT_EQ(ref.exit, dec.exit)
                << where << ": exit reason diverged\n" << disassemble(k);
            ASSERT_EQ(ref.cycles, dec.cycles)
                << where << ": cycle count diverged\n" << disassemble(k);
            ASSERT_EQ(ref.emitted, dec.emitted)
                << where << ": emit count diverged\n" << disassemble(k);
            ASSERT_EQ(refEmits.size(), decEmits.size()) << where;
            for (std::size_t i = 0; i < refEmits.size(); ++i) {
                ASSERT_TRUE(refEmits[i].vaddr == decEmits[i].vaddr &&
                            refEmits[i].tag == decEmits[i].tag &&
                            refEmits[i].cbKernel == decEmits[i].cbKernel)
                    << where << ": emit " << i << " diverged\n"
                    << disassemble(k);
            }
            ASSERT_EQ(0, std::memcmp(refRegs, decRegs, sizeof(refRegs)))
                << where << ": register file diverged\n" << disassemble(k);
        }
    }
}

/** All opcodes the generator draws from (every ISA instruction). */
constexpr Opcode kAllOpcodes[] = {
    Opcode::kHalt,     Opcode::kNop,      Opcode::kLi,
    Opcode::kMov,      Opcode::kAdd,      Opcode::kSub,
    Opcode::kMul,      Opcode::kDiv,      Opcode::kAnd,
    Opcode::kOr,       Opcode::kXor,      Opcode::kShl,
    Opcode::kShr,      Opcode::kAddi,     Opcode::kMuli,
    Opcode::kDivi,     Opcode::kAndi,     Opcode::kShli,
    Opcode::kShri,     Opcode::kVaddr,    Opcode::kLineBase,
    Opcode::kLdLine,   Opcode::kLdLine32, Opcode::kGread,
    Opcode::kLookahead, Opcode::kPrefetch, Opcode::kPrefetchTag,
    Opcode::kPrefetchCb, Opcode::kBeq,    Opcode::kBne,
    Opcode::kBlt,      Opcode::kBge,      Opcode::kJmp,
};

/** Occasionally-extreme signed immediate. */
std::int64_t
fuzzImm(Rng &rng)
{
    switch (rng.below(8)) {
      case 0: return 0;
      case 1: return -1;
      case 2: return std::numeric_limits<std::int64_t>::min();
      case 3: return std::numeric_limits<std::int64_t>::max();
      default:
        return static_cast<std::int64_t>(rng.next());
    }
}

/**
 * One random instruction at position @p at of a @p len-instruction
 * program.  Branch targets stay in [0, len] so the same program can be
 * reproduced through KernelBuilder labels (a bound label must point
 * into the program; target == len is the implicit fall-off-the-end).
 */
Instr
fuzzInstr(Rng &rng, unsigned at, unsigned len,
          std::optional<Opcode> force = std::nullopt)
{
    Instr in;
    in.op = force ? *force : kAllOpcodes[rng.below(std::size(kAllOpcodes))];
    switch (in.op) {
      case Opcode::kHalt:
      case Opcode::kNop:
        break;
      case Opcode::kVaddr:
      case Opcode::kLineBase:
        in.rd = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        break;
      case Opcode::kLi:
        in.rd = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.imm = fuzzImm(rng);
        break;
      case Opcode::kMov:
        in.rd = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.rs = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
        in.rd = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.rs = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.rt = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        break;
      case Opcode::kAddi:
      case Opcode::kMuli:
      case Opcode::kDivi: // imm 0 exercises the div-by-zero trap
      case Opcode::kAndi:
      case Opcode::kShli:
      case Opcode::kShri:
      case Opcode::kLdLine:
      case Opcode::kLdLine32:
        in.rd = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.rs = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.imm = fuzzImm(rng);
        break;
      case Opcode::kGread:
        in.rd = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        // Mostly valid indices; sometimes out of range (traps).
        in.imm = static_cast<std::int64_t>(rng.below(kGlobalRegs + 8));
        break;
      case Opcode::kLookahead:
        in.rd = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.imm = static_cast<std::int64_t>(rng.below(8));
        break;
      case Opcode::kPrefetch:
        in.rs = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        break;
      case Opcode::kPrefetchTag:
      case Opcode::kPrefetchCb:
        in.rs = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.imm = static_cast<std::int64_t>(rng.below(16));
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
        in.rs = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.rt = static_cast<std::uint8_t>(rng.below(kPpuRegs));
        in.imm = static_cast<std::int64_t>(rng.below(len + 1)) -
                 static_cast<std::int64_t>(at) - 1;
        break;
      case Opcode::kJmp:
        in.imm = static_cast<std::int64_t>(rng.below(len + 1)) -
                 static_cast<std::int64_t>(at) - 1;
        break;
    }
    return in;
}

/** Rebuild @p code through the KernelBuilder fluent API. */
Kernel
rebuildViaBuilder(const std::vector<Instr> &code)
{
    KernelBuilder b("fuzz");
    // One label per possible target index; bound as emission reaches it.
    std::vector<KernelBuilder::Label> labels;
    std::vector<bool> used(code.size() + 1, false);
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instr &in = code[i];
        if (in.op == Opcode::kBeq || in.op == Opcode::kBne ||
            in.op == Opcode::kBlt || in.op == Opcode::kBge ||
            in.op == Opcode::kJmp)
            used[static_cast<std::size_t>(
                static_cast<std::int64_t>(i) + 1 + in.imm)] = true;
    }
    labels.reserve(used.size());
    for (std::size_t i = 0; i < used.size(); ++i)
        labels.push_back(b.newLabel());

    for (std::size_t i = 0; i < code.size(); ++i) {
        if (used[i])
            b.bind(labels[i]);
        const Instr &in = code[i];
        auto target = [&](std::int64_t imm) {
            return labels[static_cast<std::size_t>(
                static_cast<std::int64_t>(i) + 1 + imm)];
        };
        switch (in.op) {
          case Opcode::kHalt: b.halt(); break;
          case Opcode::kNop: b.nop(); break;
          case Opcode::kLi: b.li(in.rd, in.imm); break;
          case Opcode::kMov: b.mov(in.rd, in.rs); break;
          case Opcode::kAdd: b.add(in.rd, in.rs, in.rt); break;
          case Opcode::kSub: b.sub(in.rd, in.rs, in.rt); break;
          case Opcode::kMul: b.mul(in.rd, in.rs, in.rt); break;
          case Opcode::kDiv: b.div(in.rd, in.rs, in.rt); break;
          case Opcode::kAnd: b.andr(in.rd, in.rs, in.rt); break;
          case Opcode::kOr: b.orr(in.rd, in.rs, in.rt); break;
          case Opcode::kXor: b.xorr(in.rd, in.rs, in.rt); break;
          case Opcode::kShl: b.shl(in.rd, in.rs, in.rt); break;
          case Opcode::kShr: b.shr(in.rd, in.rs, in.rt); break;
          case Opcode::kAddi: b.addi(in.rd, in.rs, in.imm); break;
          case Opcode::kMuli: b.muli(in.rd, in.rs, in.imm); break;
          case Opcode::kDivi: b.divi(in.rd, in.rs, in.imm); break;
          case Opcode::kAndi: b.andi(in.rd, in.rs, in.imm); break;
          case Opcode::kShli: b.shli(in.rd, in.rs, in.imm); break;
          case Opcode::kShri: b.shri(in.rd, in.rs, in.imm); break;
          case Opcode::kVaddr: b.vaddr(in.rd); break;
          case Opcode::kLineBase: b.lineBase(in.rd); break;
          case Opcode::kLdLine: b.ldLine(in.rd, in.rs, in.imm); break;
          case Opcode::kLdLine32: b.ldLine32(in.rd, in.rs, in.imm); break;
          case Opcode::kGread:
            b.gread(in.rd, static_cast<unsigned>(in.imm));
            break;
          case Opcode::kLookahead:
            b.lookahead(in.rd, static_cast<unsigned>(in.imm));
            break;
          case Opcode::kPrefetch: b.prefetch(in.rs); break;
          case Opcode::kPrefetchTag:
            b.prefetchTag(in.rs, in.imm);
            break;
          case Opcode::kPrefetchCb:
            b.prefetchCb(in.rs, static_cast<KernelId>(in.imm));
            break;
          case Opcode::kBeq: b.beq(in.rs, in.rt, target(in.imm)); break;
          case Opcode::kBne: b.bne(in.rs, in.rt, target(in.imm)); break;
          case Opcode::kBlt: b.blt(in.rs, in.rt, target(in.imm)); break;
          case Opcode::kBge: b.bge(in.rs, in.rt, target(in.imm)); break;
          case Opcode::kJmp: b.jmp(target(in.imm)); break;
        }
    }
    if (used[code.size()])
        b.bind(labels[code.size()]);
    return b.build();
}

/** Rebuild via disassemble() -> parseInstr(), line by line. */
std::vector<Instr>
rebuildViaText(const std::vector<Instr> &code)
{
    std::vector<Instr> out;
    out.reserve(code.size());
    for (const Instr &in : code)
        out.push_back(parseInstr(disassemble(in)));
    return out;
}

EventContext
fuzzContext(Rng &rng, const std::vector<std::uint64_t> &globals,
            const std::vector<std::uint64_t> &lookahead, LineData &line)
{
    EventContext ctx;
    ctx.vaddr = rng.next();
    ctx.hasLine = rng.below(2) == 0;
    for (auto &b : line)
        b = static_cast<std::byte>(rng.next());
    ctx.line = line;
    ctx.globalRegs = globals.data();
    ctx.lookahead = lookahead.data();
    ctx.lookaheadEntries = static_cast<unsigned>(lookahead.size());
    return ctx;
}

/**
 * Static-analyzer cross-validation: the verifier's claims must never
 * contradict what actually happens when the program runs.  The analysis
 * context mirrors what is knowable about @p ctx — the event's line kind
 * and the lookahead entry count — so trap-free proofs are as strong as
 * the analyzer can make them.
 */
void
checkAnalyzerAgrees(const Kernel &k, const EventContext &ctx,
                    const Effects &fx, const std::string &what)
{
    analysis::KernelContext actx;
    actx.line = ctx.hasLine ? analysis::KernelContext::Line::kAlways
                            : analysis::KernelContext::Line::kNever;
    actx.lookaheadEntries = static_cast<int>(ctx.lookaheadEntries);
    const analysis::KernelAnalysis ka = analysis::analyzeKernel(k, actx);

    ASSERT_LE(fx.cycles, ka.maxCycles)
        << what << ": observed cycles exceed the static bound\n"
        << disassemble(k);
    ASSERT_LE(fx.emitted, ka.maxEmits)
        << what << ": observed emits exceed the static bound\n"
        << disassemble(k);
    if (ka.provenTrapFree)
        ASSERT_NE(fx.exit, ExitReason::kTrapped)
            << what << ": kernel proven trap-free trapped\n"
            << disassemble(k);
    // An acyclic kernel can execute at most code.size() < kFuzzSteps
    // instructions, so only a kernel with a CFG cycle can hit the
    // step limit.
    if (ka.acyclic)
        ASSERT_NE(fx.exit, ExitReason::kStepLimit)
            << what << ": acyclic kernel hit the watchdog\n"
            << disassemble(k);
}

/** Does executing @p in with register state @p regs trap, concretely?
 *  (Mirrors the reference interpreter's trap predicates.) */
bool
concreteTraps(const Instr &in, const std::uint64_t *regs,
              const EventContext &ctx)
{
    switch (in.op) {
      case Opcode::kDiv:
        return regs[in.rt] == 0 ||
               (static_cast<std::int64_t>(regs[in.rt]) == -1 &&
                static_cast<std::int64_t>(regs[in.rs]) ==
                    std::numeric_limits<std::int64_t>::min());
      case Opcode::kDivi:
        return in.imm == 0 ||
               (in.imm == -1 &&
                static_cast<std::int64_t>(regs[in.rs]) ==
                    std::numeric_limits<std::int64_t>::min());
      case Opcode::kLdLine:
      case Opcode::kLdLine32:
        return !ctx.hasLine;
      case Opcode::kGread:
        return in.imm < 0 ||
               in.imm >= static_cast<std::int64_t>(kGlobalRegs) ||
               ctx.globalRegs == nullptr;
      case Opcode::kLookahead:
        return in.imm < 0 ||
               in.imm >= static_cast<std::int64_t>(ctx.lookaheadEntries) ||
               ctx.lookahead == nullptr;
      default:
        return false;
    }
}

/**
 * Dataflow soundness oracle.  The analysis context states exactly the
 * concrete event's facts (line kind, lookahead count, global values,
 * the triggering vaddr as a point interval), so the abstract values
 * are as tight as the analysis can make them — and every one of them
 * must still contain what actually happens.
 */
void
checkDataflowSound(const std::vector<Instr> &code, const EventContext &ctx,
                   const std::string &what)
{
    const Kernel k{"fuzz", code};
    analysis::KernelContext actx;
    actx.line = ctx.hasLine ? analysis::KernelContext::Line::kAlways
                            : analysis::KernelContext::Line::kNever;
    actx.globalsPresent = ctx.globalRegs != nullptr;
    actx.lookaheadEntries = static_cast<int>(ctx.lookaheadEntries);
    actx.vaddrLo = static_cast<std::int64_t>(ctx.vaddr);
    actx.vaddrHi = actx.vaddrLo;
    if (ctx.globalRegs != nullptr)
        for (unsigned i = 0; i < kGlobalRegs; ++i)
            actx.globalValues.push_back({i, ctx.globalRegs[i]});

    const analysis::DataflowResult df = analysis::analyzeDataflow(k, actx);

    // Collected as a string: a gtest ASSERT inside the step lambda
    // could not abort the enclosing test.
    std::string violation;
    std::size_t lastPc = 0;
    std::uint64_t lastRegs[kPpuRegs] = {};
    bool stepped = false;
    const ExecResult res = Interpreter::runTraced(
        k, ctx, nullptr,
        [&](std::size_t pc, const std::uint64_t *regs) {
            lastPc = pc;
            std::memcpy(lastRegs, regs, sizeof(lastRegs));
            stepped = true;
            if (!violation.empty() || pc >= df.in.size())
                return;
            const analysis::RegState &st = df.in[pc];
            if (!st.feasible) {
                violation = "executed pc " + std::to_string(pc) +
                            " that the analysis claims is infeasible";
                return;
            }
            for (unsigned r = 0; r < kPpuRegs; ++r)
                if (!st.reg[r].contains(regs[r])) {
                    violation = "r" + std::to_string(r) + " = " +
                                std::to_string(regs[r]) +
                                " escapes the abstract value at pc " +
                                std::to_string(pc);
                    return;
                }
        },
        kFuzzSteps);

    ASSERT_TRUE(violation.empty())
        << what << ": " << violation << "\n" << disassemble(k);

    // A trapped exit is either the last traced instruction trapping or
    // the pc leaving [0, size) afterwards (the boundary trap, which
    // never traces).  Only the former indicts a trap-free proof.
    if (res.exit == ExitReason::kTrapped && stepped &&
        concreteTraps(code[lastPc], lastRegs, ctx))
        ASSERT_FALSE(df.provenTrapFree(lastPc))
            << what << ": pc " << lastPc
            << " trapped but the analysis proved it trap-free\n"
            << disassemble(k);
}

void
checkProgram(const std::vector<Instr> &code, const EventContext &ctx,
             const std::string &what)
{
    const Kernel raw{"fuzz", code};
    const Kernel built = rebuildViaBuilder(code);
    const Kernel parsed{"fuzz", rebuildViaText(code)};

    ASSERT_EQ(encodeAll(built.code), encodeAll(code))
        << what << ": builder re-encoding differs";
    ASSERT_EQ(encodeAll(parsed.code), encodeAll(code))
        << what << ": disasm->parse re-encoding differs\n"
        << disassemble(raw);

    const Effects fx_raw = execute(raw, ctx);
    const Effects fx_built = execute(built, ctx);
    const Effects fx_parsed = execute(parsed, ctx);
    ASSERT_TRUE(fx_built == fx_raw) << what << ": builder effects differ";
    ASSERT_TRUE(fx_parsed == fx_raw)
        << what << ": parsed effects differ\n"
        << disassemble(raw);

    checkAnalyzerAgrees(raw, ctx, fx_raw, what);
    checkDataflowSound(code, ctx, what);
    checkDecodedMatchesReference(code, ctx, what);
}

TEST(IsaFuzz, EveryOpcodeRoundTripsDeterministically)
{
    // One program containing every opcode once, with branch targets at
    // the end so it executes most of itself.
    Rng rng(7);
    std::vector<Instr> code;
    const unsigned len = static_cast<unsigned>(std::size(kAllOpcodes));
    for (unsigned i = 0; i < len; ++i) {
        Instr in = fuzzInstr(rng, i, len, kAllOpcodes[i]);
        if (in.op == Opcode::kBeq || in.op == Opcode::kBne ||
            in.op == Opcode::kBlt || in.op == Opcode::kBge ||
            in.op == Opcode::kJmp)
            in.imm = static_cast<std::int64_t>(len) -
                     static_cast<std::int64_t>(i) - 1;
        if (in.op == Opcode::kDivi && in.imm == 0)
            in.imm = 3;
        if (in.op == Opcode::kGread)
            in.imm = 5;
        code.push_back(in);
    }
    std::vector<std::uint64_t> globals(kGlobalRegs, 0x1111);
    std::vector<std::uint64_t> lookahead(4, 2);
    LineData line{};
    EventContext ctx = fuzzContext(rng, globals, lookahead, line);
    ctx.hasLine = true;
    checkProgram(code, ctx, "deterministic");
}

TEST(IsaFuzz, DivOverflowSeed)
{
    // Directed seed for the signed-division UB fix: INT64_MIN / -1
    // must trap (like /0) in both divide forms and both interpreters,
    // while the two individually-benign halves still divide.
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    Rng rng(11);
    std::vector<std::uint64_t> globals(kGlobalRegs, 1);
    std::vector<std::uint64_t> lookahead(4, 2);
    LineData line{};
    const EventContext ctx = fuzzContext(rng, globals, lookahead, line);

    checkProgram({Instr{Opcode::kLi, 1, 0, 0, min},
                  Instr{Opcode::kLi, 2, 0, 0, -1},
                  Instr{Opcode::kDiv, 3, 1, 2, 0},
                  Instr{Opcode::kHalt, 0, 0, 0, 0}},
                 ctx, "div overflow seed");
    checkProgram({Instr{Opcode::kLi, 1, 0, 0, min},
                  Instr{Opcode::kDivi, 3, 1, 0, -1},
                  Instr{Opcode::kHalt, 0, 0, 0, 0}},
                 ctx, "divi overflow seed");
    checkProgram({Instr{Opcode::kLi, 1, 0, 0, min + 1},
                  Instr{Opcode::kDivi, 3, 1, 0, -1},
                  Instr{Opcode::kLi, 2, 0, 0, 1},
                  Instr{Opcode::kDiv, 3, 1, 2, 0},
                  Instr{Opcode::kHalt, 0, 0, 0, 0}},
                 ctx, "near-overflow divides");
}

TEST(IsaFuzz, TenThousandRandomPrograms)
{
    Rng rng(0xF022AB1E);
    std::vector<std::uint64_t> globals(kGlobalRegs);
    std::vector<std::uint64_t> lookahead(4);

    for (unsigned p = 0; p < kPrograms; ++p) {
        const unsigned len = 1 + static_cast<unsigned>(rng.below(kMaxLen));
        std::vector<Instr> code;
        code.reserve(len);
        for (unsigned i = 0; i < len; ++i)
            code.push_back(fuzzInstr(rng, i, len));

        for (auto &g : globals)
            g = rng.next();
        for (auto &l : lookahead)
            l = rng.below(64);
        LineData line{};
        const EventContext ctx = fuzzContext(rng, globals, lookahead, line);

        checkProgram(code, ctx, "program " + std::to_string(p));
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

} // namespace
} // namespace epf
