/**
 * @file
 * FaultParity matrix (tier 2): the pure-hint proof.
 *
 * Every canonical fault schedule x every paper workload x {Manual,
 * Stride, None}, at the golden scale with the golden per-cell seeds.
 * For each cell the architectural results — workload checksum and
 * retired instruction count — must be byte-identical to the fault-free
 * run of the same cell; only timing and traffic may move.  Each
 * schedule must also actually inject (a schedule that never fires
 * proves nothing).
 *
 * The runaway-flavoured schedules additionally run with the
 * quarantine watchdog and event-storm throttle armed, so the matrix
 * covers the degradation layer, not just raw injection.
 *
 * When EPF_FAULT_JSON names a path, the per-cell injection and
 * degradation counts are dumped there as JSON (CI uploads it as an
 * artifact for schedule-coverage inspection).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/golden.hpp"
#include "runner/sweep.hpp"
#include "sim/fault.hpp"
#include "workloads/workload.hpp"

namespace epf
{
namespace
{

const std::vector<Technique> kTechniques = {
    Technique::kManual, Technique::kStride, Technique::kNone};

std::vector<SweepOutcome>
runGrid(const RunConfig &proto)
{
    SweepEngine::Options opts;
    opts.threads = sweepThreadsFromEnv(0);
    SweepEngine engine(opts);
    engine.addGrid(workloadNames(), kTechniques, proto);
    auto outcomes = engine.run();
    for (const auto &o : outcomes)
        EXPECT_FALSE(o.failed)
            << o.cell.workload << "/" << techniqueName(o.cell.config.technique)
            << ": " << o.error;
    return outcomes;
}

TEST(FaultParity, EverySchedulePreservesArchitecturalResults)
{
    const std::vector<SweepOutcome> baseline =
        runGrid(goldenConfig(Technique::kNone));

    std::ostringstream artifact;
    artifact << "[";
    bool first_row = true;

    for (unsigned sched = 0; sched < kNumFaultSchedules; ++sched) {
        RunConfig proto = goldenConfig(Technique::kNone);
        proto.faults = faultSchedule(sched);
        // The runaway family runs with the degradation layer armed, so
        // quarantine kills and throttle windows are part of the matrix.
        const bool degraded = sched >= 9;
        if (degraded) {
            proto.ppf.quarantineThreshold = 3;
            proto.ppf.quarantineBaseTicks = 10'000;
            proto.ppf.stormWindowTicks = 50'000;
            proto.ppf.stormThreshold = 64;
        }

        const std::vector<SweepOutcome> faulted = runGrid(proto);
        ASSERT_EQ(faulted.size(), baseline.size());

        std::uint64_t schedule_injected = 0;
        for (std::size_t i = 0; i < faulted.size(); ++i) {
            const SweepOutcome &b = baseline[i];
            const SweepOutcome &f = faulted[i];
            ASSERT_EQ(f.cell.workload, b.cell.workload);
            const std::string where =
                "schedule " + std::to_string(sched) + ", " +
                f.cell.workload + "/" +
                techniqueName(f.cell.config.technique);

            EXPECT_EQ(f.result.checksum, b.result.checksum) << where;
            EXPECT_EQ(f.result.instrs, b.result.instrs) << where;
            schedule_injected += f.result.faultsInjected;

            artifact << (first_row ? "\n" : ",\n") << "  {\"schedule\": "
                     << sched << ", \"workload\": \"" << f.cell.workload
                     << "\", \"technique\": \""
                     << techniqueName(f.cell.config.technique)
                     << "\", \"injected\": " << f.result.faultsInjected;
            for (unsigned s = 0; s < kNumFaultSites; ++s) {
                const auto site = static_cast<FaultSite>(s);
                const double n = f.result.detail.get(
                    std::string("fault.") + faultSiteName(site) +
                    ".injected");
                if (n > 0)
                    artifact << ", \"" << faultSiteName(site) << "\": "
                             << static_cast<std::uint64_t>(n);
            }
            if (degraded)
                artifact
                    << ", \"quarantineKills\": "
                    << static_cast<std::uint64_t>(
                           f.result.detail.get("c0.ppf.quarantineKills"))
                    << ", \"throttleDropped\": "
                    << static_cast<std::uint64_t>(
                           f.result.detail.get("c0.ppf.throttleDropped"));
            artifact << "}";
            first_row = false;
        }

        // A schedule that never injects is a vacuous pass.
        EXPECT_GT(schedule_injected, 0u) << "schedule " << sched;
    }
    artifact << "\n]\n";

    if (const char *path = std::getenv("EPF_FAULT_JSON")) {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "EPF_FAULT_JSON: cannot open " << path;
        os << artifact.str();
        std::cerr << "fault-injection stats written to " << path << "\n";
    }
}

} // namespace
} // namespace epf
