/**
 * @file
 * Tests for the compiler passes: Algorithm 1 software-prefetch
 * conversion, pragma generation, failure diagnostics matching the paper,
 * and end-to-end semantics of the generated kernels (checked by actually
 * interpreting them against synthetic observations).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compiler/event_program.hpp"
#include "compiler/ir.hpp"
#include "compiler/passes.hpp"
#include "isa/builder.hpp"
#include "isa/interpreter.hpp"
#include "mem/guest_memory.hpp"
#include "ppf/ppf.hpp"
#include "sim/event_queue.hpp"

namespace epf
{
namespace
{

/**
 * Build the paper's Figure 4/5 loop:
 *   for (x...) acc += C[B[A[x]]];  with  swpf(&C[B[A[x+dist]]]).
 */
struct Fig4Loop
{
    LoopIR ir;
    Addr baseA = 0x10000;
    Addr baseB = 0x80000;
    Addr baseC = 0xC0000;
    static constexpr std::int64_t kDist = 16;

    Fig4Loop()
    {
        IrNode *a = ir.addArray("A", baseA, 8, 4096);
        IrNode *b = ir.addArray("B", baseB, 8, 4096);
        IrNode *c = ir.addArray("C", baseC, 8, 4096);
        IrNode *x = ir.indVar();

        IrNode *av = ir.load(ir.index(a, x, 8), 8, "A");
        IrNode *bv = ir.load(ir.index(b, av, 8), 8, "B");
        (void)ir.load(ir.index(c, bv, 8), 8, "C");

        IrNode *a2 = ir.loadForSwpf(
            ir.index(a, ir.bin(IrBin::kAdd, x, ir.cnst(kDist)), 8), 8,
            "A_pf");
        IrNode *b2 = ir.loadForSwpf(ir.index(b, a2, 8), 8, "B_pf");
        ir.swpf(ir.index(c, b2, 8));
    }
};

/** Execute kernel @p k of @p prog with given vaddr/line word. */
std::vector<PrefetchEmit>
execKernel(const EventProgram &prog, std::size_t k, Addr vaddr,
           std::uint64_t data_word, bool has_line)
{
    // Globals live in slots named by the program.
    std::uint64_t globals[kGlobalRegs] = {};
    for (const auto &g : prog.globals)
        globals[g.slot] = g.value;
    std::uint64_t la[8] = {4, 4, 4, 4, 4, 4, 4, 4};

    EventContext ctx;
    ctx.vaddr = vaddr;
    ctx.hasLine = has_line;
    if (has_line) {
        unsigned off = lineOffset(vaddr) & ~7u;
        std::memcpy(ctx.line.data() + off, &data_word, 8);
    }
    ctx.globalRegs = globals;
    ctx.lookahead = la;
    ctx.lookaheadEntries = 8;

    std::vector<PrefetchEmit> emits;
    Interpreter::run(prog.kernels.at(k), ctx,
                     [&](const PrefetchEmit &e) { emits.push_back(e); });
    return emits;
}

TEST(ConvertTest, Fig4ProducesThreeEventChain)
{
    Fig4Loop loop;
    PassResult res = convertSoftwarePrefetches(loop.ir);
    ASSERT_TRUE(res.ok) << res.failureReason;
    // Trigger on A, data events for A_pf and B_pf.
    ASSERT_EQ(res.program.kernels.size(), 3u);
    ASSERT_GE(res.program.filters.size(), 1u);
    EXPECT_EQ(res.program.filters[0].name, "A");
    EXPECT_EQ(res.program.filters[0].base, loop.baseA);
    EXPECT_EQ(res.program.filters[0].onLoadLocal, 0);
    EXPECT_TRUE(res.program.filters[0].timeSource);
}

TEST(ConvertTest, Fig4GeneratedCodeComputesRightAddresses)
{
    Fig4Loop loop;
    PassResult res = convertSoftwarePrefetches(loop.ir);
    ASSERT_TRUE(res.ok);

    // Trigger event: core load of A[10] -> prefetch.cb &A[10+dist].
    auto e0 = execKernel(res.program, 0, loop.baseA + 10 * 8, 0, false);
    ASSERT_EQ(e0.size(), 1u);
    EXPECT_EQ(e0[0].vaddr, loop.baseA + (10 + Fig4Loop::kDist) * 8);
    EXPECT_EQ(e0[0].cbKernel, 1);

    // A_pf data event: observed word 7 -> prefetch.cb &B[7].
    auto e1 = execKernel(res.program, 1, e0[0].vaddr, 7, true);
    ASSERT_EQ(e1.size(), 1u);
    EXPECT_EQ(e1[0].vaddr, loop.baseB + 7 * 8);
    EXPECT_EQ(e1[0].cbKernel, 2);

    // B_pf data event: observed word 5 -> final prefetch &C[5].
    auto e2 = execKernel(res.program, 2, e1[0].vaddr, 5, true);
    ASSERT_EQ(e2.size(), 1u);
    EXPECT_EQ(e2[0].vaddr, loop.baseC + 5 * 8);
    EXPECT_EQ(e2[0].cbKernel, kNoKernel);
}

TEST(ConvertTest, RemovesSwpfRemark)
{
    Fig4Loop loop;
    PassResult res = convertSoftwarePrefetches(loop.ir);
    ASSERT_TRUE(res.ok);
    bool found = false;
    for (const auto &r : res.program.remarks)
        found |= r.find("removed 1 software prefetch") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(ConvertTest, FailsWithoutSwpf)
{
    LoopIR ir;
    PassResult res = convertSoftwarePrefetches(ir);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failureReason.find("no software prefetches"),
              std::string::npos);
}

TEST(ConvertTest, OpaqueIteratorsFail)
{
    LoopIR ir;
    ir.opaqueIterators = true;
    PassResult res = convertSoftwarePrefetches(ir);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failureReason.find("opaque iterators"),
              std::string::npos);
}

TEST(ConvertTest, PhiNodeFailsChain)
{
    LoopIR ir;
    IrNode *a = ir.addArray("A", 0x1000, 8, 64);
    (void)a;
    IrNode *p = ir.phi("listptr");
    ir.swpf(ir.bin(IrBin::kAdd, p, ir.cnst(8)));
    PassResult res = convertSoftwarePrefetches(ir);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failureReason.find("phi"), std::string::npos);
}

TEST(ConvertTest, TwoLoadsIntoOneAddressFail)
{
    LoopIR ir;
    IrNode *a = ir.addArray("A", 0x1000, 8, 64);
    IrNode *b = ir.addArray("B", 0x2000, 8, 64);
    IrNode *c = ir.addArray("C", 0x3000, 8, 64);
    IrNode *x = ir.indVar();
    IrNode *la = ir.loadForSwpf(ir.index(a, x, 8), 8, "A");
    IrNode *lb = ir.loadForSwpf(ir.index(b, x, 8), 8, "B");
    ir.swpf(ir.index(c, ir.bin(IrBin::kAdd, la, lb), 8));
    PassResult res = convertSoftwarePrefetches(ir);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failureReason.find("more than one loaded value"),
              std::string::npos);
}

TEST(ConvertTest, UnknownBoundsFail)
{
    LoopIR ir;
    IrNode *x = ir.indVar();
    // Base is a bare invariant with no array registered.
    IrNode *base = ir.invariant("p", 0x5000);
    ir.swpf(ir.index(base, x, 8));
    PassResult res = convertSoftwarePrefetches(ir);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failureReason.find("bounds"), std::string::npos);
}

TEST(ConvertTest, SideEffectCallFails)
{
    LoopIR ir;
    IrNode *a = ir.addArray("A", 0x1000, 8, 64);
    IrNode *x = ir.indVar();
    IrNode *call = ir.call("rand", /*side_effect_free=*/false);
    ir.swpf(ir.index(a, ir.bin(IrBin::kAdd, x, call), 8));
    PassResult res = convertSoftwarePrefetches(ir);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.failureReason.find("side effects"), std::string::npos);
}

TEST(ConvertTest, SharedPrefixDeduplicated)
{
    // Two swpf through the same A load: one trigger event, one data
    // event with two emissions.
    LoopIR ir;
    IrNode *a = ir.addArray("A", 0x1000, 8, 256);
    IrNode *b = ir.addArray("B", 0x4000, 8, 256);
    IrNode *c = ir.addArray("C", 0x8000, 8, 256);
    IrNode *x = ir.indVar();
    IrNode *av = ir.loadForSwpf(
        ir.index(a, ir.bin(IrBin::kAdd, x, ir.cnst(4)), 8), 8, "A_pf");
    ir.swpf(ir.index(b, av, 8));
    ir.swpf(ir.index(c, av, 8));
    PassResult res = convertSoftwarePrefetches(ir);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.program.kernels.size(), 2u);

    auto emits = execKernel(res.program, 1, 0x1000 + 12 * 8, 3, true);
    ASSERT_EQ(emits.size(), 2u);
    EXPECT_EQ(emits[0].vaddr, 0x4000u + 3 * 8);
    EXPECT_EQ(emits[1].vaddr, 0x8000u + 3 * 8);
}

TEST(ConvertTest, PointerTargetPrefetch)
{
    // swpf(*p) where p = load(&head[x]): the final prefetch target is
    // the loaded pointer value itself (linked-structure head).
    LoopIR ir;
    IrNode *heads = ir.addArray("heads", 0x2000, 8, 128);
    IrNode *x = ir.indVar();
    IrNode *p = ir.loadForSwpf(ir.index(heads, x, 8), 8, "head");
    ir.swpf(p);
    PassResult res = convertSoftwarePrefetches(ir);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.program.kernels.size(), 2u);
    auto emits = execKernel(res.program, 1, 0x2000 + 8, 0xBEEF00, true);
    ASSERT_EQ(emits.size(), 1u);
    EXPECT_EQ(emits[0].vaddr, 0xBEEF00u);
}

TEST(PragmaTest, DiscoversStrideIndirectChain)
{
    // Body: k = keys[x]; counts[k]... with no swpf at all.
    LoopIR ir;
    IrNode *keys = ir.addArray("keys", 0x1000, 4, 1024);
    IrNode *counts = ir.addArray("counts", 0x8000, 4, 4096);
    IrNode *x = ir.indVar();
    IrNode *k = ir.load(ir.index(keys, x, 4), 4, "keys");
    (void)ir.load(ir.index(counts, k, 4), 4, "counts");

    PassResult res = generateFromPragma(ir);
    ASSERT_TRUE(res.ok) << res.failureReason;
    ASSERT_EQ(res.program.kernels.size(), 2u);

    // Trigger: derive idx from the observed keys address, advance by the
    // EWMA lookahead (4 in the stub), prefetch &keys[idx+4] with cb.
    auto e0 = execKernel(res.program, 0, 0x1000 + 10 * 4, 0, false);
    ASSERT_EQ(e0.size(), 1u);
    EXPECT_EQ(e0[0].vaddr, 0x1000u + (10 + 4) * 4);
    EXPECT_EQ(e0[0].cbKernel, 1);

    // Data event: observed key 9 -> &counts[9].
    auto e1 = execKernel(res.program, 1, e0[0].vaddr, 9, true);
    ASSERT_EQ(e1.size(), 1u);
    EXPECT_EQ(e1[0].vaddr, 0x8000u + 9 * 4);
}

TEST(PragmaTest, PlainStrideLeftToHardware)
{
    LoopIR ir;
    IrNode *a = ir.addArray("A", 0x1000, 8, 128);
    IrNode *x = ir.indVar();
    (void)ir.load(ir.index(a, x, 8), 8, "A");
    PassResult res = generateFromPragma(ir);
    EXPECT_FALSE(res.ok);
}

TEST(PragmaTest, PhiRootedWalkSkipped)
{
    LoopIR ir;
    IrNode *keys = ir.addArray("keys", 0x1000, 8, 128);
    IrNode *hdrs = ir.addArray("headers", 0x4000, 16, 512);
    IrNode *x = ir.indVar();
    IrNode *k = ir.load(ir.index(keys, x, 8), 8, "keys");
    (void)ir.load(ir.index(hdrs, k, 16), 8, "header");
    IrNode *l = ir.phi("l");
    (void)ir.load(l, 8, "node");

    PassResult res = generateFromPragma(ir);
    ASSERT_TRUE(res.ok); // keys->header converts
    bool skipped = false;
    for (const auto &r : res.program.remarks)
        skipped |= r.find("node") != std::string::npos;
    EXPECT_TRUE(skipped);
}

TEST(PragmaTest, WorksDespiteOpaqueIterators)
{
    LoopIR ir;
    ir.opaqueIterators = true; // PageRank: swpf impossible, pragma fine
    IrNode *dst = ir.addArray("dst", 0x1000, 8, 512);
    IrNode *nd = ir.addArray("nd", 0x8000, 16, 512);
    IrNode *e = ir.indVar();
    IrNode *d = ir.load(ir.index(dst, e, 8), 8, "dst");
    (void)ir.load(ir.index(nd, d, 16), 8, "nd");
    PassResult res = generateFromPragma(ir);
    EXPECT_TRUE(res.ok);
}

TEST(InstallTest, RelocatesKernelIdsAndGlobals)
{
    Fig4Loop loop;
    PassResult res = convertSoftwarePrefetches(loop.ir);
    ASSERT_TRUE(res.ok);

    EventQueue eq;
    GuestMemory gm;
    PpfConfig cfg;
    ProgrammablePrefetcher ppf(eq, gm, cfg);

    // Occupy some kernel/global slots first so relocation is non-trivial.
    KernelBuilder pre("pre");
    pre.halt();
    ppf.kernels().add(pre.build());
    ppf.allocGlobal(0xDEAD);

    auto ids = res.program.installInto(ppf);
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(ids[0], 1); // after the pre-installed kernel

    // The installed trigger kernel must chain to the *global* id of the
    // second kernel.
    const Kernel &trig = ppf.kernels()[ids[0]];
    bool found_cb = false;
    for (const auto &in : trig.code) {
        if (in.op == Opcode::kPrefetchCb) {
            EXPECT_EQ(in.imm, ids[1]);
            found_cb = true;
        }
    }
    EXPECT_TRUE(found_cb);

    // Globals were re-slotted past the pre-allocated one and hold the
    // right values (base addresses).
    bool found_base_a = false;
    for (const auto &g : res.program.globals) {
        if (g.name == "A.base")
            found_base_a = true;
    }
    EXPECT_TRUE(found_base_a);
    EXPECT_EQ(ppf.global(0), 0xDEADu);

    // Filters installed with relocated kernel ids.
    ASSERT_GE(ppf.filters().size(), 1u);
    EXPECT_EQ(ppf.filters()[0].onLoad, ids[0]);
}

TEST(InstallTest, CodeFitsInstructionCacheBudget)
{
    Fig4Loop loop;
    PassResult res = convertSoftwarePrefetches(loop.ir);
    ASSERT_TRUE(res.ok);
    // The paper measures <= 1 KB of PPU code per application.
    EXPECT_LE(res.program.codeBytes(), 1024u);
}

} // namespace
} // namespace epf
