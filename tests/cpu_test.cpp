/**
 * @file
 * Unit tests for the out-of-order core model: dependence-limited MLP,
 * ROB capacity, branch-mispredict stalls and trace bookkeeping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hpp"
#include "cpu/generator.hpp"
#include "cpu/micro_op.hpp"
#include "isa/builder.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "ppf/ppf.hpp"
#include "sim/event_queue.hpp"

namespace epf
{
namespace
{

TEST(GeneratorTest, YieldsAllValues)
{
    auto gen = []() -> Generator<int> {
        for (int i = 0; i < 5; ++i)
            co_yield i;
    }();
    std::vector<int> got;
    while (gen.next())
        got.push_back(gen.value());
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_FALSE(gen.next());
}

TEST(GeneratorTest, MoveTransfersOwnership)
{
    auto gen = []() -> Generator<int> { co_yield 1; }();
    Generator<int> other = std::move(gen);
    EXPECT_TRUE(other.next());
    EXPECT_EQ(other.value(), 1);
}

/** Test fixture providing a small memory system and core. */
class CoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        eq_ = std::make_unique<EventQueue>();
        gmem_ = std::make_unique<GuestMemory>();
        buf_.assign(1 << 16, 1); // 512 KB: misses L1, mostly misses L2
        base_ = gmem_->addRegion("buf", buf_.data(), buf_.size() * 8);
        mem_ = std::make_unique<MemoryHierarchy>(*eq_, *gmem_,
                                                 MemParams::defaults());
        core_ = std::make_unique<Core>(*eq_, CoreParams{}, mem_->port());
    }

    Addr at(std::size_t i) { return base_ + i * 8; }

    /** Element index of the first page boundary inside the buffer, so
     *  tests can keep all accesses within one 4 KB page.  Guest bases
     *  are page-aligned, so the buffer starts on a boundary. */
    std::size_t
    pageStart() const
    {
        return (kPageBytes - (base_ % kPageBytes)) % kPageBytes / 8;
    }

    /** Run a trace to completion, return consumed core cycles. */
    std::uint64_t
    run(Generator<MicroOp> trace)
    {
        bool done = false;
        core_->run(std::move(trace), [&done] { done = true; });
        while (!eq_->empty())
            eq_->runOne();
        EXPECT_TRUE(done);
        return core_->stats().cycles;
    }

    std::unique_ptr<EventQueue> eq_;
    std::unique_ptr<GuestMemory> gmem_;
    std::vector<std::uint64_t> buf_;
    Addr base_ = 0;
    std::unique_ptr<MemoryHierarchy> mem_;
    std::unique_ptr<Core> core_;
};

TEST_F(CoreTest, IndependentLoadsOverlap)
{
    // 8 loads to distinct lines within one page (a single TLB walk), no
    // dependences: should take roughly one memory latency, not eight.
    auto indep = [this]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        for (int i = 0; i < 8; ++i) {
            ValueId v;
            co_yield f.load(at(p + static_cast<std::size_t>(i) * 8), 1, v);
        }
    };
    std::uint64_t t_indep = run(indep());

    // Reset with a fresh core+memory for the dependent case.
    SetUp();
    auto dep = [this]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        ValueId prev = 0;
        for (int i = 0; i < 8; ++i) {
            ValueId v;
            co_yield f.load(at(p + 256 + static_cast<std::size_t>(i) * 8),
                            1, v, prev);
            prev = v;
        }
    };
    std::uint64_t t_dep = run(dep());

    // Dependent chains must be several times slower.
    EXPECT_GT(t_dep, t_indep * 3);
}

TEST_F(CoreTest, RobLimitsOverlap)
{
    // Many independent loads padded with work so each iteration takes
    // ~20 ROB slots: a 40-entry ROB can only hold 2 -> low MLP.  All
    // lines live in one page so TLB effects cancel.
    auto padded = [this]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        for (int i = 0; i < 32; ++i) {
            ValueId v;
            co_yield f.load(at(p + static_cast<std::size_t>(i) * 8), 1, v);
            co_yield OpFactory::work(19);
        }
    };
    std::uint64_t t_padded = run(padded());

    SetUp();
    auto lean = [this]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        for (int i = 0; i < 32; ++i) {
            ValueId v;
            co_yield f.load(at(p + static_cast<std::size_t>(i) * 8), 1, v);
            co_yield OpFactory::work(1);
        }
    };
    std::uint64_t t_lean = run(lean());
    EXPECT_GT(t_padded, t_lean + t_lean / 2);
}

TEST_F(CoreTest, WorkOnlyTraceIsDispatchBound)
{
    auto work = []() -> Generator<MicroOp> {
        for (int i = 0; i < 100; ++i)
            co_yield OpFactory::work(3);
    };
    std::uint64_t cycles = run(work());
    // 300 instructions at 3 wide ~ 100 cycles (+ pipeline edges).
    EXPECT_GE(cycles, 100u);
    EXPECT_LE(cycles, 140u);
    EXPECT_EQ(core_->stats().instrs, 300u);
}

TEST_F(CoreTest, BranchMissCollapsesMlp)
{
    // A mispredicted branch between two independent misses: the second
    // load cannot issue until the first resolves, so the two latencies
    // serialise instead of overlapping.
    auto branchy = [this]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        ValueId a;
        co_yield f.load(at(p), 1, a);
        co_yield OpFactory::branchMiss(a);
        ValueId b;
        co_yield f.load(at(p + 64), 1, b); // same page, other line
    };
    std::uint64_t t_branchy = run(branchy());
    EXPECT_EQ(core_->stats().branchMisses, 1u);

    SetUp();
    auto straight = [this]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        ValueId a;
        co_yield f.load(at(p), 1, a);
        ValueId b;
        co_yield f.load(at(p + 64), 1, b);
    };
    std::uint64_t t_straight = run(straight());

    // The second access serialises behind the branch resolution (its
    // exact cost depends on DRAM row state; the gap must be visible).
    EXPECT_GT(t_branchy, t_straight + 30);
    EXPECT_EQ(core_->stats().branchMisses, 0u); // straight trace
}

TEST_F(CoreTest, StoresDoNotBlockRetirement)
{
    auto stores = [this]() -> Generator<MicroOp> {
        for (int i = 0; i < 16; ++i)
            co_yield OpFactory::store(at(static_cast<std::size_t>(i) * 256),
                                      1);
    };
    std::uint64_t cycles = run(stores());
    // 16 store misses would be ~16 x 100+ cycles if serialised; the SQ
    // lets them drain in the background.
    EXPECT_LT(cycles, 800u);
    EXPECT_EQ(core_->stats().stores, 16u);
}

TEST_F(CoreTest, SwPrefetchConvertsMissesToHits)
{
    const unsigned n = 32;
    auto with_pf = [this, n]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        for (unsigned i = 0; i < n; ++i) {
            if (i + 8 < n)
                co_yield OpFactory::swpf(at(p + (i + 8) * 8));
            ValueId v;
            co_yield f.load(at(p + i * 8), 1, v);
            co_yield OpFactory::workDep(6, v);
        }
    };
    std::uint64_t t_pf = run(with_pf());
    EXPECT_EQ(core_->stats().swPrefetches, n - 8);
    std::uint64_t hits_pf = mem_->l1().stats().loadHits;
    std::uint64_t pf_used =
        mem_->l1().stats().pfUsed + mem_->l1().stats().pfUsedLate;
    EXPECT_GT(mem_->l1().stats().prefetchFills, 0u);
    EXPECT_GT(pf_used, 0u);

    SetUp();
    auto without = [this, n]() -> Generator<MicroOp> {
        OpFactory f;
        std::size_t p = pageStart();
        for (unsigned i = 0; i < n; ++i) {
            ValueId v;
            co_yield f.load(at(p + i * 8), 1, v);
            co_yield OpFactory::workDep(6, v);
        }
    };
    std::uint64_t t_plain = run(without());
    std::uint64_t hits_plain = mem_->l1().stats().loadHits;

    // Prefetching converts misses into hits/merges and must not slow
    // the run down materially.
    EXPECT_GE(hits_pf + mem_->l1().stats().demandMerges, hits_plain);
    EXPECT_LT(t_pf, t_plain + t_plain / 5);
}

TEST_F(CoreTest, PfConfigRunsAtDispatch)
{
    bool configured = false;
    auto tr = [&]() -> Generator<MicroOp> {
        co_yield OpFactory::pfConfig(4, [&] { configured = true; });
        co_yield OpFactory::work(2);
    };
    run(tr());
    EXPECT_TRUE(configured);
    EXPECT_EQ(core_->stats().configOps, 1u);
    EXPECT_EQ(core_->stats().instrs, 6u);
}

TEST_F(CoreTest, PfConfigKernelMutationMidTraceTakesEffect)
{
    // Callback-kernel dispatch across a mid-trace reconfiguration: a
    // PfConfig op registers a kernel, a load triggers it, a second
    // PfConfig patches the kernel's code in place (the relocation
    // idiom), and the next load must run the *patched* program — the
    // PPF's decoded-program cache has to refresh, not serve stale code.
    ProgrammablePrefetcher ppf(*eq_, *gmem_, PpfConfig{});
    mem_->setListener(&ppf); // no prefetch source: requests stay queued

    std::vector<Addr> emitted;
    auto drain = [&] {
        while (ppf.hasRequest())
            emitted.push_back(ppf.popRequest().vaddr);
    };

    KernelId k = kNoKernel;
    auto tr = [&]() -> Generator<MicroOp> {
        co_yield OpFactory::pfConfig(4, [&] {
            KernelBuilder b("constpf");
            b.li(1, 0x1000).prefetch(1).halt();
            k = ppf.kernels().add(b.build());
            FilterEntry fe;
            fe.name = "buf";
            fe.base = base_;
            fe.limit = base_ + 4096;
            fe.onLoad = k;
            ppf.addFilter(fe);
        });
        ValueId v1;
        co_yield OpFactory{}.load(at(0), 1, v1);
        co_yield OpFactory::workDep(64, v1); // let the event finish
        co_yield OpFactory::pfConfig(4, [&] {
            drain();
            ppf.kernels().mutableKernel(k).code[0].imm = 0x2000;
        });
        ValueId v2;
        co_yield OpFactory{}.load(at(1), 1, v2);
        co_yield OpFactory::workDep(64, v2);
    };
    run(tr());
    drain();

    ASSERT_EQ(ppf.stats().eventsRun, 2u);
    ASSERT_EQ(emitted.size(), 2u);
    EXPECT_EQ(emitted[0], 0x1000u);
    EXPECT_EQ(emitted[1], 0x2000u);
}

TEST_F(CoreTest, PfConfigMutationFromTrapFreeToTrappingTakesEffect)
{
    // Regression for stale trap-free proofs: the first kernel is proven
    // trap-free, so the decoded program folds it into a superblock that
    // skips per-op trap checks.  A mid-trace PfConfig then patches an
    // interior instruction into an unconditional trap (divi #0).  The
    // version() bump must force a full re-decode — superblock bitmap
    // included — so the next event traps instead of executing the old
    // proven-safe block and emitting from stale code.
    ProgrammablePrefetcher ppf(*eq_, *gmem_, PpfConfig{});
    mem_->setListener(&ppf);

    std::vector<Addr> emitted;
    auto drain = [&] {
        while (ppf.hasRequest())
            emitted.push_back(ppf.popRequest().vaddr);
    };

    KernelId k = kNoKernel;
    auto tr = [&]() -> Generator<MicroOp> {
        co_yield OpFactory::pfConfig(4, [&] {
            KernelBuilder b("safe");
            b.li(1, 0x1000).addi(1, 1, 0x40).prefetch(1).halt();
            k = ppf.kernels().add(b.build());
            FilterEntry fe;
            fe.name = "buf";
            fe.base = base_;
            fe.limit = base_ + 4096;
            fe.onLoad = k;
            ppf.addFilter(fe);
        });
        ValueId v1;
        co_yield OpFactory{}.load(at(0), 1, v1);
        co_yield OpFactory::workDep(64, v1);
        co_yield OpFactory::pfConfig(4, [&] {
            drain();
            // addi -> divi #0: now traps on every execution.
            ppf.kernels().mutableKernel(k).code[1] =
                Instr{Opcode::kDivi, 1, 1, 0, 0};
        });
        ValueId v2;
        co_yield OpFactory{}.load(at(1), 1, v2);
        co_yield OpFactory::workDep(64, v2);
    };
    run(tr());
    drain();

    ASSERT_EQ(ppf.stats().eventsRun, 2u);
    EXPECT_EQ(ppf.stats().traps, 1u);
    ASSERT_EQ(emitted.size(), 1u); // only the pre-patch event emitted
    EXPECT_EQ(emitted[0], 0x1040u);
}

TEST_F(CoreTest, ValueDependenceThroughWork)
{
    // load -> work(value) -> dependent load must serialise.
    auto tr = [this]() -> Generator<MicroOp> {
        OpFactory f;
        ValueId v1;
        co_yield f.load(at(0), 1, v1);
        ValueId v2;
        co_yield f.workVal(2, v2, v1);
        ValueId v3;
        co_yield f.load(at(4096), 1, v3, v2);
    };
    std::uint64_t cycles = run(tr());
    // Two full dependent miss latencies (~2 x 100ns = 640 cycles).
    EXPECT_GT(cycles, 500u);
}

TEST_F(CoreTest, SleepDoesNotChangeCycleAccounting)
{
    // One long miss: cycles must cover the whole stall even though the
    // core slept through it.
    auto tr = [this]() -> Generator<MicroOp> {
        OpFactory f;
        ValueId v;
        co_yield f.load(at(0), 1, v);
        co_yield OpFactory::workDep(1, v);
    };
    std::uint64_t cycles = run(tr());
    Tick total = eq_->now();
    EXPECT_NEAR(static_cast<double>(cycles),
                static_cast<double>(total) / 5.0, 16.0);
}

} // namespace
} // namespace epf
