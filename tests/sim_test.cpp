/**
 * @file
 * Unit tests for the simulation kernel: event queue, clock domains,
 * RNG determinism and statistics helpers.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/rng.hpp"
#include "sim/small_function.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace epf
{
namespace
{

TEST(EventQueueTest, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<unsigned>(i)], i);
}

TEST(EventQueueTest, EventsMayScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueueTest, PastSchedulingClampsToNow)
{
    EventQueue eq;
    Tick seen = kTickMax;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); }); // in the past
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueueTest, ExecutedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueueTest, NextEventTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), kTickMax);
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventTick(), 42u);
}

/**
 * Pins same-tick FIFO order across the indexed heap: events pre-scheduled
 * for a tick (heap keys), events appended to that tick while it drains
 * (the O(1) ring path), and later ticks must interleave exactly in
 * insertion order.
 */
TEST(EventQueueTest, SameTickFifoAcrossHeapAndMidDrainAppends)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.scheduleIn(0, [&] { order.push_back(3); });
    });
    eq.schedule(7, [&] { order.push_back(5); });
    eq.schedule(5, [&] {
        order.push_back(1);
        eq.schedule(5, [&] { order.push_back(4); }); // same tick, mid-drain
        eq.schedule(7, [&] { order.push_back(6); }); // behind the earlier 7
    });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(eq.now(), 7u);
}

/**
 * Pins same-tick FIFO order across the wheel/heap boundary: an event
 * scheduled far ahead (a heap key) and events scheduled later for the
 * same tick from nearby (wheel keys) must still run in schedule-call
 * order — the heap key was scheduled first, so it runs first.
 */
TEST(EventQueueTest, SameTickFifoAcrossWheelAndHeap)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick target = 2000; // > wheel horizon at schedule time
    eq.schedule(target, [&] { order.push_back(0); }); // heap key
    eq.schedule(1500, [&] {
        // Within the horizon now: these land in the wheel, behind the
        // heap key's earlier seq.
        eq.schedule(target, [&] { order.push_back(1); });
        eq.schedule(target, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), target);
}

/**
 * The batch contract: members run consecutively at the batch's FIFO
 * position, interleaved schedule() calls keep their positions, and
 * same-tick events scheduled from inside a member run after the whole
 * batch.
 */
TEST(EventQueueTest, BatchRunsConsecutivelyAtItsFifoPosition)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(0); });
    EventQueue::Batch b = eq.takeBatch();
    b.push_back([&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] { order.push_back(4); }); // after the batch
    });
    b.push_back([&] { order.push_back(2); });
    eq.scheduleBatch(5, std::move(b));
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

/** Re-entrant batches: a member may take and schedule another batch at
 *  the current tick while its own batch is mid-drain. */
TEST(EventQueueTest, ReentrantBatchFromInsideBatchDrain)
{
    EventQueue eq;
    std::vector<int> order;
    EventQueue::Batch outer = eq.takeBatch();
    outer.push_back([&] {
        order.push_back(0);
        EventQueue::Batch inner = eq.takeBatch();
        inner.push_back([&] { order.push_back(2); });
        inner.push_back([&] { order.push_back(3); });
        eq.scheduleBatch(0, std::move(inner));
    });
    outer.push_back([&] { order.push_back(1); });
    eq.scheduleBatch(3, std::move(outer));
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 3u);
}

/** Each batch member counts as one executed event, and the degenerate
 *  empty / single-member batches behave like plain schedules. */
TEST(EventQueueTest, BatchExecutedCountAndDegenerateSizes)
{
    EventQueue eq;
    int fired = 0;

    eq.scheduleBatch(1, eq.takeBatch()); // empty: no event at all
    eq.run();
    EXPECT_EQ(eq.executed(), 0u);
    EXPECT_TRUE(eq.empty());

    EventQueue::Batch one = eq.takeBatch();
    one.push_back([&] { ++fired; });
    eq.scheduleBatch(1, std::move(one));
    EventQueue::Batch four = eq.takeBatch();
    for (int i = 0; i < 4; ++i)
        four.push_back([&] { ++fired; });
    eq.scheduleBatch(2, std::move(four));
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.executed(), 5u);
}

/** Callbacks past the inline budget go through the slab pool and must
 *  survive heap sifts, moves and execution intact. */
TEST(EventQueueTest, LargeCaptureCallbacks)
{
    EventQueue eq;
    std::uint64_t sum = 0;
    for (int i = 0; i < 100; ++i) {
        std::array<std::uint64_t, 16> payload{}; // 128 B > inline buffer
        for (std::size_t j = 0; j < payload.size(); ++j)
            payload[j] = static_cast<std::uint64_t>(i) + j;
        eq.schedule(static_cast<Tick>(100 - i), [&sum, payload] {
            for (auto v : payload)
                sum += v;
        });
    }
    eq.run();
    std::uint64_t expect = 0;
    for (int i = 0; i < 100; ++i)
        for (std::uint64_t j = 0; j < 16; ++j)
            expect += static_cast<std::uint64_t>(i) + j;
    EXPECT_EQ(sum, expect);
}

/** Move-only captures (the DoneFn chains of the demand path). */
TEST(EventQueueTest, MoveOnlyCaptures)
{
    EventQueue eq;
    auto payload = std::make_unique<int>(41);
    int seen = 0;
    eq.schedule(1, [&seen, p = std::move(payload)] { seen = *p + 1; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(SmallFunctionTest, EmptinessAndMoveSemantics)
{
    SmallFunction<int()> f;
    EXPECT_FALSE(f);
    f = [] { return 7; };
    EXPECT_TRUE(f);
    EXPECT_EQ(f(), 7);
    SmallFunction<int()> g = std::move(f);
    EXPECT_TRUE(g);
    EXPECT_FALSE(f); // NOLINT(bugprone-use-after-move): pinned semantics
    EXPECT_EQ(g(), 7);
}

TEST(RingTest, FifoPushPopWrapAround)
{
    Ring<int> r;
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 13; ++i)
            r.push_back(round * 100 + i);
        EXPECT_EQ(r.size(), 13u);
        for (int i = 0; i < 13; ++i) {
            EXPECT_EQ(r.front(), round * 100 + i);
            r.pop_front();
        }
        EXPECT_TRUE(r.empty());
    }
}

TEST(RingTest, GrowthPreservesOrderAndIteration)
{
    Ring<int> r;
    // Offset the head so growth has to unwrap a wrapped buffer.
    for (int i = 0; i < 6; ++i)
        r.push_back(i);
    for (int i = 0; i < 4; ++i)
        r.pop_front();
    for (int i = 0; i < 40; ++i)
        r.push_back(100 + i);
    std::vector<int> got;
    for (int v : r)
        got.push_back(v);
    ASSERT_EQ(got.size(), 42u);
    EXPECT_EQ(got[0], 4);
    EXPECT_EQ(got[1], 5);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i + 2)], 100 + i);
}

#ifdef NDEBUG
TEST(RingTest, ForbidGrowthIsANoOpInReleaseBuilds)
{
    // Release builds keep the documented silent reallocation; the guard
    // only exists where asserts are live.
    Ring<int> r;
    r.reserve(8);
    r.forbidGrowth();
    for (int i = 0; i < 20; ++i)
        r.push_back(i);
    EXPECT_EQ(r.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(r[static_cast<std::size_t>(i)], i);
}
#else
TEST(RingTest, ForbidGrowthAssertsOnGrowthInDebugBuilds)
{
    Ring<int> r;
    r.reserve(8);
    r.forbidGrowth();
    for (int i = 0; i < 8; ++i)
        r.push_back(i); // exactly the reserved capacity: fine
    EXPECT_DEATH(r.push_back(8), "forbidGrowth");

    // Lifting the declaration re-allows growth.
    Ring<int> r2;
    r2.reserve(8);
    r2.forbidGrowth();
    r2.forbidGrowth(false);
    for (int i = 0; i < 20; ++i)
        r2.push_back(i);
    EXPECT_EQ(r2.size(), 20u);
}
#endif

TEST(RingTest, MoveOnlyElements)
{
    Ring<std::unique_ptr<int>> r;
    for (int i = 0; i < 20; ++i)
        r.push_back(std::make_unique<int>(i));
    int expect = 0;
    while (!r.empty()) {
        EXPECT_EQ(*r.front(), expect++);
        auto p = std::move(r.front());
        r.pop_front();
    }
    EXPECT_EQ(expect, 20);
}

struct ClockCase
{
    std::uint64_t mhz;
    Tick period;
};

class ClockDomainParam : public ::testing::TestWithParam<ClockCase>
{
};

TEST_P(ClockDomainParam, PeriodMatchesFrequency)
{
    auto [mhz, period] = GetParam();
    ClockDomain cd = ClockDomain::fromMHz(mhz);
    EXPECT_EQ(cd.period(), period);
    EXPECT_NEAR(cd.frequencyHz(), mhz * 1e6, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Clocks, ClockDomainParam,
    ::testing::Values(ClockCase{3200, 5}, ClockCase{1000, 16},
                      ClockCase{2000, 8}, ClockCase{4000, 4},
                      ClockCase{500, 32}, ClockCase{250, 64},
                      ClockCase{125, 128}, ClockCase{800, 20}));

TEST(ClockDomainTest, EdgeSnapping)
{
    ClockDomain cd(16); // 1 GHz
    EXPECT_EQ(cd.edgeAtOrAfter(0), 0u);
    EXPECT_EQ(cd.edgeAtOrAfter(1), 16u);
    EXPECT_EQ(cd.edgeAtOrAfter(16), 16u);
    EXPECT_EQ(cd.edgeAfter(16), 32u);
    EXPECT_EQ(cd.cyclesToTicks(3), 48u);
    EXPECT_EQ(cd.ticksToCycles(47), 2u);
}

TEST(RngTest, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 64; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SplitMixTest, IsDeterministicAndMixing)
{
    EXPECT_EQ(splitmix64(1), splitmix64(1));
    EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(StatsTest, RegistrySetGet)
{
    StatRegistry r;
    EXPECT_FALSE(r.has("x"));
    EXPECT_DOUBLE_EQ(r.get("x", -1.0), -1.0);
    r.set("x", 3.5);
    EXPECT_TRUE(r.has("x"));
    EXPECT_DOUBLE_EQ(r.get("x"), 3.5);
}

TEST(StatsTest, InternedHandlesAliasTheNamedStatistic)
{
    StatRegistry r;
    const StatRegistry::StatId id = r.intern("core.loads");
    EXPECT_EQ(r.intern("core.loads"), id); // stable across re-interning
    EXPECT_EQ(r.name(id), "core.loads");
    EXPECT_DOUBLE_EQ(r.get(id), 0.0);

    r.add(id, 3.0);
    r.add(id, 4.0);
    EXPECT_DOUBLE_EQ(r.get(id), 7.0);
    EXPECT_DOUBLE_EQ(r.get("core.loads"), 7.0); // same storage

    // By-name writes are visible through the handle and vice versa,
    // and handles survive later insertions into the map.
    r.set("core.loads", 1.0);
    const StatRegistry::StatId other = r.intern("aaa.first");
    r.set("zzz.last", 9.0);
    EXPECT_DOUBLE_EQ(r.get(id), 1.0);
    r.set(id, 5.0);
    EXPECT_DOUBLE_EQ(r.get("core.loads"), 5.0);
    EXPECT_DOUBLE_EQ(r.get(other), 0.0);

    // Interning an already-published name adopts its value.
    EXPECT_DOUBLE_EQ(r.get(r.intern("zzz.last")), 9.0);
}

TEST(StatsTest, SampleSummaryQuartiles)
{
    SampleSummary s =
        SampleSummary::of({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.q1, 2.0);
    EXPECT_DOUBLE_EQ(s.q3, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(StatsTest, SampleSummaryEmptyAndSingle)
{
    SampleSummary e = SampleSummary::of({});
    EXPECT_DOUBLE_EQ(e.max, 0.0);
    SampleSummary one = SampleSummary::of({7.0});
    EXPECT_DOUBLE_EQ(one.min, 7.0);
    EXPECT_DOUBLE_EQ(one.median, 7.0);
    EXPECT_DOUBLE_EQ(one.max, 7.0);
}

TEST(StatsTest, Geomean)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({3.0}), 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Non-positive entries are ignored.
    EXPECT_NEAR(geomean({2.0, 8.0, 0.0}), 4.0, 1e-9);
}

TEST(TypesTest, LineHelpers)
{
    EXPECT_EQ(lineAlign(0x1234), 0x1200u);
    EXPECT_EQ(lineOffset(0x1234), 0x34u);
    EXPECT_EQ(pageAlign(0x12345), 0x12000u);
    EXPECT_EQ(pageNumber(0x12345), 0x12u);
}

} // namespace
} // namespace epf
