/**
 * @file
 * Unit tests for the PPU ISA: builder, interpreter semantics per opcode,
 * trap behaviour, prefetch emission and the disassembler.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "isa/builder.hpp"
#include "isa/disasm.hpp"
#include "isa/interpreter.hpp"
#include "isa/isa.hpp"

namespace epf
{
namespace
{

/** Run a kernel that ends by prefetching its result register r1. */
std::uint64_t
evalR1(KernelBuilder &b, const EventContext &ctx, ExitReason *exit = nullptr)
{
    b.prefetch(1).halt();
    Kernel k = b.build();
    std::uint64_t result = 0;
    ExecResult r = Interpreter::run(
        k, ctx, [&](const PrefetchEmit &e) { result = e.vaddr; });
    if (exit != nullptr)
        *exit = r.exit;
    return result;
}

EventContext
plainCtx()
{
    static std::uint64_t globals[kGlobalRegs] = {};
    static std::uint64_t lookahead[4] = {4, 8, 16, 32};
    EventContext ctx;
    ctx.vaddr = 0x1234;
    ctx.globalRegs = globals;
    ctx.lookahead = lookahead;
    ctx.lookaheadEntries = 4;
    return ctx;
}

TEST(InterpreterTest, LiAndMov)
{
    KernelBuilder b("t");
    b.li(2, 99).mov(1, 2);
    EXPECT_EQ(evalR1(b, plainCtx()), 99u);
}

struct AluCase
{
    const char *name;
    Opcode op;
    std::int64_t a, b;
    std::uint64_t expect;
};

class AluParam : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluParam, RegisterForm)
{
    auto c = GetParam();
    KernelBuilder b("t");
    b.li(2, c.a).li(3, c.b);
    // Emit the raw instruction via the matching builder method.
    switch (c.op) {
      case Opcode::kAdd: b.add(1, 2, 3); break;
      case Opcode::kSub: b.sub(1, 2, 3); break;
      case Opcode::kMul: b.mul(1, 2, 3); break;
      case Opcode::kDiv: b.div(1, 2, 3); break;
      case Opcode::kAnd: b.andr(1, 2, 3); break;
      case Opcode::kOr: b.orr(1, 2, 3); break;
      case Opcode::kXor: b.xorr(1, 2, 3); break;
      case Opcode::kShl: b.shl(1, 2, 3); break;
      case Opcode::kShr: b.shr(1, 2, 3); break;
      default: FAIL();
    }
    EXPECT_EQ(evalR1(b, plainCtx()), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluParam,
    ::testing::Values(
        AluCase{"add", Opcode::kAdd, 7, 5, 12},
        AluCase{"add_wrap", Opcode::kAdd, -1, 2, 1},
        AluCase{"sub", Opcode::kSub, 7, 5, 2},
        AluCase{"sub_neg", Opcode::kSub, 5, 7,
                static_cast<std::uint64_t>(-2)},
        AluCase{"mul", Opcode::kMul, 7, 5, 35},
        AluCase{"div", Opcode::kDiv, 35, 5, 7},
        AluCase{"div_signed", Opcode::kDiv, -35, 5,
                static_cast<std::uint64_t>(-7)},
        AluCase{"and", Opcode::kAnd, 0xFF, 0x0F, 0x0F},
        AluCase{"or", Opcode::kOr, 0xF0, 0x0F, 0xFF},
        AluCase{"xor", Opcode::kXor, 0xFF, 0x0F, 0xF0},
        AluCase{"shl", Opcode::kShl, 3, 4, 48},
        AluCase{"shr", Opcode::kShr, 48, 4, 3}),
    [](const auto &info) { return info.param.name; });

TEST(InterpreterTest, ImmediateForms)
{
    KernelBuilder b("t");
    b.li(1, 10)
        .addi(1, 1, 5)   // 15
        .muli(1, 1, 4)   // 60
        .divi(1, 1, 3)   // 20
        .andi(1, 1, 0x1C) // 20 & 28 = 20
        .shli(1, 1, 2)   // 80
        .shri(1, 1, 1);  // 40
    EXPECT_EQ(evalR1(b, plainCtx()), 40u);
}

TEST(InterpreterTest, VaddrAndLineBase)
{
    EventContext ctx = plainCtx();
    ctx.vaddr = 0x1278;
    {
        KernelBuilder b("t");
        b.vaddr(1);
        EXPECT_EQ(evalR1(b, ctx), 0x1278u);
    }
    {
        KernelBuilder b("t");
        b.lineBase(1);
        EXPECT_EQ(evalR1(b, ctx), 0x1240u);
    }
}

TEST(InterpreterTest, LdLineReadsObservedData)
{
    EventContext ctx = plainCtx();
    ctx.hasLine = true;
    std::uint64_t words[8] = {11, 22, 33, 44, 55, 66, 77, 88};
    std::memcpy(ctx.line.data(), words, sizeof(words));
    ctx.vaddr = lineAlign(ctx.vaddr) + 16; // third word

    KernelBuilder b("t");
    b.vaddr(2).ldLine(1, 2, 0);
    EXPECT_EQ(evalR1(b, ctx), 33u);

    KernelBuilder b2("t");
    b2.vaddr(2).ldLine(1, 2, 8); // next word
    EXPECT_EQ(evalR1(b2, ctx), 44u);
}

TEST(InterpreterTest, LdLine32ZeroExtends)
{
    EventContext ctx = plainCtx();
    ctx.hasLine = true;
    std::uint32_t words[16];
    for (std::uint32_t i = 0; i < 16; ++i)
        words[i] = 0x80000000u + i;
    std::memcpy(ctx.line.data(), words, sizeof(words));
    ctx.vaddr = lineAlign(ctx.vaddr);

    KernelBuilder b("t");
    b.li(2, 4).ldLine32(1, 2, 0);
    EXPECT_EQ(evalR1(b, ctx), 0x80000001u);
}

TEST(InterpreterTest, LdLineWithoutDataTraps)
{
    EventContext ctx = plainCtx();
    ctx.hasLine = false;
    KernelBuilder b("t");
    b.li(2, 0).ldLine(1, 2, 0);
    ExitReason exit;
    evalR1(b, ctx, &exit);
    EXPECT_EQ(exit, ExitReason::kTrapped);
}

TEST(InterpreterTest, GlobalRegisterRead)
{
    std::uint64_t globals[kGlobalRegs] = {};
    globals[7] = 0xABCD;
    EventContext ctx = plainCtx();
    ctx.globalRegs = globals;
    KernelBuilder b("t");
    b.gread(1, 7);
    EXPECT_EQ(evalR1(b, ctx), 0xABCDu);
}

TEST(InterpreterTest, LookaheadRead)
{
    EventContext ctx = plainCtx();
    KernelBuilder b("t");
    b.lookahead(1, 2);
    EXPECT_EQ(evalR1(b, ctx), 16u);
}

TEST(InterpreterTest, LookaheadOutOfRangeTraps)
{
    EventContext ctx = plainCtx();
    KernelBuilder b("t");
    b.lookahead(1, 9);
    ExitReason exit;
    evalR1(b, ctx, &exit);
    EXPECT_EQ(exit, ExitReason::kTrapped);
}

TEST(InterpreterTest, DivByZeroTraps)
{
    KernelBuilder b("t");
    b.li(1, 5).li(2, 0).div(1, 1, 2);
    ExitReason exit;
    evalR1(b, plainCtx(), &exit);
    EXPECT_EQ(exit, ExitReason::kTrapped);
}

TEST(InterpreterTest, DivOverflowTraps)
{
    // INT64_MIN / -1 does not fit in 64 bits; real hardware raises the
    // same exception as /0, and evaluating it in C++ is UB, so the
    // interpreter traps instead of dividing.
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    KernelBuilder b("t");
    b.li(1, min).li(2, -1).div(1, 1, 2);
    ExitReason exit;
    evalR1(b, plainCtx(), &exit);
    EXPECT_EQ(exit, ExitReason::kTrapped);
}

TEST(InterpreterTest, DiviOverflowTraps)
{
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    KernelBuilder b("t");
    b.li(1, min).divi(1, 1, -1);
    ExitReason exit;
    evalR1(b, plainCtx(), &exit);
    EXPECT_EQ(exit, ExitReason::kTrapped);
}

TEST(InterpreterTest, DivNearOverflowStillDivides)
{
    // The two individually-benign halves of the overflow pair must not
    // trap: INT64_MIN / 1 and (INT64_MIN + 1) / -1 are representable.
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    {
        KernelBuilder b("t");
        b.li(1, min).divi(1, 1, 1);
        ExitReason exit;
        EXPECT_EQ(evalR1(b, plainCtx(), &exit),
                  static_cast<std::uint64_t>(min));
        EXPECT_EQ(exit, ExitReason::kHalted);
    }
    {
        KernelBuilder b("t");
        b.li(1, min + 1).li(2, -1).div(1, 1, 2);
        ExitReason exit;
        EXPECT_EQ(evalR1(b, plainCtx(), &exit),
                  static_cast<std::uint64_t>(-(min + 1)));
        EXPECT_EQ(exit, ExitReason::kHalted);
    }
}

TEST(InterpreterTest, InfiniteLoopHitsStepLimit)
{
    KernelBuilder b("t");
    auto top = b.newLabel();
    b.bind(top).jmp(top);
    Kernel k = b.build();
    ExecResult r = Interpreter::run(k, plainCtx(), nullptr, 100);
    EXPECT_EQ(r.exit, ExitReason::kStepLimit);
    EXPECT_EQ(r.cycles, 100u);
}

TEST(InterpreterTest, BranchesAndLoop)
{
    // Sum 1..5 with a loop: r1 = sum, r2 = i.
    KernelBuilder b("t");
    auto loop = b.newLabel();
    b.li(1, 0).li(2, 1).li(3, 6);
    b.bind(loop).add(1, 1, 2).addi(2, 2, 1).blt(2, 3, loop);
    EXPECT_EQ(evalR1(b, plainCtx()), 15u);
}

TEST(InterpreterTest, ConditionalSkip)
{
    KernelBuilder b("t");
    auto skip = b.newLabel();
    b.li(1, 1).li(2, 5).li(3, 5);
    b.beq(2, 3, skip).li(1, 99); // skipped
    b.bind(skip);
    EXPECT_EQ(evalR1(b, plainCtx()), 1u);
}

TEST(InterpreterTest, PrefetchVariantsCarryMetadata)
{
    KernelBuilder b("t");
    b.li(1, 0x4000)
        .prefetch(1)
        .prefetchTag(1, 3)
        .prefetchCb(1, 17)
        .halt();
    Kernel k = b.build();

    std::vector<PrefetchEmit> emits;
    ExecResult r = Interpreter::run(
        k, plainCtx(), [&](const PrefetchEmit &e) { emits.push_back(e); });
    EXPECT_EQ(r.exit, ExitReason::kHalted);
    ASSERT_EQ(emits.size(), 3u);
    EXPECT_EQ(emits[0].tag, -1);
    EXPECT_EQ(emits[0].cbKernel, kNoKernel);
    EXPECT_EQ(emits[1].tag, 3);
    EXPECT_EQ(emits[2].cbKernel, 17);
    EXPECT_EQ(r.emitted, 3u);
}

TEST(InterpreterTest, CyclesMatchInstructionCount)
{
    KernelBuilder b("t");
    b.li(1, 1).addi(1, 1, 1).addi(1, 1, 1).halt();
    Kernel k = b.build();
    ExecResult r = Interpreter::run(k, plainCtx(), nullptr);
    EXPECT_EQ(r.cycles, 4u);
}

TEST(KernelTableTest, AddAndFootprint)
{
    KernelTable kt;
    KernelBuilder b("k0");
    b.li(1, 1).halt();
    KernelId id = kt.add(b.build());
    EXPECT_TRUE(kt.valid(id));
    EXPECT_FALSE(kt.valid(kNoKernel));
    EXPECT_FALSE(kt.valid(99));
    EXPECT_EQ(kt.totalBytes(), 2u * 4u);
    EXPECT_EQ(kt[id].name, "k0");
}

TEST(DisasmTest, RendersKeyOpcodes)
{
    EXPECT_EQ(disassemble(Instr{Opcode::kLi, 1, 0, 0, 42}), "li r1, 42");
    EXPECT_EQ(disassemble(Instr{Opcode::kAdd, 1, 2, 3, 0}),
              "add r1, r2, r3");
    EXPECT_EQ(disassemble(Instr{Opcode::kPrefetchTag, 0, 4, 0, 7}),
              "prefetch.tag r4, tag=7");
    EXPECT_EQ(disassemble(Instr{Opcode::kGread, 5, 0, 0, 3}),
              "gread r5, g3");
    Kernel k;
    k.name = "demo";
    k.code = {Instr{Opcode::kHalt, 0, 0, 0, 0}};
    std::string text = disassemble(k);
    EXPECT_NE(text.find("demo:"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

/** Property: random linear (branch-free) programs always halt. */
TEST(InterpreterTest, RandomLinearProgramsTerminate)
{
    std::uint64_t seed = 12345;
    for (int trial = 0; trial < 200; ++trial) {
        KernelBuilder b("rand");
        seed = seed * 6364136223846793005ULL + 1;
        unsigned len = 1 + (seed >> 40) % 30;
        for (unsigned i = 0; i < len; ++i) {
            seed = seed * 6364136223846793005ULL + 1;
            switch ((seed >> 33) % 6) {
              case 0: b.li(seed % kPpuRegs, static_cast<std::int64_t>(seed)); break;
              case 1: b.add(seed % kPpuRegs, (seed >> 8) % kPpuRegs, (seed >> 16) % kPpuRegs); break;
              case 2: b.muli(seed % kPpuRegs, (seed >> 8) % kPpuRegs, 3); break;
              case 3: b.vaddr(seed % kPpuRegs); break;
              case 4: b.shri(seed % kPpuRegs, (seed >> 8) % kPpuRegs, 5); break;
              default: b.prefetch(seed % kPpuRegs); break;
            }
        }
        b.halt();
        Kernel k = b.build();
        ExecResult r = Interpreter::run(k, plainCtx(), nullptr);
        EXPECT_EQ(r.exit, ExitReason::kHalted);
        EXPECT_LE(r.cycles, len + 1);
    }
}

// ---------------------------------------------------------------------
// Builder hardening: malformed programs throw instead of silently
// producing a broken kernel in release builds.
// ---------------------------------------------------------------------

TEST(BuilderTest, ThrowsOnOutOfRangeRegister)
{
    KernelBuilder b("regs");
    EXPECT_THROW(b.li(kPpuRegs, 1), std::invalid_argument);
    EXPECT_THROW(b.add(1, 2, 200), std::invalid_argument);
    EXPECT_THROW(b.prefetch(16), std::invalid_argument);
    EXPECT_NO_THROW(b.li(kPpuRegs - 1, 1));
}

TEST(BuilderTest, ThrowsOnUnboundLabelAtBuild)
{
    KernelBuilder b("unbound");
    auto l = b.newLabel();
    b.li(1, 1).beq(1, 1, l).halt();
    EXPECT_THROW(b.build(), std::invalid_argument);
    // Binding it repairs the kernel.
    b.bind(l).halt();
    EXPECT_NO_THROW(b.build());
}

TEST(BuilderTest, ThrowsOnDoubleBind)
{
    KernelBuilder b("double");
    auto l = b.newLabel();
    b.bind(l).li(1, 1);
    EXPECT_THROW(b.bind(l), std::invalid_argument);
}

TEST(BuilderTest, ThrowsOnForeignLabel)
{
    KernelBuilder a("a");
    KernelBuilder b("b");
    auto la = a.newLabel();
    (void)la;
    KernelBuilder::Label never; // id -1: not from any builder
    EXPECT_THROW(b.bind(never), std::invalid_argument);
    EXPECT_THROW(b.jmp(never), std::invalid_argument);
    // A label from another builder with an id this builder never
    // allocated is also foreign.
    auto la2 = a.newLabel();
    (void)la2;
    auto foreign = KernelBuilder::Label{1};
    EXPECT_THROW(b.bind(foreign), std::invalid_argument);
}

} // namespace
} // namespace epf
