/**
 * @file
 * Tests for the pre-decoded PPU interpreter (src/isa/predecode.hpp):
 * decode-time fusion and trap hoisting, bit-identical semantics against
 * the reference interpreter at every exit path (including step-limit
 * truncation mid-fused-sequence), the content-addressed DecodeCache,
 * and the ProgrammablePrefetcher's cache-invalidation contract
 * (invalidated by reset()/kernel mutation, preserved across
 * contextSwitch(), shared across per-core instances).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "isa/builder.hpp"
#include "isa/interpreter.hpp"
#include "isa/predecode.hpp"
#include "mem/guest_memory.hpp"
#include "ppf/ppf.hpp"
#include "sim/event_queue.hpp"

namespace epf
{
namespace
{

EventContext
plainCtx()
{
    static std::uint64_t globals[kGlobalRegs] = {7, 11, 13};
    static std::uint64_t lookahead[4] = {4, 8, 16, 32};
    EventContext ctx;
    ctx.vaddr = 0x4321;
    ctx.globalRegs = globals;
    ctx.lookahead = lookahead;
    ctx.lookaheadEntries = 4;
    return ctx;
}

/**
 * Execute the reference interpreter and the decoded interpreter in both
 * modes (superblocks on and off) and require bit-identical observables.
 */
void
expectParity(const Kernel &k, const EventContext &ctx, unsigned max_steps,
             const char *what)
{
    std::vector<PrefetchEmit> refEmits;
    std::uint64_t refRegs[kPpuRegs];
    const ExecResult ref = Interpreter::run(
        k, ctx, [&](const PrefetchEmit &e) { refEmits.push_back(e); },
        max_steps, refRegs);

    for (const bool superblocks : {true, false}) {
        std::vector<PrefetchEmit> decEmits;
        std::uint64_t decRegs[kPpuRegs];
        const DecodedKernel dk(k, superblocks);
        const ExecResult dec = DecodedKernel::run(
            dk, ctx, [&](const PrefetchEmit &e) { decEmits.push_back(e); },
            max_steps, decRegs);

        const char *mode = superblocks ? " [superblocks]" : " [decoded]";
        ASSERT_EQ(ref.exit, dec.exit) << what << mode;
        ASSERT_EQ(ref.cycles, dec.cycles) << what << mode;
        ASSERT_EQ(ref.emitted, dec.emitted) << what << mode;
        ASSERT_EQ(refEmits.size(), decEmits.size()) << what << mode;
        for (std::size_t i = 0; i < refEmits.size(); ++i) {
            EXPECT_EQ(refEmits[i].vaddr, decEmits[i].vaddr) << what << mode;
            EXPECT_EQ(refEmits[i].tag, decEmits[i].tag) << what << mode;
            EXPECT_EQ(refEmits[i].cbKernel, decEmits[i].cbKernel)
                << what << mode;
        }
        EXPECT_EQ(0, std::memcmp(refRegs, decRegs, sizeof(refRegs)))
            << what << mode;
    }
}

// ---------------------------------------------------------------------
// Decode shape
// ---------------------------------------------------------------------

TEST(PredecodeTest, FusesDominantIdioms)
{
    // li+prefetch and addi+bne fuse as pairs; the chained hash idiom
    // andi+shli+add+prefetch fuses whole as a quad: 9 architectural
    // instructions decode to 4 slots.
    KernelBuilder b("fuse");
    auto loop = b.newLabel();
    b.li(1, 0x1000);       // fused pair with...
    b.prefetch(1);         // ...this prefetch
    b.bind(loop);
    b.andi(2, 1, 0xFF);    // the four-instruction hash idiom:
    b.shli(2, 2, 3);       // mask, shift,
    b.add(3, 2, 1);        // rebase,
    b.prefetch(3);         // emit -- fuses whole as a quad
    b.addi(4, 4, 1);       // fused pair with...
    b.bne(4, 5, loop);     // ...the loop branch
    b.halt();
    const Kernel k = b.build();
    const DecodedKernel dk(k, /*superblocks=*/false);

    EXPECT_EQ(dk.archLength(), 9u);
    EXPECT_EQ(dk.fusedOps(), 3u);
    EXPECT_EQ(dk.decodedLength(), 4u);
    EXPECT_EQ(dk.at(0).op, DecodedOp::kLiPrefetch);
    EXPECT_EQ(dk.at(0).archCycles, 2u);
    EXPECT_EQ(dk.at(1).op, DecodedOp::kHashiPrefetch);
    EXPECT_EQ(dk.at(1).archCycles, 4u);
    EXPECT_EQ(dk.at(2).op, DecodedOp::kAddiBne);
    EXPECT_EQ(dk.at(2).target, 1u); // decoded index of the loop head
    EXPECT_EQ(dk.at(3).op, DecodedOp::kHalt);

    // With superblock formation on, the loop body (quad + fused
    // addi/bne terminator) collapses into a single superblock op at
    // the loop head; the entry block is a lone slot and stays as-is.
    const DecodedKernel dksb(k);
    EXPECT_EQ(dksb.at(0).op, DecodedOp::kLiPrefetch);
    EXPECT_EQ(dksb.at(1).op, DecodedOp::kSuperblock);
    ASSERT_EQ(dksb.superblocks().size(), 1u);
    EXPECT_EQ(dksb.superblocks()[0].cycles, 6u); // quad 4 + addi/bne 2
    EXPECT_EQ(dksb.superblocks()[0].emits, 1u);
    EXPECT_TRUE(dksb.superblocks()[0].hasTerm);
    EXPECT_EQ(dksb.at(2).op, DecodedOp::kAddiBne); // interior untouched

    expectParity(k, plainCtx(), kMaxKernelSteps, "fused idioms");
    // Truncation at every point inside the quad stays exact.
    for (unsigned steps = 1; steps <= 10; ++steps)
        expectParity(k, plainCtx(), steps, "fused idioms truncation");
}

TEST(PredecodeTest, RegisterMaskHashFusesToo)
{
    // The randacc/hashjoin form masks with a register (gread'd mask):
    // and+shli+add+prefetchCb also quad-fuses.
    KernelBuilder b("hashr");
    b.vaddr(1).gread(3, 0).andr(2, 1, 3).shli(2, 2, 3).add(2, 2, 3)
        .prefetchCb(2, 7).halt();
    const Kernel k = b.build();
    const DecodedKernel dk(k);
    EXPECT_EQ(dk.fusedOps(), 1u);
    EXPECT_EQ(dk.at(2).op, DecodedOp::kHashrPrefetchCb);
    expectParity(k, plainCtx(), kMaxKernelSteps, "hashr quad");
    for (unsigned steps = 1; steps <= 7; ++steps)
        expectParity(k, plainCtx(), steps, "hashr quad truncation");
}

TEST(PredecodeTest, BranchTargetBlocksFusion)
{
    // The jmp lands on the shli, so the (chained) andi+shli must NOT
    // fuse: a taken branch has to be able to enter at the pair's
    // second half.
    KernelBuilder b("join");
    auto mid = b.newLabel();
    b.li(1, 0xF0).li(2, 2).jmp(mid);
    b.andi(3, 1, 0x0F); // skipped by the jmp
    b.bind(mid);
    b.shli(4, 3, 1); // chains on the andi, but is a join point
    b.prefetch(4).halt();
    const Kernel k = b.build();
    const DecodedKernel dk(k);

    EXPECT_EQ(dk.fusedOps(), 0u);
    EXPECT_EQ(dk.decodedLength(), dk.archLength());
    expectParity(k, plainCtx(), kMaxKernelSteps, "join blocks fusion");
}

TEST(PredecodeTest, UnchainedPairsDoNotFuse)
{
    // The prefetch reads r2, not the li's r1: no chain, no fusion (the
    // forwarding optimisation would be wrong).
    KernelBuilder b("nochain");
    b.li(1, 0x1000).prefetch(2).halt();
    const DecodedKernel dk(b.build());
    EXPECT_EQ(dk.fusedOps(), 0u);
    expectParity(b.build(), plainCtx(), kMaxKernelSteps, "unchained");
}

TEST(PredecodeTest, HoistsStaticTraps)
{
    // divi #0, out-of-range gread and a negative lookahead index are
    // provable at decode: they become kTrap instead of dynamic checks.
    {
        KernelBuilder b("d0");
        b.li(1, 9).divi(1, 1, 0).halt();
        const DecodedKernel dk(b.build());
        EXPECT_EQ(dk.at(1).op, DecodedOp::kTrap);
        expectParity(b.build(), plainCtx(), kMaxKernelSteps, "divi #0");
    }
    {
        KernelBuilder b("goob");
        b.gread(1, kGlobalRegs + 3).halt();
        const DecodedKernel dk(b.build());
        EXPECT_EQ(dk.at(0).op, DecodedOp::kTrap);
        expectParity(b.build(), plainCtx(), kMaxKernelSteps, "gread oob");
    }
    {
        Kernel k{"laneg", {Instr{Opcode::kLookahead, 1, 0, 0, -2},
                           Instr{Opcode::kHalt, 0, 0, 0, 0}}};
        const DecodedKernel dk(k);
        EXPECT_EQ(dk.at(0).op, DecodedOp::kTrap);
        expectParity(k, plainCtx(), kMaxKernelSteps, "lookahead neg");
    }
}

// ---------------------------------------------------------------------
// Semantics parity at every exit path
// ---------------------------------------------------------------------

TEST(PredecodeTest, LoopParity)
{
    KernelBuilder b("sum");
    auto loop = b.newLabel();
    b.li(1, 0).li(2, 1).li(3, 6);
    b.bind(loop).add(1, 1, 2).addi(2, 2, 1).blt(2, 3, loop);
    b.prefetch(1).halt();
    expectParity(b.build(), plainCtx(), kMaxKernelSteps, "sum loop");
}

TEST(PredecodeTest, StepLimitMidFusedPairTruncatesExactly)
{
    // max_steps = 1 stops a fused li+prefetch between its halves: the
    // li's register write lands, the prefetch must NOT be emitted, and
    // cycles stops at exactly 1 — in both interpreters.
    KernelBuilder b("t");
    b.li(1, 0xAB).prefetch(1).halt();
    const Kernel k = b.build();
    ASSERT_EQ(DecodedKernel(k).fusedOps(), 1u);
    expectParity(k, plainCtx(), 1, "step limit mid-pair");

    std::uint64_t regs[kPpuRegs];
    const ExecResult dec = DecodedKernel::run(
        DecodedKernel(k), plainCtx(), nullptr, 1, regs);
    EXPECT_EQ(dec.exit, ExitReason::kStepLimit);
    EXPECT_EQ(dec.cycles, 1u);
    EXPECT_EQ(dec.emitted, 0u);
    EXPECT_EQ(regs[1], 0xABu);

    // Every other budget around the pair boundary agrees too.
    for (unsigned steps = 2; steps <= 4; ++steps)
        expectParity(k, plainCtx(), steps, "step limit sweep");
}

TEST(PredecodeTest, TrapMidFusedPairKeepsFirstHalfEffects)
{
    // addi+ldLine fuses; without line data the ldLine half traps, but
    // the addi's register write must survive and 2 cycles are charged.
    KernelBuilder b("t");
    b.addi(1, 1, 0x40).ldLine(2, 1, 0).halt();
    const Kernel k = b.build();
    ASSERT_EQ(DecodedKernel(k).fusedOps(), 1u);

    EventContext ctx = plainCtx();
    ctx.hasLine = false;
    expectParity(k, ctx, kMaxKernelSteps, "trap mid-pair");

    std::uint64_t regs[kPpuRegs];
    const ExecResult dec =
        DecodedKernel::run(DecodedKernel(k), ctx, nullptr,
                           kMaxKernelSteps, regs);
    EXPECT_EQ(dec.exit, ExitReason::kTrapped);
    EXPECT_EQ(dec.cycles, 2u);
    EXPECT_EQ(regs[1], 0x40u);
}

TEST(PredecodeTest, BoundaryAndWildBranchParity)
{
    // Falling off the end traps without charging a cycle for the
    // missing fetch; a branch to an out-of-range target does the same.
    {
        KernelBuilder b("falloff");
        b.li(1, 1).addi(1, 1, 1); // no halt
        expectParity(b.build(), plainCtx(), kMaxKernelSteps, "fall off");
    }
    {
        Kernel k{"wild", {Instr{Opcode::kJmp, 0, 0, 0, 1000},
                          Instr{Opcode::kHalt, 0, 0, 0, 0}}};
        expectParity(k, plainCtx(), kMaxKernelSteps, "wild jmp");
    }
    {
        Kernel k{"neg", {Instr{Opcode::kJmp, 0, 0, 0, -55}}};
        expectParity(k, plainCtx(), kMaxKernelSteps, "negative jmp");
    }
}

TEST(PredecodeTest, DivOverflowParity)
{
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    {
        KernelBuilder b("div");
        b.li(1, min).li(2, -1).div(3, 1, 2).halt();
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "div INT64_MIN/-1");
    }
    {
        KernelBuilder b("divi");
        b.li(1, min).divi(3, 1, -1).halt();
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "divi INT64_MIN/-1");
    }
    {
        KernelBuilder b("ok");
        b.li(1, min + 1).divi(3, 1, -1).prefetch(3).halt();
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "divi near-overflow");
    }
}

TEST(PredecodeTest, OutOfEnumOpcodeIsAChargedNop)
{
    // An opcode byte outside the enum (only constructible from raw
    // Instr structs) falls through the reference switch as a charged
    // no-op; the decoder must map it the same way, not trap.
    Kernel k{"weird", {Instr{static_cast<Opcode>(200), 1, 2, 3, 7},
                       Instr{Opcode::kLi, 1, 0, 0, 5},
                       Instr{Opcode::kHalt, 0, 0, 0, 0}}};
    const DecodedKernel dk(k, /*superblocks=*/false);
    EXPECT_EQ(dk.at(0).op, DecodedOp::kNop);
    // The charged nop is trap-free, so under superblock formation the
    // whole kernel (nop + li + halt terminator) fuses into one block.
    EXPECT_EQ(DecodedKernel(k).at(0).op, DecodedOp::kSuperblock);
    expectParity(k, plainCtx(), kMaxKernelSteps, "out-of-enum opcode");
}

TEST(PredecodeTest, EmptyKernelTrapsWithZeroCycles)
{
    const Kernel k{"empty", {}};
    expectParity(k, plainCtx(), kMaxKernelSteps, "empty kernel");
    const ExecResult dec =
        DecodedKernel::run(DecodedKernel(k), plainCtx(), nullptr);
    EXPECT_EQ(dec.exit, ExitReason::kTrapped);
    EXPECT_EQ(dec.cycles, 0u);
}

// ---------------------------------------------------------------------
// Superblocks: formation shape and budget-exact execution
// ---------------------------------------------------------------------

TEST(SuperblockTest, StraightLineKernelFormsOneBlockBudgetSweep)
{
    // vaddr + hash quad + addi/prefetch pair + halt: one basic block,
    // one superblock covering everything including the terminator.
    KernelBuilder b("line");
    b.vaddr(1);
    b.andi(2, 1, 0xFF).shli(2, 2, 3).add(3, 2, 1).prefetch(3);
    b.addi(4, 4, 8).prefetch(4);
    b.halt();
    const Kernel k = b.build();

    const DecodedKernel dk(k);
    EXPECT_EQ(dk.at(0).op, DecodedOp::kSuperblock);
    ASSERT_EQ(dk.superblocks().size(), 1u);
    const SuperBlock &sb = dk.superblocks()[0];
    EXPECT_EQ(sb.cycles, 8u); // all 8 arch instructions, halt included
    EXPECT_EQ(sb.emits, 2u);
    EXPECT_TRUE(sb.hasTerm);
    EXPECT_FALSE(sb.needsLine);
    EXPECT_FALSE(sb.needsGlobals);

    // Every budget 1..block-length truncates exactly like the
    // reference (the bulk-charge fast path must not fire early).
    for (unsigned steps = 1; steps <= 9; ++steps)
        expectParity(k, plainCtx(), steps, "straight-line budget sweep");
}

TEST(SuperblockTest, LoopBudgetSweepEveryCycle)
{
    // The loop body superblocks; sweep every budget across several
    // full iterations so truncation lands at every offset inside the
    // block, including exactly on block boundaries.
    KernelBuilder b("loop");
    auto loop = b.newLabel();
    b.li(1, 0).li(2, 0).li(4, 4);
    b.bind(loop);
    b.andi(3, 1, 0x3F).shli(3, 3, 2).add(3, 3, 1).prefetch(3);
    b.addi(1, 1, 40);
    b.addi(2, 2, 1).bne(2, 4, loop); // 4 iterations
    b.halt();
    const Kernel k = b.build();

    const ExecResult full =
        Interpreter::run(k, plainCtx(), nullptr, kMaxKernelSteps);
    ASSERT_EQ(full.exit, ExitReason::kHalted);
    for (unsigned steps = 1; steps <= full.cycles + 1; ++steps)
        expectParity(k, plainCtx(), steps, "loop budget sweep");
}

TEST(SuperblockTest, GuardedLdLineFallsBackWithoutLine)
{
    // ldline is never proven trap-free under the decode-time context,
    // so it joins a superblock only behind the needs-line entry guard;
    // without line data the block takes the op-by-op slow path and
    // traps exactly where the reference does.
    KernelBuilder b("chase");
    b.vaddr(1).andi(1, 1, ~0x3Fll).ldLine(2, 1, 0).addi(2, 2, 0x40)
        .prefetch(2).halt();
    const Kernel k = b.build();

    const DecodedKernel dk(k);
    ASSERT_EQ(dk.superblocks().size(), 1u);
    EXPECT_TRUE(dk.superblocks()[0].needsLine);

    const std::uint64_t line[8] = {0x1000, 0x2000, 0x3000, 0x4000,
                                   0x5000, 0x6000, 0x7000, 0x8000};
    EventContext with = plainCtx();
    with.hasLine = true;
    std::memcpy(with.line.data(), line, sizeof(line));
    EventContext without = plainCtx();
    without.hasLine = false;
    for (unsigned steps = 1; steps <= 7; ++steps) {
        expectParity(k, with, steps, "ldline guarded fast path");
        expectParity(k, without, steps, "ldline guard fallback");
    }
}

TEST(SuperblockTest, LookaheadGuardChecksInstalledEntries)
{
    // lookahead #2 needs at least 3 installed entries: the block's
    // guard compares against ctx.lookaheadEntries at entry, and the
    // slow path reproduces the reference trap when too few.
    KernelBuilder b("la");
    b.li(1, 0x100).lookahead(2, 2).add(1, 1, 2).prefetch(1).halt();
    const Kernel k = b.build();

    const DecodedKernel dk(k);
    ASSERT_EQ(dk.superblocks().size(), 1u);
    EXPECT_EQ(dk.superblocks()[0].lookaheadMax, 2);

    EventContext enough = plainCtx(); // 4 entries installed
    EventContext few = plainCtx();
    few.lookaheadEntries = 1;
    EventContext none = plainCtx();
    none.lookahead = nullptr;
    none.lookaheadEntries = 0;
    for (unsigned steps = 1; steps <= 6; ++steps) {
        expectParity(k, enough, steps, "lookahead in range");
        expectParity(k, few, steps, "lookahead out of range");
        expectParity(k, none, steps, "lookahead absent");
    }
}

TEST(SuperblockTest, ProvenDiviJoinsUnprovenSplits)
{
    // divi #3 can never trap: the dataflow proof admits it into the
    // block.  divi #-1 can overflow on INT64_MIN, which the decode
    // context cannot exclude for an event-dependent value: the run
    // splits around it and no full-coverage superblock forms.
    {
        KernelBuilder b("dok");
        b.vaddr(1).divi(2, 1, 3).addi(2, 2, 1).prefetch(2).halt();
        const DecodedKernel dk(b.build());
        ASSERT_EQ(dk.superblocks().size(), 1u);
        EXPECT_EQ(dk.superblocks()[0].cycles, 5u);
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "proven divi joins");
    }
    {
        KernelBuilder b("dbad");
        b.vaddr(1).divi(2, 1, -1).addi(2, 2, 1).prefetch(2).halt();
        const DecodedKernel dk(b.build());
        EXPECT_NE(dk.at(1).op, DecodedOp::kSuperblock);
        for (const SuperBlock &sb : dk.superblocks())
            EXPECT_LT(sb.cycles, 5u); // never spans the unproven divi
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "unproven divi splits");
    }
}

TEST(SuperblockTest, SingleSlotRunsDoNotForm)
{
    // A lone slot gains nothing from block dispatch: formation
    // requires at least two joined slots.
    KernelBuilder b("lone");
    b.li(1, 0x40).prefetch(1).halt(); // li+prefetch fuses: 2 slots total
    const DecodedKernel dk(b.build());
    // The pair + halt is 2 slots, which does form...
    ASSERT_EQ(dk.superblocks().size(), 1u);

    KernelBuilder b2("lone2");
    auto next = b2.newLabel();
    b2.jmp(next).bind(next).halt(); // two 1-slot blocks: nothing forms
    const DecodedKernel dk2(b2.build());
    EXPECT_TRUE(dk2.superblocks().empty());
    expectParity(b2.build(), plainCtx(), kMaxKernelSteps, "one-slot runs");
}

TEST(SuperblockTest, ChaseLoopShapeDataflowMasksAndBudgetSweep)
{
    // The canonical chase loop — fused bump+load feeding a hash quad,
    // plain compare-branch back to its own head — is tagged kChaseLoop
    // and carries exact dataflow masks: formation proved the cursor is
    // bumped in place and the limit/rebase operands are invariant, so
    // the handler keeps the whole loop-carried state in host registers.
    KernelBuilder b("chase_loop");
    auto loop = b.newLabel();
    b.vaddr(1).li(3, 0).li(4, 64);
    b.bind(loop);
    b.addi(3, 3, 8).ldLine(2, 3, -8).andi(2, 2, 0x1FF).shli(2, 2, 6)
        .add(2, 2, 1).prefetch(2).bne(3, 4, loop);
    b.halt();
    const Kernel k = b.build();

    const DecodedKernel dk(k);
    ASSERT_EQ(dk.superblocks().size(), 2u);
    const SuperBlock &entry = dk.superblocks()[0];
    const SuperBlock &chase = dk.superblocks()[1];
    EXPECT_EQ(entry.shape, SuperBlock::Shape::kGeneric);
    EXPECT_EQ(entry.liveIn, 0u); // vaddr/li/li read nothing
    EXPECT_EQ(entry.defs, (1u << 1) | (1u << 3) | (1u << 4));
    EXPECT_EQ(chase.shape, SuperBlock::Shape::kChaseLoop);
    // Cursor r3, rebase r1 and limit r4 are live-in; the link r2 is
    // written (by the line load) before the hash quad reads it.
    EXPECT_EQ(chase.liveIn, (1u << 1) | (1u << 3) | (1u << 4));
    EXPECT_EQ(chase.defs, (1u << 2) | (1u << 3));

    // Clobbering the loop limit breaks the invariance proof: the same
    // ops with the branch comparing against the hash result must stay
    // a generic superblock.
    KernelBuilder b2("chase_clobbered");
    auto loop2 = b2.newLabel();
    b2.vaddr(1).li(3, 0).li(4, 64);
    b2.bind(loop2);
    b2.addi(3, 3, 8).ldLine(2, 3, -8).andi(2, 2, 0x1FF).shli(2, 2, 6)
        .add(2, 2, 1).prefetch(2).bne(3, 2, loop2);
    b2.halt();
    const DecodedKernel dk2(b2.build());
    ASSERT_EQ(dk2.superblocks().size(), 2u);
    EXPECT_EQ(dk2.superblocks()[1].shape, SuperBlock::Shape::kGeneric);

    // Budget sweep with line data installed: the register-resident
    // loop must truncate exactly like the reference at every budget.
    const std::uint64_t line[8] = {0x11,  0x2222, 0x333,  0x44,
                                   0x555, 0x66,   0x7777, 0x88};
    EventContext ctx = plainCtx();
    ctx.hasLine = true;
    std::memcpy(ctx.line.data(), line, sizeof(line));
    const ExecResult full =
        Interpreter::run(k, ctx, nullptr, kMaxKernelSteps);
    ASSERT_EQ(full.exit, ExitReason::kHalted);
    for (unsigned steps = 1; steps <= full.cycles + 1; ++steps)
        expectParity(k, ctx, steps, "chase loop budget sweep");
    expectParity(b2.build(), ctx, kMaxKernelSteps, "clobbered limit");
}

// ---------------------------------------------------------------------
// DecodeCache: content-addressed sharing
// ---------------------------------------------------------------------

TEST(DecodeCacheTest, IdenticalCodeSharesOneProgram)
{
    KernelBuilder b1("first");
    b1.vaddr(1).addi(1, 1, 64).prefetch(1).halt();
    KernelBuilder b2("second_name_differs");
    b2.vaddr(1).addi(1, 1, 64).prefetch(1).halt();

    const auto before = DecodeCache::internedKernels();
    auto p1 = DecodeCache::decode(b1.build());
    auto p2 = DecodeCache::decode(b2.build());
    EXPECT_EQ(p1.get(), p2.get()); // names are not part of the identity
    EXPECT_EQ(DecodeCache::internedKernels(), before + 1);

    KernelBuilder b3("different_code");
    b3.vaddr(1).addi(1, 1, 128).prefetch(1).halt();
    auto p3 = DecodeCache::decode(b3.build());
    EXPECT_NE(p1.get(), p3.get());
    EXPECT_EQ(DecodeCache::internedKernels(), before + 2);
}

TEST(DecodeCacheTest, SuperblockFlagIsPartOfTheIdentity)
{
    // The same code decodes to different programs with formation on
    // and off: the flag must join the intern key or one mode would be
    // served the other's program.
    KernelBuilder b("sbid");
    b.vaddr(1).addi(1, 1, 64).prefetch(1).halt();
    auto on = DecodeCache::decode(b.build(), true);
    auto off = DecodeCache::decode(b.build(), false);
    EXPECT_NE(on.get(), off.get());
    EXPECT_TRUE(on->superblocksEnabled());
    EXPECT_FALSE(off->superblocksEnabled());
    EXPECT_EQ(DecodeCache::decode(b.build(), true).get(), on.get());
    EXPECT_EQ(DecodeCache::decode(b.build(), false).get(), off.get());
}

// ---------------------------------------------------------------------
// ProgrammablePrefetcher integration: invalidation contract
// ---------------------------------------------------------------------

/** A PPF over a small guest array (mirrors the ppf_test fixture). */
class PredecodePpfTest : public ::testing::Test
{
  protected:
    PredecodePpfTest()
    {
        data_.resize(1024);
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] = i;
        base_ = gmem_.addRegion("data", data_.data(), data_.size() * 8);
    }

    /** Register a li(addr)+prefetch kernel and a filter that runs it. */
    KernelId
    installConstKernel(ProgrammablePrefetcher &p, std::uint64_t addr)
    {
        KernelBuilder b("constpf");
        b.li(1, static_cast<std::int64_t>(addr)).prefetch(1).halt();
        KernelId k = p.kernels().add(b.build());
        FilterEntry fe;
        fe.name = "data";
        fe.base = base_;
        fe.limit = base_ + 4096;
        fe.onLoad = k;
        p.addFilter(fe);
        return k;
    }

    /** Trigger one event and return the emitted request addresses. */
    std::vector<Addr>
    fire(ProgrammablePrefetcher &p)
    {
        p.notifyDemand(base_, true, false, 0);
        eq_.run();
        std::vector<Addr> out;
        while (p.hasRequest())
            out.push_back(p.popRequest().vaddr);
        return out;
    }

    EventQueue eq_;
    GuestMemory gmem_;
    std::vector<std::uint64_t> data_;
    Addr base_ = 0;
};

TEST_F(PredecodePpfTest, MutableKernelInvalidatesDecodedProgram)
{
    ProgrammablePrefetcher ppf(eq_, gmem_, PpfConfig{});
    KernelId k = installConstKernel(ppf, 0x1000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x1000});

    // Patch the kernel in place (the relocation idiom the manual
    // workloads use): the decoded program must be rebuilt, not served
    // stale from the cache.
    ppf.kernels().mutableKernel(k).code[0].imm = 0x2000;
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x2000});
}

TEST_F(PredecodePpfTest, ContextSwitchPreservesDecodedPrograms)
{
    ProgrammablePrefetcher ppf(eq_, gmem_, PpfConfig{});
    installConstKernel(ppf, 0x3000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x3000});

    const auto hits = DecodeCache::hits();
    const auto misses = DecodeCache::misses();
    ppf.contextSwitch(); // configuration (and decode cache) survive
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x3000});
    // The preserved per-kernel slot served the event: the shared
    // intern table was not consulted at all.
    EXPECT_EQ(DecodeCache::hits(), hits);
    EXPECT_EQ(DecodeCache::misses(), misses);
}

TEST_F(PredecodePpfTest, ResetInvalidatesDecodedPrograms)
{
    ProgrammablePrefetcher ppf(eq_, gmem_, PpfConfig{});
    installConstKernel(ppf, 0x4000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x4000});

    const auto hits = DecodeCache::hits();
    ppf.reset(); // full reconfiguration: decoded programs dropped
    installConstKernel(ppf, 0x4000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x4000});
    // The re-registered kernel re-consulted the intern table (and
    // found the identical content already decoded).
    EXPECT_EQ(DecodeCache::hits(), hits + 1);
}

TEST_F(PredecodePpfTest, PerCoreInstancesShareDecodedPrograms)
{
    // Two PPF instances (as per-core PPFs in a multi-core machine)
    // registering identical kernels decode once, not twice.
    ProgrammablePrefetcher a(eq_, gmem_, PpfConfig{});
    ProgrammablePrefetcher b(eq_, gmem_, PpfConfig{});
    installConstKernel(a, 0x5000);
    installConstKernel(b, 0x5000);

    const auto misses = DecodeCache::misses();
    const auto hitsBefore = DecodeCache::hits();
    EXPECT_EQ(fire(a), std::vector<Addr>{0x5000});
    EXPECT_EQ(fire(b), std::vector<Addr>{0x5000});
    // At most one decode between them; the second instance hit.
    EXPECT_LE(DecodeCache::misses(), misses + 1);
    EXPECT_GE(DecodeCache::hits(), hitsBefore + 1);
}

TEST_F(PredecodePpfTest, ReferenceInterpreterPathStillWorks)
{
    PpfConfig cfg;
    cfg.predecode = false; // A/B oracle path
    ProgrammablePrefetcher ppf(eq_, gmem_, cfg);
    installConstKernel(ppf, 0x6000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x6000});
    EXPECT_EQ(ppf.stats().eventsRun, 1u);
}

} // namespace
} // namespace epf
