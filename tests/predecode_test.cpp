/**
 * @file
 * Tests for the pre-decoded PPU interpreter (src/isa/predecode.hpp):
 * decode-time fusion and trap hoisting, bit-identical semantics against
 * the reference interpreter at every exit path (including step-limit
 * truncation mid-fused-sequence), the content-addressed DecodeCache,
 * and the ProgrammablePrefetcher's cache-invalidation contract
 * (invalidated by reset()/kernel mutation, preserved across
 * contextSwitch(), shared across per-core instances).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "isa/builder.hpp"
#include "isa/interpreter.hpp"
#include "isa/predecode.hpp"
#include "mem/guest_memory.hpp"
#include "ppf/ppf.hpp"
#include "sim/event_queue.hpp"

namespace epf
{
namespace
{

EventContext
plainCtx()
{
    static std::uint64_t globals[kGlobalRegs] = {7, 11, 13};
    static std::uint64_t lookahead[4] = {4, 8, 16, 32};
    EventContext ctx;
    ctx.vaddr = 0x4321;
    ctx.globalRegs = globals;
    ctx.lookahead = lookahead;
    ctx.lookaheadEntries = 4;
    return ctx;
}

/** Execute both interpreters and require bit-identical observables. */
void
expectParity(const Kernel &k, const EventContext &ctx, unsigned max_steps,
             const char *what)
{
    std::vector<PrefetchEmit> refEmits, decEmits;
    std::uint64_t refRegs[kPpuRegs], decRegs[kPpuRegs];
    const ExecResult ref = Interpreter::run(
        k, ctx, [&](const PrefetchEmit &e) { refEmits.push_back(e); },
        max_steps, refRegs);
    const DecodedKernel dk(k);
    const ExecResult dec = DecodedKernel::run(
        dk, ctx, [&](const PrefetchEmit &e) { decEmits.push_back(e); },
        max_steps, decRegs);

    ASSERT_EQ(ref.exit, dec.exit) << what;
    ASSERT_EQ(ref.cycles, dec.cycles) << what;
    ASSERT_EQ(ref.emitted, dec.emitted) << what;
    ASSERT_EQ(refEmits.size(), decEmits.size()) << what;
    for (std::size_t i = 0; i < refEmits.size(); ++i) {
        EXPECT_EQ(refEmits[i].vaddr, decEmits[i].vaddr) << what;
        EXPECT_EQ(refEmits[i].tag, decEmits[i].tag) << what;
        EXPECT_EQ(refEmits[i].cbKernel, decEmits[i].cbKernel) << what;
    }
    EXPECT_EQ(0, std::memcmp(refRegs, decRegs, sizeof(refRegs))) << what;
}

// ---------------------------------------------------------------------
// Decode shape
// ---------------------------------------------------------------------

TEST(PredecodeTest, FusesDominantIdioms)
{
    // li+prefetch and addi+bne fuse as pairs; the chained hash idiom
    // andi+shli+add+prefetch fuses whole as a quad: 9 architectural
    // instructions decode to 4 slots.
    KernelBuilder b("fuse");
    auto loop = b.newLabel();
    b.li(1, 0x1000);       // fused pair with...
    b.prefetch(1);         // ...this prefetch
    b.bind(loop);
    b.andi(2, 1, 0xFF);    // the four-instruction hash idiom:
    b.shli(2, 2, 3);       // mask, shift,
    b.add(3, 2, 1);        // rebase,
    b.prefetch(3);         // emit -- fuses whole as a quad
    b.addi(4, 4, 1);       // fused pair with...
    b.bne(4, 5, loop);     // ...the loop branch
    b.halt();
    const Kernel k = b.build();
    const DecodedKernel dk(k);

    EXPECT_EQ(dk.archLength(), 9u);
    EXPECT_EQ(dk.fusedOps(), 3u);
    EXPECT_EQ(dk.decodedLength(), 4u);
    EXPECT_EQ(dk.at(0).op, DecodedOp::kLiPrefetch);
    EXPECT_EQ(dk.at(0).archCycles, 2u);
    EXPECT_EQ(dk.at(1).op, DecodedOp::kHashiPrefetch);
    EXPECT_EQ(dk.at(1).archCycles, 4u);
    EXPECT_EQ(dk.at(2).op, DecodedOp::kAddiBne);
    EXPECT_EQ(dk.at(2).target, 1u); // decoded index of the loop head
    EXPECT_EQ(dk.at(3).op, DecodedOp::kHalt);

    expectParity(k, plainCtx(), kMaxKernelSteps, "fused idioms");
    // Truncation at every point inside the quad stays exact.
    for (unsigned steps = 1; steps <= 10; ++steps)
        expectParity(k, plainCtx(), steps, "fused idioms truncation");
}

TEST(PredecodeTest, RegisterMaskHashFusesToo)
{
    // The randacc/hashjoin form masks with a register (gread'd mask):
    // and+shli+add+prefetchCb also quad-fuses.
    KernelBuilder b("hashr");
    b.vaddr(1).gread(3, 0).andr(2, 1, 3).shli(2, 2, 3).add(2, 2, 3)
        .prefetchCb(2, 7).halt();
    const Kernel k = b.build();
    const DecodedKernel dk(k);
    EXPECT_EQ(dk.fusedOps(), 1u);
    EXPECT_EQ(dk.at(2).op, DecodedOp::kHashrPrefetchCb);
    expectParity(k, plainCtx(), kMaxKernelSteps, "hashr quad");
    for (unsigned steps = 1; steps <= 7; ++steps)
        expectParity(k, plainCtx(), steps, "hashr quad truncation");
}

TEST(PredecodeTest, BranchTargetBlocksFusion)
{
    // The jmp lands on the shli, so the (chained) andi+shli must NOT
    // fuse: a taken branch has to be able to enter at the pair's
    // second half.
    KernelBuilder b("join");
    auto mid = b.newLabel();
    b.li(1, 0xF0).li(2, 2).jmp(mid);
    b.andi(3, 1, 0x0F); // skipped by the jmp
    b.bind(mid);
    b.shli(4, 3, 1); // chains on the andi, but is a join point
    b.prefetch(4).halt();
    const Kernel k = b.build();
    const DecodedKernel dk(k);

    EXPECT_EQ(dk.fusedOps(), 0u);
    EXPECT_EQ(dk.decodedLength(), dk.archLength());
    expectParity(k, plainCtx(), kMaxKernelSteps, "join blocks fusion");
}

TEST(PredecodeTest, UnchainedPairsDoNotFuse)
{
    // The prefetch reads r2, not the li's r1: no chain, no fusion (the
    // forwarding optimisation would be wrong).
    KernelBuilder b("nochain");
    b.li(1, 0x1000).prefetch(2).halt();
    const DecodedKernel dk(b.build());
    EXPECT_EQ(dk.fusedOps(), 0u);
    expectParity(b.build(), plainCtx(), kMaxKernelSteps, "unchained");
}

TEST(PredecodeTest, HoistsStaticTraps)
{
    // divi #0, out-of-range gread and a negative lookahead index are
    // provable at decode: they become kTrap instead of dynamic checks.
    {
        KernelBuilder b("d0");
        b.li(1, 9).divi(1, 1, 0).halt();
        const DecodedKernel dk(b.build());
        EXPECT_EQ(dk.at(1).op, DecodedOp::kTrap);
        expectParity(b.build(), plainCtx(), kMaxKernelSteps, "divi #0");
    }
    {
        KernelBuilder b("goob");
        b.gread(1, kGlobalRegs + 3).halt();
        const DecodedKernel dk(b.build());
        EXPECT_EQ(dk.at(0).op, DecodedOp::kTrap);
        expectParity(b.build(), plainCtx(), kMaxKernelSteps, "gread oob");
    }
    {
        Kernel k{"laneg", {Instr{Opcode::kLookahead, 1, 0, 0, -2},
                           Instr{Opcode::kHalt, 0, 0, 0, 0}}};
        const DecodedKernel dk(k);
        EXPECT_EQ(dk.at(0).op, DecodedOp::kTrap);
        expectParity(k, plainCtx(), kMaxKernelSteps, "lookahead neg");
    }
}

// ---------------------------------------------------------------------
// Semantics parity at every exit path
// ---------------------------------------------------------------------

TEST(PredecodeTest, LoopParity)
{
    KernelBuilder b("sum");
    auto loop = b.newLabel();
    b.li(1, 0).li(2, 1).li(3, 6);
    b.bind(loop).add(1, 1, 2).addi(2, 2, 1).blt(2, 3, loop);
    b.prefetch(1).halt();
    expectParity(b.build(), plainCtx(), kMaxKernelSteps, "sum loop");
}

TEST(PredecodeTest, StepLimitMidFusedPairTruncatesExactly)
{
    // max_steps = 1 stops a fused li+prefetch between its halves: the
    // li's register write lands, the prefetch must NOT be emitted, and
    // cycles stops at exactly 1 — in both interpreters.
    KernelBuilder b("t");
    b.li(1, 0xAB).prefetch(1).halt();
    const Kernel k = b.build();
    ASSERT_EQ(DecodedKernel(k).fusedOps(), 1u);
    expectParity(k, plainCtx(), 1, "step limit mid-pair");

    std::uint64_t regs[kPpuRegs];
    const ExecResult dec = DecodedKernel::run(
        DecodedKernel(k), plainCtx(), nullptr, 1, regs);
    EXPECT_EQ(dec.exit, ExitReason::kStepLimit);
    EXPECT_EQ(dec.cycles, 1u);
    EXPECT_EQ(dec.emitted, 0u);
    EXPECT_EQ(regs[1], 0xABu);

    // Every other budget around the pair boundary agrees too.
    for (unsigned steps = 2; steps <= 4; ++steps)
        expectParity(k, plainCtx(), steps, "step limit sweep");
}

TEST(PredecodeTest, TrapMidFusedPairKeepsFirstHalfEffects)
{
    // addi+ldLine fuses; without line data the ldLine half traps, but
    // the addi's register write must survive and 2 cycles are charged.
    KernelBuilder b("t");
    b.addi(1, 1, 0x40).ldLine(2, 1, 0).halt();
    const Kernel k = b.build();
    ASSERT_EQ(DecodedKernel(k).fusedOps(), 1u);

    EventContext ctx = plainCtx();
    ctx.hasLine = false;
    expectParity(k, ctx, kMaxKernelSteps, "trap mid-pair");

    std::uint64_t regs[kPpuRegs];
    const ExecResult dec =
        DecodedKernel::run(DecodedKernel(k), ctx, nullptr,
                           kMaxKernelSteps, regs);
    EXPECT_EQ(dec.exit, ExitReason::kTrapped);
    EXPECT_EQ(dec.cycles, 2u);
    EXPECT_EQ(regs[1], 0x40u);
}

TEST(PredecodeTest, BoundaryAndWildBranchParity)
{
    // Falling off the end traps without charging a cycle for the
    // missing fetch; a branch to an out-of-range target does the same.
    {
        KernelBuilder b("falloff");
        b.li(1, 1).addi(1, 1, 1); // no halt
        expectParity(b.build(), plainCtx(), kMaxKernelSteps, "fall off");
    }
    {
        Kernel k{"wild", {Instr{Opcode::kJmp, 0, 0, 0, 1000},
                          Instr{Opcode::kHalt, 0, 0, 0, 0}}};
        expectParity(k, plainCtx(), kMaxKernelSteps, "wild jmp");
    }
    {
        Kernel k{"neg", {Instr{Opcode::kJmp, 0, 0, 0, -55}}};
        expectParity(k, plainCtx(), kMaxKernelSteps, "negative jmp");
    }
}

TEST(PredecodeTest, DivOverflowParity)
{
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    {
        KernelBuilder b("div");
        b.li(1, min).li(2, -1).div(3, 1, 2).halt();
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "div INT64_MIN/-1");
    }
    {
        KernelBuilder b("divi");
        b.li(1, min).divi(3, 1, -1).halt();
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "divi INT64_MIN/-1");
    }
    {
        KernelBuilder b("ok");
        b.li(1, min + 1).divi(3, 1, -1).prefetch(3).halt();
        expectParity(b.build(), plainCtx(), kMaxKernelSteps,
                     "divi near-overflow");
    }
}

TEST(PredecodeTest, OutOfEnumOpcodeIsAChargedNop)
{
    // An opcode byte outside the enum (only constructible from raw
    // Instr structs) falls through the reference switch as a charged
    // no-op; the decoder must map it the same way, not trap.
    Kernel k{"weird", {Instr{static_cast<Opcode>(200), 1, 2, 3, 7},
                       Instr{Opcode::kLi, 1, 0, 0, 5},
                       Instr{Opcode::kHalt, 0, 0, 0, 0}}};
    const DecodedKernel dk(k);
    EXPECT_EQ(dk.at(0).op, DecodedOp::kNop);
    expectParity(k, plainCtx(), kMaxKernelSteps, "out-of-enum opcode");
}

TEST(PredecodeTest, EmptyKernelTrapsWithZeroCycles)
{
    const Kernel k{"empty", {}};
    expectParity(k, plainCtx(), kMaxKernelSteps, "empty kernel");
    const ExecResult dec =
        DecodedKernel::run(DecodedKernel(k), plainCtx(), nullptr);
    EXPECT_EQ(dec.exit, ExitReason::kTrapped);
    EXPECT_EQ(dec.cycles, 0u);
}

// ---------------------------------------------------------------------
// DecodeCache: content-addressed sharing
// ---------------------------------------------------------------------

TEST(DecodeCacheTest, IdenticalCodeSharesOneProgram)
{
    KernelBuilder b1("first");
    b1.vaddr(1).addi(1, 1, 64).prefetch(1).halt();
    KernelBuilder b2("second_name_differs");
    b2.vaddr(1).addi(1, 1, 64).prefetch(1).halt();

    const auto before = DecodeCache::internedKernels();
    auto p1 = DecodeCache::decode(b1.build());
    auto p2 = DecodeCache::decode(b2.build());
    EXPECT_EQ(p1.get(), p2.get()); // names are not part of the identity
    EXPECT_EQ(DecodeCache::internedKernels(), before + 1);

    KernelBuilder b3("different_code");
    b3.vaddr(1).addi(1, 1, 128).prefetch(1).halt();
    auto p3 = DecodeCache::decode(b3.build());
    EXPECT_NE(p1.get(), p3.get());
    EXPECT_EQ(DecodeCache::internedKernels(), before + 2);
}

// ---------------------------------------------------------------------
// ProgrammablePrefetcher integration: invalidation contract
// ---------------------------------------------------------------------

/** A PPF over a small guest array (mirrors the ppf_test fixture). */
class PredecodePpfTest : public ::testing::Test
{
  protected:
    PredecodePpfTest()
    {
        data_.resize(1024);
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] = i;
        base_ = gmem_.addRegion("data", data_.data(), data_.size() * 8);
    }

    /** Register a li(addr)+prefetch kernel and a filter that runs it. */
    KernelId
    installConstKernel(ProgrammablePrefetcher &p, std::uint64_t addr)
    {
        KernelBuilder b("constpf");
        b.li(1, static_cast<std::int64_t>(addr)).prefetch(1).halt();
        KernelId k = p.kernels().add(b.build());
        FilterEntry fe;
        fe.name = "data";
        fe.base = base_;
        fe.limit = base_ + 4096;
        fe.onLoad = k;
        p.addFilter(fe);
        return k;
    }

    /** Trigger one event and return the emitted request addresses. */
    std::vector<Addr>
    fire(ProgrammablePrefetcher &p)
    {
        p.notifyDemand(base_, true, false, 0);
        eq_.run();
        std::vector<Addr> out;
        while (p.hasRequest())
            out.push_back(p.popRequest().vaddr);
        return out;
    }

    EventQueue eq_;
    GuestMemory gmem_;
    std::vector<std::uint64_t> data_;
    Addr base_ = 0;
};

TEST_F(PredecodePpfTest, MutableKernelInvalidatesDecodedProgram)
{
    ProgrammablePrefetcher ppf(eq_, gmem_, PpfConfig{});
    KernelId k = installConstKernel(ppf, 0x1000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x1000});

    // Patch the kernel in place (the relocation idiom the manual
    // workloads use): the decoded program must be rebuilt, not served
    // stale from the cache.
    ppf.kernels().mutableKernel(k).code[0].imm = 0x2000;
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x2000});
}

TEST_F(PredecodePpfTest, ContextSwitchPreservesDecodedPrograms)
{
    ProgrammablePrefetcher ppf(eq_, gmem_, PpfConfig{});
    installConstKernel(ppf, 0x3000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x3000});

    const auto hits = DecodeCache::hits();
    const auto misses = DecodeCache::misses();
    ppf.contextSwitch(); // configuration (and decode cache) survive
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x3000});
    // The preserved per-kernel slot served the event: the shared
    // intern table was not consulted at all.
    EXPECT_EQ(DecodeCache::hits(), hits);
    EXPECT_EQ(DecodeCache::misses(), misses);
}

TEST_F(PredecodePpfTest, ResetInvalidatesDecodedPrograms)
{
    ProgrammablePrefetcher ppf(eq_, gmem_, PpfConfig{});
    installConstKernel(ppf, 0x4000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x4000});

    const auto hits = DecodeCache::hits();
    ppf.reset(); // full reconfiguration: decoded programs dropped
    installConstKernel(ppf, 0x4000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x4000});
    // The re-registered kernel re-consulted the intern table (and
    // found the identical content already decoded).
    EXPECT_EQ(DecodeCache::hits(), hits + 1);
}

TEST_F(PredecodePpfTest, PerCoreInstancesShareDecodedPrograms)
{
    // Two PPF instances (as per-core PPFs in a multi-core machine)
    // registering identical kernels decode once, not twice.
    ProgrammablePrefetcher a(eq_, gmem_, PpfConfig{});
    ProgrammablePrefetcher b(eq_, gmem_, PpfConfig{});
    installConstKernel(a, 0x5000);
    installConstKernel(b, 0x5000);

    const auto misses = DecodeCache::misses();
    const auto hitsBefore = DecodeCache::hits();
    EXPECT_EQ(fire(a), std::vector<Addr>{0x5000});
    EXPECT_EQ(fire(b), std::vector<Addr>{0x5000});
    // At most one decode between them; the second instance hit.
    EXPECT_LE(DecodeCache::misses(), misses + 1);
    EXPECT_GE(DecodeCache::hits(), hitsBefore + 1);
}

TEST_F(PredecodePpfTest, ReferenceInterpreterPathStillWorks)
{
    PpfConfig cfg;
    cfg.predecode = false; // A/B oracle path
    ProgrammablePrefetcher ppf(eq_, gmem_, cfg);
    installConstKernel(ppf, 0x6000);
    EXPECT_EQ(fire(ppf), std::vector<Addr>{0x6000});
    EXPECT_EQ(ppf.stats().eventsRun, 1u);
}

} // namespace
} // namespace epf
