/**
 * @file
 * Capture/replay equivalence matrix (tier 2).
 *
 * The acceptance bar of the trace subsystem: a trace captured from any
 * built-in workload, replayed through TraceWorkload, reproduces the
 * live run's full stats block byte-identically (hostSeconds excluded —
 * it is never serialized) for every technique at the default seed.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>

#include "runner/golden.hpp"
#include "workloads/workload.hpp"

namespace epf
{
namespace
{

class ReplayMatrix : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ReplayMatrix, ReplayMatchesLiveForEveryTechnique)
{
    const std::string workload = GetParam();
    for (Technique t : goldenTechniques()) {
        RunConfig cfg = goldenConfig(t);
        cfg.tracePath = ::testing::TempDir() + "replay_" + workload +
                        "_" + techniqueName(t) + ".epftrace";
        RunResult live = runExperiment(workload, cfg);
        if (!live.available) {
            // Unavailable cells produce no trace to replay (the run
            // returns before setup); nothing to compare.
            continue;
        }

        RunResult replay =
            runExperiment("trace:" + cfg.tracePath, goldenConfig(t));
        const std::string want = goldenStatsJson({workload, t}, live);
        const std::string got = goldenStatsJson({workload, t}, replay);
        EXPECT_EQ(want, got)
            << workload << " / " << techniqueName(t)
            << ": replay diverged from live at line "
            << firstDifferingLine(want, got);
        std::remove(cfg.tracePath.c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ReplayMatrix,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

} // namespace
} // namespace epf
