/**
 * @file
 * Unit tests for the memory hierarchy: guest memory regions, caches
 * (hits, LRU, MSHRs, writebacks, prefetch bookkeeping, tag adoption),
 * DRAM timing and TLB/page-table behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "mem/tlb.hpp"
#include "sim/event_queue.hpp"

namespace epf
{
namespace
{

// ---------------------------------------------------------------------
// GuestMemory
// ---------------------------------------------------------------------

TEST(GuestMemoryTest, RegionLookup)
{
    GuestMemory gm;
    std::vector<std::uint64_t> a(64, 7), b(64, 9);
    Addr pa = gm.addRegion("a", a.data(), a.size() * 8);
    Addr pb = gm.addRegion("b", b.data(), b.size() * 8);
    EXPECT_TRUE(gm.contains(pa));
    EXPECT_TRUE(gm.contains(pa + 511));
    EXPECT_FALSE(gm.contains(pa + 512));
    EXPECT_TRUE(gm.contains(pb, 8));
    EXPECT_EQ(gm.read64(pa), 7u);
    EXPECT_EQ(gm.read64(pb + 8), 9u);
}

TEST(GuestMemoryTest, ContainsRejectsStraddle)
{
    GuestMemory gm;
    std::vector<std::uint64_t> a(8, 1);
    Addr pa = gm.addRegion("a", a.data(), a.size() * 8);
    EXPECT_TRUE(gm.contains(pa + 56, 8));
    EXPECT_FALSE(gm.contains(pa + 60, 8));
}

TEST(GuestMemoryTest, ReadLineCopiesData)
{
    GuestMemory gm;
    alignas(64) std::uint64_t buf[16];
    for (int i = 0; i < 16; ++i)
        buf[i] = static_cast<std::uint64_t>(i) * 3;
    Addr base = gm.addRegion("buf", buf, sizeof(buf));

    LineData line;
    ASSERT_TRUE(gm.readLine(lineAlign(base + 8 * 8), line));
    std::uint64_t v;
    std::memcpy(&v, line.data(), 8);
    EXPECT_EQ(v, buf[8]);
}

TEST(GuestMemoryTest, UnmappedLineReadsFalse)
{
    GuestMemory gm;
    LineData line;
    EXPECT_FALSE(gm.readLine(0x100000, line));
}

TEST(GuestMemoryTest, BasesAreDeterministicAndHostIndependent)
{
    // Two registries with same-shaped regions behind different host
    // allocations must assign identical guest bases: simulated timing
    // depends on addresses, and addresses must not depend on the heap.
    std::vector<std::uint64_t> a1(100), b1(7000);
    std::vector<std::uint64_t> a2(100), b2(7000);
    GuestMemory g1, g2;
    Addr a1_base = g1.addRegion("a", a1.data(), a1.size() * 8);
    Addr b1_base = g1.addRegion("b", b1.data(), b1.size() * 8);
    Addr a2_base = g2.addRegion("a", a2.data(), a2.size() * 8);
    Addr b2_base = g2.addRegion("b", b2.data(), b2.size() * 8);
    EXPECT_EQ(a1_base, a2_base);
    EXPECT_EQ(b1_base, b2_base);
    EXPECT_EQ(a1_base, GuestMemory::kGuestBase);
    // Page-aligned, with at least a guard page between regions.
    EXPECT_EQ(b1_base % kPageBytes, 0u);
    EXPECT_GE(b1_base, a1_base + a1.size() * 8 + kPageBytes);
    EXPECT_FALSE(g1.contains(a1_base + a1.size() * 8));
}

TEST(GuestMemoryTest, GuestAddrTranslatesInteriorPointers)
{
    std::vector<std::uint64_t> a(64), b(64);
    GuestMemory gm;
    Addr a_base = gm.addRegion("a", a.data(), a.size() * 8);
    Addr b_base = gm.addRegion("b", b.data(), b.size() * 8);
    EXPECT_EQ(gm.guestAddr(a.data()), a_base);
    EXPECT_EQ(gm.guestAddr(&a[17]), a_base + 17 * 8);
    EXPECT_EQ(gm.guestAddr(&b[3]), b_base + 3 * 8);
    // A pointer outside every region is a workload bug: loud failure.
    int unregistered = 0;
    EXPECT_THROW((void)gm.guestAddr(&unregistered), std::logic_error);
}

TEST(GuestMemoryTest, ClearResetsTheAllocator)
{
    std::vector<std::uint64_t> a(64);
    GuestMemory gm;
    Addr first = gm.addRegion("a", a.data(), a.size() * 8);
    gm.clear();
    EXPECT_EQ(gm.addRegion("a", a.data(), a.size() * 8), first);
}

// ---------------------------------------------------------------------
// Cache (with a scripted parent level)
// ---------------------------------------------------------------------

/** A parent that answers reads after a fixed delay and logs traffic. */
class FakeParent : public MemLevel
{
  public:
    explicit FakeParent(EventQueue &eq, Tick delay = 100)
        : eq_(eq), delay_(delay)
    {
    }

    void
    readLine(const LineRequest &req, DoneFn done) override
    {
        ++reads;
        lastRead = req;
        eq_.scheduleIn(delay_, std::move(done));
    }

    void
    writeLine(const LineRequest &req) override
    {
        ++writes;
        lastWrite = req;
    }

    unsigned reads = 0;
    unsigned writes = 0;
    LineRequest lastRead;
    LineRequest lastWrite;

  private:
    EventQueue &eq_;
    Tick delay_;
};

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "t";
    p.sizeBytes = 1024; // 8 sets x 2 ways x 64 B
    p.ways = 2;
    p.accessLatency = 10;
    p.mshrs = 2;
    return p;
}

TEST(CacheTest, MissThenHit)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);

    bool done1 = false;
    EXPECT_EQ(c.demandAccess(true, 0x1000, 0x1000, [&] { done1 = true; }),
              Cache::DemandResult::Miss);
    eq.run();
    EXPECT_TRUE(done1);
    EXPECT_EQ(parent.reads, 1u);

    bool done2 = false;
    EXPECT_EQ(c.demandAccess(true, 0x1008, 0x1008, [&] { done2 = true; }),
              Cache::DemandResult::Hit);
    eq.run();
    EXPECT_TRUE(done2);
    EXPECT_EQ(parent.reads, 1u); // no second fetch
    EXPECT_EQ(c.stats().loads, 2u);
    EXPECT_EQ(c.stats().loadHits, 1u);
}

TEST(CacheTest, HitLatencyIsAccessLatency)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);
    c.demandAccess(true, 0x1000, 0x1000, [] {});
    eq.run();
    Tick t0 = eq.now();
    Tick t_done = 0;
    c.demandAccess(true, 0x1000, 0x1000, [&] { t_done = eq.now(); });
    eq.run();
    EXPECT_EQ(t_done - t0, 10u);
}

TEST(CacheTest, MergesConcurrentMisses)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);

    int done = 0;
    EXPECT_EQ(c.demandAccess(true, 0x2000, 0x2000, [&] { ++done; }),
              Cache::DemandResult::Miss);
    EXPECT_EQ(c.demandAccess(true, 0x2010, 0x2010, [&] { ++done; }),
              Cache::DemandResult::Merged);
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(parent.reads, 1u);
    EXPECT_EQ(c.stats().demandMerges, 1u);
}

TEST(CacheTest, RejectsWhenMshrsExhausted)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent); // 2 MSHRs

    EXPECT_EQ(c.demandAccess(true, 0x0000, 0x0000, [] {}),
              Cache::DemandResult::Miss);
    EXPECT_EQ(c.demandAccess(true, 0x4000, 0x4000, [] {}),
              Cache::DemandResult::Miss);
    EXPECT_FALSE(c.hasFreeMshr());
    EXPECT_EQ(c.demandAccess(true, 0x8000, 0x8000, [] {}),
              Cache::DemandResult::NoMshr);
    eq.run();
    EXPECT_TRUE(c.hasFreeMshr());
    EXPECT_EQ(c.stats().mshrRejects, 1u);
}

TEST(CacheTest, LruEviction)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent); // 8 sets, 2 ways

    // Three lines mapping to set 0 (stride = sets * 64 = 512).
    c.demandAccess(true, 0x0000, 0x0000, [] {});
    eq.run();
    c.demandAccess(true, 0x0200, 0x0200, [] {});
    eq.run();
    // Touch 0x0000 so 0x0200 is LRU.
    c.demandAccess(true, 0x0000, 0x0000, [] {});
    eq.run();
    c.demandAccess(true, 0x0400, 0x0400, [] {});
    eq.run();

    EXPECT_TRUE(c.hasLine(0x0000));
    EXPECT_FALSE(c.hasLine(0x0200)); // evicted
    EXPECT_TRUE(c.hasLine(0x0400));
}

TEST(CacheTest, DirtyEvictionWritesBack)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);

    c.demandAccess(false, 0x0000, 0x0000, [] {}); // store -> dirty
    eq.run();
    c.demandAccess(true, 0x0200, 0x0200, [] {});
    eq.run();
    c.demandAccess(true, 0x0400, 0x0400, [] {}); // evicts dirty 0x0000
    eq.run();
    EXPECT_EQ(parent.writes, 1u);
    EXPECT_EQ(parent.lastWrite.paddr, 0x0000u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheTest, PrefetchFillAndUseTracking)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);

    LineRequest req;
    req.paddr = 0x3000;
    req.vaddr = 0x3000;
    req.isPrefetch = true;
    EXPECT_EQ(c.prefetchAccess(req), Cache::PrefetchResult::Issued);
    eq.run();
    EXPECT_EQ(c.stats().prefetchFills, 1u);
    EXPECT_EQ(c.stats().pfUsed, 0u);

    // Demand hit marks it used exactly once.
    c.demandAccess(true, 0x3000, 0x3000, [] {});
    c.demandAccess(true, 0x3008, 0x3008, [] {});
    eq.run();
    EXPECT_EQ(c.stats().pfUsed, 1u);
}

TEST(CacheTest, UnusedPrefetchCountedOnEviction)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);

    LineRequest req;
    req.paddr = 0x0000;
    req.isPrefetch = true;
    c.prefetchAccess(req);
    eq.run();
    // Evict it with two demand lines in the same set.
    c.demandAccess(true, 0x0200, 0x0200, [] {});
    eq.run();
    c.demandAccess(true, 0x0400, 0x0400, [] {});
    eq.run();
    EXPECT_EQ(c.stats().pfUnusedEvicted, 1u);
}

TEST(CacheTest, PrefetchToPresentLineDropped)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);
    c.demandAccess(true, 0x5000, 0x5000, [] {});
    eq.run();
    LineRequest req;
    req.paddr = 0x5000;
    req.isPrefetch = true;
    EXPECT_EQ(c.prefetchAccess(req), Cache::PrefetchResult::Present);
    EXPECT_EQ(parent.reads, 1u);
}

TEST(CacheTest, DemandMergingIntoPrefetchCountsLate)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);

    LineRequest req;
    req.paddr = 0x6000;
    req.isPrefetch = true;
    c.prefetchAccess(req);
    bool done = false;
    EXPECT_EQ(c.demandAccess(true, 0x6000, 0x6000, [&] { done = true; }),
              Cache::DemandResult::Merged);
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(c.stats().pfUsedLate, 1u);
    EXPECT_EQ(c.stats().pfUsed, 1u);
}

TEST(CacheTest, MergedPrefetchAdoptsTagOntoMshr)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);

    class Listener : public MemoryListener
    {
      public:
        void
        notifyPrefetchFill(const LineRequest &req) override
        {
            fills.push_back(req);
        }
        std::vector<LineRequest> fills;
    } listener;
    c.setListener(&listener);

    // Demand miss in flight...
    c.demandAccess(true, 0x7000, 0x7000, [] {});
    // ...then a tagged prefetch to the same line merges and the MSHR
    // adopts the tag, so the fill still triggers the event.
    LineRequest req;
    req.paddr = 0x7000;
    req.vaddr = 0x7000;
    req.isPrefetch = true;
    req.tag = 5;
    EXPECT_EQ(c.prefetchAccess(req), Cache::PrefetchResult::Issued);
    eq.run();
    ASSERT_EQ(listener.fills.size(), 1u);
    EXPECT_EQ(listener.fills[0].tag, 5);
}

TEST(CacheTest, LowerLevelInterfaceQueuesOnMshrPressure)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent); // 2 MSHRs

    int done = 0;
    LineRequest r1{0x0000, 0x0000};
    LineRequest r2{0x4000, 0x4000};
    LineRequest r3{0x8000, 0x8000};
    c.readLine(r1, [&] { ++done; });
    c.readLine(r2, [&] { ++done; });
    c.readLine(r3, [&] { ++done; }); // overflows, must not be lost
    eq.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(parent.reads, 3u);
}

TEST(CacheTest, FullLineWritebackAllocatesWithoutFetch)
{
    EventQueue eq;
    FakeParent parent(eq);
    Cache c(eq, smallCache(), parent);
    LineRequest wb{0x9000, 0x9000};
    c.writeLine(wb);
    EXPECT_TRUE(c.hasLine(0x9000));
    EXPECT_EQ(parent.reads, 0u);
}

// ---------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------

TEST(DramTest, ColdReadLatency)
{
    EventQueue eq;
    DramParams p;
    Dram d(eq, p);
    Tick done_at = 0;
    LineRequest r{0x0, 0x0};
    d.readLine(r, [&] { done_at = eq.now(); });
    eq.run();
    // frontend + tRCD + tCL + burst on an idle closed bank.
    EXPECT_EQ(done_at, p.frontendDelay + p.trcd + p.tcl + p.tburst);
    EXPECT_EQ(d.stats().rowMisses, 1u);
}

TEST(DramTest, RowHitIsFaster)
{
    EventQueue eq;
    DramParams p;
    Dram d(eq, p);
    Tick first = 0, second = 0;
    LineRequest a{0x0, 0x0};
    LineRequest b{0x40 * 8, 0x40 * 8}; // same bank (stride 8 lines), same row
    d.readLine(a, [&] { first = eq.now(); });
    eq.run();
    Tick t0 = eq.now();
    d.readLine(b, [&] { second = eq.now(); });
    eq.run();
    EXPECT_EQ(d.stats().rowHits, 1u);
    EXPECT_LT(second - t0, first);
}

TEST(DramTest, BanksOverlap)
{
    EventQueue eq;
    DramParams p;
    Dram d(eq, p);
    // Two different banks: almost fully overlapped.
    Tick done_a = 0, done_b = 0;
    LineRequest a{0x000, 0x000}; // bank 0
    LineRequest b{0x040, 0x040}; // bank 1
    d.readLine(a, [&] { done_a = eq.now(); });
    d.readLine(b, [&] { done_b = eq.now(); });
    eq.run();
    Tick serial = 2 * (p.frontendDelay + p.trcd + p.tcl + p.tburst);
    EXPECT_LT(std::max(done_a, done_b), serial);
}

TEST(DramTest, SameBankSerialises)
{
    EventQueue eq;
    DramParams p;
    Dram d(eq, p);
    // Same bank, different rows: precharge + activate between them.
    Tick done_b = 0;
    LineRequest a{0x00000, 0x00000};
    LineRequest b{0x20000, 0x20000}; // same bank 0, different row
    d.readLine(a, [] {});
    d.readLine(b, [&] { done_b = eq.now(); });
    eq.run();
    EXPECT_EQ(d.stats().rowMisses, 2u);
    EXPECT_GT(done_b, p.frontendDelay + p.trcd + p.tcl + p.tburst);
}

TEST(DramTest, WritesCountButDontCallBack)
{
    EventQueue eq;
    Dram d(eq, DramParams{});
    LineRequest w{0x100, 0x100};
    d.writeLine(w);
    eq.run();
    EXPECT_EQ(d.stats().writes, 1u);
    EXPECT_EQ(d.stats().reads, 0u);
}

// ---------------------------------------------------------------------
// Page table and TLB
// ---------------------------------------------------------------------

TEST(PageTableTest, StableAndDistinct)
{
    GuestMemory gm;
    std::vector<std::uint64_t> buf(4096 * 4, 0); // 16 pages worth
    Addr base = gm.addRegion("buf", buf.data(), buf.size() * 8);
    PageTable pt(gm);
    Addr p1 = pt.translate(base);
    Addr p1_again = pt.translate(base + 8);
    EXPECT_EQ(p1 >> kPageShift, p1_again >> kPageShift);
    EXPECT_EQ(p1 & (kPageBytes - 1), base & (kPageBytes - 1));

    Addr p2 = pt.translate(base + kPageBytes);
    EXPECT_NE(p1 >> kPageShift, p2 >> kPageShift);
}

TEST(TlbTest, HitAfterWalkAndFlush)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(1024, 0);
    Addr va = gm.addRegion("buf", buf.data(), buf.size() * 8);
    PageTable pt(gm);
    FakeParent walk_mem(eq, 50);
    Tlb tlb(eq, TlbParams{}, pt, walk_mem);
    Addr got = 0;
    tlb.translate(va, [&](Addr pa, bool fault) {
        EXPECT_FALSE(fault);
        got = pa;
    });
    eq.run();
    EXPECT_NE(got, 0u);
    EXPECT_EQ(tlb.stats().walks, 1u);
    EXPECT_GT(walk_mem.reads, 0u);

    // Second translation hits the L1 TLB synchronously.
    Addr got2 = 0;
    tlb.translate(va + 8, [&](Addr pa, bool) { got2 = pa; });
    EXPECT_EQ(got2, got + 8);
    EXPECT_EQ(tlb.stats().l1Hits, 1u);

    tlb.flush();
    tlb.translate(va, [](Addr, bool) {});
    eq.run();
    EXPECT_EQ(tlb.stats().walks, 2u);
}

TEST(TlbTest, FaultReportedForUnmapped)
{
    EventQueue eq;
    GuestMemory gm; // nothing mapped
    PageTable pt(gm);
    FakeParent walk_mem(eq, 50);
    Tlb tlb(eq, TlbParams{}, pt, walk_mem);

    bool faulted = false;
    tlb.translate(0xdead000, [&](Addr, bool fault) { faulted = fault; });
    eq.run();
    EXPECT_TRUE(faulted);
    EXPECT_EQ(tlb.stats().faults, 1u);
}

TEST(TlbTest, ConcurrentWalksAreBounded)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(4096 * 8, 0);
    Addr base = gm.addRegion("buf", buf.data(), buf.size() * 8);
    PageTable pt(gm);
    FakeParent walk_mem(eq, 500);
    TlbParams tp;
    tp.maxWalks = 2;
    Tlb tlb(eq, tp, pt, walk_mem);
    int done = 0;
    for (unsigned i = 0; i < 6; ++i) {
        tlb.translate(base + i * kPageBytes,
                      [&](Addr, bool fault) {
                          EXPECT_FALSE(fault);
                          ++done;
                      });
    }
    eq.run();
    EXPECT_EQ(done, 6);
    EXPECT_EQ(tlb.stats().walks, 6u);
}

// ---------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------

TEST(HierarchyTest, LoadRoundTripAndStats)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(1024, 5);
    Addr va = gm.addRegion("buf", buf.data(), buf.size() * 8);
    MemoryHierarchy mem(eq, gm, MemParams::defaults());

    int done = 0;
    mem.load(va, 0, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(mem.stats().coreLoads, 1u);
    EXPECT_EQ(mem.l1().stats().loads, 1u);
    EXPECT_GE(mem.dram().stats().reads, 1u);

    // Second load to the same line: L1 hit, no extra DRAM reads.
    auto dram_before = mem.dram().stats().reads;
    mem.load(va + 8, 0, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(mem.dram().stats().reads, dram_before);
}

TEST(HierarchyTest, StoreRetriesCountedSeparatelyFromLoadRetries)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(4096, 5);
    Addr va = gm.addRegion("buf", buf.data(), buf.size() * 8);
    MemParams p = MemParams::defaults();
    p.l1.mshrs = 1; // one in-flight miss; everything else must retry
    MemoryHierarchy mem(eq, gm, p);

    // Baseline sanity: a lone load completes without any retries.
    int warm = 0;
    mem.load(va, 0, [&] { ++warm; });
    eq.run();
    ASSERT_EQ(warm, 1);
    ASSERT_EQ(mem.stats().loadRetries, 0u);

    // Two stores to distinct uncached lines in the same page (their
    // translations share one walk, so both reach the L1 together): the
    // first takes the only MSHR, the second must retry until it fills.
    int done = 0;
    mem.store(va + 64 * 100, 0, [&] { ++done; });
    mem.store(va + 64 * 110, 0, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_GT(mem.stats().storeRetries, 0u);
    EXPECT_EQ(mem.stats().loadRetries, 0u);

    // And the mirror image: loads retrying must not count as stores.
    mem.resetStats();
    mem.load(va + 64 * 200, 0, [&] { ++done; });
    mem.load(va + 64 * 210, 0, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 4);
    EXPECT_GT(mem.stats().loadRetries, 0u);
    EXPECT_EQ(mem.stats().storeRetries, 0u);
}

TEST(HierarchyTest, PrefetchSourceDrainedAndFaultsDropped)
{
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(1024, 5);
    Addr va = gm.addRegion("buf", buf.data(), buf.size() * 8);
    MemoryHierarchy mem(eq, gm, MemParams::defaults());

    class Src : public PrefetchSource
    {
      public:
        std::vector<LineRequest> reqs;
        bool hasRequest() const override { return !reqs.empty(); }
        LineRequest
        popRequest() override
        {
            LineRequest r = reqs.back();
            reqs.pop_back();
            return r;
        }
    } src;

    LineRequest ok;
    ok.vaddr = va;
    ok.isPrefetch = true;
    LineRequest bad;
    bad.vaddr = 0xdead0000;
    bad.isPrefetch = true;
    src.reqs = {ok, bad};

    mem.setPrefetchSource(&src);
    mem.kickPrefetcher();
    eq.run();
    EXPECT_EQ(mem.stats().pfIssued, 1u);
    EXPECT_EQ(mem.stats().pfDropFault, 1u);
    EXPECT_EQ(mem.l1().stats().prefetchFills, 1u);
}

/**
 * A deep burst of prefetch candidates to distinct lines: far more than
 * the MSHR file holds, so the issue path stays saturated for the whole
 * run (but finite, so the event queue eventually drains).
 */
class SaturatingSource : public PrefetchSource
{
  public:
    SaturatingSource(Addr base, std::uint64_t lines, std::uint64_t limit)
        : base_(base), lines_(lines), limit_(limit)
    {
    }

    bool hasRequest() const override { return popped_ < limit_; }
    LineRequest
    popRequest() override
    {
        LineRequest r;
        r.vaddr = base_ + (next_++ % lines_) * 64;
        r.isPrefetch = true;
        ++popped_;
        return r;
    }

    std::uint64_t popped() const { return popped_; }

  private:
    Addr base_;
    std::uint64_t lines_;
    std::uint64_t limit_;
    std::uint64_t next_ = 0;
    std::uint64_t popped_ = 0;
};

TEST(HierarchyTest, PrefetchIssueNeverTakesReservedDemandMshrs)
{
    // The demandReservedMshrs contract under strictPfReservation: with
    // R MSHRs reserved, a prefetch may only take an MSHR while free >
    // R — including requests whose translations were in flight when
    // the file filled (the legacy pipeline lands those anyway, a
    // transient dip bounded by the translation window; see MemParams).
    EventQueue eq;
    GuestMemory gm;
    std::vector<std::uint64_t> buf(1 << 16, 5); // 512 KB
    Addr va = gm.addRegion("buf", buf.data(), buf.size() * 8);
    MemParams p = MemParams::defaults();
    p.demandReservedMshrs = 2;
    p.strictPfReservation = true;
    MemoryHierarchy mem(eq, gm, p);

    SaturatingSource src(va, 4096, 2000);
    mem.setPrefetchSource(&src);

    // Interleave demand loads with the saturating source and step the
    // queue one event at a time, checking the contract continuously.
    // Every issued prefetch allocates an L1 MSHR that is released by
    // its fill, so pfIssued - prefetchFills is the number of MSHRs
    // prefetches hold right now: it must never exceed the MSHRs not
    // reserved for demand (issue requires free > reserved).
    std::uint64_t completed = 0;
    for (int i = 0; i < 32; ++i)
        mem.load(va + static_cast<Addr>(i) * 8192, 0,
                 [&completed] { ++completed; });
    mem.kickPrefetcher();

    const std::uint64_t pf_cap = p.l1.mshrs - p.demandReservedMshrs;
    std::uint64_t max_inflight_pf = 0;
    std::uint64_t steps = 0;
    while (!eq.empty()) {
        eq.runOne();
        ++steps;
        const std::uint64_t inflight_pf =
            mem.stats().pfIssued - mem.l1().stats().prefetchFills;
        ASSERT_LE(inflight_pf, pf_cap) << "at step " << steps;
        max_inflight_pf = std::max(max_inflight_pf, inflight_pf);
    }
    EXPECT_EQ(completed, 32u);
    EXPECT_GT(mem.stats().pfIssued, 0u);
    // The saturating source really did drive the queue to the cap —
    // otherwise the bound above proves nothing.
    EXPECT_EQ(max_inflight_pf, pf_cap);

    // And the degenerate configuration: reserving every MSHR starves
    // the prefetcher completely while demands still complete.
    EventQueue eq2;
    GuestMemory gm2;
    std::vector<std::uint64_t> buf2(1 << 16, 5);
    Addr va2 = gm2.addRegion("buf", buf2.data(), buf2.size() * 8);
    MemParams p2 = MemParams::defaults();
    p2.demandReservedMshrs = p2.l1.mshrs;
    MemoryHierarchy mem2(eq2, gm2, p2);

    SaturatingSource src2(va2, 4096, 2000);
    mem2.setPrefetchSource(&src2);
    std::uint64_t done2 = 0;
    for (int i = 0; i < 8; ++i)
        mem2.load(va2 + static_cast<Addr>(i) * 8192, 0,
                  [&done2] { ++done2; });
    mem2.kickPrefetcher();
    eq2.run();
    EXPECT_EQ(done2, 8u);
    EXPECT_EQ(mem2.stats().pfIssued, 0u);
    EXPECT_EQ(src2.popped(), 0u);
    EXPECT_EQ(mem2.l1().stats().prefetchFills, 0u);
}

} // namespace
} // namespace epf
