/**
 * @file
 * Workload tests: generator properties, functional correctness against
 * plain reference implementations, trace validity (every access lands in
 * a registered region) and IR well-formedness.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/passes.hpp"
#include "mem/guest_memory.hpp"
#include "sim/rng.hpp"
#include "workloads/graph_gen.hpp"
#include "workloads/intsort.hpp"
#include "workloads/randacc.hpp"
#include "workloads/workload.hpp"

namespace epf
{
namespace
{

TEST(GraphGenTest, RmatSizesAndRange)
{
    Rng rng(1);
    EdgeList e = rmatEdges(10, 8, rng);
    EXPECT_EQ(e.size(), (1u << 10) * 8u);
    for (const auto &[u, v] : e) {
        EXPECT_LT(u, 1u << 10);
        EXPECT_LT(v, 1u << 10);
    }
}

TEST(GraphGenTest, RmatIsDeterministic)
{
    Rng a(7), b(7);
    EXPECT_EQ(rmatEdges(8, 4, a), rmatEdges(8, 4, b));
}

TEST(GraphGenTest, CsrEdgeCountsMatch)
{
    Rng rng(3);
    EdgeList e = rmatEdges(8, 4, rng);
    std::uint64_t non_self = 0;
    for (const auto &[u, v] : e)
        non_self += (u != v) ? 1 : 0;

    Csr g = buildCsr(1 << 8, e, /*symmetrise=*/false);
    EXPECT_EQ(g.rowStart.back(), non_self);
    EXPECT_EQ(g.dest.size(), non_self);

    Csr gs = buildCsr(1 << 8, e, /*symmetrise=*/true);
    EXPECT_EQ(gs.dest.size(), 2 * non_self);
}

TEST(GraphGenTest, CsrRowsMonotone)
{
    Rng rng(5);
    EdgeList e = rmatEdges(9, 4, rng);
    Csr g = buildCsr(1 << 9, e, true);
    for (std::size_t i = 0; i + 1 < g.rowStart.size(); ++i)
        EXPECT_LE(g.rowStart[i], g.rowStart[i + 1]);
    for (std::uint64_t d : g.dest)
        EXPECT_LT(d, 1u << 9);
}

TEST(GraphGenTest, PowerLawHasHubs)
{
    Rng rng(11);
    EdgeList e = powerLawEdges(1000, 20000, rng);
    std::vector<unsigned> indeg(1000, 0);
    for (const auto &[u, v] : e) {
        EXPECT_LT(u, 1000u);
        EXPECT_LT(v, 1000u);
        ++indeg[v];
    }
    unsigned max_deg = 0;
    for (unsigned d : indeg)
        max_deg = std::max(max_deg, d);
    // Strong skew: the hottest page receives far more than the mean (20).
    EXPECT_GT(max_deg, 200u);
}

TEST(RegistryTest, AllEightWorkloadsConstruct)
{
    auto names = workloadNames();
    ASSERT_EQ(names.size(), 8u);
    for (const auto &n : names) {
        auto wl = makeWorkload(n);
        ASSERT_NE(wl, nullptr) << n;
        EXPECT_EQ(wl->name(), n);
    }
    EXPECT_EQ(makeWorkload("NotABenchmark"), nullptr);
}

TEST(RandAccTest, MatchesReference)
{
    WorkloadScale sc;
    sc.factor = 0.01;
    RandAccWorkload wl(sc);
    GuestMemory gm;
    wl.setup(gm, 99);
    auto tr = wl.trace(false);
    while (tr.next()) {
    }
    // The functional reference with identical parameters.
    std::uint64_t updates = (static_cast<std::uint64_t>(
                                 (1 << 20) * 0.01) / 128) * 128;
    EXPECT_EQ(wl.checksum(),
              RandAccWorkload::reference(1ull << 22, updates, 99));
}

TEST(IntSortTest, MatchesReference)
{
    WorkloadScale sc;
    sc.factor = 0.02;
    IntSortWorkload wl(sc);
    GuestMemory gm;
    wl.setup(gm, 7);
    auto tr = wl.trace(false);
    while (tr.next()) {
    }
    std::uint64_t keys =
        static_cast<std::uint64_t>((1ull << 21) * 0.02);
    EXPECT_EQ(wl.checksum(),
              IntSortWorkload::reference(keys, 1ull << 19, 2, 7));
}

/** Every workload's trace must only touch registered guest memory. */
class TraceValidityParam : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceValidityParam, AllAccessesMapped)
{
    WorkloadScale sc;
    sc.factor = 0.02;
    auto wl = makeWorkload(GetParam(), sc);
    GuestMemory gm;
    wl->setup(gm, 42);

    auto tr = wl->trace(false);
    std::uint64_t ops = 0;
    std::set<ValueId> produced;
    while (tr.next()) {
        const MicroOp &op = tr.value();
        ++ops;
        switch (op.kind) {
          case MicroOp::Kind::Load:
          case MicroOp::Kind::Store:
            EXPECT_TRUE(gm.contains(op.vaddr))
                << GetParam() << " op " << ops << " addr " << std::hex
                << op.vaddr;
            break;
          default:
            break;
        }
        // Dependences must reference values produced earlier.
        if (op.produces != 0)
            produced.insert(op.produces);
        for (ValueId d : op.deps) {
            if (d != 0) {
                EXPECT_TRUE(produced.count(d)) << GetParam();
            }
        }
        if (ops > 2'000'000)
            break; // plenty for validity checking
    }
    EXPECT_GT(ops, 1000u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TraceValidityParam,
                         ::testing::Values("G500-CSR", "G500-List", "HJ-2",
                                           "HJ-8", "PageRank", "RandAcc",
                                           "IntSort", "ConjGrad"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

/** The software-prefetch variant must add instructions, never change
 *  functional results. */
class SwpfVariantParam : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SwpfVariantParam, SwpfVariantConsistent)
{
    WorkloadScale sc;
    sc.factor = 0.02;
    auto wl = makeWorkload(GetParam(), sc);
    if (!wl->supportsSoftware())
        GTEST_SKIP() << "no software prefetch for " << GetParam();

    GuestMemory gm;
    wl->setup(gm, 42);
    std::uint64_t plain_ops = 0, swpf_ops = 0, swpf_count = 0;
    {
        auto tr = wl->trace(false);
        while (tr.next())
            ++plain_ops;
    }
    auto wl2 = makeWorkload(GetParam(), sc);
    GuestMemory gm2;
    wl2->setup(gm2, 42);
    {
        auto tr = wl2->trace(true);
        while (tr.next()) {
            ++swpf_ops;
            if (tr.value().kind == MicroOp::Kind::SwPrefetch)
                ++swpf_count;
        }
    }
    EXPECT_GT(swpf_count, 0u);
    EXPECT_GT(swpf_ops, plain_ops);
    EXPECT_EQ(wl->checksum(), wl2->checksum());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SwpfVariantParam,
                         ::testing::Values("G500-CSR", "G500-List", "HJ-2",
                                           "HJ-8", "RandAcc", "IntSort",
                                           "ConjGrad"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

/** Manual programming must fit the PPU instruction cache and configure
 *  at least one load-triggered filter. */
class ManualProgramParam : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ManualProgramParam, ManualKernelsWellFormed)
{
    WorkloadScale sc;
    sc.factor = 0.02;
    auto wl = makeWorkload(GetParam(), sc);
    GuestMemory gm;
    wl->setup(gm, 42);

    EventQueue eq;
    PpfConfig cfg;
    ProgrammablePrefetcher ppf(eq, gm, cfg);
    wl->programManual(ppf);

    EXPECT_GT(ppf.kernels().size(), 0u);
    EXPECT_LE(ppf.kernels().totalBytes(), 4096u);
    bool has_load_trigger = false;
    for (std::size_t i = 0; i < ppf.filters().size(); ++i)
        has_load_trigger |= ppf.filters()[static_cast<int>(i)].onLoad !=
                            kNoKernel;
    EXPECT_TRUE(has_load_trigger);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ManualProgramParam,
                         ::testing::Values("G500-CSR", "G500-List", "HJ-2",
                                           "HJ-8", "PageRank", "RandAcc",
                                           "IntSort", "ConjGrad"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

/** Compiler-pass expectations per benchmark, as reported in the paper. */
TEST(PaperBehaviourTest, ConversionAvailabilityMatchesPaper)
{
    WorkloadScale sc;
    sc.factor = 0.02;

    struct Expect
    {
        const char *name;
        bool converted_ok;
        bool pragma_ok;
    };
    const Expect table[] = {
        {"G500-CSR", true, true}, {"G500-List", true, true},
        {"HJ-2", true, true},     {"HJ-8", true, true},
        {"PageRank", false, true}, // swpf impossible, pragma fine
        {"RandAcc", true, true},  {"IntSort", true, true},
        {"ConjGrad", true, true},
    };

    for (const auto &ex : table) {
        auto wl = makeWorkload(ex.name, sc);
        GuestMemory gm;
        wl->setup(gm, 42);
        auto loops = wl->buildIR();
        ASSERT_FALSE(loops.empty()) << ex.name;

        bool conv = false, prag = false;
        for (const auto &loop : loops) {
            conv |= convertSoftwarePrefetches(*loop).ok;
            prag |= generateFromPragma(*loop).ok;
        }
        EXPECT_EQ(conv, ex.converted_ok) << ex.name;
        EXPECT_EQ(prag, ex.pragma_ok) << ex.name;
    }
}

} // namespace
} // namespace epf
