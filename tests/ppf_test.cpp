/**
 * @file
 * Unit tests for the programmable prefetcher: address filter, observation
 * queue, scheduler policies, EWMA lookahead, event chains via callback
 * kernels and memory-request tags, context switches and blocked mode.
 */

#include <gtest/gtest.h>

#include <vector>

#include "isa/builder.hpp"
#include "mem/guest_memory.hpp"
#include "ppf/ewma.hpp"
#include "ppf/filter.hpp"
#include "ppf/ppf.hpp"
#include "sim/event_queue.hpp"

namespace epf
{
namespace
{

TEST(EwmaTest, FirstSampleSeeds)
{
    Ewma e(3);
    EXPECT_FALSE(e.seeded());
    e.sample(100);
    EXPECT_TRUE(e.seeded());
    EXPECT_EQ(e.value(), 100u);
}

TEST(EwmaTest, ConvergesToConstantInput)
{
    Ewma e(3);
    e.sample(0);
    for (int i = 0; i < 100; ++i)
        e.sample(800);
    EXPECT_NEAR(static_cast<double>(e.value()), 800.0, 8.0);
}

TEST(EwmaTest, SmoothsSpikes)
{
    Ewma e(3);
    e.sample(100);
    e.sample(1000); // single outlier moves it by only ~1/8
    // Round-to-nearest: 100 + round(900 / 8) = 100 + 113.
    EXPECT_EQ(e.value(), 213u);
}

/**
 * Regression for the downward bias of truncating arithmetic: with
 * `delta >> shift`, oscillating samples drift the average toward the
 * *minimum* (negative deltas always step down, small positive deltas
 * truncate to zero), which inflated the derived lookahead.  With
 * round-to-nearest the equilibrium stays at the input mean.
 */
TEST(EwmaTest, OscillatingInputHasNoDownwardBias)
{
    Ewma e(3);
    e.sample(1004);
    for (int i = 0; i < 200; ++i) {
        e.sample(996);
        e.sample(1004);
    }
    // Mean is 1000.  The truncating version settles at ~996-997.
    EXPECT_GE(e.value(), 999u);
    EXPECT_LE(e.value(), 1002u);
}

class LookaheadParam
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(LookaheadParam, RatioTimesScale)
{
    auto [chain, iter] = GetParam();
    LookaheadCalculator la(3, 64, 4, 2);
    // Seed the iteration EWMA via evenly spaced accesses.
    Tick t = 1000;
    for (int i = 0; i < 200; ++i) {
        la.observeAccess(t);
        t += iter;
    }
    for (int i = 0; i < 200; ++i)
        la.observeChain(chain);
    std::uint64_t expect = 2 * ((chain + iter - 1) / iter);
    if (expect > 64)
        expect = 64;
    EXPECT_NEAR(static_cast<double>(la.lookahead()),
                static_cast<double>(expect), 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, LookaheadParam,
    ::testing::Values(std::make_tuple(1600, 160),   // 10x -> 20
                      std::make_tuple(800, 400),    // 2x -> 4
                      std::make_tuple(3200, 100),   // 32x -> clamp 64
                      std::make_tuple(160, 1600))); // <1 -> 2

TEST(LookaheadTest, InitialBeforeSamples)
{
    LookaheadCalculator la(3, 64, 4, 2);
    EXPECT_EQ(la.lookahead(), 4u);
}

TEST(FilterTableTest, OverlappingRangesBothMatch)
{
    FilterTable ft;
    FilterEntry a;
    a.name = "a";
    a.base = 100;
    a.limit = 200;
    FilterEntry b;
    b.name = "b";
    b.base = 150;
    b.limit = 250;
    ft.add(a);
    ft.add(b);

    std::vector<int> hits;
    ft.match(170, [&](int idx, const FilterEntry &) { hits.push_back(idx); });
    EXPECT_EQ(hits, (std::vector<int>{0, 1}));
    hits.clear();
    ft.match(120, [&](int idx, const FilterEntry &) { hits.push_back(idx); });
    EXPECT_EQ(hits, (std::vector<int>{0}));
    hits.clear();
    ft.match(250, [&](int idx, const FilterEntry &) { hits.push_back(idx); });
    EXPECT_TRUE(hits.empty());
}

/**
 * Reference oracle for FilterTable::match: the plain linear scan the
 * interval index replaced.  Matches must be identical — same entries,
 * same (insertion) order — at every table size, in particular around
 * the 64-entry bound where the implementation switches from the
 * interval index to the fallback linear scan.
 */
std::vector<int>
linearMatches(const std::vector<FilterEntry> &entries, Addr a)
{
    std::vector<int> out;
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (entries[i].contains(a))
            out.push_back(static_cast<int>(i));
    return out;
}

std::vector<int>
tableMatches(const FilterTable &ft, Addr a)
{
    std::vector<int> out;
    ft.match(a, [&](int idx, const FilterEntry &) { out.push_back(idx); });
    return out;
}

/** Deterministic overlapping spans: adjacent, nested and disjoint. */
std::vector<FilterEntry>
boundaryEntries(std::size_t n)
{
    std::vector<FilterEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
        FilterEntry e;
        e.name = "e" + std::to_string(i);
        // Chains of overlapping [i*40, i*40+100) spans plus every 7th
        // entry covering a huge nested range.
        e.base = static_cast<Addr>(i * 40);
        e.limit = e.base + (i % 7 == 0 ? 4000 : 100);
        entries.push_back(e);
    }
    return entries;
}

class FilterTableBoundary : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FilterTableBoundary, MatchesLinearOracleInInsertionOrder)
{
    const std::size_t n = GetParam(); // 63 / 64 sit each side of the bound
    ASSERT_LE(n, FilterTable::kMaxEntries);
    const auto entries = boundaryEntries(n);
    FilterTable ft;
    for (std::size_t i = 0; i < entries.size(); ++i)
        EXPECT_EQ(ft.add(entries[i]), static_cast<int>(i));
    EXPECT_EQ(ft.size(), n);

    // Probe every span edge and interior plus out-of-range points.
    std::vector<Addr> probes{0, 1, 39, 40, 99, 100};
    for (std::size_t i = 0; i < n; ++i) {
        probes.push_back(entries[i].base);
        probes.push_back(entries[i].base + 50);
        probes.push_back(entries[i].limit - 1);
        probes.push_back(entries[i].limit);
    }
    probes.push_back(1'000'000);
    for (Addr a : probes)
        EXPECT_EQ(tableMatches(ft, a), linearMatches(entries, a))
            << "n=" << n << " addr=" << a;
}

INSTANTIATE_TEST_SUITE_P(AroundIndexBound, FilterTableBoundary,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{63},
                                           std::size_t{64}));

#ifdef NDEBUG
TEST(FilterTableBoundary65, OversizedTableFallsBackToLinearScan)
{
    // 65 entries exceed the hardware bound; in release builds (where
    // add()'s assert compiles out) match() must take the unbounded
    // linear scan rather than overrun its fixed stack buffer.
    const auto entries = boundaryEntries(65);
    FilterTable ft;
    for (const auto &e : entries)
        ft.add(e);
    EXPECT_EQ(ft.size(), 65u);
    for (Addr a : {Addr{0}, Addr{50}, Addr{64 * 40}, Addr{65 * 40 + 99}})
        EXPECT_EQ(tableMatches(ft, a), linearMatches(entries, a));
}
#else
TEST(FilterTableBoundary65, OversizedAddAssertsInDebugBuilds)
{
    const auto entries = boundaryEntries(64);
    FilterTable ft;
    for (const auto &e : entries)
        ft.add(e);
    FilterEntry extra;
    extra.name = "overflow";
    extra.base = 0;
    extra.limit = 1;
    EXPECT_DEATH(ft.add(extra), "hardware bound");
}
#endif

TEST(FilterTableTest, InsertionOrderPreservedUnderReversedBases)
{
    // Entries inserted with descending bases: the index sorts by base,
    // but callbacks must still arrive in insertion order.
    FilterTable ft;
    std::vector<FilterEntry> entries;
    for (int i = 0; i < 8; ++i) {
        FilterEntry e;
        e.name = "r" + std::to_string(i);
        e.base = static_cast<Addr>((8 - i) * 100);
        e.limit = 2000;
        entries.push_back(e);
        ft.add(e);
    }
    EXPECT_EQ(tableMatches(ft, 900), linearMatches(entries, 900));
    EXPECT_EQ(tableMatches(ft, 900), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

/** Fixture: a PPF over a small guest array, with a captured kick. */
class PpfTest : public ::testing::Test
{
  protected:
    PpfTest()
    {
        data_.resize(4096);
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] = i;
        base_ = gmem_.addRegion("data", data_.data(), data_.size() * 8);
    }

    Addr base() const { return base_; }

    std::unique_ptr<ProgrammablePrefetcher>
    make(PpfConfig cfg = {})
    {
        auto p = std::make_unique<ProgrammablePrefetcher>(eq_, gmem_, cfg);
        p->setKick([this] { ++kicks_; });
        return p;
    }

    /** Drain queued requests into a vector. */
    std::vector<LineRequest>
    drain(ProgrammablePrefetcher &p)
    {
        std::vector<LineRequest> out;
        while (p.hasRequest())
            out.push_back(p.popRequest());
        return out;
    }

    EventQueue eq_;
    GuestMemory gmem_;
    std::vector<std::uint64_t> data_;
    Addr base_ = 0;
    int kicks_ = 0;
};

TEST_F(PpfTest, LoadObservationRunsKernelAndEmits)
{
    auto ppf = make();
    unsigned g = ppf->allocGlobal(128);
    KernelBuilder b("next");
    b.vaddr(1).gread(2, g).add(1, 1, 2).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());

    FilterEntry fe;
    fe.name = "data";
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base() + 64, true, false, 0);
    eq_.run();

    EXPECT_EQ(ppf->stats().eventsRun, 1u);
    auto reqs = drain(*ppf);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].vaddr, base() + 64 + 128);
    EXPECT_GT(kicks_, 0);
}

TEST_F(PpfTest, LoadsOutsideRangeIgnored)
{
    auto ppf = make();
    KernelBuilder b("k");
    b.halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 64;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base() + 128, true, false, 0);
    ppf->notifyDemand(base() - 8, true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().observations, 0u);
}

TEST_F(PpfTest, StoresDoNotTrigger)
{
    auto ppf = make();
    KernelBuilder b("k");
    b.halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);
    ppf->notifyDemand(base(), false, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().observations, 0u);
}

TEST_F(PpfTest, CallbackKernelSeesFetchedLine)
{
    auto ppf = make();
    // The kernel doubles the observed word (8 * data value) as address.
    KernelBuilder b("use_data");
    b.vaddr(1).ldLine(2, 1, 0).shli(2, 2, 3).prefetch(2).halt();
    KernelId k = ppf->kernels().add(b.build());

    LineRequest fill;
    fill.vaddr = base() + 16 * 8; // data_[16] = 16
    fill.isPrefetch = true;
    fill.cbKernel = k;
    ppf->notifyPrefetchFill(fill);
    eq_.run();

    auto reqs = drain(*ppf);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].vaddr, 16u * 8u);
}

TEST_F(PpfTest, TagRoutesToRegisteredKernel)
{
    auto ppf = make();
    KernelBuilder b("tagk");
    b.li(1, 0x42).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    std::int32_t tag = ppf->registerTag(k);

    LineRequest fill;
    fill.vaddr = base();
    fill.isPrefetch = true;
    fill.tag = tag;
    ppf->notifyPrefetchFill(fill);
    eq_.run();
    auto reqs = drain(*ppf);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].vaddr, 0x42u);
}

TEST_F(PpfTest, ObservationQueueDropsOldest)
{
    PpfConfig cfg;
    cfg.numPpus = 1;
    cfg.obsQueueCapacity = 4;
    cfg.dispatchOverhead = 1000; // keep the PPU busy long enough
    auto ppf = make(cfg);
    KernelBuilder b("k");
    b.halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 32768;
    fe.onLoad = k;
    ppf->addFilter(fe);

    for (int i = 0; i < 10; ++i)
        ppf->notifyDemand(base() + static_cast<Addr>(i) * 64, true, false,
                          0);
    EXPECT_GT(ppf->stats().obsDropped, 0u);
    eq_.run();
}

TEST_F(PpfTest, LowestIdPolicySkewsWork)
{
    PpfConfig cfg;
    cfg.numPpus = 4;
    cfg.policy = SchedulePolicy::kLowestId;
    auto ppf = make(cfg);
    KernelBuilder b("k");
    b.li(1, 1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 32768;
    fe.onLoad = k;
    ppf->addFilter(fe);

    // Sequential (non-overlapping) events all land on PPU 0.
    for (int i = 0; i < 6; ++i) {
        ppf->notifyDemand(base() + static_cast<Addr>(i) * 64, true, false,
                          0);
        eq_.run();
    }
    EXPECT_EQ(ppf->ppuStats()[0].events, 6u);
    EXPECT_EQ(ppf->ppuStats()[1].events, 0u);
}

TEST_F(PpfTest, RoundRobinSpreadsWork)
{
    PpfConfig cfg;
    cfg.numPpus = 4;
    cfg.policy = SchedulePolicy::kRoundRobin;
    auto ppf = make(cfg);
    KernelBuilder b("k");
    b.li(1, 1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 32768;
    fe.onLoad = k;
    ppf->addFilter(fe);

    for (int i = 0; i < 8; ++i) {
        ppf->notifyDemand(base() + static_cast<Addr>(i) * 64, true, false,
                          0);
        eq_.run();
    }
    for (unsigned p = 0; p < 4; ++p)
        EXPECT_EQ(ppf->ppuStats()[p].events, 2u);
}

/**
 * reset() must also rewind the round-robin cursor: a freshly reset and
 * reprogrammed prefetcher has to schedule exactly like a new one, not
 * depend on how many events the previous program ran.
 */
TEST_F(PpfTest, ResetRestartsRoundRobinSchedulingAtPpuZero)
{
    PpfConfig cfg;
    cfg.numPpus = 4;
    cfg.policy = SchedulePolicy::kRoundRobin;
    auto ppf = make(cfg);

    auto program = [this](ProgrammablePrefetcher &p) {
        KernelBuilder b("k");
        b.li(1, 1).prefetch(1).halt();
        KernelId k = p.kernels().add(b.build());
        FilterEntry fe;
        fe.base = base();
        fe.limit = base() + 32768;
        fe.onLoad = k;
        p.addFilter(fe);
    };
    program(*ppf);

    // Advance the round-robin cursor off PPU 0.
    for (int i = 0; i < 3; ++i) {
        ppf->notifyDemand(base() + static_cast<Addr>(i) * 64, true, false,
                          0);
        eq_.run();
    }
    ASSERT_EQ(ppf->ppuStats()[2].events, 1u); // cursor now points at 3

    ppf->reset();
    program(*ppf);
    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();

    // The first post-reset event lands on PPU 0, independent of history.
    EXPECT_EQ(ppf->ppuStats()[0].events, 1u);
    for (unsigned p = 1; p < 4; ++p)
        EXPECT_EQ(ppf->ppuStats()[p].events, 0u);
}

TEST_F(PpfTest, TrappingKernelCounted)
{
    auto ppf = make();
    KernelBuilder b("trap");
    // The divisor must be dynamic: a literal zero is now a proven
    // guaranteed trap and strict add() rejects it.  Global 0 is never
    // written in this test, so the gread yields 0 and the div traps at
    // run time while the analyzer can only say "may trap".
    b.li(1, 1).gread(2, 0).div(1, 1, 2).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().traps, 1u);
}

TEST_F(PpfTest, RequestQueueCapacityDropsOldest)
{
    PpfConfig cfg;
    cfg.reqQueueCapacity = 4;
    auto ppf = make(cfg);
    // Kernel emitting 8 prefetches.
    KernelBuilder b("k8");
    b.li(1, 0x1000);
    for (int i = 0; i < 8; ++i)
        b.addi(1, 1, 64).prefetch(1);
    b.halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().reqDropped, 4u);
    EXPECT_EQ(drain(*ppf).size(), 4u);
}

TEST_F(PpfTest, EwmaChainSampling)
{
    auto ppf = make();
    KernelBuilder b("k");
    b.vaddr(1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());

    FilterEntry src;
    src.name = "src";
    src.base = base();
    src.limit = base() + 1024;
    src.onLoad = k;
    src.timeSource = true;
    src.timedStart = true;
    int src_idx = ppf->addFilter(src);

    FilterEntry dst;
    dst.name = "dst";
    dst.base = base() + 2048;
    dst.limit = base() + 4096;
    dst.timedEnd = true;
    ppf->addFilter(dst);

    // A timed fill arriving at the dst range samples the chain EWMA.
    LineRequest fill;
    fill.vaddr = base() + 2048;
    fill.isPrefetch = true;
    fill.hasTimedStart = true;
    fill.timedStart = 0;
    fill.timedOrigin = static_cast<std::int16_t>(src_idx);
    eq_.schedule(1600, [&] { ppf->notifyPrefetchFill(fill); });
    eq_.run();
    EXPECT_EQ(ppf->stats().chainSamples, 1u);

    // Synthesised completions must not sample.
    LineRequest synth = fill;
    synth.synthesized = true;
    ppf->notifyPrefetchFill(synth);
    eq_.run();
    EXPECT_EQ(ppf->stats().chainSamples, 1u);
}

TEST_F(PpfTest, ContextSwitchAbortsEventsKeepsConfig)
{
    auto ppf = make();
    KernelBuilder b("k");
    b.li(1, 1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);
    ppf->setGlobal(3, 77);

    ppf->notifyDemand(base(), true, false, 0);
    // Context switch before the scheduled event executes.
    ppf->contextSwitch();
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 0u);
    EXPECT_FALSE(ppf->hasRequest());
    // Configuration survives: a new observation works.
    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 1u);
    EXPECT_EQ(ppf->global(3), 77u);
}

TEST_F(PpfTest, ContextSwitchAbortsInFlightViaEpochBump)
{
    auto ppf = make();
    KernelBuilder b("k");
    b.li(1, 1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    // Several observations in flight (scheduled but not yet executed).
    for (int i = 0; i < 3; ++i)
        ppf->notifyDemand(base() + static_cast<Addr>(i) * 64, true, false,
                          0);
    EXPECT_EQ(ppf->stats().observations, 3u);
    ppf->contextSwitch();
    eq_.run();
    // The epoch bump invalidated every scheduled event: none ran, none
    // emitted, and no PPU is left marked busy.
    EXPECT_EQ(ppf->stats().eventsRun, 0u);
    EXPECT_FALSE(ppf->hasRequest());
    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 1u);
}

TEST_F(PpfTest, ContextSwitchKeepsConfigButResetsLookahead)
{
    auto ppf = make();
    unsigned g = ppf->allocGlobal(0x1234);

    FilterEntry src;
    src.name = "src";
    src.base = base();
    src.limit = base() + 1024;
    src.timeSource = true;
    src.timedStart = true;
    int src_idx = ppf->addFilter(src);

    FilterEntry dst;
    dst.name = "dst";
    dst.base = base() + 2048;
    dst.limit = base() + 4096;
    dst.timedEnd = true;
    ppf->addFilter(dst);

    // Evenly spaced accesses seed the iteration EWMA; a slow timed
    // chain fill seeds the chain EWMA, pushing the lookahead off its
    // initial value.
    const std::uint64_t initial = ppf->lookaheadOf(src_idx);
    Tick t = 0;
    for (int i = 0; i < 20; ++i) {
        t += 160;
        eq_.schedule(t, [&ppf, this, i] {
            ppf->notifyDemand(base() + static_cast<Addr>(i % 8) * 64,
                              true, false, 0);
        });
    }
    LineRequest fill;
    fill.vaddr = base() + 2048;
    fill.isPrefetch = true;
    fill.hasTimedStart = true;
    fill.timedStart = 0;
    fill.timedOrigin = static_cast<std::int16_t>(src_idx);
    eq_.schedule(6400, [&] { ppf->notifyPrefetchFill(fill); });
    eq_.run();
    ASSERT_NE(ppf->lookaheadOf(src_idx), initial);

    ppf->contextSwitch();
    // Transient state (EWMAs) is gone...
    EXPECT_EQ(ppf->lookaheadOf(src_idx), initial);
    // ...but configuration survives: filters and globals.
    EXPECT_EQ(ppf->filters().size(), 2u);
    EXPECT_EQ(ppf->global(g), 0x1234u);
}

TEST_F(PpfTest, ResetClearsConfigurationUnlikeContextSwitch)
{
    auto ppf = make();
    KernelBuilder b("k");
    b.li(1, 1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);
    unsigned g = ppf->allocGlobal(99);
    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 1u);

    ppf->reset();
    // Unlike contextSwitch, reset drops configuration and statistics.
    EXPECT_EQ(ppf->filters().size(), 0u);
    EXPECT_EQ(ppf->global(g), 0u);
    EXPECT_EQ(ppf->stats().eventsRun, 0u);
    EXPECT_EQ(ppf->stats().observations, 0u);
    // The global allocator rewinds: the next allocation reuses slot 0.
    EXPECT_EQ(ppf->allocGlobal(7), g);
    // The old filter no longer matches anything.
    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().observations, 0u);
    EXPECT_EQ(ppf->stats().eventsRun, 0u);
}

TEST_F(PpfTest, ResetAbortsInFlightEvents)
{
    auto ppf = make();
    KernelBuilder b("k");
    b.li(1, 1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base(), true, false, 0);
    ppf->reset(); // epoch bump: the scheduled event must not run
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 0u);
    EXPECT_FALSE(ppf->hasRequest());
}

TEST_F(PpfTest, BlockedModeStallsPpuUntilFill)
{
    PpfConfig cfg;
    cfg.numPpus = 1;
    cfg.blocking = true;
    auto ppf = make(cfg);

    KernelBuilder cb("cb");
    cb.li(1, 0x9000).prefetch(1).halt();
    KernelId k_cb = ppf->kernels().add(cb.build());

    KernelBuilder b("chain");
    b.li(1, 0x8000).prefetchCb(1, k_cb).halt();
    KernelId k = ppf->kernels().add(b.build());

    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().blockedStalls, 1u);

    // A second observation cannot be scheduled: the single PPU stalls.
    ppf->notifyDemand(base() + 64, true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 1u);

    // The fill arrives, runs the callback on the same PPU and frees it.
    auto reqs = drain(*ppf);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].originPpu, 0);
    LineRequest fill = reqs[0];
    fill.vaddr = base() + 512; // somewhere readable
    ppf->notifyPrefetchFill(fill);
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 3u); // cb + queued second obs
}

TEST_F(PpfTest, BlockedModeReleasedOnDrop)
{
    PpfConfig cfg;
    cfg.numPpus = 1;
    cfg.blocking = true;
    auto ppf = make(cfg);

    KernelBuilder cb("cb");
    cb.halt();
    KernelId k_cb = ppf->kernels().add(cb.build());
    KernelBuilder b("chain");
    b.li(1, 0x8000).prefetchCb(1, k_cb).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    auto reqs = drain(*ppf);
    ASSERT_EQ(reqs.size(), 1u);
    // The request faults / is dropped: the PPU must be released.
    ppf->notifyPrefetchDropped(reqs[0]);
    eq_.run();
    ppf->notifyDemand(base() + 64, true, false, 0);
    eq_.run();
    EXPECT_EQ(ppf->stats().eventsRun, 2u);
}

TEST_F(PpfTest, ActivityAccounting)
{
    PpfConfig cfg;
    cfg.numPpus = 2;
    auto ppf = make(cfg);
    KernelBuilder b("k");
    b.li(1, 1).addi(1, 1, 1).addi(1, 1, 1).prefetch(1).halt();
    KernelId k = ppf->kernels().add(b.build());
    FilterEntry fe;
    fe.base = base();
    fe.limit = base() + 1024;
    fe.onLoad = k;
    ppf->addFilter(fe);

    ppf->notifyDemand(base(), true, false, 0);
    eq_.run();
    EXPECT_GT(ppf->ppuStats()[0].busyTicks, 0u);
    EXPECT_EQ(ppf->ppuStats()[1].busyTicks, 0u);
}

} // namespace
} // namespace epf
