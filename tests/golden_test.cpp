/**
 * @file
 * Golden-stats differential regression suite (tier 2).
 *
 * Each workload x technique cell runs at the default seed and
 * kGoldenScale, serializes its full stats block (minus hostSeconds) and
 * diffs it against the checked-in file under tests/goldens/.  A
 * mismatch means simulated timing or accounting changed: if that was
 * intentional, regenerate with ./build/update_goldens and commit the
 * golden diff alongside the code; if not, this suite just caught a
 * regression no directional test would see.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "runner/golden.hpp"
#include "workloads/workload.hpp"

#ifndef EPF_GOLDEN_DIR
#define EPF_GOLDEN_DIR "tests/goldens"
#endif

namespace epf
{
namespace
{

std::string
goldenDir()
{
    if (const char *d = std::getenv("EPF_GOLDEN_DIR"))
        return d;
    return EPF_GOLDEN_DIR;
}

class GoldenMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, Technique>>
{
};

TEST_P(GoldenMatrix, StatsMatchGolden)
{
    const GoldenCell cell{std::get<0>(GetParam()), std::get<1>(GetParam())};
    const std::string file = goldenDir() + "/" + goldenFileName(cell);

    std::ifstream is(file, std::ios::binary);
    ASSERT_TRUE(is) << "missing golden " << file
                    << " — run ./build/update_goldens and commit the "
                       "generated files";
    std::ostringstream want;
    want << is.rdbuf();

    const RunResult res = runExperiment(cell.workload,
                                        goldenConfig(cell.technique));
    const std::string got = goldenStatsJson(cell, res);

    EXPECT_EQ(want.str(), got)
        << cell.workload << " / " << techniqueName(cell.technique)
        << ": stats diverged from " << file << " at line "
        << firstDifferingLine(want.str(), got)
        << ".\nIf this change is intentional, regenerate with "
           "./build/update_goldens and commit the golden diff.";
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, GoldenMatrix,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::ValuesIn(goldenTechniques())),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_" +
                        techniqueName(std::get<1>(info.param));
        std::string out;
        for (char c : n)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

/**
 * End-to-end A/B proof for the pre-decoded interpreter: a PPF-heavy
 * cell re-run with the reference switch interpreter (predecode off)
 * must reproduce the checked-in golden byte-for-byte — i.e. the fast
 * path cannot have changed a single simulated event.  The kernel-level
 * equivalence is fuzzed exhaustively in fuzz_isa_test; this pins the
 * full stack (scheduling, EWMA, queue timing, chained callbacks).
 */
class InterpreterParity
    : public ::testing::TestWithParam<std::tuple<std::string, Technique>>
{
};

TEST_P(InterpreterParity, ReferenceInterpreterMatchesGolden)
{
    const GoldenCell cell{std::get<0>(GetParam()), std::get<1>(GetParam())};
    const std::string file = goldenDir() + "/" + goldenFileName(cell);

    std::ifstream is(file, std::ios::binary);
    ASSERT_TRUE(is) << "missing golden " << file;
    std::ostringstream want;
    want << is.rdbuf();

    RunConfig cfg = goldenConfig(cell.technique);
    cfg.ppf.predecode = false; // force the reference oracle
    const RunResult res = runExperiment(cell.workload, cfg);
    const std::string got = goldenStatsJson(cell, res);

    EXPECT_EQ(want.str(), got)
        << cell.workload << " / " << techniqueName(cell.technique)
        << ": the reference and pre-decoded interpreters produced "
           "different simulated stats (first divergence at line "
        << firstDifferingLine(want.str(), got) << ").";
}

INSTANTIATE_TEST_SUITE_P(
    PpfHeavyCells, InterpreterParity,
    ::testing::Values(
        std::make_tuple(std::string("RandAcc"), Technique::kManual),
        std::make_tuple(std::string("HJ-8"), Technique::kManual),
        std::make_tuple(std::string("G500-List"),
                        Technique::kManualBlocked)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_" +
                        techniqueName(std::get<1>(info.param));
        std::string out;
        for (char c : n)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

/**
 * Same end-to-end A/B proof one layer up: the PPF-heavy cells re-run
 * with the pre-decoded interpreter but superblock formation OFF must
 * also reproduce the goldens byte-for-byte, isolating the superblock
 * layer (the default path that produced the goldens) from the
 * fused-macro-op layer below it.
 */
class SuperblockParity
    : public ::testing::TestWithParam<std::tuple<std::string, Technique>>
{
};

TEST_P(SuperblockParity, SuperblocksOffMatchesGolden)
{
    const GoldenCell cell{std::get<0>(GetParam()), std::get<1>(GetParam())};
    const std::string file = goldenDir() + "/" + goldenFileName(cell);

    std::ifstream is(file, std::ios::binary);
    ASSERT_TRUE(is) << "missing golden " << file;
    std::ostringstream want;
    want << is.rdbuf();

    RunConfig cfg = goldenConfig(cell.technique);
    cfg.ppf.predecode = true;
    cfg.ppf.superblocks = false; // PR 5 decoded baseline
    const RunResult res = runExperiment(cell.workload, cfg);
    const std::string got = goldenStatsJson(cell, res);

    EXPECT_EQ(want.str(), got)
        << cell.workload << " / " << techniqueName(cell.technique)
        << ": superblocks on vs off produced different simulated stats "
           "(first divergence at line "
        << firstDifferingLine(want.str(), got) << ").";
}

INSTANTIATE_TEST_SUITE_P(
    PpfHeavyCells, SuperblockParity,
    ::testing::Values(
        std::make_tuple(std::string("RandAcc"), Technique::kManual),
        std::make_tuple(std::string("HJ-8"), Technique::kManual),
        std::make_tuple(std::string("G500-List"),
                        Technique::kManualBlocked)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_" +
                        techniqueName(std::get<1>(info.param));
        std::string out;
        for (char c : n)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

/**
 * A/B proof for same-tick event batching: every cell of the full
 * matrix re-run with batched delivery OFF everywhere — per-event MSHR
 * fill waiters, per-bank arbiter grant events, per-match observation
 * enqueues — must reproduce the checked-in goldens (which were recorded
 * with batching ON, the default) byte-for-byte.  This is the claim that
 * batching is timing-pure: it changes how same-tick events are carried,
 * never what they do or in which order.
 */
class BatchParity
    : public ::testing::TestWithParam<std::tuple<std::string, Technique>>
{
};

TEST_P(BatchParity, PerEventDeliveryMatchesGolden)
{
    const GoldenCell cell{std::get<0>(GetParam()), std::get<1>(GetParam())};
    const std::string file = goldenDir() + "/" + goldenFileName(cell);

    std::ifstream is(file, std::ios::binary);
    ASSERT_TRUE(is) << "missing golden " << file;
    std::ostringstream want;
    want << is.rdbuf();

    RunConfig cfg = goldenConfig(cell.technique);
    cfg.mem.batchedDelivery = false; // seeds both cache levels + arbiter
    cfg.ppf.batchedObservations = false;
    const RunResult res = runExperiment(cell.workload, cfg);
    const std::string got = goldenStatsJson(cell, res);

    EXPECT_EQ(want.str(), got)
        << cell.workload << " / " << techniqueName(cell.technique)
        << ": batched vs per-event delivery produced different simulated "
           "stats (first divergence at line "
        << firstDifferingLine(want.str(), got) << ").";
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, BatchParity,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::ValuesIn(goldenTechniques())),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_" +
                        techniqueName(std::get<1>(info.param));
        std::string out;
        for (char c : n)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

} // namespace
} // namespace epf
