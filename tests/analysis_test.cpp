/**
 * @file
 * Directed tests for the kernel static analyzer (src/isa/analysis):
 * seeded defects must be detected, clean kernels must prove clean, the
 * cost bounds must be exact on acyclic kernels, and the strict
 * KernelTable gate must reject malformed kernels at registration.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "isa/analysis/verifier.hpp"
#include "isa/builder.hpp"
#include "isa/interpreter.hpp"
#include "isa/isa.hpp"

namespace epf
{
namespace
{

using analysis::DiagCode;
using analysis::KernelContext;
using analysis::Severity;

/** True when @p diags contains @p code (at @p pc, unless pc is -2). */
bool
hasDiag(const std::vector<analysis::Diag> &diags, DiagCode code, int pc = -2)
{
    for (const analysis::Diag &d : diags)
        if (d.code == code && (pc == -2 || d.pc == pc))
            return true;
    return false;
}

Kernel
rawKernel(std::vector<Instr> code)
{
    return Kernel{"raw", std::move(code)};
}

// ---------------------------------------------------------------------
// Control-flow validity
// ---------------------------------------------------------------------

TEST(AnalysisTest, CleanKernelHasNoDiags)
{
    KernelBuilder b("clean");
    b.vaddr(1).addi(2, 1, 64).prefetch(2).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_TRUE(ka.diags.empty());
    EXPECT_FALSE(ka.hasErrors());
    EXPECT_TRUE(ka.acyclic);
}

TEST(AnalysisTest, DetectsBadBranchTarget)
{
    // jmp +40 from pc 1 of a 3-instruction kernel: target 42.
    const auto ka = analysis::analyzeKernel(
        rawKernel({Instr{Opcode::kLi, 1, 0, 0, 1},
                   Instr{Opcode::kJmp, 0, 0, 0, 40},
                   Instr{Opcode::kHalt, 0, 0, 0, 0}}));
    EXPECT_TRUE(ka.hasErrors());
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kBadBranchTarget, 1));
    EXPECT_FALSE(ka.provenTrapFree);
    // The instruction after the wild jmp never executes.
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kUnreachableCode, 2));
}

TEST(AnalysisTest, DetectsFallOffEnd)
{
    const auto ka = analysis::analyzeKernel(
        rawKernel({Instr{Opcode::kVaddr, 1, 0, 0, 0},
                   Instr{Opcode::kPrefetch, 0, 1, 0, 0}}));
    EXPECT_TRUE(ka.hasErrors());
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kFallOffEnd, 1));
    EXPECT_FALSE(ka.provenTrapFree);
}

TEST(AnalysisTest, ConditionalBranchAtEndFallsOffOnNotTakenPath)
{
    // beq at the last instruction: the taken target (pc 0) is fine,
    // the not-taken path falls past the end.
    const auto ka = analysis::analyzeKernel(
        rawKernel({Instr{Opcode::kVaddr, 1, 0, 0, 0},
                   Instr{Opcode::kBeq, 0, 1, 1, -2}}));
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kFallOffEnd, 1));
    EXPECT_FALSE(hasDiag(ka.diags, DiagCode::kBadBranchTarget));
}

TEST(AnalysisTest, DetectsEmptyKernel)
{
    const auto ka = analysis::analyzeKernel(rawKernel({}));
    EXPECT_TRUE(ka.hasErrors());
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kEmptyKernel));
}

TEST(AnalysisTest, DetectsUnreachableCode)
{
    KernelBuilder b("dead");
    auto end = b.newLabel();
    b.vaddr(1).jmp(end).prefetch(1).bind(end).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_FALSE(ka.hasErrors()); // dead code is a warning
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kUnreachableCode, 2));
    EXPECT_EQ(ka.reachablePc[2], 0);
    EXPECT_EQ(ka.reachablePc[3], 1);
}

// ---------------------------------------------------------------------
// Uninitialized-register reads
// ---------------------------------------------------------------------

TEST(AnalysisTest, DetectsUninitRead)
{
    KernelBuilder b("uninit");
    b.addi(1, 2, 8).prefetch(1).halt(); // r2 never written
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_FALSE(ka.hasErrors()); // registers are zeroed: warning only
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kUninitRead, 0));
}

TEST(AnalysisTest, UninitReadOnOnePathOnly)
{
    // r2 is defined on the taken path but not the fall-through one.
    KernelBuilder b("onepath");
    auto join = b.newLabel();
    auto skip = b.newLabel();
    b.vaddr(1)
        .beq(1, 1, skip)
        .li(2, 7)
        .jmp(join)
        .bind(skip)
        .nop()
        .bind(join)
        .prefetch(2) // r2 maybe-uninitialized here
        .halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kUninitRead, 5));
}

TEST(AnalysisTest, ObservationOpsCountAsDefs)
{
    KernelBuilder b("obs");
    b.vaddr(1).lineBase(2).gread(3, 0).lookahead(4, 0);
    b.add(5, 1, 2).add(6, 3, 4).prefetch(5).prefetch(6).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_FALSE(hasDiag(ka.diags, DiagCode::kUninitRead));
}

// ---------------------------------------------------------------------
// Static trap proofs
// ---------------------------------------------------------------------

TEST(AnalysisTest, ContextFreeTrapFactsMatchTheInterpreter)
{
    // The single-instruction facts the pre-decoder hoists.
    EXPECT_TRUE(analysis::alwaysTraps(Instr{Opcode::kDivi, 1, 1, 0, 0}));
    EXPECT_FALSE(analysis::alwaysTraps(Instr{Opcode::kDivi, 1, 1, 0, 2}));
    EXPECT_TRUE(analysis::alwaysTraps(Instr{Opcode::kGread, 1, 0, 0, 64}));
    EXPECT_TRUE(analysis::alwaysTraps(Instr{Opcode::kGread, 1, 0, 0, -1}));
    EXPECT_FALSE(analysis::alwaysTraps(Instr{Opcode::kGread, 1, 0, 0, 63}));
    EXPECT_TRUE(
        analysis::alwaysTraps(Instr{Opcode::kLookahead, 1, 0, 0, -2}));
    EXPECT_FALSE(
        analysis::alwaysTraps(Instr{Opcode::kLookahead, 1, 0, 0, 0}));
    // Dynamic traps are NOT context-free facts.
    EXPECT_FALSE(analysis::alwaysTraps(Instr{Opcode::kDiv, 1, 1, 2, 0}));
    EXPECT_FALSE(analysis::alwaysTraps(Instr{Opcode::kLdLine, 1, 1, 0, 0}));
}

TEST(AnalysisTest, DetectsGuaranteedTrap)
{
    KernelBuilder b("trap");
    b.li(1, 4).divi(2, 1, 0).prefetch(2).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_TRUE(ka.hasErrors());
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kGuaranteedTrap, 1));
    // Execution provably stops at the trap; the rest is unreachable.
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kUnreachableCode, 2));
}

TEST(AnalysisTest, LdLineTrapsOnNoLineEvents)
{
    KernelBuilder b("ld");
    b.vaddr(1).ldLine(2, 1).prefetch(2).halt();
    const Kernel k = b.build();

    KernelContext demand;
    demand.line = KernelContext::Line::kNever;
    const auto onDemand = analysis::analyzeKernel(k, demand);
    EXPECT_TRUE(hasDiag(onDemand.diags, DiagCode::kGuaranteedTrap, 1));

    KernelContext fill;
    fill.line = KernelContext::Line::kAlways;
    const auto onFill = analysis::analyzeKernel(k, fill);
    EXPECT_FALSE(hasDiag(onFill.diags, DiagCode::kGuaranteedTrap));
    EXPECT_TRUE(onFill.provenTrapFree);

    // Unknown trigger kind: may trap, so no proof either way.
    const auto unknown = analysis::analyzeKernel(k);
    EXPECT_FALSE(hasDiag(unknown.diags, DiagCode::kGuaranteedTrap));
    EXPECT_FALSE(unknown.provenTrapFree);
}

TEST(AnalysisTest, LookaheadCheckedAgainstFilterCount)
{
    KernelBuilder b("la");
    b.lookahead(1, 3).prefetch(1).halt();
    const Kernel k = b.build();

    KernelContext two;
    two.lookaheadEntries = 2;
    EXPECT_TRUE(hasDiag(analysis::analyzeKernel(k, two).diags,
                        DiagCode::kGuaranteedTrap, 0));

    KernelContext four;
    four.lookaheadEntries = 4;
    const auto ok = analysis::analyzeKernel(k, four);
    EXPECT_FALSE(hasDiag(ok.diags, DiagCode::kGuaranteedTrap));
    EXPECT_TRUE(ok.provenTrapFree);
}

TEST(AnalysisTest, DynamicDivIsNotProvenTrapFree)
{
    // A divisor the value analysis cannot bound (vaddr under a default
    // context) keeps the div a dynamic may-trap: no error, but no
    // trap-free proof either.
    KernelBuilder b("dyn");
    b.vaddr(1).vaddr(2).div(3, 1, 2).prefetch(3).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_FALSE(ka.hasErrors()); // a *dynamic* trap is not an error
    EXPECT_FALSE(ka.provenTrapFree);
    ASSERT_EQ(ka.trapFreePc.size(), 5u);
    EXPECT_EQ(ka.trapFreePc[2], 0);
}

TEST(AnalysisTest, ConstantDivisorDivIsProvenTrapFree)
{
    // The instruction-local facts classified every register div as
    // may-trap; the dataflow layer proves a [2, 2] divisor is neither
    // 0 nor the INT64_MIN / -1 pair.
    KernelBuilder b("constdiv");
    b.li(1, 8).li(2, 2).div(3, 1, 2).prefetch(3).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_FALSE(ka.hasErrors());
    EXPECT_TRUE(ka.provenTrapFree);
    ASSERT_EQ(ka.trapFreePc.size(), 5u);
    EXPECT_EQ(ka.trapFreePc[2], 1);
    // The constant quotient also makes the prefetch degenerate — the
    // value warnings ride on the same facts.
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kDegeneratePrefetch, 3));
}

TEST(AnalysisTest, UnreachableTrapDoesNotBlockTrapFreeProof)
{
    KernelBuilder b("deadtrap");
    auto end = b.newLabel();
    b.li(1, 1).jmp(end).divi(2, 1, 0).bind(end).prefetch(1).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_FALSE(ka.hasErrors());
    EXPECT_TRUE(ka.provenTrapFree);
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kUnreachableCode, 2));
}

// ---------------------------------------------------------------------
// Cost bounds
// ---------------------------------------------------------------------

TEST(AnalysisTest, StraightLineCostIsExact)
{
    KernelBuilder b("line");
    b.vaddr(1).addi(2, 1, 64).prefetch(2).prefetch(1).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    ASSERT_TRUE(ka.acyclic);
    EXPECT_EQ(ka.maxCycles, 5u);
    EXPECT_EQ(ka.maxEmits, 2u);
}

TEST(AnalysisTest, BranchyCostIsLongestPath)
{
    //  0 vaddr r1         both paths
    //  1 beq r1,r2 -> 4   taken: 3 cycles total, 0 emits
    //  2 prefetch r1      fall-through: 4 cycles total, 1 emit
    //  3 halt
    //  4 halt
    KernelBuilder b("branchy");
    auto l = b.newLabel();
    b.vaddr(1).beq(1, 2, l).prefetch(1).halt().bind(l).halt();
    const auto ka = analysis::analyzeKernel(b.build());
    ASSERT_TRUE(ka.acyclic);
    EXPECT_EQ(ka.maxCycles, 4u);
    EXPECT_EQ(ka.maxEmits, 1u);
    // The bound is attained: run the fall-through path.
    EventContext ctx;
    ctx.vaddr = 5; // r1 = 5 != r2 = 0, branch not taken
    unsigned emits = 0;
    const ExecResult res = Interpreter::run(
        b.build(), ctx, [&emits](const PrefetchEmit &) { ++emits; });
    EXPECT_EQ(res.cycles, ka.maxCycles);
    EXPECT_EQ(emits, ka.maxEmits);
}

TEST(AnalysisTest, LoopClassifiedAsWatchdogBounded)
{
    KernelBuilder b("loop");
    auto top = b.newLabel();
    b.li(1, 0).bind(top).addi(1, 1, 1).jmp(top);
    const auto ka = analysis::analyzeKernel(b.build());
    EXPECT_FALSE(ka.acyclic);
    EXPECT_TRUE(hasDiag(ka.diags, DiagCode::kWatchdogLoop));
    EXPECT_FALSE(ka.hasErrors()); // loops are legal, just unbounded
    EXPECT_EQ(ka.maxCycles, kMaxKernelSteps);

    EventContext ctx;
    const ExecResult res =
        Interpreter::run(b.build(), ctx, [](const PrefetchEmit &) {});
    EXPECT_EQ(res.exit, ExitReason::kStepLimit);
    EXPECT_EQ(res.cycles, ka.maxCycles);
}

// ---------------------------------------------------------------------
// Table-wide checks
// ---------------------------------------------------------------------

TEST(AnalysisTest, DetectsUnresolvedCallback)
{
    KernelTable t;
    KernelBuilder b("cb");
    b.vaddr(1).prefetchCb(1, 7).halt(); // id 7 doesn't exist
    t.add(b.build());
    const auto ta = analysis::analyzeTable(t);
    EXPECT_TRUE(ta.hasErrors());
    EXPECT_TRUE(
        hasDiag(ta.kernels[0].diags, DiagCode::kUnresolvedCallback, 1));
}

TEST(AnalysisTest, DetectsCallbackCycle)
{
    KernelTable t;
    KernelBuilder a("a");
    a.vaddr(1).prefetchCb(1, 1).halt();
    KernelBuilder b("b");
    b.vaddr(1).prefetchCb(1, 0).halt();
    t.add(a.build());
    t.add(b.build());
    const auto ta = analysis::analyzeTable(t);
    EXPECT_FALSE(ta.hasErrors()); // a storm lint, not an error
    EXPECT_TRUE(hasDiag(ta.tableDiags, DiagCode::kCallbackCycle));
}

TEST(AnalysisTest, SelfChainWithoutCycleIsClean)
{
    // a -> b -> halt: a DAG, no cycle warning.
    KernelTable t;
    KernelBuilder a("a");
    a.vaddr(1).prefetchCb(1, 1).halt();
    KernelBuilder b("b");
    b.vaddr(1).prefetch(1).halt();
    t.add(a.build());
    t.add(b.build());
    const auto ta = analysis::analyzeTable(t);
    EXPECT_FALSE(ta.hasErrors());
    EXPECT_FALSE(hasDiag(ta.tableDiags, DiagCode::kCallbackCycle));
}

TEST(AnalysisTest, DetectsCodeBudgetOverflow)
{
    KernelTable t;
    for (int k = 0; k < 2; ++k) {
        KernelBuilder b("big" + std::to_string(k));
        for (int i = 0; i < 550; ++i)
            b.nop();
        b.halt();
        t.add(b.build());
    }
    ASSERT_GT(t.totalBytes(), 4096u);
    const auto ta = analysis::analyzeTable(t);
    EXPECT_TRUE(hasDiag(ta.tableDiags, DiagCode::kCodeBudgetExceeded));
}

// ---------------------------------------------------------------------
// Strict registration gate
// ---------------------------------------------------------------------

TEST(AnalysisTest, StrictTableRejectsMalformedKernels)
{
    KernelTable t;
    EXPECT_TRUE(t.strict());
    EXPECT_THROW(
        t.add(rawKernel({Instr{Opcode::kJmp, 0, 0, 0, 40},
                         Instr{Opcode::kHalt, 0, 0, 0, 0}})),
        std::invalid_argument);
    EXPECT_THROW(t.add(rawKernel({})), std::invalid_argument);
    EXPECT_THROW(
        t.add(rawKernel({Instr{Opcode::kDivi, 1, 1, 0, 0},
                         Instr{Opcode::kHalt, 0, 0, 0, 0}})),
        std::invalid_argument);
    EXPECT_EQ(t.size(), 0u);
}

TEST(AnalysisTest, StrictTableAcceptsDynamicTrapsAndLocalCallbacks)
{
    // A kernel that *may* trap (div by a register) and one whose
    // callback id is not yet resolvable (the compiler registers with
    // local ids and patches them afterwards) must both pass: only
    // *proven* misbehaviour is rejected at add().
    KernelTable t;
    KernelBuilder dyn("dyn");
    // The divisor must be genuinely dynamic: a literal zero divisor is
    // now a proven guaranteed trap and is rejected at add().
    dyn.li(1, 1).vaddr(2).div(1, 1, 2).halt();
    EXPECT_NO_THROW(t.add(dyn.build()));
    KernelBuilder cb("cb");
    cb.vaddr(1).prefetchCb(1, 99).halt();
    EXPECT_NO_THROW(t.add(cb.build()));
}

TEST(AnalysisTest, NonStrictTableAcceptsAnything)
{
    KernelTable t;
    t.setStrict(false);
    EXPECT_NO_THROW(t.add(rawKernel({Instr{Opcode::kJmp, 0, 0, 0, 40}})));
    EXPECT_EQ(t.size(), 1u);
}

// ---------------------------------------------------------------------
// Diagnostics plumbing
// ---------------------------------------------------------------------

TEST(AnalysisTest, DiagFormatting)
{
    analysis::Diag d;
    d.severity = Severity::kError;
    d.pc = 3;
    d.code = DiagCode::kBadBranchTarget;
    d.message = "target 42 is outside [0, 4)";
    EXPECT_EQ(analysis::formatDiag(d),
              "pc 3: error: [bad-branch-target] target 42 is outside "
              "[0, 4)");
    d.pc = analysis::kNoPc;
    d.severity = Severity::kWarning;
    d.code = DiagCode::kCallbackCycle;
    d.message = "m";
    EXPECT_EQ(analysis::formatDiag(d), "warning: [callback-cycle] m");
}

} // namespace
} // namespace epf
