/**
 * @file
 * Tier-1 lint of every shipped kernel: the 8 workloads' handwritten
 * kernels (under their exact PPF-derived event contexts) and both
 * compiler passes' generated programs must carry zero errors, and the
 * warning set is pinned — a new warning anywhere fails the build until
 * it is either fixed or explicitly added to the golden list here.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "compiler/passes.hpp"
#include "compiler/verify.hpp"
#include "ppf/lint.hpp"
#include "sim/event_queue.hpp"
#include "workloads/workload.hpp"

namespace epf
{
namespace
{

/** "workload:kernel:[code]" for every warning; errors fail in place. */
std::vector<std::string>
collectWarnings(const std::string &wl, const KernelTable &table,
                const analysis::TableAnalysis &ta)
{
    std::vector<std::string> warnings;
    auto visit = [&](const std::string &kernel,
                     const std::vector<analysis::Diag> &diags) {
        for (const analysis::Diag &d : diags) {
            const std::string where = wl + ":" + kernel;
            EXPECT_NE(d.severity, analysis::Severity::kError)
                << where << ": " << analysis::formatDiag(d);
            // Every pc-anchored diag carries the disassembled
            // instruction text (kernel- and table-wide ones cannot).
            if (d.pc != analysis::kNoPc)
                EXPECT_FALSE(d.instrText.empty())
                    << where << ": " << analysis::formatDiag(d);
            warnings.push_back(where + ":[" +
                               analysis::diagCodeName(d.code) + "]");
        }
    };
    for (std::size_t i = 0; i < ta.kernels.size(); ++i)
        visit(table[static_cast<KernelId>(i)].name, ta.kernels[i].diags);
    visit("<table>", ta.tableDiags);
    return warnings;
}

TEST(LintWorkloads, ManualKernelsHaveNoErrorsAndPinnedWarnings)
{
    std::vector<std::string> warnings;
    for (const std::string &name : workloadNames()) {
        WorkloadScale sc;
        sc.factor = 0.02;
        auto wl = makeWorkload(name, sc);
        ASSERT_NE(wl, nullptr) << name;
        GuestMemory gm;
        wl->setup(gm, 42);

        EventQueue eq;
        PpfConfig cfg;
        ProgrammablePrefetcher ppf(eq, gm, cfg);
        wl->programManual(ppf);
        ASSERT_GT(ppf.kernels().size(), 0u) << name;

        const analysis::TableAnalysis ta = lintPrefetcher(ppf);
        const auto w = collectWarnings(name, ppf.kernels(), ta);
        warnings.insert(warnings.end(), w.begin(), w.end());
    }

    // The golden warning set.  G500-CSR's edge walkers contain real
    // loops (bounded dynamically by the vertex degree), so they are
    // watchdog-classified; everything else is warning-free.
    const std::vector<std::string> expected = {
        "G500-CSR:on_edges_prefetch:[watchdog-loop]",
        "G500-CSR:on_vertex_prefetch:[watchdog-loop]",
    };
    std::vector<std::string> got = warnings;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected)
        << "the workload kernel warning set changed; fix the kernel or "
           "re-pin the golden list";
}

TEST(LintWorkloads, CompilerProgramsLintClean)
{
    unsigned programs = 0;
    for (const std::string &name : workloadNames()) {
        WorkloadScale sc;
        sc.factor = 0.02;
        auto wl = makeWorkload(name, sc);
        ASSERT_NE(wl, nullptr) << name;
        GuestMemory gm;
        wl->setup(gm, 42);

        for (const auto &ir : wl->buildIR()) {
            for (const PassResult &res : {convertSoftwarePrefetches(*ir),
                                          generateFromPragma(*ir)}) {
                if (!res.ok)
                    continue;
                ++programs;
                const ProgramVerification pv = verifyProgram(res.program);
                EXPECT_FALSE(pv.hasErrors())
                    << name << ":\n" << pv.format(res.program);
                EXPECT_EQ(pv.diagCount(), 0u)
                    << name << ": generated code must be warning-free\n"
                    << pv.format(res.program);
                for (const analysis::KernelAnalysis &ka : pv.kernels) {
                    EXPECT_TRUE(ka.acyclic);
                    EXPECT_LE(ka.maxCycles, kMaxKernelSteps);
                }
            }
        }
    }
    EXPECT_GT(programs, 0u) << "no compiled programs were linted";
}

} // namespace
} // namespace epf
