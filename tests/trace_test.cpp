/**
 * @file
 * Trace subsystem tests (tier 1): binary format round-trip, corruption
 * detection, capture plumbing, and a fast single-cell capture/replay
 * equivalence check.  The full workload x technique replay matrix runs
 * in tests/trace_replay_test.cpp (tier 2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "runner/golden.hpp"
#include "runner/sweep.hpp"
#include "sim/rng.hpp"
#include "trace/trace.hpp"
#include "workloads/trace_workload.hpp"

namespace epf
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

MicroOp
op(MicroOp::Kind k, std::uint32_t instrs, Addr addr = 0,
   std::int16_t stream = -1, ValueId produces = 0, ValueId d0 = 0,
   ValueId d1 = 0)
{
    MicroOp o;
    o.kind = k;
    o.instrs = instrs;
    o.vaddr = addr;
    o.streamId = stream;
    o.produces = produces;
    o.deps = {d0, d1};
    return o;
}

/** Serialized stats with a neutral cell label, for equality checks. */
std::string
statsOf(Technique t, const RunResult &r)
{
    return goldenStatsJson({"cell", t}, r);
}

TEST(TraceFormat, RoundTripsEveryField)
{
    std::vector<std::uint64_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = i * 0x0101010101ULL;
    GuestMemory gmem;
    const Addr base = gmem.addRegion("t.data", data.data(),
                                     data.size() * sizeof(std::uint64_t));

    const std::string path = tmpPath("roundtrip.epftrace");
    std::vector<TraceRecord> want;
    {
        TraceWriter w(path, gmem, "G500-CSR", 0.25, 0x1234, true);
        const MicroOp ops[] = {
            op(MicroOp::Kind::Work, 7),
            op(MicroOp::Kind::Load, 1, base + 8, 3, 11),
            op(MicroOp::Kind::Work, 2, 0, -1, 12, 11),
            op(MicroOp::Kind::Store, 1, base + 256, 4, 0, 11, 12),
            op(MicroOp::Kind::SwPrefetch, 1, base + 0x4000, 5), // unmapped
            op(MicroOp::Kind::BranchMiss, 1, 0, -1, 0, 12),
            op(MicroOp::Kind::Load, 1, base, 0),
        };
        Tick tick = 0;
        for (const MicroOp &o : ops) {
            w.onMicroOp(tick, o);
            TraceRecord r;
            r.tick = tick;
            r.kind = o.kind;
            r.instrs = o.instrs;
            r.addr = TraceRecord::hasAddr(o.kind) ? o.vaddr : 0;
            r.streamId = TraceRecord::hasAddr(o.kind) ? o.streamId : -1;
            r.produces = o.produces;
            r.deps = {o.deps[0], o.deps[1]};
            want.push_back(r);
            tick += 5;
        }
        w.finalize(0xFEEDBEEF);
    }

    TraceReader r(path);
    EXPECT_EQ(r.meta().version, kTraceVersion);
    EXPECT_TRUE(r.meta().withSwpf());
    EXPECT_FALSE(r.meta().hasPfConfig());
    EXPECT_EQ(r.meta().seed, 0x1234u);
    EXPECT_DOUBLE_EQ(r.meta().scaleFactor, 0.25);
    EXPECT_EQ(r.meta().sourceWorkload, "G500-CSR");
    EXPECT_EQ(r.meta().workloadChecksum, 0xFEEDBEEFu);
    EXPECT_EQ(r.meta().recordCount, want.size());
    ASSERT_EQ(r.meta().regions.size(), 1u);
    EXPECT_EQ(r.meta().regions[0].name, "t.data");
    EXPECT_EQ(r.meta().regions[0].base, base);

    TraceRecord got;
    for (const TraceRecord &w_rec : want) {
        ASSERT_TRUE(r.next(got));
        EXPECT_EQ(got.tick, w_rec.tick);
        EXPECT_EQ(got.kind, w_rec.kind);
        EXPECT_EQ(got.instrs, w_rec.instrs);
        EXPECT_EQ(got.addr, w_rec.addr);
        EXPECT_EQ(got.streamId, w_rec.streamId);
        EXPECT_EQ(got.produces, w_rec.produces);
        EXPECT_EQ(got.deps, w_rec.deps);
    }
    EXPECT_FALSE(r.next(got));

    // rewind() restarts decoding from the first record.
    r.rewind();
    ASSERT_TRUE(r.next(got));
    EXPECT_EQ(got.kind, MicroOp::Kind::Work);
    EXPECT_EQ(got.instrs, 7u);
}

TEST(TraceFormat, PayloadCapturesLineAndDedups)
{
    std::vector<std::uint64_t> data(16, 0);
    GuestMemory gmem;
    const Addr base =
        gmem.addRegion("t.data", data.data(), data.size() * 8);

    const std::string path = tmpPath("payload.epftrace");
    {
        TraceWriter w(path, gmem, "", 1.0, 1, false);
        data[0] = 0xAA;
        w.onMicroOp(0, op(MicroOp::Kind::Store, 1, base, 0));
        // Same line, unchanged content: deduped, no payload.
        w.onMicroOp(5, op(MicroOp::Kind::Load, 1, base + 8, 1, 9));
        // Same line, changed content: fresh payload.
        data[1] = 0xBB;
        w.onMicroOp(10, op(MicroOp::Kind::Store, 1, base + 8, 0));
        w.finalize(0);
    }

    TraceReader r(path);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    ASSERT_EQ(rec.payloadLen, kLineBytes);
    std::uint64_t v0;
    std::memcpy(&v0, rec.payload.data(), 8);
    EXPECT_EQ(v0, 0xAAu);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.payloadLen, 0u); // deduped
    ASSERT_TRUE(r.next(rec));
    ASSERT_EQ(rec.payloadLen, kLineBytes);
    std::uint64_t v1;
    std::memcpy(&v1, rec.payload.data() + 8, 8);
    EXPECT_EQ(v1, 0xBBu);
}

TEST(TraceFormat, PayloadClipsToRegionEnd)
{
    // A region ending mid-line: the payload must stop at the boundary.
    std::vector<std::uint64_t> data(3, 0x55); // 24 bytes, line is 64
    GuestMemory gmem;
    const Addr base = gmem.addRegion("t.small", data.data(), 24);

    const std::string path = tmpPath("clip.epftrace");
    {
        TraceWriter w(path, gmem, "", 1.0, 1, false);
        w.onMicroOp(0, op(MicroOp::Kind::Store, 1, base + 16, 0));
        w.finalize(0);
    }
    TraceReader r(path);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.payloadLen, 24u);
}

TEST(TraceFormat, DetectsCorruptionAndTruncation)
{
    std::vector<std::uint64_t> data(8, 1);
    GuestMemory gmem;
    const Addr base = gmem.addRegion("t.data", data.data(), 64);
    const std::string path = tmpPath("corrupt.epftrace");
    {
        TraceWriter w(path, gmem, "RandAcc", 1.0, 1, false);
        for (int i = 0; i < 50; ++i)
            w.onMicroOp(i * 5, op(MicroOp::Kind::Load, 1, base, 1));
        w.finalize(42);
    }

    std::vector<char> bytes;
    {
        std::ifstream is(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(is), {});
    }

    // Flip one record byte: checksum mismatch.
    {
        auto mangled = bytes;
        mangled.back() ^= 0x40;
        const std::string p2 = tmpPath("corrupt2.epftrace");
        std::ofstream(p2, std::ios::binary)
            .write(mangled.data(), static_cast<long>(mangled.size()));
        EXPECT_THROW(TraceReader{p2}, std::runtime_error);
    }
    // Drop trailing bytes: truncation.
    {
        const std::string p3 = tmpPath("corrupt3.epftrace");
        std::ofstream(p3, std::ios::binary)
            .write(bytes.data(), static_cast<long>(bytes.size() - 7));
        EXPECT_THROW(TraceReader{p3}, std::runtime_error);
    }
    // Bad magic.
    {
        auto mangled = bytes;
        mangled[0] = 'X';
        const std::string p4 = tmpPath("corrupt4.epftrace");
        std::ofstream(p4, std::ios::binary)
            .write(mangled.data(), static_cast<long>(mangled.size()));
        EXPECT_THROW(TraceReader{p4}, std::runtime_error);
    }
    EXPECT_THROW(TraceReader{tmpPath("missing.epftrace")},
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Hostile-input hardening.  The fixed header layout these tests patch:
//   0 magic[8], 8 version, 12 flags, 16 seed, 24 scaleFactor bits,
//   32 recordCount, 40 streamChecksum, 48 workloadChecksum, 56 finalTick,
//   64 u16 source-name len + bytes, then u32 region count and per-region
//   {u16 name len + bytes, u64 base, u64 size}.
// ---------------------------------------------------------------------------

constexpr std::size_t kOffScale = 24;
constexpr std::size_t kOffRecCount = 32;
constexpr std::size_t kOffStreamSum = 40;

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::vector<char> raw{std::istreambuf_iterator<char>(is), {}};
    return {raw.begin(), raw.end()};
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream(path, std::ios::binary)
        .write(reinterpret_cast<const char *>(bytes.data()),
               static_cast<long>(bytes.size()));
}

void
putU64At(std::vector<std::uint8_t> &bytes, std::size_t off, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Where the record stream starts, recomputed from the header strings. */
std::size_t
recordsBeginOf(const TraceMeta &m)
{
    std::size_t at = 64 + 2 + m.sourceWorkload.size() + 4;
    for (const auto &r : m.regions)
        at += 2 + r.name.size() + 16;
    return at;
}

std::uint64_t
fnvOf(const std::vector<std::uint8_t> &bytes, std::size_t from)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t i = from; i < bytes.size(); ++i) {
        h ^= bytes[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** A small but representative capture: payloads, deps, produces. */
std::string
makeHostileSeedTrace(const std::string &name)
{
    static std::vector<std::uint64_t> data(64, 3);
    GuestMemory gmem;
    const Addr base = gmem.addRegion("t.data", data.data(), 64 * 8);
    const std::string path = tmpPath(name);
    TraceWriter w(path, gmem, "RandAcc", 1.0, 1, false);
    for (int i = 0; i < 40; ++i) {
        data[static_cast<std::size_t>(i) % 8] ^= 0x5A5A + i;
        w.onMicroOp(i * 3, op(MicroOp::Kind::Load, 2,
                              base + static_cast<Addr>(i % 8) * 8, 1,
                              static_cast<ValueId>(i + 1),
                              static_cast<ValueId>(i)));
    }
    w.finalize(42);
    return path;
}

TEST(TraceHardening, RejectsCorruptScaleFactor)
{
    const std::string path = makeHostileSeedTrace("hscale.epftrace");
    const auto bytes = readAll(path);
    const double bad[] = {std::nan(""), 0.0, -1.0, 1e300};
    for (double v : bad) {
        auto mangled = bytes;
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        putU64At(mangled, kOffScale, bits);
        const std::string p = tmpPath("hscale_bad.epftrace");
        writeAll(p, mangled);
        EXPECT_THROW(TraceReader{p}, std::runtime_error) << v;
    }
}

TEST(TraceHardening, RejectsCorruptRegionTable)
{
    const std::string path = makeHostileSeedTrace("hregion.epftrace");
    const auto bytes = readAll(path);
    // "RandAcc" is 7 bytes, so the region count lives at 64 + 2 + 7.
    const std::size_t off_nregions = 73;
    const std::size_t off_region_size = off_nregions + 4 + 2 + 6 + 8;

    // A region-count claim of 4 billion must fail as "corrupt", not as
    // an attempt to parse the whole file as region entries.
    auto mangled = bytes;
    putU64At(mangled, off_nregions, 0xFFFFFFFF'00000000ULL >> 32);
    const std::string p1 = tmpPath("hregion_count.epftrace");
    writeAll(p1, mangled);
    EXPECT_THROW(TraceReader{p1}, std::runtime_error);

    // A 2^60-byte region size must fail before replay tries to allocate
    // a buffer for it.
    mangled = bytes;
    putU64At(mangled, off_region_size, 1ULL << 60);
    const std::string p2 = tmpPath("hregion_size.epftrace");
    writeAll(p2, mangled);
    EXPECT_THROW(TraceReader{p2}, std::runtime_error);
}

TEST(TraceHardening, RejectsCorruptRecordCount)
{
    const std::string path = makeHostileSeedTrace("hcount.epftrace");
    auto mangled = readAll(path);
    putU64At(mangled, kOffRecCount, 1ULL << 40);
    const std::string p = tmpPath("hcount_bad.epftrace");
    writeAll(p, mangled);
    EXPECT_THROW(TraceReader{p}, std::runtime_error);
}

TEST(TraceHardening, FuzzedFilesNeverEscapeRuntimeError)
{
    // Deterministic corruption fuzz over the whole decoder.  Three
    // attack shapes: truncation, header flips, and record-byte flips
    // with the stream checksum fixed up afterwards (otherwise the
    // checksum gate catches everything before the varint decoder runs).
    // Every variant must either load cleanly or throw std::runtime_error
    // — any other escape (crash, bad_alloc, different exception type)
    // fails the test.
    const std::string path = makeHostileSeedTrace("hfuzz.epftrace");
    const auto bytes = readAll(path);
    const std::size_t records_begin = recordsBeginOf(TraceReader(path).meta());
    ASSERT_LT(records_begin, bytes.size());

    Rng rng(0xF022ED7'2ACEULL);
    const std::string p = tmpPath("hfuzz_case.epftrace");
    unsigned threw = 0;
    for (int iter = 0; iter < 400; ++iter) {
        auto mangled = bytes;
        switch (rng.below(3)) {
        case 0: // truncate anywhere, including mid-header
            mangled.resize(rng.below(mangled.size()));
            break;
        case 1: // flip 1..4 header bytes
            for (std::uint64_t k = rng.below(4) + 1; k > 0; --k)
                mangled[rng.below(records_begin)] ^=
                    static_cast<std::uint8_t>(1u << rng.below(8));
            break;
        default: // flip 1..4 record bytes, then re-seal the checksum
            for (std::uint64_t k = rng.below(4) + 1; k > 0; --k)
                mangled[records_begin +
                        rng.below(mangled.size() - records_begin)] ^=
                    static_cast<std::uint8_t>(1u << rng.below(8));
            putU64At(mangled, kOffStreamSum,
                     fnvOf(mangled, records_begin));
            break;
        }
        writeAll(p, mangled);
        try {
            TraceReader r(p);
            TraceRecord rec;
            while (r.next(rec)) {
            }
        } catch (const std::runtime_error &) {
            ++threw;
        }
    }
    // The fuzz must actually be reaching the error paths, not silently
    // producing valid files.
    EXPECT_GT(threw, 100u);
}

TEST(TraceCapture, CaptureRunMatchesUninstrumentedRun)
{
    // The fetch hook must be timing-invisible: a captured run's stats
    // equal the same run without capture.
    RunConfig cfg = goldenConfig(Technique::kManual);
    RunResult plain = runExperiment("IntSort", cfg);
    cfg.tracePath = tmpPath("intsort_manual.epftrace");
    RunResult captured = runExperiment("IntSort", cfg);
    EXPECT_EQ(statsOf(cfg.technique, plain),
              statsOf(cfg.technique, captured));

    TraceReader r(cfg.tracePath);
    EXPECT_EQ(r.meta().sourceWorkload, "IntSort");
    EXPECT_EQ(r.meta().workloadChecksum, plain.checksum);
    EXPECT_GT(r.meta().recordCount, 0u);
}

TEST(TraceReplay, ReplayReproducesLiveStats)
{
    // One fast cell of the acceptance matrix (the full grid is tier 2):
    // capture RandAcc under the manual-PPF technique, replay, compare
    // the full stats block byte for byte.
    RunConfig cfg = goldenConfig(Technique::kManual);
    cfg.tracePath = tmpPath("randacc_manual.epftrace");
    RunResult live = runExperiment("RandAcc", cfg);

    RunConfig replay_cfg = goldenConfig(Technique::kManual);
    RunResult replay =
        runExperiment("trace:" + cfg.tracePath, replay_cfg);
    EXPECT_EQ(statsOf(cfg.technique, live),
              statsOf(cfg.technique, replay));
}

TEST(TraceReplay, StandaloneReplayOfUnknownSource)
{
    // A trace captured *from a replay* records no source workload, so
    // replaying it exercises the standalone path: zero-filled regions
    // populated purely from recorded payloads.
    RunConfig cfg = goldenConfig(Technique::kNone);
    cfg.tracePath = tmpPath("is_none.epftrace");
    RunResult live = runExperiment("IntSort", cfg);

    RunConfig recap = goldenConfig(Technique::kNone);
    recap.tracePath = tmpPath("is_none_recap.epftrace");
    RunResult first = runExperiment("trace:" + cfg.tracePath, recap);
    EXPECT_EQ(statsOf(cfg.technique, live), statsOf(cfg.technique, first));

    TraceReader meta(recap.tracePath);
    EXPECT_EQ(meta.meta().sourceWorkload, "");

    RunResult standalone =
        runExperiment("trace:" + recap.tracePath, goldenConfig(cfg.technique));
    EXPECT_EQ(statsOf(cfg.technique, live),
              statsOf(cfg.technique, standalone));
}

TEST(TraceReplay, SoftwareUnavailableWithoutSwpfCapture)
{
    RunConfig cfg = goldenConfig(Technique::kNone);
    cfg.tracePath = tmpPath("cg_none.epftrace");
    runExperiment("ConjGrad", cfg);

    RunResult res = runExperiment("trace:" + cfg.tracePath,
                                  goldenConfig(Technique::kSoftware));
    EXPECT_FALSE(res.available);
}

TEST(TraceReplay, RegistryNames)
{
    ::unsetenv("EPF_TRACE");
    EXPECT_EQ(makeWorkload("Trace"), nullptr); // no EPF_TRACE set
    EXPECT_THROW(makeWorkload("trace:/nonexistent/file"),
                 std::runtime_error);

    RunConfig cfg = goldenConfig(Technique::kNone);
    cfg.scale.factor = 0.005;
    cfg.tracePath = tmpPath("registry.epftrace");
    runExperiment("RandAcc", cfg);
    ::setenv("EPF_TRACE", cfg.tracePath.c_str(), 1);
    auto wl = makeWorkload("Trace");
    ::unsetenv("EPF_TRACE");
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->name(), "Trace");
}

TEST(TraceSweep, TracePathExpandsAndLandsInJson)
{
    SweepEngine::Options opts;
    opts.threads = 2;
    SweepEngine engine(opts);
    RunConfig proto = goldenConfig(Technique::kNone);
    proto.scale.factor = 0.005;
    proto.tracePath = tmpPath("sweep_{workload}_{technique}.epftrace");
    engine.addGrid({"IntSort", "RandAcc"}, {Technique::kNone}, proto);
    auto outcomes = engine.run();
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &o : outcomes) {
        ASSERT_FALSE(o.failed) << o.error;
        // Placeholders expanded per cell...
        EXPECT_EQ(o.cell.config.tracePath,
                  tmpPath("sweep_" + o.cell.workload + "_None.epftrace"));
        // ...and the capture file really exists and replays.
        TraceReader r(o.cell.config.tracePath);
        EXPECT_EQ(r.meta().sourceWorkload, o.cell.workload);
    }

    std::ostringstream os;
    SweepEngine::writeJson(os, outcomes);
    EXPECT_NE(os.str().find("\"trace\": \"" +
                            tmpPath("sweep_IntSort_None.epftrace")),
              std::string::npos);
}

TEST(TraceSweep, LiteralPathCollisionsGetUniqueSuffixes)
{
    // A capture path without placeholders must not be shared across
    // cells: concurrent writers would interleave into one file.
    SweepEngine::Options opts;
    opts.threads = 2;
    SweepEngine engine(opts);
    RunConfig proto = goldenConfig(Technique::kNone);
    proto.scale.factor = 0.005;
    proto.tracePath = tmpPath("shared.epftrace");
    engine.add("IntSort", proto);
    engine.add("RandAcc", proto);
    auto outcomes = engine.run();
    ASSERT_EQ(outcomes.size(), 2u);
    ASSERT_FALSE(outcomes[0].failed) << outcomes[0].error;
    ASSERT_FALSE(outcomes[1].failed) << outcomes[1].error;
    EXPECT_NE(outcomes[0].cell.config.tracePath,
              outcomes[1].cell.config.tracePath);
    for (const auto &o : outcomes) {
        TraceReader r(o.cell.config.tracePath);
        EXPECT_EQ(r.meta().sourceWorkload, o.cell.workload);
        std::remove(o.cell.config.tracePath.c_str());
    }
}

} // namespace
} // namespace epf
