/**
 * @file
 * Disassembly-listing parser tests (src/isa/listing.hpp).
 *
 * The badbit regression matters most: ppulint used to treat a stream
 * failing mid-read as a clean end-of-file and lint only the prefix
 * that happened to arrive — a truncated listing could pass --werror.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <streambuf>

#include "isa/disasm.hpp"
#include "isa/listing.hpp"

namespace epf
{
namespace
{

TEST(ListingTest, ParsesHeadersCommentsAndIndexPrefixes)
{
    std::istringstream in("# a comment line\n"
                          "first:\n"
                          "  0: li r1, 8\n"
                          "  1: prefetch r1   # trailing comment\n"
                          "\n"
                          "second:\n"
                          "  halt\n");
    const ListingParse p = parseListing(in, "fallback");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.kernels.size(), 2u);
    EXPECT_EQ(p.kernels[0].name, "first");
    ASSERT_EQ(p.kernels[0].code.size(), 2u);
    EXPECT_EQ(p.kernels[0].code[0].op, Opcode::kLi);
    EXPECT_EQ(p.kernels[0].code[1].op, Opcode::kPrefetch);
    EXPECT_EQ(p.kernels[1].name, "second");
    ASSERT_EQ(p.kernels[1].code.size(), 1u);
    EXPECT_EQ(p.kernels[1].code[0].op, Opcode::kHalt);
}

TEST(ListingTest, HeaderlessListingIsOneKernelNamedByFallback)
{
    std::istringstream in("li r2, 1\nhalt\n");
    const ListingParse p = parseListing(in, "file.s");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.kernels.size(), 1u);
    EXPECT_EQ(p.kernels[0].name, "file.s");
    EXPECT_EQ(p.kernels[0].code.size(), 2u);
}

TEST(ListingTest, ReportsParseErrorWithLineNumber)
{
    std::istringstream in("k:\n  li r1, 8\n  frobnicate r2\n");
    const ListingParse p = parseListing(in, "f");
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.error.find("line 3"), std::string::npos) << p.error;
}

TEST(ListingTest, RoundTripsDisassembledKernel)
{
    Kernel k{"roundtrip",
             {Instr{Opcode::kVaddr, 1, 0, 0, 0},
              Instr{Opcode::kAddi, 1, 1, 0, 64},
              Instr{Opcode::kPrefetch, 0, 1, 0, 0},
              Instr{Opcode::kHalt, 0, 0, 0, 0}}};
    std::istringstream in(disassemble(k));
    const ListingParse p = parseListing(in, "f");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.kernels.size(), 1u);
    EXPECT_EQ(p.kernels[0].name, "roundtrip");
    ASSERT_EQ(p.kernels[0].code.size(), k.code.size());
    for (std::size_t i = 0; i < k.code.size(); ++i)
        EXPECT_EQ(disassemble(p.kernels[0].code[i]),
                  disassemble(k.code[i]));
}

/** Serves one buffer, then fails the stream (badbit) on refill. */
class FailingBuf : public std::streambuf
{
  public:
    explicit FailingBuf(std::string head) : head_(std::move(head))
    {
        setg(head_.data(), head_.data(), head_.data() + head_.size());
    }

  protected:
    int_type
    underflow() override
    {
        throw std::ios_base::failure("simulated read failure");
    }

  private:
    std::string head_;
};

TEST(ListingTest, MidStreamReadFailureIsAnErrorNotATruncatedParse)
{
    // The valid prefix parses, then the device dies.  The old code
    // path returned the prefix as a successful parse.
    FailingBuf buf("k:\n  li r1, 8\n  halt\n");
    std::istream in(&buf);
    const ListingParse p = parseListing(in, "f");
    ASSERT_TRUE(in.bad());
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.error.find("I/O error"), std::string::npos) << p.error;
}

} // namespace
} // namespace epf
