/**
 * @file
 * Disassembly-listing parser tests (src/isa/listing.hpp).
 *
 * The badbit regression matters most: ppulint used to treat a stream
 * failing mid-read as a clean end-of-file and lint only the prefix
 * that happened to arrive — a truncated listing could pass --werror.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <streambuf>

#ifdef EPF_PPULINT_BIN
#include <sys/wait.h>
#endif

#include "isa/disasm.hpp"
#include "isa/listing.hpp"

namespace epf
{
namespace
{

TEST(ListingTest, ParsesHeadersCommentsAndIndexPrefixes)
{
    std::istringstream in("# a comment line\n"
                          "first:\n"
                          "  0: li r1, 8\n"
                          "  1: prefetch r1   # trailing comment\n"
                          "\n"
                          "second:\n"
                          "  halt\n");
    const ListingParse p = parseListing(in, "fallback");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.kernels.size(), 2u);
    EXPECT_EQ(p.kernels[0].name, "first");
    ASSERT_EQ(p.kernels[0].code.size(), 2u);
    EXPECT_EQ(p.kernels[0].code[0].op, Opcode::kLi);
    EXPECT_EQ(p.kernels[0].code[1].op, Opcode::kPrefetch);
    EXPECT_EQ(p.kernels[1].name, "second");
    ASSERT_EQ(p.kernels[1].code.size(), 1u);
    EXPECT_EQ(p.kernels[1].code[0].op, Opcode::kHalt);
}

TEST(ListingTest, HeaderlessListingIsOneKernelNamedByFallback)
{
    std::istringstream in("li r2, 1\nhalt\n");
    const ListingParse p = parseListing(in, "file.s");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.kernels.size(), 1u);
    EXPECT_EQ(p.kernels[0].name, "file.s");
    EXPECT_EQ(p.kernels[0].code.size(), 2u);
}

TEST(ListingTest, ReportsParseErrorWithLineNumber)
{
    std::istringstream in("k:\n  li r1, 8\n  frobnicate r2\n");
    const ListingParse p = parseListing(in, "f");
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.error.find("line 3"), std::string::npos) << p.error;
}

TEST(ListingTest, RoundTripsDisassembledKernel)
{
    Kernel k{"roundtrip",
             {Instr{Opcode::kVaddr, 1, 0, 0, 0},
              Instr{Opcode::kAddi, 1, 1, 0, 64},
              Instr{Opcode::kPrefetch, 0, 1, 0, 0},
              Instr{Opcode::kHalt, 0, 0, 0, 0}}};
    std::istringstream in(disassemble(k));
    const ListingParse p = parseListing(in, "f");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.kernels.size(), 1u);
    EXPECT_EQ(p.kernels[0].name, "roundtrip");
    ASSERT_EQ(p.kernels[0].code.size(), k.code.size());
    for (std::size_t i = 0; i < k.code.size(); ++i)
        EXPECT_EQ(disassemble(p.kernels[0].code[i]),
                  disassemble(k.code[i]));
}

/** Serves one buffer, then fails the stream (badbit) on refill. */
class FailingBuf : public std::streambuf
{
  public:
    explicit FailingBuf(std::string head) : head_(std::move(head))
    {
        setg(head_.data(), head_.data(), head_.data() + head_.size());
    }

  protected:
    int_type
    underflow() override
    {
        throw std::ios_base::failure("simulated read failure");
    }

  private:
    std::string head_;
};

TEST(ListingTest, MidStreamReadFailureIsAnErrorNotATruncatedParse)
{
    // The valid prefix parses, then the device dies.  The old code
    // path returned the prefix as a successful parse.
    FailingBuf buf("k:\n  li r1, 8\n  halt\n");
    std::istream in(&buf);
    const ListingParse p = parseListing(in, "f");
    ASSERT_TRUE(in.bad());
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.error.find("I/O error"), std::string::npos) << p.error;
}

#ifdef EPF_PPULINT_BIN
/**
 * CLI regression for the exit-code / report interplay: --werror must
 * turn a warnings-only lint into exit status 1 WITHOUT curtailing the
 * --json report — the full diagnostic list has to land on disk before
 * the nonzero exit.
 */
TEST(PpulintCliTest, WerrorJsonExitsNonzeroAndWritesFullReport)
{
    const std::string dir = ::testing::TempDir();
    const std::string listing = dir + "/warnonly.s";
    const std::string json = dir + "/ppulint_report.json";
    {
        // add reads r2/r3 before any definition: two uninit-read
        // warnings, zero errors.
        std::ofstream out(listing);
        out << "warnonly:\n  add r1, r2, r3\n  prefetch r1\n  halt\n";
        ASSERT_TRUE(out.good());
    }
    std::remove(json.c_str());

    const auto runLint = [&](const std::string &flags) {
        const std::string cmd = std::string(EPF_PPULINT_BIN) + " " + flags +
                                " " + listing + " > /dev/null 2>&1";
        const int rc = std::system(cmd.c_str());
        return WEXITSTATUS(rc);
    };

    // Warnings alone are not fatal by default.
    EXPECT_EQ(runLint(""), 0);
    // With --werror they are, even when --json is also requested.
    EXPECT_EQ(runLint("--werror --json " + json), 1);

    std::ifstream is(json);
    ASSERT_TRUE(is) << "nonzero exit suppressed the JSON report";
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string report = ss.str();
    EXPECT_NE(report.find("\"errors\": 0"), std::string::npos) << report;
    EXPECT_EQ(report.find("\"warnings\": 0,"), std::string::npos) << report;
    EXPECT_NE(report.find("\"diags\": ["), std::string::npos) << report;
    EXPECT_NE(report.find("\"severity\": \"warning\""), std::string::npos)
        << report;
}
#endif // EPF_PPULINT_BIN

} // namespace
} // namespace epf
