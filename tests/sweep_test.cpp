/**
 * @file
 * Tests for the parallel sweep engine: deterministic per-cell seed
 * derivation, identical results at any thread count, grid layout,
 * dataset pinning via seedAs, failure isolation and JSON emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runner/sweep.hpp"

namespace epf
{
namespace
{

constexpr double kTinyScale = 0.02;

SweepEngine
engineWith(unsigned threads)
{
    SweepEngine::Options opts;
    opts.threads = threads;
    return SweepEngine(opts);
}

RunConfig
tinyConfig(Technique t)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = kTinyScale;
    return cfg;
}

TEST(DeriveCellSeedTest, StableAndDecorrelated)
{
    const std::uint64_t s =
        deriveCellSeed(1, "RandAcc", Technique::kStride);
    EXPECT_EQ(s, deriveCellSeed(1, "RandAcc", Technique::kStride));
    EXPECT_NE(s, deriveCellSeed(2, "RandAcc", Technique::kStride));
    EXPECT_NE(s, deriveCellSeed(1, "IntSort", Technique::kStride));
    EXPECT_NE(s, deriveCellSeed(1, "RandAcc", Technique::kNone));
}

TEST(SweepEngineTest, GridLayoutIsRowMajor)
{
    SweepEngine e = engineWith(1);
    e.addGrid({"RandAcc", "IntSort"},
              {Technique::kNone, Technique::kStride},
              tinyConfig(Technique::kNone));
    ASSERT_EQ(e.size(), 4u);
    EXPECT_EQ(e.cells()[0].workload, "RandAcc");
    EXPECT_EQ(e.cells()[0].config.technique, Technique::kNone);
    EXPECT_EQ(e.cells()[1].workload, "RandAcc");
    EXPECT_EQ(e.cells()[1].config.technique, Technique::kStride);
    EXPECT_EQ(e.cells()[2].workload, "IntSort");
    EXPECT_EQ(e.cells()[3].label, techniqueName(Technique::kStride));
}

/** The acceptance property: a grid run with 1 thread and with N
 *  threads yields identical RunResults cell for cell. */
TEST(SweepEngineTest, ThreadCountDoesNotChangeResults)
{
    const std::vector<std::string> wls = {"RandAcc", "IntSort"};
    const std::vector<Technique> techs = {Technique::kNone,
                                          Technique::kStride};

    SweepEngine serial = engineWith(1);
    serial.addGrid(wls, techs, tinyConfig(Technique::kNone));
    const auto a = serial.run();

    SweepEngine pooled = engineWith(4);
    pooled.addGrid(wls, techs, tinyConfig(Technique::kNone));
    const auto b = pooled.run();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].cell.workload + "/" + a[i].cell.label);
        EXPECT_FALSE(a[i].failed);
        EXPECT_FALSE(b[i].failed);
        EXPECT_EQ(a[i].cell.config.seed, b[i].cell.config.seed);
        EXPECT_EQ(a[i].result.checksum, b[i].result.checksum);
        EXPECT_EQ(a[i].result.cycles, b[i].result.cycles);
        EXPECT_EQ(a[i].result.instrs, b[i].result.instrs);
        EXPECT_EQ(a[i].result.dramReads, b[i].result.dramReads);
    }
}

TEST(SweepEngineTest, SeedAsPinsTheDataset)
{
    // Pinning every column to kNone's seed makes all techniques run the
    // same workload instance: functional checksums must agree.
    SweepEngine e = engineWith(2);
    e.addGrid({"RandAcc"}, {Technique::kNone, Technique::kStride},
              tinyConfig(Technique::kNone), Technique::kNone);
    const auto out = e.run();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].cell.config.seed, out[1].cell.config.seed);
    EXPECT_EQ(out[0].result.checksum, out[1].result.checksum);

    // Without pinning, the techniques get decorrelated datasets.
    SweepEngine e2 = engineWith(2);
    e2.addGrid({"RandAcc"}, {Technique::kNone, Technique::kStride},
               tinyConfig(Technique::kNone));
    const auto out2 = e2.run();
    EXPECT_NE(out2[0].cell.config.seed, out2[1].cell.config.seed);
}

TEST(SweepEngineTest, FailedCellDoesNotAbortSweep)
{
    SweepEngine e = engineWith(2);
    e.add("NoSuchWorkload", tinyConfig(Technique::kNone));
    e.add("RandAcc", tinyConfig(Technique::kNone));
    const auto out = e.run();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].failed);
    EXPECT_NE(out[0].error.find("NoSuchWorkload"), std::string::npos);
    EXPECT_FALSE(out[1].failed);
    EXPECT_GT(out[1].result.cycles, 0u);
}

TEST(SweepEngineTest, ProgressCallbackSeesEveryCell)
{
    SweepEngine::Options opts;
    opts.threads = 2;
    std::size_t calls = 0;
    std::size_t last_total = 0;
    opts.progress = [&](std::size_t, std::size_t total,
                        const SweepOutcome &) {
        ++calls;
        last_total = total;
    };
    SweepEngine e(opts);
    e.add("RandAcc", tinyConfig(Technique::kNone));
    e.add("IntSort", tinyConfig(Technique::kNone));
    e.run();
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(last_total, 2u);
}

TEST(SweepEngineTest, RunClearsTheQueue)
{
    SweepEngine e = engineWith(1);
    e.add("RandAcc", tinyConfig(Technique::kNone));
    EXPECT_EQ(e.size(), 1u);
    e.run();
    EXPECT_EQ(e.size(), 0u);
    EXPECT_TRUE(e.run().empty());
}

TEST(SweepJsonTest, EmitsWellFormedRecords)
{
    SweepEngine e = engineWith(2);
    e.add("RandAcc", tinyConfig(Technique::kNone), "baseline");
    e.add("NoSuchWorkload", tinyConfig(Technique::kNone));
    const auto out = e.run();

    std::ostringstream os;
    SweepEngine::writeJson(os, out, /*detail=*/true);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"workload\": \"RandAcc\""), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"baseline\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": "), std::string::npos);
    // Checksums are emitted as strings (they exceed 2^53).
    EXPECT_NE(json.find("\"checksum\": \""), std::string::npos);
    EXPECT_NE(json.find("\"detail\": {"), std::string::npos);
    EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
    // Crude balance check on the array brackets.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("]\n"), std::string::npos);
}

} // namespace
} // namespace epf
