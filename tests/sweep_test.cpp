/**
 * @file
 * Tests for the parallel sweep engine: deterministic per-cell seed
 * derivation, identical results at any thread count, grid layout,
 * dataset pinning via seedAs, failure isolation and JSON emission.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>

#include "../bench/bench_common.hpp"
#include "runner/sweep.hpp"

namespace epf
{
namespace
{

constexpr double kTinyScale = 0.02;

SweepEngine
engineWith(unsigned threads)
{
    SweepEngine::Options opts;
    opts.threads = threads;
    return SweepEngine(opts);
}

RunConfig
tinyConfig(Technique t)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = kTinyScale;
    return cfg;
}

TEST(DeriveCellSeedTest, StableAndDecorrelated)
{
    const std::uint64_t s =
        deriveCellSeed(1, "RandAcc", Technique::kStride);
    EXPECT_EQ(s, deriveCellSeed(1, "RandAcc", Technique::kStride));
    EXPECT_NE(s, deriveCellSeed(2, "RandAcc", Technique::kStride));
    EXPECT_NE(s, deriveCellSeed(1, "IntSort", Technique::kStride));
    EXPECT_NE(s, deriveCellSeed(1, "RandAcc", Technique::kNone));
}

TEST(SweepEngineTest, GridLayoutIsRowMajor)
{
    SweepEngine e = engineWith(1);
    e.addGrid({"RandAcc", "IntSort"},
              {Technique::kNone, Technique::kStride},
              tinyConfig(Technique::kNone));
    ASSERT_EQ(e.size(), 4u);
    EXPECT_EQ(e.cells()[0].workload, "RandAcc");
    EXPECT_EQ(e.cells()[0].config.technique, Technique::kNone);
    EXPECT_EQ(e.cells()[1].workload, "RandAcc");
    EXPECT_EQ(e.cells()[1].config.technique, Technique::kStride);
    EXPECT_EQ(e.cells()[2].workload, "IntSort");
    EXPECT_EQ(e.cells()[3].label, techniqueName(Technique::kStride));
}

/** The acceptance property: a grid run with 1 thread and with N
 *  threads yields identical RunResults cell for cell. */
TEST(SweepEngineTest, ThreadCountDoesNotChangeResults)
{
    const std::vector<std::string> wls = {"RandAcc", "IntSort"};
    const std::vector<Technique> techs = {Technique::kNone,
                                          Technique::kStride};

    SweepEngine serial = engineWith(1);
    serial.addGrid(wls, techs, tinyConfig(Technique::kNone));
    const auto a = serial.run();

    SweepEngine pooled = engineWith(4);
    pooled.addGrid(wls, techs, tinyConfig(Technique::kNone));
    const auto b = pooled.run();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].cell.workload + "/" + a[i].cell.label);
        EXPECT_FALSE(a[i].failed);
        EXPECT_FALSE(b[i].failed);
        EXPECT_EQ(a[i].cell.config.seed, b[i].cell.config.seed);
        EXPECT_EQ(a[i].result.checksum, b[i].result.checksum);
        EXPECT_EQ(a[i].result.cycles, b[i].result.cycles);
        EXPECT_EQ(a[i].result.instrs, b[i].result.instrs);
        EXPECT_EQ(a[i].result.dramReads, b[i].result.dramReads);
    }
}

TEST(SweepEngineTest, SeedAsPinsTheDataset)
{
    // Pinning every column to kNone's seed makes all techniques run the
    // same workload instance: functional checksums must agree.
    SweepEngine e = engineWith(2);
    e.addGrid({"RandAcc"}, {Technique::kNone, Technique::kStride},
              tinyConfig(Technique::kNone), Technique::kNone);
    const auto out = e.run();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].cell.config.seed, out[1].cell.config.seed);
    EXPECT_EQ(out[0].result.checksum, out[1].result.checksum);

    // Without pinning, the techniques get decorrelated datasets.
    SweepEngine e2 = engineWith(2);
    e2.addGrid({"RandAcc"}, {Technique::kNone, Technique::kStride},
               tinyConfig(Technique::kNone));
    const auto out2 = e2.run();
    EXPECT_NE(out2[0].cell.config.seed, out2[1].cell.config.seed);
}

TEST(SweepEngineTest, FailedCellDoesNotAbortSweep)
{
    SweepEngine e = engineWith(2);
    e.add("NoSuchWorkload", tinyConfig(Technique::kNone));
    e.add("RandAcc", tinyConfig(Technique::kNone));
    const auto out = e.run();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].failed);
    EXPECT_NE(out[0].error.find("NoSuchWorkload"), std::string::npos);
    EXPECT_FALSE(out[1].failed);
    EXPECT_GT(out[1].result.cycles, 0u);
}

TEST(SweepEngineTest, ProgressCallbackSeesEveryCell)
{
    SweepEngine::Options opts;
    opts.threads = 2;
    std::size_t calls = 0;
    std::size_t last_total = 0;
    opts.progress = [&](std::size_t, std::size_t total,
                        const SweepOutcome &) {
        ++calls;
        last_total = total;
    };
    SweepEngine e(opts);
    e.add("RandAcc", tinyConfig(Technique::kNone));
    e.add("IntSort", tinyConfig(Technique::kNone));
    e.run();
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(last_total, 2u);
}

TEST(SweepEngineTest, RunClearsTheQueue)
{
    SweepEngine e = engineWith(1);
    e.add("RandAcc", tinyConfig(Technique::kNone));
    EXPECT_EQ(e.size(), 1u);
    e.run();
    EXPECT_EQ(e.size(), 0u);
    EXPECT_TRUE(e.run().empty());
}

TEST(SweepJsonTest, EmitsWellFormedRecords)
{
    SweepEngine e = engineWith(2);
    e.add("RandAcc", tinyConfig(Technique::kNone), "baseline");
    e.add("NoSuchWorkload", tinyConfig(Technique::kNone));
    const auto out = e.run();

    std::ostringstream os;
    SweepEngine::writeJson(os, out, /*detail=*/true);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"workload\": \"RandAcc\""), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"baseline\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": "), std::string::npos);
    // Checksums are emitted as strings (they exceed 2^53).
    EXPECT_NE(json.find("\"checksum\": \""), std::string::npos);
    EXPECT_NE(json.find("\"detail\": {"), std::string::npos);
    EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
    // Crude balance check on the array brackets.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("]\n"), std::string::npos);
}

/** Scoped setenv/unsetenv that restores the previous value. */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvVar()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_ = false;
    std::string old_;
};

/**
 * Minimal recursive-descent JSON reader: validates syntax and collects
 * every object key it sees.  Enough to prove the emitted sweep dump is
 * real JSON with the documented schema, without external dependencies.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return at_ == s_.size();
    }

    const std::set<std::string> &keys() const { return keys_; }

  private:
    bool
    value()
    {
        if (at_ >= s_.size())
            return false;
        const char c = s_[at_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string(nullptr);
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++at_; // '{'
        skipWs();
        if (peek() == '}') {
            ++at_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            keys_.insert(key);
            skipWs();
            if (peek() != ':')
                return false;
            ++at_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++at_;
                continue;
            }
            if (peek() == '}') {
                ++at_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++at_; // '['
        skipWs();
        if (peek() == ']') {
            ++at_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++at_;
                continue;
            }
            if (peek() == ']') {
                ++at_;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string *out)
    {
        if (peek() != '"')
            return false;
        ++at_;
        std::string v;
        while (at_ < s_.size() && s_[at_] != '"') {
            if (s_[at_] == '\\') {
                if (at_ + 1 >= s_.size())
                    return false;
                ++at_;
            }
            v += s_[at_++];
        }
        if (at_ >= s_.size())
            return false;
        ++at_; // closing quote
        if (out != nullptr)
            *out = v;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = at_;
        while (at_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[at_])) ||
                s_[at_] == '-' || s_[at_] == '+' || s_[at_] == '.' ||
                s_[at_] == 'e' || s_[at_] == 'E'))
            ++at_;
        return at_ > start;
    }

    bool
    literal(const std::string &lit)
    {
        if (s_.compare(at_, lit.size(), lit) != 0)
            return false;
        at_ += lit.size();
        return true;
    }

    void
    skipWs()
    {
        while (at_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[at_])))
            ++at_;
    }

    char peek() const { return at_ < s_.size() ? s_[at_] : '\0'; }

    std::string s_;
    std::size_t at_ = 0;
    std::set<std::string> keys_;
};

TEST(SweepEnvTest, ThreadsKnobRoundTrips)
{
    {
        EnvVar t("EPF_THREADS", "3");
        EXPECT_EQ(sweepThreadsFromEnv(0), 3u);
        EXPECT_EQ(sweepThreadsFromEnv(7), 3u);
    }
    {
        EnvVar t("EPF_THREADS", nullptr);
        EXPECT_EQ(sweepThreadsFromEnv(7), 7u);
    }
    {
        // Junk and non-positive values fall back.
        EnvVar t("EPF_THREADS", "bogus");
        EXPECT_EQ(sweepThreadsFromEnv(5), 5u);
    }
    {
        EnvVar t("EPF_THREADS", "-2");
        EXPECT_EQ(sweepThreadsFromEnv(5), 5u);
    }
}

TEST(SweepEnvTest, SeedAndThreadsReachTheEmittedJson)
{
    // The harness path every fig/table binary takes: environment ->
    // engine options -> derived per-cell seeds -> JSON dump.
    EnvVar t("EPF_THREADS", "2");
    EnvVar s("EPF_SEED", "0xABCD1234");
    EnvVar p("EPF_PROGRESS", nullptr);

    SweepEngine engine = bench::makeEngine();
    RunConfig proto = tinyConfig(Technique::kStride);
    engine.add("IntSort", proto);
    engine.add("RandAcc", proto);
    const auto outcomes = engine.run();
    ASSERT_EQ(outcomes.size(), 2u);

    // EPF_SEED drove every cell's derived seed.
    EXPECT_EQ(outcomes[0].cell.config.seed,
              deriveCellSeed(0xABCD1234, "IntSort", Technique::kStride));
    EXPECT_EQ(outcomes[1].cell.config.seed,
              deriveCellSeed(0xABCD1234, "RandAcc", Technique::kStride));

    std::ostringstream os;
    SweepEngine::writeJson(os, outcomes, /*detail=*/true);
    const std::string json = os.str();

    // The dump is real JSON...
    JsonChecker checker(json);
    ASSERT_TRUE(checker.parse()) << json;

    // ...with the documented schema keys...
    for (const char *key :
         {"workload", "technique", "label", "seed", "cores", "cycles",
          "instrs", "ticks", "l1ReadHitRate", "l2HitRate",
          "pfUtilisation", "l1PrefetchFills", "dramReads", "dramWrites",
          "checksum", "detail", "hostSeconds"})
        EXPECT_TRUE(checker.keys().count(key) != 0) << key;
    // ...including the split store-retry counter in the detail block.
    EXPECT_TRUE(checker.keys().count("mem.storeRetries") != 0);
    EXPECT_TRUE(checker.keys().count("mem.loadRetries") != 0);

    // The derived seeds appear verbatim (decimal strings).
    EXPECT_NE(json.find("\"seed\": \"" +
                        std::to_string(outcomes[0].cell.config.seed) +
                        "\""),
              std::string::npos);
}

} // namespace
} // namespace epf
