/**
 * @file
 * ppulint — static analysis front end for PPU kernels.
 *
 *   ./build/ppulint --workloads          lint every registered
 *                                        workload's manual kernels and
 *                                        each workload's compiled
 *                                        programs, under the exact
 *                                        event contexts the prefetcher
 *                                        configuration implies
 *   ./build/ppulint file.s [file2.s...]  lint disassembly listings
 *                                        (the disassemble(Kernel)
 *                                        format: "name:" then one
 *                                        "  N: instr" line per
 *                                        instruction; '#' comments and
 *                                        blank lines ignored)
 *
 * Every diagnostic prints as file:kernel:pc: severity: [code] message.
 * Exit status: 2 on usage/parse problems, 1 if any kernel has errors
 * (or, with --werror, any diagnostic at all), 0 when clean.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/passes.hpp"
#include "compiler/verify.hpp"
#include "isa/analysis/verifier.hpp"
#include "isa/disasm.hpp"
#include "ppf/lint.hpp"
#include "sim/event_queue.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace epf;

struct Counts
{
    unsigned errors = 0;
    unsigned warnings = 0;
    unsigned kernels = 0;

    void
    tally(const std::vector<analysis::Diag> &diags)
    {
        for (const analysis::Diag &d : diags)
            (d.severity == analysis::Severity::kError ? errors
                                                      : warnings)++;
    }
};

void
printDiags(const std::string &where, const std::string &kernel,
           const std::vector<analysis::Diag> &diags)
{
    for (const analysis::Diag &d : diags) {
        std::cout << where << ":" << kernel;
        if (d.pc != analysis::kNoPc)
            std::cout << ":" << d.pc;
        std::cout << ": " << analysis::severityName(d.severity) << ": ["
                  << analysis::diagCodeName(d.code) << "] " << d.message
                  << "\n";
    }
}

/** Parse a disassembly listing into kernels. */
bool
parseListing(const std::string &path, std::vector<Kernel> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "ppulint: cannot open " << path << "\n";
        return false;
    }
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        std::size_t e = line.find_last_not_of(" \t\r");
        std::string t = line.substr(b, e - b + 1);
        if (t.back() == ':' && t.find(' ') == std::string::npos) {
            out.push_back({t.substr(0, t.size() - 1), {}});
            continue;
        }
        // "N: instr" — the index prefix is optional.
        const std::size_t colon = t.find(':');
        if (colon != std::string::npos &&
            t.find_first_not_of("0123456789", 0) == colon)
            t = t.substr(colon + 1);
        if (out.empty())
            out.push_back({path, {}}); // headerless listing: one kernel
        try {
            out.back().code.push_back(parseInstr(t));
        } catch (const std::invalid_argument &ex) {
            std::cerr << path << ":" << lineno << ": parse error: "
                      << ex.what() << "\n";
            return false;
        }
    }
    return true;
}

int
lintFiles(const std::vector<std::string> &paths, bool werror)
{
    Counts c;
    for (const std::string &path : paths) {
        std::vector<Kernel> kernels;
        if (!parseListing(path, kernels))
            return 2;
        // A listing is a standalone kernel set: analyze it as its own
        // table so prefetch.cb references between listed kernels (by
        // position) resolve, without any event-context assumptions.
        KernelTable table;
        table.setStrict(false);
        for (Kernel &k : kernels)
            table.add(std::move(k));
        const analysis::TableAnalysis ta = analysis::analyzeTable(table);
        for (std::size_t i = 0; i < ta.kernels.size(); ++i) {
            printDiags(path, table[static_cast<KernelId>(i)].name,
                       ta.kernels[i].diags);
            c.tally(ta.kernels[i].diags);
            ++c.kernels;
        }
        printDiags(path, "<table>", ta.tableDiags);
        c.tally(ta.tableDiags);
    }
    std::cout << c.kernels << " kernel(s): " << c.errors << " error(s), "
              << c.warnings << " warning(s)\n";
    return c.errors != 0 || (werror && c.warnings != 0) ? 1 : 0;
}

int
lintWorkloads(bool werror)
{
    Counts c;
    for (const std::string &name : workloadNames()) {
        WorkloadScale sc;
        sc.factor = 0.02; // kernels don't depend on the data scale
        auto wl = makeWorkload(name, sc);
        GuestMemory gm;
        wl->setup(gm, 42);

        EventQueue eq;
        PpfConfig cfg;
        ProgrammablePrefetcher ppf(eq, gm, cfg);
        wl->programManual(ppf);

        const analysis::TableAnalysis ta = lintPrefetcher(ppf);
        for (std::size_t i = 0; i < ta.kernels.size(); ++i) {
            printDiags(name, ppf.kernels()[static_cast<KernelId>(i)].name,
                       ta.kernels[i].diags);
            c.tally(ta.kernels[i].diags);
            ++c.kernels;
        }
        printDiags(name, "<table>", ta.tableDiags);
        c.tally(ta.tableDiags);

        // The compiler paths: verify whatever the passes produce from
        // this workload's IR.
        for (const auto &ir : wl->buildIR()) {
            for (const PassResult &res :
                 {convertSoftwarePrefetches(*ir), generateFromPragma(*ir)}) {
                if (!res.ok)
                    continue;
                const ProgramVerification pv = verifyProgram(res.program);
                for (std::size_t i = 0; i < pv.kernels.size(); ++i) {
                    printDiags(name, res.program.kernels[i].name,
                               pv.kernels[i].diags);
                    c.tally(pv.kernels[i].diags);
                    ++c.kernels;
                }
                printDiags(name, "<program>", pv.programDiags);
                c.tally(pv.programDiags);
            }
        }
    }
    std::cout << c.kernels << " kernel(s): " << c.errors << " error(s), "
              << c.warnings << " warning(s)\n";
    return c.errors != 0 || (werror && c.warnings != 0) ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false;
    bool workloads = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--werror")
            werror = true;
        else if (arg == "--workloads")
            workloads = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: ppulint [--werror] --workloads | "
                         "file.s [file2.s...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ppulint: unknown option " << arg << "\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (workloads && paths.empty())
        return lintWorkloads(werror);
    if (!workloads && !paths.empty())
        return lintFiles(paths, werror);
    std::cerr << "usage: ppulint [--werror] --workloads | file.s...\n";
    return 2;
}
