/**
 * @file
 * ppulint — static analysis front end for PPU kernels.
 *
 *   ./build/ppulint --workloads          lint every registered
 *                                        workload's manual kernels and
 *                                        each workload's compiled
 *                                        programs, under the exact
 *                                        event contexts the prefetcher
 *                                        configuration implies
 *   ./build/ppulint file.s [file2.s...]  lint disassembly listings
 *                                        (the disassemble(Kernel)
 *                                        format: "name:" then one
 *                                        "  N: instr" line per
 *                                        instruction; '#' comments and
 *                                        blank lines ignored)
 *
 * Every diagnostic prints as file:kernel:pc: severity: [code] message.
 * With --json FILE, the full diagnostic list and the summary counts
 * are additionally written to FILE as a machine-readable report (CI
 * archives it as an artifact).
 * Exit status: 2 on usage/parse problems, 1 if any kernel has errors
 * (or, with --werror, any diagnostic at all), 0 when clean.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/passes.hpp"
#include "compiler/verify.hpp"
#include "isa/analysis/verifier.hpp"
#include "isa/disasm.hpp"
#include "isa/listing.hpp"
#include "ppf/lint.hpp"
#include "sim/event_queue.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace epf;

/** Collects every diagnostic (for the JSON report) while printing. */
struct Sink
{
    struct Record
    {
        std::string where;
        std::string kernel;
        analysis::Diag diag;
    };

    std::vector<Record> records;
    unsigned errors = 0;
    unsigned warnings = 0;
    unsigned kernels = 0;

    void
    add(const std::string &where, const std::string &kernel,
        const std::vector<analysis::Diag> &diags)
    {
        for (const analysis::Diag &d : diags) {
            std::cout << where << ":" << kernel;
            if (d.pc != analysis::kNoPc)
                std::cout << ":" << d.pc;
            std::cout << ": " << analysis::severityName(d.severity)
                      << ": [" << analysis::diagCodeName(d.code) << "] "
                      << d.message << "\n";
            (d.severity == analysis::Severity::kError ? errors
                                                      : warnings)++;
            records.push_back({where, kernel, d});
        }
    }

    void
    summarize() const
    {
        std::cout << kernels << " kernel(s): " << errors << " error(s), "
                  << warnings << " warning(s)\n";
    }
};

std::string
jsonEscape(const std::string &s)
{
    std::string o;
    o.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': o += "\\\""; break;
          case '\\': o += "\\\\"; break;
          case '\n': o += "\\n"; break;
          case '\t': o += "\\t"; break;
          case '\r': o += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                o += buf;
            } else {
                o += c;
            }
        }
    }
    return o;
}

bool
writeJson(const std::string &path, const Sink &sink)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "ppulint: cannot write " << path << "\n";
        return false;
    }
    out << "{\n"
        << "  \"kernels\": " << sink.kernels << ",\n"
        << "  \"errors\": " << sink.errors << ",\n"
        << "  \"warnings\": " << sink.warnings << ",\n"
        << "  \"diags\": [";
    for (std::size_t i = 0; i < sink.records.size(); ++i) {
        const Sink::Record &r = sink.records[i];
        out << (i ? ",\n    " : "\n    ") << "{\"where\": \""
            << jsonEscape(r.where) << "\", \"kernel\": \""
            << jsonEscape(r.kernel) << "\", \"pc\": " << r.diag.pc
            << ", \"severity\": \""
            << analysis::severityName(r.diag.severity) << "\", \"code\": \""
            << analysis::diagCodeName(r.diag.code) << "\", \"instr\": \""
            << jsonEscape(r.diag.instrText) << "\", \"message\": \""
            << jsonEscape(r.diag.message) << "\"}";
    }
    out << (sink.records.empty() ? "]\n" : "\n  ]\n") << "}\n";
    out.flush();
    if (!out) {
        std::cerr << "ppulint: error writing " << path << "\n";
        return false;
    }
    return true;
}

int
lintFiles(const std::vector<std::string> &paths, Sink &sink)
{
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "ppulint: cannot open " << path << "\n";
            return 2;
        }
        ListingParse parsed = parseListing(in, path);
        if (!parsed.ok()) {
            std::cerr << path << ": " << parsed.error << "\n";
            return 2;
        }
        // A listing is a standalone kernel set: analyze it as its own
        // table so prefetch.cb references between listed kernels (by
        // position) resolve, without any event-context assumptions.
        KernelTable table;
        table.setStrict(false);
        for (Kernel &k : parsed.kernels)
            table.add(std::move(k));
        const analysis::TableAnalysis ta = analysis::analyzeTable(table);
        for (std::size_t i = 0; i < ta.kernels.size(); ++i) {
            sink.add(path, table[static_cast<KernelId>(i)].name,
                     ta.kernels[i].diags);
            ++sink.kernels;
        }
        sink.add(path, "<table>", ta.tableDiags);
    }
    return 0;
}

int
lintWorkloads(Sink &sink)
{
    for (const std::string &name : workloadNames()) {
        WorkloadScale sc;
        sc.factor = 0.02; // kernels don't depend on the data scale
        auto wl = makeWorkload(name, sc);
        GuestMemory gm;
        wl->setup(gm, 42);

        EventQueue eq;
        PpfConfig cfg;
        ProgrammablePrefetcher ppf(eq, gm, cfg);
        wl->programManual(ppf);

        const analysis::TableAnalysis ta = lintPrefetcher(ppf);
        for (std::size_t i = 0; i < ta.kernels.size(); ++i) {
            sink.add(name, ppf.kernels()[static_cast<KernelId>(i)].name,
                     ta.kernels[i].diags);
            ++sink.kernels;
        }
        sink.add(name, "<table>", ta.tableDiags);

        // The compiler paths: verify whatever the passes produce from
        // this workload's IR.
        for (const auto &ir : wl->buildIR()) {
            for (const PassResult &res :
                 {convertSoftwarePrefetches(*ir), generateFromPragma(*ir)}) {
                if (!res.ok)
                    continue;
                const ProgramVerification pv = verifyProgram(res.program);
                for (std::size_t i = 0; i < pv.kernels.size(); ++i) {
                    sink.add(name, res.program.kernels[i].name,
                             pv.kernels[i].diags);
                    ++sink.kernels;
                }
                sink.add(name, "<program>", pv.programDiags);
            }
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false;
    bool workloads = false;
    std::string jsonPath;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--werror")
            werror = true;
        else if (arg == "--workloads")
            workloads = true;
        else if (arg == "--json") {
            if (i + 1 >= argc) {
                std::cerr << "ppulint: --json needs a file argument\n";
                return 2;
            }
            jsonPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: ppulint [--werror] [--json FILE] "
                         "--workloads | file.s [file2.s...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ppulint: unknown option " << arg << "\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (workloads == !paths.empty()) {
        std::cerr << "usage: ppulint [--werror] [--json FILE] "
                     "--workloads | file.s...\n";
        return 2;
    }

    Sink sink;
    const int rc = workloads ? lintWorkloads(sink) : lintFiles(paths, sink);
    if (rc != 0)
        return rc;
    sink.summarize();
    if (!jsonPath.empty() && !writeJson(jsonPath, sink))
        return 2;
    return sink.errors != 0 || (werror && sink.warnings != 0) ? 1 : 0;
}
