/**
 * @file
 * Regenerates the checked-in golden stats files (tests/goldens/).
 *
 * Run after any intentional change to simulated timing or accounting,
 * then review the golden diff alongside the code diff:
 *
 *   ./build/update_goldens                    # the full 72-cell grid
 *   ./build/update_goldens RandAcc            # one workload, all techniques
 *   ./build/update_goldens RandAcc Manual     # a single cell
 *   EPF_GOLDEN_DIR=/tmp/g ./build/update_goldens
 *
 * The optional <workload> [technique] filter regenerates a subset (by
 * the names used in the golden file names / paper legends), so a
 * change scoped to one workload doesn't cost a full-grid sweep.
 *
 * Every cell runs at the default seed and kGoldenScale; the grid and
 * serialization live in src/runner/golden.{hpp,cpp} so this tool and
 * tests/golden_test.cpp can never disagree about either.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "runner/golden.hpp"
#include "runner/sweep.hpp"
#include "workloads/workload.hpp"

#ifndef EPF_GOLDEN_DIR
#define EPF_GOLDEN_DIR "tests/goldens"
#endif

int
main(int argc, char **argv)
{
    using namespace epf;

    std::filesystem::path dir = EPF_GOLDEN_DIR;
    if (const char *d = std::getenv("EPF_GOLDEN_DIR"))
        dir = d;
    std::filesystem::create_directories(dir);

    auto grid = goldenGrid();

    // Optional subset filter: <workload> [technique].
    if (argc > 1) {
        const std::string wl_filter = argv[1];
        const std::string tech_filter = argc > 2 ? argv[2] : "";
        std::vector<GoldenCell> subset;
        for (const auto &cell : grid) {
            if (cell.workload != wl_filter)
                continue;
            if (!tech_filter.empty() &&
                techniqueName(cell.technique) != tech_filter)
                continue;
            subset.push_back(cell);
        }
        if (subset.empty()) {
            std::cerr << "no golden cell matches workload '" << wl_filter
                      << "'";
            if (!tech_filter.empty())
                std::cerr << " technique '" << tech_filter << "'";
            std::cerr << "\nworkloads:";
            for (const auto &w : workloadNames())
                std::cerr << " " << w;
            std::cerr << "\ntechniques:";
            for (Technique t : goldenTechniques())
                std::cerr << " " << techniqueName(t);
            std::cerr << "\n";
            return 1;
        }
        grid = std::move(subset);
    }

    SweepEngine::Options opts;
    opts.threads = sweepThreadsFromEnv(0);
    // Goldens run at the fixed default seed, not a derived one.
    opts.deriveSeeds = false;
    SweepEngine engine(opts);
    for (const auto &cell : grid)
        engine.add(cell.workload, goldenConfig(cell.technique));
    const auto outcomes = engine.run();

    std::size_t written = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (outcomes[i].failed) {
            std::cerr << "FAILED: " << grid[i].workload << " / "
                      << techniqueName(grid[i].technique) << ": "
                      << outcomes[i].error << "\n";
            return 1;
        }
        const std::filesystem::path file = dir / goldenFileName(grid[i]);
        std::ofstream os(file, std::ios::binary | std::ios::trunc);
        if (!os) {
            std::cerr << "cannot write " << file << "\n";
            return 1;
        }
        os << goldenStatsJson(grid[i], outcomes[i].result);
        ++written;
    }
    std::cout << "wrote " << written << " goldens to " << dir << "\n";
    return 0;
}
