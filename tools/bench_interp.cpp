/**
 * @file
 * Interpreter performance trajectory tool.
 *
 * Times the BM_Interpreter* kernels (bench/interp_kernels.hpp) through
 * both the reference switch interpreter and the pre-decoded
 * direct-threaded one, runs a small fig9a-style end-to-end smoke
 * (RandAcc baseline + Manual at 1 GHz), and writes a BENCH_interp.json
 * summary — the first point of the repo's perf trajectory, regenerated
 * by CI on every push.
 *
 *   ./build/bench_interp [out.json]     # default BENCH_interp.json
 *   EPF_BENCH_QUICK=1 ./build/bench_interp   # CI smoke: fewer reps
 *
 * Schema (BENCH_interp/v2): per-benchmark ns/op for the reference
 * interpreter, the decoded interpreter with superblocks off (the PR 5
 * baseline) and with superblocks on (the PPF default), each ratioed
 * against the reference, plus superblockSpeedup (superblock vs decoded
 * baseline) and end-to-end hostSeconds for the smoke cells.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/interp_kernels.hpp"
#include "isa/interpreter.hpp"
#include "isa/predecode.hpp"
#include "runner/experiment.hpp"
#include "sim/rng.hpp"

namespace
{

using namespace epf;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct KernelResult
{
    std::string name;
    double refNsPerOp = 0;
    double decodedNsPerOp = 0;
    double superblockNsPerOp = 0;
    double speedup = 0;           ///< reference / decoded baseline
    double superblockSpeedup = 0; ///< decoded baseline / superblock
};

/** Time one kernel through all three interpreters; ns per arch op. */
KernelResult
timeKernel(const std::string &name, const Kernel &k, int reps)
{
    const bench::BenchInput in;
    const EventContext &ctx = in.ctx;
    const DecodedKernel dk(k, /*superblocks=*/false);
    const DecodedKernel dksb(k, /*superblocks=*/true);
    const double arch =
        static_cast<double>(Interpreter::run(k, ctx, nullptr).cycles);

    std::vector<PrefetchEmit> emits;
    emits.reserve(256);

    auto runRef = [&] {
        emits.clear();
        Interpreter::run(k, ctx, &emits);
    };
    auto runDecoded = [&] {
        emits.clear();
        DecodedKernel::run(dk, ctx, &emits);
    };
    auto runSuperblock = [&] {
        emits.clear();
        DecodedKernel::run(dksb, ctx, &emits);
    };
    auto timeOnce = [&](auto runEvent) {
        const double t0 = now();
        for (int i = 0; i < reps; ++i)
            runEvent();
        return (now() - t0) * 1e9 / reps;
    };

    // Interleave the timing rounds: each round measures all three
    // interpreters back to back, and each keeps its best round.  Host
    // frequency drift then hits every interpreter roughly equally
    // instead of systematically skewing whichever column happened to
    // run during a slow spell — the ratios are what the trajectory
    // tracks, so fairness matters more than absolute precision.
    runRef();
    runDecoded();
    runSuperblock(); // warm
    double ref = 1e99, dec = 1e99, sb = 1e99;
    for (int round = 0; round < 4; ++round) {
        ref = std::min(ref, timeOnce(runRef));
        dec = std::min(dec, timeOnce(runDecoded));
        sb = std::min(sb, timeOnce(runSuperblock));
    }

    KernelResult r;
    r.name = name;
    r.refNsPerOp = ref / arch;
    r.decodedNsPerOp = dec / arch;
    r.superblockNsPerOp = sb / arch;
    r.speedup = r.refNsPerOp / r.decodedNsPerOp;
    r.superblockSpeedup = r.decodedNsPerOp / r.superblockNsPerOp;
    return r;
}

/** One fig9a-style cell; returns wall-clock seconds. */
double
runCell(const std::string &workload, Technique t, Tick ppu_period)
{
    RunConfig cfg;
    cfg.technique = t;
    cfg.scale.factor = 0.02;
    cfg.ppf.ppuPeriod = ppu_period;
    const double t0 = now();
    runExperiment(workload, cfg);
    return now() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out = argc > 1 ? argv[1] : "BENCH_interp.json";
    const bool quick = std::getenv("EPF_BENCH_QUICK") != nullptr;
    const int reps = quick ? 20'000 : 2'000'000;

    std::vector<KernelResult> results;
    results.push_back(
        timeKernel("BM_InterpreterPointerChase",
                   epf::bench::pointerChaseKernel(), reps));
    results.push_back(timeKernel("BM_InterpreterHashProbe",
                                 epf::bench::hashProbeKernel(), reps));
    results.push_back(
        timeKernel("BM_InterpreterCallbackChain",
                   epf::bench::callbackChainKernel(), reps));

    // fig9a smoke: one workload, the baseline column and the Manual
    // 1 GHz column, end-to-end through the full machine model.
    const double base_s =
        runCell("RandAcc", epf::Technique::kNone, 16);
    const double manual_s =
        runCell("RandAcc", epf::Technique::kManual, 16);

    std::ofstream os(out, std::ios::trunc);
    os << "{\n  \"schema\": \"BENCH_interp/v2\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"benchmarks\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "    \"" << r.name << "\": { \"refNsPerOp\": "
           << r.refNsPerOp << ", \"decodedNsPerOp\": " << r.decodedNsPerOp
           << ", \"superblockNsPerOp\": " << r.superblockNsPerOp
           << ", \"speedup\": " << r.speedup
           << ", \"superblockSpeedup\": " << r.superblockSpeedup << " }"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  },\n";
    os << "  \"fig9a_smoke\": {\n"
       << "    \"workload\": \"RandAcc\", \"scale\": 0.02,\n"
       << "    \"hostSeconds\": { \"baseline\": " << base_s
       << ", \"Manual_1GHz\": " << manual_s << " }\n  }\n}\n";
    os.close();

    for (const auto &r : results)
        std::cout << r.name << ": ref " << r.refNsPerOp << " ns/op, decoded "
                  << r.decodedNsPerOp << " ns/op, superblock "
                  << r.superblockNsPerOp << " ns/op (decoded speedup "
                  << r.speedup << "x, superblock "
                  << r.superblockSpeedup << "x over decoded)\n";
    std::cout << "fig9a smoke (RandAcc @0.02): baseline " << base_s
              << "s, Manual@1GHz " << manual_s << "s\n"
              << "wrote " << out << "\n";
    return 0;
}
