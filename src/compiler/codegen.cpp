#include "compiler/codegen.hpp"

#include <cassert>

namespace epf
{

unsigned
Codegen::slotFor(const IrNode *inv)
{
    auto it = slots_.find(inv);
    if (it != slots_.end())
        return it->second;
    unsigned slot = static_cast<unsigned>(slots_.size());
    assert(slot < kGlobalRegs && "out of prefetcher global registers");
    slots_.emplace(inv, slot);
    return slot;
}

int
Codegen::genExpr(const IrNode *expr, KernelBuilder &b, const Env &env,
                 std::string &fail)
{
    RegPool pool;
    if (env.idxReg >= 0)
        (void)0; // idx lives in r1/r2 space, outside the pool
    return gen(expr, b, env, pool, fail);
}

int
Codegen::gen(const IrNode *n, KernelBuilder &b, const Env &env,
             RegPool &pool, std::string &fail)
{
    switch (n->kind) {
      case IrKind::kConst: {
        int r = pool.alloc();
        if (r < 0) {
            fail = "expression too deep for PPU registers";
            return -1;
        }
        b.li(static_cast<unsigned>(r), n->value);
        return r;
      }
      case IrKind::kInvariant: {
        int r = pool.alloc();
        if (r < 0) {
            fail = "expression too deep for PPU registers";
            return -1;
        }
        b.gread(static_cast<unsigned>(r), slotFor(n));
        return r;
      }
      case IrKind::kIndVar: {
        if (env.idxReg < 0) {
            fail = "induction variable not derivable in this event";
            return -1;
        }
        int r = pool.alloc();
        if (r < 0) {
            fail = "expression too deep for PPU registers";
            return -1;
        }
        b.mov(static_cast<unsigned>(r),
              static_cast<unsigned>(env.idxReg));
        return r;
      }
      case IrKind::kLookahead: {
        int r = pool.alloc();
        if (r < 0) {
            fail = "expression too deep for PPU registers";
            return -1;
        }
        b.lookahead(static_cast<unsigned>(r),
                    static_cast<unsigned>(env.triggerFilterLocal));
        return r;
      }
      case IrKind::kLoad: {
        if (n->loopInvariantLoad) {
            // Loop-invariant loads were hoisted into global registers
            // (Algorithm 1, "replace invariant loads in events").
            int r = pool.alloc();
            if (r < 0) {
                fail = "expression too deep for PPU registers";
                return -1;
            }
            b.gread(static_cast<unsigned>(r), slotFor(n));
            return r;
        }
        if (n != env.holeLoad) {
            fail = "event references a load other than its trigger";
            return -1;
        }
        int r = pool.alloc();
        if (r < 0) {
            fail = "expression too deep for PPU registers";
            return -1;
        }
        b.mov(static_cast<unsigned>(r),
              static_cast<unsigned>(env.dataReg));
        return r;
      }
      case IrKind::kBin: {
        // Immediate forms when the right operand is a constant.
        if (n->rhs->kind == IrKind::kConst) {
            int l = gen(n->lhs, b, env, pool, fail);
            if (l < 0)
                return -1;
            std::int64_t imm = n->rhs->value;
            unsigned lr = static_cast<unsigned>(l);
            switch (n->bin) {
              case IrBin::kAdd: b.addi(lr, lr, imm); break;
              case IrBin::kSub: b.addi(lr, lr, -imm); break;
              case IrBin::kMul:
                // Strength-reduce power-of-two multiplies as a compiler
                // would (PPUs are microcontroller-class).
                if (imm > 0 && (imm & (imm - 1)) == 0) {
                    std::int64_t sh = 0;
                    while ((std::int64_t{1} << sh) < imm)
                        ++sh;
                    b.shli(lr, lr, sh);
                } else {
                    b.muli(lr, lr, imm);
                }
                break;
              case IrBin::kDiv:
                if (imm > 0 && (imm & (imm - 1)) == 0) {
                    std::int64_t sh = 0;
                    while ((std::int64_t{1} << sh) < imm)
                        ++sh;
                    b.shri(lr, lr, sh);
                } else {
                    b.divi(lr, lr, imm);
                }
                break;
              case IrBin::kAnd: b.andi(lr, lr, imm); break;
              case IrBin::kShl: b.shli(lr, lr, imm); break;
              case IrBin::kShr: b.shri(lr, lr, imm); break;
            }
            return l;
        }
        int l = gen(n->lhs, b, env, pool, fail);
        if (l < 0)
            return -1;
        int r = gen(n->rhs, b, env, pool, fail);
        if (r < 0)
            return -1;
        unsigned lr = static_cast<unsigned>(l);
        unsigned rr = static_cast<unsigned>(r);
        switch (n->bin) {
          case IrBin::kAdd: b.add(lr, lr, rr); break;
          case IrBin::kSub: b.sub(lr, lr, rr); break;
          case IrBin::kMul: b.mul(lr, lr, rr); break;
          case IrBin::kDiv: b.div(lr, lr, rr); break;
          case IrBin::kAnd: b.andr(lr, lr, rr); break;
          case IrBin::kShl: b.shl(lr, lr, rr); break;
          case IrBin::kShr: b.shr(lr, lr, rr); break;
        }
        pool.free(r);
        return l;
      }
      case IrKind::kPhi:
        fail = "control-flow dependent phi node";
        return -1;
      case IrKind::kCall:
        fail = n->sideEffectFree
                   ? "call not inlinable into a prefetch event"
                   : "function call with side effects";
        return -1;
    }
    fail = "unhandled IR node";
    return -1;
}

} // namespace epf
