/**
 * @file
 * The two compiler passes of Section 6.
 *
 * convertSoftwarePrefetches() implements Algorithm 1: starting from each
 * software-prefetch instruction it searches backwards through the
 * data-dependence graph, splits the address generation into events at
 * every non-invariant load, replaces the induction variable with an
 * index derived from the observed address, infers array bounds for the
 * filter configuration, and emits PPU kernels.
 *
 * generateFromPragma() synthesises the same event chains from scratch for
 * `#pragma prefetch` loops: it roots chains at loads with discoverable
 * induction-variable strides, follows indirection, and uses the EWMA
 * lookahead instead of programmer-chosen distances (Section 6.4).
 *
 * Both passes fail exactly where the paper says they must: non-induction
 * phi nodes, function calls, events needing two loaded values, opaque
 * iterators, and loops in the prefetch pattern (which software prefetches
 * fundamentally cannot express).
 */

#ifndef EPF_COMPILER_PASSES_HPP
#define EPF_COMPILER_PASSES_HPP

#include "compiler/event_program.hpp"
#include "compiler/ir.hpp"

namespace epf
{

/** Algorithm 1: software-prefetch conversion. */
PassResult convertSoftwarePrefetches(const LoopIR &ir);

/** Section 6.4: pragma-driven event generation. */
PassResult generateFromPragma(const LoopIR &ir);

} // namespace epf

#endif // EPF_COMPILER_PASSES_HPP
