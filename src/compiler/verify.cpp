#include "compiler/verify.hpp"

namespace epf
{

bool
ProgramVerification::hasErrors() const
{
    if (analysis::hasErrors(programDiags))
        return true;
    for (const analysis::KernelAnalysis &k : kernels)
        if (k.hasErrors())
            return true;
    return false;
}

std::size_t
ProgramVerification::diagCount() const
{
    std::size_t n = programDiags.size();
    for (const analysis::KernelAnalysis &k : kernels)
        n += k.diags.size();
    return n;
}

std::string
ProgramVerification::format(const EventProgram &prog) const
{
    std::string out;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const std::string &name = i < prog.kernels.size()
                                      ? prog.kernels[i].name
                                      : std::string();
        for (const analysis::Diag &d : kernels[i].diags) {
            out += name.empty() ? "#" + std::to_string(i) : name;
            out += ": ";
            out += analysis::formatDiag(d);
            out += '\n';
        }
    }
    for (const analysis::Diag &d : programDiags) {
        out += "program: ";
        out += analysis::formatDiag(d);
        out += '\n';
    }
    return out;
}

ProgramVerification
verifyProgram(const EventProgram &prog)
{
    // The analysis runs in the program's local id space: a scratch
    // table mirrors the kernels (strict off — verification is exactly
    // what we are doing here) so the table-wide passes see local
    // callback edges before installInto() relocates them.
    KernelTable scratch;
    scratch.setStrict(false);
    for (const Kernel &k : prog.kernels)
        scratch.add(k);

    // Trigger kinds: filters type their onLoad kernels as demand
    // events (no line data); every callback target runs on a fill.
    std::vector<std::uint8_t> demand(prog.kernels.size(), 0);
    std::vector<std::uint8_t> fill(prog.kernels.size(), 0);
    for (const EventProgram::FilterInit &f : prog.filters)
        if (f.onLoadLocal >= 0 &&
            static_cast<std::size_t>(f.onLoadLocal) < demand.size())
            demand[static_cast<std::size_t>(f.onLoadLocal)] = 1;
    for (const Kernel &k : prog.kernels)
        for (const Instr &in : k.code)
            if (in.op == Opcode::kPrefetchCb && in.imm >= 0 &&
                static_cast<std::size_t>(in.imm) < fill.size())
                fill[static_cast<std::size_t>(in.imm)] = 1;

    const analysis::TableAnalysis ta = analysis::analyzeTable(
        scratch, [&prog, &demand, &fill](KernelId id) {
            analysis::KernelContext ctx;
            const auto i = static_cast<std::size_t>(id);
            if (demand[i] && !fill[i])
                ctx.line = analysis::KernelContext::Line::kNever;
            else if (fill[i] && !demand[i])
                ctx.line = analysis::KernelContext::Line::kAlways;
            ctx.lookaheadEntries = static_cast<int>(prog.filters.size());
            return ctx;
        });

    ProgramVerification pv;
    pv.kernels = ta.kernels;
    pv.programDiags = ta.tableDiags;
    return pv;
}

} // namespace epf
