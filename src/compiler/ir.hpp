/**
 * @file
 * Mini SSA-style intermediate representation for loop bodies.
 *
 * The paper's compiler passes (Section 6) run over LLVM IR.  Here each
 * workload describes the address-generation dataflow of its inner loop in
 * this small IR — constants, loop invariants, the induction variable,
 * loads and arithmetic — exactly the node kinds Algorithm 1 cares about.
 * Features that make conversion fail in the paper (non-induction phi
 * nodes, side-effecting calls, opaque iterators) are representable so the
 * passes fail for the same reasons on the same benchmarks.
 */

#ifndef EPF_COMPILER_IR_HPP
#define EPF_COMPILER_IR_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace epf
{

/** IR node kinds. */
enum class IrKind
{
    kConst,     ///< integer literal
    kInvariant, ///< loop-invariant value (array base, hash mask, ...)
    kIndVar,    ///< the loop induction variable
    kLookahead, ///< pragma-synthesised dynamic lookahead distance
    kLoad,      ///< memory load
    kBin,       ///< binary arithmetic
    kPhi,       ///< non-induction phi (control-flow dependent value)
    kCall,      ///< function call (fails conversion unless pure)
};

/** Binary operators. */
enum class IrBin
{
    kAdd,
    kSub,
    kMul,
    kDiv,
    kShl,
    kShr,
    kAnd,
};

/** One IR node (owned by a LoopIR arena). */
struct IrNode
{
    IrKind kind = IrKind::kConst;

    // kConst
    std::int64_t value = 0;

    // kInvariant: name + the actual runtime value the compiler would
    // register with the prefetcher's global registers.
    std::string name;
    std::uint64_t runtimeValue = 0;

    // kLoad
    IrNode *addr = nullptr;
    unsigned elemSize = 8;
    bool loopInvariantLoad = false;
    std::int16_t streamId = -1;

    // kBin
    IrBin bin = IrBin::kAdd;
    IrNode *lhs = nullptr;
    IrNode *rhs = nullptr;

    // kCall
    bool sideEffectFree = true;
};

/** A data structure known to the loop (for bounds inference, Sec. 6.2). */
struct IrArray
{
    std::string name;
    /** The invariant node holding the base address. */
    IrNode *base = nullptr;
    Addr baseAddr = 0;
    std::uint64_t elemSize = 8;
    std::uint64_t length = 0; ///< in elements

    Addr limit() const { return baseAddr + elemSize * length; }
};

/** A software-prefetch instruction inside the loop. */
struct IrSwPrefetch
{
    IrNode *addr = nullptr;
};

/** The IR of one prefetch-annotated loop. */
class LoopIR
{
  public:
    /** The loop induction variable (unit stride in elements). */
    IrNode *induction = nullptr;
    /** Arrays with inferable bounds. */
    std::vector<IrArray> arrays;
    /** Software prefetches (inputs to the conversion pass). */
    std::vector<IrSwPrefetch> prefetches;
    /** All loads in the loop body (inputs to the pragma pass). */
    std::vector<IrNode *> bodyLoads;
    /**
     * True when the source works on opaque/templated iterators, so no
     * address expression is available to insert software prefetches
     * (PageRank in the paper).
     */
    bool opaqueIterators = false;

    // ---- Node factories ----

    IrNode *
    cnst(std::int64_t v)
    {
        IrNode n;
        n.kind = IrKind::kConst;
        n.value = v;
        return intern(n);
    }

    IrNode *
    invariant(const std::string &name, std::uint64_t runtime_value)
    {
        IrNode n;
        n.kind = IrKind::kInvariant;
        n.name = name;
        n.runtimeValue = runtime_value;
        return intern(n);
    }

    IrNode *
    indVar()
    {
        if (induction == nullptr) {
            IrNode n;
            n.kind = IrKind::kIndVar;
            induction = intern(n);
        }
        return induction;
    }

    IrNode *
    lookaheadDist()
    {
        IrNode n;
        n.kind = IrKind::kLookahead;
        return intern(n);
    }

    IrNode *
    load(IrNode *addr, unsigned elem_size, const std::string &name,
         std::int16_t stream = -1)
    {
        IrNode n;
        n.kind = IrKind::kLoad;
        n.addr = addr;
        n.elemSize = elem_size;
        n.name = name;
        n.streamId = stream;
        IrNode *p = intern(n);
        bodyLoads.push_back(p);
        return p;
    }

    /**
     * A load that exists only inside a software prefetch's address
     * generation (it is not part of the loop body proper, so the pragma
     * pass — which sees the un-annotated source — never visits it).
     */
    IrNode *
    loadForSwpf(IrNode *addr, unsigned elem_size, const std::string &name)
    {
        IrNode n;
        n.kind = IrKind::kLoad;
        n.addr = addr;
        n.elemSize = elem_size;
        n.name = name;
        return intern(n);
    }

    IrNode *
    invariantLoad(IrNode *addr, unsigned elem_size, const std::string &name,
                  std::uint64_t runtime_value)
    {
        IrNode n;
        n.kind = IrKind::kLoad;
        n.addr = addr;
        n.elemSize = elem_size;
        n.name = name;
        n.loopInvariantLoad = true;
        n.runtimeValue = runtime_value;
        return intern(n);
    }

    IrNode *
    bin(IrBin op, IrNode *l, IrNode *r)
    {
        IrNode n;
        n.kind = IrKind::kBin;
        n.bin = op;
        n.lhs = l;
        n.rhs = r;
        return intern(n);
    }

    IrNode *
    phi(const std::string &name)
    {
        IrNode n;
        n.kind = IrKind::kPhi;
        n.name = name;
        return intern(n);
    }

    IrNode *
    call(const std::string &name, bool side_effect_free)
    {
        IrNode n;
        n.kind = IrKind::kCall;
        n.name = name;
        n.sideEffectFree = side_effect_free;
        return intern(n);
    }

    // ---- Conveniences ----

    /** Register an array and return its base invariant. */
    IrNode *
    addArray(const std::string &name, Addr base, std::uint64_t elem_size,
             std::uint64_t length)
    {
        IrArray a;
        a.name = name;
        a.base = invariant(name + ".base", base);
        a.baseAddr = base;
        a.elemSize = elem_size;
        a.length = length;
        arrays.push_back(a);
        return a.base;
    }

    /** &arr_base[idx] for an array of @p elem_size byte elements. */
    IrNode *
    index(IrNode *base, IrNode *idx, std::uint64_t elem_size)
    {
        return bin(IrBin::kAdd, base,
                   bin(IrBin::kMul, idx,
                       cnst(static_cast<std::int64_t>(elem_size))));
    }

    /** Mark a software prefetch of @p addr. */
    void swpf(IrNode *addr) { prefetches.push_back({addr}); }

    /** Find the array owning @p base invariant (nullptr if unknown). */
    const IrArray *
    arrayOf(const IrNode *base) const
    {
        for (const auto &a : arrays) {
            if (a.base == base)
                return &a;
        }
        return nullptr;
    }

  private:
    IrNode *
    intern(const IrNode &n)
    {
        arena_.push_back(n);
        return &arena_.back();
    }

    std::deque<IrNode> arena_;
};

} // namespace epf

#endif // EPF_COMPILER_IR_HPP
