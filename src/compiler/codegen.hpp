/**
 * @file
 * Expression-to-PPU code generation (Section 6.3).
 *
 * Each event kernel evaluates one or more address expressions whose only
 * free inputs are (a) the derived induction index — recovered from the
 * observed address as (vaddr - base) / elem_size — or (b) the data word
 * of the prefetched line ("the only remaining load must be to the data
 * observed from the current event, so it is converted into a register
 * access").  Loop invariants become global-register reads.
 */

#ifndef EPF_COMPILER_CODEGEN_HPP
#define EPF_COMPILER_CODEGEN_HPP

#include <map>
#include <string>

#include "compiler/ir.hpp"
#include "isa/builder.hpp"

namespace epf
{

/** Shared state of one program's code generation. */
class Codegen
{
  public:
    /** Bindings available inside one event kernel. */
    struct Env
    {
        /** Register holding the derived induction index (or -1). */
        int idxReg = -1;
        /** The hole load whose data is bound (nullptr if none). */
        const IrNode *holeLoad = nullptr;
        /** Register holding the hole load's data (or -1). */
        int dataReg = -1;
        /** Local filter index for lookahead reads (pragma pass). */
        int triggerFilterLocal = 0;
    };

    /** Global-register slot for an invariant (assigned on demand). */
    unsigned slotFor(const IrNode *inv);

    /** All assigned slots: node -> slot. */
    const std::map<const IrNode *, unsigned> &slots() const { return slots_; }

    /**
     * Emit code computing @p expr into a register.
     * @return the register, or -1 on failure (@p fail explains).
     */
    int genExpr(const IrNode *expr, KernelBuilder &b, const Env &env,
                std::string &fail);

  private:
    /** Tiny linear register allocator over r3..r14. */
    class RegPool
    {
      public:
        int
        alloc()
        {
            for (int r = kFirst; r <= kLast; ++r) {
                if (!used_[r]) {
                    used_[r] = true;
                    return r;
                }
            }
            return -1;
        }

        void
        free(int r)
        {
            if (r >= kFirst && r <= kLast)
                used_[r] = false;
        }

      private:
        static constexpr int kFirst = 3;
        static constexpr int kLast = 14;
        bool used_[16] = {};
    };

    int gen(const IrNode *expr, KernelBuilder &b, const Env &env,
            RegPool &pool, std::string &fail);

    std::map<const IrNode *, unsigned> slots_;
};

} // namespace epf

#endif // EPF_COMPILER_CODEGEN_HPP
