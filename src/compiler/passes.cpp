#include "compiler/passes.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "compiler/codegen.hpp"
#include "compiler/verify.hpp"
#include "isa/builder.hpp"

namespace epf
{

namespace
{

/**
 * Post-codegen gate: statically verify the lowered program.  Generated
 * code must always be clean — an error here is a codegen bug, and the
 * pass reports failure rather than handing over a program that traps.
 * Warnings surface as remarks; a clean program adds nothing (the
 * experiment goldens pin the remark list).
 */
void
verifyLowered(PassResult &res, std::vector<std::string> &remarks)
{
    const ProgramVerification pv = verifyProgram(res.program);
    if (pv.hasErrors()) {
        res.ok = false;
        res.failureReason = "generated program failed verification:\n" +
                            pv.format(res.program);
        return;
    }
    if (pv.diagCount() != 0)
        remarks.push_back("verifier: " + std::to_string(pv.diagCount()) +
                          " warning(s):\n" + pv.format(res.program));
}

/** What a backwards scan of one address expression found. */
struct ScanInfo
{
    std::vector<const IrNode *> loads; ///< non-invariant loads (not entered)
    bool usesIndvar = false;
    std::string fail;
};

/** Depth-first search terminating at constants, invariants, loads and
 *  phi nodes (Section 6.1). Returns false on a hard failure. */
bool
scan(const IrNode *n, ScanInfo &out)
{
    switch (n->kind) {
      case IrKind::kConst:
      case IrKind::kInvariant:
      case IrKind::kLookahead:
        return true;
      case IrKind::kIndVar:
        out.usesIndvar = true;
        return true;
      case IrKind::kLoad:
        if (n->loopInvariantLoad)
            return true; // hoisted to a global register
        if (std::find(out.loads.begin(), out.loads.end(), n) ==
            out.loads.end())
            out.loads.push_back(n);
        return true; // do not descend: the load starts a new event
      case IrKind::kBin:
        return scan(n->lhs, out) && scan(n->rhs, out);
      case IrKind::kPhi:
        out.fail = "control-flow dependent phi node '" + n->name + "'";
        return false;
      case IrKind::kCall:
        out.fail = n->sideEffectFree
                       ? "call '" + n->name + "' cannot run on a PPU"
                       : "call '" + n->name + "' has side effects";
        return false;
    }
    out.fail = "unhandled node";
    return false;
}

/** Collect array-base invariants appearing in @p n. */
void
collectArrayBases(const LoopIR &ir, const IrNode *n,
                  std::vector<const IrArray *> &out)
{
    switch (n->kind) {
      case IrKind::kInvariant: {
        if (const IrArray *a = ir.arrayOf(n)) {
            if (std::find(out.begin(), out.end(), a) == out.end())
                out.push_back(a);
        }
        return;
      }
      case IrKind::kBin:
        collectArrayBases(ir, n->lhs, out);
        collectArrayBases(ir, n->rhs, out);
        return;
      case IrKind::kLoad:
        return; // beyond an event boundary
      default:
        return;
    }
}

/** One prefetch chain: loads from innermost (induction-rooted) outwards. */
struct Chain
{
    std::vector<const IrNode *> loads; ///< L1 .. Ln
    const IrNode *triggerExpr = nullptr;
    const IrNode *finalExpr = nullptr;
    const IrArray *triggerArray = nullptr;
};

/**
 * Walk backwards from @p target, splitting at loads (Algorithm 1's
 * DFS + split_on_loads).  @return false with @p why on failure.
 */
bool
buildChain(const LoopIR &ir, const IrNode *target, Chain &chain,
           std::string &why)
{
    chain.finalExpr = target;
    const IrNode *expr = target;
    std::vector<const IrNode *> loads_outer_first;

    for (;;) {
        ScanInfo si;
        if (!scan(expr, si)) {
            why = si.fail;
            return false;
        }
        if (si.loads.size() > 1) {
            why = "more than one loaded value feeds a single address";
            return false;
        }
        if (si.loads.empty()) {
            if (!si.usesIndvar) {
                why = "no induction variable found by the backwards search";
                return false;
            }
            chain.triggerExpr = expr;
            break;
        }
        if (si.usesIndvar) {
            why = "address mixes the induction variable with loaded data";
            return false;
        }
        loads_outer_first.push_back(si.loads[0]);
        expr = si.loads[0]->addr;
    }

    chain.loads.assign(loads_outer_first.rbegin(), loads_outer_first.rend());

    // Array-bounds inference (Section 6.2) on the trigger expression.
    std::vector<const IrArray *> bases;
    collectArrayBases(ir, chain.triggerExpr, bases);
    if (bases.size() != 1) {
        why = bases.empty()
                  ? "cannot infer address bounds for the trigger structure"
                  : "trigger address references multiple arrays";
        return false;
    }
    chain.triggerArray = bases[0];
    return true;
}

/** One prefetch emission within an event. */
struct Emit
{
    const IrNode *expr;
    const IrNode *next; ///< load whose event the fill triggers (or null)
};

/** Accumulated events, keyed by trigger array / by load. */
struct ProgramDraft
{
    struct TriggerEvent
    {
        const IrArray *array;
        std::vector<Emit> emits;
        bool ewmaLookahead = false;
    };

    struct DataEvent
    {
        const IrNode *load;
        std::vector<Emit> emits;
    };

    std::vector<TriggerEvent> triggers;
    std::vector<DataEvent> dataEvents;

    TriggerEvent &
    triggerFor(const IrArray *a)
    {
        for (auto &t : triggers) {
            if (t.array == a)
                return t;
        }
        triggers.push_back({a, {}, false});
        return triggers.back();
    }

    DataEvent &
    dataFor(const IrNode *load)
    {
        for (auto &d : dataEvents) {
            if (d.load == load)
                return d;
        }
        dataEvents.push_back({load, {}});
        return dataEvents.back();
    }

    static void
    addEmit(std::vector<Emit> &emits, const IrNode *expr,
            const IrNode *next)
    {
        for (const auto &e : emits) {
            if (e.expr == expr && e.next == next)
                return; // shared chain prefix: deduplicate
        }
        emits.push_back({expr, next});
    }
};

/** Fold a validated chain into the draft. */
void
addChain(ProgramDraft &draft, const Chain &c, bool ewma_lookahead)
{
    auto &trig = draft.triggerFor(c.triggerArray);
    trig.ewmaLookahead = trig.ewmaLookahead || ewma_lookahead;

    if (c.loads.empty()) {
        ProgramDraft::addEmit(trig.emits, c.finalExpr, nullptr);
        return;
    }
    ProgramDraft::addEmit(trig.emits, c.loads[0]->addr, c.loads[0]);
    for (std::size_t i = 0; i + 1 < c.loads.size(); ++i) {
        auto &ev = draft.dataFor(c.loads[i]);
        ProgramDraft::addEmit(ev.emits, c.loads[i + 1]->addr,
                              c.loads[i + 1]);
    }
    auto &last = draft.dataFor(c.loads.back());
    ProgramDraft::addEmit(last.emits, c.finalExpr, nullptr);
}

/** Shift amount for power-of-two sizes, -1 otherwise. */
int
log2OrMinus1(std::uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        return -1;
    int s = 0;
    while ((std::uint64_t{1} << s) < v)
        ++s;
    return s;
}

/** Lower the draft into kernels, filters and globals. */
EventProgram
lowerDraft(const LoopIR &ir, ProgramDraft &draft,
           std::vector<std::string> &remarks)
{
    EventProgram prog;
    Codegen cg;

    // Local kernel ids: triggers first, then data events.
    std::map<const IrNode *, int> dataId;
    int next_id = static_cast<int>(draft.triggers.size());
    for (auto &d : draft.dataEvents)
        dataId[d.load] = next_id++;

    // Local filter ids: one per trigger array, in order.
    std::map<const IrArray *, int> filterId;
    for (std::size_t i = 0; i < draft.triggers.size(); ++i)
        filterId[draft.triggers[i].array] = static_cast<int>(i);

    // An emission is droppable (codegen failure); emissions chaining to a
    // dropped event degrade to plain prefetches.  Validate with a dry run
    // first so ids stay dense.
    std::set<const IrNode *> dropped_events;

    auto validateEmit = [&](const Emit &e, bool is_trigger,
                            const IrNode *hole) -> bool {
        KernelBuilder dry("dry");
        Codegen dry_cg;
        Codegen::Env env;
        env.idxReg = is_trigger ? 1 : -1;
        env.holeLoad = hole;
        env.dataReg = hole != nullptr ? 2 : -1;
        std::string fail;
        if (dry_cg.genExpr(e.expr, dry, env, fail) < 0) {
            remarks.push_back("dropped one prefetch: " + fail);
            return false;
        }
        return true;
    };

    for (auto &t : draft.triggers) {
        auto keep = std::remove_if(
            t.emits.begin(), t.emits.end(),
            [&](const Emit &e) { return !validateEmit(e, true, nullptr); });
        t.emits.erase(keep, t.emits.end());
    }
    for (auto &d : draft.dataEvents) {
        auto keep = std::remove_if(
            d.emits.begin(), d.emits.end(),
            [&](const Emit &e) { return !validateEmit(e, false, d.load); });
        d.emits.erase(keep, d.emits.end());
        if (d.emits.empty())
            dropped_events.insert(d.load);
    }

    auto emitInto = [&](KernelBuilder &b, const std::vector<Emit> &emits,
                        Codegen::Env env) {
        for (const auto &e : emits) {
            std::string fail;
            int r = cg.genExpr(e.expr, b, env, fail);
            assert(r >= 0 && "validated emission failed to lower");
            const IrNode *next = e.next;
            if (next != nullptr && dropped_events.count(next) != 0)
                next = nullptr;
            if (next != nullptr)
                b.prefetchCb(static_cast<unsigned>(r), dataId.at(next));
            else
                b.prefetch(static_cast<unsigned>(r));
        }
        b.halt();
    };

    // Trigger kernels: derive the induction index from the observed
    // address, optionally advanced by the EWMA lookahead.
    for (std::size_t ti = 0; ti < draft.triggers.size(); ++ti) {
        auto &t = draft.triggers[ti];
        KernelBuilder b("on_" + t.array->name + "_load");
        b.vaddr(1);
        b.gread(2, cg.slotFor(t.array->base));
        b.sub(1, 1, 2);
        int sh = log2OrMinus1(t.array->elemSize);
        if (sh >= 0)
            b.shri(1, 1, sh);
        else
            b.divi(1, 1, static_cast<std::int64_t>(t.array->elemSize));
        if (t.ewmaLookahead) {
            b.lookahead(2, static_cast<unsigned>(filterId.at(t.array)));
            b.add(1, 1, 2);
        }
        Codegen::Env env;
        env.idxReg = 1;
        env.triggerFilterLocal = filterId.at(t.array);
        emitInto(b, t.emits, env);
        prog.kernels.push_back(b.build());
    }

    // Data kernels: the fetched word is the only load they may read.
    for (auto &d : draft.dataEvents) {
        KernelBuilder b("on_" + d.load->name + "_prefetch");
        b.vaddr(1);
        if (d.load->elemSize == 4)
            b.ldLine32(2, 1, 0);
        else
            b.ldLine(2, 1, 0);
        Codegen::Env env;
        env.holeLoad = d.load;
        env.dataReg = 2;
        emitInto(b, d.emits, env);
        prog.kernels.push_back(b.build());
    }

    // Filters: trigger arrays observe loads and time iterations/chains.
    for (std::size_t ti = 0; ti < draft.triggers.size(); ++ti) {
        const auto &t = draft.triggers[ti];
        EventProgram::FilterInit f;
        f.name = t.array->name;
        f.base = t.array->baseAddr;
        f.limit = t.array->limit();
        f.onLoadLocal = static_cast<int>(ti);
        f.timeSource = true;
        f.timedStart = true;
        prog.filters.push_back(f);
    }

    // Timed-end entries on the final target structures (EWMA chains).
    auto markTimedEnd = [&](const IrNode *expr) {
        std::vector<const IrArray *> bases;
        collectArrayBases(ir, expr, bases);
        for (const IrArray *a : bases) {
            bool found = false;
            for (auto &f : prog.filters) {
                if (f.name == a->name) {
                    f.timedEnd = true;
                    found = true;
                }
            }
            if (!found) {
                EventProgram::FilterInit f;
                f.name = a->name;
                f.base = a->baseAddr;
                f.limit = a->limit();
                f.timedEnd = true;
                prog.filters.push_back(f);
            }
        }
    };
    for (const auto &t : draft.triggers) {
        for (const auto &e : t.emits) {
            if (e.next == nullptr)
                markTimedEnd(e.expr);
        }
    }
    for (const auto &d : draft.dataEvents) {
        for (const auto &e : d.emits) {
            if (e.next == nullptr)
                markTimedEnd(e.expr);
        }
    }

    // Globals gathered during code generation.
    for (const auto &[node, slot] : cg.slots()) {
        EventProgram::GlobalInit g;
        g.slot = slot;
        g.value = node->runtimeValue;
        g.name = node->name.empty() ? "inv" : node->name;
        prog.globals.push_back(g);
    }

    return prog;
}

} // namespace

PassResult
convertSoftwarePrefetches(const LoopIR &ir)
{
    PassResult res;
    if (ir.opaqueIterators) {
        res.failureReason =
            "no direct memory address access (opaque iterators), software "
            "prefetch insertion impossible";
        return res;
    }
    if (ir.prefetches.empty()) {
        res.failureReason = "loop contains no software prefetches";
        return res;
    }

    ProgramDraft draft;
    std::vector<std::string> remarks;
    unsigned converted = 0;
    for (const auto &pf : ir.prefetches) {
        Chain c;
        std::string why;
        if (!buildChain(ir, pf.addr, c, why)) {
            remarks.push_back("swpf not converted: " + why);
            continue;
        }
        addChain(draft, c, /*ewma_lookahead=*/false);
        ++converted;
    }

    if (converted == 0) {
        res.failureReason = remarks.empty()
                                ? "no convertible software prefetches"
                                : remarks.front();
        res.program.remarks = remarks;
        return res;
    }

    res.program = lowerDraft(ir, draft, remarks);
    res.program.remarks = std::move(remarks);
    res.program.remarks.push_back(
        "removed " + std::to_string(converted) +
        " software prefetch(es) and their address generation from the "
        "main loop (dead-code elimination)");
    res.ok = !res.program.kernels.empty();
    if (res.ok)
        verifyLowered(res, res.program.remarks);
    return res;
}

PassResult
generateFromPragma(const LoopIR &ir)
{
    PassResult res;

    // Chains root at loads whose address is a pure induction expression;
    // indirection edges follow single-load address dependences.
    std::vector<std::string> remarks;
    ProgramDraft draft;
    unsigned chains = 0;

    // A load is "interior" if some other load's address consumes it.
    std::set<const IrNode *> interior;
    for (const IrNode *m : ir.bodyLoads) {
        ScanInfo si;
        if (!scan(m->addr, si))
            continue;
        for (const IrNode *l : si.loads)
            interior.insert(l);
    }

    for (const IrNode *m : ir.bodyLoads) {
        if (interior.count(m) != 0)
            continue; // only start from chain terminals

        // Walk to the root.
        std::vector<const IrNode *> rev; // terminal .. root
        const IrNode *cur = m;
        bool ok = true;
        std::string why;
        for (;;) {
            rev.push_back(cur);
            ScanInfo si;
            if (!scan(cur->addr, si)) {
                ok = false;
                why = si.fail;
                break;
            }
            if (si.loads.empty()) {
                if (!si.usesIndvar) {
                    ok = false;
                    why = "no induction variable behind load '" +
                          cur->name + "'";
                }
                break;
            }
            if (si.loads.size() > 1) {
                ok = false;
                why = "two loads feed the address of '" + cur->name + "'";
                break;
            }
            if (si.usesIndvar) {
                ok = false;
                why = "address of '" + cur->name +
                      "' mixes induction variable and loaded data";
                break;
            }
            cur = si.loads[0];
        }
        if (!ok) {
            remarks.push_back("pragma: skipped chain at '" + m->name +
                              "': " + why);
            continue;
        }
        if (rev.size() < 2) {
            // No indirection: leave to the hardware stride prefetcher.
            remarks.push_back("pragma: '" + m->name +
                              "' is a plain stride; not converted");
            continue;
        }

        // Synthesise a chain: loads are root..terminal-1; the final
        // prefetch target is the terminal load's address.
        Chain c;
        c.loads.assign(rev.rbegin(), rev.rend() - 1);
        c.finalExpr = m->addr;
        c.triggerExpr = c.loads[0]->addr;

        std::vector<const IrArray *> bases;
        collectArrayBases(ir, c.triggerExpr, bases);
        if (bases.size() != 1) {
            remarks.push_back("pragma: cannot infer bounds at chain root '" +
                              c.loads[0]->name + "'");
            continue;
        }
        c.triggerArray = bases[0];
        addChain(draft, c, /*ewma_lookahead=*/true);
        ++chains;
    }

    if (chains == 0) {
        res.failureReason = "pragma pass found no stride-rooted indirect "
                            "chains";
        res.program.remarks = std::move(remarks);
        return res;
    }

    res.program = lowerDraft(ir, draft, remarks);
    res.program.remarks = std::move(remarks);
    res.ok = !res.program.kernels.empty();
    if (res.ok)
        verifyLowered(res, res.program.remarks);
    return res;
}

} // namespace epf
