#include "compiler/event_program.hpp"

#include <cassert>

namespace epf
{

std::vector<KernelId>
EventProgram::installInto(ProgrammablePrefetcher &ppf) const
{
    // First pass: register kernels to learn their global ids.
    std::vector<KernelId> ids;
    ids.reserve(kernels.size());
    for (const auto &k : kernels)
        ids.push_back(ppf.kernels().add(k));

    // Allocate real global-register slots for this program's invariants.
    std::vector<int> slot_map;
    for (const auto &g : globals) {
        if (slot_map.size() <= g.slot)
            slot_map.resize(g.slot + 1, -1);
        slot_map[g.slot] =
            static_cast<int>(ppf.allocGlobal(g.value));
    }

    // Add filters; record local-filter -> global-filter mapping.
    std::vector<int> filter_ids;
    filter_ids.reserve(filters.size());
    for (const auto &f : filters) {
        FilterEntry e;
        e.name = f.name;
        e.base = f.base;
        e.limit = f.limit;
        e.onLoad = f.onLoadLocal >= 0
                       ? ids.at(static_cast<std::size_t>(f.onLoadLocal))
                       : kNoKernel;
        e.timeSource = f.timeSource;
        e.timedStart = f.timedStart;
        e.timedEnd = f.timedEnd;
        filter_ids.push_back(ppf.addFilter(e));
    }

    // Relocate inter-kernel references now that ids are known.  The
    // kernels were added by value; patch the registered copies.
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
        Kernel &installed = ppf.kernels().mutableKernel(ids[ki]);
        for (auto &in : installed.code) {
            if (in.op == Opcode::kPrefetchCb) {
                assert(in.imm >= 0 &&
                       in.imm < static_cast<std::int64_t>(ids.size()));
                in.imm = ids[static_cast<std::size_t>(in.imm)];
            } else if (in.op == Opcode::kLookahead) {
                assert(in.imm >= 0 &&
                       in.imm < static_cast<std::int64_t>(filter_ids.size()));
                in.imm = filter_ids[static_cast<std::size_t>(in.imm)];
            } else if (in.op == Opcode::kGread) {
                assert(in.imm >= 0 &&
                       static_cast<std::size_t>(in.imm) < slot_map.size() &&
                       slot_map[static_cast<std::size_t>(in.imm)] >= 0);
                in.imm = slot_map[static_cast<std::size_t>(in.imm)];
            }
        }
    }

    return ids;
}

} // namespace epf
