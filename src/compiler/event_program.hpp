/**
 * @file
 * The output of the compiler passes: a relocatable set of event kernels
 * plus the configuration (address bounds, global registers) the
 * generated code needs, ready to install into a programmable prefetcher.
 *
 * Kernel-to-kernel links (prefetch.cb) and lookahead reads reference
 * *local* indices inside the program; installInto() relocates them to the
 * ids the target prefetcher hands out.
 */

#ifndef EPF_COMPILER_EVENT_PROGRAM_HPP
#define EPF_COMPILER_EVENT_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "ppf/ppf.hpp"
#include "sim/types.hpp"

namespace epf
{

/** A compiled, relocatable prefetch-event program. */
struct EventProgram
{
    /** One global-register initialisation. */
    struct GlobalInit
    {
        unsigned slot;
        std::uint64_t value;
        std::string name;
    };

    /** One address-filter configuration. */
    struct FilterInit
    {
        std::string name;
        Addr base = 0;
        Addr limit = 0;
        /** Local kernel index run on loads in range (-1: none). */
        int onLoadLocal = -1;
        bool timeSource = false;
        bool timedStart = false;
        bool timedEnd = false;
    };

    std::vector<Kernel> kernels;
    std::vector<GlobalInit> globals;
    std::vector<FilterInit> filters;

    /** Human-readable pass log (what converted, what was removed). */
    std::vector<std::string> remarks;

    bool empty() const { return kernels.empty(); }

    /**
     * Install into @p ppf: registers kernels, relocating prefetch.cb
     * kernel ids and lookahead filter ids from program-local indices to
     * the target's; adds filter entries; writes global registers.
     *
     * @return the global kernel ids assigned, in program order.
     */
    std::vector<KernelId> installInto(ProgrammablePrefetcher &ppf) const;

    /** Approximate instruction-memory footprint in bytes. */
    std::size_t
    codeBytes() const
    {
        std::size_t n = 0;
        for (const auto &k : kernels)
            n += k.code.size() * 4;
        return n;
    }
};

/** Outcome of a compiler pass over one loop. */
struct PassResult
{
    bool ok = false;
    std::string failureReason;
    EventProgram program;
};

} // namespace epf

#endif // EPF_COMPILER_EVENT_PROGRAM_HPP
