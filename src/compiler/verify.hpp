/**
 * @file
 * Post-codegen verification of compiled event programs.
 *
 * The compiler's output is a relocatable EventProgram: callback and
 * lookahead operands are *local* indices, and each kernel's trigger
 * kind is explicit in the filter configuration.  That is everything the
 * static analyzer needs, so generated code can be verified before it is
 * ever installed — the compiler refuses to hand over a program whose
 * kernels could trap or loop, instead of letting the prefetcher
 * discover it mid-experiment.
 */

#ifndef EPF_COMPILER_VERIFY_HPP
#define EPF_COMPILER_VERIFY_HPP

#include <string>
#include <vector>

#include "compiler/event_program.hpp"
#include "isa/analysis/verifier.hpp"

namespace epf
{

/** Analysis of one compiled program (local-id space). */
struct ProgramVerification
{
    /** Per-kernel results, in program order. */
    std::vector<analysis::KernelAnalysis> kernels;
    /** Program-wide findings (callback cycles, code budget). */
    std::vector<analysis::Diag> programDiags;

    bool hasErrors() const;
    std::size_t diagCount() const;

    /** "kernel:pc: severity: [code] message" lines; empty when clean. */
    std::string format(const EventProgram &prog) const;
};

/**
 * Verify @p prog: every kernel under its filter-derived context
 * (onLoad triggers carry no line data, chained kernels always do,
 * lookahead reads checked against the program's own filter count), plus
 * local callback resolution, callback-cycle and code-budget checks.
 */
ProgramVerification verifyProgram(const EventProgram &prog);

} // namespace epf

#endif // EPF_COMPILER_VERIFY_HPP
