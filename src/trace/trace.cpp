#include "trace/trace.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace epf
{

namespace
{

// ---------------------------------------------------------------------------
// Fixed-width header.  All multi-byte fields little-endian; the patchable
// counters live at fixed offsets so finalize() can rewrite them in place.
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'E', 'P', 'F', 'T', 'R', 'C', '0', '1'};
constexpr std::size_t kOffRecordCount = 32;
constexpr std::size_t kOffStreamChecksum = 40;
constexpr std::size_t kOffWorkloadChecksum = 48;
constexpr std::size_t kOffFinalTick = 56;

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** LEB128 unsigned. */
void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Bounds-checked little-endian / varint decoding cursor. */
struct Cursor
{
    const std::uint8_t *p;
    std::size_t len;
    std::size_t at = 0;

    void
    need(std::size_t n) const
    {
        // Written to stay correct even if at + n would wrap.
        if (n > len || at > len - n)
            throw std::runtime_error("trace file truncated");
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(
            p[at] | (static_cast<std::uint16_t>(p[at + 1]) << 8));
        at += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[at + i]) << (8 * i);
        at += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[at + i]) << (8 * i);
        at += 8;
        return v;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            need(1);
            const std::uint8_t b = p[at++];
            if (shift >= 64)
                throw std::runtime_error("trace varint overflow");
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0)
                return v;
            shift += 7;
        }
    }

    std::string
    str(std::size_t n)
    {
        need(n);
        std::string s(reinterpret_cast<const char *>(p + at), n);
        at += n;
        return s;
    }
};

// Record byte 0: kind in the low 3 bits, presence flags above.
constexpr std::uint8_t kRecKindMask = 0x07;
constexpr std::uint8_t kRecHasAddr = 1u << 3;
constexpr std::uint8_t kRecHasPayload = 1u << 4;
constexpr std::uint8_t kRecHasProduces = 1u << 5;
constexpr std::uint8_t kRecHasDep0 = 1u << 6;
constexpr std::uint8_t kRecHasDep1 = 1u << 7;

constexpr unsigned kNumKinds = 6;

// Header sanity bounds.  A trace file is untrusted input (it may be
// truncated, bit-flipped, or not a trace at all), and its region table
// sizes replay-side allocations: without caps a single flipped bit in a
// region size turns open() into a multi-terabyte allocation.  The caps
// are far above anything a real capture produces.
constexpr std::uint32_t kMaxTraceRegions = 4096;
constexpr std::uint64_t kMaxTraceRegionBytes = 1ULL << 32; // 4 GiB total
constexpr double kMaxTraceScale = 1e6;

std::uint64_t
fnvUpdate(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

} // namespace

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string &path, const GuestMemory &gmem,
                         const std::string &source_workload,
                         double scale_factor, std::uint64_t seed,
                         bool with_swpf)
    : gmem_(gmem)
{
    meta_.flags = with_swpf ? kTraceFlagSwpf : 0;
    meta_.seed = seed;
    meta_.scaleFactor = scale_factor;
    meta_.sourceWorkload = source_workload;
    for (const auto &r : gmem.regions())
        meta_.regions.push_back({r.name, r.base, r.size});

    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        throw std::runtime_error("TraceWriter: cannot open " + path);

    std::vector<std::uint8_t> hdr;
    hdr.insert(hdr.end(), kMagic, kMagic + sizeof kMagic);
    putU32(hdr, kTraceVersion);
    putU32(hdr, meta_.flags);
    putU64(hdr, meta_.seed);
    std::uint64_t scale_bits;
    static_assert(sizeof scale_bits == sizeof meta_.scaleFactor);
    std::memcpy(&scale_bits, &meta_.scaleFactor, sizeof scale_bits);
    putU64(hdr, scale_bits);
    putU64(hdr, 0); // record count, patched
    putU64(hdr, 0); // stream checksum, patched
    putU64(hdr, 0); // workload checksum, patched
    putU64(hdr, 0); // final tick, patched
    putU16(hdr, static_cast<std::uint16_t>(meta_.sourceWorkload.size()));
    hdr.insert(hdr.end(), meta_.sourceWorkload.begin(),
               meta_.sourceWorkload.end());
    putU32(hdr, static_cast<std::uint32_t>(meta_.regions.size()));
    for (const auto &r : meta_.regions) {
        putU16(hdr, static_cast<std::uint16_t>(r.name.size()));
        hdr.insert(hdr.end(), r.name.begin(), r.name.end());
        putU64(hdr, r.base);
        putU64(hdr, r.size);
    }
    if (std::fwrite(hdr.data(), 1, hdr.size(), file_) != hdr.size())
        throw std::runtime_error("TraceWriter: header write failed");

    buf_.reserve(1 << 20);
}

TraceWriter::~TraceWriter()
{
    // Last-resort finalize only; a capture already failing (e.g. disk
    // full mid-flush) must not escalate to std::terminate during the
    // unwind that is reporting it.
    if (!finalized_ && file_ != nullptr) {
        try {
            finalize(meta_.workloadChecksum);
        } catch (...) {
        }
    }
    if (file_ != nullptr)
        std::fclose(file_);
}

void
TraceWriter::onMicroOp(Tick now, const MicroOp &op)
{
    TraceRecord rec;
    rec.tick = now;
    rec.kind = op.kind;
    rec.instrs = op.instrs;
    rec.addr = op.vaddr;
    rec.streamId = op.streamId;
    rec.produces = op.produces;
    rec.deps = {op.deps[0], op.deps[1]};

    std::uint8_t b0 = static_cast<std::uint8_t>(op.kind);
    const bool has_addr = TraceRecord::hasAddr(op.kind);
    if (has_addr)
        b0 |= kRecHasAddr;
    if (op.kind == MicroOp::Kind::PfConfig)
        meta_.flags |= kTraceFlagPfConfig;

    // Snapshot the mapped span of the touched line, deduped against the
    // last capture of that line: replay re-applies these snapshots at
    // the same fetch instants, keeping the data the PPF observes in
    // sync with the live run.
    if (has_addr) {
        const Addr line = lineAlign(op.vaddr);
        std::array<std::byte, kLineBytes> cur{};
        const std::size_t n = gmem_.readSpan(line, cur.data(), kLineBytes);
        if (n > 0) {
            auto [it, fresh] = lastLine_.try_emplace(line, cur);
            if (fresh || std::memcmp(it->second.data(), cur.data(), n) != 0) {
                it->second = cur;
                rec.payloadLen = static_cast<std::uint8_t>(n);
                rec.payload = cur;
                b0 |= kRecHasPayload;
            }
        }
    }

    if (op.produces != 0)
        b0 |= kRecHasProduces;
    if (op.deps[0] != 0)
        b0 |= kRecHasDep0;
    if (op.deps[1] != 0)
        b0 |= kRecHasDep1;

    buf_.push_back(b0);
    putVarint(buf_, now - prevTick_);
    prevTick_ = now;
    putVarint(buf_, op.instrs);
    if (has_addr) {
        putVarint(buf_, zigzag(static_cast<std::int64_t>(op.vaddr) -
                               static_cast<std::int64_t>(prevAddr_)));
        prevAddr_ = op.vaddr;
        putVarint(buf_, zigzag(op.streamId));
    }
    if (op.produces != 0)
        putVarint(buf_, op.produces);
    if (op.deps[0] != 0)
        putVarint(buf_, op.deps[0]);
    if (op.deps[1] != 0)
        putVarint(buf_, op.deps[1]);
    if (rec.payloadLen > 0) {
        putVarint(buf_, rec.payloadLen);
        const auto *pp = reinterpret_cast<const std::uint8_t *>(
            rec.payload.data());
        buf_.insert(buf_.end(), pp, pp + rec.payloadLen);
    }

    ++meta_.recordCount;
    meta_.finalTick = now;
    if (buf_.size() >= (1 << 20))
        flushBuffer();
}

void
TraceWriter::flushBuffer()
{
    if (buf_.empty())
        return;
    fnv_ = fnvUpdate(fnv_, buf_.data(), buf_.size());
    if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size())
        throw std::runtime_error("TraceWriter: record write failed");
    buf_.clear();
}

void
TraceWriter::finalize(std::uint64_t workload_checksum)
{
    if (finalized_)
        return;
    flushBuffer();
    meta_.streamChecksum = fnv_;
    meta_.workloadChecksum = workload_checksum;
    patchHeader();
    finalized_ = true;
}

void
TraceWriter::patchHeader()
{
    auto patch = [&](long off, std::uint64_t v) {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        if (std::fseek(file_, off, SEEK_SET) != 0 ||
            std::fwrite(b, 1, 8, file_) != 8)
            throw std::runtime_error("TraceWriter: header patch failed");
    };
    patch(kOffRecordCount, meta_.recordCount);
    patch(kOffStreamChecksum, meta_.streamChecksum);
    patch(kOffWorkloadChecksum, meta_.workloadChecksum);
    patch(kOffFinalTick, meta_.finalTick);
    // The PfConfig flag is only known once records exist.
    std::uint8_t fb[4];
    for (int i = 0; i < 4; ++i)
        fb[i] = static_cast<std::uint8_t>(meta_.flags >> (8 * i));
    if (std::fseek(file_, 12, SEEK_SET) != 0 ||
        std::fwrite(fb, 1, 4, file_) != 4)
        throw std::runtime_error("TraceWriter: header patch failed");
    std::fflush(file_);
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TraceReader::TraceReader(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw std::runtime_error("TraceReader: cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    bytes_.resize(sz > 0 ? static_cast<std::size_t>(sz) : 0);
    if (!bytes_.empty() &&
        std::fread(bytes_.data(), 1, bytes_.size(), f) != bytes_.size()) {
        std::fclose(f);
        throw std::runtime_error("TraceReader: read failed on " + path);
    }
    std::fclose(f);

    Cursor c{bytes_.data(), bytes_.size()};
    c.need(sizeof kMagic);
    if (std::memcmp(c.p, kMagic, sizeof kMagic) != 0)
        throw std::runtime_error("TraceReader: bad magic in " + path);
    c.at = sizeof kMagic;
    meta_.version = c.u32();
    if (meta_.version != kTraceVersion)
        throw std::runtime_error("TraceReader: unsupported trace version " +
                                 std::to_string(meta_.version));
    meta_.flags = c.u32();
    meta_.seed = c.u64();
    const std::uint64_t scale_bits = c.u64();
    std::memcpy(&meta_.scaleFactor, &scale_bits, sizeof meta_.scaleFactor);
    // The scale factor seeds workload regeneration on replay; a NaN or
    // absurd value (a bit-flipped header) would propagate into input
    // sizing, so reject it here with a diagnosable error instead.
    if (!std::isfinite(meta_.scaleFactor) || meta_.scaleFactor <= 0.0 ||
        meta_.scaleFactor > kMaxTraceScale)
        throw std::runtime_error(
            "TraceReader: corrupt scale factor in " + path);
    meta_.recordCount = c.u64();
    meta_.streamChecksum = c.u64();
    meta_.workloadChecksum = c.u64();
    meta_.finalTick = c.u64();
    meta_.sourceWorkload = c.str(c.u16());
    const std::uint32_t nregions = c.u32();
    if (nregions > kMaxTraceRegions)
        throw std::runtime_error(
            "TraceReader: corrupt region count in " + path);
    std::uint64_t region_bytes = 0;
    for (std::uint32_t i = 0; i < nregions; ++i) {
        TraceRegion r;
        r.name = c.str(c.u16());
        r.base = c.u64();
        r.size = c.u64();
        // Replay allocates a buffer per region; cap the total so a
        // bit-flipped size fails cleanly instead of as an OOM.  The
        // individual check runs first so the sum cannot wrap.
        if (r.size > kMaxTraceRegionBytes)
            throw std::runtime_error(
                "TraceReader: corrupt region size in " + path);
        region_bytes += r.size;
        if (region_bytes > kMaxTraceRegionBytes)
            throw std::runtime_error(
                "TraceReader: corrupt region size in " + path);
        meta_.regions.push_back(std::move(r));
    }
    recordsBegin_ = c.at;

    // Every record costs at least three bytes (flag byte plus two
    // varints), so a record count exceeding the record-byte budget can
    // only come from a corrupt header — next() would otherwise walk off
    // the end mid-stream with a less specific error.
    if (meta_.recordCount > (bytes_.size() - recordsBegin_ + 2) / 3)
        throw std::runtime_error(
            "TraceReader: corrupt record count in " + path);

    const std::uint64_t actual = fnvUpdate(
        0xCBF29CE484222325ULL, bytes_.data() + recordsBegin_,
        bytes_.size() - recordsBegin_);
    if (actual != meta_.streamChecksum)
        throw std::runtime_error("TraceReader: stream checksum mismatch in " +
                                 path + " (file corrupt or truncated)");
    rewind();
}

void
TraceReader::rewind()
{
    pos_ = recordsBegin_;
    decoded_ = 0;
    prevTick_ = 0;
    prevAddr_ = 0;
}

bool
TraceReader::next(TraceRecord &out)
{
    if (decoded_ >= meta_.recordCount)
        return false;
    Cursor c{bytes_.data(), bytes_.size(), pos_};

    c.need(1);
    const std::uint8_t b0 = c.p[c.at++];
    const unsigned kind = b0 & kRecKindMask;
    if (kind >= kNumKinds)
        throw std::runtime_error("TraceReader: invalid op kind");
    out.kind = static_cast<MicroOp::Kind>(kind);

    out.tick = prevTick_ + c.varint();
    prevTick_ = out.tick;
    out.instrs = static_cast<std::uint32_t>(c.varint());
    if ((b0 & kRecHasAddr) != 0) {
        out.addr = static_cast<Addr>(
            static_cast<std::int64_t>(prevAddr_) +
            unzigzag(c.varint()));
        prevAddr_ = out.addr;
        out.streamId = static_cast<std::int16_t>(unzigzag(c.varint()));
    } else {
        out.addr = 0;
        out.streamId = -1;
    }
    out.produces = (b0 & kRecHasProduces) != 0
                       ? static_cast<std::uint32_t>(c.varint())
                       : 0;
    out.deps[0] = (b0 & kRecHasDep0) != 0
                      ? static_cast<std::uint32_t>(c.varint())
                      : 0;
    out.deps[1] = (b0 & kRecHasDep1) != 0
                      ? static_cast<std::uint32_t>(c.varint())
                      : 0;
    if ((b0 & kRecHasPayload) != 0) {
        const std::uint64_t n = c.varint();
        if (n == 0 || n > kLineBytes)
            throw std::runtime_error("TraceReader: bad payload length");
        c.need(n);
        out.payloadLen = static_cast<std::uint8_t>(n);
        std::memcpy(out.payload.data(), c.p + c.at, n);
        c.at += n;
    } else {
        out.payloadLen = 0;
    }

    pos_ = c.at;
    ++decoded_;
    return true;
}

} // namespace epf
