/**
 * @file
 * Binary capture/replay format for main-core micro-op traces.
 *
 * A trace file records the exact op stream a Core fetched during one
 * experiment — kind, instruction count, address, stream id (the PC
 * proxy), value ids — plus, for every op that names a mapped address,
 * the live content of the touched cache line at fetch time.  Workload
 * generators mutate their host arrays as they yield ops; those payloads
 * are what lets a replay reproduce the data the programmable prefetcher
 * observes (its kernels read guest memory when prefetch fills arrive),
 * and therefore the live run's timing, bit for bit.
 *
 * Layout: a fixed-width little-endian header (so finalize() can patch
 * the record count and checksums in place), a region table naming every
 * guest region the capture run had mapped, then varint/delta-encoded
 * records.  The stream checksum (FNV-1a over the encoded record bytes)
 * is verified on load; a corrupt or truncated file fails before any
 * replay starts.
 */

#ifndef EPF_TRACE_TRACE_HPP
#define EPF_TRACE_TRACE_HPP

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/core.hpp"
#include "cpu/micro_op.hpp"
#include "mem/guest_memory.hpp"
#include "sim/types.hpp"

namespace epf
{

/** Format revision; bump on any layout change. */
constexpr std::uint32_t kTraceVersion = 1;

/** Header flag: the stream was captured with software-prefetch ops. */
constexpr std::uint32_t kTraceFlagSwpf = 1u << 0;
/** Header flag: the stream contains PfConfig ops, whose configuration
 *  callbacks cannot be serialised — replay runs them as timing-only. */
constexpr std::uint32_t kTraceFlagPfConfig = 1u << 1;

/** One guest region that was mapped during capture. */
struct TraceRegion
{
    std::string name;
    Addr base = 0;
    std::uint64_t size = 0;
};

/** Everything the header records about the captured run. */
struct TraceMeta
{
    std::uint32_t version = kTraceVersion;
    std::uint32_t flags = 0;
    /** Seed the source workload's setup() ran with. */
    std::uint64_t seed = 0;
    /** WorkloadScale::factor of the source workload. */
    double scaleFactor = 1.0;
    std::uint64_t recordCount = 0;
    /** FNV-1a over the encoded record bytes. */
    std::uint64_t streamChecksum = 0;
    /** The source workload's functional checksum() after the run. */
    std::uint64_t workloadChecksum = 0;
    /** Fetch tick of the last record. */
    std::uint64_t finalTick = 0;
    /** Registry name of the source workload ("" = unknown origin). */
    std::string sourceWorkload;
    std::vector<TraceRegion> regions;

    bool withSwpf() const { return (flags & kTraceFlagSwpf) != 0; }
    bool hasPfConfig() const { return (flags & kTraceFlagPfConfig) != 0; }
};

/** One decoded trace record: a micro-op plus its capture context. */
struct TraceRecord
{
    /** EventQueue tick at which the core fetched this op. */
    Tick tick = 0;
    MicroOp::Kind kind = MicroOp::Kind::Work;
    std::uint32_t instrs = 1;
    Addr addr = 0;
    /** Stable load/store-site id — the PC proxy. */
    std::int16_t streamId = -1;
    std::uint32_t produces = 0;
    std::array<std::uint32_t, 2> deps{{0, 0}};
    /** Bytes of line content captured at fetch (0 = none/unchanged). */
    std::uint8_t payloadLen = 0;
    std::array<std::byte, kLineBytes> payload{};

    /** True for kinds that carry a target address. */
    static bool
    hasAddr(MicroOp::Kind k)
    {
        return k == MicroOp::Kind::Load || k == MicroOp::Kind::Store ||
               k == MicroOp::Kind::SwPrefetch;
    }
};

/**
 * Streams captured micro-ops to a file.  Implements the Core's fetch
 * hook; attach with Core::setFetchSink().  Payload capture snapshots
 * the mapped part of the cache line under every addressed op, deduped
 * against the last captured content of that line so static arrays
 * (edge lists, key columns) are written once, not per access.
 */
class TraceWriter : public MicroOpSink
{
  public:
    /**
     * Open @p path and write the provisional header.  @p gmem must
     * outlive the writer and already hold every region (capture starts
     * after workload setup).  Throws std::runtime_error on I/O failure.
     */
    TraceWriter(const std::string &path, const GuestMemory &gmem,
                const std::string &source_workload, double scale_factor,
                std::uint64_t seed, bool with_swpf);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Core fetch hook: encode one op at @p now. */
    void onMicroOp(Tick now, const MicroOp &op) override;

    /**
     * Flush buffered records and patch the header with the record
     * count, checksums and @p workload_checksum.  Idempotent; also run
     * by the destructor (without a workload checksum) as a last resort.
     */
    void finalize(std::uint64_t workload_checksum);

    std::uint64_t recordCount() const { return meta_.recordCount; }

  private:
    void flushBuffer();
    void patchHeader();

    const GuestMemory &gmem_;
    TraceMeta meta_;
    std::FILE *file_ = nullptr;
    std::vector<std::uint8_t> buf_;
    /** Last captured content per line base (payload dedup). */
    std::unordered_map<Addr, std::array<std::byte, kLineBytes>> lastLine_;
    Tick prevTick_ = 0;
    Addr prevAddr_ = 0;
    std::uint64_t fnv_ = 0xCBF29CE484222325ULL;
    bool finalized_ = false;
};

/**
 * Loads a trace file into memory, validates the header and stream
 * checksum up front, then decodes records on demand.
 */
class TraceReader
{
  public:
    /** Load and validate @p path; throws std::runtime_error on any
     *  malformed, truncated or checksum-mismatched input. */
    explicit TraceReader(const std::string &path);

    const TraceMeta &meta() const { return meta_; }

    /** Restart decoding from the first record. */
    void rewind();

    /** Decode the next record into @p out; false at end of stream. */
    bool next(TraceRecord &out);

  private:
    TraceMeta meta_;
    std::vector<std::uint8_t> bytes_;
    std::size_t recordsBegin_ = 0;
    std::size_t pos_ = 0;
    std::uint64_t decoded_ = 0;
    Tick prevTick_ = 0;
    Addr prevAddr_ = 0;
};

} // namespace epf

#endif // EPF_TRACE_TRACE_HPP
