#include "isa/isa.hpp"

#include "isa/analysis/verifier.hpp"

namespace epf
{

KernelId
KernelTable::add(Kernel k)
{
    if (strict_)
        analysis::verifyOrThrow(k);
    ++version_;
    kernels_.push_back(std::move(k));
    return static_cast<KernelId>(kernels_.size() - 1);
}

} // namespace epf
