#include "isa/analysis/verifier.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "isa/analysis/dataflow.hpp"
#include "isa/disasm.hpp"
#include "sim/types.hpp"

namespace epf::analysis
{
namespace
{

constexpr std::uint32_t kAllRegs = (1u << kPpuRegs) - 1;

std::uint32_t
bit(std::uint8_t reg)
{
    return 1u << (reg % kPpuRegs);
}

/** Register read and write sets of one instruction. */
struct UseDef
{
    std::uint32_t uses = 0;
    std::uint32_t defs = 0;
};

UseDef
useDef(const Instr &in)
{
    switch (in.op) {
      case Opcode::kHalt:
      case Opcode::kNop:
      case Opcode::kJmp:
        return {};
      // Observation and prefetcher-state reads are implicit defs: the
      // value comes from the event, not from a register.
      case Opcode::kLi:
      case Opcode::kVaddr:
      case Opcode::kLineBase:
      case Opcode::kGread:
      case Opcode::kLookahead:
        return {0, bit(in.rd)};
      case Opcode::kMov:
        return {bit(in.rs), bit(in.rd)};
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
        return {bit(in.rs) | bit(in.rt), bit(in.rd)};
      case Opcode::kAddi:
      case Opcode::kMuli:
      case Opcode::kDivi:
      case Opcode::kAndi:
      case Opcode::kShli:
      case Opcode::kShri:
      case Opcode::kLdLine:
      case Opcode::kLdLine32:
        return {bit(in.rs), bit(in.rd)};
      case Opcode::kPrefetch:
      case Opcode::kPrefetchTag:
      case Opcode::kPrefetchCb:
        return {bit(in.rs), 0};
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
        return {bit(in.rs) | bit(in.rt), 0};
    }
    return {}; // out-of-enum opcode byte: runs as a no-op
}

bool
isEmit(Opcode op)
{
    return op == Opcode::kPrefetch || op == Opcode::kPrefetchTag ||
           op == Opcode::kPrefetchCb;
}

std::string
trapWhy(const Instr &in, const KernelContext &ctx)
{
    switch (in.op) {
      case Opcode::kDivi:
        return "divi by the zero immediate traps on every execution";
      case Opcode::kGread:
        return "gread index " + std::to_string(in.imm) +
               " is outside [0, " + std::to_string(kGlobalRegs) + ")";
      case Opcode::kLookahead:
        if (in.imm < 0)
            return "lookahead index " + std::to_string(in.imm) +
                   " is negative";
        return "lookahead index " + std::to_string(in.imm) +
               " >= the " + std::to_string(ctx.lookaheadEntries) +
               " installed filter entries";
      case Opcode::kLdLine:
      case Opcode::kLdLine32:
        return "ldline on an event kind that never carries line data";
      default:
        return "instruction traps on every execution";
    }
}

void
sortByPc(std::vector<Diag> &diags)
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diag &a, const Diag &b) { return a.pc < b.pc; });
}

/** Attach the disassembled instruction to every pc-anchored diag so the
 *  finding is actionable without a second lookup. */
void
fillInstrText(std::vector<Diag> &diags, const std::vector<Instr> &code)
{
    for (Diag &d : diags)
        if (d.pc != kNoPc && static_cast<std::size_t>(d.pc) < code.size() &&
            d.instrText.empty())
            d.instrText = disassemble(code[static_cast<std::size_t>(d.pc)]);
}

std::string
refinedTrapWhy(const Instr &in, const KernelContext &ctx)
{
    switch (in.op) {
      case Opcode::kDiv:
        return "division provably traps on every execution (divisor is "
               "zero or the INT64_MIN / -1 overflow)";
      case Opcode::kDivi:
        return "divi #-1 provably overflows: rs is INT64_MIN on every "
               "execution";
      default:
        return trapWhy(in, ctx);
    }
}

/**
 * Can the prefetch target range [lo, hi] (signed bounds on the emitted
 * address) touch the region, with a line of slack either side?  The
 * negative half of the signed range maps to addresses above 2^63 —
 * far outside any modelled region, but only provably so when the whole
 * range is non-negative, so a possibly-negative lo disables the check.
 */
bool
mayTouchRegion(std::int64_t lo, std::int64_t hi,
               const KernelContext::AddrRegion &r)
{
    const auto ulo = static_cast<std::uint64_t>(lo);
    const auto uhi = static_cast<std::uint64_t>(hi);
    const std::uint64_t slack = kLineBytes;
    auto satAdd = [](std::uint64_t a, std::uint64_t b) {
        const std::uint64_t s = a + b;
        return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
    };
    const std::uint64_t regionLo = r.base > slack ? r.base - slack : 0;
    const std::uint64_t regionHi = satAdd(satAdd(r.base, r.size), slack);
    return uhi >= regionLo && ulo < regionHi;
}

} // namespace

bool
alwaysTraps(const Instr &in)
{
    switch (in.op) {
      case Opcode::kDivi:
        return in.imm == 0;
      case Opcode::kGread:
        return in.imm < 0 ||
               in.imm >= static_cast<std::int64_t>(kGlobalRegs);
      case Opcode::kLookahead:
        return in.imm < 0;
      default:
        return false;
    }
}

bool
alwaysTraps(const Instr &in, const KernelContext &ctx)
{
    if (alwaysTraps(in))
        return true;
    switch (in.op) {
      case Opcode::kLdLine:
      case Opcode::kLdLine32:
        return ctx.line == KernelContext::Line::kNever;
      case Opcode::kLookahead:
        return ctx.lookaheadEntries >= 0 && in.imm >= ctx.lookaheadEntries;
      default:
        return false;
    }
}

bool
mayTrap(const Instr &in, const KernelContext &ctx)
{
    if (alwaysTraps(in, ctx))
        return true;
    switch (in.op) {
      case Opcode::kDiv:
        return true; // register divisor: zero or INT64_MIN / -1
      case Opcode::kDivi:
        return in.imm == -1; // INT64_MIN / -1 overflow
      case Opcode::kLdLine:
      case Opcode::kLdLine32:
        return ctx.line != KernelContext::Line::kAlways;
      case Opcode::kGread:
        return !ctx.globalsPresent;
      case Opcode::kLookahead:
        return ctx.lookaheadEntries < 0; // installed count unknown
      default:
        return false;
    }
}

std::vector<BlockWeight>
blockWeights(const Cfg &cfg, const std::vector<Instr> &code)
{
    std::vector<BlockWeight> out(cfg.size());
    for (std::size_t b = 0; b < cfg.size(); ++b) {
        const Block &blk = cfg.blocks()[b];
        out[b].cycles = blk.length(); // 1 cycle per executed instruction
        for (std::uint32_t pc = blk.first; pc <= blk.last; ++pc)
            if (isEmit(code[pc].op))
                ++out[b].emits;
    }
    return out;
}

KernelAnalysis
analyzeKernel(const Kernel &k, const KernelContext &ctx)
{
    KernelAnalysis out;
    const std::vector<Instr> &code = k.code;
    const auto size = static_cast<std::uint32_t>(code.size());

    if (size == 0) {
        out.diags.push_back({Severity::kError, kNoPc, DiagCode::kEmptyKernel,
                             "kernel has no instructions; any event traps "
                             "immediately"});
        out.acyclic = true;
        return out;
    }

    // Static trap facts first: proven-trapping instructions terminate
    // their block, so the CFG (and everything downstream — reachability,
    // dataflow, cost) models execution stopping there.
    std::vector<std::uint8_t> trapAt(size, 0);
    for (std::uint32_t pc = 0; pc < size; ++pc)
        trapAt[pc] = alwaysTraps(code[pc], ctx) ? 1 : 0;

    const Cfg cfg(code, trapAt);

    out.reachablePc.assign(size, 0);
    for (const Block &b : cfg.blocks())
        if (b.reachable)
            for (std::uint32_t pc = b.first; pc <= b.last; ++pc)
                out.reachablePc[pc] = 1;

    // ---- control-flow validity --------------------------------------
    bool boundaryReachable = false;
    for (const Block &b : cfg.blocks()) {
        if (!b.reachable)
            continue;
        if (b.toBoundary)
            boundaryReachable = true;
        const Instr &last = code[b.last];
        if (b.exit != BlockExit::kFlows)
            continue;
        if (isBranch(last.op)) {
            const std::int64_t t = branchTarget(last, b.last);
            if (t < 0 || t >= static_cast<std::int64_t>(size))
                out.diags.push_back(
                    {Severity::kError, static_cast<int>(b.last),
                     DiagCode::kBadBranchTarget,
                     "branch target " + std::to_string(t) +
                         " is outside [0, " + std::to_string(size) + ")"});
        }
        // A conditional branch (or any non-jmp) at the end of the code
        // falls past the last instruction on its not-taken path.
        if (last.op != Opcode::kJmp && b.last + 1 == size)
            out.diags.push_back(
                {Severity::kError, static_cast<int>(b.last),
                 DiagCode::kFallOffEnd,
                 "execution can fall past the last instruction without "
                 "halt"});
    }
    for (const Block &b : cfg.blocks()) {
        if (b.reachable)
            continue;
        const std::string range =
            b.first == b.last
                ? "instruction " + std::to_string(b.first)
                : "instructions " + std::to_string(b.first) + ".." +
                      std::to_string(b.last);
        out.diags.push_back({Severity::kWarning, static_cast<int>(b.first),
                             DiagCode::kUnreachableCode,
                             range + " unreachable from the entry"});
    }

    // ---- static trap proofs (value-refined) -------------------------
    // The dataflow fixpoint sharpens the instruction-local facts: a div
    // whose divisor interval excludes zero is proven trap-free, a
    // divisor pinned to zero is a guaranteed trap, and pcs on proven-
    // dead paths never execute at all.
    const DataflowResult df = analyzeDataflow(code, cfg, ctx);
    out.trapFreePc.assign(size, 0);
    bool reachableTrap = false;
    bool reachableMayTrap = false;
    for (std::uint32_t pc = 0; pc < size; ++pc) {
        out.trapFreePc[pc] = df.provenTrapFree(pc) ? 1 : 0;
        if (!out.reachablePc[pc] || !df.in[pc].feasible)
            continue;
        if (df.alwaysTrapsPc[pc] != 0) {
            reachableTrap = true;
            out.diags.push_back({Severity::kError, static_cast<int>(pc),
                                 DiagCode::kGuaranteedTrap,
                                 trapAt[pc] != 0
                                     ? trapWhy(code[pc], ctx)
                                     : refinedTrapWhy(code[pc], ctx)});
        } else if (df.mayTrapPc[pc] != 0) {
            reachableMayTrap = true;
        }
    }
    out.provenTrapFree =
        !boundaryReachable && !reachableTrap && !reachableMayTrap;

    // ---- value-analysis warnings ------------------------------------
    // All three families fire only on PROVEN facts (a constant or
    // provably-disjoint range), so top states — the common case —
    // stay silent.
    for (std::uint32_t pc = 0; pc < size; ++pc) {
        if (!out.reachablePc[pc] || !df.in[pc].feasible)
            continue;
        const Instr &in = code[pc];
        const RegState &st = df.in[pc];
        if (isEmit(in.op)) {
            const AbsValue &addr = st.reg[in.rs % kPpuRegs];
            if (const auto c = addr.asConst()) {
                out.diags.push_back(
                    {Severity::kWarning, static_cast<int>(pc),
                     DiagCode::kDegeneratePrefetch,
                     "prefetch address is always " + std::to_string(*c) +
                         ": the same line is fetched on every event"});
            } else if (!ctx.regions.empty() && addr.iv.lo >= 0) {
                bool touches = false;
                for (const KernelContext::AddrRegion &r : ctx.regions)
                    if (mayTouchRegion(addr.iv.lo, addr.iv.hi, r))
                        touches = true;
                if (!touches)
                    out.diags.push_back(
                        {Severity::kWarning, static_cast<int>(pc),
                         DiagCode::kOutOfRegionPrefetch,
                         "prefetch address range [" +
                             std::to_string(addr.iv.lo) + ", " +
                             std::to_string(addr.iv.hi) +
                             "] is provably outside every declared "
                             "memory region"});
            }
        }
        if (isCondBranch(in.op)) {
            switch (branchOutcome(in, st)) {
              case BranchOutcome::kAlwaysTaken:
                out.diags.push_back(
                    {Severity::kWarning, static_cast<int>(pc),
                     DiagCode::kConstantBranch,
                     "branch is taken on every execution; the "
                     "fall-through arm is dead"});
                break;
              case BranchOutcome::kNeverTaken:
                out.diags.push_back(
                    {Severity::kWarning, static_cast<int>(pc),
                     DiagCode::kConstantBranch,
                     "branch is never taken; the taken arm is dead"});
                break;
              case BranchOutcome::kUnknown:
                break;
            }
        }
    }

    // ---- dead assignments (backward liveness) -----------------------
    // A def no path reads before overwrite or exit.  The instruction
    // may still matter for its trap side effect, so this is a lint on
    // the unused value, not a removability proof.
    {
        const std::size_t nb = cfg.size();
        std::vector<std::uint32_t> liveIn(nb, 0);
        std::vector<std::uint32_t> liveOut(nb, 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (auto it = cfg.rpo().rbegin(); it != cfg.rpo().rend(); ++it) {
                const std::uint32_t b = *it;
                const Block &blk = cfg.blocks()[b];
                std::uint32_t lo = 0;
                for (std::uint32_t s : blk.succs)
                    lo |= liveIn[s];
                std::uint32_t live = lo;
                for (std::uint32_t pc = blk.last + 1; pc-- > blk.first;) {
                    const UseDef ud = useDef(code[pc]);
                    live = (live & ~ud.defs) | ud.uses;
                }
                if (lo != liveOut[b] || live != liveIn[b]) {
                    liveOut[b] = lo;
                    liveIn[b] = live;
                    changed = true;
                }
            }
        }
        for (std::uint32_t bi : cfg.rpo()) {
            const Block &blk = cfg.blocks()[bi];
            std::uint32_t live = liveOut[bi];
            for (std::uint32_t pc = blk.last + 1; pc-- > blk.first;) {
                const UseDef ud = useDef(code[pc]);
                const std::uint32_t dead = ud.defs & ~live;
                if (dead != 0 && df.in[pc].feasible) {
                    for (unsigned r = 0; r < kPpuRegs; ++r)
                        if ((dead & (1u << r)) != 0)
                            out.diags.push_back(
                                {Severity::kWarning, static_cast<int>(pc),
                                 DiagCode::kDeadAssignment,
                                 "r" + std::to_string(r) +
                                     " is assigned here but never read "
                                     "afterwards on any path"});
                }
                live = (live & ~ud.defs) | ud.uses;
            }
        }
    }

    // ---- uninitialized-register reads (must-assigned dataflow) ------
    // Forward analysis; a register is "initialized" on entry to a block
    // only if every predecessor path assigns it.  The hardware zeroes
    // the file at event entry, so a failure is a warning, not an error.
    {
        const std::size_t nb = cfg.size();
        std::vector<std::uint32_t> in(nb, kAllRegs);
        std::vector<std::uint32_t> outSet(nb, kAllRegs);
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::uint32_t b : cfg.rpo()) {
                std::uint32_t cur = kAllRegs;
                if (cfg.preds(b).empty())
                    cur = 0; // the entry (and only the entry) is reachable
                             // with nothing assigned
                for (std::uint32_t p : cfg.preds(b))
                    cur &= outSet[p];
                if (cur != in[b]) {
                    in[b] = cur;
                    changed = true;
                }
                std::uint32_t defs = cur;
                const Block &blk = cfg.blocks()[b];
                for (std::uint32_t pc = blk.first; pc <= blk.last; ++pc)
                    defs |= useDef(code[pc]).defs;
                if (defs != outSet[b]) {
                    outSet[b] = defs;
                    changed = true;
                }
            }
        }
        std::vector<std::uint32_t> reported(size, 0);
        for (std::uint32_t b : cfg.rpo()) {
            std::uint32_t assigned = in[b];
            const Block &blk = cfg.blocks()[b];
            for (std::uint32_t pc = blk.first; pc <= blk.last; ++pc) {
                const UseDef ud = useDef(code[pc]);
                std::uint32_t bad = ud.uses & ~assigned & ~reported[pc];
                for (unsigned r = 0; r < kPpuRegs; ++r) {
                    if ((bad & (1u << r)) == 0)
                        continue;
                    out.diags.push_back(
                        {Severity::kWarning, static_cast<int>(pc),
                         DiagCode::kUninitRead,
                         "r" + std::to_string(r) +
                             " read before any definition (zero at event "
                             "entry)"});
                }
                reported[pc] |= bad;
                assigned |= ud.defs;
            }
        }
    }

    // ---- cost bounds -------------------------------------------------
    out.acyclic = cfg.acyclic();
    if (!out.acyclic) {
        out.diags.push_back(
            {Severity::kWarning, kNoPc, DiagCode::kWatchdogLoop,
             "control flow contains a cycle; worst case is bounded only "
             "by the " +
                 std::to_string(kMaxKernelSteps) + "-step watchdog"});
        out.maxCycles = kMaxKernelSteps;
        out.maxEmits = kMaxKernelSteps; // at most one emit per cycle
    } else {
        // Longest path over the DAG in reverse postorder, with the
        // shared per-block weights (blockWeights) as edge costs — the
        // same exact block totals superblock execution bulk-charges.
        // The two maxima are taken over independent paths; each is
        // attained by a real CFG path.
        const std::size_t nb = cfg.size();
        const std::vector<BlockWeight> w = blockWeights(cfg, code);
        std::vector<std::uint32_t> cyc(nb, 0);
        std::vector<std::uint32_t> emit(nb, 0);
        for (std::uint32_t b : cfg.rpo()) {
            std::uint32_t bestC = 0;
            std::uint32_t bestE = 0;
            for (std::uint32_t p : cfg.preds(b)) {
                bestC = std::max(bestC, cyc[p]);
                bestE = std::max(bestE, emit[p]);
            }
            cyc[b] = bestC + w[b].cycles;
            emit[b] = bestE + w[b].emits;
            out.maxCycles = std::max(out.maxCycles, cyc[b]);
            out.maxEmits = std::max(out.maxEmits, emit[b]);
        }
    }

    fillInstrText(out.diags, code);
    sortByPc(out.diags);
    return out;
}

bool
TableAnalysis::hasErrors() const
{
    if (analysis::hasErrors(tableDiags))
        return true;
    for (const KernelAnalysis &k : kernels)
        if (k.hasErrors())
            return true;
    return false;
}

std::size_t
TableAnalysis::diagCount() const
{
    std::size_t n = tableDiags.size();
    for (const KernelAnalysis &k : kernels)
        n += k.diags.size();
    return n;
}

TableAnalysis
analyzeTable(const KernelTable &table,
             const std::function<KernelContext(KernelId)> &ctxFor)
{
    TableAnalysis ta;
    const auto n = static_cast<KernelId>(table.size());
    ta.kernels.reserve(table.size());
    for (KernelId id = 0; id < n; ++id)
        ta.kernels.push_back(
            analyzeKernel(table[id], ctxFor ? ctxFor(id) : KernelContext{}));

    // Callback edges from reachable prefetch.cb instructions only: dead
    // code already carries its own warning.
    std::vector<std::vector<KernelId>> edges(table.size());
    for (KernelId id = 0; id < n; ++id) {
        const Kernel &k = table[id];
        KernelAnalysis &ka = ta.kernels[id];
        bool added = false;
        for (std::uint32_t pc = 0; pc < k.code.size(); ++pc) {
            const Instr &in = k.code[pc];
            if (in.op != Opcode::kPrefetchCb || !ka.reachablePc[pc])
                continue;
            const auto cb = static_cast<KernelId>(in.imm);
            if (!table.valid(cb)) {
                ka.diags.push_back(
                    {Severity::kError, static_cast<int>(pc),
                     DiagCode::kUnresolvedCallback,
                     "prefetch.cb id " + std::to_string(in.imm) +
                         " does not name a kernel in the table"});
                added = true;
            } else {
                edges[id].push_back(cb);
            }
        }
        if (added) {
            fillInstrText(ka.diags, k.code);
            sortByPc(ka.diags);
        }
    }

    // Cycle detection over the callback graph: a cycle means every fill
    // can trigger the next kernel unconditionally — an event storm only
    // the request-queue capacity throttles.
    {
        auto name = [&table](KernelId id) {
            const std::string &s = table[id].name;
            return s.empty() ? "#" + std::to_string(id) : s;
        };
        enum : std::uint8_t { kWhite, kGrey, kBlack };
        std::vector<std::uint8_t> color(table.size(), kWhite);
        struct Frame
        {
            KernelId node;
            std::size_t next;
        };
        for (KernelId root = 0; root < n; ++root) {
            if (color[root] != kWhite)
                continue;
            std::vector<Frame> stack{{root, 0}};
            color[root] = kGrey;
            while (!stack.empty()) {
                Frame &f = stack.back();
                if (f.next < edges[f.node].size()) {
                    const KernelId s = edges[f.node][f.next++];
                    if (color[s] == kWhite) {
                        color[s] = kGrey;
                        stack.push_back({s, 0});
                    } else if (color[s] == kGrey) {
                        // The cycle is the stack suffix starting at s.
                        std::string path = name(s);
                        std::size_t at = stack.size();
                        while (stack[at - 1].node != s)
                            --at;
                        for (std::size_t i = at; i < stack.size(); ++i) {
                            path += " -> ";
                            path += name(stack[i].node);
                        }
                        path += " -> " + name(s);
                        ta.tableDiags.push_back(
                            {Severity::kWarning, kNoPc,
                             DiagCode::kCallbackCycle,
                             "prefetch callback cycle " + path +
                                 ": each fill retriggers the chain "
                                 "unconditionally"});
                    }
                } else {
                    color[f.node] = kBlack;
                    stack.pop_back();
                }
            }
        }
    }

    // The paper's PPU instruction store is 4 KiB.
    constexpr std::size_t kCodeBudgetBytes = 4096;
    if (table.totalBytes() > kCodeBudgetBytes)
        ta.tableDiags.push_back(
            {Severity::kWarning, kNoPc, DiagCode::kCodeBudgetExceeded,
             "kernel store is " + std::to_string(table.totalBytes()) +
                 " bytes, over the " + std::to_string(kCodeBudgetBytes) +
                 "-byte instruction-cache budget"});

    return ta;
}

void
verifyOrThrow(const Kernel &k)
{
    const KernelAnalysis ka = analyzeKernel(k);
    if (!ka.hasErrors())
        return;
    std::string msg = "kernel '" + k.name + "' failed verification:";
    for (const Diag &d : ka.diags) {
        if (d.severity != Severity::kError)
            continue;
        msg += "\n  ";
        msg += formatDiag(d);
    }
    throw std::invalid_argument(msg);
}

} // namespace epf::analysis
