#include "isa/analysis/cfg.hpp"

#include <algorithm>

namespace epf::analysis
{

bool
isCondBranch(Opcode op)
{
    return op == Opcode::kBeq || op == Opcode::kBne ||
           op == Opcode::kBlt || op == Opcode::kBge;
}

bool
isBranch(Opcode op)
{
    return isCondBranch(op) || op == Opcode::kJmp;
}

std::int64_t
branchTarget(const Instr &in, std::uint32_t pc)
{
    return static_cast<std::int64_t>(pc) + 1 + in.imm;
}

Cfg::Cfg(const std::vector<Instr> &code,
         const std::vector<std::uint8_t> &trapAt)
{
    const auto size = static_cast<std::uint32_t>(code.size());
    if (size == 0)
        return;

    auto traps = [&trapAt](std::uint32_t pc) {
        return !trapAt.empty() && trapAt[pc] != 0;
    };

    // Leaders: the entry, every in-range branch target, and every
    // instruction following a terminator (branch, halt, proven trap).
    std::vector<std::uint8_t> leader(size, 0);
    leader[0] = 1;
    for (std::uint32_t i = 0; i < size; ++i) {
        const Instr &in = code[i];
        const bool terminator =
            isBranch(in.op) || in.op == Opcode::kHalt || traps(i);
        if (terminator && i + 1 < size)
            leader[i + 1] = 1;
        if (isBranch(in.op)) {
            const std::int64_t t = branchTarget(in, i);
            if (t >= 0 && t < static_cast<std::int64_t>(size))
                leader[static_cast<std::uint32_t>(t)] = 1;
        }
    }

    blockOf_.assign(size, 0);
    for (std::uint32_t i = 0; i < size; ++i) {
        if (leader[i]) {
            Block b;
            b.first = i;
            blocks_.push_back(b);
        }
        blockOf_[i] = static_cast<std::uint32_t>(blocks_.size() - 1);
        blocks_.back().last = i;
    }

    // Successors.
    for (Block &b : blocks_) {
        const Instr &in = code[b.last];
        if (traps(b.last)) {
            b.exit = BlockExit::kTrap;
            continue;
        }
        if (in.op == Opcode::kHalt) {
            b.exit = BlockExit::kHalt;
            continue;
        }
        auto edge = [&](std::int64_t target) {
            if (target >= 0 && target < static_cast<std::int64_t>(size))
                b.succs.push_back(
                    blockOf_[static_cast<std::uint32_t>(target)]);
            else
                b.toBoundary = true;
        };
        if (in.op == Opcode::kJmp) {
            edge(branchTarget(in, b.last));
        } else if (isCondBranch(in.op)) {
            edge(static_cast<std::int64_t>(b.last) + 1); // not taken
            edge(branchTarget(in, b.last));              // taken
        } else {
            edge(static_cast<std::int64_t>(b.last) + 1); // fall through
        }
    }

    // Reachability + DFS (iterative, preorder stack with an expansion
    // marker) producing reverse postorder and back-edge detection.
    preds_.resize(blocks_.size());
    enum : std::uint8_t { kWhite, kGrey, kBlack };
    std::vector<std::uint8_t> color(blocks_.size(), kWhite);
    std::vector<std::uint32_t> postorder;
    struct Frame
    {
        std::uint32_t block;
        std::size_t next; // next successor index to visit
    };
    std::vector<Frame> stack;
    stack.push_back({0, 0});
    color[0] = kGrey;
    blocks_[0].reachable = true;
    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.next < blocks_[f.block].succs.size()) {
            const std::uint32_t s = blocks_[f.block].succs[f.next++];
            preds_[s].push_back(f.block);
            if (color[s] == kWhite) {
                color[s] = kGrey;
                blocks_[s].reachable = true;
                stack.push_back({s, 0});
            } else if (color[s] == kGrey) {
                acyclic_ = false; // back edge: a reachable cycle
            }
        } else {
            color[f.block] = kBlack;
            postorder.push_back(f.block);
            stack.pop_back();
        }
    }

    rpo_.assign(postorder.rbegin(), postorder.rend());
}

} // namespace epf::analysis
