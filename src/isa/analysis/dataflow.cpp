#include "isa/analysis/dataflow.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "isa/analysis/verifier.hpp"
#include "sim/types.hpp"

namespace epf::analysis
{
namespace
{

using I128 = __int128;

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/**
 * Widening thresholds, ascending.  The interesting loop bounds in real
 * kernels are line- and step-sized (kLineBytes = 64, kMaxKernelSteps =
 * 4096); jumping a moving bound to the next threshold instead of
 * straight to the i64 extreme keeps the subsequent +imm transfer from
 * overflowing to top, which is what lets the narrowing sweeps recover
 * exact loop bounds afterwards.
 */
constexpr std::int64_t kThresholds[] = {
    kMin,           -(1ll << 32), -4096, -64, 0, 64,
    4096,           (1ll << 32),  kMax,
};

constexpr unsigned kWidenDelay = 2;

unsigned
regIdx(std::uint8_t r)
{
    return r % kPpuRegs;
}

// ---- interval arithmetic -----------------------------------------------
// All PPU arithmetic wraps mod 2^64; whenever a bound leaves the i64
// range the wrapped value set is no longer an interval, so the sound
// hull is top.  The known-bits domain does not suffer this (wrapping is
// exact bit-wise), and normalize() recovers interval facts from it.

Interval
hull(Interval a, Interval b)
{
    if (a.isEmpty())
        return b;
    if (b.isEmpty())
        return a;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval
meet(Interval a, Interval b)
{
    return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval
fromI128(I128 lo, I128 hi)
{
    if (lo < kMin || hi > kMax)
        return Interval::top();
    return {static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)};
}

Interval
addIv(Interval a, Interval b)
{
    return fromI128(static_cast<I128>(a.lo) + b.lo,
                    static_cast<I128>(a.hi) + b.hi);
}

Interval
subIv(Interval a, Interval b)
{
    return fromI128(static_cast<I128>(a.lo) - b.hi,
                    static_cast<I128>(a.hi) - b.lo);
}

Interval
mulIv(Interval a, Interval b)
{
    // The real product over a box attains its extremes at corners; if
    // every corner is representable no wrap occurs and the hull is
    // exact.
    const I128 c[4] = {static_cast<I128>(a.lo) * b.lo,
                       static_cast<I128>(a.lo) * b.hi,
                       static_cast<I128>(a.hi) * b.lo,
                       static_cast<I128>(a.hi) * b.hi};
    I128 lo = c[0], hi = c[0];
    for (I128 v : c) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return fromI128(lo, hi);
}

/**
 * Quotient range on the non-trapping path: divisor 0 and the
 * INT64_MIN / -1 pair are excluded from the box.  n/d is monotone in
 * each variable over a same-sign divisor range, so extremes sit at
 * corners; the one excluded corner is replaced by its two neighbours.
 */
Interval
divIv(Interval n, Interval d)
{
    Interval out = Interval::empty();
    auto acc = [&out](std::int64_t nn, std::int64_t dd) {
        if (dd == 0 || (nn == kMin && dd == -1))
            return;
        const std::int64_t q = nn / dd;
        out = hull(out, Interval::constant(q));
    };
    auto corners = [&](std::int64_t dl, std::int64_t dh) {
        if (dl > dh)
            return;
        for (std::int64_t dd : {dl, dh})
            for (std::int64_t nn : {n.lo, n.hi}) {
                if (nn == kMin && dd == -1) {
                    if (n.hi >= kMin + 1)
                        acc(kMin + 1, -1);
                    if (dl <= -2)
                        acc(kMin, -2);
                } else {
                    acc(nn, dd);
                }
            }
    };
    corners(d.lo, std::min<std::int64_t>(d.hi, -1)); // negative divisors
    corners(std::max<std::int64_t>(d.lo, 1), d.hi);  // positive divisors
    if (out.isEmpty())
        return Interval::top(); // divisor pinned to 0: caller traps first
    return out;
}

/** x & ~(2^k - 1) is monotone in x (it is 2^k * floor(x / 2^k)). */
std::int64_t
alignDown(std::int64_t x, std::int64_t mask)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) &
                                     ~static_cast<std::uint64_t>(mask));
}

// ---- known-bits arithmetic ---------------------------------------------

KnownBits
notKb(KnownBits a)
{
    return {a.mask, ~a.val & a.mask};
}

KnownBits
andKb(KnownBits a, KnownBits b)
{
    const std::uint64_t zero = (a.mask & ~a.val) | (b.mask & ~b.val);
    const std::uint64_t one = a.mask & a.val & b.mask & b.val;
    return {zero | one, one};
}

KnownBits
orKb(KnownBits a, KnownBits b)
{
    const std::uint64_t one = (a.mask & a.val) | (b.mask & b.val);
    const std::uint64_t zero = (a.mask & ~a.val) & (b.mask & ~b.val);
    return {zero | one, one};
}

KnownBits
xorKb(KnownBits a, KnownBits b)
{
    const std::uint64_t both = a.mask & b.mask;
    return {both, (a.val ^ b.val) & both};
}

/** Bit-serial ripple adder over tri-state bits (carry in {0, 1, ?}). */
KnownBits
addKb(KnownBits a, KnownBits b, int carry)
{
    KnownBits out;
    int c = carry;
    for (unsigned i = 0; i < 64; ++i) {
        const int av =
            (a.mask >> i & 1) != 0 ? static_cast<int>(a.val >> i & 1) : -1;
        const int bv =
            (b.mask >> i & 1) != 0 ? static_cast<int>(b.val >> i & 1) : -1;
        if (av >= 0 && bv >= 0 && c >= 0) {
            const int s = av + bv + c;
            out.mask |= 1ull << i;
            out.val |= static_cast<std::uint64_t>(s & 1) << i;
            c = s >> 1;
        } else {
            const int ones = (av == 1) + (bv == 1) + (c == 1);
            const int zeros = (av == 0) + (bv == 0) + (c == 0);
            c = ones >= 2 ? 1 : (zeros >= 2 ? 0 : -1);
        }
    }
    return out;
}

KnownBits
subKb(KnownBits a, KnownBits b)
{
    return addKb(a, notKb(b), 1);
}

KnownBits
shlKb(KnownBits a, unsigned s)
{
    if (s == 0)
        return a;
    const std::uint64_t lowZeros = (1ull << s) - 1;
    return {(a.mask << s) | lowZeros, a.val << s};
}

KnownBits
shrKb(KnownBits a, unsigned s)
{
    if (s == 0)
        return a;
    const std::uint64_t highZeros = ~(~0ull >> s);
    return {(a.mask >> s) | highZeros, a.val >> s};
}

} // namespace

unsigned
KnownBits::trailingZeros() const
{
    // Bits proven zero are exactly where (val | ~mask) is 0, so the
    // trailing-zero count of that word is the answer (64 for a proven
    // all-zero value).
    return static_cast<unsigned>(std::countr_zero(val | ~mask));
}

namespace
{

/** Signed bounds implied by the known bits (unknown bits free). */
void
kbBounds(KnownBits kb, std::int64_t &lo, std::int64_t &hi)
{
    const std::uint64_t unknown = ~kb.mask;
    const std::uint64_t msb = 1ull << 63;
    if ((kb.mask & msb) != 0) {
        // Sign known: unsigned min/max order matches signed order.
        lo = static_cast<std::int64_t>(kb.val);
        hi = static_cast<std::int64_t>(kb.val | unknown);
    } else {
        lo = static_cast<std::int64_t>(kb.val | msb);
        hi = static_cast<std::int64_t>(kb.val | (unknown & ~msb));
    }
}

/**
 * Mutual reduction of the two domains; returns false when they
 * contradict (the program point is infeasible).
 */
bool
normalize(AbsValue &v)
{
    // known-bits -> interval.
    std::int64_t lo = 0, hi = 0;
    kbBounds(v.kb, lo, hi);
    v.iv.lo = std::max(v.iv.lo, lo);
    v.iv.hi = std::min(v.iv.hi, hi);
    if (v.iv.isEmpty())
        return false;

    // interval -> known-bits: when both bounds share the sign bit, the
    // common leading bits of the two bounds hold for every value
    // between them.
    const auto ulo = static_cast<std::uint64_t>(v.iv.lo);
    const auto uhi = static_cast<std::uint64_t>(v.iv.hi);
    if ((v.iv.lo < 0) == (v.iv.hi < 0)) {
        const std::uint64_t x = ulo ^ uhi;
        const std::uint64_t common =
            x == 0 ? ~0ull : ~(~0ull >> std::countl_zero(x));
        if ((v.kb.mask & common & (v.kb.val ^ ulo)) != 0)
            return false; // domains disagree on a known bit
        v.kb.mask |= common;
        v.kb.val |= ulo & common;
        v.kb.val &= v.kb.mask;
    }
    if (v.iv.isConst() && !v.kb.admits(ulo))
        return false;
    return true;
}

AbsValue
makeAbs(Interval iv, KnownBits kb, bool &ok)
{
    AbsValue v{iv, kb};
    if (!normalize(v))
        ok = false;
    return v;
}

AbsValue
joinAbs(const AbsValue &a, const AbsValue &b)
{
    AbsValue out;
    out.iv = hull(a.iv, b.iv);
    const std::uint64_t agree = a.kb.mask & b.kb.mask & ~(a.kb.val ^ b.kb.val);
    out.kb = {agree, a.kb.val & agree};
    normalize(out); // join of feasible states cannot contradict
    return out;
}

RegState
joinState(const RegState &a, const RegState &b)
{
    if (!a.feasible)
        return b;
    if (!b.feasible)
        return a;
    RegState out;
    out.feasible = true;
    for (unsigned r = 0; r < kPpuRegs; ++r)
        out.reg[r] = joinAbs(a.reg[r], b.reg[r]);
    return out;
}

std::int64_t
widenLo(std::int64_t oldLo, std::int64_t newLo)
{
    if (newLo >= oldLo)
        return newLo;
    std::int64_t best = kMin;
    for (std::int64_t t : kThresholds)
        if (t <= newLo)
            best = std::max(best, t);
    return best;
}

std::int64_t
widenHi(std::int64_t oldHi, std::int64_t newHi)
{
    if (newHi <= oldHi)
        return newHi;
    std::int64_t best = kMax;
    for (std::int64_t t : kThresholds)
        if (t >= newHi)
            best = std::min(best, t);
    return best;
}

RegState
widenState(const RegState &prev, const RegState &next)
{
    if (!prev.feasible || !next.feasible)
        return next;
    RegState out = next;
    for (unsigned r = 0; r < kPpuRegs; ++r) {
        out.reg[r].iv.lo = widenLo(prev.reg[r].iv.lo, next.reg[r].iv.lo);
        out.reg[r].iv.hi = widenHi(prev.reg[r].iv.hi, next.reg[r].iv.hi);
        // Known bits form a finite descending chain under join; no
        // widening needed, but keep the domains consistent.
        normalize(out.reg[r]);
    }
    return out;
}

// ---- per-instruction transfer ------------------------------------------

/** Shift amount if statically known: imm forms mask at decode, register
 *  forms read only the low 6 bits of rt. */
std::optional<unsigned>
shiftAmount(const AbsValue &amt)
{
    if ((amt.kb.mask & 63ull) == 63ull)
        return static_cast<unsigned>(amt.kb.val & 63ull);
    return std::nullopt;
}

AbsValue
shlAbs(const AbsValue &a, const AbsValue &amt)
{
    const auto s = shiftAmount(amt);
    if (!s)
        return AbsValue::top();
    bool ok = true; // shifted known bits are exact, never contradictory
    const I128 lo = static_cast<I128>(a.iv.lo) << *s;
    const I128 hi = static_cast<I128>(a.iv.hi) << *s;
    return makeAbs(fromI128(lo, hi), shlKb(a.kb, *s), ok);
}

AbsValue
shrAbs(const AbsValue &a, const AbsValue &amt)
{
    const auto s = shiftAmount(amt);
    bool ok = true;
    if (!s) {
        // Amount unknown: s = 0 keeps the value, s >= 1 lands in
        // [0, kMax]; the hull below covers both.
        if (a.iv.lo >= 0)
            return makeAbs({0, a.iv.hi}, KnownBits::top(), ok);
        return makeAbs({a.iv.lo, kMax}, KnownBits::top(), ok);
    }
    Interval iv;
    if (*s == 0) {
        iv = a.iv;
    } else if (a.iv.lo >= 0) {
        iv = {a.iv.lo >> *s, a.iv.hi >> *s};
    } else if (a.iv.hi < 0) {
        // All-negative range: unsigned order matches signed order.
        iv = {static_cast<std::int64_t>(
                  static_cast<std::uint64_t>(a.iv.lo) >> *s),
              static_cast<std::int64_t>(
                  static_cast<std::uint64_t>(a.iv.hi) >> *s)};
    } else {
        iv = {0, static_cast<std::int64_t>(~0ull >> *s)};
    }
    return makeAbs(iv, shrKb(a.kb, *s), ok);
}

/** Conservative hull for |, ^ of two non-negative ranges: the result
 *  cannot exceed the all-ones mask covering both maxima. */
Interval
bitHullNonneg(Interval a, Interval b, std::int64_t lo)
{
    const std::uint64_t h =
        static_cast<std::uint64_t>(a.hi) | static_cast<std::uint64_t>(b.hi);
    const std::int64_t hi =
        h == 0 ? 0 : static_cast<std::int64_t>(~0ull >> std::countl_zero(h));
    return {lo, hi};
}

AbsValue
mulAbs(const AbsValue &a, const AbsValue &b)
{
    const auto ca = a.asConst();
    const auto cb = b.asConst();
    if ((ca && *ca == 0) || (cb && *cb == 0))
        return AbsValue::constant(0);
    if (a.kb.isConst() && b.kb.isConst())
        return AbsValue::constant(
            static_cast<std::int64_t>(a.kb.val * b.kb.val));
    KnownBits kb;
    const unsigned tz =
        std::min(64u, a.kb.trailingZeros() + b.kb.trailingZeros());
    if (tz > 0) {
        kb.mask = tz >= 64 ? ~0ull : ((1ull << tz) - 1);
        kb.val = 0;
    }
    bool ok = true;
    return makeAbs(mulIv(a.iv, b.iv), kb, ok);
}

/**
 * Everything the dataflow needs to know about the triggering event,
 * derived from the verifier context once per analysis.
 */
struct Seeds
{
    const KernelContext *ctx;
    AbsValue vaddr;
    AbsValue lineBase;
};

Seeds
makeSeeds(const KernelContext &ctx)
{
    Seeds s{&ctx, AbsValue::top(), AbsValue::top()};
    bool ok = true;
    s.vaddr = makeAbs(Interval::range(ctx.vaddrLo, ctx.vaddrHi),
                      KnownBits::top(), ok);
    KnownBits aligned;
    aligned.mask = kLineBytes - 1; // low bits proven zero
    aligned.val = 0;
    s.lineBase =
        makeAbs(Interval::range(alignDown(ctx.vaddrLo, kLineBytes - 1),
                                alignDown(ctx.vaddrHi, kLineBytes - 1)),
                aligned, ok);
    return s;
}

AbsValue
greadValue(const Seeds &seeds, std::int64_t imm)
{
    for (const KernelContext::SeededGlobal &g : seeds.ctx->globalValues)
        if (static_cast<std::int64_t>(g.index) == imm)
            return AbsValue::constant(static_cast<std::int64_t>(g.value));
    return AbsValue::top();
}

/**
 * Abstract execution of one non-branching instruction.  Returns false
 * when the state becomes contradictory (never-executing point).
 * Trap conditions are NOT modelled here — the caller checks the
 * refined trap facts before advancing past the instruction.
 */
bool
apply(const Instr &in, RegState &s, const Seeds &seeds)
{
    auto &reg = s.reg;
    auto rd = [&]() -> AbsValue & { return reg[regIdx(in.rd)]; };
    const AbsValue &rs = reg[regIdx(in.rs)];
    const AbsValue &rt = reg[regIdx(in.rt)];
    const AbsValue immv = AbsValue::constant(in.imm);
    bool ok = true;
    switch (in.op) {
      case Opcode::kHalt:
      case Opcode::kNop:
      case Opcode::kJmp:
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kPrefetch:
      case Opcode::kPrefetchTag:
      case Opcode::kPrefetchCb:
        break;
      case Opcode::kLi:
        rd() = AbsValue::constant(in.imm);
        break;
      case Opcode::kMov:
        rd() = rs;
        break;
      case Opcode::kAdd:
        rd() = makeAbs(addIv(rs.iv, rt.iv), addKb(rs.kb, rt.kb, 0), ok);
        break;
      case Opcode::kAddi:
        rd() = makeAbs(addIv(rs.iv, immv.iv), addKb(rs.kb, immv.kb, 0), ok);
        break;
      case Opcode::kSub:
        rd() = makeAbs(subIv(rs.iv, rt.iv), subKb(rs.kb, rt.kb), ok);
        break;
      case Opcode::kMul:
        rd() = mulAbs(rs, rt);
        break;
      case Opcode::kMuli:
        rd() = mulAbs(rs, immv);
        break;
      case Opcode::kDiv:
        rd() = makeAbs(divIv(rs.iv, rt.iv), KnownBits::top(), ok);
        break;
      case Opcode::kDivi:
        rd() = makeAbs(divIv(rs.iv, immv.iv), KnownBits::top(), ok);
        break;
      case Opcode::kAnd:
      case Opcode::kAndi: {
        const AbsValue &o = in.op == Opcode::kAnd ? rt : immv;
        Interval iv = Interval::top();
        if (rs.iv.lo >= 0 && o.iv.lo >= 0)
            iv = {0, std::min(rs.iv.hi, o.iv.hi)};
        else if (rs.iv.lo >= 0)
            iv = {0, rs.iv.hi};
        else if (o.iv.lo >= 0)
            iv = {0, o.iv.hi};
        rd() = makeAbs(iv, andKb(rs.kb, o.kb), ok);
        break;
      }
      case Opcode::kOr: {
        Interval iv = Interval::top();
        if (rs.iv.lo >= 0 && rt.iv.lo >= 0)
            iv = bitHullNonneg(rs.iv, rt.iv, std::max(rs.iv.lo, rt.iv.lo));
        rd() = makeAbs(iv, orKb(rs.kb, rt.kb), ok);
        break;
      }
      case Opcode::kXor: {
        Interval iv = Interval::top();
        if (rs.iv.lo >= 0 && rt.iv.lo >= 0)
            iv = bitHullNonneg(rs.iv, rt.iv, 0);
        rd() = makeAbs(iv, xorKb(rs.kb, rt.kb), ok);
        break;
      }
      case Opcode::kShl:
        rd() = shlAbs(rs, rt);
        break;
      case Opcode::kShli:
        rd() = shlAbs(rs, immv);
        break;
      case Opcode::kShr:
        rd() = shrAbs(rs, rt);
        break;
      case Opcode::kShri:
        rd() = shrAbs(rs, immv);
        break;
      case Opcode::kVaddr:
        rd() = seeds.vaddr;
        break;
      case Opcode::kLineBase:
        rd() = seeds.lineBase;
        break;
      case Opcode::kLdLine:
        rd() = AbsValue::top();
        break;
      case Opcode::kLdLine32: {
        KnownBits kb{0xFFFFFFFF00000000ull, 0};
        rd() = makeAbs(Interval::range(0, 0xFFFFFFFFll), kb, ok);
        break;
      }
      case Opcode::kGread:
        rd() = greadValue(seeds, in.imm);
        break;
      case Opcode::kLookahead:
        rd() = AbsValue::top();
        break;
    }
    // Out-of-enum opcode bytes execute as charged no-ops: no change.
    if (!ok)
        s.feasible = false;
    return ok;
}

// ---- refined trap facts ------------------------------------------------

bool
refinedMayTrap(const Instr &in, const KernelContext &ctx, const RegState &s)
{
    if (!s.feasible)
        return mayTrap(in, ctx);
    switch (in.op) {
      case Opcode::kDiv: {
        const AbsValue &d = s.reg[regIdx(in.rt)];
        const AbsValue &n = s.reg[regIdx(in.rs)];
        const bool zero = d.contains(0);
        const bool pair = d.contains(~0ull) &&
                          n.contains(static_cast<std::uint64_t>(kMin));
        return zero || pair;
      }
      case Opcode::kDivi: {
        if (in.imm == 0)
            return true;
        if (in.imm != -1)
            return false;
        return s.reg[regIdx(in.rs)].contains(static_cast<std::uint64_t>(kMin));
      }
      default:
        return mayTrap(in, ctx);
    }
}

bool
refinedAlwaysTraps(const Instr &in, const KernelContext &ctx,
                   const RegState &s)
{
    if (alwaysTraps(in, ctx))
        return true;
    if (!s.feasible)
        return false;
    switch (in.op) {
      case Opcode::kDiv: {
        const auto d = s.reg[regIdx(in.rt)].asConst();
        if (d && *d == 0)
            return true;
        if (d && *d == -1) {
            const auto n = s.reg[regIdx(in.rs)].asConst();
            return n && *n == kMin;
        }
        return false;
      }
      case Opcode::kDivi: {
        if (in.imm != -1)
            return false;
        const auto n = s.reg[regIdx(in.rs)].asConst();
        return n && *n == kMin;
      }
      default:
        return false;
    }
}

// ---- branch edge refinement --------------------------------------------

bool
refineEq(AbsValue &a, AbsValue &b)
{
    AbsValue m;
    m.iv = meet(a.iv, b.iv);
    if (m.iv.isEmpty())
        return false;
    if ((a.kb.mask & b.kb.mask & (a.kb.val ^ b.kb.val)) != 0)
        return false; // agree on no value: edge infeasible
    m.kb.mask = a.kb.mask | b.kb.mask;
    m.kb.val = (a.kb.val | b.kb.val) & m.kb.mask;
    if (!normalize(m))
        return false;
    a = b = m;
    return true;
}

bool
refineNe(AbsValue &a, AbsValue &b)
{
    const auto ca = a.asConst();
    const auto cb = b.asConst();
    if (ca && cb)
        return *ca != *cb;
    auto trim = [](AbsValue &v, std::int64_t c) {
        if (v.iv.lo == c)
            ++v.iv.lo; // lo == c < hi here, so no overflow
        if (v.iv.hi == c)
            --v.iv.hi;
        return !v.iv.isEmpty() && normalize(v);
    };
    if (ca)
        return trim(b, *ca);
    if (cb)
        return trim(a, *cb);
    return true;
}

/** rs < rt (signed), in-place. */
bool
refineLt(AbsValue &a, AbsValue &b)
{
    if (b.iv.hi == kMin || a.iv.lo == kMax)
        return false; // nothing is < INT64_MIN; nothing exceeds INT64_MAX
    a.iv.hi = std::min(a.iv.hi, b.iv.hi - 1);
    b.iv.lo = std::max(b.iv.lo, a.iv.lo + 1);
    return !a.iv.isEmpty() && !b.iv.isEmpty() && normalize(a) && normalize(b);
}

/** rs >= rt (signed), in-place. */
bool
refineGe(AbsValue &a, AbsValue &b)
{
    a.iv.lo = std::max(a.iv.lo, b.iv.lo);
    b.iv.hi = std::min(b.iv.hi, a.iv.hi);
    return !a.iv.isEmpty() && !b.iv.isEmpty() && normalize(a) && normalize(b);
}

/**
 * State on one outgoing edge of a conditional branch.  Returns an
 * infeasible state when the condition contradicts the operand facts
 * (including the same-register special cases: beq r,r always takes,
 * blt r,r never does).
 */
RegState
refineEdge(const Instr &in, const RegState &s, bool taken)
{
    RegState out = s;
    const unsigned ra = regIdx(in.rs);
    const unsigned rb = regIdx(in.rt);
    if (ra == rb) {
        const bool takesAlways =
            in.op == Opcode::kBeq || in.op == Opcode::kBge;
        if (taken != takesAlways)
            out.feasible = false;
        return out;
    }
    AbsValue &a = out.reg[ra];
    AbsValue &b = out.reg[rb];
    bool ok = true;
    switch (in.op) {
      case Opcode::kBeq:
        ok = taken ? refineEq(a, b) : refineNe(a, b);
        break;
      case Opcode::kBne:
        ok = taken ? refineNe(a, b) : refineEq(a, b);
        break;
      case Opcode::kBlt:
        ok = taken ? refineLt(a, b) : refineGe(a, b);
        break;
      case Opcode::kBge:
        ok = taken ? refineGe(a, b) : refineLt(a, b);
        break;
      default:
        break;
    }
    if (!ok)
        out.feasible = false;
    return out;
}

} // namespace

BranchOutcome
branchOutcome(const Instr &in, const RegState &s)
{
    if (!s.feasible || !isCondBranch(in.op))
        return BranchOutcome::kUnknown;
    const bool taken = refineEdge(in, s, /*taken=*/true).feasible;
    const bool fall = refineEdge(in, s, /*taken=*/false).feasible;
    if (taken && !fall)
        return BranchOutcome::kAlwaysTaken;
    if (!taken && fall)
        return BranchOutcome::kNeverTaken;
    return BranchOutcome::kUnknown;
}

namespace
{

// ---- the fixpoint engine -----------------------------------------------

struct Engine
{
    const std::vector<Instr> &code;
    const Cfg &cfg;
    const KernelContext &ctx;
    Seeds seeds;

    std::vector<RegState> blockIn;
    /** Per block: refined state pushed along each succ edge (parallel to
     *  Block::succs; infeasible entries prune the edge). */
    std::vector<std::vector<RegState>> edgeOut;

    Engine(const std::vector<Instr> &c, const Cfg &g, const KernelContext &x)
        : code(c), cfg(g), ctx(x), seeds(makeSeeds(x)),
          blockIn(g.size()), edgeOut(g.size())
    {
    }

    /** Abstractly execute a block; infeasible result means a refined
     *  always-trap (or contradiction) stops execution inside it. */
    RegState
    walk(const Block &blk, RegState s) const
    {
        for (std::uint32_t pc = blk.first; pc <= blk.last && s.feasible;
             ++pc) {
            if (refinedAlwaysTraps(code[pc], ctx, s)) {
                s.feasible = false;
                break;
            }
            apply(code[pc], s, seeds);
        }
        return s;
    }

    void
    computeEdges(std::uint32_t b)
    {
        const Block &blk = cfg.blocks()[b];
        auto &out = edgeOut[b];
        out.assign(blk.succs.size(), RegState{});
        if (blk.exit != BlockExit::kFlows || blk.succs.empty())
            return;
        const RegState s = walk(blk, blockIn[b]);
        if (!s.feasible)
            return;
        const Instr &last = code[blk.last];
        if (!isCondBranch(last.op)) {
            for (std::size_t i = 0; i < blk.succs.size(); ++i)
                out[i] = s;
            return;
        }
        const std::int64_t takenPc = branchTarget(last, blk.last);
        const std::int64_t fallPc = static_cast<std::int64_t>(blk.last) + 1;
        for (std::size_t i = 0; i < blk.succs.size(); ++i) {
            const std::int64_t first = cfg.blocks()[blk.succs[i]].first;
            if (takenPc == fallPc) {
                out[i] = s; // both arms land here: condition tells nothing
            } else if (first == takenPc) {
                out[i] = refineEdge(last, s, /*taken=*/true);
            } else if (first == fallPc) {
                out[i] = refineEdge(last, s, /*taken=*/false);
            } else {
                out[i] = s;
            }
        }
    }

    RegState
    joinPreds(std::uint32_t b, const RegState &entryState,
              std::uint32_t entryBlock) const
    {
        RegState fresh; // infeasible until a live edge joins in
        if (b == entryBlock)
            fresh = entryState;
        for (std::uint32_t p : cfg.preds(b)) {
            const Block &pb = cfg.blocks()[p];
            for (std::size_t i = 0; i < pb.succs.size(); ++i)
                if (pb.succs[i] == b && i < edgeOut[p].size())
                    fresh = joinState(fresh, edgeOut[p][i]);
        }
        return fresh;
    }
};

} // namespace

DataflowResult
analyzeDataflow(const std::vector<Instr> &code, const Cfg &cfg,
                const KernelContext &ctx)
{
    DataflowResult res;
    const std::size_t size = code.size();
    res.in.assign(size, RegState{});
    res.mayTrapPc.assign(size, 0);
    res.alwaysTrapsPc.assign(size, 0);
    for (std::size_t pc = 0; pc < size; ++pc) {
        res.mayTrapPc[pc] = mayTrap(code[pc], ctx) ? 1 : 0;
        res.alwaysTrapsPc[pc] = alwaysTraps(code[pc], ctx) ? 1 : 0;
    }
    res.converged = true;
    if (size == 0 || cfg.rpo().empty())
        return res;

    Engine eng(code, cfg, ctx);
    const std::vector<std::uint32_t> &rpo = cfg.rpo();
    const std::uint32_t entryBlock = rpo.front();

    RegState entryState;
    entryState.feasible = true;
    for (unsigned r = 0; r < kPpuRegs; ++r)
        entryState.reg[r] = AbsValue::constant(0); // file zeroed at entry

    // Loop heads: any block with a predecessor at an equal or later
    // reverse-postorder position (back or cross edge).
    std::vector<std::uint32_t> rpoIdx(cfg.size(),
                                      std::numeric_limits<std::uint32_t>::max());
    for (std::uint32_t i = 0; i < rpo.size(); ++i)
        rpoIdx[rpo[i]] = i;
    std::vector<std::uint8_t> widenAt(cfg.size(), 0);
    for (std::uint32_t b : rpo)
        for (std::uint32_t p : cfg.preds(b))
            if (rpoIdx[p] != std::numeric_limits<std::uint32_t>::max() &&
                rpoIdx[p] >= rpoIdx[b])
                widenAt[b] = 1;

    // Ascending phase: monotone (join with the previous state), with
    // threshold widening at loop heads after kWidenDelay updates.  The
    // iteration cap is a belt-and-braces guard; threshold widening plus
    // the finite known-bits lattice guarantees convergence in theory.
    std::vector<unsigned> visits(cfg.size(), 0);
    const unsigned kMaxIters =
        static_cast<unsigned>(64 * cfg.size() + 128);
    bool changed = true;
    unsigned iter = 0;
    while (changed && iter++ < kMaxIters) {
        changed = false;
        for (std::uint32_t b : rpo) {
            RegState fresh = eng.joinPreds(b, entryState, entryBlock);
            RegState next = joinState(eng.blockIn[b], fresh);
            if (widenAt[b] != 0 && visits[b] >= kWidenDelay)
                next = widenState(eng.blockIn[b], next);
            if (!(next == eng.blockIn[b])) {
                eng.blockIn[b] = next;
                ++visits[b];
                eng.computeEdges(b);
                changed = true;
            }
        }
    }
    res.converged = !changed;

    if (!res.converged) {
        // Give up on precision, keep soundness: every CFG-reachable pc
        // gets a top state and the instruction-local trap facts.
        for (const Block &b : cfg.blocks()) {
            if (!b.reachable)
                continue;
            RegState top;
            top.feasible = true;
            for (std::uint32_t pc = b.first; pc <= b.last; ++pc)
                res.in[pc] = top;
        }
        return res;
    }

    // Two descending (narrowing) sweeps from the post-fixpoint recover
    // the precision widening gave away (e.g. the exact loop bound the
    // back-edge comparison implies).  Monotone transfers keep every
    // intermediate state an over-approximation.
    for (int sweep = 0; sweep < 2; ++sweep) {
        for (std::uint32_t b : rpo) {
            RegState fresh = eng.joinPreds(b, entryState, entryBlock);
            if (!(fresh == eng.blockIn[b])) {
                eng.blockIn[b] = fresh;
                eng.computeEdges(b);
            }
        }
    }

    // Per-pc extraction: replay each block from its solved entry state.
    for (std::uint32_t b : rpo) {
        const Block &blk = cfg.blocks()[b];
        RegState s = eng.blockIn[b];
        for (std::uint32_t pc = blk.first; pc <= blk.last && s.feasible;
             ++pc) {
            res.in[pc] = s;
            const bool always = refinedAlwaysTraps(code[pc], ctx, s);
            res.alwaysTrapsPc[pc] = always ? 1 : 0;
            res.mayTrapPc[pc] =
                (always || refinedMayTrap(code[pc], ctx, s)) ? 1 : 0;
            if (always)
                break; // the rest of the block never executes
            apply(code[pc], s, eng.seeds);
        }
    }
    return res;
}

DataflowResult
analyzeDataflow(const Kernel &k, const KernelContext &ctx)
{
    std::vector<std::uint8_t> trapAt(k.code.size(), 0);
    for (std::size_t pc = 0; pc < k.code.size(); ++pc)
        trapAt[pc] = alwaysTraps(k.code[pc], ctx) ? 1 : 0;
    const Cfg cfg(k.code, trapAt);
    return analyzeDataflow(k.code, cfg, ctx);
}

} // namespace epf::analysis
