#include "isa/analysis/diag.hpp"

namespace epf::analysis
{

const char *
diagCodeName(DiagCode code)
{
    switch (code) {
      case DiagCode::kBadBranchTarget: return "bad-branch-target";
      case DiagCode::kFallOffEnd: return "fall-off-end";
      case DiagCode::kEmptyKernel: return "empty-kernel";
      case DiagCode::kUnreachableCode: return "unreachable-code";
      case DiagCode::kUninitRead: return "uninit-read";
      case DiagCode::kDeadAssignment: return "dead-assignment";
      case DiagCode::kConstantBranch: return "constant-branch";
      case DiagCode::kDegeneratePrefetch: return "degenerate-prefetch";
      case DiagCode::kOutOfRegionPrefetch: return "out-of-region-prefetch";
      case DiagCode::kGuaranteedTrap: return "guaranteed-trap";
      case DiagCode::kWatchdogLoop: return "watchdog-loop";
      case DiagCode::kUnresolvedCallback: return "unresolved-callback";
      case DiagCode::kCallbackCycle: return "callback-cycle";
      case DiagCode::kCodeBudgetExceeded: return "code-budget-exceeded";
    }
    return "unknown";
}

const char *
severityName(Severity s)
{
    return s == Severity::kError ? "error" : "warning";
}

std::string
formatDiag(const Diag &d)
{
    std::string s;
    if (d.pc != kNoPc) {
        s += "pc ";
        s += std::to_string(d.pc);
        if (!d.instrText.empty()) {
            s += " (";
            s += d.instrText;
            s += ")";
        }
        s += ": ";
    }
    s += severityName(d.severity);
    s += ": [";
    s += diagCodeName(d.code);
    s += "] ";
    s += d.message;
    return s;
}

bool
hasErrors(const std::vector<Diag> &diags)
{
    for (const Diag &d : diags)
        if (d.severity == Severity::kError)
            return true;
    return false;
}

} // namespace epf::analysis
