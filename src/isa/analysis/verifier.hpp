/**
 * @file
 * The PPU kernel verifier: static analysis over a kernel's CFG.
 *
 * Four pass families, all running on the Cfg substrate:
 *
 *  - control-flow validity: branch targets in range, no fall-through
 *    past the last instruction, unreachable-code detection;
 *  - def-use dataflow: registers read before any definition on some
 *    path (must-assigned analysis; observation ops are implicit defs);
 *  - static trap proofs: instructions that trap every time they
 *    execute, both context-free facts (divi #0, out-of-range gread /
 *    lookahead index) — the exact set the pre-decoder hoists — and
 *    context-dependent ones (ldline on a trigger kind known to carry
 *    no line, lookahead index vs the installed filter count);
 *  - cost bounds: exact worst-case cycles and emit count for acyclic
 *    kernels, kMaxKernelSteps watchdog classification otherwise.
 *
 * analyzeTable() adds the store-wide checks: prefetch.cb resolution,
 * callback-graph cycles (event-storm lint) and the paper's 4 KiB code
 * budget.
 */

#ifndef EPF_ISA_ANALYSIS_VERIFIER_HPP
#define EPF_ISA_ANALYSIS_VERIFIER_HPP

#include <functional>
#include <limits>
#include <vector>

#include "isa/analysis/cfg.hpp"
#include "isa/analysis/diag.hpp"
#include "isa/isa.hpp"

namespace epf::analysis
{

/**
 * What the analyzer may assume about the events that will trigger a
 * kernel.  The default assumes nothing: only context-free facts hold.
 */
struct KernelContext
{
    /** Does the triggering event carry cache-line data? */
    enum class Line
    {
        kUnknown, ///< could be either (no ldline facts)
        kAlways,  ///< fill / callback events: ldline never traps
        kNever,   ///< demand-address events: ldline always traps
    };

    Line line = Line::kUnknown;

    /**
     * True (the default) when the prefetcher's global register file is
     * known to be wired up, as it always is under the PPF; false means
     * "not known present", so in-range gread may trap but is not
     * proven to.
     */
    bool globalsPresent = true;

    /** Installed lookahead filter entries, or -1 when unknown. */
    int lookaheadEntries = -1;

    // ---- value facts consumed by the dataflow layer ------------------
    // (see dataflow.hpp; all default to "unknown")

    /** A global register whose value is known at analysis time (the
     *  lint layer seeds these from the live PPF register file). */
    struct SeededGlobal
    {
        unsigned index = 0;
        std::uint64_t value = 0;
    };
    std::vector<SeededGlobal> globalValues;

    /** A declared guest-memory region [base, base + size). */
    struct AddrRegion
    {
        std::uint64_t base = 0;
        std::uint64_t size = 0;
    };
    /** Every region prefetch targets may legally fall in; empty means
     *  unknown (no out-of-region facts hold). */
    std::vector<AddrRegion> regions;

    /** Bounds on the triggering virtual address (signed, inclusive). */
    std::int64_t vaddrLo = std::numeric_limits<std::int64_t>::min();
    std::int64_t vaddrHi = std::numeric_limits<std::int64_t>::max();
};

/**
 * Context-free always-trap fact for one instruction: true when the
 * instruction traps on every execution regardless of the triggering
 * event.  This is the exact set the pre-decoder hoists to its kTrap
 * slot (divi #0; gread index outside [0, kGlobalRegs); negative
 * lookahead index) — predecode.cpp calls this instead of recomputing,
 * so the decoder and the verifier can never disagree.
 */
bool alwaysTraps(const Instr &in);

/** Always-trap fact under @p ctx (adds ldline / lookahead-count facts). */
bool alwaysTraps(const Instr &in, const KernelContext &ctx);

/**
 * True when the instruction can trap on *some* execution under @p ctx
 * (includes every alwaysTraps case plus dynamic conditions: div by a
 * register value, divi #-1 overflow, ldline with unknown line kind...).
 */
bool mayTrap(const Instr &in, const KernelContext &ctx);

/** Exact execution weight of one basic block. */
struct BlockWeight
{
    /** Architectural cycles charged when the block runs start to end
     *  (1 cycle per executed instruction, including a trapping
     *  terminator's charged fetch; the boundary trap charges none). */
    std::uint32_t cycles = 0;
    /** Prefetches emitted when the block runs start to end. */
    std::uint32_t emits = 0;
};

/**
 * Per-block weights over @p cfg (one entry per block, indexed by block
 * id).  Exact for straight-line execution — these are the edge weights
 * of the verifier's longest-path cost pass and the block-level cycle
 * accounting superblock execution bulk-charges (predecode.cpp): a
 * superblock covering a whole basic block must charge exactly
 * weights[b].cycles and emit exactly weights[b].emits.
 */
std::vector<BlockWeight> blockWeights(const Cfg &cfg,
                                      const std::vector<Instr> &code);

/** Everything the analyzer proved about one kernel. */
struct KernelAnalysis
{
    std::vector<Diag> diags;

    /** No reachable instruction can trap and no exit leaves the code
     *  range: the kernel halts (or hits the watchdog) on every event. */
    bool provenTrapFree = false;

    /** No cycle reachable from the entry. */
    bool acyclic = false;

    /**
     * Worst-case executed instructions per event.  Exact (a real CFG
     * path attains it) when acyclic; kMaxKernelSteps otherwise.
     */
    unsigned maxCycles = 0;

    /** Worst-case prefetch emissions per event; exact when acyclic. */
    unsigned maxEmits = 0;

    /** Per-pc reachability (code.size() entries): 1 when some path
     *  from the entry executes the instruction.  Consumed by the
     *  table-wide callback checks and by region-formation clients. */
    std::vector<std::uint8_t> reachablePc;

    /** Per-pc refined trap facts from the dataflow layer (code.size()
     *  entries): 1 when the instruction can never trap when it
     *  executes (proven-unreachable pcs qualify vacuously).  Strictly
     *  no weaker than !mayTrap(in, ctx) — e.g. a div whose divisor
     *  interval excludes zero.  This is the region oracle superblock
     *  formation consumes (ROADMAP item 1); DecodedKernel re-exports
     *  it from the decode-time context. */
    std::vector<std::uint8_t> trapFreePc;

    bool hasErrors() const { return analysis::hasErrors(diags); }
};

/** Run every per-kernel pass. */
KernelAnalysis analyzeKernel(const Kernel &k, const KernelContext &ctx = {});

/** A whole kernel store, analyzed. */
struct TableAnalysis
{
    /** Per-kernel results, indexed by KernelId. */
    std::vector<KernelAnalysis> kernels;
    /** Store-wide findings (callback cycles, code budget). */
    std::vector<Diag> tableDiags;

    bool hasErrors() const;
    /** Total diag count across kernels and the table. */
    std::size_t diagCount() const;
};

/**
 * Analyze every kernel plus the table-wide properties.  @p ctxFor, when
 * provided, supplies the per-kernel event context (the PPF lint layer
 * derives it from the filter table and tag bindings).
 */
TableAnalysis
analyzeTable(const KernelTable &table,
             const std::function<KernelContext(KernelId)> &ctxFor = {});

/**
 * Throw std::invalid_argument (message = every formatted error) if
 * analyzeKernel(@p k) reports errors under a default context.  This is
 * the strict-mode gate KernelTable::add() applies.
 */
void verifyOrThrow(const Kernel &k);

} // namespace epf::analysis

#endif // EPF_ISA_ANALYSIS_VERIFIER_HPP
