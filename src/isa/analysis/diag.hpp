/**
 * @file
 * Structured diagnostics emitted by the kernel static analyzer.
 *
 * Every finding is a Diag: a severity, the program counter it anchors
 * to (or kNoPc for kernel- and table-wide findings), a stable machine
 * code, and a human-readable message.  The codes are the contract —
 * tests pin warnings by code+pc, tools filter by code — so they never
 * change meaning once shipped; the message text is free to improve.
 */

#ifndef EPF_ISA_ANALYSIS_DIAG_HPP
#define EPF_ISA_ANALYSIS_DIAG_HPP

#include <string>
#include <vector>

namespace epf::analysis
{

/** How bad a finding is. */
enum class Severity
{
    /** The kernel is malformed or provably misbehaves when run. */
    kError,
    /** Legal but suspicious; likely a programming mistake. */
    kWarning,
};

/** Stable machine codes, one per distinct finding. */
enum class DiagCode
{
    // ---- control-flow validity -------------------------------------
    /** A branch/jmp whose taken target lies outside [0, size). */
    kBadBranchTarget,
    /** Execution can fall past the last instruction without a halt. */
    kFallOffEnd,
    /** Kernel has no instructions: running it traps immediately. */
    kEmptyKernel,
    /** Instruction can never execute on any path from entry. */
    kUnreachableCode,

    // ---- dataflow ---------------------------------------------------
    /** A register is read before any definition on some path (the
     *  hardware zeroes registers at event entry, so this is legal —
     *  but almost always a forgotten initialisation). */
    kUninitRead,
    /** A register assignment no path ever reads before the value is
     *  overwritten or the kernel exits. */
    kDeadAssignment,
    /** A conditional branch whose outcome the value analysis proves:
     *  always taken or never taken on every execution. */
    kConstantBranch,
    /** A prefetch whose address is a compile-time constant: it fetches
     *  the same line on every event, so it prefetches nothing new. */
    kDegeneratePrefetch,
    /** A prefetch whose address range is provably disjoint from every
     *  declared memory region: the emitted request can never hit. */
    kOutOfRegionPrefetch,

    // ---- static trap facts -----------------------------------------
    /** A reachable instruction that traps every time it executes
     *  (divi #0, out-of-range gread/lookahead index, ldline on an
     *  event kind known to carry no line data). */
    kGuaranteedTrap,

    // ---- cost bounds ------------------------------------------------
    /** The CFG contains a cycle: worst-case execution is bounded only
     *  by the kMaxKernelSteps watchdog, not by the code itself. */
    kWatchdogLoop,

    // ---- KernelTable-wide checks -----------------------------------
    /** prefetch.cb names a kernel id the table cannot resolve. */
    kUnresolvedCallback,
    /** The prefetch.cb graph contains a cycle: each fill can trigger
     *  the next kernel unconditionally — an event storm that only the
     *  request-queue capacity throttles. */
    kCallbackCycle,
    /** Total code bytes exceed the paper's 4 KiB instruction store. */
    kCodeBudgetExceeded,
};

/** Stable kebab-case name of @p code (what tools print and tests pin). */
const char *diagCodeName(DiagCode code);

/** Sentinel pc for kernel- and table-wide diagnostics. */
constexpr int kNoPc = -1;

/** One finding. */
struct Diag
{
    Severity severity = Severity::kWarning;
    /** Instruction index the finding anchors to, or kNoPc. */
    int pc = kNoPc;
    DiagCode code = DiagCode::kUnreachableCode;
    std::string message;
    /** Disassembled text of the instruction at pc ("" when the finding
     *  is kernel- or table-wide, or the producer predates it). */
    std::string instrText;

    Diag() = default;
    Diag(Severity sev, int at, DiagCode c, std::string msg,
         std::string instr = {})
        : severity(sev), pc(at), code(c), message(std::move(msg)),
          instrText(std::move(instr))
    {
    }
};

/** "error" / "warning". */
const char *severityName(Severity s);

/** Render as "pc 3: error: [bad-branch-target] ..." (no trailing \n);
 *  with instrText set, the anchor reads "pc 3 (div r1, r1, r2): ...". */
std::string formatDiag(const Diag &d);

/** True if any diag in @p diags is an error. */
bool hasErrors(const std::vector<Diag> &diags);

} // namespace epf::analysis

#endif // EPF_ISA_ANALYSIS_DIAG_HPP
