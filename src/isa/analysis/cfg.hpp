/**
 * @file
 * Control-flow graph over a PPU kernel's code.
 *
 * Basic blocks are maximal straight-line instruction runs; block
 * terminators are branches, jumps, halts and statically-proven traps.
 * Edges out of the code range (a wild branch target, or falling past
 * the last instruction) go to a synthetic *boundary* exit — exactly the
 * pc-bounds trap of the reference interpreter, and the same sink slot
 * the pre-decoded interpreter jumps to.
 *
 * The CFG is the substrate every verifier pass runs on (reachability,
 * def-use dataflow, cost bounds), and its acyclic regions are the
 * superblock-formation facts the decoded-trace work consumes (ROADMAP
 * item 1).
 */

#ifndef EPF_ISA_ANALYSIS_CFG_HPP
#define EPF_ISA_ANALYSIS_CFG_HPP

#include <cstdint>
#include <vector>

#include "isa/isa.hpp"

namespace epf::analysis
{

/** How a basic block hands off control. */
enum class BlockExit
{
    /** Falls through or branches to other blocks only. */
    kFlows,
    /** Ends in halt: the event completes here. */
    kHalt,
    /** Ends in an instruction proven to trap every time. */
    kTrap,
};

/** One basic block: instructions [first, last], in code order. */
struct Block
{
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    BlockExit exit = BlockExit::kFlows;
    /** Successor block ids (fall-through first, then taken target). */
    std::vector<std::uint32_t> succs;
    /** True when some exit of this block leaves [0, size): the pc
     *  bounds trap (fall-off-the-end or wild branch target). */
    bool toBoundary = false;
    /** Reachable from the entry block. */
    bool reachable = false;

    std::uint32_t length() const { return last - first + 1; }
};

/** The control-flow graph of one kernel. */
class Cfg
{
  public:
    /**
     * Build the CFG of @p code.  @p trapAt marks instructions proven to
     * trap unconditionally (they become block terminators with no
     * successors); it must have code.size() entries or be empty.
     */
    explicit Cfg(const std::vector<Instr> &code,
                 const std::vector<std::uint8_t> &trapAt = {});

    const std::vector<Block> &blocks() const { return blocks_; }
    /** Block id containing instruction @p pc. */
    std::uint32_t blockOf(std::uint32_t pc) const { return blockOf_[pc]; }
    /** True when no cycle is reachable from the entry. */
    bool acyclic() const { return acyclic_; }
    /** Reachable blocks in reverse postorder (entry first). */
    const std::vector<std::uint32_t> &rpo() const { return rpo_; }
    /** Predecessor block ids of reachable blocks. */
    const std::vector<std::uint32_t> &preds(std::uint32_t block) const
    {
        return preds_[block];
    }

    std::size_t size() const { return blocks_.size(); }
    bool empty() const { return blocks_.empty(); }

  private:
    std::vector<Block> blocks_;
    std::vector<std::uint32_t> blockOf_;
    std::vector<std::vector<std::uint32_t>> preds_;
    std::vector<std::uint32_t> rpo_;
    bool acyclic_ = true;
};

/** True for beq/bne/blt/bge. */
bool isCondBranch(Opcode op);

/** True for any control-transfer op (cond branches and jmp). */
bool isBranch(Opcode op);

/** Taken target of the branch at @p pc (relative imm resolved). */
std::int64_t branchTarget(const Instr &in, std::uint32_t pc);

} // namespace epf::analysis

#endif // EPF_ISA_ANALYSIS_CFG_HPP
