/**
 * @file
 * Abstract-interpretation dataflow over a PPU kernel's CFG.
 *
 * A forward fixpoint computes, for every reachable pc, the set of
 * values each register can hold when the instruction executes.  Two
 * abstract domains run in lockstep and refine each other:
 *
 *  - **intervals**: a signed i64 range [lo, hi] per register, with
 *    threshold widening (0, then the i64 extremes) at loop heads so
 *    the watchdog-loop kernels reach a fixpoint, followed by two
 *    narrowing sweeps to recover loop-exit precision;
 *  - **known-bits**: a (mask, value) pair per register tracking bits
 *    proven constant — the domain that sees through the and/andi +
 *    shli masking idioms the hash kernels use for bucket addressing.
 *
 * Branch edges refine operand states (beq intersects, blt/bge clamp
 * interval endpoints), and the same-register conditions (beq r,r) make
 * the dead edge infeasible outright.  Registers are zero at event
 * entry in both interpreters, so the entry state is exact, and every
 * fact proven under the default (nothing-assumed) context holds for
 * any event — that is what lets predecode consume the results.
 *
 * Consumers:
 *  - analyzeKernel() refines its per-pc trap facts (a div whose
 *    divisor interval excludes zero is proven trap-free) and derives
 *    the new warning families (out-of-region / degenerate prefetch
 *    target, dead assignment, constant branch);
 *  - predecode.cpp hoists refined always-traps to kTrap and exports
 *    the per-pc trap-free bitmap superblock formation consumes;
 *  - the tier-2 ISA fuzzer replays 10k programs instruction-by-
 *    instruction against the computed intervals: every concrete
 *    register value must lie inside its abstract state, so any
 *    unsound transfer function fails loudly.
 */

#ifndef EPF_ISA_ANALYSIS_DATAFLOW_HPP
#define EPF_ISA_ANALYSIS_DATAFLOW_HPP

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "isa/analysis/cfg.hpp"
#include "isa/isa.hpp"

namespace epf::analysis
{

struct KernelContext; // verifier.hpp; carries the seeded value facts

/** A signed i64 value range.  lo > hi encodes the empty set. */
struct Interval
{
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();

    static Interval top() { return {}; }
    static Interval constant(std::int64_t v) { return {v, v}; }
    static Interval range(std::int64_t l, std::int64_t h) { return {l, h}; }
    static Interval empty() { return {1, 0}; }

    bool isEmpty() const { return lo > hi; }
    bool isTop() const
    {
        return lo == std::numeric_limits<std::int64_t>::min() &&
               hi == std::numeric_limits<std::int64_t>::max();
    }
    bool isConst() const { return lo == hi; }
    bool contains(std::int64_t v) const { return lo <= v && v <= hi; }

    bool operator==(const Interval &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/**
 * Bits proven constant: bit i is known iff mask bit i is set, and then
 * holds value bit i.  Invariant: (val & ~mask) == 0.
 */
struct KnownBits
{
    std::uint64_t mask = 0;
    std::uint64_t val = 0;

    static KnownBits top() { return {}; }
    static KnownBits constant(std::uint64_t v) { return {~0ull, v}; }

    /** Could a register holding this state contain raw value @p v? */
    bool admits(std::uint64_t v) const { return (v & mask) == val; }
    bool isConst() const { return mask == ~0ull; }
    /** Low bits proven zero (e.g. 3 after shli #3). */
    unsigned trailingZeros() const;

    bool operator==(const KnownBits &o) const
    {
        return mask == o.mask && val == o.val;
    }
};

/** One register's abstract value: both domains, kept consistent. */
struct AbsValue
{
    Interval iv;
    KnownBits kb;

    static AbsValue top() { return {}; }
    static AbsValue constant(std::int64_t v)
    {
        return {Interval::constant(v),
                KnownBits::constant(static_cast<std::uint64_t>(v))};
    }

    /** Could the register hold raw (two's-complement) value @p v? */
    bool contains(std::uint64_t v) const
    {
        return iv.contains(static_cast<std::int64_t>(v)) && kb.admits(v);
    }
    std::optional<std::int64_t> asConst() const
    {
        if (iv.isConst())
            return iv.lo;
        return std::nullopt;
    }

    bool operator==(const AbsValue &o) const
    {
        return iv == o.iv && kb == o.kb;
    }
};

/** Abstract register file at one program point. */
struct RegState
{
    /** False when the point is proven unreachable (dead branch edge,
     *  code after a proven trap, or CFG-unreachable). */
    bool feasible = false;
    std::array<AbsValue, kPpuRegs> reg{};

    bool operator==(const RegState &o) const
    {
        if (feasible != o.feasible)
            return false;
        if (!feasible)
            return true;
        return reg == o.reg;
    }
};

/** Everything the fixpoint proved, per pc. */
struct DataflowResult
{
    /** Abstract state on entry to each instruction (code.size()
     *  entries; in[pc].feasible == false for dead pcs). */
    std::vector<RegState> in;
    /** Refined may-trap: can the instruction trap when it executes?
     *  Strictly no weaker than mayTrap(in, ctx) — a div whose divisor
     *  state excludes 0 (and the INT64_MIN / -1 pair) clears it. */
    std::vector<std::uint8_t> mayTrapPc;
    /** Refined always-trap: proven to trap on every execution (e.g. a
     *  divisor interval pinned to [0, 0]). */
    std::vector<std::uint8_t> alwaysTrapsPc;
    /** The fixpoint terminated normally.  When false every state was
     *  forced to top (still sound, no precision). */
    bool converged = false;

    /**
     * The exported region oracle: instruction at @p pc can never trap
     * when it executes (infeasible pcs never execute, so they qualify
     * vacuously).  Out-of-range pcs are not trap-free — they are the
     * boundary trap.
     */
    bool provenTrapFree(std::size_t pc) const
    {
        return pc < in.size() && (!in[pc].feasible || !mayTrapPc[pc]);
    }
};

/** What the value analysis proves about a conditional branch. */
enum class BranchOutcome
{
    kUnknown,     ///< both arms feasible (or not a cond branch)
    kAlwaysTaken, ///< the condition holds on every execution
    kNeverTaken,  ///< the condition fails on every execution
};

/**
 * Decide a conditional branch at a point whose entry state is @p s
 * (covers the same-register identities beq r,r / blt r,r and every
 * case where one arm's operand constraints are contradictory).
 */
BranchOutcome branchOutcome(const Instr &in, const RegState &s);

/**
 * Run the forward fixpoint over @p cfg.  @p ctx seeds the entry facts
 * (vaddr range, known global-register values); the default context
 * assumes nothing, which makes every resulting fact valid for every
 * event — the form predecode consumes.  @p cfg must have been built
 * from @p code (with the same always-trap terminators analyzeKernel
 * uses).
 */
DataflowResult analyzeDataflow(const std::vector<Instr> &code,
                               const Cfg &cfg, const KernelContext &ctx);

/** Convenience form: builds the trap-terminated CFG itself. */
DataflowResult analyzeDataflow(const Kernel &k, const KernelContext &ctx);

} // namespace epf::analysis

#endif // EPF_ISA_ANALYSIS_DATAFLOW_HPP
