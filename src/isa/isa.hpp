/**
 * @file
 * The PPU instruction set.
 *
 * The paper's programmable prefetch units are tiny in-order RISC cores
 * (Cortex-M0+ class) with no loads, stores or stack.  Their only inputs
 * are the triggering observation (virtual address, and for prefetch
 * completions the fetched cache line), the prefetcher's global registers,
 * and the EWMA lookahead values; their only side effect is emitting new
 * prefetch requests.  This module defines that ISA; the interpreter in
 * interpreter.hpp executes it at one instruction per PPU cycle.
 */

#ifndef EPF_ISA_ISA_HPP
#define EPF_ISA_ISA_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace epf
{

/** Number of PPU general-purpose registers. */
constexpr unsigned kPpuRegs = 16;

/** Number of shared prefetcher global registers. */
constexpr unsigned kGlobalRegs = 64;

/** Maximum instructions per event (watchdog; a trap terminates events). */
constexpr unsigned kMaxKernelSteps = 4096;

/** PPU opcodes. */
enum class Opcode : std::uint8_t
{
    kHalt,       ///< end of event
    kNop,

    // Constants and moves
    kLi,         ///< rd = imm
    kMov,        ///< rd = rs

    // ALU, register forms
    kAdd,        ///< rd = rs + rt
    kSub,        ///< rd = rs - rt
    kMul,        ///< rd = rs * rt
    kDiv,        ///< rd = rs / rt (signed; traps on rt == 0 and on the
                 ///< overflowing INT64_MIN / -1)
    kAnd,
    kOr,
    kXor,
    kShl,        ///< rd = rs << (rt & 63)
    kShr,        ///< rd = rs >> (rt & 63), logical

    // ALU, immediate forms
    kAddi,       ///< rd = rs + imm
    kMuli,
    kDivi,       ///< traps on imm == 0 and on INT64_MIN / -1
    kAndi,
    kShli,
    kShri,

    // Observation and prefetcher state access
    kVaddr,      ///< rd = triggering virtual address
    kLineBase,   ///< rd = line-aligned base of the observed line
    kLdLine,     ///< rd = 64-bit word of observed line at byte (rs+imm)&56
    kLdLine32,   ///< rd = 32-bit word (zero-extended) at byte (rs+imm)&60
    kGread,      ///< rd = global register [imm]
    kLookahead,  ///< rd = EWMA lookahead for filter entry [imm]

    // Prefetch emission
    kPrefetch,   ///< enqueue prefetch of address in rs
    kPrefetchTag,///< ... with memory-request tag imm
    kPrefetchCb, ///< ... with callback kernel id imm

    // Control flow (relative to the next instruction)
    kBeq,        ///< if (rs == rt) pc += imm
    kBne,
    kBlt,        ///< signed
    kBge,        ///< signed
    kJmp,        ///< pc += imm
};

/** One PPU instruction. */
struct Instr
{
    Opcode op = Opcode::kHalt;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int64_t imm = 0;
};

/** A prefetch kernel: the code run in response to one event. */
struct Kernel
{
    std::string name;
    std::vector<Instr> code;
};

/** Id of a kernel within a KernelTable. */
using KernelId = std::int32_t;

/** Sentinel for "no kernel". */
constexpr KernelId kNoKernel = -1;

/**
 * The prefetcher's kernel store (backed by the PPUs' shared instruction
 * cache).  The paper measures at most 1 KB of prefetch code per
 * application against a 4 KiB cache; totalBytes() lets tests assert the
 * budget holds.
 */
class KernelTable
{
  public:
    /**
     * Register a kernel; returns its id.  In strict mode (the default)
     * the kernel is verified first — see src/isa/analysis — and a
     * std::invalid_argument carrying the formatted diagnostics is
     * thrown on any error (wild branch target, fall-off-the-end,
     * guaranteed trap, empty kernel).  Callback ids are NOT checked
     * here: the compiler registers kernels with local ids and patches
     * them afterwards; analysis::analyzeTable() covers resolution.
     */
    KernelId add(Kernel k);

    /**
     * Strict verification on add().  Workloads and the compiler keep
     * it on; the ISA fuzzer turns it off for its intentionally-
     * trapping corpus.
     */
    void setStrict(bool strict) { strict_ = strict; }
    bool strict() const { return strict_; }

    const Kernel &operator[](KernelId id) const { return kernels_.at(static_cast<std::size_t>(id)); }

    /**
     * Mutable access (used by the compiler's relocation step and the
     * manual kernels' address patching).  Conservatively counts as a
     * mutation: callers hold the reference past this call, so the
     * version moves now and any derived state (e.g. the PPF's decoded-
     * program cache) refreshes before the kernel next runs.
     */
    Kernel &
    mutableKernel(KernelId id)
    {
        ++version_;
        return kernels_.at(static_cast<std::size_t>(id));
    }

    bool valid(KernelId id) const
    {
        return id >= 0 && static_cast<std::size_t>(id) < kernels_.size();
    }

    std::size_t size() const { return kernels_.size(); }

    /** Approximate footprint at 4 bytes per instruction. */
    std::size_t
    totalBytes() const
    {
        std::size_t n = 0;
        for (const auto &k : kernels_)
            n += k.code.size() * 4;
        return n;
    }

    void
    clear()
    {
        ++version_;
        kernels_.clear();
    }

    /**
     * Monotonic mutation counter: moves on add(), mutableKernel() and
     * clear().  Consumers caching per-kernel derived state compare it
     * to detect staleness.
     */
    std::uint64_t version() const { return version_; }

  private:
    std::vector<Kernel> kernels_;
    std::uint64_t version_ = 0;
    bool strict_ = true;
};

} // namespace epf

#endif // EPF_ISA_ISA_HPP
