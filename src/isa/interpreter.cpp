#include "isa/interpreter.hpp"

#include <cstring>
#include <limits>

namespace epf
{
namespace
{

/** Emit-sink adapters: one indirection-free, one callback-based. */
struct VecSink
{
    std::vector<PrefetchEmit> *v;
    void
    operator()(const PrefetchEmit &e) const
    {
        if (v != nullptr)
            v->push_back(e);
    }
};

struct FnSink
{
    const Interpreter::EmitFn *fn;
    void
    operator()(const PrefetchEmit &e) const
    {
        if (*fn)
            (*fn)(e);
    }
};

/** No-op step observer (the untraced fast paths). */
struct NullTrace
{
    void
    operator()(std::size_t, const std::uint64_t *) const
    {
    }
};

/** Step observer forwarding to Interpreter::StepFn. */
struct FnTrace
{
    const Interpreter::StepFn *fn;
    void
    operator()(std::size_t pc, const std::uint64_t *regs) const
    {
        if (*fn)
            (*fn)(pc, regs);
    }
};

template <class Sink, class Trace = NullTrace>
ExecResult
runImpl(const Kernel &kernel, const EventContext &ctx, Sink emit,
        unsigned max_steps, std::uint64_t *regs_out, Trace trace = {})
{
    ExecResult res;
    std::uint64_t regs[kPpuRegs] = {};
    std::int64_t pc = 0;
    const auto size = static_cast<std::int64_t>(kernel.code.size());

    auto done = [&](ExitReason why) {
        res.exit = why;
        if (regs_out != nullptr)
            std::memcpy(regs_out, regs, sizeof(regs));
        return res;
    };
    auto trap = [&done]() { return done(ExitReason::kTrapped); };

    while (true) {
        if (res.cycles >= max_steps)
            return done(ExitReason::kStepLimit);
        if (pc < 0 || pc >= size)
            return trap();
        trace(static_cast<std::size_t>(pc), regs);

        const Instr &in = kernel.code[static_cast<std::size_t>(pc)];
        ++pc;
        ++res.cycles;

        switch (in.op) {
          case Opcode::kHalt:
            return done(ExitReason::kHalted);
          case Opcode::kNop:
            break;

          case Opcode::kLi:
            regs[in.rd] = static_cast<std::uint64_t>(in.imm);
            break;
          case Opcode::kMov:
            regs[in.rd] = regs[in.rs];
            break;

          case Opcode::kAdd:
            regs[in.rd] = regs[in.rs] + regs[in.rt];
            break;
          case Opcode::kSub:
            regs[in.rd] = regs[in.rs] - regs[in.rt];
            break;
          case Opcode::kMul:
            regs[in.rd] = regs[in.rs] * regs[in.rt];
            break;
          case Opcode::kDiv:
            // INT64_MIN / -1 overflows (hardware raises the same
            // exception as /0), so both trap identically.
            if (regs[in.rt] == 0 ||
                (static_cast<std::int64_t>(regs[in.rt]) == -1 &&
                 static_cast<std::int64_t>(regs[in.rs]) ==
                     std::numeric_limits<std::int64_t>::min()))
                return trap();
            regs[in.rd] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(regs[in.rs]) /
                static_cast<std::int64_t>(regs[in.rt]));
            break;
          case Opcode::kAnd:
            regs[in.rd] = regs[in.rs] & regs[in.rt];
            break;
          case Opcode::kOr:
            regs[in.rd] = regs[in.rs] | regs[in.rt];
            break;
          case Opcode::kXor:
            regs[in.rd] = regs[in.rs] ^ regs[in.rt];
            break;
          case Opcode::kShl:
            regs[in.rd] = regs[in.rs] << (regs[in.rt] & 63);
            break;
          case Opcode::kShr:
            regs[in.rd] = regs[in.rs] >> (regs[in.rt] & 63);
            break;

          case Opcode::kAddi:
            regs[in.rd] = regs[in.rs] + static_cast<std::uint64_t>(in.imm);
            break;
          case Opcode::kMuli:
            regs[in.rd] = regs[in.rs] * static_cast<std::uint64_t>(in.imm);
            break;
          case Opcode::kDivi:
            if (in.imm == 0 ||
                (in.imm == -1 &&
                 static_cast<std::int64_t>(regs[in.rs]) ==
                     std::numeric_limits<std::int64_t>::min()))
                return trap();
            regs[in.rd] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(regs[in.rs]) / in.imm);
            break;
          case Opcode::kAndi:
            regs[in.rd] = regs[in.rs] & static_cast<std::uint64_t>(in.imm);
            break;
          case Opcode::kShli:
            regs[in.rd] = regs[in.rs] << (in.imm & 63);
            break;
          case Opcode::kShri:
            regs[in.rd] = regs[in.rs] >> (in.imm & 63);
            break;

          case Opcode::kVaddr:
            regs[in.rd] = ctx.vaddr;
            break;
          case Opcode::kLineBase:
            regs[in.rd] = lineAlign(ctx.vaddr);
            break;
          case Opcode::kLdLine: {
            if (!ctx.hasLine)
                return trap();
            unsigned off = static_cast<unsigned>(
                (regs[in.rs] + static_cast<std::uint64_t>(in.imm)) &
                (kLineBytes - 8));
            std::uint64_t v;
            std::memcpy(&v, ctx.line.data() + off, 8);
            regs[in.rd] = v;
            break;
          }
          case Opcode::kLdLine32: {
            if (!ctx.hasLine)
                return trap();
            unsigned off = static_cast<unsigned>(
                (regs[in.rs] + static_cast<std::uint64_t>(in.imm)) &
                (kLineBytes - 4));
            std::uint32_t v;
            std::memcpy(&v, ctx.line.data() + off, 4);
            regs[in.rd] = v;
            break;
          }
          case Opcode::kGread:
            if (in.imm < 0 || in.imm >= static_cast<std::int64_t>(kGlobalRegs) ||
                ctx.globalRegs == nullptr)
                return trap();
            regs[in.rd] = ctx.globalRegs[in.imm];
            break;
          case Opcode::kLookahead:
            if (in.imm < 0 ||
                in.imm >= static_cast<std::int64_t>(ctx.lookaheadEntries) ||
                ctx.lookahead == nullptr)
                return trap();
            regs[in.rd] = ctx.lookahead[in.imm];
            break;

          case Opcode::kPrefetch:
          case Opcode::kPrefetchTag:
          case Opcode::kPrefetchCb: {
            PrefetchEmit e;
            e.vaddr = regs[in.rs];
            if (in.op == Opcode::kPrefetchTag)
                e.tag = static_cast<std::int32_t>(in.imm);
            else if (in.op == Opcode::kPrefetchCb)
                e.cbKernel = static_cast<KernelId>(in.imm);
            ++res.emitted;
            emit(e);
            break;
          }

          case Opcode::kBeq:
            if (regs[in.rs] == regs[in.rt])
                pc += in.imm;
            break;
          case Opcode::kBne:
            if (regs[in.rs] != regs[in.rt])
                pc += in.imm;
            break;
          case Opcode::kBlt:
            if (static_cast<std::int64_t>(regs[in.rs]) <
                static_cast<std::int64_t>(regs[in.rt]))
                pc += in.imm;
            break;
          case Opcode::kBge:
            if (static_cast<std::int64_t>(regs[in.rs]) >=
                static_cast<std::int64_t>(regs[in.rt]))
                pc += in.imm;
            break;
          case Opcode::kJmp:
            pc += in.imm;
            break;
        }
    }
}

} // namespace

ExecResult
Interpreter::run(const Kernel &kernel, const EventContext &ctx,
                 const EmitFn &emit, unsigned max_steps,
                 std::uint64_t *regs_out)
{
    return runImpl(kernel, ctx, FnSink{&emit}, max_steps, regs_out);
}

ExecResult
Interpreter::run(const Kernel &kernel, const EventContext &ctx,
                 std::vector<PrefetchEmit> *sink, unsigned max_steps,
                 std::uint64_t *regs_out)
{
    return runImpl(kernel, ctx, VecSink{sink}, max_steps, regs_out);
}

ExecResult
Interpreter::runTraced(const Kernel &kernel, const EventContext &ctx,
                       std::vector<PrefetchEmit> *sink, const StepFn &step,
                       unsigned max_steps, std::uint64_t *regs_out)
{
    return runImpl(kernel, ctx, VecSink{sink}, max_steps, regs_out,
                   FnTrace{&step});
}

} // namespace epf
