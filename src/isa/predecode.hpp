/**
 * @file
 * Pre-decoded, direct-threaded PPU interpreter.
 *
 * Interpreter::run (interpreter.cpp) re-reads raw Instr structs and
 * pays a full switch decode per instruction per event; since every
 * observed cache-line event runs one or more kernels, that decode cost
 * is paid millions of times per experiment.  This module compiles a
 * Kernel once into a dense decoded program:
 *
 *  - one handler per decoded op, dispatched either through a computed
 *    goto (GCC/Clang, the default; see EPF_PREDECODE_THREADED) or
 *    through handler function pointers stored in each DecodedInstr
 *    (the portable fallback),
 *  - operands pre-extracted into fixed-width slots (shift immediates
 *    pre-masked, tag/callback immediates pre-narrowed, branch targets
 *    resolved to absolute decoded indices),
 *  - statically-provable traps hoisted to a dedicated kTrap op
 *    (divide by a zero immediate, out-of-range global-register or
 *    negative lookahead indices),
 *  - fused macro-ops for the dominant traversal idioms (constant /
 *    pointer-arithmetic feeding a prefetch, address-generation feeding
 *    a line load, hash mask+shift sequences, compare+branch pairs), and
 *  - superblocks: maximal straight-line runs of decoded slots inside a
 *    reachable basic block, executed as ONE op — registers materialise
 *    in host locals and write back only at block exit, cycles bulk-
 *    charge as the block's exact architectural total (the analyzer's
 *    per-block weights), and a block-entry guard routes any event the
 *    run is not proven safe for to an exact op-by-op slow path.
 *
 * Timing purity: a fused macro-op still charges the architectural
 * cycle count of the original un-fused sequence, checks the step-limit
 * watchdog between its two halves exactly where the reference
 * interpreter would, and leaves the same register state behind when
 * truncated or trapped mid-sequence.  The reference switch interpreter
 * remains the semantic oracle: the differential fuzzer
 * (tests/fuzz_isa_test.cpp) holds exit reason, cycle count, emit
 * sequence and final register file bit-identical across both.
 *
 * DecodeCache interns decoded programs by code content (kernel names
 * are not part of the identity), so the per-core PPF instances of a
 * multi-core machine — which each register their own copy of the same
 * kernels — share one read-only decoded program instead of decoding
 * once per core.
 */

#ifndef EPF_ISA_PREDECODE_HPP
#define EPF_ISA_PREDECODE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/interpreter.hpp"
#include "isa/isa.hpp"

/**
 * Dispatch mechanism feature macro: 1 = computed-goto direct threading
 * (GNU C extension), 0 = portable handler-function-pointer loop.  The
 * two share one set of op bodies, so they cannot drift semantically.
 */
#ifndef EPF_PREDECODE_THREADED
#if defined(__GNUC__) || defined(__clang__)
#define EPF_PREDECODE_THREADED 1
#else
#define EPF_PREDECODE_THREADED 0
#endif
#endif

namespace epf
{

/**
 * Decoded opcodes.  The first block mirrors the architectural ISA; the
 * tail adds decode-time specialisations (kTrap, kBoundary) and fused
 * macro-ops covering two architectural instructions each.
 */
enum class DecodedOp : std::uint8_t
{
    kHalt,
    kNop,
    kLi,
    kMov,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr,
    kAddi,
    kMuli,
    kDivi,
    kAndi,
    kShli,
    kShri,
    kVaddr,
    kLineBase,
    kLdLine,
    kLdLine32,
    kGread,
    kLookahead,
    kPrefetch,
    kPrefetchTag,
    kPrefetchCb,
    kBeq,
    kBne,
    kBlt,
    kBge,
    kJmp,
    /** Statically-proven trap (hoisted bounds/zero-divisor check). */
    kTrap,
    /** Synthetic slot past the end: fall-off or wild branch target. */
    kBoundary,
    /**
     * A formed superblock head: the whole straight-line run executes as
     * one op (target = index into the DecodedKernel's superblock
     * table).  Only a run's head slot is rewritten — interior slots
     * keep their original decoded ops, which is what makes the
     * op-by-op slow path exact when the step budget or a block-entry
     * guard cannot cover the run.
     */
    kSuperblock,
    // ---- fused macro-ops --------------------------------------------
    // Each covers 2-4 architectural instructions whose operands chain
    // (every consumer reads the previous producer's rd, verified at
    // decode), so the body forwards the chained value through a host
    // local instead of bouncing it through the memory-resident
    // register file — that forwarding, not the saved dispatches, is
    // most of the speedup.  Architectural cycle counts and step-limit
    // truncation points are preserved exactly.
    kLiPrefetch,
    kLiPrefetchTag,
    kLiPrefetchCb,
    kAddPrefetch,
    kAddPrefetchTag,
    kAddPrefetchCb,
    kAddiLdLine,
    kAndiShli,
    kAndShli,
    kAddiBeq,
    kAddiBne,
    kAddiBlt,
    kAddiBge,
    kAndiBeq,
    kAndiBne,
    kSubBeq,
    kSubBne,
    // Whole hash idiom (mask, shift, rebase, prefetch) as one op:
    // kAndi/kAnd + kShli + kAdd + kPrefetch{,Tag,Cb}.
    kHashiPrefetch,
    kHashiPrefetchTag,
    kHashiPrefetchCb,
    kHashrPrefetch,
    kHashrPrefetchTag,
    kHashrPrefetchCb,
    kOpCount_,
};

struct DecodedInstr;
struct SuperBlock;

namespace detail
{
/** Emit staging-buffer capacity (flushes to the real sink when full). */
constexpr std::uint32_t kStageCap = 512;

/**
 * Interpreter state shared by every handler.  Only the cold half lives
 * here; the per-dispatch counters ride in Hot (below) so the dispatch
 * loop keeps them in host registers.  Emits land in a stack staging
 * buffer at an address computed from the register-resident counter —
 * back-to-back emits pipeline instead of serialising on a sink pointer
 * bounced through memory — and flush to the real sink (raw vector or
 * callback) in bulk.
 */
struct ExecState
{
    std::uint64_t regs[kPpuRegs];
    const EventContext *ctx;
    /** Fast sink: emits append here when non-null. */
    std::vector<PrefetchEmit> *emitVec;
    /** Callback sink, used only when emitVec is null. */
    const Interpreter::EmitFn *emitFn;
    /** Emit staging buffer (lives on the dispatch loop's stack). */
    PrefetchEmit *stage;
    /** Emits already flushed out of the staging buffer. */
    std::uint32_t flushed;
    /** The program's superblock table (kSuperblock's d.target indexes
     *  it); may be null only when the program contains no kSuperblock. */
    const SuperBlock *blocks;
};

/** The dispatch loop's register-resident counters. */
struct Hot
{
    std::uint32_t cycles;
    std::uint32_t emitted;
    std::uint32_t maxSteps;
};

/** A handler executes one decoded op and returns the next decoded
 *  index, or a control code >= kCtrlBase (see predecode.cpp). */
using Handler = std::uint32_t (*)(const DecodedInstr &d, std::uint32_t ip,
                                  ExecState &st, Hot &hot);
} // namespace detail

/**
 * One decoded op with pre-extracted operands.  Kept at 32 bytes so the
 * dispatcher reaches slot @c ip with one shift-and-add; dispatch goes
 * through the per-op label/handler tables indexed by @c op (the
 * function-pointer form looks the handler up in a table rather than
 * storing it here — the extra 8 bytes per op cost more than the load).
 */
struct DecodedInstr
{
    DecodedOp op = DecodedOp::kBoundary;
    /** First (or only) architectural op's registers. */
    std::uint8_t rd = 0, rs = 0, rt = 0;
    /** Second/later architectural ops' registers (fused macro-ops). */
    std::uint8_t rd2 = 0, rs2 = 0, rt2 = 0;
    /**
     * Architectural cycles this op charges when fully executed.
     * Informational (tests and introspection): the op bodies hard-code
     * their charges; predecode_test pins the two against each other.
     */
    std::uint8_t archCycles = 1;
    /** Branch-taken target as an absolute decoded index. */
    std::uint32_t target = 0;
    /** First-op immediate (pre-masked/narrowed where possible). */
    std::int64_t imm = 0;
    /** Second-op immediate of a fused op (tag/callback/shift). */
    std::int64_t imm2 = 0;
};
static_assert(sizeof(DecodedInstr) == 32);

/**
 * One formed superblock: a maximal straight-line run of decoded slots
 * inside a reachable basic block (between CFG leaders), compiled into
 * a single op.  Formation consumes the decode-time region oracle
 * (DecodedKernel::trapFreeMap()) plus analysis::Cfg leaders/edges:
 *
 *  - always-safe ops (ALU, li/mov, vaddr/lineBase, prefetch emits and
 *    their fused forms) join unconditionally;
 *  - conditionally-trapping ops join behind a block-entry *guard*
 *    (needsLine for ldline forms, needsGlobals for in-range gread,
 *    lookaheadMax for lookahead reads) — their only trap condition is
 *    the guarded event property, so under the guard they cannot trap;
 *  - div/divi join only when the trap-free bitmap proves the exact
 *    arch pc (value-refined divisor facts), everything else ends the
 *    run.  A trailing branch/jmp/halt joins as the terminator.
 *
 * Execution contract (see xSuperblock in predecode.cpp): when the
 * remaining step budget covers the whole run and every guard holds,
 * registers materialise into a host-local file, the constituent ops
 * execute checkless (emits staged in the shared stack buffer), the
 * register file writes back once at block exit, and cycles bulk-charge
 * the exact architectural total.  Otherwise the head's original
 * decoded op (preserved here) executes through the normal handler
 * table and control falls into the untouched interior slots — exact
 * op-by-op reference behaviour, generalising the fused-macro-op
 * slow-path pattern.
 */
struct SuperBlock
{
    /**
     * Execution shape, the block-level analogue of macro-op fusion:
     * formation recognises dominant block idioms and tags them so the
     * handler can run a dedicated straight-line loop with no per-op
     * dispatch at all.  kChaseLoop is the pointer-chase shape every
     * manual PPF kernel loops on — a fused address-bump+line-load
     * feeding a fused hash+prefetch quad, closed by a plain
     * compare-branch back to the block's own head.
     */
    enum class Shape : std::uint8_t
    {
        kGeneric,  ///< run ops through the positional dispatch loop
        kChaseLoop ///< [kAddiLdLine, kHash*Prefetch*] + self-loop branch
    };
    Shape shape = Shape::kGeneric;
    /** The head slot's original decoded op (the slow path executes it
     *  and falls through into the interior slots). */
    DecodedInstr head;
    /** Every constituent decoded slot in run order, head included,
     *  terminator excluded. */
    std::vector<DecodedInstr> ops;
    /** The terminating branch/jmp/halt slot, when hasTerm. */
    DecodedInstr term;
    bool hasTerm = false;
    /** Guard: some op reads observed line data (ldline forms). */
    bool needsLine = false;
    /** Guard: some op reads an (in-range) global register. */
    bool needsGlobals = false;
    /** Guard: largest lookahead index read, or -1 when none. */
    std::int64_t lookaheadMax = -1;
    /**
     * Register dataflow summary, one bit per architectural register.
     * liveIn holds registers read before any write (terminator
     * included); defs holds every register the run writes.  The fast
     * path materialises only liveIn registers into host locals and
     * writes only defs back — for typical blocks that is a handful of
     * scalar moves instead of two full register-file copies.
     */
    std::uint16_t liveIn = 0;
    std::uint16_t defs = 0;
    /** Decoded index of the slot after the run (not-taken exit). */
    std::uint32_t fallthrough = 0;
    /** Exact architectural cycles of the whole run, terminator
     *  included — equals the analyzer's block weight when the run
     *  covers a whole basic block. */
    std::uint32_t cycles = 0;
    /** Exact prefetch emissions of the whole run. */
    std::uint32_t emits = 0;
};

/**
 * A kernel compiled to its decoded program.  Immutable after
 * construction, so instances are safe to share read-only across
 * threads and across per-core prefetcher instances.
 */
class DecodedKernel
{
  public:
    /**
     * Compile @p k.  @p superblocks selects whether straight-line runs
     * additionally fold into superblock ops (the default, and what the
     * PPF runs); false keeps the PR 5 fused-macro-op program — the
     * decoded baseline the benches and parity suites compare against.
     * Semantics are bit-identical either way.
     */
    explicit DecodedKernel(const Kernel &k, bool superblocks = true);

    /**
     * Execute the decoded program.  Semantics (exit reason, cycle
     * count, emit sequence, register effects, trap points, step-limit
     * truncation — including mid-fused-sequence) are bit-identical to
     * Interpreter::run on the source kernel.
     */
    static ExecResult run(const DecodedKernel &dk, const EventContext &ctx,
                          const Interpreter::EmitFn &emit,
                          unsigned max_steps = kMaxKernelSteps,
                          std::uint64_t *regs_out = nullptr);

    /**
     * Fast-sink form: emitted prefetches append to @p sink (may be
     * null to discard).  This is the PPF's per-event path — it avoids
     * a std::function construction and an indirect call per emit.
     */
    static ExecResult run(const DecodedKernel &dk, const EventContext &ctx,
                          std::vector<PrefetchEmit> *sink,
                          unsigned max_steps = kMaxKernelSteps,
                          std::uint64_t *regs_out = nullptr);

    /**
     * Refined per-arch-pc trap fact from the decode-time dataflow
     * analysis (src/isa/analysis/dataflow.hpp): true when the
     * instruction at @p archPc can never trap when it executes, for
     * ANY event.  The decode-time context assumes nothing (programs
     * are interned by code content and run under arbitrary events), so
     * the proofs hold universally.  This is the region oracle
     * superblock formation consumes (ROADMAP item 1): a straight-line
     * run of trap-free pcs can execute as one fused block.
     */
    bool provenTrapFree(std::size_t archPc) const
    {
        return archPc < trapFreePc_.size() && trapFreePc_[archPc] != 0;
    }
    /** The whole per-arch-pc trap-free bitmap (archLength() entries). */
    const std::vector<std::uint8_t> &trapFreeMap() const
    {
        return trapFreePc_;
    }

    /** Decoded ops, excluding the synthetic boundary slot. */
    std::size_t decodedLength() const { return prog_.size() - 1; }
    /** Architectural instructions in the source kernel. */
    std::size_t archLength() const { return src_.size(); }
    /** Number of fused macro-ops (pairs and quads) in the program. */
    unsigned fusedOps() const { return fusedPairs_; }
    /** The formed superblocks (empty when disabled at decode). */
    const std::vector<SuperBlock> &superblocks() const { return blocks_; }
    /** Whether superblock formation ran (part of the cache identity). */
    bool superblocksEnabled() const { return superblocksEnabled_; }
    /** The source code this program was decoded from. */
    const std::vector<Instr> &source() const { return src_; }
    /** Introspection for tests: decoded op at @p idx. */
    const DecodedInstr &at(std::size_t idx) const { return prog_[idx]; }

  private:
    /** Decoded program; the last slot is the kBoundary sink. */
    std::vector<DecodedInstr> prog_;
    /** Copy of the source code (content identity for DecodeCache). */
    std::vector<Instr> src_;
    /** Per-arch-pc refined cannot-trap bitmap (see provenTrapFree). */
    std::vector<std::uint8_t> trapFreePc_;
    /** Superblock descriptors (kSuperblock heads index into this). */
    std::vector<SuperBlock> blocks_;
    /** Fused macro-ops emitted (pairs and quads). */
    unsigned fusedPairs_ = 0;
    bool superblocksEnabled_ = true;
};

/**
 * Process-wide, thread-safe intern table of decoded kernels, keyed by
 * code content.  Two kernels with byte-identical code (names ignored)
 * share one DecodedKernel, so the N per-core PPF instances of a
 * multi-core run decode each kernel once, not N times.  Entries live
 * for the process (kernels are tiny — the paper budgets 4 KiB per
 * application); drop() releases the table, e.g. between test suites.
 */
class DecodeCache
{
  public:
    /**
     * Decode @p k, or return the shared already-decoded program.  The
     * intern identity is (code content, superblocks): the same code
     * decoded with and without superblocks yields two distinct entries
     * — otherwise a parity suite pinning one mode could be served the
     * other's program.
     */
    static std::shared_ptr<const DecodedKernel>
    decode(const Kernel &k, bool superblocks = true);

    /** Distinct decoded programs currently interned. */
    static std::size_t internedKernels();
    /** Lookups served from the intern table / decodes performed. */
    static std::uint64_t hits();
    static std::uint64_t misses();

    /** Release the intern table (outstanding shared_ptrs stay valid). */
    static void drop();
};

} // namespace epf

#endif // EPF_ISA_PREDECODE_HPP
