/**
 * @file
 * Pre-decoded, direct-threaded PPU interpreter.
 *
 * Interpreter::run (interpreter.cpp) re-reads raw Instr structs and
 * pays a full switch decode per instruction per event; since every
 * observed cache-line event runs one or more kernels, that decode cost
 * is paid millions of times per experiment.  This module compiles a
 * Kernel once into a dense decoded program:
 *
 *  - one handler per decoded op, dispatched either through a computed
 *    goto (GCC/Clang, the default; see EPF_PREDECODE_THREADED) or
 *    through handler function pointers stored in each DecodedInstr
 *    (the portable fallback),
 *  - operands pre-extracted into fixed-width slots (shift immediates
 *    pre-masked, tag/callback immediates pre-narrowed, branch targets
 *    resolved to absolute decoded indices),
 *  - statically-provable traps hoisted to a dedicated kTrap op
 *    (divide by a zero immediate, out-of-range global-register or
 *    negative lookahead indices), and
 *  - fused macro-ops for the dominant traversal idioms (constant /
 *    pointer-arithmetic feeding a prefetch, address-generation feeding
 *    a line load, hash mask+shift sequences, compare+branch pairs).
 *
 * Timing purity: a fused macro-op still charges the architectural
 * cycle count of the original un-fused sequence, checks the step-limit
 * watchdog between its two halves exactly where the reference
 * interpreter would, and leaves the same register state behind when
 * truncated or trapped mid-sequence.  The reference switch interpreter
 * remains the semantic oracle: the differential fuzzer
 * (tests/fuzz_isa_test.cpp) holds exit reason, cycle count, emit
 * sequence and final register file bit-identical across both.
 *
 * DecodeCache interns decoded programs by code content (kernel names
 * are not part of the identity), so the per-core PPF instances of a
 * multi-core machine — which each register their own copy of the same
 * kernels — share one read-only decoded program instead of decoding
 * once per core.
 */

#ifndef EPF_ISA_PREDECODE_HPP
#define EPF_ISA_PREDECODE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/interpreter.hpp"
#include "isa/isa.hpp"

/**
 * Dispatch mechanism feature macro: 1 = computed-goto direct threading
 * (GNU C extension), 0 = portable handler-function-pointer loop.  The
 * two share one set of op bodies, so they cannot drift semantically.
 */
#ifndef EPF_PREDECODE_THREADED
#if defined(__GNUC__) || defined(__clang__)
#define EPF_PREDECODE_THREADED 1
#else
#define EPF_PREDECODE_THREADED 0
#endif
#endif

namespace epf
{

/**
 * Decoded opcodes.  The first block mirrors the architectural ISA; the
 * tail adds decode-time specialisations (kTrap, kBoundary) and fused
 * macro-ops covering two architectural instructions each.
 */
enum class DecodedOp : std::uint8_t
{
    kHalt,
    kNop,
    kLi,
    kMov,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr,
    kAddi,
    kMuli,
    kDivi,
    kAndi,
    kShli,
    kShri,
    kVaddr,
    kLineBase,
    kLdLine,
    kLdLine32,
    kGread,
    kLookahead,
    kPrefetch,
    kPrefetchTag,
    kPrefetchCb,
    kBeq,
    kBne,
    kBlt,
    kBge,
    kJmp,
    /** Statically-proven trap (hoisted bounds/zero-divisor check). */
    kTrap,
    /** Synthetic slot past the end: fall-off or wild branch target. */
    kBoundary,
    // ---- fused macro-ops --------------------------------------------
    // Each covers 2-4 architectural instructions whose operands chain
    // (every consumer reads the previous producer's rd, verified at
    // decode), so the body forwards the chained value through a host
    // local instead of bouncing it through the memory-resident
    // register file — that forwarding, not the saved dispatches, is
    // most of the speedup.  Architectural cycle counts and step-limit
    // truncation points are preserved exactly.
    kLiPrefetch,
    kLiPrefetchTag,
    kLiPrefetchCb,
    kAddPrefetch,
    kAddPrefetchTag,
    kAddPrefetchCb,
    kAddiLdLine,
    kAndiShli,
    kAndShli,
    kAddiBeq,
    kAddiBne,
    kAddiBlt,
    kAddiBge,
    kAndiBeq,
    kAndiBne,
    kSubBeq,
    kSubBne,
    // Whole hash idiom (mask, shift, rebase, prefetch) as one op:
    // kAndi/kAnd + kShli + kAdd + kPrefetch{,Tag,Cb}.
    kHashiPrefetch,
    kHashiPrefetchTag,
    kHashiPrefetchCb,
    kHashrPrefetch,
    kHashrPrefetchTag,
    kHashrPrefetchCb,
    kOpCount_,
};

struct DecodedInstr;

namespace detail
{
/** Emit staging-buffer capacity (flushes to the real sink when full). */
constexpr std::uint32_t kStageCap = 512;

/**
 * Interpreter state shared by every handler.  Only the cold half lives
 * here; the per-dispatch counters ride in Hot (below) so the dispatch
 * loop keeps them in host registers.  Emits land in a stack staging
 * buffer at an address computed from the register-resident counter —
 * back-to-back emits pipeline instead of serialising on a sink pointer
 * bounced through memory — and flush to the real sink (raw vector or
 * callback) in bulk.
 */
struct ExecState
{
    std::uint64_t regs[kPpuRegs];
    const EventContext *ctx;
    /** Fast sink: emits append here when non-null. */
    std::vector<PrefetchEmit> *emitVec;
    /** Callback sink, used only when emitVec is null. */
    const Interpreter::EmitFn *emitFn;
    /** Emit staging buffer (lives on the dispatch loop's stack). */
    PrefetchEmit *stage;
    /** Emits already flushed out of the staging buffer. */
    std::uint32_t flushed;
};

/** The dispatch loop's register-resident counters. */
struct Hot
{
    std::uint32_t cycles;
    std::uint32_t emitted;
    std::uint32_t maxSteps;
};

/** A handler executes one decoded op and returns the next decoded
 *  index, or a control code >= kCtrlBase (see predecode.cpp). */
using Handler = std::uint32_t (*)(const DecodedInstr &d, std::uint32_t ip,
                                  ExecState &st, Hot &hot);
} // namespace detail

/**
 * One decoded op with pre-extracted operands.  Kept at 32 bytes so the
 * dispatcher reaches slot @c ip with one shift-and-add; dispatch goes
 * through the per-op label/handler tables indexed by @c op (the
 * function-pointer form looks the handler up in a table rather than
 * storing it here — the extra 8 bytes per op cost more than the load).
 */
struct DecodedInstr
{
    DecodedOp op = DecodedOp::kBoundary;
    /** First (or only) architectural op's registers. */
    std::uint8_t rd = 0, rs = 0, rt = 0;
    /** Second/later architectural ops' registers (fused macro-ops). */
    std::uint8_t rd2 = 0, rs2 = 0, rt2 = 0;
    /**
     * Architectural cycles this op charges when fully executed.
     * Informational (tests and introspection): the op bodies hard-code
     * their charges; predecode_test pins the two against each other.
     */
    std::uint8_t archCycles = 1;
    /** Branch-taken target as an absolute decoded index. */
    std::uint32_t target = 0;
    /** First-op immediate (pre-masked/narrowed where possible). */
    std::int64_t imm = 0;
    /** Second-op immediate of a fused op (tag/callback/shift). */
    std::int64_t imm2 = 0;
};
static_assert(sizeof(DecodedInstr) == 32);

/**
 * A kernel compiled to its decoded program.  Immutable after
 * construction, so instances are safe to share read-only across
 * threads and across per-core prefetcher instances.
 */
class DecodedKernel
{
  public:
    explicit DecodedKernel(const Kernel &k);

    /**
     * Execute the decoded program.  Semantics (exit reason, cycle
     * count, emit sequence, register effects, trap points, step-limit
     * truncation — including mid-fused-sequence) are bit-identical to
     * Interpreter::run on the source kernel.
     */
    static ExecResult run(const DecodedKernel &dk, const EventContext &ctx,
                          const Interpreter::EmitFn &emit,
                          unsigned max_steps = kMaxKernelSteps,
                          std::uint64_t *regs_out = nullptr);

    /**
     * Fast-sink form: emitted prefetches append to @p sink (may be
     * null to discard).  This is the PPF's per-event path — it avoids
     * a std::function construction and an indirect call per emit.
     */
    static ExecResult run(const DecodedKernel &dk, const EventContext &ctx,
                          std::vector<PrefetchEmit> *sink,
                          unsigned max_steps = kMaxKernelSteps,
                          std::uint64_t *regs_out = nullptr);

    /**
     * Refined per-arch-pc trap fact from the decode-time dataflow
     * analysis (src/isa/analysis/dataflow.hpp): true when the
     * instruction at @p archPc can never trap when it executes, for
     * ANY event.  The decode-time context assumes nothing (programs
     * are interned by code content and run under arbitrary events), so
     * the proofs hold universally.  This is the region oracle
     * superblock formation consumes (ROADMAP item 1): a straight-line
     * run of trap-free pcs can execute as one fused block.
     */
    bool provenTrapFree(std::size_t archPc) const
    {
        return archPc < trapFreePc_.size() && trapFreePc_[archPc] != 0;
    }
    /** The whole per-arch-pc trap-free bitmap (archLength() entries). */
    const std::vector<std::uint8_t> &trapFreeMap() const
    {
        return trapFreePc_;
    }

    /** Decoded ops, excluding the synthetic boundary slot. */
    std::size_t decodedLength() const { return prog_.size() - 1; }
    /** Architectural instructions in the source kernel. */
    std::size_t archLength() const { return src_.size(); }
    /** Number of fused macro-ops (pairs and quads) in the program. */
    unsigned fusedOps() const { return fusedPairs_; }
    /** The source code this program was decoded from. */
    const std::vector<Instr> &source() const { return src_; }
    /** Introspection for tests: decoded op at @p idx. */
    const DecodedInstr &at(std::size_t idx) const { return prog_[idx]; }

  private:
    /** Decoded program; the last slot is the kBoundary sink. */
    std::vector<DecodedInstr> prog_;
    /** Copy of the source code (content identity for DecodeCache). */
    std::vector<Instr> src_;
    /** Per-arch-pc refined cannot-trap bitmap (see provenTrapFree). */
    std::vector<std::uint8_t> trapFreePc_;
    /** Fused macro-ops emitted (pairs and quads). */
    unsigned fusedPairs_ = 0;
};

/**
 * Process-wide, thread-safe intern table of decoded kernels, keyed by
 * code content.  Two kernels with byte-identical code (names ignored)
 * share one DecodedKernel, so the N per-core PPF instances of a
 * multi-core run decode each kernel once, not N times.  Entries live
 * for the process (kernels are tiny — the paper budgets 4 KiB per
 * application); drop() releases the table, e.g. between test suites.
 */
class DecodeCache
{
  public:
    /** Decode @p k, or return the shared already-decoded program. */
    static std::shared_ptr<const DecodedKernel> decode(const Kernel &k);

    /** Distinct decoded programs currently interned. */
    static std::size_t internedKernels();
    /** Lookups served from the intern table / decodes performed. */
    static std::uint64_t hits();
    static std::uint64_t misses();

    /** Release the intern table (outstanding shared_ptrs stay valid). */
    static void drop();
};

} // namespace epf

#endif // EPF_ISA_PREDECODE_HPP
