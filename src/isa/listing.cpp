#include "isa/listing.hpp"

#include <istream>
#include <stdexcept>

#include "isa/disasm.hpp"

namespace epf
{

ListingParse
parseListing(std::istream &in, const std::string &fallbackName)
{
    ListingParse out;
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        std::size_t e = line.find_last_not_of(" \t\r");
        std::string t = line.substr(b, e - b + 1);
        if (t.back() == ':' && t.find(' ') == std::string::npos) {
            out.kernels.push_back({t.substr(0, t.size() - 1), {}});
            continue;
        }
        // "N: instr" — the index prefix is optional.
        const std::size_t colon = t.find(':');
        if (colon != std::string::npos &&
            t.find_first_not_of("0123456789", 0) == colon)
            t = t.substr(colon + 1);
        if (out.kernels.empty())
            out.kernels.push_back({fallbackName, {}});
        try {
            out.kernels.back().code.push_back(parseInstr(t));
        } catch (const std::invalid_argument &ex) {
            out.error =
                "line " + std::to_string(lineno) + ": " + ex.what();
            return out;
        }
    }
    // getline stops on eof (fine) or on a read failure (badbit).  The
    // latter used to fall through as success, silently linting only
    // the prefix that happened to arrive before the failure.
    if (in.bad())
        out.error = "I/O error after line " + std::to_string(lineno);
    return out;
}

} // namespace epf
