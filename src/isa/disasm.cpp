#include "isa/disasm.hpp"

#include <sstream>

namespace epf
{

namespace
{

std::string
reg(unsigned r)
{
    return "r" + std::to_string(r);
}

} // namespace

std::string
disassemble(const Instr &in)
{
    std::ostringstream os;
    switch (in.op) {
      case Opcode::kHalt: os << "halt"; break;
      case Opcode::kNop: os << "nop"; break;
      case Opcode::kLi: os << "li " << reg(in.rd) << ", " << in.imm; break;
      case Opcode::kMov: os << "mov " << reg(in.rd) << ", " << reg(in.rs); break;
      case Opcode::kAdd: os << "add " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kSub: os << "sub " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kMul: os << "mul " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kDiv: os << "div " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kAnd: os << "and " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kOr: os << "or " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kXor: os << "xor " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kShl: os << "shl " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kShr: os << "shr " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kAddi: os << "addi " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kMuli: os << "muli " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kDivi: os << "divi " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kAndi: os << "andi " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kShli: os << "shli " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kShri: os << "shri " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kVaddr: os << "vaddr " << reg(in.rd); break;
      case Opcode::kLineBase: os << "linebase " << reg(in.rd); break;
      case Opcode::kLdLine: os << "ldline " << reg(in.rd) << ", [" << reg(in.rs) << " + " << in.imm << "]"; break;
      case Opcode::kLdLine32: os << "ldline32 " << reg(in.rd) << ", [" << reg(in.rs) << " + " << in.imm << "]"; break;
      case Opcode::kGread: os << "gread " << reg(in.rd) << ", g" << in.imm; break;
      case Opcode::kLookahead: os << "lookahead " << reg(in.rd) << ", f" << in.imm; break;
      case Opcode::kPrefetch: os << "prefetch " << reg(in.rs); break;
      case Opcode::kPrefetchTag: os << "prefetch.tag " << reg(in.rs) << ", tag=" << in.imm; break;
      case Opcode::kPrefetchCb: os << "prefetch.cb " << reg(in.rs) << ", kernel=" << in.imm; break;
      case Opcode::kBeq: os << "beq " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kBne: os << "bne " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kBlt: os << "blt " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kBge: os << "bge " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kJmp: os << "jmp " << in.imm; break;
    }
    return os.str();
}

std::string
disassemble(const Kernel &k)
{
    std::ostringstream os;
    os << k.name << ":\n";
    for (std::size_t i = 0; i < k.code.size(); ++i)
        os << "  " << i << ": " << disassemble(k.code[i]) << "\n";
    return os.str();
}

} // namespace epf
