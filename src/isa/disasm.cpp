#include "isa/disasm.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace epf
{

namespace
{

std::string
reg(unsigned r)
{
    return "r" + std::to_string(r);
}

/** Operand shapes of the printed forms. */
enum class Fmt
{
    kNone,     // halt
    kRd,       // vaddr r1
    kRdImm,    // li r1, -5
    kRdRs,     // mov r1, r2
    kRdRsRt,   // add r1, r2, r3
    kRdRsImm,  // addi r1, r2, 7
    kLine,     // ldline r1, [r2 + -3]
    kRdGlobal, // gread r1, g5
    kRdFilter, // lookahead r1, f2
    kRs,       // prefetch r3
    kRsTag,    // prefetch.tag r3, tag=7
    kRsKernel, // prefetch.cb r3, kernel=2
    kBranch,   // beq r1, r2, -4
    kImm,      // jmp 3
};

struct Mnemonic
{
    const char *name;
    Opcode op;
    Fmt fmt;
};

constexpr Mnemonic kMnemonics[] = {
    {"halt", Opcode::kHalt, Fmt::kNone},
    {"nop", Opcode::kNop, Fmt::kNone},
    {"li", Opcode::kLi, Fmt::kRdImm},
    {"mov", Opcode::kMov, Fmt::kRdRs},
    {"add", Opcode::kAdd, Fmt::kRdRsRt},
    {"sub", Opcode::kSub, Fmt::kRdRsRt},
    {"mul", Opcode::kMul, Fmt::kRdRsRt},
    {"div", Opcode::kDiv, Fmt::kRdRsRt},
    {"and", Opcode::kAnd, Fmt::kRdRsRt},
    {"or", Opcode::kOr, Fmt::kRdRsRt},
    {"xor", Opcode::kXor, Fmt::kRdRsRt},
    {"shl", Opcode::kShl, Fmt::kRdRsRt},
    {"shr", Opcode::kShr, Fmt::kRdRsRt},
    {"addi", Opcode::kAddi, Fmt::kRdRsImm},
    {"muli", Opcode::kMuli, Fmt::kRdRsImm},
    {"divi", Opcode::kDivi, Fmt::kRdRsImm},
    {"andi", Opcode::kAndi, Fmt::kRdRsImm},
    {"shli", Opcode::kShli, Fmt::kRdRsImm},
    {"shri", Opcode::kShri, Fmt::kRdRsImm},
    {"vaddr", Opcode::kVaddr, Fmt::kRd},
    {"linebase", Opcode::kLineBase, Fmt::kRd},
    {"ldline", Opcode::kLdLine, Fmt::kLine},
    {"ldline32", Opcode::kLdLine32, Fmt::kLine},
    {"gread", Opcode::kGread, Fmt::kRdGlobal},
    {"lookahead", Opcode::kLookahead, Fmt::kRdFilter},
    {"prefetch", Opcode::kPrefetch, Fmt::kRs},
    {"prefetch.tag", Opcode::kPrefetchTag, Fmt::kRsTag},
    {"prefetch.cb", Opcode::kPrefetchCb, Fmt::kRsKernel},
    {"beq", Opcode::kBeq, Fmt::kBranch},
    {"bne", Opcode::kBne, Fmt::kBranch},
    {"blt", Opcode::kBlt, Fmt::kBranch},
    {"bge", Opcode::kBge, Fmt::kBranch},
    {"jmp", Opcode::kJmp, Fmt::kImm},
};

[[noreturn]] void
parseFail(const std::string &text, const std::string &why)
{
    throw std::invalid_argument("parseInstr: " + why + " in \"" + text +
                                "\"");
}

/** Split on spaces, commas and the [ + ] of the ldline address form. */
std::vector<std::string>
tokenize(const std::string &text)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : text) {
        if (c == ' ' || c == ',' || c == '[' || c == ']' || c == '\t') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    // The ldline form prints "[rs + imm]"; a lone "+" separates them.
    for (auto it = toks.begin(); it != toks.end();)
        it = *it == "+" ? toks.erase(it) : it + 1;
    return toks;
}

std::uint8_t
parseReg(const std::string &text, const std::string &tok)
{
    if (tok.size() < 2 || tok[0] != 'r')
        parseFail(text, "expected register, got \"" + tok + "\"");
    char *end = nullptr;
    const long v = std::strtol(tok.c_str() + 1, &end, 10);
    if (*end != '\0' || v < 0 || v >= static_cast<long>(kPpuRegs))
        parseFail(text, "bad register \"" + tok + "\"");
    return static_cast<std::uint8_t>(v);
}

std::int64_t
parseImm(const std::string &text, const std::string &tok)
{
    char *end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0')
        parseFail(text, "bad immediate \"" + tok + "\"");
    return v;
}

/** Parse "prefix=imm" (e.g. "tag=7"). */
std::int64_t
parseKeyed(const std::string &text, const std::string &tok,
           const std::string &prefix)
{
    if (tok.rfind(prefix, 0) != 0)
        parseFail(text, "expected \"" + prefix + "<imm>\"");
    return parseImm(text, tok.substr(prefix.size()));
}

} // namespace

std::string
disassemble(const Instr &in)
{
    std::ostringstream os;
    switch (in.op) {
      case Opcode::kHalt: os << "halt"; break;
      case Opcode::kNop: os << "nop"; break;
      case Opcode::kLi: os << "li " << reg(in.rd) << ", " << in.imm; break;
      case Opcode::kMov: os << "mov " << reg(in.rd) << ", " << reg(in.rs); break;
      case Opcode::kAdd: os << "add " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kSub: os << "sub " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kMul: os << "mul " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kDiv: os << "div " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kAnd: os << "and " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kOr: os << "or " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kXor: os << "xor " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kShl: os << "shl " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kShr: os << "shr " << reg(in.rd) << ", " << reg(in.rs) << ", " << reg(in.rt); break;
      case Opcode::kAddi: os << "addi " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kMuli: os << "muli " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kDivi: os << "divi " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kAndi: os << "andi " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kShli: os << "shli " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kShri: os << "shri " << reg(in.rd) << ", " << reg(in.rs) << ", " << in.imm; break;
      case Opcode::kVaddr: os << "vaddr " << reg(in.rd); break;
      case Opcode::kLineBase: os << "linebase " << reg(in.rd); break;
      case Opcode::kLdLine: os << "ldline " << reg(in.rd) << ", [" << reg(in.rs) << " + " << in.imm << "]"; break;
      case Opcode::kLdLine32: os << "ldline32 " << reg(in.rd) << ", [" << reg(in.rs) << " + " << in.imm << "]"; break;
      case Opcode::kGread: os << "gread " << reg(in.rd) << ", g" << in.imm; break;
      case Opcode::kLookahead: os << "lookahead " << reg(in.rd) << ", f" << in.imm; break;
      case Opcode::kPrefetch: os << "prefetch " << reg(in.rs); break;
      case Opcode::kPrefetchTag: os << "prefetch.tag " << reg(in.rs) << ", tag=" << in.imm; break;
      case Opcode::kPrefetchCb: os << "prefetch.cb " << reg(in.rs) << ", kernel=" << in.imm; break;
      case Opcode::kBeq: os << "beq " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kBne: os << "bne " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kBlt: os << "blt " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kBge: os << "bge " << reg(in.rs) << ", " << reg(in.rt) << ", " << in.imm; break;
      case Opcode::kJmp: os << "jmp " << in.imm; break;
    }
    return os.str();
}

Instr
parseInstr(const std::string &text)
{
    const std::vector<std::string> toks = tokenize(text);
    if (toks.empty())
        parseFail(text, "empty input");

    const Mnemonic *m = nullptr;
    for (const Mnemonic &cand : kMnemonics) {
        if (toks[0] == cand.name) {
            m = &cand;
            break;
        }
    }
    if (m == nullptr)
        parseFail(text, "unknown mnemonic \"" + toks[0] + "\"");

    auto want = [&](std::size_t n) {
        if (toks.size() != n + 1)
            parseFail(text, "operand count");
    };

    Instr in;
    in.op = m->op;
    switch (m->fmt) {
      case Fmt::kNone:
        want(0);
        break;
      case Fmt::kRd:
        want(1);
        in.rd = parseReg(text, toks[1]);
        break;
      case Fmt::kRdImm:
        want(2);
        in.rd = parseReg(text, toks[1]);
        in.imm = parseImm(text, toks[2]);
        break;
      case Fmt::kRdRs:
        want(2);
        in.rd = parseReg(text, toks[1]);
        in.rs = parseReg(text, toks[2]);
        break;
      case Fmt::kRdRsRt:
        want(3);
        in.rd = parseReg(text, toks[1]);
        in.rs = parseReg(text, toks[2]);
        in.rt = parseReg(text, toks[3]);
        break;
      case Fmt::kRdRsImm:
      case Fmt::kLine:
        want(3);
        in.rd = parseReg(text, toks[1]);
        in.rs = parseReg(text, toks[2]);
        in.imm = parseImm(text, toks[3]);
        break;
      case Fmt::kRdGlobal:
        want(2);
        in.rd = parseReg(text, toks[1]);
        if (toks[2].empty() || toks[2][0] != 'g')
            parseFail(text, "expected global \"g<idx>\"");
        in.imm = parseImm(text, toks[2].substr(1));
        break;
      case Fmt::kRdFilter:
        want(2);
        in.rd = parseReg(text, toks[1]);
        if (toks[2].empty() || toks[2][0] != 'f')
            parseFail(text, "expected filter \"f<idx>\"");
        in.imm = parseImm(text, toks[2].substr(1));
        break;
      case Fmt::kRs:
        want(1);
        in.rs = parseReg(text, toks[1]);
        break;
      case Fmt::kRsTag:
        want(2);
        in.rs = parseReg(text, toks[1]);
        in.imm = parseKeyed(text, toks[2], "tag=");
        break;
      case Fmt::kRsKernel:
        want(2);
        in.rs = parseReg(text, toks[1]);
        in.imm = parseKeyed(text, toks[2], "kernel=");
        break;
      case Fmt::kBranch:
        want(3);
        in.rs = parseReg(text, toks[1]);
        in.rt = parseReg(text, toks[2]);
        in.imm = parseImm(text, toks[3]);
        break;
      case Fmt::kImm:
        want(1);
        in.imm = parseImm(text, toks[1]);
        break;
    }
    return in;
}

std::string
disassemble(const Kernel &k)
{
    std::ostringstream os;
    os << k.name << ":\n";
    for (std::size_t i = 0; i < k.code.size(); ++i)
        os << "  " << i << ": " << disassemble(k.code[i]) << "\n";
    return os.str();
}

} // namespace epf
