/**
 * @file
 * Fluent assembler for PPU kernels.
 *
 * Handwritten kernels (Section 5 of the paper) and the compiler's code
 * generator (Section 6.3) both emit code through this builder.  Branch
 * targets use labels resolved at build() time.
 */

#ifndef EPF_ISA_BUILDER_HPP
#define EPF_ISA_BUILDER_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace epf
{

/** Builds one Kernel. */
class KernelBuilder
{
  public:
    /** A branch target; create with newLabel(), place with bind(). */
    struct Label
    {
        int id = -1;
    };

    explicit KernelBuilder(std::string name) : name_(std::move(name)) {}

    Label
    newLabel()
    {
        labels_.push_back(kUnbound);
        return Label{static_cast<int>(labels_.size() - 1)};
    }

    /**
     * Place @p l at the next emitted instruction.  Throws
     * std::invalid_argument on a label this builder didn't create or
     * one already bound — a double bind would silently retarget every
     * branch through the label.
     */
    KernelBuilder &
    bind(Label l)
    {
        if (l.id < 0 || static_cast<std::size_t>(l.id) >= labels_.size())
            throw std::invalid_argument(name_ +
                                        ": bind() of a foreign label");
        if (labels_[static_cast<unsigned>(l.id)] != kUnbound)
            throw std::invalid_argument(
                name_ + ": label " + std::to_string(l.id) +
                " bound twice (second bind at instruction " +
                std::to_string(code_.size()) + ")");
        labels_[static_cast<unsigned>(l.id)] = static_cast<int>(code_.size());
        return *this;
    }

    // Constants and moves
    KernelBuilder &li(unsigned rd, std::int64_t imm) { return emit({Opcode::kLi, r(rd), 0, 0, imm}); }
    KernelBuilder &mov(unsigned rd, unsigned rs) { return emit({Opcode::kMov, r(rd), r(rs), 0, 0}); }

    // ALU
    KernelBuilder &add(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kAdd, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &sub(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kSub, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &mul(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kMul, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &div(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kDiv, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &andr(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kAnd, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &orr(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kOr, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &xorr(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kXor, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &shl(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kShl, r(rd), r(rs), r(rt), 0}); }
    KernelBuilder &shr(unsigned rd, unsigned rs, unsigned rt) { return emit({Opcode::kShr, r(rd), r(rs), r(rt), 0}); }

    KernelBuilder &addi(unsigned rd, unsigned rs, std::int64_t imm) { return emit({Opcode::kAddi, r(rd), r(rs), 0, imm}); }
    KernelBuilder &muli(unsigned rd, unsigned rs, std::int64_t imm) { return emit({Opcode::kMuli, r(rd), r(rs), 0, imm}); }
    KernelBuilder &divi(unsigned rd, unsigned rs, std::int64_t imm) { return emit({Opcode::kDivi, r(rd), r(rs), 0, imm}); }
    KernelBuilder &andi(unsigned rd, unsigned rs, std::int64_t imm) { return emit({Opcode::kAndi, r(rd), r(rs), 0, imm}); }
    KernelBuilder &shli(unsigned rd, unsigned rs, std::int64_t imm) { return emit({Opcode::kShli, r(rd), r(rs), 0, imm}); }
    KernelBuilder &shri(unsigned rd, unsigned rs, std::int64_t imm) { return emit({Opcode::kShri, r(rd), r(rs), 0, imm}); }

    // Observation / state access
    KernelBuilder &vaddr(unsigned rd) { return emit({Opcode::kVaddr, r(rd), 0, 0, 0}); }
    KernelBuilder &lineBase(unsigned rd) { return emit({Opcode::kLineBase, r(rd), 0, 0, 0}); }
    KernelBuilder &ldLine(unsigned rd, unsigned rs, std::int64_t off = 0) { return emit({Opcode::kLdLine, r(rd), r(rs), 0, off}); }
    KernelBuilder &ldLine32(unsigned rd, unsigned rs, std::int64_t off = 0) { return emit({Opcode::kLdLine32, r(rd), r(rs), 0, off}); }
    KernelBuilder &gread(unsigned rd, unsigned global_idx) { return emit({Opcode::kGread, r(rd), 0, 0, static_cast<std::int64_t>(global_idx)}); }
    KernelBuilder &lookahead(unsigned rd, unsigned filter_idx) { return emit({Opcode::kLookahead, r(rd), 0, 0, static_cast<std::int64_t>(filter_idx)}); }

    // Prefetch emission
    KernelBuilder &prefetch(unsigned rs) { return emit({Opcode::kPrefetch, 0, r(rs), 0, 0}); }
    KernelBuilder &prefetchTag(unsigned rs, std::int64_t tag) { return emit({Opcode::kPrefetchTag, 0, r(rs), 0, tag}); }
    KernelBuilder &prefetchCb(unsigned rs, KernelId kernel) { return emit({Opcode::kPrefetchCb, 0, r(rs), 0, kernel}); }

    // Control flow
    KernelBuilder &beq(unsigned rs, unsigned rt, Label l) { return branch(Opcode::kBeq, rs, rt, l); }
    KernelBuilder &bne(unsigned rs, unsigned rt, Label l) { return branch(Opcode::kBne, rs, rt, l); }
    KernelBuilder &blt(unsigned rs, unsigned rt, Label l) { return branch(Opcode::kBlt, rs, rt, l); }
    KernelBuilder &bge(unsigned rs, unsigned rt, Label l) { return branch(Opcode::kBge, rs, rt, l); }
    KernelBuilder &jmp(Label l) { return branch(Opcode::kJmp, 0, 0, l); }

    KernelBuilder &nop() { return emit({Opcode::kNop, 0, 0, 0, 0}); }
    KernelBuilder &halt() { return emit({Opcode::kHalt, 0, 0, 0, 0}); }

    /**
     * Resolve labels and produce the kernel.  Throws
     * std::invalid_argument if any branched-to label was never bound
     * (the branch would otherwise keep a zero offset and silently fall
     * through).
     */
    Kernel
    build()
    {
        for (auto &fix : fixups_) {
            int target = labels_[static_cast<unsigned>(fix.label)];
            if (target == kUnbound)
                throw std::invalid_argument(
                    name_ + ": branch at instruction " +
                    std::to_string(fix.at) + " targets unbound label " +
                    std::to_string(fix.label));
            // Offset relative to the instruction after the branch.
            code_[fix.at].imm = target - static_cast<int>(fix.at) - 1;
        }
        Kernel k;
        k.name = name_;
        k.code = code_;
        return k;
    }

  private:
    static constexpr int kUnbound = -1;

    struct Fixup
    {
        std::size_t at;
        int label;
    };

    std::uint8_t
    r(unsigned reg) const
    {
        if (reg >= kPpuRegs)
            throw std::invalid_argument(
                name_ + ": register r" + std::to_string(reg) +
                " out of range (the PPU has " + std::to_string(kPpuRegs) +
                " registers)");
        return static_cast<std::uint8_t>(reg);
    }

    KernelBuilder &
    emit(Instr i)
    {
        code_.push_back(i);
        return *this;
    }

    KernelBuilder &
    branch(Opcode op, unsigned rs, unsigned rt, Label l)
    {
        if (l.id < 0 || static_cast<std::size_t>(l.id) >= labels_.size())
            throw std::invalid_argument(name_ +
                                        ": branch to a foreign label");
        fixups_.push_back({code_.size(), l.id});
        return emit({op, 0, r(rs), r(rt), 0});
    }

    std::string name_;
    std::vector<Instr> code_;
    std::vector<int> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace epf

#endif // EPF_ISA_BUILDER_HPP
