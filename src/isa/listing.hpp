/**
 * @file
 * Disassembly-listing parser (the disassemble(Kernel) text format).
 *
 * A listing holds one or more kernels: a "name:" header line starts a
 * kernel, each following "N: instr" line (the index prefix optional)
 * appends one instruction, '#' starts a comment, blank lines are
 * ignored.  A listing with no header is a single unnamed kernel.
 *
 * Extracted from tools/ppulint.cpp so tests can pin the error paths —
 * in particular that a stream failing mid-read (badbit) is reported as
 * an error instead of silently yielding the parsed prefix.
 */

#ifndef EPF_ISA_LISTING_HPP
#define EPF_ISA_LISTING_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace epf
{

/** Outcome of parsing one listing. */
struct ListingParse
{
    std::vector<Kernel> kernels;
    /** Empty on success; otherwise "line N: what" (or an I/O error). */
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Parse the listing text on @p in.  @p fallbackName names the single
 * implicit kernel of a headerless listing (callers pass the file
 * path).  On any failure — unparsable instruction line or a stream
 * that goes bad mid-read — the result's error is set and the partial
 * kernels must not be used.
 */
ListingParse parseListing(std::istream &in, const std::string &fallbackName);

} // namespace epf

#endif // EPF_ISA_LISTING_HPP
