/**
 * @file
 * PPU kernel disassembler (debugging, tests and the compiler demo).
 */

#ifndef EPF_ISA_DISASM_HPP
#define EPF_ISA_DISASM_HPP

#include <string>

#include "isa/isa.hpp"

namespace epf
{

/** Render one instruction as text. */
std::string disassemble(const Instr &in);

/** Render a whole kernel, one instruction per line with indices. */
std::string disassemble(const Kernel &k);

/**
 * Parse one line of disassembly back into an instruction — the inverse
 * of disassemble(const Instr&), so any instruction round-trips through
 * its text form losslessly (the property the ISA fuzzer enforces).
 * Throws std::invalid_argument on malformed input.
 */
Instr parseInstr(const std::string &text);

} // namespace epf

#endif // EPF_ISA_DISASM_HPP
