/**
 * @file
 * PPU kernel disassembler (debugging, tests and the compiler demo).
 */

#ifndef EPF_ISA_DISASM_HPP
#define EPF_ISA_DISASM_HPP

#include <string>

#include "isa/isa.hpp"

namespace epf
{

/** Render one instruction as text. */
std::string disassemble(const Instr &in);

/** Render a whole kernel, one instruction per line with indices. */
std::string disassemble(const Kernel &k);

} // namespace epf

#endif // EPF_ISA_DISASM_HPP
