/**
 * @file
 * PPU kernel interpreter.
 *
 * Executes one event to completion at one instruction per cycle.  Any
 * trap (division by zero or signed-overflowing INT64_MIN/-1 division,
 * runaway execution, reading line data from a load observation that
 * carries none) terminates the event, exactly as the paper specifies
 * for PPU exceptions: prefetching is best-effort, so the event is
 * simply abandoned.
 *
 * This switch-decoded interpreter is the reference semantics of the
 * ISA; the pre-decoded interpreter in predecode.hpp is the fast path
 * the simulator actually runs, and the differential fuzzer in
 * tests/fuzz_isa_test.cpp holds the two bit-identical.
 */

#ifndef EPF_ISA_INTERPRETER_HPP
#define EPF_ISA_INTERPRETER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "isa/isa.hpp"
#include "mem/guest_memory.hpp"
#include "sim/types.hpp"

namespace epf
{

/** Inputs available to one event execution. */
struct EventContext
{
    /** Virtual address that triggered the event. */
    Addr vaddr = 0;
    /** True if the observation carries the fetched cache line. */
    bool hasLine = false;
    /** The observed line (prefetch completions only). */
    LineData line{};
    /** Shared prefetcher global registers. */
    const std::uint64_t *globalRegs = nullptr;
    /** Per-filter-entry EWMA lookahead values (elements). */
    const std::uint64_t *lookahead = nullptr;
    unsigned lookaheadEntries = 0;
};

/** A prefetch emitted by a kernel. */
struct PrefetchEmit
{
    Addr vaddr = 0;
    std::int32_t tag = -1;
    KernelId cbKernel = kNoKernel;
};

/** Why execution stopped. */
enum class ExitReason
{
    kHalted,
    kTrapped,
    kStepLimit,
};

/** Outcome of executing one kernel. */
struct ExecResult
{
    ExitReason exit = ExitReason::kHalted;
    /** Instructions executed == PPU cycles consumed (1 IPC, in-order). */
    std::uint32_t cycles = 0;
    /** Prefetches emitted. */
    std::uint32_t emitted = 0;
};

/** Stateless executor of PPU kernels. */
class Interpreter
{
  public:
    using EmitFn = std::function<void(const PrefetchEmit &)>;

    /**
     * Run @p kernel against @p ctx.
     * @param emit  invoked for every prefetch the kernel issues
     * @param max_steps watchdog bound
     * @param regs_out  when non-null, receives the kPpuRegs final
     *                  register values at exit (any exit reason) —
     *                  used by the differential tests to compare
     *                  register-visible effects across interpreters
     */
    static ExecResult run(const Kernel &kernel, const EventContext &ctx,
                          const EmitFn &emit,
                          unsigned max_steps = kMaxKernelSteps,
                          std::uint64_t *regs_out = nullptr);

    /**
     * Fast-sink form: emitted prefetches append to @p sink (null
     * discards them).  Same semantics as the callback form without the
     * per-emit std::function indirection.
     */
    static ExecResult run(const Kernel &kernel, const EventContext &ctx,
                          std::vector<PrefetchEmit> *sink,
                          unsigned max_steps = kMaxKernelSteps,
                          std::uint64_t *regs_out = nullptr);

    /**
     * Per-step observer: invoked with the pc about to execute and the
     * kPpuRegs register values at that point (i.e. the state *before*
     * the instruction runs — what a dataflow analysis calls in[pc]).
     */
    using StepFn =
        std::function<void(std::size_t pc, const std::uint64_t *regs)>;

    /**
     * Traced form of run(): identical semantics, plus @p step fires
     * before every executed instruction.  Test-only instrumentation —
     * the dataflow soundness oracle in tests/fuzz_isa_test.cpp checks
     * every observed register value against the statically computed
     * abstract state at that pc.
     */
    static ExecResult runTraced(const Kernel &kernel,
                                const EventContext &ctx,
                                std::vector<PrefetchEmit> *sink,
                                const StepFn &step,
                                unsigned max_steps = kMaxKernelSteps,
                                std::uint64_t *regs_out = nullptr);
};

} // namespace epf

#endif // EPF_ISA_INTERPRETER_HPP
