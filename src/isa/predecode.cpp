#include "isa/predecode.hpp"

#include "isa/analysis/dataflow.hpp"
#include "isa/analysis/verifier.hpp"

#include <cstring>
#include <limits>
#include <mutex>
#include <type_traits>
#include <unordered_map>

namespace epf
{
namespace
{

using detail::ExecState;

/**
 * Handler return values at or above kCtrlBase are control codes, not
 * decoded indices.  Decoded programs are bounded by the kernel-store
 * budget (4 KiB / 4 B per instruction), far below this range.
 */
constexpr std::uint32_t kCtrlBase = 0xFFFFFF00u;
constexpr std::uint32_t kCtrlHalt = kCtrlBase + 0;
constexpr std::uint32_t kCtrlTrap = kCtrlBase + 1;
constexpr std::uint32_t kCtrlStep = kCtrlBase + 2;

/**
 * Every decoded op, in DecodedOp order, tagged N (cannot exit — the
 * dispatcher skips the control-code check) or X (can halt, trap or hit
 * the step limit mid-sequence).  The op bodies, the handler table and
 * the computed-goto label table are all generated from this one list,
 * so the three can never disagree about dispatch order.
 */
#define EPF_DECODED_OPS(X, N)                                               \
    X(Halt) N(Nop) N(Li) N(Mov)                                             \
    N(Add) N(Sub) N(Mul) X(Div) N(And) N(Or) N(Xor) N(Shl) N(Shr)           \
    N(Addi) N(Muli) X(Divi) N(Andi) N(Shli) N(Shri)                         \
    N(Vaddr) N(LineBase) X(LdLine) X(LdLine32) X(Gread) X(Lookahead)        \
    N(Prefetch) N(PrefetchTag) N(PrefetchCb)                                \
    N(Beq) N(Bne) N(Blt) N(Bge) N(Jmp)                                      \
    X(Trap) X(Boundary)                                                     \
    X(LiPrefetch) X(LiPrefetchTag) X(LiPrefetchCb)                          \
    X(AddPrefetch) X(AddPrefetchTag) X(AddPrefetchCb)                       \
    X(AddiLdLine) X(AndiShli) X(AndShli)                                    \
    X(AddiBeq) X(AddiBne) X(AddiBlt) X(AddiBge)                             \
    X(AndiBeq) X(AndiBne) X(SubBeq) X(SubBne)                               \
    X(HashiPrefetch) X(HashiPrefetchTag) X(HashiPrefetchCb)                 \
    X(HashrPrefetch) X(HashrPrefetchTag) X(HashrPrefetchCb)

#define EPF_COUNT_OP(Name) +1
static_assert(static_cast<unsigned>(DecodedOp::kOpCount_) ==
                  0 EPF_DECODED_OPS(EPF_COUNT_OP, EPF_COUNT_OP),
              "EPF_DECODED_OPS must list every DecodedOp exactly once");
#undef EPF_COUNT_OP

#if defined(__GNUC__) || defined(__clang__)
#define EPF_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define EPF_ALWAYS_INLINE inline
#endif

using detail::Hot;
using detail::kStageCap;

/**
 * Rarely-taken flush of the emit staging buffer into the real sink
 * (deliberately out of line; it runs when a kernel emits more than
 * kStageCap prefetches, and once at exit).
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void
flushStage(ExecState &st, std::uint32_t emitted)
{
    const std::uint32_t n = emitted - st.flushed;
    if (st.emitVec != nullptr) {
        st.emitVec->insert(st.emitVec->end(), st.stage, st.stage + n);
    } else if (*st.emitFn) {
        for (std::uint32_t i = 0; i < n; ++i)
            (*st.emitFn)(st.stage[i]);
    }
    st.flushed = emitted;
}

/**
 * Always inlined, and deliberately chain-free: the emit lands in the
 * staging buffer at an address computed from the register-resident
 * counter, so back-to-back emits pipeline.  An out-of-line call here
 * would spill the dispatcher's live registers around every prefetch
 * the kernels issue — measurably the hottest few instructions in the
 * whole simulator.
 */
EPF_ALWAYS_INLINE void
emitOne(ExecState &st, Hot &hot, std::uint64_t vaddr, std::int32_t tag,
        KernelId cb)
{
    PrefetchEmit &e = st.stage[hot.emitted & (kStageCap - 1)];
    e.vaddr = vaddr;
    e.tag = tag;
    e.cbKernel = cb;
    ++hot.emitted;
    if ((hot.emitted & (kStageCap - 1)) == 0)
        flushStage(st, hot.emitted);
}

// ---------------------------------------------------------------------
// Op bodies.  One body per decoded op, shared by the computed-goto
// dispatcher (inlined at each label) and the function-pointer handlers
// (wrapped below), so the two dispatch forms share one semantics.
//
// Contract: the dispatcher has already verified cycles < maxSteps and
// that ip names a real slot.  A body charges its architectural cycles,
// applies its effects, and returns the next decoded index or a control
// code.  Fused bodies re-check the step limit between architectural
// halves — exactly where the reference interpreter's fetch loop would
// — so truncation mid-sequence leaves the same registers, cycle count
// and emit sequence behind.  Chained values forward through host
// locals (the fusion conditions in tryFuse guarantee the consumer
// reads the producer's rd), while every architectural register write
// still lands in regs[].
// ---------------------------------------------------------------------

#define EPF_BODY(Name)                                                      \
    EPF_ALWAYS_INLINE std::uint32_t x##Name(const DecodedInstr &d,          \
                                            std::uint32_t ip,               \
                                            ExecState &st, Hot &hot)

EPF_BODY(Halt)
{
    (void)d;
    (void)ip;
    (void)st;
    ++hot.cycles;
    return kCtrlHalt;
}

EPF_BODY(Nop)
{
    (void)d;
    (void)st;
    ++hot.cycles;
    return ip + 1;
}

EPF_BODY(Li)
{
    ++hot.cycles;
    st.regs[d.rd] = static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Mov)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs];
    return ip + 1;
}

EPF_BODY(Add)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] + st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Sub)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] - st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Mul)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] * st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Div)
{
    ++hot.cycles;
    const auto num = static_cast<std::int64_t>(st.regs[d.rs]);
    const auto den = static_cast<std::int64_t>(st.regs[d.rt]);
    if (den == 0 ||
        (den == -1 && num == std::numeric_limits<std::int64_t>::min()))
        return kCtrlTrap;
    st.regs[d.rd] = static_cast<std::uint64_t>(num / den);
    return ip + 1;
}

EPF_BODY(And)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] & st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Or)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] | st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Xor)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] ^ st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Shl)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] << (st.regs[d.rt] & 63);
    return ip + 1;
}

EPF_BODY(Shr)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] >> (st.regs[d.rt] & 63);
    return ip + 1;
}

EPF_BODY(Addi)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] + static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Muli)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] * static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Divi)
{
    // imm == 0 was hoisted to kTrap at decode; only the dynamic
    // INT64_MIN / -1 overflow remains.
    ++hot.cycles;
    const auto num = static_cast<std::int64_t>(st.regs[d.rs]);
    if (d.imm == -1 && num == std::numeric_limits<std::int64_t>::min())
        return kCtrlTrap;
    st.regs[d.rd] = static_cast<std::uint64_t>(num / d.imm);
    return ip + 1;
}

EPF_BODY(Andi)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] & static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Shli)
{
    ++hot.cycles; // imm pre-masked to [0, 63] at decode
    st.regs[d.rd] = st.regs[d.rs] << d.imm;
    return ip + 1;
}

EPF_BODY(Shri)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] >> d.imm;
    return ip + 1;
}

EPF_BODY(Vaddr)
{
    ++hot.cycles;
    st.regs[d.rd] = st.ctx->vaddr;
    return ip + 1;
}

EPF_BODY(LineBase)
{
    ++hot.cycles;
    st.regs[d.rd] = lineAlign(st.ctx->vaddr);
    return ip + 1;
}

inline std::uint64_t
lineWord64(const ExecState &st, std::uint64_t base, std::int64_t imm)
{
    const unsigned off = static_cast<unsigned>(
        (base + static_cast<std::uint64_t>(imm)) & (kLineBytes - 8));
    std::uint64_t v;
    std::memcpy(&v, st.ctx->line.data() + off, 8);
    return v;
}

EPF_BODY(LdLine)
{
    ++hot.cycles;
    if (!st.ctx->hasLine)
        return kCtrlTrap;
    st.regs[d.rd] = lineWord64(st, st.regs[d.rs], d.imm);
    return ip + 1;
}

EPF_BODY(LdLine32)
{
    ++hot.cycles;
    if (!st.ctx->hasLine)
        return kCtrlTrap;
    const unsigned off = static_cast<unsigned>(
        (st.regs[d.rs] + static_cast<std::uint64_t>(d.imm)) &
        (kLineBytes - 4));
    std::uint32_t v;
    std::memcpy(&v, st.ctx->line.data() + off, 4);
    st.regs[d.rd] = v;
    return ip + 1;
}

EPF_BODY(Gread)
{
    // Out-of-range indices were hoisted to kTrap at decode.
    ++hot.cycles;
    if (st.ctx->globalRegs == nullptr)
        return kCtrlTrap;
    st.regs[d.rd] = st.ctx->globalRegs[d.imm];
    return ip + 1;
}

EPF_BODY(Lookahead)
{
    // Negative indices were hoisted to kTrap at decode.
    ++hot.cycles;
    if (static_cast<std::uint64_t>(d.imm) >= st.ctx->lookaheadEntries ||
        st.ctx->lookahead == nullptr)
        return kCtrlTrap;
    st.regs[d.rd] = st.ctx->lookahead[d.imm];
    return ip + 1;
}

EPF_BODY(Prefetch)
{
    ++hot.cycles;
    emitOne(st, hot, st.regs[d.rs], -1, kNoKernel);
    return ip + 1;
}

EPF_BODY(PrefetchTag)
{
    ++hot.cycles;
    emitOne(st, hot, st.regs[d.rs], static_cast<std::int32_t>(d.imm), kNoKernel);
    return ip + 1;
}

EPF_BODY(PrefetchCb)
{
    ++hot.cycles;
    emitOne(st, hot, st.regs[d.rs], -1, static_cast<KernelId>(d.imm));
    return ip + 1;
}

EPF_BODY(Beq)
{
    ++hot.cycles;
    return st.regs[d.rs] == st.regs[d.rt] ? d.target : ip + 1;
}

EPF_BODY(Bne)
{
    ++hot.cycles;
    return st.regs[d.rs] != st.regs[d.rt] ? d.target : ip + 1;
}

EPF_BODY(Blt)
{
    ++hot.cycles;
    return static_cast<std::int64_t>(st.regs[d.rs]) <
                   static_cast<std::int64_t>(st.regs[d.rt])
               ? d.target
               : ip + 1;
}

EPF_BODY(Bge)
{
    ++hot.cycles;
    return static_cast<std::int64_t>(st.regs[d.rs]) >=
                   static_cast<std::int64_t>(st.regs[d.rt])
               ? d.target
               : ip + 1;
}

EPF_BODY(Jmp)
{
    (void)ip;
    (void)st;
    ++hot.cycles;
    return d.target;
}

EPF_BODY(Trap)
{
    // Statically-proven trap: the reference still fetches (and charges)
    // the instruction before trapping, so the cycle is charged here.
    (void)d;
    (void)ip;
    (void)st;
    ++hot.cycles;
    return kCtrlTrap;
}

EPF_BODY(Boundary)
{
    // Fall-off-the-end / wild branch target: the reference traps on
    // the pc bounds check *before* fetching, so no cycle is charged.
    (void)d;
    (void)ip;
    (void)st;
    (void)hot;
    return kCtrlTrap;
}

// ---- fused macro-ops -------------------------------------------------
//
// Every fused body applies its first architectural op unconditionally
// (the dispatcher guaranteed at least one cycle of budget), then takes
// one of two routes:
//
//  - fast path (the overwhelmingly common case): the whole macro-op
//    fits in the remaining step budget, so the cycle counter advances
//    once by the architectural cost and the remaining effects run
//    checkless.  Traps can only occur in the *final* architectural op
//    of every fused pattern, and the reference interpreter charges all
//    preceding fetches before such a trap — so bulk-charging first is
//    exact.
//  - slow path: the budget expires inside the macro-op.  Effects and
//    cycle charges are applied op by op, stopping precisely where the
//    reference interpreter's fetch loop would — the differential
//    fuzzer drives this path with tiny step budgets.

/** li/add feeding a prefetch: value forwards straight into the emit. */
#define EPF_FUSED_EMIT_PAIR(Name, VEXPR, TAG, CB)                           \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        const std::uint64_t v = (VEXPR);                                    \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 2;                                                \
            emitOne(st, hot, v, (TAG), (CB));                               \
            return ip + 1;                                                  \
        }                                                                   \
        ++hot.cycles; /* budget ends between the halves */                  \
        return kCtrlStep;                                                   \
    }

EPF_FUSED_EMIT_PAIR(LiPrefetch, static_cast<std::uint64_t>(d.imm), -1,
                    kNoKernel)
EPF_FUSED_EMIT_PAIR(LiPrefetchTag, static_cast<std::uint64_t>(d.imm),
                    static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_EMIT_PAIR(LiPrefetchCb, static_cast<std::uint64_t>(d.imm), -1,
                    static_cast<KernelId>(d.imm2))
EPF_FUSED_EMIT_PAIR(AddPrefetch, st.regs[d.rs] + st.regs[d.rt], -1,
                    kNoKernel)
EPF_FUSED_EMIT_PAIR(AddPrefetchTag, st.regs[d.rs] + st.regs[d.rt],
                    static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_EMIT_PAIR(AddPrefetchCb, st.regs[d.rs] + st.regs[d.rt], -1,
                    static_cast<KernelId>(d.imm2))
#undef EPF_FUSED_EMIT_PAIR

EPF_BODY(AddiLdLine)
{
    const std::uint64_t addr =
        st.regs[d.rs] + static_cast<std::uint64_t>(d.imm);
    st.regs[d.rd] = addr;
    if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {
        hot.cycles += 2;
        if (!st.ctx->hasLine)
            return kCtrlTrap; // both fetches charged, as in the reference
        st.regs[d.rd2] = lineWord64(st, addr, d.imm2);
        return ip + 1;
    }
    ++hot.cycles;
    return kCtrlStep;
}

/** and/andi feeding a shift: the mask idiom without the tail. */
#define EPF_FUSED_SHIFT_PAIR(Name, VEXPR)                                   \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        const std::uint64_t v = (VEXPR);                                    \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 2;                                                \
            st.regs[d.rd2] = v << d.imm2; /* imm2 pre-masked */             \
            return ip + 1;                                                  \
        }                                                                   \
        ++hot.cycles;                                                       \
        return kCtrlStep;                                                   \
    }

EPF_FUSED_SHIFT_PAIR(AndiShli,
                     st.regs[d.rs] & static_cast<std::uint64_t>(d.imm))
EPF_FUSED_SHIFT_PAIR(AndShli, st.regs[d.rs] & st.regs[d.rt])
#undef EPF_FUSED_SHIFT_PAIR

/** Compare+branch pairs: the ALU result feeds the branch condition. */
#define EPF_FUSED_BR_PAIR(Name, VEXPR, COND)                                \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        const std::uint64_t v = (VEXPR);                                    \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 2;                                                \
            return (COND) ? d.target : ip + 1;                              \
        }                                                                   \
        ++hot.cycles;                                                       \
        return kCtrlStep;                                                   \
    }

EPF_FUSED_BR_PAIR(AddiBeq, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  v == st.regs[d.rt2])
EPF_FUSED_BR_PAIR(AddiBne, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  v != st.regs[d.rt2])
EPF_FUSED_BR_PAIR(AddiBlt, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  static_cast<std::int64_t>(v) <
                      static_cast<std::int64_t>(st.regs[d.rt2]))
EPF_FUSED_BR_PAIR(AddiBge, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  static_cast<std::int64_t>(v) >=
                      static_cast<std::int64_t>(st.regs[d.rt2]))
EPF_FUSED_BR_PAIR(AndiBeq, st.regs[d.rs] & static_cast<std::uint64_t>(d.imm),
                  v == st.regs[d.rt2])
EPF_FUSED_BR_PAIR(AndiBne, st.regs[d.rs] & static_cast<std::uint64_t>(d.imm),
                  v != st.regs[d.rt2])
EPF_FUSED_BR_PAIR(SubBeq, st.regs[d.rs] - st.regs[d.rt],
                  v == st.regs[d.rt2])
EPF_FUSED_BR_PAIR(SubBne, st.regs[d.rs] - st.regs[d.rt],
                  v != st.regs[d.rt2])
#undef EPF_FUSED_BR_PAIR

/**
 * The whole hash idiom as one op: mask (immediate or register), shift,
 * rebase, prefetch.  Register layout (see tryFuseHash): the and writes
 * rd, the shli writes rd2 (shift amount in rt for the immediate-mask
 * form, in imm for the register-mask form), the add writes rs2 with
 * second operand rt2, and the prefetch emits the add's result.  The
 * chained value rides in @c v the whole way.
 */
#define EPF_FUSED_HASH(Name, MASKEXPR, SHIFTEXPR, TAG, CB)                  \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        std::uint64_t v = (MASKEXPR);                                       \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 4 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 4;                                                \
            v <<= (SHIFTEXPR);                                              \
            st.regs[d.rd2] = v;                                             \
            v += st.regs[d.rt2];                                            \
            st.regs[d.rs2] = v;                                             \
            emitOne(st, hot, v, (TAG), (CB));                               \
            return ip + 1;                                                  \
        }                                                                   \
        ++hot.cycles; /* budget expires inside: stop op by op */            \
        if (hot.cycles >= hot.maxSteps)                                     \
            return kCtrlStep;                                               \
        ++hot.cycles;                                                       \
        v <<= (SHIFTEXPR);                                                  \
        st.regs[d.rd2] = v;                                                 \
        if (hot.cycles >= hot.maxSteps)                                     \
            return kCtrlStep;                                               \
        ++hot.cycles;                                                       \
        v += st.regs[d.rt2];                                                \
        st.regs[d.rs2] = v;                                                 \
        return kCtrlStep; /* the prefetch would have been op 4 */           \
    }

EPF_FUSED_HASH(HashiPrefetch,
               st.regs[d.rs] & static_cast<std::uint64_t>(d.imm), d.rt, -1,
               kNoKernel)
EPF_FUSED_HASH(HashiPrefetchTag,
               st.regs[d.rs] & static_cast<std::uint64_t>(d.imm), d.rt,
               static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_HASH(HashiPrefetchCb,
               st.regs[d.rs] & static_cast<std::uint64_t>(d.imm), d.rt, -1,
               static_cast<KernelId>(d.imm2))
EPF_FUSED_HASH(HashrPrefetch, st.regs[d.rs] & st.regs[d.rt], d.imm, -1,
               kNoKernel)
EPF_FUSED_HASH(HashrPrefetchTag, st.regs[d.rs] & st.regs[d.rt], d.imm,
               static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_HASH(HashrPrefetchCb, st.regs[d.rs] & st.regs[d.rt], d.imm, -1,
               static_cast<KernelId>(d.imm2))
#undef EPF_FUSED_HASH

#undef EPF_BODY

// Function-pointer handlers: thin address-taken wrappers around the
// bodies (the bodies themselves stay freely inlinable at the computed-
// goto labels).
#define EPF_HANDLER(Name)                                                   \
    std::uint32_t op##Name(const DecodedInstr &d, std::uint32_t ip,         \
                           ExecState &st, Hot &hot)                         \
    {                                                                       \
        return x##Name(d, ip, st, hot);                                     \
    }
EPF_DECODED_OPS(EPF_HANDLER, EPF_HANDLER)
#undef EPF_HANDLER

#define EPF_HANDLER_ENTRY(Name) &op##Name,
constexpr detail::Handler kHandlers[] = {
    EPF_DECODED_OPS(EPF_HANDLER_ENTRY, EPF_HANDLER_ENTRY)};
#undef EPF_HANDLER_ENTRY

bool
isCondBranch(Opcode op)
{
    return op == Opcode::kBeq || op == Opcode::kBne || op == Opcode::kBlt ||
           op == Opcode::kBge;
}

DecodedOp
condBranchOp(Opcode op)
{
    switch (op) {
      case Opcode::kBeq: return DecodedOp::kBeq;
      case Opcode::kBne: return DecodedOp::kBne;
      case Opcode::kBlt: return DecodedOp::kBlt;
      default: return DecodedOp::kBge;
    }
}

/**
 * Decode one instruction standing alone, hoisting statically-provable
 * traps and pre-extracting operands.
 */
DecodedInstr
decodeSingle(const Instr &in)
{
    DecodedInstr d;
    d.rd = in.rd;
    d.rs = in.rs;
    d.rt = in.rt;
    d.imm = in.imm;
    d.archCycles = 1;
    switch (in.op) {
      case Opcode::kHalt: d.op = DecodedOp::kHalt; break;
      case Opcode::kNop: d.op = DecodedOp::kNop; break;
      case Opcode::kLi: d.op = DecodedOp::kLi; break;
      case Opcode::kMov: d.op = DecodedOp::kMov; break;
      case Opcode::kAdd: d.op = DecodedOp::kAdd; break;
      case Opcode::kSub: d.op = DecodedOp::kSub; break;
      case Opcode::kMul: d.op = DecodedOp::kMul; break;
      case Opcode::kDiv: d.op = DecodedOp::kDiv; break;
      case Opcode::kAnd: d.op = DecodedOp::kAnd; break;
      case Opcode::kOr: d.op = DecodedOp::kOr; break;
      case Opcode::kXor: d.op = DecodedOp::kXor; break;
      case Opcode::kShl: d.op = DecodedOp::kShl; break;
      case Opcode::kShr: d.op = DecodedOp::kShr; break;
      case Opcode::kAddi: d.op = DecodedOp::kAddi; break;
      case Opcode::kMuli: d.op = DecodedOp::kMuli; break;
      case Opcode::kDivi:
        // A zero immediate divisor always traps; the verifier owns the
        // proof (analysis::alwaysTraps), the decoder just consumes it.
        d.op = analysis::alwaysTraps(in) ? DecodedOp::kTrap
                                         : DecodedOp::kDivi;
        break;
      case Opcode::kAndi: d.op = DecodedOp::kAndi; break;
      case Opcode::kShli:
        d.op = DecodedOp::kShli;
        d.imm = in.imm & 63;
        break;
      case Opcode::kShri:
        d.op = DecodedOp::kShri;
        d.imm = in.imm & 63;
        break;
      case Opcode::kVaddr: d.op = DecodedOp::kVaddr; break;
      case Opcode::kLineBase: d.op = DecodedOp::kLineBase; break;
      case Opcode::kLdLine: d.op = DecodedOp::kLdLine; break;
      case Opcode::kLdLine32: d.op = DecodedOp::kLdLine32; break;
      case Opcode::kGread:
        // An out-of-range global index always traps: hoist the
        // verifier's fact.
        d.op = analysis::alwaysTraps(in) ? DecodedOp::kTrap
                                         : DecodedOp::kGread;
        break;
      case Opcode::kLookahead:
        // Only the negative-index trap is context-free (the installed
        // filter count is a run-time property), so this hoists exactly
        // what the verifier proves without a KernelContext.
        d.op = analysis::alwaysTraps(in) ? DecodedOp::kTrap
                                         : DecodedOp::kLookahead;
        break;
      case Opcode::kPrefetch: d.op = DecodedOp::kPrefetch; break;
      case Opcode::kPrefetchTag: d.op = DecodedOp::kPrefetchTag; break;
      case Opcode::kPrefetchCb: d.op = DecodedOp::kPrefetchCb; break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
        d.op = condBranchOp(in.op);
        break;
      case Opcode::kJmp: d.op = DecodedOp::kJmp; break;
      default:
        // Out-of-enum opcode byte (only constructible from raw Instr
        // structs): the reference switch falls through its cases and
        // executes it as a charged no-op — match that, don't trap.
        d.op = DecodedOp::kNop;
        break;
    }
    return d;
}

/** Does @p b chain on @p a (reads exactly a's destination register)? */
bool
chains(const Instr &a, std::uint8_t consumerReg)
{
    return consumerReg == a.rd;
}

/**
 * Try to fuse the pair (@p a, @p b) into one macro-op.  Every pattern
 * requires the second op to *chain* on the first (consume its rd), so
 * the body can forward the value through a host local — the reads and
 * writes still happen in architectural order, so semantics are exact.
 * Returns true and fills @p out (branch targets patched later).
 */
bool
tryFusePair(const Instr &a, const Instr &b, DecodedInstr &out)
{
    DecodedOp op = DecodedOp::kOpCount_;
    switch (a.op) {
      case Opcode::kLi:
        if (b.op == Opcode::kPrefetch && chains(a, b.rs))
            op = DecodedOp::kLiPrefetch;
        else if (b.op == Opcode::kPrefetchTag && chains(a, b.rs))
            op = DecodedOp::kLiPrefetchTag;
        else if (b.op == Opcode::kPrefetchCb && chains(a, b.rs))
            op = DecodedOp::kLiPrefetchCb;
        break;
      case Opcode::kAdd:
        if (b.op == Opcode::kPrefetch && chains(a, b.rs))
            op = DecodedOp::kAddPrefetch;
        else if (b.op == Opcode::kPrefetchTag && chains(a, b.rs))
            op = DecodedOp::kAddPrefetchTag;
        else if (b.op == Opcode::kPrefetchCb && chains(a, b.rs))
            op = DecodedOp::kAddPrefetchCb;
        break;
      case Opcode::kAddi:
        if (b.op == Opcode::kLdLine && chains(a, b.rs))
            op = DecodedOp::kAddiLdLine;
        else if (isCondBranch(b.op) && chains(a, b.rs)) {
            switch (b.op) {
              case Opcode::kBeq: op = DecodedOp::kAddiBeq; break;
              case Opcode::kBne: op = DecodedOp::kAddiBne; break;
              case Opcode::kBlt: op = DecodedOp::kAddiBlt; break;
              default: op = DecodedOp::kAddiBge; break;
            }
        }
        break;
      case Opcode::kAndi:
        if (b.op == Opcode::kShli && chains(a, b.rs))
            op = DecodedOp::kAndiShli;
        else if (b.op == Opcode::kBeq && chains(a, b.rs))
            op = DecodedOp::kAndiBeq;
        else if (b.op == Opcode::kBne && chains(a, b.rs))
            op = DecodedOp::kAndiBne;
        break;
      case Opcode::kAnd:
        if (b.op == Opcode::kShli && chains(a, b.rs))
            op = DecodedOp::kAndShli;
        break;
      case Opcode::kSub:
        if (b.op == Opcode::kBeq && chains(a, b.rs))
            op = DecodedOp::kSubBeq;
        else if (b.op == Opcode::kBne && chains(a, b.rs))
            op = DecodedOp::kSubBne;
        break;
      default:
        break;
    }
    if (op == DecodedOp::kOpCount_)
        return false;

    out = DecodedInstr{};
    out.op = op;
    out.rd = a.rd;
    out.rs = a.rs;
    out.rt = a.rt;
    out.imm = a.imm; // no fusion pattern leads with a shift
    out.rd2 = b.rd;
    out.rs2 = b.rs;
    out.rt2 = b.rt;
    out.imm2 = b.op == Opcode::kShli ? (b.imm & 63) : b.imm;
    out.archCycles = 2;
    return true;
}

/**
 * Try to fuse the full hash idiom (and/andi + shli + add + prefetch*)
 * into one macro-op.  The chain and/andi.rd -> shli.rs, shli.rd ->
 * add operand, add.rd -> prefetch.rs must hold exactly (the add may
 * take the shifted value on either side — addition commutes).
 *
 * Register slot layout in the DecodedInstr (tight on purpose, to keep
 * the struct at one size for every op):
 *   rd   and/andi destination      rs/rt (+imm)  and/andi sources
 *   rt   shift amount (imm-mask form only; reg form keeps it in imm)
 *   rd2  shli destination
 *   rs2  add destination           rt2  add's non-chained operand
 *   imm2 prefetch tag / callback id
 */
bool
tryFuseHash(const Instr &a, const Instr &b, const Instr &c,
            const Instr &p, DecodedInstr &out)
{
    if (a.op != Opcode::kAnd && a.op != Opcode::kAndi)
        return false;
    if (b.op != Opcode::kShli || !chains(a, b.rs))
        return false;
    if (c.op != Opcode::kAdd)
        return false;
    std::uint8_t other;
    if (c.rs == b.rd)
        other = c.rt;
    else if (c.rt == b.rd)
        other = c.rs;
    else
        return false;
    if (p.op != Opcode::kPrefetch && p.op != Opcode::kPrefetchTag &&
        p.op != Opcode::kPrefetchCb)
        return false;
    if (!chains(c, p.rs))
        return false;

    out = DecodedInstr{};
    const bool immMask = a.op == Opcode::kAndi;
    switch (p.op) {
      case Opcode::kPrefetch:
        out.op = immMask ? DecodedOp::kHashiPrefetch
                         : DecodedOp::kHashrPrefetch;
        break;
      case Opcode::kPrefetchTag:
        out.op = immMask ? DecodedOp::kHashiPrefetchTag
                         : DecodedOp::kHashrPrefetchTag;
        break;
      default:
        out.op = immMask ? DecodedOp::kHashiPrefetchCb
                         : DecodedOp::kHashrPrefetchCb;
        break;
    }
    out.rd = a.rd;
    out.rs = a.rs;
    if (immMask) {
        out.imm = a.imm;
        out.rt = static_cast<std::uint8_t>(b.imm & 63);
    } else {
        out.rt = a.rt;
        out.imm = b.imm & 63;
    }
    out.rd2 = b.rd;
    out.rs2 = c.rd;
    out.rt2 = other;
    out.imm2 = p.imm;
    out.archCycles = 4;
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

DecodedKernel::DecodedKernel(const Kernel &k) : src_(k.code)
{
    const std::size_t size = src_.size();

    // Decode-time value analysis.  Programs are interned by code
    // content and run under arbitrary events, so the context must
    // assume nothing the runtime does not guarantee: line payload
    // unknown, globals possibly absent (EventContext.globalRegs may be
    // null), no installed lookahead filters.  Every fact the analysis
    // proves under this context therefore holds universally, which is
    // what makes trapFreePc_ usable as the superblock region oracle
    // and makes hoisting refined always-traps to kTrap sound.
    analysis::KernelContext dctx;
    dctx.line = analysis::KernelContext::Line::kUnknown;
    dctx.globalsPresent = false;
    dctx.lookaheadEntries = -1;
    const analysis::DataflowResult df = analysis::analyzeDataflow(k, dctx);
    trapFreePc_.assign(size, 0);
    for (std::size_t pc = 0; pc < size; ++pc)
        trapFreePc_[pc] = df.provenTrapFree(pc) ? 1 : 0;

    // Control-flow joins: fusing across a branch target would let a
    // taken branch skip into the middle of a macro-op, so a slot whose
    // original index is a target can only start one.
    std::vector<std::uint8_t> isTarget(size + 1, 0);
    for (std::size_t i = 0; i < size; ++i) {
        const Instr &in = src_[i];
        if (isCondBranch(in.op) || in.op == Opcode::kJmp) {
            const std::int64_t t =
                static_cast<std::int64_t>(i) + 1 + in.imm;
            if (t >= 0 && t <= static_cast<std::int64_t>(size))
                isTarget[static_cast<std::size_t>(t)] = 1;
        }
    }
    auto joinFree = [&isTarget](std::size_t from, std::size_t to) {
        for (std::size_t j = from; j <= to; ++j)
            if (isTarget[j])
                return false;
        return true;
    };

    std::vector<std::uint32_t> origToDecoded(size + 1, 0);
    struct Patch
    {
        std::uint32_t at;
        std::int64_t origTarget;
    };
    std::vector<Patch> patches;

    prog_.reserve(size + 1);
    std::size_t i = 0;
    while (i < size) {
        const auto slot = static_cast<std::uint32_t>(prog_.size());
        origToDecoded[i] = slot;
        DecodedInstr d;
        std::size_t consumed = 1;
        if (i < df.alwaysTrapsPc.size() && df.alwaysTrapsPc[i]) {
            // Dataflow-refined guaranteed trap (e.g. a div whose
            // divisor interval is exactly [0,0]).  decodeSingle only
            // hoists the context-free cases; this extends the same
            // kTrap hoist to value-proven ones.  kTrap charges one
            // cycle and writes nothing — exactly what the reference
            // interpreter does when the instruction traps — so timing
            // and register state stay bit-identical.  No fusion
            // pattern consumes a div, so checking before the fusion
            // attempts cannot break a macro-op.
            d = decodeSingle(src_[i]);
            d.op = DecodedOp::kTrap;
        } else if (i + 3 < size && joinFree(i + 1, i + 3) &&
            tryFuseHash(src_[i], src_[i + 1], src_[i + 2], src_[i + 3],
                        d)) {
            consumed = 4;
        } else if (i + 1 < size && !isTarget[i + 1] &&
                   tryFusePair(src_[i], src_[i + 1], d)) {
            consumed = 2;
            if (isCondBranch(src_[i + 1].op))
                patches.push_back({slot, static_cast<std::int64_t>(i + 1) +
                                             1 + src_[i + 1].imm});
        } else {
            d = decodeSingle(src_[i]);
            if (isCondBranch(src_[i].op) || src_[i].op == Opcode::kJmp)
                patches.push_back(
                    {slot,
                     static_cast<std::int64_t>(i) + 1 + src_[i].imm});
        }
        if (consumed > 1)
            ++fusedPairs_;
        for (std::size_t j = 1; j < consumed; ++j)
            origToDecoded[i + j] = slot; // never branch targets
        prog_.push_back(d);
        i += consumed;
    }
    origToDecoded[size] = static_cast<std::uint32_t>(prog_.size());

    // The synthetic boundary slot: falling past the last instruction
    // (or branching anywhere outside [0, size)) lands here and traps,
    // which lets the dispatcher skip per-op bounds checks entirely.
    DecodedInstr boundary;
    boundary.op = DecodedOp::kBoundary;
    prog_.push_back(boundary);

    const auto n = static_cast<std::uint32_t>(prog_.size() - 1);
    for (const Patch &p : patches) {
        prog_[p.at].target =
            (p.origTarget >= 0 &&
             p.origTarget < static_cast<std::int64_t>(size))
                ? origToDecoded[static_cast<std::size_t>(p.origTarget)]
                : n;
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

namespace
{

ExecResult
runState(const DecodedInstr *const code, ExecState &st, unsigned max_steps,
         std::uint64_t *regs_out)
{
    // Raw storage: PrefetchEmit's default member initialisers would
    // otherwise zero the whole buffer on every event; emitOne writes
    // all fields of every entry it stages, so this never reads junk.
    static_assert(std::is_trivially_copyable_v<PrefetchEmit>);
    alignas(PrefetchEmit) std::byte
        stageRaw[sizeof(PrefetchEmit) * kStageCap];
    st.stage = reinterpret_cast<PrefetchEmit *>(stageRaw);
    st.flushed = 0;

    // Zero the architectural registers with plain stores: a memset of
    // 128 bytes compiles to a microcoded `rep stos` whose startup cost
    // is a measurable fraction of a whole short event.
    for (unsigned i = 0; i < kPpuRegs; ++i)
        st.regs[i] = 0;

    Hot hot;
    hot.cycles = 0;
    hot.emitted = 0;
    hot.maxSteps = max_steps;
    std::uint32_t ip = 0;
    std::uint32_t ctrl;

#if EPF_PREDECODE_THREADED
    {
        // Direct threading: every op body ends in its own indirect
        // branch, so the host branch predictor sees per-op successor
        // history instead of one central switch.  Ops that cannot
        // exit (plain ALU, branches, prefetch emits) skip the
        // control-code check after their body.
#define EPF_LABEL_ADDR(Name) &&lb_##Name,
        static const void *const kLabels[] = {
            EPF_DECODED_OPS(EPF_LABEL_ADDR, EPF_LABEL_ADDR)};
#undef EPF_LABEL_ADDR
        const DecodedInstr *d;
#define EPF_DISPATCH()                                                      \
    do {                                                                    \
        if (hot.cycles >= hot.maxSteps) {                                   \
            ctrl = kCtrlStep;                                               \
            goto exec_done;                                                 \
        }                                                                   \
        d = &code[ip];                                                      \
        goto *kLabels[static_cast<unsigned>(d->op)];                        \
    } while (0)
#define EPF_CASE_X(Name)                                                    \
    lb_##Name:                                                              \
        ip = x##Name(*d, ip, st, hot);                                      \
        if (ip >= kCtrlBase) {                                              \
            ctrl = ip;                                                      \
            goto exec_done;                                                 \
        }                                                                   \
        EPF_DISPATCH();
#define EPF_CASE_N(Name)                                                    \
    lb_##Name:                                                              \
        ip = x##Name(*d, ip, st, hot);                                      \
        EPF_DISPATCH();
        EPF_DISPATCH();
        EPF_DECODED_OPS(EPF_CASE_X, EPF_CASE_N)
#undef EPF_CASE_N
#undef EPF_CASE_X
#undef EPF_DISPATCH
    }
exec_done:;
#else
    for (;;) {
        if (hot.cycles >= hot.maxSteps) {
            ctrl = kCtrlStep;
            break;
        }
        const DecodedInstr &d = code[ip];
        ip = kHandlers[static_cast<unsigned>(d.op)](d, ip, st, hot);
        if (ip >= kCtrlBase) {
            ctrl = ip;
            break;
        }
    }
#endif

    if (hot.emitted != st.flushed)
        flushStage(st, hot.emitted);

    ExecResult res;
    res.cycles = hot.cycles;
    res.emitted = hot.emitted;
    res.exit = ctrl == kCtrlHalt
                   ? ExitReason::kHalted
                   : (ctrl == kCtrlTrap ? ExitReason::kTrapped
                                        : ExitReason::kStepLimit);
    if (regs_out != nullptr)
        std::memcpy(regs_out, st.regs, sizeof(st.regs));
    return res;
}

} // namespace

ExecResult
DecodedKernel::run(const DecodedKernel &dk, const EventContext &ctx,
                   const Interpreter::EmitFn &emit, unsigned max_steps,
                   std::uint64_t *regs_out)
{
    ExecState st;
    st.ctx = &ctx;
    st.emitVec = nullptr;
    st.emitFn = &emit;
    return runState(dk.prog_.data(), st, max_steps, regs_out);
}

ExecResult
DecodedKernel::run(const DecodedKernel &dk, const EventContext &ctx,
                   std::vector<PrefetchEmit> *sink, unsigned max_steps,
                   std::uint64_t *regs_out)
{
    static const Interpreter::EmitFn kNoFn;
    ExecState st;
    st.ctx = &ctx;
    st.emitVec = sink;
    st.emitFn = &kNoFn;
    return runState(dk.prog_.data(), st, max_steps, regs_out);
}

// ---------------------------------------------------------------------
// DecodeCache
// ---------------------------------------------------------------------

namespace
{

struct InternTable
{
    std::mutex mu;
    /** Content hash -> decoded programs with that hash. */
    std::unordered_map<std::uint64_t,
                       std::vector<std::shared_ptr<const DecodedKernel>>>
        byHash;
    std::size_t count = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

InternTable &
internTable()
{
    static InternTable t;
    return t;
}

/** FNV-1a over the semantic fields of the code (names excluded). */
std::uint64_t
codeHash(const std::vector<Instr> &code)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ULL;
        }
    };
    for (const Instr &in : code) {
        mix(static_cast<std::uint64_t>(in.op) |
            (static_cast<std::uint64_t>(in.rd) << 8) |
            (static_cast<std::uint64_t>(in.rs) << 16) |
            (static_cast<std::uint64_t>(in.rt) << 24));
        mix(static_cast<std::uint64_t>(in.imm));
    }
    mix(code.size());
    return h;
}

bool
sameCode(const std::vector<Instr> &a, const std::vector<Instr> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].op != b[i].op || a[i].rd != b[i].rd ||
            a[i].rs != b[i].rs || a[i].rt != b[i].rt ||
            a[i].imm != b[i].imm)
            return false;
    }
    return true;
}

} // namespace

std::shared_ptr<const DecodedKernel>
DecodeCache::decode(const Kernel &k)
{
    InternTable &t = internTable();
    const std::uint64_t h = codeHash(k.code);
    std::lock_guard<std::mutex> lock(t.mu);
    auto &bucket = t.byHash[h];
    for (const auto &dk : bucket) {
        if (sameCode(dk->source(), k.code)) {
            ++t.hits;
            return dk;
        }
    }
    ++t.misses;
    auto dk = std::make_shared<const DecodedKernel>(k);
    bucket.push_back(dk);
    ++t.count;
    return dk;
}

std::size_t
DecodeCache::internedKernels()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.count;
}

std::uint64_t
DecodeCache::hits()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.hits;
}

std::uint64_t
DecodeCache::misses()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.misses;
}

void
DecodeCache::drop()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    t.byHash.clear();
    t.count = 0;
}

} // namespace epf
