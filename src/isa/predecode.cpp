#include "isa/predecode.hpp"

#include "isa/analysis/cfg.hpp"
#include "isa/analysis/dataflow.hpp"
#include "isa/analysis/verifier.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <mutex>
#include <type_traits>
#include <unordered_map>

namespace epf
{
namespace
{

using detail::ExecState;

/**
 * Handler return values at or above kCtrlBase are control codes, not
 * decoded indices.  Decoded programs are bounded by the kernel-store
 * budget (4 KiB / 4 B per instruction), far below this range.
 */
constexpr std::uint32_t kCtrlBase = 0xFFFFFF00u;
constexpr std::uint32_t kCtrlHalt = kCtrlBase + 0;
constexpr std::uint32_t kCtrlTrap = kCtrlBase + 1;
constexpr std::uint32_t kCtrlStep = kCtrlBase + 2;

/**
 * Every decoded op, in DecodedOp order, tagged N (cannot exit — the
 * dispatcher skips the control-code check) or X (can halt, trap or hit
 * the step limit mid-sequence).  The op bodies, the handler table and
 * the computed-goto label table are all generated from this one list,
 * so the three can never disagree about dispatch order.
 */
#define EPF_DECODED_OPS(X, N)                                               \
    X(Halt) N(Nop) N(Li) N(Mov)                                             \
    N(Add) N(Sub) N(Mul) X(Div) N(And) N(Or) N(Xor) N(Shl) N(Shr)           \
    N(Addi) N(Muli) X(Divi) N(Andi) N(Shli) N(Shri)                         \
    N(Vaddr) N(LineBase) X(LdLine) X(LdLine32) X(Gread) X(Lookahead)        \
    N(Prefetch) N(PrefetchTag) N(PrefetchCb)                                \
    N(Beq) N(Bne) N(Blt) N(Bge) N(Jmp)                                      \
    X(Trap) X(Boundary) X(Superblock)                                       \
    X(LiPrefetch) X(LiPrefetchTag) X(LiPrefetchCb)                          \
    X(AddPrefetch) X(AddPrefetchTag) X(AddPrefetchCb)                       \
    X(AddiLdLine) X(AndiShli) X(AndShli)                                    \
    X(AddiBeq) X(AddiBne) X(AddiBlt) X(AddiBge)                             \
    X(AndiBeq) X(AndiBne) X(SubBeq) X(SubBne)                               \
    X(HashiPrefetch) X(HashiPrefetchTag) X(HashiPrefetchCb)                 \
    X(HashrPrefetch) X(HashrPrefetchTag) X(HashrPrefetchCb)

#define EPF_COUNT_OP(Name) +1
static_assert(static_cast<unsigned>(DecodedOp::kOpCount_) ==
                  0 EPF_DECODED_OPS(EPF_COUNT_OP, EPF_COUNT_OP),
              "EPF_DECODED_OPS must list every DecodedOp exactly once");
#undef EPF_COUNT_OP

#if defined(__GNUC__) || defined(__clang__)
#define EPF_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define EPF_ALWAYS_INLINE inline
#endif

using detail::Hot;
using detail::kStageCap;

/**
 * Rarely-taken flush of the emit staging buffer into the real sink
 * (deliberately out of line; it runs when a kernel emits more than
 * kStageCap prefetches, and once at exit).
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void
flushStage(ExecState &st, std::uint32_t emitted)
{
    const std::uint32_t n = emitted - st.flushed;
    if (st.emitVec != nullptr) {
        st.emitVec->insert(st.emitVec->end(), st.stage, st.stage + n);
    } else if (*st.emitFn) {
        for (std::uint32_t i = 0; i < n; ++i)
            (*st.emitFn)(st.stage[i]);
    }
    st.flushed = emitted;
}

/**
 * Always inlined, and deliberately chain-free: the emit lands in the
 * staging buffer at an address computed from the register-resident
 * counter, so back-to-back emits pipeline.  An out-of-line call here
 * would spill the dispatcher's live registers around every prefetch
 * the kernels issue — measurably the hottest few instructions in the
 * whole simulator.
 */
EPF_ALWAYS_INLINE void
emitOne(ExecState &st, Hot &hot, std::uint64_t vaddr, std::int32_t tag,
        KernelId cb)
{
    PrefetchEmit &e = st.stage[hot.emitted & (kStageCap - 1)];
    e.vaddr = vaddr;
    e.tag = tag;
    e.cbKernel = cb;
    ++hot.emitted;
    if ((hot.emitted & (kStageCap - 1)) == 0)
        flushStage(st, hot.emitted);
}

// ---------------------------------------------------------------------
// Op bodies.  One body per decoded op, shared by the computed-goto
// dispatcher (inlined at each label) and the function-pointer handlers
// (wrapped below), so the two dispatch forms share one semantics.
//
// Contract: the dispatcher has already verified cycles < maxSteps and
// that ip names a real slot.  A body charges its architectural cycles,
// applies its effects, and returns the next decoded index or a control
// code.  Fused bodies re-check the step limit between architectural
// halves — exactly where the reference interpreter's fetch loop would
// — so truncation mid-sequence leaves the same registers, cycle count
// and emit sequence behind.  Chained values forward through host
// locals (the fusion conditions in tryFuse guarantee the consumer
// reads the producer's rd), while every architectural register write
// still lands in regs[].
// ---------------------------------------------------------------------

#define EPF_BODY(Name)                                                      \
    EPF_ALWAYS_INLINE std::uint32_t x##Name(const DecodedInstr &d,          \
                                            std::uint32_t ip,               \
                                            ExecState &st, Hot &hot)

EPF_BODY(Halt)
{
    (void)d;
    (void)ip;
    (void)st;
    ++hot.cycles;
    return kCtrlHalt;
}

EPF_BODY(Nop)
{
    (void)d;
    (void)st;
    ++hot.cycles;
    return ip + 1;
}

EPF_BODY(Li)
{
    ++hot.cycles;
    st.regs[d.rd] = static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Mov)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs];
    return ip + 1;
}

EPF_BODY(Add)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] + st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Sub)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] - st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Mul)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] * st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Div)
{
    ++hot.cycles;
    const auto num = static_cast<std::int64_t>(st.regs[d.rs]);
    const auto den = static_cast<std::int64_t>(st.regs[d.rt]);
    if (den == 0 ||
        (den == -1 && num == std::numeric_limits<std::int64_t>::min()))
        return kCtrlTrap;
    st.regs[d.rd] = static_cast<std::uint64_t>(num / den);
    return ip + 1;
}

EPF_BODY(And)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] & st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Or)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] | st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Xor)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] ^ st.regs[d.rt];
    return ip + 1;
}

EPF_BODY(Shl)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] << (st.regs[d.rt] & 63);
    return ip + 1;
}

EPF_BODY(Shr)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] >> (st.regs[d.rt] & 63);
    return ip + 1;
}

EPF_BODY(Addi)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] + static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Muli)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] * static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Divi)
{
    // imm == 0 was hoisted to kTrap at decode; only the dynamic
    // INT64_MIN / -1 overflow remains.
    ++hot.cycles;
    const auto num = static_cast<std::int64_t>(st.regs[d.rs]);
    if (d.imm == -1 && num == std::numeric_limits<std::int64_t>::min())
        return kCtrlTrap;
    st.regs[d.rd] = static_cast<std::uint64_t>(num / d.imm);
    return ip + 1;
}

EPF_BODY(Andi)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] & static_cast<std::uint64_t>(d.imm);
    return ip + 1;
}

EPF_BODY(Shli)
{
    ++hot.cycles; // imm pre-masked to [0, 63] at decode
    st.regs[d.rd] = st.regs[d.rs] << d.imm;
    return ip + 1;
}

EPF_BODY(Shri)
{
    ++hot.cycles;
    st.regs[d.rd] = st.regs[d.rs] >> d.imm;
    return ip + 1;
}

EPF_BODY(Vaddr)
{
    ++hot.cycles;
    st.regs[d.rd] = st.ctx->vaddr;
    return ip + 1;
}

EPF_BODY(LineBase)
{
    ++hot.cycles;
    st.regs[d.rd] = lineAlign(st.ctx->vaddr);
    return ip + 1;
}

inline std::uint64_t
lineWord64(const ExecState &st, std::uint64_t base, std::int64_t imm)
{
    const unsigned off = static_cast<unsigned>(
        (base + static_cast<std::uint64_t>(imm)) & (kLineBytes - 8));
    std::uint64_t v;
    std::memcpy(&v, st.ctx->line.data() + off, 8);
    return v;
}

EPF_BODY(LdLine)
{
    ++hot.cycles;
    if (!st.ctx->hasLine)
        return kCtrlTrap;
    st.regs[d.rd] = lineWord64(st, st.regs[d.rs], d.imm);
    return ip + 1;
}

EPF_BODY(LdLine32)
{
    ++hot.cycles;
    if (!st.ctx->hasLine)
        return kCtrlTrap;
    const unsigned off = static_cast<unsigned>(
        (st.regs[d.rs] + static_cast<std::uint64_t>(d.imm)) &
        (kLineBytes - 4));
    std::uint32_t v;
    std::memcpy(&v, st.ctx->line.data() + off, 4);
    st.regs[d.rd] = v;
    return ip + 1;
}

EPF_BODY(Gread)
{
    // Out-of-range indices were hoisted to kTrap at decode.
    ++hot.cycles;
    if (st.ctx->globalRegs == nullptr)
        return kCtrlTrap;
    st.regs[d.rd] = st.ctx->globalRegs[d.imm];
    return ip + 1;
}

EPF_BODY(Lookahead)
{
    // Negative indices were hoisted to kTrap at decode.
    ++hot.cycles;
    if (static_cast<std::uint64_t>(d.imm) >= st.ctx->lookaheadEntries ||
        st.ctx->lookahead == nullptr)
        return kCtrlTrap;
    st.regs[d.rd] = st.ctx->lookahead[d.imm];
    return ip + 1;
}

EPF_BODY(Prefetch)
{
    ++hot.cycles;
    emitOne(st, hot, st.regs[d.rs], -1, kNoKernel);
    return ip + 1;
}

EPF_BODY(PrefetchTag)
{
    ++hot.cycles;
    emitOne(st, hot, st.regs[d.rs], static_cast<std::int32_t>(d.imm), kNoKernel);
    return ip + 1;
}

EPF_BODY(PrefetchCb)
{
    ++hot.cycles;
    emitOne(st, hot, st.regs[d.rs], -1, static_cast<KernelId>(d.imm));
    return ip + 1;
}

EPF_BODY(Beq)
{
    ++hot.cycles;
    return st.regs[d.rs] == st.regs[d.rt] ? d.target : ip + 1;
}

EPF_BODY(Bne)
{
    ++hot.cycles;
    return st.regs[d.rs] != st.regs[d.rt] ? d.target : ip + 1;
}

EPF_BODY(Blt)
{
    ++hot.cycles;
    return static_cast<std::int64_t>(st.regs[d.rs]) <
                   static_cast<std::int64_t>(st.regs[d.rt])
               ? d.target
               : ip + 1;
}

EPF_BODY(Bge)
{
    ++hot.cycles;
    return static_cast<std::int64_t>(st.regs[d.rs]) >=
                   static_cast<std::int64_t>(st.regs[d.rt])
               ? d.target
               : ip + 1;
}

EPF_BODY(Jmp)
{
    (void)ip;
    (void)st;
    ++hot.cycles;
    return d.target;
}

EPF_BODY(Trap)
{
    // Statically-proven trap: the reference still fetches (and charges)
    // the instruction before trapping, so the cycle is charged here.
    (void)d;
    (void)ip;
    (void)st;
    ++hot.cycles;
    return kCtrlTrap;
}

EPF_BODY(Boundary)
{
    // Fall-off-the-end / wild branch target: the reference traps on
    // the pc bounds check *before* fetching, so no cycle is charged.
    (void)d;
    (void)ip;
    (void)st;
    (void)hot;
    return kCtrlTrap;
}

/** Superblock slow path: one indirect call through the handler table
 *  (defined after the wrappers below) on the head's original op. */
std::uint32_t dispatchSlow(const DecodedInstr &d, std::uint32_t ip,
                           ExecState &st, Hot &hot);

/**
 * Execute one constituent op of a superblock's fast path against the
 * host-local register file @p r.  No budget checks, no trap checks, no
 * control flow: formation admitted only ops that cannot trap under the
 * block-entry guards, and the whole block's budget was verified up
 * front.  Emits stage through the shared buffer exactly as the
 * interpreted ops would, so the emit sequence is bit-identical.
 */
EPF_ALWAYS_INLINE void
execBlockOp(const DecodedInstr &o, std::uint64_t *r, ExecState &st,
            Hot &hot)
{
    switch (o.op) {
      case DecodedOp::kNop: break;
      case DecodedOp::kLi:
        r[o.rd] = static_cast<std::uint64_t>(o.imm);
        break;
      case DecodedOp::kMov: r[o.rd] = r[o.rs]; break;
      case DecodedOp::kAdd: r[o.rd] = r[o.rs] + r[o.rt]; break;
      case DecodedOp::kSub: r[o.rd] = r[o.rs] - r[o.rt]; break;
      case DecodedOp::kMul: r[o.rd] = r[o.rs] * r[o.rt]; break;
      case DecodedOp::kDiv:
        // Admitted only when the trap-free bitmap proves the divisor
        // can never be 0 (nor the INT64_MIN / -1 pair) at this pc.
        r[o.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(r[o.rs]) /
            static_cast<std::int64_t>(r[o.rt]));
        break;
      case DecodedOp::kAnd: r[o.rd] = r[o.rs] & r[o.rt]; break;
      case DecodedOp::kOr: r[o.rd] = r[o.rs] | r[o.rt]; break;
      case DecodedOp::kXor: r[o.rd] = r[o.rs] ^ r[o.rt]; break;
      case DecodedOp::kShl: r[o.rd] = r[o.rs] << (r[o.rt] & 63); break;
      case DecodedOp::kShr: r[o.rd] = r[o.rs] >> (r[o.rt] & 63); break;
      case DecodedOp::kAddi:
        r[o.rd] = r[o.rs] + static_cast<std::uint64_t>(o.imm);
        break;
      case DecodedOp::kMuli:
        r[o.rd] = r[o.rs] * static_cast<std::uint64_t>(o.imm);
        break;
      case DecodedOp::kDivi:
        // Proven: imm != 0 (hoisted at decode) and no overflow pair.
        r[o.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(r[o.rs]) / o.imm);
        break;
      case DecodedOp::kAndi:
        r[o.rd] = r[o.rs] & static_cast<std::uint64_t>(o.imm);
        break;
      case DecodedOp::kShli: r[o.rd] = r[o.rs] << o.imm; break;
      case DecodedOp::kShri: r[o.rd] = r[o.rs] >> o.imm; break;
      case DecodedOp::kVaddr: r[o.rd] = st.ctx->vaddr; break;
      case DecodedOp::kLineBase:
        r[o.rd] = lineAlign(st.ctx->vaddr);
        break;
      case DecodedOp::kLdLine: // guarded by needsLine
        r[o.rd] = lineWord64(st, r[o.rs], o.imm);
        break;
      case DecodedOp::kLdLine32: {
        const unsigned off = static_cast<unsigned>(
            (r[o.rs] + static_cast<std::uint64_t>(o.imm)) &
            (kLineBytes - 4));
        std::uint32_t v;
        std::memcpy(&v, st.ctx->line.data() + off, 4);
        r[o.rd] = v;
        break;
      }
      case DecodedOp::kGread: // guarded by needsGlobals; index in range
        r[o.rd] = st.ctx->globalRegs[o.imm];
        break;
      case DecodedOp::kLookahead: // guarded by lookaheadMax
        r[o.rd] = st.ctx->lookahead[o.imm];
        break;
      case DecodedOp::kPrefetch:
        emitOne(st, hot, r[o.rs], -1, kNoKernel);
        break;
      case DecodedOp::kPrefetchTag:
        emitOne(st, hot, r[o.rs], static_cast<std::int32_t>(o.imm),
                kNoKernel);
        break;
      case DecodedOp::kPrefetchCb:
        emitOne(st, hot, r[o.rs], -1, static_cast<KernelId>(o.imm));
        break;
      case DecodedOp::kLiPrefetch:
      case DecodedOp::kLiPrefetchTag:
      case DecodedOp::kLiPrefetchCb: {
        const std::uint64_t v = static_cast<std::uint64_t>(o.imm);
        r[o.rd] = v;
        emitOne(st, hot, v,
                o.op == DecodedOp::kLiPrefetchTag
                    ? static_cast<std::int32_t>(o.imm2)
                    : -1,
                o.op == DecodedOp::kLiPrefetchCb
                    ? static_cast<KernelId>(o.imm2)
                    : kNoKernel);
        break;
      }
      case DecodedOp::kAddPrefetch:
      case DecodedOp::kAddPrefetchTag:
      case DecodedOp::kAddPrefetchCb: {
        const std::uint64_t v = r[o.rs] + r[o.rt];
        r[o.rd] = v;
        emitOne(st, hot, v,
                o.op == DecodedOp::kAddPrefetchTag
                    ? static_cast<std::int32_t>(o.imm2)
                    : -1,
                o.op == DecodedOp::kAddPrefetchCb
                    ? static_cast<KernelId>(o.imm2)
                    : kNoKernel);
        break;
      }
      case DecodedOp::kAddiLdLine: { // guarded by needsLine
        const std::uint64_t addr =
            r[o.rs] + static_cast<std::uint64_t>(o.imm);
        r[o.rd] = addr;
        r[o.rd2] = lineWord64(st, addr, o.imm2);
        break;
      }
      case DecodedOp::kAndiShli: {
        const std::uint64_t v =
            r[o.rs] & static_cast<std::uint64_t>(o.imm);
        r[o.rd] = v;
        r[o.rd2] = v << o.imm2;
        break;
      }
      case DecodedOp::kAndShli: {
        const std::uint64_t v = r[o.rs] & r[o.rt];
        r[o.rd] = v;
        r[o.rd2] = v << o.imm2;
        break;
      }
      case DecodedOp::kHashiPrefetch:
      case DecodedOp::kHashiPrefetchTag:
      case DecodedOp::kHashiPrefetchCb: {
        std::uint64_t v = r[o.rs] & static_cast<std::uint64_t>(o.imm);
        r[o.rd] = v;
        v <<= o.rt;
        r[o.rd2] = v;
        v += r[o.rt2];
        r[o.rs2] = v;
        emitOne(st, hot, v,
                o.op == DecodedOp::kHashiPrefetchTag
                    ? static_cast<std::int32_t>(o.imm2)
                    : -1,
                o.op == DecodedOp::kHashiPrefetchCb
                    ? static_cast<KernelId>(o.imm2)
                    : kNoKernel);
        break;
      }
      case DecodedOp::kHashrPrefetch:
      case DecodedOp::kHashrPrefetchTag:
      case DecodedOp::kHashrPrefetchCb: {
        std::uint64_t v = r[o.rs] & r[o.rt];
        r[o.rd] = v;
        v <<= o.imm;
        r[o.rd2] = v;
        v += r[o.rt2];
        r[o.rs2] = v;
        emitOne(st, hot, v,
                o.op == DecodedOp::kHashrPrefetchTag
                    ? static_cast<std::int32_t>(o.imm2)
                    : -1,
                o.op == DecodedOp::kHashrPrefetchCb
                    ? static_cast<KernelId>(o.imm2)
                    : kNoKernel);
        break;
      }
      default: // formation admits no other op
        break;
    }
}

EPF_BODY(Superblock)
{
    const SuperBlock &sb = st.blocks[d.target];
    // Block-entry check: whole-run budget plus every guard.  The
    // budget comparison mirrors the dispatcher's per-op check — when
    // cycles + sb.cycles == maxSteps the reference executes every
    // constituent op (each fetch still sees cycles < maxSteps) and
    // stops after, which the dispatcher's next check reproduces.
    if (hot.cycles + sb.cycles <= hot.maxSteps &&
        (!sb.needsLine || st.ctx->hasLine) &&
        (!sb.needsGlobals || st.ctx->globalRegs != nullptr) &&
        (sb.lookaheadMax < 0 ||
         (st.ctx->lookahead != nullptr &&
          static_cast<std::uint64_t>(sb.lookaheadMax) <
              st.ctx->lookaheadEntries))) [[likely]] {
        std::uint32_t next;
        if (sb.shape == SuperBlock::Shape::kChaseLoop) {
            // Dispatch-free chase loop: both fused bodies and the
            // terminator compare run as straight-line host code.
            // Iterates while the branch stays taken and the budget
            // covers another full run — same exit conditions as the
            // generic batching loop below, same bit-exact op semantics
            // as execBlockOp's kAddiLdLine and hash-quad cases.  The
            // handful of registers the shape touches are materialised
            // as individual host locals (no register-file copy at
            // all); everything else in st.regs is untouched by
            // construction.  Decode-time constants also live in scalar
            // locals: reads through sb.ops references would reload
            // every iteration because the compiler cannot prove
            // emitOne's stores (through st.stage) never alias the ops
            // vector.
            const DecodedInstr &a = sb.ops[0];
            const DecodedInstr &h = sb.ops[1];
            const DecodedInstr &t = sb.term;
            const unsigned aRs = a.rs, aRd = a.rd, aRd2 = a.rd2;
            const std::uint64_t aImm = static_cast<std::uint64_t>(a.imm);
            const std::int64_t aOff = a.imm2;
            const unsigned hRt = h.rt, hRd = h.rd;
            const unsigned hRd2 = h.rd2, hRt2 = h.rt2, hRs2 = h.rs2;
            const bool rform = h.op == DecodedOp::kHashrPrefetch ||
                               h.op == DecodedOp::kHashrPrefetchTag ||
                               h.op == DecodedOp::kHashrPrefetchCb;
            const std::uint64_t mask = static_cast<std::uint64_t>(h.imm);
            const unsigned shift =
                rform ? static_cast<unsigned>(h.imm) : h.rt;
            const std::int32_t tag =
                (h.op == DecodedOp::kHashiPrefetchTag ||
                 h.op == DecodedOp::kHashrPrefetchTag)
                    ? static_cast<std::int32_t>(h.imm2)
                    : -1;
            const KernelId cb =
                (h.op == DecodedOp::kHashiPrefetchCb ||
                 h.op == DecodedOp::kHashrPrefetchCb)
                    ? static_cast<KernelId>(h.imm2)
                    : kNoKernel;
            const DecodedOp termOp = t.op;
            const std::uint32_t fall = sb.fallthrough;
            const std::uint32_t cyc = sb.cycles;
            // Formation proved the canonical dataflow, so the whole
            // loop-carried state lives in host registers: the cursor
            // (bumped in place, never clobbered), the loop limit, the
            // rebase addend and the r-form mask (all invariant), and
            // the link/hash temporaries (consumed within their own
            // iteration).  r[] is written once, after the loop, in
            // program-op order — every in-loop store would be dead.
            std::uint64_t cursor = st.regs[aRs];
            const std::uint64_t lim = st.regs[t.rt];
            const std::uint64_t rebase = st.regs[hRt2];
            const std::uint64_t maskV = rform ? st.regs[hRt] : mask;
            // st.stage and st.ctx->line reload every iteration if read
            // through st (the emit stores could alias them for all the
            // compiler knows) — hoist them, and run the emit counter
            // in a local synced back at loop exit and around flushes.
            const std::byte *const lineP = st.ctx->line.data();
            PrefetchEmit *const stage = st.stage;
            std::uint32_t emitted = hot.emitted;
            // hot escapes into dispatchSlow, so its fields round-trip
            // memory each iteration unless run in locals too.
            std::uint32_t cycles = hot.cycles;
            const std::uint32_t maxSteps = hot.maxSteps;
            std::uint64_t link = 0, masked = 0, shifted = 0, out = 0;
            for (;;) {
                cursor += aImm;
                const unsigned lineOff = static_cast<unsigned>(
                    (cursor + static_cast<std::uint64_t>(aOff)) &
                    (kLineBytes - 8));
                std::memcpy(&link, lineP + lineOff, 8);
                masked = link & maskV;
                shifted = masked << shift;
                out = shifted + rebase;
                PrefetchEmit &e = stage[emitted & (kStageCap - 1)];
                e.vaddr = out;
                e.tag = tag;
                e.cbKernel = cb;
                if (((++emitted) & (kStageCap - 1)) == 0) {
                    hot.emitted = emitted;
                    flushStage(st, emitted);
                }
                cycles += cyc;
                bool taken;
                switch (termOp) {
                  case DecodedOp::kBeq: taken = cursor == lim; break;
                  case DecodedOp::kBne: taken = cursor != lim; break;
                  case DecodedOp::kBlt:
                    taken = static_cast<std::int64_t>(cursor) <
                            static_cast<std::int64_t>(lim);
                    break;
                  default: // kBge; formation admits no other terminator
                    taken = static_cast<std::int64_t>(cursor) >=
                            static_cast<std::int64_t>(lim);
                    break;
                }
                if (!taken) {
                    next = fall;
                    break;
                }
                if (cycles + cyc > maxSteps) {
                    next = ip; // dispatcher stops or takes the slow path
                    break;
                }
            }
            hot.emitted = emitted;
            hot.cycles = cycles;
            st.regs[aRd] = cursor;
            st.regs[aRd2] = link;
            st.regs[hRd] = masked;
            st.regs[hRd2] = shifted;
            st.regs[hRs2] = out;
            return next;
        }
        // Materialise the live-in registers in host locals: the
        // constituent ops read and write r[], and the architectural
        // file sees one write-back of the defined registers at block
        // exit — the formation-computed dataflow masks turn two full
        // register-file copies into a few scalar moves.  A self-looping
        // block (terminator branching back to its own head) iterates
        // HERE while the budget covers another full run: guards are
        // event-invariant and the register file stays local across
        // iterations, so the whole loop pays one dispatch, one guard
        // check and one register round trip instead of one per
        // iteration.
        std::uint64_t r[kPpuRegs];
        for (unsigned m = sb.liveIn; m != 0; m &= m - 1) {
            const unsigned i = static_cast<unsigned>(std::countr_zero(m));
            r[i] = st.regs[i];
        }
        const DecodedInstr *const ops = sb.ops.data();
        const std::uint32_t nOps =
            static_cast<std::uint32_t>(sb.ops.size());
        for (;;) {
            // Duff-style positional unroll: each block position gets
            // its own inlined op switch, i.e. its own host indirect
            // branch — per-position successor history for the branch
            // predictor, like the outer loop's per-op dispatch labels,
            // instead of one shared (serially mispredicting) site.
            const DecodedInstr *o = ops;
            for (std::uint32_t rem = nOps; rem != 0;) {
                switch (rem > 8 ? 8 : rem) {
                  case 8: execBlockOp(*o++, r, st, hot); [[fallthrough]];
                  case 7: execBlockOp(*o++, r, st, hot); [[fallthrough]];
                  case 6: execBlockOp(*o++, r, st, hot); [[fallthrough]];
                  case 5: execBlockOp(*o++, r, st, hot); [[fallthrough]];
                  case 4: execBlockOp(*o++, r, st, hot); [[fallthrough]];
                  case 3: execBlockOp(*o++, r, st, hot); [[fallthrough]];
                  case 2: execBlockOp(*o++, r, st, hot); [[fallthrough]];
                  default: execBlockOp(*o++, r, st, hot);
                }
                rem -= rem > 8 ? 8 : rem;
            }
            hot.cycles += sb.cycles; // exact architectural total
            next = sb.fallthrough;
            if (sb.hasTerm) {
                const DecodedInstr &t = sb.term;
                switch (t.op) {
                  case DecodedOp::kHalt: next = kCtrlHalt; break;
                  case DecodedOp::kJmp: next = t.target; break;
                  case DecodedOp::kBeq:
                    next = r[t.rs] == r[t.rt] ? t.target : sb.fallthrough;
                    break;
                  case DecodedOp::kBne:
                    next = r[t.rs] != r[t.rt] ? t.target : sb.fallthrough;
                    break;
                  case DecodedOp::kBlt:
                    next = static_cast<std::int64_t>(r[t.rs]) <
                                   static_cast<std::int64_t>(r[t.rt])
                               ? t.target
                               : sb.fallthrough;
                    break;
                  case DecodedOp::kBge:
                    next = static_cast<std::int64_t>(r[t.rs]) >=
                                   static_cast<std::int64_t>(r[t.rt])
                               ? t.target
                               : sb.fallthrough;
                    break;
                  default: {
                    // Fused ALU+branch terminator: apply the ALU half
                    // to the local file, then branch on the value.
                    std::uint64_t v;
                    if (t.op == DecodedOp::kSubBeq ||
                        t.op == DecodedOp::kSubBne)
                        v = r[t.rs] - r[t.rt];
                    else if (t.op == DecodedOp::kAndiBeq ||
                             t.op == DecodedOp::kAndiBne)
                        v = r[t.rs] & static_cast<std::uint64_t>(t.imm);
                    else
                        v = r[t.rs] + static_cast<std::uint64_t>(t.imm);
                    r[t.rd] = v;
                    bool taken;
                    switch (t.op) {
                      case DecodedOp::kAddiBeq:
                      case DecodedOp::kAndiBeq:
                      case DecodedOp::kSubBeq:
                        taken = v == r[t.rt2];
                        break;
                      case DecodedOp::kAddiBne:
                      case DecodedOp::kAndiBne:
                      case DecodedOp::kSubBne:
                        taken = v != r[t.rt2];
                        break;
                      case DecodedOp::kAddiBlt:
                        taken = static_cast<std::int64_t>(v) <
                                static_cast<std::int64_t>(r[t.rt2]);
                        break;
                      default: // kAddiBge
                        taken = static_cast<std::int64_t>(v) >=
                                static_cast<std::int64_t>(r[t.rt2]);
                        break;
                    }
                    next = taken ? t.target : sb.fallthrough;
                    break;
                  }
                }
            }
            if (next != ip || hot.cycles + sb.cycles > hot.maxSteps)
                break;
        }
        for (unsigned m = sb.defs; m != 0; m &= m - 1) {
            const unsigned i = static_cast<unsigned>(std::countr_zero(m));
            st.regs[i] = r[i];
        }
        return next;
    }
    // Slow path: the budget cannot cover the run or a guard failed.
    // Execute the head's original op through the handler table; control
    // then falls into the interior slots, which kept their original
    // decoded ops — charging and trapping exactly as the reference.
    return dispatchSlow(sb.head, ip, st, hot);
}

// ---- fused macro-ops -------------------------------------------------
//
// Every fused body applies its first architectural op unconditionally
// (the dispatcher guaranteed at least one cycle of budget), then takes
// one of two routes:
//
//  - fast path (the overwhelmingly common case): the whole macro-op
//    fits in the remaining step budget, so the cycle counter advances
//    once by the architectural cost and the remaining effects run
//    checkless.  Traps can only occur in the *final* architectural op
//    of every fused pattern, and the reference interpreter charges all
//    preceding fetches before such a trap — so bulk-charging first is
//    exact.
//  - slow path: the budget expires inside the macro-op.  Effects and
//    cycle charges are applied op by op, stopping precisely where the
//    reference interpreter's fetch loop would — the differential
//    fuzzer drives this path with tiny step budgets.

/** li/add feeding a prefetch: value forwards straight into the emit. */
#define EPF_FUSED_EMIT_PAIR(Name, VEXPR, TAG, CB)                           \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        const std::uint64_t v = (VEXPR);                                    \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 2;                                                \
            emitOne(st, hot, v, (TAG), (CB));                               \
            return ip + 1;                                                  \
        }                                                                   \
        ++hot.cycles; /* budget ends between the halves */                  \
        return kCtrlStep;                                                   \
    }

EPF_FUSED_EMIT_PAIR(LiPrefetch, static_cast<std::uint64_t>(d.imm), -1,
                    kNoKernel)
EPF_FUSED_EMIT_PAIR(LiPrefetchTag, static_cast<std::uint64_t>(d.imm),
                    static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_EMIT_PAIR(LiPrefetchCb, static_cast<std::uint64_t>(d.imm), -1,
                    static_cast<KernelId>(d.imm2))
EPF_FUSED_EMIT_PAIR(AddPrefetch, st.regs[d.rs] + st.regs[d.rt], -1,
                    kNoKernel)
EPF_FUSED_EMIT_PAIR(AddPrefetchTag, st.regs[d.rs] + st.regs[d.rt],
                    static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_EMIT_PAIR(AddPrefetchCb, st.regs[d.rs] + st.regs[d.rt], -1,
                    static_cast<KernelId>(d.imm2))
#undef EPF_FUSED_EMIT_PAIR

EPF_BODY(AddiLdLine)
{
    const std::uint64_t addr =
        st.regs[d.rs] + static_cast<std::uint64_t>(d.imm);
    st.regs[d.rd] = addr;
    if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {
        hot.cycles += 2;
        if (!st.ctx->hasLine)
            return kCtrlTrap; // both fetches charged, as in the reference
        st.regs[d.rd2] = lineWord64(st, addr, d.imm2);
        return ip + 1;
    }
    ++hot.cycles;
    return kCtrlStep;
}

/** and/andi feeding a shift: the mask idiom without the tail. */
#define EPF_FUSED_SHIFT_PAIR(Name, VEXPR)                                   \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        const std::uint64_t v = (VEXPR);                                    \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 2;                                                \
            st.regs[d.rd2] = v << d.imm2; /* imm2 pre-masked */             \
            return ip + 1;                                                  \
        }                                                                   \
        ++hot.cycles;                                                       \
        return kCtrlStep;                                                   \
    }

EPF_FUSED_SHIFT_PAIR(AndiShli,
                     st.regs[d.rs] & static_cast<std::uint64_t>(d.imm))
EPF_FUSED_SHIFT_PAIR(AndShli, st.regs[d.rs] & st.regs[d.rt])
#undef EPF_FUSED_SHIFT_PAIR

/** Compare+branch pairs: the ALU result feeds the branch condition. */
#define EPF_FUSED_BR_PAIR(Name, VEXPR, COND)                                \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        const std::uint64_t v = (VEXPR);                                    \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 2 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 2;                                                \
            return (COND) ? d.target : ip + 1;                              \
        }                                                                   \
        ++hot.cycles;                                                       \
        return kCtrlStep;                                                   \
    }

EPF_FUSED_BR_PAIR(AddiBeq, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  v == st.regs[d.rt2])
EPF_FUSED_BR_PAIR(AddiBne, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  v != st.regs[d.rt2])
EPF_FUSED_BR_PAIR(AddiBlt, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  static_cast<std::int64_t>(v) <
                      static_cast<std::int64_t>(st.regs[d.rt2]))
EPF_FUSED_BR_PAIR(AddiBge, st.regs[d.rs] + static_cast<std::uint64_t>(d.imm),
                  static_cast<std::int64_t>(v) >=
                      static_cast<std::int64_t>(st.regs[d.rt2]))
EPF_FUSED_BR_PAIR(AndiBeq, st.regs[d.rs] & static_cast<std::uint64_t>(d.imm),
                  v == st.regs[d.rt2])
EPF_FUSED_BR_PAIR(AndiBne, st.regs[d.rs] & static_cast<std::uint64_t>(d.imm),
                  v != st.regs[d.rt2])
EPF_FUSED_BR_PAIR(SubBeq, st.regs[d.rs] - st.regs[d.rt],
                  v == st.regs[d.rt2])
EPF_FUSED_BR_PAIR(SubBne, st.regs[d.rs] - st.regs[d.rt],
                  v != st.regs[d.rt2])
#undef EPF_FUSED_BR_PAIR

/**
 * The whole hash idiom as one op: mask (immediate or register), shift,
 * rebase, prefetch.  Register layout (see tryFuseHash): the and writes
 * rd, the shli writes rd2 (shift amount in rt for the immediate-mask
 * form, in imm for the register-mask form), the add writes rs2 with
 * second operand rt2, and the prefetch emits the add's result.  The
 * chained value rides in @c v the whole way.
 */
#define EPF_FUSED_HASH(Name, MASKEXPR, SHIFTEXPR, TAG, CB)                  \
    EPF_BODY(Name)                                                          \
    {                                                                       \
        std::uint64_t v = (MASKEXPR);                                       \
        st.regs[d.rd] = v;                                                  \
        if (hot.cycles + 4 <= hot.maxSteps) [[likely]] {                    \
            hot.cycles += 4;                                                \
            v <<= (SHIFTEXPR);                                              \
            st.regs[d.rd2] = v;                                             \
            v += st.regs[d.rt2];                                            \
            st.regs[d.rs2] = v;                                             \
            emitOne(st, hot, v, (TAG), (CB));                               \
            return ip + 1;                                                  \
        }                                                                   \
        ++hot.cycles; /* budget expires inside: stop op by op */            \
        if (hot.cycles >= hot.maxSteps)                                     \
            return kCtrlStep;                                               \
        ++hot.cycles;                                                       \
        v <<= (SHIFTEXPR);                                                  \
        st.regs[d.rd2] = v;                                                 \
        if (hot.cycles >= hot.maxSteps)                                     \
            return kCtrlStep;                                               \
        ++hot.cycles;                                                       \
        v += st.regs[d.rt2];                                                \
        st.regs[d.rs2] = v;                                                 \
        return kCtrlStep; /* the prefetch would have been op 4 */           \
    }

EPF_FUSED_HASH(HashiPrefetch,
               st.regs[d.rs] & static_cast<std::uint64_t>(d.imm), d.rt, -1,
               kNoKernel)
EPF_FUSED_HASH(HashiPrefetchTag,
               st.regs[d.rs] & static_cast<std::uint64_t>(d.imm), d.rt,
               static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_HASH(HashiPrefetchCb,
               st.regs[d.rs] & static_cast<std::uint64_t>(d.imm), d.rt, -1,
               static_cast<KernelId>(d.imm2))
EPF_FUSED_HASH(HashrPrefetch, st.regs[d.rs] & st.regs[d.rt], d.imm, -1,
               kNoKernel)
EPF_FUSED_HASH(HashrPrefetchTag, st.regs[d.rs] & st.regs[d.rt], d.imm,
               static_cast<std::int32_t>(d.imm2), kNoKernel)
EPF_FUSED_HASH(HashrPrefetchCb, st.regs[d.rs] & st.regs[d.rt], d.imm, -1,
               static_cast<KernelId>(d.imm2))
#undef EPF_FUSED_HASH

#undef EPF_BODY

// Function-pointer handlers: thin address-taken wrappers around the
// bodies (the bodies themselves stay freely inlinable at the computed-
// goto labels).
#define EPF_HANDLER(Name)                                                   \
    std::uint32_t op##Name(const DecodedInstr &d, std::uint32_t ip,         \
                           ExecState &st, Hot &hot)                         \
    {                                                                       \
        return x##Name(d, ip, st, hot);                                     \
    }
EPF_DECODED_OPS(EPF_HANDLER, EPF_HANDLER)
#undef EPF_HANDLER

#define EPF_HANDLER_ENTRY(Name) &op##Name,
constexpr detail::Handler kHandlers[] = {
    EPF_DECODED_OPS(EPF_HANDLER_ENTRY, EPF_HANDLER_ENTRY)};
#undef EPF_HANDLER_ENTRY

std::uint32_t
dispatchSlow(const DecodedInstr &d, std::uint32_t ip, ExecState &st,
             Hot &hot)
{
    return kHandlers[static_cast<unsigned>(d.op)](d, ip, st, hot);
}

bool
isCondBranch(Opcode op)
{
    return op == Opcode::kBeq || op == Opcode::kBne || op == Opcode::kBlt ||
           op == Opcode::kBge;
}

DecodedOp
condBranchOp(Opcode op)
{
    switch (op) {
      case Opcode::kBeq: return DecodedOp::kBeq;
      case Opcode::kBne: return DecodedOp::kBne;
      case Opcode::kBlt: return DecodedOp::kBlt;
      default: return DecodedOp::kBge;
    }
}

/**
 * Decode one instruction standing alone, hoisting statically-provable
 * traps and pre-extracting operands.
 */
DecodedInstr
decodeSingle(const Instr &in)
{
    DecodedInstr d;
    d.rd = in.rd;
    d.rs = in.rs;
    d.rt = in.rt;
    d.imm = in.imm;
    d.archCycles = 1;
    switch (in.op) {
      case Opcode::kHalt: d.op = DecodedOp::kHalt; break;
      case Opcode::kNop: d.op = DecodedOp::kNop; break;
      case Opcode::kLi: d.op = DecodedOp::kLi; break;
      case Opcode::kMov: d.op = DecodedOp::kMov; break;
      case Opcode::kAdd: d.op = DecodedOp::kAdd; break;
      case Opcode::kSub: d.op = DecodedOp::kSub; break;
      case Opcode::kMul: d.op = DecodedOp::kMul; break;
      case Opcode::kDiv: d.op = DecodedOp::kDiv; break;
      case Opcode::kAnd: d.op = DecodedOp::kAnd; break;
      case Opcode::kOr: d.op = DecodedOp::kOr; break;
      case Opcode::kXor: d.op = DecodedOp::kXor; break;
      case Opcode::kShl: d.op = DecodedOp::kShl; break;
      case Opcode::kShr: d.op = DecodedOp::kShr; break;
      case Opcode::kAddi: d.op = DecodedOp::kAddi; break;
      case Opcode::kMuli: d.op = DecodedOp::kMuli; break;
      case Opcode::kDivi:
        // A zero immediate divisor always traps; the verifier owns the
        // proof (analysis::alwaysTraps), the decoder just consumes it.
        d.op = analysis::alwaysTraps(in) ? DecodedOp::kTrap
                                         : DecodedOp::kDivi;
        break;
      case Opcode::kAndi: d.op = DecodedOp::kAndi; break;
      case Opcode::kShli:
        d.op = DecodedOp::kShli;
        d.imm = in.imm & 63;
        break;
      case Opcode::kShri:
        d.op = DecodedOp::kShri;
        d.imm = in.imm & 63;
        break;
      case Opcode::kVaddr: d.op = DecodedOp::kVaddr; break;
      case Opcode::kLineBase: d.op = DecodedOp::kLineBase; break;
      case Opcode::kLdLine: d.op = DecodedOp::kLdLine; break;
      case Opcode::kLdLine32: d.op = DecodedOp::kLdLine32; break;
      case Opcode::kGread:
        // An out-of-range global index always traps: hoist the
        // verifier's fact.
        d.op = analysis::alwaysTraps(in) ? DecodedOp::kTrap
                                         : DecodedOp::kGread;
        break;
      case Opcode::kLookahead:
        // Only the negative-index trap is context-free (the installed
        // filter count is a run-time property), so this hoists exactly
        // what the verifier proves without a KernelContext.
        d.op = analysis::alwaysTraps(in) ? DecodedOp::kTrap
                                         : DecodedOp::kLookahead;
        break;
      case Opcode::kPrefetch: d.op = DecodedOp::kPrefetch; break;
      case Opcode::kPrefetchTag: d.op = DecodedOp::kPrefetchTag; break;
      case Opcode::kPrefetchCb: d.op = DecodedOp::kPrefetchCb; break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
        d.op = condBranchOp(in.op);
        break;
      case Opcode::kJmp: d.op = DecodedOp::kJmp; break;
      default:
        // Out-of-enum opcode byte (only constructible from raw Instr
        // structs): the reference switch falls through its cases and
        // executes it as a charged no-op — match that, don't trap.
        d.op = DecodedOp::kNop;
        break;
    }
    return d;
}

/** Does @p b chain on @p a (reads exactly a's destination register)? */
bool
chains(const Instr &a, std::uint8_t consumerReg)
{
    return consumerReg == a.rd;
}

/**
 * Try to fuse the pair (@p a, @p b) into one macro-op.  Every pattern
 * requires the second op to *chain* on the first (consume its rd), so
 * the body can forward the value through a host local — the reads and
 * writes still happen in architectural order, so semantics are exact.
 * Returns true and fills @p out (branch targets patched later).
 */
bool
tryFusePair(const Instr &a, const Instr &b, DecodedInstr &out)
{
    DecodedOp op = DecodedOp::kOpCount_;
    switch (a.op) {
      case Opcode::kLi:
        if (b.op == Opcode::kPrefetch && chains(a, b.rs))
            op = DecodedOp::kLiPrefetch;
        else if (b.op == Opcode::kPrefetchTag && chains(a, b.rs))
            op = DecodedOp::kLiPrefetchTag;
        else if (b.op == Opcode::kPrefetchCb && chains(a, b.rs))
            op = DecodedOp::kLiPrefetchCb;
        break;
      case Opcode::kAdd:
        if (b.op == Opcode::kPrefetch && chains(a, b.rs))
            op = DecodedOp::kAddPrefetch;
        else if (b.op == Opcode::kPrefetchTag && chains(a, b.rs))
            op = DecodedOp::kAddPrefetchTag;
        else if (b.op == Opcode::kPrefetchCb && chains(a, b.rs))
            op = DecodedOp::kAddPrefetchCb;
        break;
      case Opcode::kAddi:
        if (b.op == Opcode::kLdLine && chains(a, b.rs))
            op = DecodedOp::kAddiLdLine;
        else if (isCondBranch(b.op) && chains(a, b.rs)) {
            switch (b.op) {
              case Opcode::kBeq: op = DecodedOp::kAddiBeq; break;
              case Opcode::kBne: op = DecodedOp::kAddiBne; break;
              case Opcode::kBlt: op = DecodedOp::kAddiBlt; break;
              default: op = DecodedOp::kAddiBge; break;
            }
        }
        break;
      case Opcode::kAndi:
        if (b.op == Opcode::kShli && chains(a, b.rs))
            op = DecodedOp::kAndiShli;
        else if (b.op == Opcode::kBeq && chains(a, b.rs))
            op = DecodedOp::kAndiBeq;
        else if (b.op == Opcode::kBne && chains(a, b.rs))
            op = DecodedOp::kAndiBne;
        break;
      case Opcode::kAnd:
        if (b.op == Opcode::kShli && chains(a, b.rs))
            op = DecodedOp::kAndShli;
        break;
      case Opcode::kSub:
        if (b.op == Opcode::kBeq && chains(a, b.rs))
            op = DecodedOp::kSubBeq;
        else if (b.op == Opcode::kBne && chains(a, b.rs))
            op = DecodedOp::kSubBne;
        break;
      default:
        break;
    }
    if (op == DecodedOp::kOpCount_)
        return false;

    out = DecodedInstr{};
    out.op = op;
    out.rd = a.rd;
    out.rs = a.rs;
    out.rt = a.rt;
    out.imm = a.imm; // no fusion pattern leads with a shift
    out.rd2 = b.rd;
    out.rs2 = b.rs;
    out.rt2 = b.rt;
    out.imm2 = b.op == Opcode::kShli ? (b.imm & 63) : b.imm;
    out.archCycles = 2;
    return true;
}

/**
 * Try to fuse the full hash idiom (and/andi + shli + add + prefetch*)
 * into one macro-op.  The chain and/andi.rd -> shli.rs, shli.rd ->
 * add operand, add.rd -> prefetch.rs must hold exactly (the add may
 * take the shifted value on either side — addition commutes).
 *
 * Register slot layout in the DecodedInstr (tight on purpose, to keep
 * the struct at one size for every op):
 *   rd   and/andi destination      rs/rt (+imm)  and/andi sources
 *   rt   shift amount (imm-mask form only; reg form keeps it in imm)
 *   rd2  shli destination
 *   rs2  add destination           rt2  add's non-chained operand
 *   imm2 prefetch tag / callback id
 */
bool
tryFuseHash(const Instr &a, const Instr &b, const Instr &c,
            const Instr &p, DecodedInstr &out)
{
    if (a.op != Opcode::kAnd && a.op != Opcode::kAndi)
        return false;
    if (b.op != Opcode::kShli || !chains(a, b.rs))
        return false;
    if (c.op != Opcode::kAdd)
        return false;
    std::uint8_t other;
    if (c.rs == b.rd)
        other = c.rt;
    else if (c.rt == b.rd)
        other = c.rs;
    else
        return false;
    if (p.op != Opcode::kPrefetch && p.op != Opcode::kPrefetchTag &&
        p.op != Opcode::kPrefetchCb)
        return false;
    if (!chains(c, p.rs))
        return false;

    out = DecodedInstr{};
    const bool immMask = a.op == Opcode::kAndi;
    switch (p.op) {
      case Opcode::kPrefetch:
        out.op = immMask ? DecodedOp::kHashiPrefetch
                         : DecodedOp::kHashrPrefetch;
        break;
      case Opcode::kPrefetchTag:
        out.op = immMask ? DecodedOp::kHashiPrefetchTag
                         : DecodedOp::kHashrPrefetchTag;
        break;
      default:
        out.op = immMask ? DecodedOp::kHashiPrefetchCb
                         : DecodedOp::kHashrPrefetchCb;
        break;
    }
    out.rd = a.rd;
    out.rs = a.rs;
    if (immMask) {
        out.imm = a.imm;
        out.rt = static_cast<std::uint8_t>(b.imm & 63);
    } else {
        out.rt = a.rt;
        out.imm = b.imm & 63;
    }
    out.rd2 = b.rd;
    out.rs2 = c.rd;
    out.rt2 = other;
    out.imm2 = p.imm;
    out.archCycles = 4;
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

namespace
{

/** How superblock formation treats one decoded slot. */
enum class SlotKind
{
    kBody,  ///< joins a run (possibly behind a block-entry guard)
    kProof, ///< joins only when the trap-free bitmap proves the pc
    kTerm,  ///< branch/jmp/halt: may close a run as its terminator
    kStop,  ///< never joins (kTrap, kBoundary, unknown)
};

SlotKind
slotKind(DecodedOp op)
{
    switch (op) {
      case DecodedOp::kNop:
      case DecodedOp::kLi:
      case DecodedOp::kMov:
      case DecodedOp::kAdd:
      case DecodedOp::kSub:
      case DecodedOp::kMul:
      case DecodedOp::kAnd:
      case DecodedOp::kOr:
      case DecodedOp::kXor:
      case DecodedOp::kShl:
      case DecodedOp::kShr:
      case DecodedOp::kAddi:
      case DecodedOp::kMuli:
      case DecodedOp::kAndi:
      case DecodedOp::kShli:
      case DecodedOp::kShri:
      case DecodedOp::kVaddr:
      case DecodedOp::kLineBase:
      case DecodedOp::kPrefetch:
      case DecodedOp::kPrefetchTag:
      case DecodedOp::kPrefetchCb:
      case DecodedOp::kLiPrefetch:
      case DecodedOp::kLiPrefetchTag:
      case DecodedOp::kLiPrefetchCb:
      case DecodedOp::kAddPrefetch:
      case DecodedOp::kAddPrefetchTag:
      case DecodedOp::kAddPrefetchCb:
      case DecodedOp::kAndiShli:
      case DecodedOp::kAndShli:
      case DecodedOp::kHashiPrefetch:
      case DecodedOp::kHashiPrefetchTag:
      case DecodedOp::kHashiPrefetchCb:
      case DecodedOp::kHashrPrefetch:
      case DecodedOp::kHashrPrefetchTag:
      case DecodedOp::kHashrPrefetchCb:
      // Conditionally-trapping ops whose only trap condition is an
      // event property the block-entry guard checks:
      case DecodedOp::kLdLine:
      case DecodedOp::kLdLine32:
      case DecodedOp::kAddiLdLine:
      case DecodedOp::kGread:
      case DecodedOp::kLookahead:
        return SlotKind::kBody;
      case DecodedOp::kDiv:
      case DecodedOp::kDivi:
        return SlotKind::kProof;
      case DecodedOp::kHalt:
      case DecodedOp::kJmp:
      case DecodedOp::kBeq:
      case DecodedOp::kBne:
      case DecodedOp::kBlt:
      case DecodedOp::kBge:
      case DecodedOp::kAddiBeq:
      case DecodedOp::kAddiBne:
      case DecodedOp::kAddiBlt:
      case DecodedOp::kAddiBge:
      case DecodedOp::kAndiBeq:
      case DecodedOp::kAndiBne:
      case DecodedOp::kSubBeq:
      case DecodedOp::kSubBne:
        return SlotKind::kTerm;
      default:
        return SlotKind::kStop;
    }
}

/** Prefetches one decoded slot emits when it executes fully. */
std::uint32_t
slotEmits(DecodedOp op)
{
    switch (op) {
      case DecodedOp::kPrefetch:
      case DecodedOp::kPrefetchTag:
      case DecodedOp::kPrefetchCb:
      case DecodedOp::kLiPrefetch:
      case DecodedOp::kLiPrefetchTag:
      case DecodedOp::kLiPrefetchCb:
      case DecodedOp::kAddPrefetch:
      case DecodedOp::kAddPrefetchTag:
      case DecodedOp::kAddPrefetchCb:
      case DecodedOp::kHashiPrefetch:
      case DecodedOp::kHashiPrefetchTag:
      case DecodedOp::kHashiPrefetchCb:
      case DecodedOp::kHashrPrefetch:
      case DecodedOp::kHashrPrefetchTag:
      case DecodedOp::kHashrPrefetchCb:
        return 1;
      default:
        return 0;
    }
}

} // namespace

DecodedKernel::DecodedKernel(const Kernel &k, bool superblocks)
    : src_(k.code), superblocksEnabled_(superblocks)
{
    const std::size_t size = src_.size();

    // Decode-time value analysis.  Programs are interned by code
    // content and run under arbitrary events, so the context must
    // assume nothing the runtime does not guarantee: line payload
    // unknown, globals possibly absent (EventContext.globalRegs may be
    // null), no installed lookahead filters.  Every fact the analysis
    // proves under this context therefore holds universally, which is
    // what makes trapFreePc_ usable as the superblock region oracle
    // and makes hoisting refined always-traps to kTrap sound.
    analysis::KernelContext dctx;
    dctx.line = analysis::KernelContext::Line::kUnknown;
    dctx.globalsPresent = false;
    dctx.lookaheadEntries = -1;
    const analysis::DataflowResult df = analysis::analyzeDataflow(k, dctx);
    trapFreePc_.assign(size, 0);
    for (std::size_t pc = 0; pc < size; ++pc)
        trapFreePc_[pc] = df.provenTrapFree(pc) ? 1 : 0;

    // Control-flow joins: fusing across a branch target would let a
    // taken branch skip into the middle of a macro-op, so a slot whose
    // original index is a target can only start one.
    std::vector<std::uint8_t> isTarget(size + 1, 0);
    for (std::size_t i = 0; i < size; ++i) {
        const Instr &in = src_[i];
        if (isCondBranch(in.op) || in.op == Opcode::kJmp) {
            const std::int64_t t =
                static_cast<std::int64_t>(i) + 1 + in.imm;
            if (t >= 0 && t <= static_cast<std::int64_t>(size))
                isTarget[static_cast<std::size_t>(t)] = 1;
        }
    }
    auto joinFree = [&isTarget](std::size_t from, std::size_t to) {
        for (std::size_t j = from; j <= to; ++j)
            if (isTarget[j])
                return false;
        return true;
    };

    std::vector<std::uint32_t> origToDecoded(size + 1, 0);
    struct Patch
    {
        std::uint32_t at;
        std::int64_t origTarget;
    };
    std::vector<Patch> patches;

    prog_.reserve(size + 1);
    /** First arch pc of each decoded slot (for the region oracle). */
    std::vector<std::uint32_t> slotArch;
    slotArch.reserve(size + 1);
    std::size_t i = 0;
    while (i < size) {
        const auto slot = static_cast<std::uint32_t>(prog_.size());
        origToDecoded[i] = slot;
        slotArch.push_back(static_cast<std::uint32_t>(i));
        DecodedInstr d;
        std::size_t consumed = 1;
        if (i < df.alwaysTrapsPc.size() && df.alwaysTrapsPc[i]) {
            // Dataflow-refined guaranteed trap (e.g. a div whose
            // divisor interval is exactly [0,0]).  decodeSingle only
            // hoists the context-free cases; this extends the same
            // kTrap hoist to value-proven ones.  kTrap charges one
            // cycle and writes nothing — exactly what the reference
            // interpreter does when the instruction traps — so timing
            // and register state stay bit-identical.  No fusion
            // pattern consumes a div, so checking before the fusion
            // attempts cannot break a macro-op.
            d = decodeSingle(src_[i]);
            d.op = DecodedOp::kTrap;
        } else if (i + 3 < size && joinFree(i + 1, i + 3) &&
            tryFuseHash(src_[i], src_[i + 1], src_[i + 2], src_[i + 3],
                        d)) {
            consumed = 4;
        } else if (i + 1 < size && !isTarget[i + 1] &&
                   tryFusePair(src_[i], src_[i + 1], d)) {
            consumed = 2;
            if (isCondBranch(src_[i + 1].op))
                patches.push_back({slot, static_cast<std::int64_t>(i + 1) +
                                             1 + src_[i + 1].imm});
        } else {
            d = decodeSingle(src_[i]);
            if (isCondBranch(src_[i].op) || src_[i].op == Opcode::kJmp)
                patches.push_back(
                    {slot,
                     static_cast<std::int64_t>(i) + 1 + src_[i].imm});
        }
        if (consumed > 1)
            ++fusedPairs_;
        for (std::size_t j = 1; j < consumed; ++j)
            origToDecoded[i + j] = slot; // never branch targets
        prog_.push_back(d);
        i += consumed;
    }
    origToDecoded[size] = static_cast<std::uint32_t>(prog_.size());

    // The synthetic boundary slot: falling past the last instruction
    // (or branching anywhere outside [0, size)) lands here and traps,
    // which lets the dispatcher skip per-op bounds checks entirely.
    DecodedInstr boundary;
    boundary.op = DecodedOp::kBoundary;
    prog_.push_back(boundary);

    const auto n = static_cast<std::uint32_t>(prog_.size() - 1);
    for (const Patch &p : patches) {
        prog_[p.at].target =
            (p.origTarget >= 0 &&
             p.origTarget < static_cast<std::int64_t>(size))
                ? origToDecoded[static_cast<std::size_t>(p.origTarget)]
                : n;
    }

    // ---- superblock formation ---------------------------------------
    // Identify maximal straight-line runs of decoded slots between CFG
    // leaders in reachable blocks, and rewrite each run's HEAD slot to
    // kSuperblock (interior slots keep their ops for the slow path and
    // branch targets keep their decoded indices — only heads are
    // leaders or follow an excluded slot, never run interiors).  Runs
    // must run after branch-target patching so the terminator copies
    // carry resolved absolute targets.
    if (!superblocks || size == 0)
        return;
    const analysis::Cfg cfg(src_, df.alwaysTrapsPc);
    const std::vector<analysis::BlockWeight> weights =
        analysis::blockWeights(cfg, src_);

    // Every arch pc of the slot proven trap-free by the region oracle?
    auto slotProven = [&](std::uint32_t s) {
        const std::uint32_t first = slotArch[s];
        for (std::uint32_t a = 0; a < prog_[s].archCycles; ++a)
            if (!trapFreePc_[first + a])
                return false;
        return true;
    };
    auto joins = [&](std::uint32_t s) {
        const SlotKind kind = slotKind(prog_[s].op);
        return kind == SlotKind::kBody ||
               (kind == SlotKind::kProof && slotProven(s));
    };

    for (std::uint32_t b = 0; b < cfg.size(); ++b) {
        const analysis::Block &blk = cfg.blocks()[b];
        if (!blk.reachable)
            continue;
        // The block's decoded slot range (fused slots never straddle
        // leaders, so arch->slot maps are exact at both ends).
        const std::int64_t s0 = origToDecoded[blk.first];
        const std::int64_t s1 = origToDecoded[blk.last];
        const bool endsInTerm = slotKind(prog_[s1].op) == SlotKind::kTerm;
        const std::int64_t bodyEnd = endsInTerm ? s1 - 1 : s1;

        std::int64_t s = s0;
        while (s <= bodyEnd) {
            if (!joins(static_cast<std::uint32_t>(s))) {
                ++s;
                continue;
            }
            std::int64_t e = s;
            while (e + 1 <= bodyEnd &&
                   joins(static_cast<std::uint32_t>(e + 1)))
                ++e;
            const bool withTerm = endsInTerm && e == s1 - 1;
            const std::int64_t nSlots = e - s + 1 + (withTerm ? 1 : 0);
            if (nSlots < 2) { // a single slot gains nothing
                s = e + 1;
                continue;
            }

            SuperBlock sb;
            sb.head = prog_[s];
            // Register dataflow summary: a read only becomes live-in
            // while its register has no preceding write in the run.
            static_assert(kPpuRegs <= 16, "masks are one 16-bit word");
            auto read = [&sb](unsigned reg) {
                if (!((sb.defs >> reg) & 1u))
                    sb.liveIn = static_cast<std::uint16_t>(sb.liveIn |
                                                           (1u << reg));
            };
            auto write = [&sb](unsigned reg) {
                sb.defs =
                    static_cast<std::uint16_t>(sb.defs | (1u << reg));
            };
            auto classify = [&](const DecodedInstr &o) {
                switch (o.op) {
                  case DecodedOp::kNop:
                    break;
                  case DecodedOp::kLi:
                  case DecodedOp::kVaddr:
                  case DecodedOp::kLineBase:
                  case DecodedOp::kGread:
                  case DecodedOp::kLookahead:
                  case DecodedOp::kLiPrefetch:
                  case DecodedOp::kLiPrefetchTag:
                  case DecodedOp::kLiPrefetchCb:
                    write(o.rd);
                    break;
                  case DecodedOp::kMov:
                  case DecodedOp::kAddi:
                  case DecodedOp::kMuli:
                  case DecodedOp::kDivi:
                  case DecodedOp::kAndi:
                  case DecodedOp::kShli:
                  case DecodedOp::kShri:
                  case DecodedOp::kLdLine:
                  case DecodedOp::kLdLine32:
                    read(o.rs);
                    write(o.rd);
                    break;
                  case DecodedOp::kAdd:
                  case DecodedOp::kSub:
                  case DecodedOp::kMul:
                  case DecodedOp::kDiv:
                  case DecodedOp::kAnd:
                  case DecodedOp::kOr:
                  case DecodedOp::kXor:
                  case DecodedOp::kShl:
                  case DecodedOp::kShr:
                  case DecodedOp::kAddPrefetch:
                  case DecodedOp::kAddPrefetchTag:
                  case DecodedOp::kAddPrefetchCb:
                    read(o.rs);
                    read(o.rt);
                    write(o.rd);
                    break;
                  case DecodedOp::kPrefetch:
                  case DecodedOp::kPrefetchTag:
                  case DecodedOp::kPrefetchCb:
                    read(o.rs);
                    break;
                  case DecodedOp::kAddiLdLine:
                  case DecodedOp::kAndiShli:
                    read(o.rs);
                    write(o.rd);
                    write(o.rd2);
                    break;
                  case DecodedOp::kAndShli:
                    read(o.rs);
                    read(o.rt);
                    write(o.rd);
                    write(o.rd2);
                    break;
                  case DecodedOp::kHashiPrefetch:
                  case DecodedOp::kHashiPrefetchTag:
                  case DecodedOp::kHashiPrefetchCb:
                    // o.rt holds the shift amount, not a register.
                    read(o.rs);
                    read(o.rt2);
                    write(o.rd);
                    write(o.rd2);
                    write(o.rs2);
                    break;
                  case DecodedOp::kHashrPrefetch:
                  case DecodedOp::kHashrPrefetchTag:
                  case DecodedOp::kHashrPrefetchCb:
                    read(o.rs);
                    read(o.rt);
                    read(o.rt2);
                    write(o.rd);
                    write(o.rd2);
                    write(o.rs2);
                    break;
                  default: // terminators; handled below
                    break;
                }
            };
            for (std::int64_t j = s; j <= e; ++j) {
                const DecodedInstr &o = prog_[j];
                sb.ops.push_back(o);
                sb.cycles += o.archCycles;
                sb.emits += slotEmits(o.op);
                classify(o);
                switch (o.op) {
                  case DecodedOp::kLdLine:
                  case DecodedOp::kLdLine32:
                  case DecodedOp::kAddiLdLine:
                    sb.needsLine = true;
                    break;
                  case DecodedOp::kGread:
                    sb.needsGlobals = true;
                    break;
                  case DecodedOp::kLookahead:
                    sb.lookaheadMax = std::max(sb.lookaheadMax, o.imm);
                    break;
                  default:
                    break;
                }
            }
            if (withTerm) {
                sb.term = prog_[s1];
                sb.hasTerm = true;
                sb.cycles += sb.term.archCycles;
                switch (sb.term.op) {
                  case DecodedOp::kHalt:
                  case DecodedOp::kJmp:
                    break;
                  case DecodedOp::kBeq:
                  case DecodedOp::kBne:
                  case DecodedOp::kBlt:
                  case DecodedOp::kBge:
                    read(sb.term.rs);
                    read(sb.term.rt);
                    break;
                  case DecodedOp::kSubBeq:
                  case DecodedOp::kSubBne:
                    read(sb.term.rs);
                    read(sb.term.rt);
                    read(sb.term.rt2);
                    write(sb.term.rd);
                    break;
                  default: // kAddiB*/kAndiB*: ALU half reads rs only
                    read(sb.term.rs);
                    read(sb.term.rt2);
                    write(sb.term.rd);
                    break;
                }
            }
            sb.fallthrough =
                static_cast<std::uint32_t>(e + 1 + (withTerm ? 1 : 0));
            // Shape recognition (block-level fusion): the chase-loop
            // idiom — bump+load a link, hash+prefetch it, branch back
            // to this block's own head — gets a dedicated dispatch-free
            // handler loop that keeps the whole loop-carried state in
            // host registers.  That requires proving, here at decode
            // time, that the canonical dataflow holds: the cursor is
            // bumped in place and never clobbered, the hash consumes
            // the loaded link, and every other operand (loop limit,
            // rebase addend, r-form mask) is invariant across the
            // block's writes.  Anything looser still executes as a
            // generic superblock.
            if (sb.hasTerm && sb.ops.size() == 2 &&
                sb.ops[0].op == DecodedOp::kAddiLdLine &&
                (sb.ops[1].op == DecodedOp::kHashiPrefetch ||
                 sb.ops[1].op == DecodedOp::kHashiPrefetchTag ||
                 sb.ops[1].op == DecodedOp::kHashiPrefetchCb ||
                 sb.ops[1].op == DecodedOp::kHashrPrefetch ||
                 sb.ops[1].op == DecodedOp::kHashrPrefetchTag ||
                 sb.ops[1].op == DecodedOp::kHashrPrefetchCb) &&
                (sb.term.op == DecodedOp::kBeq ||
                 sb.term.op == DecodedOp::kBne ||
                 sb.term.op == DecodedOp::kBlt ||
                 sb.term.op == DecodedOp::kBge) &&
                sb.term.target == static_cast<std::uint32_t>(s)) {
                const DecodedInstr &a = sb.ops[0];
                const DecodedInstr &h = sb.ops[1];
                const DecodedInstr &t = sb.term;
                const bool rform =
                    h.op == DecodedOp::kHashrPrefetch ||
                    h.op == DecodedOp::kHashrPrefetchTag ||
                    h.op == DecodedOp::kHashrPrefetchCb;
                auto written = [&](unsigned reg) {
                    return reg == a.rd || reg == a.rd2 || reg == h.rd ||
                           reg == h.rd2 || reg == h.rs2;
                };
                const bool cursorStable = a.rd == a.rs &&
                                          a.rd2 != a.rd && h.rd != a.rd &&
                                          h.rd2 != a.rd && h.rs2 != a.rd;
                if (cursorStable && h.rs == a.rd2 && t.rs == a.rd &&
                    !written(t.rt) && !written(h.rt2) &&
                    (!rform || !written(h.rt)))
                    sb.shape = SuperBlock::Shape::kChaseLoop;
            }
            // A run covering its whole basic block must agree with the
            // analyzer's exported block weight — the cost-bounds pass
            // and this bulk charge are the same accounting.
            if (s == s0 && (withTerm || e == s1)) {
                assert(sb.cycles == weights[b].cycles);
                assert(sb.emits == weights[b].emits);
                sb.cycles = weights[b].cycles;
                sb.emits = weights[b].emits;
            }

            DecodedInstr head;
            head.op = DecodedOp::kSuperblock;
            head.target = static_cast<std::uint32_t>(blocks_.size());
            head.archCycles = static_cast<std::uint8_t>(
                sb.cycles < 255 ? sb.cycles : 255); // informational
            prog_[s] = head;
            blocks_.push_back(std::move(sb));
            s = e + 1 + (withTerm ? 1 : 0);
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

namespace
{

ExecResult
runState(const DecodedInstr *const code, ExecState &st, unsigned max_steps,
         std::uint64_t *regs_out)
{
    // Raw storage: PrefetchEmit's default member initialisers would
    // otherwise zero the whole buffer on every event; emitOne writes
    // all fields of every entry it stages, so this never reads junk.
    static_assert(std::is_trivially_copyable_v<PrefetchEmit>);
    alignas(PrefetchEmit) std::byte
        stageRaw[sizeof(PrefetchEmit) * kStageCap];
    st.stage = reinterpret_cast<PrefetchEmit *>(stageRaw);
    st.flushed = 0;

    // Zero the architectural registers with plain stores: a memset of
    // 128 bytes compiles to a microcoded `rep stos` whose startup cost
    // is a measurable fraction of a whole short event.
    for (unsigned i = 0; i < kPpuRegs; ++i)
        st.regs[i] = 0;

    Hot hot;
    hot.cycles = 0;
    hot.emitted = 0;
    hot.maxSteps = max_steps;
    std::uint32_t ip = 0;
    std::uint32_t ctrl;

#if EPF_PREDECODE_THREADED
    {
        // Direct threading: every op body ends in its own indirect
        // branch, so the host branch predictor sees per-op successor
        // history instead of one central switch.  Ops that cannot
        // exit (plain ALU, branches, prefetch emits) skip the
        // control-code check after their body.
#define EPF_LABEL_ADDR(Name) &&lb_##Name,
        static const void *const kLabels[] = {
            EPF_DECODED_OPS(EPF_LABEL_ADDR, EPF_LABEL_ADDR)};
#undef EPF_LABEL_ADDR
        const DecodedInstr *d;
#define EPF_DISPATCH()                                                      \
    do {                                                                    \
        if (hot.cycles >= hot.maxSteps) {                                   \
            ctrl = kCtrlStep;                                               \
            goto exec_done;                                                 \
        }                                                                   \
        d = &code[ip];                                                      \
        goto *kLabels[static_cast<unsigned>(d->op)];                        \
    } while (0)
#define EPF_CASE_X(Name)                                                    \
    lb_##Name:                                                              \
        ip = x##Name(*d, ip, st, hot);                                      \
        if (ip >= kCtrlBase) {                                              \
            ctrl = ip;                                                      \
            goto exec_done;                                                 \
        }                                                                   \
        EPF_DISPATCH();
#define EPF_CASE_N(Name)                                                    \
    lb_##Name:                                                              \
        ip = x##Name(*d, ip, st, hot);                                      \
        EPF_DISPATCH();
        EPF_DISPATCH();
        EPF_DECODED_OPS(EPF_CASE_X, EPF_CASE_N)
#undef EPF_CASE_N
#undef EPF_CASE_X
#undef EPF_DISPATCH
    }
exec_done:;
#else
    for (;;) {
        if (hot.cycles >= hot.maxSteps) {
            ctrl = kCtrlStep;
            break;
        }
        const DecodedInstr &d = code[ip];
        ip = kHandlers[static_cast<unsigned>(d.op)](d, ip, st, hot);
        if (ip >= kCtrlBase) {
            ctrl = ip;
            break;
        }
    }
#endif

    if (hot.emitted != st.flushed)
        flushStage(st, hot.emitted);

    ExecResult res;
    res.cycles = hot.cycles;
    res.emitted = hot.emitted;
    res.exit = ctrl == kCtrlHalt
                   ? ExitReason::kHalted
                   : (ctrl == kCtrlTrap ? ExitReason::kTrapped
                                        : ExitReason::kStepLimit);
    if (regs_out != nullptr)
        std::memcpy(regs_out, st.regs, sizeof(st.regs));
    return res;
}

} // namespace

ExecResult
DecodedKernel::run(const DecodedKernel &dk, const EventContext &ctx,
                   const Interpreter::EmitFn &emit, unsigned max_steps,
                   std::uint64_t *regs_out)
{
    ExecState st;
    st.ctx = &ctx;
    st.emitVec = nullptr;
    st.emitFn = &emit;
    st.blocks = dk.blocks_.data();
    return runState(dk.prog_.data(), st, max_steps, regs_out);
}

ExecResult
DecodedKernel::run(const DecodedKernel &dk, const EventContext &ctx,
                   std::vector<PrefetchEmit> *sink, unsigned max_steps,
                   std::uint64_t *regs_out)
{
    static const Interpreter::EmitFn kNoFn;
    ExecState st;
    st.ctx = &ctx;
    st.emitVec = sink;
    st.emitFn = &kNoFn;
    st.blocks = dk.blocks_.data();
    return runState(dk.prog_.data(), st, max_steps, regs_out);
}

// ---------------------------------------------------------------------
// DecodeCache
// ---------------------------------------------------------------------

namespace
{

struct InternTable
{
    std::mutex mu;
    /** Content hash -> decoded programs with that hash. */
    std::unordered_map<std::uint64_t,
                       std::vector<std::shared_ptr<const DecodedKernel>>>
        byHash;
    std::size_t count = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

InternTable &
internTable()
{
    static InternTable t;
    return t;
}

/** FNV-1a over the semantic fields of the code (names excluded). */
std::uint64_t
codeHash(const std::vector<Instr> &code)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ULL;
        }
    };
    for (const Instr &in : code) {
        mix(static_cast<std::uint64_t>(in.op) |
            (static_cast<std::uint64_t>(in.rd) << 8) |
            (static_cast<std::uint64_t>(in.rs) << 16) |
            (static_cast<std::uint64_t>(in.rt) << 24));
        mix(static_cast<std::uint64_t>(in.imm));
    }
    mix(code.size());
    return h;
}

bool
sameCode(const std::vector<Instr> &a, const std::vector<Instr> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].op != b[i].op || a[i].rd != b[i].rd ||
            a[i].rs != b[i].rs || a[i].rt != b[i].rt ||
            a[i].imm != b[i].imm)
            return false;
    }
    return true;
}

} // namespace

std::shared_ptr<const DecodedKernel>
DecodeCache::decode(const Kernel &k, bool superblocks)
{
    InternTable &t = internTable();
    // The superblock flag is part of the intern identity: the same code
    // decodes to different programs with formation on and off.
    const std::uint64_t h =
        codeHash(k.code) ^ (superblocks ? 0x9E3779B97F4A7C15ULL : 0);
    std::lock_guard<std::mutex> lock(t.mu);
    auto &bucket = t.byHash[h];
    for (const auto &dk : bucket) {
        if (dk->superblocksEnabled() == superblocks &&
            sameCode(dk->source(), k.code)) {
            ++t.hits;
            return dk;
        }
    }
    ++t.misses;
    auto dk = std::make_shared<const DecodedKernel>(k, superblocks);
    bucket.push_back(dk);
    ++t.count;
    return dk;
}

std::size_t
DecodeCache::internedKernels()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.count;
}

std::uint64_t
DecodeCache::hits()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.hits;
}

std::uint64_t
DecodeCache::misses()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.misses;
}

void
DecodeCache::drop()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    t.byHash.clear();
    t.count = 0;
}

} // namespace epf
