#include "mem/cache.hpp"

#include <cassert>

namespace epf
{

Cache::Cache(EventQueue &eq, const CacheParams &params, MemLevel &parent)
    : eq_(eq), p_(params), parent_(parent)
{
    assert(p_.ways > 0);
    numSets_ = static_cast<unsigned>(p_.sizeBytes / (kLineBytes * p_.ways));
    assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0 &&
           "set count must be a power of two");
    lines_.resize(static_cast<std::size_t>(numSets_) * p_.ways);
    mshrs_.resize(p_.mshrs);
    freeMshrs_ = p_.mshrs;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    for (auto &m : mshrs_)
        m = Mshr{};
    freeMshrs_ = p_.mshrs;
    overflow_.clear();
    lruClock_ = 0;
    stats_ = Stats{};
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    return static_cast<unsigned>((line_addr >> kLineShift) & (numSets_ - 1));
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    Line *set = &lines_[static_cast<std::size_t>(setIndex(line_addr)) * p_.ways];
    for (unsigned w = 0; w < p_.ways; ++w) {
        if (set[w].valid && set[w].lineAddr == line_addr)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

bool
Cache::hasLine(Addr paddr) const
{
    return findLine(lineAlign(paddr)) != nullptr;
}

Cache::Line &
Cache::pickVictim(Addr line_addr)
{
    Line *set = &lines_[static_cast<std::size_t>(setIndex(line_addr)) * p_.ways];
    Line *victim = &set[0];
    for (unsigned w = 0; w < p_.ways; ++w) {
        if (!set[w].valid)
            return set[w];
        if (set[w].lru < victim->lru)
            victim = &set[w];
    }
    return *victim;
}

Cache::Mshr *
Cache::findMshr(Addr line_addr)
{
    for (auto &m : mshrs_) {
        if (m.valid && m.lineAddr == line_addr)
            return &m;
    }
    return nullptr;
}

Cache::Mshr *
Cache::allocMshr()
{
    if (freeMshrs_ == 0)
        return nullptr;
    for (auto &m : mshrs_) {
        if (!m.valid) {
            // Recycle in place: waiters is empty (cleared at release)
            // but keeps its capacity.
            m.valid = true;
            m.lineAddr = 0;
            m.wasStore = false;
            m.demanded = false;
            m.req = LineRequest{};
            --freeMshrs_;
            return &m;
        }
    }
    return nullptr;
}

void
Cache::releaseMshr(Mshr &m)
{
    m.valid = false;
    m.waiters.clear();
    m.req = LineRequest{};
    ++freeMshrs_;
    if (mshrFreeHook_)
        mshrFreeHook_();
    drainOverflow();
}

void
Cache::touchForDemand(Line &line)
{
    line.lru = ++lruClock_;
    if (line.prefetched && !line.used) {
        line.used = true;
        ++stats_.pfUsed;
    }
}

Cache::DemandResult
Cache::demandAccess(bool is_load, Addr vaddr, Addr paddr, DoneFn &&done)
{
    const Addr line_addr = lineAlign(paddr);

    if (Line *line = findLine(line_addr)) {
        if (is_load) {
            ++stats_.loads;
            ++stats_.loadHits;
        } else {
            ++stats_.stores;
            ++stats_.storeHits;
            line->dirty = true;
            if (coherence_ != nullptr)
                coherence_->onWrite(coherencePort_, line_addr);
        }
        touchForDemand(*line);
        eq_.scheduleIn(p_.accessLatency, std::move(done));
        return DemandResult::Hit;
    }

    if (Mshr *m = findMshr(line_addr)) {
        if (is_load)
            ++stats_.loads;
        else {
            ++stats_.stores;
            m->wasStore = true;
        }
        ++stats_.demandMerges;
        if (m->req.isPrefetch)
            m->demanded = true;
        m->waiters.push_back(std::move(done));
        return DemandResult::Merged;
    }

    Mshr *m = allocMshr();
    if (m == nullptr) {
        ++stats_.mshrRejects;
        return DemandResult::NoMshr;
    }

    if (is_load)
        ++stats_.loads;
    else {
        ++stats_.stores;
        m->wasStore = true;
    }

    m->lineAddr = line_addr;
    m->waiters.push_back(std::move(done));
    m->req.paddr = line_addr;
    m->req.vaddr = lineAlign(vaddr);
    m->req.isPrefetch = false;

    // The forward reads m->req at fire time.  The MSHR cannot be
    // recycled before then (it is only released by the fill this very
    // forward requests), and the levels below only look at fields a
    // concurrent tag adoption never changes (paddr, isPrefetch).
    eq_.scheduleIn(p_.accessLatency, [this, m] {
        parent_.readLine(m->req, [this, m] { handleFill(*m); });
    });
    return DemandResult::Miss;
}

Cache::PrefetchResult
Cache::prefetchAccess(const LineRequest &req)
{
    const Addr line_addr = lineAlign(req.paddr);

    if (findLine(line_addr) != nullptr) {
        ++stats_.pfDropPresent;
        return PrefetchResult::Present;
    }
    if (Mshr *m = findMshr(line_addr)) {
        // The line is already being fetched.  Keep the event chain
        // alive: the MSHR adopts this request's memory-request tag /
        // callback so the fill still triggers the follow-on event
        // (Section 4.7 — the tag lives in the MSHR).
        if (m->req.tag < 0 && m->req.cbKernel < 0 &&
            (req.tag >= 0 || req.cbKernel >= 0)) {
            m->req.tag = req.tag;
            m->req.cbKernel = req.cbKernel;
            m->req.vaddr = lineAlign(req.vaddr);
            m->req.hasTimedStart = req.hasTimedStart;
            m->req.timedStart = req.timedStart;
            m->req.timedOrigin = req.timedOrigin;
            m->req.originPpu = req.originPpu;
            return PrefetchResult::Issued;
        }
        return PrefetchResult::Merged;
    }

    Mshr *m = allocMshr();
    if (m == nullptr)
        return PrefetchResult::NoMshr;

    m->lineAddr = line_addr;
    m->req = req;
    m->req.paddr = line_addr;
    m->req.vaddr = lineAlign(req.vaddr);
    m->req.isPrefetch = true;

    eq_.scheduleIn(p_.accessLatency, [this, m] {
        parent_.readLine(m->req, [this, m] { handleFill(*m); });
    });
    return PrefetchResult::Issued;
}

Cache::Line &
Cache::installLine(Addr line_addr, bool dirty, bool prefetched)
{
    Line &victim = pickVictim(line_addr);
    if (victim.valid) {
        if (victim.prefetched && !victim.used)
            ++stats_.pfUnusedEvicted;
        if (victim.dirty) {
            ++stats_.writebacks;
            LineRequest wb;
            wb.paddr = victim.lineAddr;
            parent_.writeLine(wb);
        }
        if (coherence_ != nullptr)
            coherence_->onEvict(coherencePort_, victim.lineAddr);
    }
    victim.valid = true;
    victim.dirty = dirty;
    victim.prefetched = prefetched;
    victim.used = false;
    victim.lineAddr = line_addr;
    victim.lru = ++lruClock_;
    return victim;
}

void
Cache::handleFill(Mshr &m)
{
    const bool pf = m.req.isPrefetch;
    Line &line = installLine(m.lineAddr, m.wasStore, pf);
    if (coherence_ != nullptr)
        coherence_->onFill(coherencePort_, m.lineAddr, m.wasStore);

    if (pf) {
        ++stats_.prefetchFills;
        if (m.demanded) {
            // A demand access arrived while the prefetch was in flight:
            // late, but the fetched line is used.
            line.used = true;
            ++stats_.pfUsed;
            ++stats_.pfUsedLate;
        }
    }
    // Fills whose MSHR carries a memory-request tag or callback kernel
    // trigger the prefetcher's event — including demand fills that
    // adopted the metadata from a merged prefetch.
    if (listener_ != nullptr &&
        (pf || m.req.tag >= 0 || m.req.cbKernel >= 0))
        listener_->notifyPrefetchFill(m.req);

    // Swap the waiters into a reusable scratch buffer (keeps both
    // vectors' capacities alive), release the MSHR — which may run the
    // free hook and drain the overflow queue — then schedule the
    // waiters, preserving the original event ordering.  A completion
    // storm (several demands merged onto one miss) is delivered as one
    // batched event rather than one event per waiter.
    assert(fillWaiters_.empty());
    fillWaiters_.swap(m.waiters);
    releaseMshr(m);
    if (p_.batchedDelivery && fillWaiters_.size() > 1) {
        EventQueue::Batch b = eq_.takeBatch();
        b.reserve(fillWaiters_.size());
        for (auto &w : fillWaiters_)
            b.push_back(std::move(w));
        eq_.scheduleBatch(0, std::move(b));
    } else {
        for (auto &w : fillWaiters_)
            eq_.scheduleIn(0, std::move(w));
    }
    fillWaiters_.clear();
}

bool
Cache::invalidateLine(Addr line_addr)
{
    Line *line = findLine(line_addr);
    if (line == nullptr)
        return false;
    if (line->prefetched && !line->used)
        ++stats_.pfUnusedEvicted;
    if (line->dirty) {
        ++stats_.writebacks;
        LineRequest wb;
        wb.paddr = line->lineAddr;
        parent_.writeLine(wb);
    }
    line->valid = false;
    line->dirty = false;
    ++stats_.invalidations;
    return true;
}

void
Cache::readLine(const LineRequest &req, DoneFn done)
{
    const Addr line_addr = lineAlign(req.paddr);
    ++stats_.lowerReads;

    if (Line *line = findLine(line_addr)) {
        ++stats_.lowerReadHits;
        if (line->prefetched && !line->used) {
            line->used = true;
            ++stats_.pfUsed;
        }
        line->lru = ++lruClock_;
        eq_.scheduleIn(p_.accessLatency, std::move(done));
        return;
    }

    if (Mshr *m = findMshr(line_addr)) {
        if (!req.isPrefetch)
            m->demanded = true;
        m->waiters.push_back(std::move(done));
        return;
    }

    Mshr *m = allocMshr();
    if (m == nullptr) {
        // Input queue: hold the request until an MSHR frees up.
        overflow_.emplace_back(req, std::move(done));
        ++stats_.mshrRejects;
        return;
    }

    m->lineAddr = line_addr;
    m->req = req;
    m->req.paddr = line_addr;
    m->waiters.push_back(std::move(done));

    eq_.scheduleIn(p_.accessLatency, [this, m] {
        parent_.readLine(m->req, [this, m] { handleFill(*m); });
    });
}

void
Cache::writeLine(const LineRequest &req)
{
    const Addr line_addr = lineAlign(req.paddr);
    if (Line *line = findLine(line_addr)) {
        line->dirty = true;
        line->lru = ++lruClock_;
        return;
    }
    // Full-line writeback allocate: no fetch required.
    installLine(line_addr, true, false);
}

void
Cache::drainOverflow()
{
    while (!overflow_.empty() && freeMshrs_ > 0) {
        auto [req, done] = std::move(overflow_.front());
        overflow_.pop_front();
        readLine(req, std::move(done));
    }
}

} // namespace epf
