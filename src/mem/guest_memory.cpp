#include "mem/guest_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace epf
{

void
GuestMemory::addRegion(const std::string &name, const void *ptr,
                       std::size_t size)
{
    Region r;
    r.name = name;
    r.base = reinterpret_cast<Addr>(ptr);
    r.size = size;
    r.host = static_cast<const std::byte *>(ptr);
    auto pos = std::lower_bound(
        regions_.begin(), regions_.end(), r.base,
        [](const Region &a, Addr b) { return a.base < b; });
    regions_.insert(pos, std::move(r));
}

void
GuestMemory::clear()
{
    regions_.clear();
}

const GuestMemory::Region *
GuestMemory::find(Addr addr) const
{
    // First region with base > addr, then step back one.
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), addr,
        [](Addr a, const Region &r) { return a < r.base; });
    if (it == regions_.begin())
        return nullptr;
    --it;
    if (addr >= it->base && addr < it->base + it->size)
        return &*it;
    return nullptr;
}

bool
GuestMemory::contains(Addr addr, std::size_t len) const
{
    const Region *r = find(addr);
    return r != nullptr && addr + len <= r->base + r->size;
}

bool
GuestMemory::readLine(Addr line_base, LineData &out) const
{
    out.fill(std::byte{0});
    bool any = false;
    Addr a = line_base;
    unsigned copied = 0;
    while (copied < kLineBytes) {
        const Region *r = find(a);
        if (r == nullptr) {
            ++a;
            ++copied;
            continue;
        }
        std::size_t avail = (r->base + r->size) - a;
        std::size_t n = std::min<std::size_t>(kLineBytes - copied, avail);
        std::memcpy(out.data() + copied, r->host + (a - r->base), n);
        any = true;
        a += n;
        copied += static_cast<unsigned>(n);
    }
    return any;
}

std::uint64_t
GuestMemory::read64(Addr addr) const
{
    assert(contains(addr, 8));
    const Region *r = find(addr);
    std::uint64_t v;
    std::memcpy(&v, r->host + (addr - r->base), 8);
    return v;
}

} // namespace epf
