#include "mem/guest_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace epf
{

Addr
GuestMemory::addRegion(const std::string &name, const void *ptr,
                       std::size_t size)
{
    Region r;
    r.name = name;
    r.base = next_;
    r.size = size;
    r.host = static_cast<const std::byte *>(ptr);
    // Bases are handed out page-aligned in registration order with a
    // guard page between regions, so a kernel running off the end of one
    // region never silently reads the next.
    next_ += (size + 2 * kPageBytes - 1) & ~(kPageBytes - 1);
    regions_.push_back(std::move(r)); // cursor only grows: stays sorted
    return regions_.back().base;
}

Addr
GuestMemory::addRegion(const std::string &name, void *ptr, std::size_t size)
{
    const Addr base = addRegion(name, static_cast<const void *>(ptr), size);
    regions_.back().hostMut = static_cast<std::byte *>(ptr);
    return base;
}

void
GuestMemory::clear()
{
    regions_.clear();
    next_ = kGuestBase;
    lastRegion_ = 0;
}

Addr
GuestMemory::guestAddr(const void *host) const
{
    const auto *p = static_cast<const std::byte *>(host);
    // Consecutive translations overwhelmingly hit the same region, so a
    // most-recently-matched cache keeps the per-micro-op cost at one
    // range compare instead of a scan.
    if (lastRegion_ < regions_.size()) {
        const Region &r = regions_[lastRegion_];
        if (p >= r.host && p < r.host + r.size)
            return r.base + static_cast<Addr>(p - r.host);
    }
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        const Region &r = regions_[i];
        if (p >= r.host && p < r.host + r.size) {
            lastRegion_ = i;
            return r.base + static_cast<Addr>(p - r.host);
        }
    }
    throw std::logic_error(
        "GuestMemory::guestAddr: host pointer not inside any registered "
        "region");
}

const GuestMemory::Region *
GuestMemory::find(Addr addr) const
{
    // First region with base > addr, then step back one.
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), addr,
        [](Addr a, const Region &r) { return a < r.base; });
    if (it == regions_.begin())
        return nullptr;
    --it;
    if (addr >= it->base && addr < it->base + it->size)
        return &*it;
    return nullptr;
}

bool
GuestMemory::contains(Addr addr, std::size_t len) const
{
    const Region *r = find(addr);
    return r != nullptr && addr + len <= r->base + r->size;
}

bool
GuestMemory::readLine(Addr line_base, LineData &out) const
{
    out.fill(std::byte{0});
    bool any = false;
    Addr a = line_base;
    unsigned copied = 0;
    while (copied < kLineBytes) {
        const Region *r = find(a);
        if (r == nullptr) {
            ++a;
            ++copied;
            continue;
        }
        std::size_t avail = (r->base + r->size) - a;
        std::size_t n = std::min<std::size_t>(kLineBytes - copied, avail);
        std::memcpy(out.data() + copied, r->host + (a - r->base), n);
        any = true;
        a += n;
        copied += static_cast<unsigned>(n);
    }
    return any;
}

std::uint64_t
GuestMemory::read64(Addr addr) const
{
    assert(contains(addr, 8));
    const Region *r = find(addr);
    std::uint64_t v;
    std::memcpy(&v, r->host + (addr - r->base), 8);
    return v;
}

std::size_t
GuestMemory::readSpan(Addr addr, void *out, std::size_t len) const
{
    const Region *r = find(addr);
    if (r == nullptr)
        return 0;
    const std::size_t avail = (r->base + r->size) - addr;
    const std::size_t n = std::min(len, avail);
    std::memcpy(out, r->host + (addr - r->base), n);
    return n;
}

void
GuestMemory::write(Addr addr, const void *src, std::size_t len)
{
    const Region *r = find(addr);
    if (r == nullptr || addr + len > r->base + r->size)
        throw std::logic_error(
            "GuestMemory::write: span not inside one mapped region");
    if (r->hostMut == nullptr)
        throw std::logic_error("GuestMemory::write: region \"" + r->name +
                               "\" is read-only");
    std::memcpy(r->hostMut + (addr - r->base), src, len);
}

} // namespace epf
