#include "mem/uncore.hpp"

#include <cassert>
#include <stdexcept>

namespace epf
{

MemParams
MemParams::defaults()
{
    MemParams p;
    p.l1.name = "l1d";
    p.l1.sizeBytes = 32 * 1024;
    p.l1.ways = 2;
    p.l1.accessLatency = 2 * 5; // 2 cycles @ 3.2 GHz
    p.l1.mshrs = 12;

    p.l2.name = "l2";
    p.l2.sizeBytes = 1024 * 1024;
    p.l2.ways = 16;
    p.l2.accessLatency = 12 * 5; // 12 cycles @ 3.2 GHz
    p.l2.mshrs = 16;

    p.corePeriod = 5;
    return p;
}

Uncore::Uncore(EventQueue &eq, GuestMemory &mem, const MemParams &params,
               unsigned ports)
    : eq_(eq), p_(params), ports_(ports)
{
    assert(ports_ > 0);
    unsigned banks = p_.l2Banks;
    if (banks == 0) {
        // Auto: the largest power of two not exceeding the port count,
        // so bank selection stays a mask for any cores value (3 cores
        // -> 2 banks).
        banks = 1;
        while (banks * 2 <= ports_)
            banks *= 2;
    } else if ((banks & (banks - 1)) != 0) {
        throw std::invalid_argument(
            "MemParams::l2Banks must be a power of two, got " +
            std::to_string(banks));
    }

    dram_ = std::make_unique<Dram>(eq_, p_.dram);

    banks_.resize(banks);
    for (unsigned b = 0; b < banks; ++b) {
        CacheParams bp = p_.l2;
        bp.batchedDelivery = p_.batchedDelivery;
        bp.sizeBytes = p_.l2.sizeBytes / banks;
        bp.mshrs = p_.l2.mshrs / banks > 0 ? p_.l2.mshrs / banks : 1;
        if (banks > 1)
            bp.name = p_.l2.name + ".b" + std::to_string(b);
        banks_[b].cache = std::make_unique<Cache>(eq_, bp, *dram_);
        banks_[b].queues.resize(ports_);
    }

    pageTable_ = std::make_unique<PageTable>(mem);

    views_.reserve(ports_);
    for (unsigned p = 0; p < ports_; ++p)
        views_.emplace_back(this, p);

    l1s_.assign(ports_, nullptr);
}

Cache::Stats
Uncore::l2Stats() const
{
    Cache::Stats sum;
    for (const auto &b : banks_)
        sum += b.cache->stats();
    return sum;
}

void
Uncore::resetStats()
{
    stats_ = Stats{};
    for (auto &b : banks_)
        b.cache->resetStats();
    dram_->resetStats();
}

void
Uncore::attachL1(unsigned p, Cache *l1)
{
    assert(p < ports_);
    l1s_[p] = l1;
}

unsigned
Uncore::bankOf(Addr paddr) const
{
    return static_cast<unsigned>(
        (paddr >> kLineShift) &
        (static_cast<Addr>(banks_.size()) - 1));
}

void
Uncore::portRead(unsigned port, const LineRequest &req, DoneFn done)
{
    const unsigned idx = bankOf(req.paddr);
    Bank &bank = banks_[idx];
    if (ports_ == 1) {
        // Single port: no arbitration stage at all, so the single-core
        // machine behaves byte-identically to the unsplit hierarchy.
        bank.cache->readLine(req, std::move(done));
        return;
    }
    bank.queues[port].push_back(Pending{req, std::move(done)});
    if (p_.batchedDelivery) {
        // An idle bank's next grant slot is the current tick; the
        // shared wake event drains every due bank at once.
        if (bank.nextGrantAt == kTickMax) {
            bank.nextGrantAt = eq_.now();
            armArb(eq_.now());
        }
        return;
    }
    if (!bank.granting) {
        bank.granting = true;
        // An idle arbiter grants in the current tick; contention is
        // serialised at one grant per l2ArbPeriod below.
        eq_.scheduleIn(0, [this, idx] { grant(idx); });
    }
}

void
Uncore::portWrite(unsigned port, const LineRequest &req)
{
    // Writebacks are posted and do not contend for grant slots.
    (void)port;
    banks_[bankOf(req.paddr)].cache->writeLine(req);
}

bool
Uncore::bankHasWork(const Bank &bank) const
{
    for (const auto &q : bank.queues) {
        if (!q.empty())
            return true;
    }
    return false;
}

bool
Uncore::grantOne(Bank &bank)
{
    unsigned waiting = 0;
    for (const auto &q : bank.queues)
        waiting += q.empty() ? 0 : 1;
    assert(waiting > 0);
    if (waiting > 1)
        ++stats_.arbConflicts;

    unsigned p = bank.rrNext;
    while (bank.queues[p].empty())
        p = (p + 1) % ports_;
    Pending pe = std::move(bank.queues[p].front());
    bank.queues[p].pop_front();
    bank.rrNext = (p + 1) % ports_;
    ++stats_.arbGrants;

    bank.cache->readLine(pe.req, std::move(pe.done));

    return bankHasWork(bank);
}

void
Uncore::grant(unsigned bank_idx)
{
    Bank &bank = banks_[bank_idx];
    if (!bankHasWork(bank)) {
        bank.granting = false;
        return;
    }

    // Pace only while work is actually queued: the next grant slot is
    // one l2ArbPeriod out.  When the queues drain, the arbiter goes
    // idle and the next arriving request is granted in its own tick —
    // an uncontended port sees the same latency as the single-port
    // bypass.
    if (grantOne(bank)) {
        eq_.scheduleIn(p_.l2ArbPeriod, [this, bank_idx] { grant(bank_idx); });
    } else {
        bank.granting = false;
    }
}

void
Uncore::armArb(Tick when)
{
    if (arbWakeAt_ <= when)
        return; // an earlier (or equal) wake event is already live
    arbWakeAt_ = when;
    const std::uint64_t gen = ++arbGen_;
    eq_.schedule(when, [this, gen] {
        if (gen != arbGen_)
            return; // superseded by an earlier re-arm
        arbWakeAt_ = kTickMax;
        arbDrain();
    });
}

void
Uncore::arbDrain()
{
    // One pass grants every bank whose slot is due this tick — the
    // same per-bank grant ticks and round-robin picks as the legacy
    // per-bank events, minus the per-bank event traffic.  arbDrain
    // always re-arms from full bank state, so orphaned (superseded)
    // wake events lose nothing.
    const Tick now = eq_.now();
    Tick next = kTickMax;
    for (Bank &bank : banks_) {
        if (bank.nextGrantAt <= now) {
            bank.nextGrantAt =
                grantOne(bank) ? now + p_.l2ArbPeriod : kTickMax;
        }
        next = next < bank.nextGrantAt ? next : bank.nextGrantAt;
    }
    if (next != kTickMax)
        armArb(next);
}

void
Uncore::invalidateOthers(unsigned port, Addr line_addr, DirEntry &e)
{
    for (unsigned p = 0; p < ports_; ++p) {
        if (p == port || (e.sharers & (1u << p)) == 0)
            continue;
        if (l1s_[p] != nullptr && l1s_[p]->invalidateLine(line_addr))
            ++stats_.invalidations;
    }
    e.sharers = 1u << port;
    e.exclusive = true;
    e.owner = static_cast<std::uint8_t>(port);
}

void
Uncore::onFill(unsigned port, Addr line_addr, bool exclusive)
{
    DirEntry &e = dir_[line_addr];
    if (exclusive) {
        invalidateOthers(port, line_addr, e);
        return;
    }
    if (e.exclusive && e.owner != port) {
        // A remote read demotes the exclusive owner to shared; its copy
        // stays resident (dirty data writes back on eviction as usual).
        e.exclusive = false;
        ++stats_.downgrades;
    }
    e.sharers |= 1u << port;
}

void
Uncore::onWrite(unsigned port, Addr line_addr)
{
    DirEntry &e = dir_[line_addr];
    if (e.exclusive && e.owner == port)
        return; // already the exclusive owner: silent upgrade
    invalidateOthers(port, line_addr, e);
}

void
Uncore::onEvict(unsigned port, Addr line_addr)
{
    auto it = dir_.find(line_addr);
    if (it == dir_.end())
        return;
    it->second.sharers &= ~(1u << port);
    if (it->second.sharers == 0)
        dir_.erase(it);
}

} // namespace epf
