/**
 * @file
 * The shared half of the machine: banked L2, DRAM channel, page table
 * and the coherence directory.
 *
 * Every core port (private L1 + TLB slice, see core_port.hpp) reaches
 * the uncore through its own MemLevel view.  With a single port the
 * view forwards straight to the L2 bank — byte-identical behaviour to
 * the original single-core hierarchy.  With several ports each L2 bank
 * arbitrates among the ports' queued line reads with a deterministic
 * round-robin grant every `l2ArbPeriod` ticks, so multi-core runs are
 * reproducible at any host thread count.
 *
 * Coherence is a minimal shared-read / exclusive-write ownership
 * directory: a write from one core invalidates every other core's copy
 * of the line (dirty copies write back first); a read of an exclusive
 * line downgrades the owner to shared.  Invalidations are instantaneous
 * — the protocol has no transient states — which is sufficient because
 * functional data lives in host memory and the caches model timing
 * only.
 */

#ifndef EPF_MEM_UNCORE_HPP
#define EPF_MEM_UNCORE_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/guest_memory.hpp"
#include "mem/mem_iface.hpp"
#include "mem/tlb.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_buffer.hpp"

namespace epf
{

/** Parameters of the whole memory system. */
struct MemParams
{
    CacheParams l1;
    CacheParams l2;
    DramParams dram;
    TlbParams tlb;
    /** Core clock period in ticks (used for retry pacing). */
    Tick corePeriod = 5;
    /**
     * L1 MSHRs kept free for demand misses: prefetch requests only
     * issue while more than this many MSHRs are available, so the
     * prefetcher cannot starve the core.
     */
    unsigned demandReservedMshrs = 2;
    /**
     * Also enforce demandReservedMshrs when a translated prefetch
     * lands, not only when it is popped from the request queue.  This
     * is the documented contract and the default; a request whose TLB
     * translation was in flight while the MSHR file filled skids until
     * the file drains instead of taking a reserved MSHR on arrival.
     * Turning it off restores the legacy pipeline the pre-refresh
     * goldens were recorded under (the divergence is a transient
     * bounded by the translation window).
     */
    bool strictPfReservation = true;
    /**
     * L2 bank count (power of two); 0 = one bank per core port.  The
     * configured L2 capacity and MSHRs are split evenly across banks.
     */
    unsigned l2Banks = 0;
    /** Ticks between round-robin L2 grants when ports contend. */
    Tick l2ArbPeriod = 5;
    /**
     * Coalesce same-tick event delivery through the hierarchy: the L2
     * bank arbiters share one wake event per tick that grants every
     * bank due at that tick in one drain (instead of one event per
     * bank), and both cache levels deliver MSHR fill waiters as one
     * batched event (seeds CacheParams::batchedDelivery).  Single-port
     * machines bypass arbitration entirely, so golden (cores = 1) runs
     * are byte-identical either way; multi-core runs stay deterministic
     * but may order same-tick grants differently from the legacy
     * per-bank events.  Off restores per-event delivery for the A/B
     * parity suite.
     */
    bool batchedDelivery = true;

    /** Table 1 defaults. */
    static MemParams defaults();
};

/** Shared L2 + DRAM + page table + coherence directory. */
class Uncore : public CoherenceHub
{
  public:
    struct Stats
    {
        /** Line reads granted to a port by a bank arbiter. */
        std::uint64_t arbGrants = 0;
        /** Grants issued while another port was also waiting. */
        std::uint64_t arbConflicts = 0;
        /** Remote L1 copies dropped by exclusive-write upgrades. */
        std::uint64_t invalidations = 0;
        /** Exclusive owners demoted to shared by a remote read. */
        std::uint64_t downgrades = 0;
    };

    Uncore(EventQueue &eq, GuestMemory &mem, const MemParams &params,
           unsigned ports);

    unsigned ports() const { return ports_; }
    unsigned banks() const { return static_cast<unsigned>(banks_.size()); }

    /** The arbitrated view core port @p p sends its line traffic through
     *  (L1 miss fetches, L1 writebacks and TLB walk reads). */
    MemLevel &port(unsigned p) { return views_[p]; }

    Cache &l2Bank(unsigned b) { return *banks_[b].cache; }
    Dram &dram() { return *dram_; }
    PageTable &pageTable() { return *pageTable_; }
    const Stats &stats() const { return stats_; }

    /** Sum of all banks' cache statistics. */
    Cache::Stats l2Stats() const;

    void resetStats();

    /** Register port @p p's L1 with the coherence directory.  Only
     *  called for multi-port assemblies; single-core machines skip the
     *  directory entirely. */
    void attachL1(unsigned p, Cache *l1);

    // ---- CoherenceHub (called by the attached L1s) ----

    void onFill(unsigned port, Addr line_addr, bool exclusive) override;
    void onWrite(unsigned port, Addr line_addr) override;
    void onEvict(unsigned port, Addr line_addr) override;

  private:
    /** MemLevel adapter binding a port id to the shared banks. */
    class PortView final : public MemLevel
    {
      public:
        PortView(Uncore *u, unsigned p) : u_(u), p_(p) {}
        void
        readLine(const LineRequest &req, DoneFn done) override
        {
            u_->portRead(p_, req, std::move(done));
        }
        void
        writeLine(const LineRequest &req) override
        {
            u_->portWrite(p_, req);
        }

      private:
        Uncore *u_;
        unsigned p_;
    };

    struct Pending
    {
        LineRequest req;
        DoneFn done;
    };

    struct Bank
    {
        std::unique_ptr<Cache> cache;
        /** Per-port request queues the arbiter grants from. */
        std::vector<Ring<Pending>> queues;
        unsigned rrNext = 0;
        /** Legacy (per-event) arbiter: a grant event is outstanding. */
        bool granting = false;
        /** Coalesced arbiter: tick of this bank's next grant slot
         *  (kTickMax when idle). */
        Tick nextGrantAt = kTickMax;
    };

    /** Directory state of one line. */
    struct DirEntry
    {
        std::uint32_t sharers = 0; ///< bitmask of ports holding the line
        bool exclusive = false;
        std::uint8_t owner = 0;
    };

    unsigned bankOf(Addr paddr) const;
    void portRead(unsigned port, const LineRequest &req, DoneFn done);
    void portWrite(unsigned port, const LineRequest &req);
    /** Legacy per-bank grant event (batchedDelivery off). */
    void grant(unsigned bank);
    /** True if any port queue of @p bank holds a request. */
    bool bankHasWork(const Bank &bank) const;
    /** Issue one round-robin grant on @p bank (requires queued work);
     *  returns true if requests remain queued afterwards. */
    bool grantOne(Bank &bank);
    /** Coalesced arbiter: ensure a wake event no later than @p when. */
    void armArb(Tick when);
    /** Coalesced arbiter: grant every bank due now, re-arm for the
     *  earliest future slot. */
    void arbDrain();
    void invalidateOthers(unsigned port, Addr line_addr, DirEntry &e);

    EventQueue &eq_;
    MemParams p_;
    unsigned ports_;

    std::unique_ptr<Dram> dram_;
    std::vector<Bank> banks_;
    std::unique_ptr<PageTable> pageTable_;
    std::vector<PortView> views_;

    std::vector<Cache *> l1s_;
    std::unordered_map<Addr, DirEntry> dir_;

    /** Coalesced arbiter: tick of the live wake event (kTickMax when
     *  none) and its generation (earlier re-arms orphan stale wakes). */
    Tick arbWakeAt_ = kTickMax;
    std::uint64_t arbGen_ = 0;

    Stats stats_;
};

} // namespace epf

#endif // EPF_MEM_UNCORE_HPP
