/**
 * @file
 * Interfaces between the memory hierarchy and its clients.
 */

#ifndef EPF_MEM_MEM_IFACE_HPP
#define EPF_MEM_MEM_IFACE_HPP

#include <cstdint>

#include "mem/packet.hpp"
#include "sim/types.hpp"

namespace epf
{

/**
 * A level of the memory hierarchy viewed from above (L2 below L1, DRAM
 * below L2).  Reads complete via callback; writes (writebacks) are posted.
 */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /** Request a full line; @p done fires when the data is available. */
    virtual void readLine(const LineRequest &req, DoneFn done) = 0;

    /** Posted write of a full line (writeback); no completion callback. */
    virtual void writeLine(const LineRequest &req) = 0;
};

/**
 * Observer of L1 activity: this is the snoop port the paper's address
 * filter sits on, and the hook baseline prefetchers train from.
 */
class MemoryListener
{
  public:
    virtual ~MemoryListener() = default;

    /**
     * A demand access issued by the core reached the L1.
     *
     * @param vaddr    full (unaligned) virtual address of the access
     * @param is_load  true for loads, false for stores
     * @param hit      true if it hit in L1 (including in-flight merges)
     * @param stream_id stable id of the source "load instruction"
     */
    virtual void
    notifyDemand(Addr vaddr, bool is_load, bool hit, int stream_id)
    {
        (void)vaddr;
        (void)is_load;
        (void)hit;
        (void)stream_id;
    }

    /** A prefetch completed and its line reached the L1. */
    virtual void notifyPrefetchFill(const LineRequest &req) { (void)req; }

    /**
     * A prefetch request was dropped before completion (page fault or
     * merge into an in-flight miss).  Needed so blocked-mode PPUs that
     * are stalled waiting on the fill can be released.
     */
    virtual void notifyPrefetchDropped(const LineRequest &req) { (void)req; }
};

/**
 * Coherence directory seen from a private cache (the L1 of one core
 * port).  The multi-core uncore implements this with a shared-read /
 * exclusive-write ownership directory: a write by one core invalidates
 * every other core's copy of the line; a read of an exclusively-held
 * line downgrades the owner to shared.  Single-core assemblies attach
 * no hub at all, so the hooks cost nothing there.
 */
class CoherenceHub
{
  public:
    virtual ~CoherenceHub() = default;

    /** Port @p port installed @p line_addr (@p exclusive = store fill). */
    virtual void onFill(unsigned port, Addr line_addr, bool exclusive) = 0;

    /** Port @p port wrote a resident line (store hit). */
    virtual void onWrite(unsigned port, Addr line_addr) = 0;

    /** Port @p port evicted its copy of @p line_addr. */
    virtual void onEvict(unsigned port, Addr line_addr) = 0;
};

/**
 * A producer of prefetch requests drained by the L1 when it has MSHRs
 * available (the paper's prefetch request queue presents this interface).
 */
class PrefetchSource
{
  public:
    virtual ~PrefetchSource() = default;

    /** True if a request is ready to issue. */
    virtual bool hasRequest() const = 0;

    /** Pop the oldest request.  Only valid when hasRequest(). */
    virtual LineRequest popRequest() = 0;
};

} // namespace epf

#endif // EPF_MEM_MEM_IFACE_HPP
