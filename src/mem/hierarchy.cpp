#include "mem/hierarchy.hpp"

#include <cassert>

namespace epf
{

MemParams
MemParams::defaults()
{
    MemParams p;
    p.l1.name = "l1d";
    p.l1.sizeBytes = 32 * 1024;
    p.l1.ways = 2;
    p.l1.accessLatency = 2 * 5; // 2 cycles @ 3.2 GHz
    p.l1.mshrs = 12;

    p.l2.name = "l2";
    p.l2.sizeBytes = 1024 * 1024;
    p.l2.ways = 16;
    p.l2.accessLatency = 12 * 5; // 12 cycles @ 3.2 GHz
    p.l2.mshrs = 16;

    p.corePeriod = 5;
    return p;
}

MemoryHierarchy::MemoryHierarchy(EventQueue &eq, GuestMemory &mem,
                                 const MemParams &params)
    : eq_(eq), mem_(mem), p_(params)
{
    dram_ = std::make_unique<Dram>(eq_, p_.dram);
    l2_ = std::make_unique<Cache>(eq_, p_.l2, *dram_);
    l1_ = std::make_unique<Cache>(eq_, p_.l1, *l2_);
    pageTable_ = std::make_unique<PageTable>(mem_);
    tlb_ = std::make_unique<Tlb>(eq_, p_.tlb, *pageTable_, *l2_);

    l1_->setMshrFreeHook([this] { tryIssuePrefetches(); });
}

void
MemoryHierarchy::setListener(MemoryListener *l)
{
    listener_ = l;
    l1_->setListener(l);
}

void
MemoryHierarchy::resetStats()
{
    stats_ = Stats{};
    l1_->resetStats();
    l2_->resetStats();
    dram_->resetStats();
    tlb_->resetStats();
}

void
MemoryHierarchy::load(Addr vaddr, int stream_id, DoneFn done)
{
    ++stats_.coreLoads;
    demandAccess(true, vaddr, stream_id, std::move(done));
}

void
MemoryHierarchy::store(Addr vaddr, int stream_id, DoneFn done)
{
    ++stats_.coreStores;
    demandAccess(false, vaddr, stream_id, std::move(done));
}

void
MemoryHierarchy::demandAccess(bool is_load, Addr vaddr, int stream_id,
                              DoneFn done)
{
    assert(mem_.contains(vaddr) && "core accessed an unmapped address");
    // The whole request rides in a pooled transaction; every hop below
    // captures just the pointer.
    DemandTxn *txn = demandTxns_.acquire();
    txn->vaddr = vaddr;
    txn->paddr = 0;
    txn->streamId = stream_id;
    txn->isLoad = is_load;
    txn->done = std::move(done);
    tlb_->translate(vaddr, [this, txn](Addr paddr, bool fault) {
        assert(!fault && "demand access faulted");
        (void)fault;
        txn->paddr = paddr;
        attemptDemand(txn);
    });
}

void
MemoryHierarchy::attemptDemand(DemandTxn *txn)
{
    auto res = l1_->demandAccess(txn->isLoad, txn->vaddr, txn->paddr,
                                 std::move(txn->done));
    if (res == Cache::DemandResult::NoMshr) {
        // txn->done was not consumed; retry with the same transaction.
        if (txn->isLoad)
            ++stats_.loadRetries;
        else
            ++stats_.storeRetries;
        eq_.scheduleIn(p_.corePeriod, [this, txn] { attemptDemand(txn); });
        return;
    }
    if (listener_ != nullptr) {
        bool hit = res == Cache::DemandResult::Hit;
        listener_->notifyDemand(txn->vaddr, txn->isLoad, hit, txn->streamId);
        // Baseline prefetchers enqueue candidates during the notify;
        // give the issue path a chance to drain them immediately.
        tryIssuePrefetches();
    }
    demandTxns_.release(txn);
}

void
MemoryHierarchy::swPrefetch(Addr vaddr)
{
    ++stats_.swPrefetches;
    if (!mem_.contains(vaddr)) {
        ++stats_.swPrefetchDrops;
        return;
    }
    tlb_->translate(vaddr, [this, vaddr](Addr paddr, bool fault) {
        if (fault) {
            ++stats_.swPrefetchDrops;
            return;
        }
        LineRequest req;
        req.vaddr = vaddr;
        req.paddr = paddr;
        req.isPrefetch = true;
        auto res = l1_->prefetchAccess(req);
        if (res == Cache::PrefetchResult::NoMshr)
            ++stats_.swPrefetchDrops;
    });
}

void
MemoryHierarchy::tryIssuePrefetches()
{
    auto mshr_available = [this] {
        return l1_->freeMshrCount() > p_.demandReservedMshrs;
    };

    // Drain translated-but-blocked requests first.
    while (!pfSkid_.empty() && mshr_available()) {
        LineRequest req = pfSkid_.front();
        pfSkid_.pop_front();
        issueTranslatedPrefetch(req);
    }

    if (pfSource_ == nullptr)
        return;

    while (mshr_available() && pfSkid_.empty() &&
           pfTranslations_ < kMaxPfTranslations && pfSource_->hasRequest()) {
        LineRequest req = pfSource_->popRequest();
        ++pfTranslations_;
        tlb_->translate(req.vaddr, [this, req](Addr paddr,
                                               bool fault) mutable {
            --pfTranslations_;
            if (fault) {
                ++stats_.pfDropFault;
                if (listener_ != nullptr)
                    listener_->notifyPrefetchDropped(req);
                // More requests may be waiting behind this one.
                eq_.scheduleIn(0, [this] { tryIssuePrefetches(); });
                return;
            }
            req.paddr = paddr;
            issueTranslatedPrefetch(req);
            eq_.scheduleIn(0, [this] { tryIssuePrefetches(); });
        });
    }
}

void
MemoryHierarchy::issueTranslatedPrefetch(const LineRequest &req)
{
    switch (l1_->prefetchAccess(req)) {
      case Cache::PrefetchResult::Issued:
        ++stats_.pfIssued;
        break;
      case Cache::PrefetchResult::Present:
        ++stats_.pfDropPresent;
        // The data is already resident: deliver the completion event
        // immediately so dependent event chains keep running (the
        // address filter would equally have seen the demand load).
        if (listener_ != nullptr && (req.cbKernel >= 0 || req.tag >= 0)) {
            LineRequest synth = req;
            synth.synthesized = true;
            listener_->notifyPrefetchFill(synth);
        }
        break;
      case Cache::PrefetchResult::Merged:
        ++stats_.pfDropMerged;
        if (listener_ != nullptr && (req.cbKernel >= 0 || req.tag >= 0))
            listener_->notifyPrefetchDropped(req);
        break;
      case Cache::PrefetchResult::NoMshr:
        pfSkid_.push_back(req);
        break;
    }
}

} // namespace epf
