#include "mem/dram.hpp"

#include <algorithm>
#include <utility>

namespace epf
{

Dram::Dram(EventQueue &eq, const DramParams &params) : eq_(eq), p_(params)
{
    banks_.resize(p_.banks);
}

unsigned
Dram::bankOf(Addr paddr) const
{
    return static_cast<unsigned>((paddr >> p_.bankShift) % p_.banks);
}

std::uint64_t
Dram::rowOf(Addr paddr) const
{
    return paddr >> p_.rowShift;
}

void
Dram::readLine(const LineRequest &req, DoneFn done)
{
    ++stats_.reads;
    if (req.isPrefetch)
        ++stats_.prefetchReads;
    unsigned b = bankOf(req.paddr);
    banks_[b].queue.emplace_back(req, std::move(done));
    if (!banks_[b].scheduled) {
        banks_[b].scheduled = true;
        eq_.scheduleIn(0, [this, b] { serviceBank(b); });
    }
}

void
Dram::writeLine(const LineRequest &req)
{
    ++stats_.writes;
    unsigned b = bankOf(req.paddr);
    banks_[b].queue.emplace_back(req, DoneFn{});
    if (!banks_[b].scheduled) {
        banks_[b].scheduled = true;
        eq_.scheduleIn(0, [this, b] { serviceBank(b); });
    }
}

void
Dram::serviceBank(unsigned bank_idx)
{
    Bank &bank = banks_[bank_idx];
    if (bank.queue.empty()) {
        bank.scheduled = false;
        return;
    }

    const Tick now = eq_.now();
    auto &[req, done] = bank.queue.front();
    const std::uint64_t row = rowOf(req.paddr);

    // Work out when the column command can start on this bank.
    Tick start = std::max(now + p_.frontendDelay, bank.readyAt);
    // Injected latency jitter delays the command — demand reads too,
    // which is deliberately harsher than jittering only prefetches.
    if (faults_ != nullptr && faults_->fire(FaultSite::kDramJitter))
        start += faults_->jitterTicks();
    Tick dataAt;
    if (bank.rowOpen && bank.openRow == row) {
        ++stats_.rowHits;
        dataAt = start + p_.tcl;
    } else {
        ++stats_.rowMisses;
        Tick activate = start;
        if (bank.rowOpen) {
            // Must precharge first, and not before tRAS expires.
            Tick pre = std::max(start, bank.prechargeOkAt);
            activate = pre + p_.trp;
        }
        bank.rowOpen = true;
        bank.openRow = row;
        bank.prechargeOkAt = activate + p_.tras;
        dataAt = activate + p_.trcd + p_.tcl;
    }

    // The burst needs the shared data bus.
    Tick burstStart = std::max(dataAt, busFreeAt_);
    Tick finish = burstStart + p_.tburst;
    busFreeAt_ = finish;
    bank.readyAt = burstStart; // next column command overlaps CAS pipeline

    bool is_read = static_cast<bool>(done);
    if (is_read)
        stats_.totalReadLatency += finish - now;

    DoneFn cb = std::move(done);
    bank.queue.pop_front();

    if (cb)
        eq_.schedule(finish, std::move(cb));

    // Service the next queued request once this one's bus slot is decided.
    eq_.schedule(std::max(now + 1, burstStart),
                 [this, bank_idx] { serviceBank(bank_idx); });
}

} // namespace epf
