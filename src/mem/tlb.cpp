#include "mem/tlb.hpp"

#include <algorithm>
#include <cassert>

namespace epf
{

Addr
PageTable::translate(Addr vaddr)
{
    assert(mapped(vaddr));
    const Addr vpn = pageNumber(vaddr);
    auto it = vpnToPpn_.find(vpn);
    if (it == vpnToPpn_.end()) {
        Addr ppn = (nextSeq_++ * kOddMultiplier) & kPpnMask;
        it = vpnToPpn_.emplace(vpn, ppn).first;
    }
    return (it->second << kPageShift) | (vaddr & (kPageBytes - 1));
}

Tlb::Tlb(EventQueue &eq, const TlbParams &params, PageTable &pt,
         MemLevel &walk_mem)
    : eq_(eq), p_(params), pt_(pt), walkMem_(walk_mem)
{
    l1_.resize(p_.l1Entries);
    assert(p_.l2Entries % p_.l2Ways == 0);
    l2Sets_ = p_.l2Entries / p_.l2Ways;
    assert((l2Sets_ & (l2Sets_ - 1)) == 0);
    l2_.resize(p_.l2Entries);
}

void
Tlb::flush()
{
    for (auto &e : l1_)
        e.valid = false;
    for (auto &e : l2_)
        e.valid = false;
}

bool
Tlb::lookupL1(Addr vpn, Addr &ppn)
{
    for (auto &e : l1_) {
        if (e.valid && e.vpn == vpn) {
            e.lru = ++lruClock_;
            ppn = e.ppn;
            return true;
        }
    }
    return false;
}

bool
Tlb::lookupL2(Addr vpn, Addr &ppn)
{
    Entry *set = &l2_[(vpn & (l2Sets_ - 1)) * p_.l2Ways];
    for (unsigned w = 0; w < p_.l2Ways; ++w) {
        if (set[w].valid && set[w].vpn == vpn) {
            set[w].lru = ++lruClock_;
            ppn = set[w].ppn;
            return true;
        }
    }
    return false;
}

void
Tlb::insertL1(Addr vpn, Addr ppn)
{
    Entry *victim = &l1_[0];
    for (auto &e : l1_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    *victim = Entry{true, vpn, ppn, ++lruClock_};
}

void
Tlb::insertL2(Addr vpn, Addr ppn)
{
    Entry *set = &l2_[(vpn & (l2Sets_ - 1)) * p_.l2Ways];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < p_.l2Ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lru < victim->lru)
            victim = &set[w];
    }
    *victim = Entry{true, vpn, ppn, ++lruClock_};
}

void
Tlb::translate(Addr vaddr, TranslateFn cb)
{
    const Addr vpn = pageNumber(vaddr);
    const Addr offset = vaddr & (kPageBytes - 1);
    Addr ppn;

    if (lookupL1(vpn, ppn)) {
        ++stats_.l1Hits;
        cb((ppn << kPageShift) | offset, false);
        return;
    }
    if (lookupL2(vpn, ppn)) {
        ++stats_.l2Hits;
        insertL1(vpn, ppn);
        // Hot path: park the callback in a pooled PendingHit so the
        // scheduled event is a single pointer capture instead of a
        // closure holding the whole TranslateFn.
        PendingHit *ph = pendingHits_.acquire();
        ph->paddr = (ppn << kPageShift) | offset;
        ph->cb = std::move(cb);
        eq_.scheduleIn(p_.l2Latency, [this, ph] {
            TranslateFn fn = std::move(ph->cb);
            const Addr paddr = ph->paddr;
            pendingHits_.release(ph);
            fn(paddr, false);
        });
        return;
    }
    startWalk(vpn, [this, vpn, offset, cb = std::move(cb)](Addr, bool) {
        // Walk finished; resolve mapping (or fault) at the leaf.
        Addr probe = (vpn << kPageShift) | offset;
        if (!pt_.mapped(probe)) {
            ++stats_.faults;
            cb(0, true);
            return;
        }
        Addr paddr = pt_.translate(probe);
        insertL1(vpn, paddr >> kPageShift);
        insertL2(vpn, paddr >> kPageShift);
        cb(paddr, false);
    });
}

void
Tlb::startWalk(Addr vpn, TranslateFn cb)
{
    // Join an active or queued walk for the same page if one exists.
    for (auto &w : activeWalks_) {
        if (w.vpn == vpn) {
            w.waiters.push_back(std::move(cb));
            return;
        }
    }
    for (auto &w : queuedWalks_) {
        if (w.vpn == vpn) {
            w.waiters.push_back(std::move(cb));
            return;
        }
    }
    Walk w;
    w.vpn = vpn;
    w.waiters.push_back(std::move(cb));
    queuedWalks_.push_back(std::move(w));
    pumpWalkQueue();
}

void
Tlb::pumpWalkQueue()
{
    while (!queuedWalks_.empty() && activeWalks_.size() < p_.maxWalks) {
        activeWalks_.push_back(std::move(queuedWalks_.front()));
        queuedWalks_.pop_front();
        ++stats_.walks;
        issueWalkReads(activeWalks_.size() - 1, p_.walkReads);
    }
}

void
Tlb::issueWalkReads(std::size_t walk_idx, unsigned remaining)
{
    if (remaining == 0) {
        finishWalk(walk_idx);
        return;
    }
    // Fabricated PTE address in a reserved physical range; reads go
    // through the cache level the walker is attached to, so walks enjoy
    // caching of upper levels just like real table walks.
    const Addr vpn = activeWalks_[walk_idx].vpn;
    LineRequest req;
    req.paddr = 0xF0'0000'0000ULL + ((vpn * p_.walkReads + remaining) << 3);
    req.vaddr = req.paddr;
    walkMem_.readLine(req, [this, vpn, remaining] {
        // The walk vector may have shifted; find by vpn.
        for (std::size_t i = 0; i < activeWalks_.size(); ++i) {
            if (activeWalks_[i].vpn == vpn) {
                issueWalkReads(i, remaining - 1);
                return;
            }
        }
    });
}

void
Tlb::finishWalk(std::size_t walk_idx)
{
    Walk done = std::move(activeWalks_[walk_idx]);
    activeWalks_.erase(activeWalks_.begin() +
                       static_cast<std::ptrdiff_t>(walk_idx));
    for (auto &cb : done.waiters)
        cb(0, false); // resolution happens in the translate() closure
    pumpWalkQueue();
}

} // namespace epf
