/**
 * @file
 * The per-core private half of the memory system.
 *
 * One CorePort owns a core's L1D and its TLB slice, and implements the
 * two client-facing paths of the original single-core hierarchy:
 *
 *  - the demand path used by the core model (translate, access L1,
 *    retry while MSHRs are exhausted);
 *  - the prefetch issue path: whenever the L1 has a free MSHR it pops
 *    the attached PrefetchSource (the paper's prefetch request queue),
 *    translates through the port's TLB, drops on fault, and issues
 *    (Section 4.6).
 *
 * Each port carries its own MemoryListener / PrefetchSource attachment,
 * so every core gets a private prefetcher instance (PPF or baseline).
 * All line traffic below the L1 — miss fetches, writebacks and TLB walk
 * reads — goes through the shared Uncore's arbitrated port view.
 */

#ifndef EPF_MEM_CORE_PORT_HPP
#define EPF_MEM_CORE_PORT_HPP

#include <cstdint>
#include <memory>

#include "mem/cache.hpp"
#include "mem/guest_memory.hpp"
#include "mem/mem_iface.hpp"
#include "mem/tlb.hpp"
#include "mem/uncore.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/object_pool.hpp"
#include "sim/ring_buffer.hpp"

namespace epf
{

/** Private L1 + TLB slice of one core, fronting the shared uncore. */
class CorePort
{
  public:
    struct Stats
    {
        std::uint64_t coreLoads = 0;
        std::uint64_t coreStores = 0;
        /** Load demand accesses rejected by a full L1 MSHR file. */
        std::uint64_t loadRetries = 0;
        /** Store demand accesses rejected by a full L1 MSHR file. */
        std::uint64_t storeRetries = 0;
        std::uint64_t swPrefetches = 0;
        std::uint64_t swPrefetchDrops = 0;
        std::uint64_t pfIssued = 0;
        std::uint64_t pfDropPresent = 0;
        std::uint64_t pfDropMerged = 0;
        std::uint64_t pfDropFault = 0;
        /** Prefetches dropped by the translated-skid overflow bound. */
        std::uint64_t pfSkidDropped = 0;
    };

    /**
     * Build port @p portId of @p uncore.  Multi-port assemblies attach
     * the L1 to the uncore's coherence directory; a single-port machine
     * skips the directory so its behaviour (and host cost) is identical
     * to the pre-split hierarchy.
     */
    CorePort(EventQueue &eq, GuestMemory &mem, Uncore &uncore,
             const MemParams &params, unsigned portId);

    unsigned portId() const { return portId_; }

    // ---- Demand path (core model) ----

    /**
     * Issue a load; @p done fires when data is ready in the core.
     * @p stream_id is a stable identifier of the originating load
     * instruction (the PC proxy baseline prefetchers train on).
     */
    void load(Addr vaddr, int stream_id, DoneFn done);

    /** Issue a store; @p done fires when the store has been accepted. */
    void store(Addr vaddr, int stream_id, DoneFn done);

    /** Issue a best-effort software prefetch (dropped under pressure). */
    void swPrefetch(Addr vaddr);

    // ---- Prefetcher attachment ----

    /** Observer of L1 demand traffic and prefetch fills. */
    void setListener(MemoryListener *l);

    /** The queue of prefetch requests the L1 drains. */
    void setPrefetchSource(PrefetchSource *src) { pfSource_ = src; }

    /** Notify that the prefetch source may have new requests. */
    void kickPrefetcher() { tryIssuePrefetches(); }

    /** Attach the run's fault injector (null: fault-free, the default). */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    // ---- Introspection ----

    Cache &l1() { return *l1_; }
    Tlb &tlb() { return *tlb_; }
    const Stats &stats() const { return stats_; }

    void resetStats();

  private:
    /**
     * One demand access in flight between the core and the L1.  Pooled:
     * the TLB callback and the MSHR retry loop carry a pointer to this
     * instead of re-capturing the whole request each hop.
     */
    struct DemandTxn
    {
        Addr vaddr = 0;
        Addr paddr = 0;
        int streamId = 0;
        bool isLoad = false;
        DoneFn done;
    };

    void demandAccess(bool is_load, Addr vaddr, int stream_id, DoneFn done);
    void attemptDemand(DemandTxn *txn);
    void tryIssuePrefetches();
    void issueTranslatedPrefetch(const LineRequest &req);

    EventQueue &eq_;
    GuestMemory &mem_;
    MemParams p_;
    unsigned portId_;

    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Tlb> tlb_;

    MemoryListener *listener_ = nullptr;
    PrefetchSource *pfSource_ = nullptr;

    /** Translated prefetches waiting for a free MSHR. */
    Ring<LineRequest> pfSkid_;
    /** In-flight demand accesses (reused across the whole run). */
    ObjectPool<DemandTxn> demandTxns_;
    /** Outstanding prefetch translations (bounds TLB pressure). */
    unsigned pfTranslations_ = 0;
    static constexpr unsigned kMaxPfTranslations = 4;
    /**
     * Skid bound: the issue loop stops popping the source while the
     * skid is non-empty, so steady state holds ~kMaxPfTranslations
     * entries; a storming source that beats that bound sheds load here
     * (drop-with-stat) instead of growing without limit.
     */
    static constexpr std::size_t kMaxPfSkid = 1024;

    FaultInjector *faults_ = nullptr;
    Stats stats_;
};

} // namespace epf

#endif // EPF_MEM_CORE_PORT_HPP
