/**
 * @file
 * Set-associative write-back cache with MSHRs and prefetch support.
 *
 * One class serves as both the L1D (fronting the core, with demand and
 * prefetch entry points) and the L2 (fronting the L1 through the MemLevel
 * interface).  Prefetch-specific behaviour:
 *
 *  - prefetch fills mark lines "prefetched"; a later demand hit marks them
 *    "used" (Fig. 8(a)'s utilisation metric is used / fills);
 *  - MSHRs carry the paper's memory-request tag and PPU callback kernel,
 *    which are handed to the MemoryListener when the fill arrives
 *    (Section 4.7);
 *  - demand accesses that merge into an in-flight prefetch count the
 *    prefetch as used-but-late.
 */

#ifndef EPF_MEM_CACHE_HPP
#define EPF_MEM_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/mem_iface.hpp"
#include "mem/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/small_function.hpp"
#include "sim/types.hpp"

namespace epf
{

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;
    /** Associativity. */
    unsigned ways = 2;
    /** Tag/data access latency in ticks (applies to hits and to the
     *  lookup performed before forwarding a miss). */
    Tick accessLatency = 10;
    /** Number of miss-status-holding registers. */
    unsigned mshrs = 12;
    /**
     * Deliver an MSHR fill's merged waiters as one batched event
     * (EventQueue::scheduleBatch) instead of one event per waiter.
     * Timing-pure either way — the waiters were enqueued back-to-back,
     * so consecutive delivery is observably identical — this only
     * trades host speed; off reproduces the per-event delivery the A/B
     * parity suite compares against.
     */
    bool batchedDelivery = true;
};

/** One level of cache. */
class Cache : public MemLevel
{
  public:
    /** Outcome of a demand access from the core. */
    enum class DemandResult
    {
        Hit,    ///< data available after accessLatency
        Miss,   ///< MSHR allocated, request forwarded
        Merged, ///< merged into an in-flight MSHR
        NoMshr, ///< rejected: caller must retry
    };

    /** Outcome of a prefetch request presented to this cache. */
    enum class PrefetchResult
    {
        Issued,  ///< MSHR allocated, request forwarded
        Present, ///< line already resident: prefetch unnecessary
        Merged,  ///< an in-flight request already covers the line
        NoMshr,  ///< no MSHR available: try again later
    };

    /** Aggregate statistics for one cache level. */
    struct Stats
    {
        std::uint64_t loads = 0;
        std::uint64_t loadHits = 0;
        std::uint64_t stores = 0;
        std::uint64_t storeHits = 0;
        std::uint64_t demandMerges = 0;
        std::uint64_t mshrRejects = 0;
        std::uint64_t prefetchFills = 0;
        std::uint64_t pfUsed = 0;
        std::uint64_t pfUsedLate = 0;
        std::uint64_t pfUnusedEvicted = 0;
        std::uint64_t pfDropPresent = 0;
        std::uint64_t writebacks = 0;
        /** Resident lines dropped by directory invalidations. */
        std::uint64_t invalidations = 0;
        /** Demand line reads received through the MemLevel interface. */
        std::uint64_t lowerReads = 0;
        std::uint64_t lowerReadHits = 0;

        /** Field-wise sum — the one place aggregation across banks or
         *  cores enumerates the counters, so a new field cannot be
         *  silently dropped from one aggregation site. */
        Stats &
        operator+=(const Stats &o)
        {
            loads += o.loads;
            loadHits += o.loadHits;
            stores += o.stores;
            storeHits += o.storeHits;
            demandMerges += o.demandMerges;
            mshrRejects += o.mshrRejects;
            prefetchFills += o.prefetchFills;
            pfUsed += o.pfUsed;
            pfUsedLate += o.pfUsedLate;
            pfUnusedEvicted += o.pfUnusedEvicted;
            pfDropPresent += o.pfDropPresent;
            writebacks += o.writebacks;
            invalidations += o.invalidations;
            lowerReads += o.lowerReads;
            lowerReadHits += o.lowerReadHits;
            return *this;
        }
    };

    Cache(EventQueue &eq, const CacheParams &params, MemLevel &parent);

    // ---- Interface used when this cache is the L1 ----

    /**
     * Demand load/store from the core.  @p done fires at data-ready.
     * @p done is consumed unless the access is rejected (NoMshr), in
     * which case it is left intact so the caller can retry without
     * rebuilding the callback.
     */
    DemandResult demandAccess(bool is_load, Addr vaddr, Addr paddr,
                              DoneFn &&done);

    /** Present a prefetch request (from the PF queue or a swpf). */
    PrefetchResult prefetchAccess(const LineRequest &req);

    /** True if an MSHR is free. */
    bool hasFreeMshr() const { return freeMshrs_ > 0; }

    /** Number of currently free MSHRs. */
    unsigned freeMshrCount() const { return freeMshrs_; }

    /** True if the line containing @p paddr is resident. */
    bool hasLine(Addr paddr) const;

    /** Observer of prefetch fills (the programmable prefetcher). */
    void setListener(MemoryListener *l) { listener_ = l; }

    /** Hook invoked every time an MSHR is released. */
    void setMshrFreeHook(SmallFunction<void()> fn) { mshrFreeHook_ = std::move(fn); }

    /**
     * Attach this (private) cache to a coherence directory as @p port.
     * Fills, store hits and evictions are reported to the hub; the hub
     * invalidates remote copies through invalidateLine().
     */
    void
    setCoherence(CoherenceHub *hub, unsigned port)
    {
        coherence_ = hub;
        coherencePort_ = port;
    }

    /**
     * Directory-initiated invalidation of @p line_addr (line-aligned).
     * A dirty copy is written back to the parent first.  Returns true
     * when a resident copy was dropped.  In-flight MSHRs are untouched:
     * the minimal protocol has no transient states, so a line being
     * fetched simply re-registers with the directory when it fills.
     */
    bool invalidateLine(Addr line_addr);

    // ---- MemLevel interface (when this cache is a parent, i.e. L2) ----

    void readLine(const LineRequest &req, DoneFn done) override;
    void writeLine(const LineRequest &req) override;

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }
    const CacheParams &params() const { return p_; }

    /** Invalidate all lines and drop statistics (between runs). */
    void reset();

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        bool used = false;
        Addr lineAddr = 0; ///< line-aligned physical address
        std::uint64_t lru = 0;
    };

    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = 0;
        bool wasStore = false;
        /** Demand waiters merged onto this miss. */
        std::vector<DoneFn> waiters;
        /** Original request metadata (prefetch tags etc.). */
        LineRequest req;
        /** True if a demand access merged into a prefetch MSHR. */
        bool demanded = false;
    };

    unsigned setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    Line &pickVictim(Addr line_addr);
    Mshr *findMshr(Addr line_addr);
    /**
     * MSHRs are a fixed pool: alloc/release recycle entries in place,
     * keeping each entry's waiter-vector capacity so the demand path
     * stops allocating once warm.
     */
    Mshr *allocMshr();
    void releaseMshr(Mshr &m);

    /** Handle the arrival of data for @p m from the parent level. */
    void handleFill(Mshr &m);

    /** Install a line (fill or full-line writeback allocate). */
    Line &installLine(Addr line_addr, bool dirty, bool prefetched);

    /** Record a demand hit on a resident line (prefetch-used tracking). */
    void touchForDemand(Line &line);

    /** Try to start queued lower-level reads that were MSHR-blocked. */
    void drainOverflow();

    EventQueue &eq_;
    CacheParams p_;
    MemLevel &parent_;
    MemoryListener *listener_ = nullptr;
    SmallFunction<void()> mshrFreeHook_;
    CoherenceHub *coherence_ = nullptr;
    unsigned coherencePort_ = 0;

    unsigned numSets_;
    std::vector<Line> lines_; ///< numSets_ * ways, set-major
    std::vector<Mshr> mshrs_;
    unsigned freeMshrs_;
    std::uint64_t lruClock_ = 0;

    /** Lower-level reads waiting for an MSHR (L2 input queue). */
    Ring<std::pair<LineRequest, DoneFn>> overflow_;

    /** Scratch buffer for waiters during a fill (capacity reused). */
    std::vector<DoneFn> fillWaiters_;

    Stats stats_;
};

} // namespace epf

#endif // EPF_MEM_CACHE_HPP
