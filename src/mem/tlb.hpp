/**
 * @file
 * Paging: deterministic page table, two-level TLB and a page-table walker.
 *
 * The shared TLB serves both the core's demand accesses and the prefetch
 * request queue (Section 4.6 of the paper).  The prefetcher may initiate
 * page-table walks but a fault (an address outside every registered guest
 * region) causes the translation to report failure so the prefetch can be
 * dropped (Section 5.3).
 */

#ifndef EPF_MEM_TLB_HPP
#define EPF_MEM_TLB_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/guest_memory.hpp"
#include "mem/mem_iface.hpp"
#include "sim/event_queue.hpp"
#include "sim/object_pool.hpp"
#include "sim/rng.hpp"
#include "sim/small_function.hpp"
#include "sim/types.hpp"

namespace epf
{

/**
 * Demand-populated page table with a scattering VA->PA permutation.
 *
 * Physical page numbers are assigned on first touch via a multiplicative
 * permutation, so VA-adjacent pages land in unrelated DRAM rows (as on a
 * long-running system) while each 4 KB page stays physically contiguous.
 */
class PageTable
{
  public:
    explicit PageTable(const GuestMemory &mem) : mem_(mem) {}

    /** True if the page holding @p vaddr is backed by a guest region. */
    bool mapped(Addr vaddr) const { return mem_.contains(vaddr); }

    /** Translate; page is allocated on first use.  @p vaddr must be mapped. */
    Addr translate(Addr vaddr);

    /** Number of pages touched so far. */
    std::size_t pagesTouched() const { return vpnToPpn_.size(); }

  private:
    static constexpr Addr kPpnBits = 22; // 16 GB physical space
    static constexpr Addr kPpnMask = (Addr{1} << kPpnBits) - 1;
    static constexpr Addr kOddMultiplier = 0x9E3779B9ULL | 1ULL;

    const GuestMemory &mem_;
    std::unordered_map<Addr, Addr> vpnToPpn_;
    Addr nextSeq_ = 1;
};

/** TLB geometry and timing. */
struct TlbParams
{
    unsigned l1Entries = 64;   ///< fully associative
    unsigned l2Entries = 4096; ///< 8-way
    unsigned l2Ways = 8;
    Tick l2Latency = 8 * 5; ///< 8 core cycles at 3.2 GHz
    unsigned maxWalks = 3;  ///< concurrent page-table walks
    /** Memory reads per walk (levels fetched from the cache hierarchy). */
    unsigned walkReads = 2;
};

/** Two-level shared TLB with a finite-concurrency page-table walker. */
class Tlb
{
  public:
    /**
     * Result callback: (paddr, fault).  56 inline bytes covers the
     * demand path (a pooled-transaction pointer) and the prefetch path
     * (a LineRequest by value) without heap allocation.
     */
    using TranslateFn = SmallFunction<void(Addr, bool), 56>;

    struct Stats
    {
        std::uint64_t l1Hits = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t walks = 0;
        std::uint64_t faults = 0;
    };

    /**
     * @param eq      event queue
     * @param params  geometry/timing
     * @param pt      page table
     * @param walkMem level of the hierarchy the walker reads PTEs through
     */
    Tlb(EventQueue &eq, const TlbParams &params, PageTable &pt,
        MemLevel &walkMem);

    /**
     * Translate @p vaddr.  The callback fires after the TLB/walk latency;
     * for an unmapped address it reports fault=true (after the walk, as
     * real hardware discovers faults at the leaf).
     */
    void translate(Addr vaddr, TranslateFn cb);

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }

    /** Drop all cached translations (context-switch support). */
    void flush();

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        Addr ppn = 0;
        std::uint64_t lru = 0;
    };

    struct Walk
    {
        Addr vpn;
        std::vector<TranslateFn> waiters;
    };

    /** An L2-hit completion in flight (pooled: L2 hits are hot). */
    struct PendingHit
    {
        Addr paddr = 0;
        TranslateFn cb;
    };

    bool lookupL1(Addr vpn, Addr &ppn);
    bool lookupL2(Addr vpn, Addr &ppn);
    void insertL1(Addr vpn, Addr ppn);
    void insertL2(Addr vpn, Addr ppn);

    /** Begin or join a walk for @p vpn. */
    void startWalk(Addr vpn, TranslateFn cb);
    void issueWalkReads(std::size_t walk_idx, unsigned remaining);
    void finishWalk(std::size_t walk_idx);
    void pumpWalkQueue();

    EventQueue &eq_;
    TlbParams p_;
    PageTable &pt_;
    MemLevel &walkMem_;

    std::vector<Entry> l1_;
    std::vector<Entry> l2_; // set-associative, set-major
    unsigned l2Sets_;
    std::uint64_t lruClock_ = 0;

    std::vector<Walk> activeWalks_;
    std::deque<Walk> queuedWalks_;
    ObjectPool<PendingHit> pendingHits_;

    Stats stats_;
};

} // namespace epf

#endif // EPF_MEM_TLB_HPP
