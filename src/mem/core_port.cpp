#include "mem/core_port.hpp"

#include <cassert>

namespace epf
{

CorePort::CorePort(EventQueue &eq, GuestMemory &mem, Uncore &uncore,
                   const MemParams &params, unsigned portId)
    : eq_(eq), mem_(mem), p_(params), portId_(portId)
{
    // The memory-system master switch seeds the per-level flag.
    p_.l1.batchedDelivery = p_.batchedDelivery;
    l1_ = std::make_unique<Cache>(eq_, p_.l1, uncore.port(portId_));
    tlb_ = std::make_unique<Tlb>(eq_, p_.tlb, uncore.pageTable(),
                                 uncore.port(portId_));

    l1_->setMshrFreeHook([this] { tryIssuePrefetches(); });

    if (uncore.ports() > 1) {
        uncore.attachL1(portId_, l1_.get());
        l1_->setCoherence(&uncore, portId_);
    }
}

void
CorePort::setListener(MemoryListener *l)
{
    listener_ = l;
    l1_->setListener(l);
}

void
CorePort::resetStats()
{
    stats_ = Stats{};
    l1_->resetStats();
    tlb_->resetStats();
}

void
CorePort::load(Addr vaddr, int stream_id, DoneFn done)
{
    ++stats_.coreLoads;
    demandAccess(true, vaddr, stream_id, std::move(done));
}

void
CorePort::store(Addr vaddr, int stream_id, DoneFn done)
{
    ++stats_.coreStores;
    demandAccess(false, vaddr, stream_id, std::move(done));
}

void
CorePort::demandAccess(bool is_load, Addr vaddr, int stream_id,
                       DoneFn done)
{
    assert(mem_.contains(vaddr) && "core accessed an unmapped address");
    // The whole request rides in a pooled transaction; every hop below
    // captures just the pointer.
    DemandTxn *txn = demandTxns_.acquire();
    txn->vaddr = vaddr;
    txn->paddr = 0;
    txn->streamId = stream_id;
    txn->isLoad = is_load;
    txn->done = std::move(done);
    tlb_->translate(vaddr, [this, txn](Addr paddr, bool fault) {
        assert(!fault && "demand access faulted");
        (void)fault;
        txn->paddr = paddr;
        attemptDemand(txn);
    });
}

void
CorePort::attemptDemand(DemandTxn *txn)
{
    auto res = l1_->demandAccess(txn->isLoad, txn->vaddr, txn->paddr,
                                 std::move(txn->done));
    if (res == Cache::DemandResult::NoMshr) {
        // txn->done was not consumed; retry with the same transaction.
        if (txn->isLoad)
            ++stats_.loadRetries;
        else
            ++stats_.storeRetries;
        eq_.scheduleIn(p_.corePeriod, [this, txn] { attemptDemand(txn); });
        return;
    }
    if (listener_ != nullptr) {
        bool hit = res == Cache::DemandResult::Hit;
        listener_->notifyDemand(txn->vaddr, txn->isLoad, hit, txn->streamId);
        // Baseline prefetchers enqueue candidates during the notify;
        // give the issue path a chance to drain them immediately.
        tryIssuePrefetches();
    }
    demandTxns_.release(txn);
}

void
CorePort::swPrefetch(Addr vaddr)
{
    ++stats_.swPrefetches;
    if (!mem_.contains(vaddr)) {
        ++stats_.swPrefetchDrops;
        return;
    }
    tlb_->translate(vaddr, [this, vaddr](Addr paddr, bool fault) {
        if (fault) {
            ++stats_.swPrefetchDrops;
            return;
        }
        LineRequest req;
        req.vaddr = vaddr;
        req.paddr = paddr;
        req.isPrefetch = true;
        auto res = l1_->prefetchAccess(req);
        if (res == Cache::PrefetchResult::NoMshr)
            ++stats_.swPrefetchDrops;
    });
}

void
CorePort::tryIssuePrefetches()
{
    auto mshr_available = [this] {
        return l1_->freeMshrCount() > p_.demandReservedMshrs;
    };

    // Drain translated-but-blocked requests first.
    while (!pfSkid_.empty() && mshr_available()) {
        LineRequest req = pfSkid_.front();
        pfSkid_.pop_front();
        issueTranslatedPrefetch(req);
    }

    if (pfSource_ == nullptr)
        return;

    while (mshr_available() && pfSkid_.empty() &&
           pfTranslations_ < kMaxPfTranslations && pfSource_->hasRequest()) {
        LineRequest req = pfSource_->popRequest();
        ++pfTranslations_;
        tlb_->translate(req.vaddr, [this, req](Addr paddr,
                                               bool fault) mutable {
            --pfTranslations_;
            // Injected spurious translation failure: the prefetch takes
            // the normal fault-drop path below.
            if (!fault && faults_ != nullptr &&
                faults_->fire(FaultSite::kTlbFault))
                fault = true;
            if (fault) {
                ++stats_.pfDropFault;
                if (listener_ != nullptr)
                    listener_->notifyPrefetchDropped(req);
                // More requests may be waiting behind this one.
                eq_.scheduleIn(0, [this] { tryIssuePrefetches(); });
                return;
            }
            req.paddr = paddr;
            issueTranslatedPrefetch(req);
            eq_.scheduleIn(0, [this] { tryIssuePrefetches(); });
        });
    }
}

void
CorePort::issueTranslatedPrefetch(const LineRequest &req)
{
    // Strict mode re-checks the demand reservation at issue time: the
    // free-MSHR state may have changed while this request's
    // translation was in flight, and landing it anyway dips into the
    // MSHRs reserved for demand misses.  Skidded requests re-issue
    // from the MSHR-free hook once the file drains.
    if (p_.strictPfReservation &&
        l1_->freeMshrCount() <= p_.demandReservedMshrs) {
        if (pfSkid_.size() >= kMaxPfSkid) {
            ++stats_.pfSkidDropped;
            if (listener_ != nullptr && (req.cbKernel >= 0 || req.tag >= 0))
                listener_->notifyPrefetchDropped(req);
            return;
        }
        pfSkid_.push_back(req);
        return;
    }
    switch (l1_->prefetchAccess(req)) {
      case Cache::PrefetchResult::Issued:
        ++stats_.pfIssued;
        break;
      case Cache::PrefetchResult::Present:
        ++stats_.pfDropPresent;
        // The data is already resident: deliver the completion event
        // immediately so dependent event chains keep running (the
        // address filter would equally have seen the demand load).
        if (listener_ != nullptr && (req.cbKernel >= 0 || req.tag >= 0)) {
            LineRequest synth = req;
            synth.synthesized = true;
            listener_->notifyPrefetchFill(synth);
        }
        break;
      case Cache::PrefetchResult::Merged:
        ++stats_.pfDropMerged;
        if (listener_ != nullptr && (req.cbKernel >= 0 || req.tag >= 0))
            listener_->notifyPrefetchDropped(req);
        break;
      case Cache::PrefetchResult::NoMshr:
        if (pfSkid_.size() >= kMaxPfSkid) {
            ++stats_.pfSkidDropped;
            if (listener_ != nullptr && (req.cbKernel >= 0 || req.tag >= 0))
                listener_->notifyPrefetchDropped(req);
            break;
        }
        pfSkid_.push_back(req);
        break;
    }
}

} // namespace epf
