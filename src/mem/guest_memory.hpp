/**
 * @file
 * Guest address space backed by live host arrays.
 *
 * Workloads register their real data structures (key arrays, hash tables,
 * CSR arrays, ...) as named regions.  The simulator treats the host
 * virtual addresses of those arrays as guest virtual addresses: loads in
 * the trace carry them, the prefetcher's address filter matches on them,
 * and "what a prefetched line contains" is answered by reading the live
 * host memory.  Addresses outside every region behave like unmapped pages
 * (a prefetch to them is dropped, as on a page fault in the paper).
 */

#ifndef EPF_MEM_GUEST_MEMORY_HPP
#define EPF_MEM_GUEST_MEMORY_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace epf
{

/** A line of guest data as observed by the prefetcher. */
using LineData = std::array<std::byte, kLineBytes>;

/** Registry of guest-visible memory regions. */
class GuestMemory
{
  public:
    /** A contiguous mapped region of the guest address space. */
    struct Region
    {
        std::string name;
        Addr base;
        std::size_t size;
        const std::byte *host;
    };

    /** Register @p size bytes at @p ptr under @p name. */
    void addRegion(const std::string &name, const void *ptr, std::size_t size);

    /** Remove all regions (between experiment runs). */
    void clear();

    /** True if [addr, addr+len) lies inside one mapped region. */
    bool contains(Addr addr, std::size_t len = 1) const;

    /**
     * Copy the cache line at line-aligned @p line_base into @p out.
     * Bytes that fall outside mapped regions read as zero.
     * @return true if at least one byte was mapped.
     */
    bool readLine(Addr line_base, LineData &out) const;

    /** Read a naturally aligned 64-bit word (must be fully mapped). */
    std::uint64_t read64(Addr addr) const;

    /** All registered regions, sorted by base address. */
    const std::vector<Region> &regions() const { return regions_; }

  private:
    /** Find the region containing @p addr, or nullptr. */
    const Region *find(Addr addr) const;

    std::vector<Region> regions_; // sorted by base
};

} // namespace epf

#endif // EPF_MEM_GUEST_MEMORY_HPP
