/**
 * @file
 * Guest address space backed by live host arrays.
 *
 * Workloads register their real data structures (key arrays, hash tables,
 * CSR arrays, ...) as named regions.  Each region is assigned a
 * deterministic page-aligned *guest* base address (in registration
 * order), decoupled from the host heap: loads in the trace carry guest
 * addresses, the prefetcher's address filter matches on them, and "what
 * a prefetched line contains" is answered by reading the live host
 * memory behind the region.  Decoupling matters because simulated cache
 * sets, page numbers and DRAM rows are all functions of the address —
 * host pointers would make every run's timing depend on heap layout
 * (ASLR, allocation order, concurrent sweeps).  Addresses outside every
 * region behave like unmapped pages (a prefetch to them is dropped, as
 * on a page fault in the paper).
 */

#ifndef EPF_MEM_GUEST_MEMORY_HPP
#define EPF_MEM_GUEST_MEMORY_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace epf
{

/** A line of guest data as observed by the prefetcher. */
using LineData = std::array<std::byte, kLineBytes>;

/** Registry of guest-visible memory regions. */
class GuestMemory
{
  public:
    /** Guest base of the first registered region. */
    static constexpr Addr kGuestBase = 0x4000'0000;

    /** A contiguous mapped region of the guest address space. */
    struct Region
    {
        std::string name;
        Addr base; ///< assigned guest base (page-aligned)
        std::size_t size;
        const std::byte *host;
        /** Non-null when the region was registered writable. */
        std::byte *hostMut = nullptr;
    };

    /**
     * Register @p size bytes at host pointer @p ptr under @p name.
     * @return the deterministic guest base address of the region.
     */
    Addr addRegion(const std::string &name, const void *ptr,
                   std::size_t size);

    /**
     * Writable registration: same allocation rules, but write() may
     * store through the region (trace replay patches recorded store
     * payloads back into the live host arrays).  Selected automatically
     * for non-const pointers by overload resolution.
     */
    Addr addRegion(const std::string &name, void *ptr, std::size_t size);

    /** Remove all regions and reset the allocator (between runs). */
    void clear();

    /**
     * Guest address of a host pointer into a registered region (the
     * region's base plus the pointer's offset).  Throws std::logic_error
     * when @p host points outside every region — a workload bug that
     * must surface loudly, not as a silently dropped access.
     */
    Addr guestAddr(const void *host) const;

    /** True if [addr, addr+len) lies inside one mapped region. */
    bool contains(Addr addr, std::size_t len = 1) const;

    /**
     * Copy the cache line at line-aligned @p line_base into @p out.
     * Bytes that fall outside mapped regions read as zero.
     * @return true if at least one byte was mapped.
     */
    bool readLine(Addr line_base, LineData &out) const;

    /** Read a naturally aligned 64-bit word (must be fully mapped). */
    std::uint64_t read64(Addr addr) const;

    /**
     * Copy up to @p len bytes starting at @p addr into @p out, clipped
     * to the end of the containing region.  @return bytes copied (0 when
     * @p addr is unmapped).
     */
    std::size_t readSpan(Addr addr, void *out, std::size_t len) const;

    /**
     * Store @p len bytes at @p addr through a writable region.  Throws
     * std::logic_error when the span is unmapped, crosses the region
     * end, or the region was registered read-only — replaying a trace
     * into the wrong memory image must fail loudly, not corrupt timing
     * silently.
     */
    void write(Addr addr, const void *src, std::size_t len);

    /** All registered regions, sorted by base address. */
    const std::vector<Region> &regions() const { return regions_; }

  private:
    /** Find the region containing @p addr, or nullptr. */
    const Region *find(Addr addr) const;

    std::vector<Region> regions_; // sorted by base
    Addr next_ = kGuestBase;      // allocation cursor
    /** Most-recently-matched region index (guestAddr fast path). */
    mutable std::size_t lastRegion_ = 0;
};

} // namespace epf

#endif // EPF_MEM_GUEST_MEMORY_HPP
