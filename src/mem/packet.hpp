/**
 * @file
 * Request descriptors that travel through the memory hierarchy.
 */

#ifndef EPF_MEM_PACKET_HPP
#define EPF_MEM_PACKET_HPP

#include <cstdint>

#include "sim/small_function.hpp"
#include "sim/types.hpp"

namespace epf
{

/**
 * A line-granularity request below the L1 interface.
 *
 * Carries the metadata the programmable prefetcher threads through the
 * hierarchy: the memory-request tag identifying a linked data structure
 * (Section 4.7 of the paper), the PPU kernel to trigger when the fill
 * arrives, and the optional EWMA "timed chain" start tick (Section 4.5).
 */
struct LineRequest
{
    /** Line-aligned physical address. */
    Addr paddr = 0;
    /** Line-aligned virtual address (prefetch events use VAs). */
    Addr vaddr = 0;
    /** True for prefetch requests (demand otherwise). */
    bool isPrefetch = false;
    /** Memory-request tag: data-structure id, or -1 for untagged. */
    std::int32_t tag = -1;
    /** PPU kernel to run when this prefetch fills, or -1 for none. */
    std::int32_t cbKernel = -1;
    /** True if @ref timedStart carries a valid EWMA chain-start tick. */
    bool hasTimedStart = false;
    /** Tick at which the timed prefetch chain started (EWMA input). */
    Tick timedStart = 0;
    /** Filter entry that originated the timed chain (-1 if none). */
    std::int16_t timedOrigin = -1;
    /** PPU stalled on this request in blocked mode (-1 otherwise). */
    std::int16_t originPpu = -1;
    /**
     * True for completion events synthesised for lines that were already
     * resident (no memory access happened): they keep event chains
     * alive but must not be used as chain-latency EWMA samples.
     */
    bool synthesized = false;
};

/**
 * Completion callback used throughout the hierarchy.
 *
 * Deliberately the same type as EventQueue::Callback so completions move
 * straight onto the event queue without re-wrapping (and with no heap
 * allocation for captures up to the inline budget).
 */
using DoneFn = SmallFunction<void()>;

} // namespace epf

#endif // EPF_MEM_PACKET_HPP
