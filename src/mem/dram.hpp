/**
 * @file
 * Single-channel DDR3-1600 11-11-11-28 timing model.
 *
 * Eight banks with open-row policy, FCFS per-bank scheduling and a shared
 * data bus.  Matches the memory configuration in Table 1 of the paper
 * closely enough to reproduce the latency/bandwidth regime the prefetcher
 * operates in: ~46 ns idle row-miss latency, 12.8 GB/s peak bandwidth,
 * and queueing delay under load.
 */

#ifndef EPF_MEM_DRAM_HPP
#define EPF_MEM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "mem/mem_iface.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/types.hpp"

namespace epf
{

/** Timing parameters of the DRAM device (in ticks). */
struct DramParams
{
    /** Command clock period: 800 MHz => 20 ticks. */
    Tick tck = 20;
    /** CAS latency (11 cycles). */
    Tick tcl = 11 * 20;
    /** RAS-to-CAS delay (11 cycles). */
    Tick trcd = 11 * 20;
    /** Row precharge (11 cycles). */
    Tick trp = 11 * 20;
    /** Minimum row-open time (28 cycles). */
    Tick tras = 28 * 20;
    /** Data burst for one 64 B line: 4 command cycles at DDR. */
    Tick tburst = 4 * 20;
    /**
     * Fixed controller + interconnect traversal added to every access
     * (queueing into the memory controller, crossbar, PHY).  gem5
     * full-system measures ~80-110 ns L2-miss-to-use on this DDR3
     * configuration; the bank timing alone gives ~46 ns.
     */
    Tick frontendDelay = 20 * 16;
    /** Number of banks. */
    unsigned banks = 8;
    /** Bits above the line offset used for bank interleaving. */
    unsigned bankShift = kLineShift;
    /** Row = paddr >> rowShift. */
    unsigned rowShift = 16;
};

/** The DRAM channel: terminal level of the hierarchy. */
class Dram : public MemLevel
{
  public:
    /** Aggregate DRAM statistics. */
    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t rowHits = 0;
        std::uint64_t rowMisses = 0;
        std::uint64_t prefetchReads = 0;
        Tick totalReadLatency = 0;
    };

    Dram(EventQueue &eq, const DramParams &params);

    void readLine(const LineRequest &req, DoneFn done) override;
    void writeLine(const LineRequest &req) override;

    const Stats &stats() const { return stats_; }

    /** Reset statistics (run boundaries). */
    void resetStats() { stats_ = Stats{}; }

    /** Attach the run's fault injector (null: fault-free, the default). */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        /** Earliest tick the next column command may start. */
        Tick readyAt = 0;
        /** Earliest tick a precharge is allowed (tRAS from activate). */
        Tick prechargeOkAt = 0;
        Ring<std::pair<LineRequest, DoneFn>> queue;
        bool scheduled = false;
    };

    unsigned bankOf(Addr paddr) const;
    std::uint64_t rowOf(Addr paddr) const;

    /** Service the head of @p bank's queue if possible. */
    void serviceBank(unsigned bank_idx);

    EventQueue &eq_;
    DramParams p_;
    FaultInjector *faults_ = nullptr;
    std::vector<Bank> banks_;
    /** Earliest tick the shared data bus is free. */
    Tick busFreeAt_ = 0;
    Stats stats_;
};

} // namespace epf

#endif // EPF_MEM_DRAM_HPP
