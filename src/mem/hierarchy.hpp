/**
 * @file
 * Assembly of the full memory system of Table 1.
 *
 * Owns the L1D, L2, DRAM, page table and shared TLB, and implements the
 * two client-facing paths:
 *
 *  - the demand path used by the core model (translate, access L1,
 *    retry while MSHRs are exhausted);
 *  - the prefetch issue path: whenever the L1 has a free MSHR it pops the
 *    attached PrefetchSource (the paper's prefetch request queue),
 *    translates through the shared TLB, drops on fault, and issues
 *    (Section 4.6).
 */

#ifndef EPF_MEM_HIERARCHY_HPP
#define EPF_MEM_HIERARCHY_HPP

#include <cstdint>
#include <memory>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/guest_memory.hpp"
#include "mem/mem_iface.hpp"
#include "mem/tlb.hpp"
#include "sim/event_queue.hpp"
#include "sim/object_pool.hpp"
#include "sim/ring_buffer.hpp"

namespace epf
{

/** Parameters of the whole memory system. */
struct MemParams
{
    CacheParams l1;
    CacheParams l2;
    DramParams dram;
    TlbParams tlb;
    /** Core clock period in ticks (used for retry pacing). */
    Tick corePeriod = 5;
    /**
     * L1 MSHRs kept free for demand misses: prefetch requests only
     * issue while more than this many MSHRs are available, so the
     * prefetcher cannot starve the core.
     */
    unsigned demandReservedMshrs = 2;

    /** Table 1 defaults. */
    static MemParams defaults();
};

/** The complete memory system below the core. */
class MemoryHierarchy
{
  public:
    struct Stats
    {
        std::uint64_t coreLoads = 0;
        std::uint64_t coreStores = 0;
        /** Load demand accesses rejected by a full L1 MSHR file. */
        std::uint64_t loadRetries = 0;
        /** Store demand accesses rejected by a full L1 MSHR file. */
        std::uint64_t storeRetries = 0;
        std::uint64_t swPrefetches = 0;
        std::uint64_t swPrefetchDrops = 0;
        std::uint64_t pfIssued = 0;
        std::uint64_t pfDropPresent = 0;
        std::uint64_t pfDropMerged = 0;
        std::uint64_t pfDropFault = 0;
    };

    MemoryHierarchy(EventQueue &eq, GuestMemory &mem,
                    const MemParams &params);

    // ---- Demand path (core model) ----

    /**
     * Issue a load; @p done fires when data is ready in the core.
     * @p stream_id is a stable identifier of the originating load
     * instruction (the PC proxy baseline prefetchers train on).
     */
    void load(Addr vaddr, int stream_id, DoneFn done);

    /** Issue a store; @p done fires when the store has been accepted. */
    void store(Addr vaddr, int stream_id, DoneFn done);

    /** Issue a best-effort software prefetch (dropped under pressure). */
    void swPrefetch(Addr vaddr);

    // ---- Prefetcher attachment ----

    /** Observer of L1 demand traffic and prefetch fills. */
    void setListener(MemoryListener *l);

    /** The queue of prefetch requests the L1 drains. */
    void setPrefetchSource(PrefetchSource *src) { pfSource_ = src; }

    /** Notify that the prefetch source may have new requests. */
    void kickPrefetcher() { tryIssuePrefetches(); }

    // ---- Introspection ----

    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    Dram &dram() { return *dram_; }
    Tlb &tlb() { return *tlb_; }
    PageTable &pageTable() { return *pageTable_; }
    const Stats &stats() const { return stats_; }

    void resetStats();

  private:
    /**
     * One demand access in flight between the core and the L1.  Pooled:
     * the TLB callback and the MSHR retry loop carry a pointer to this
     * instead of re-capturing the whole request each hop.
     */
    struct DemandTxn
    {
        Addr vaddr = 0;
        Addr paddr = 0;
        int streamId = 0;
        bool isLoad = false;
        DoneFn done;
    };

    void demandAccess(bool is_load, Addr vaddr, int stream_id, DoneFn done);
    void attemptDemand(DemandTxn *txn);
    void tryIssuePrefetches();
    void issueTranslatedPrefetch(const LineRequest &req);

    EventQueue &eq_;
    GuestMemory &mem_;
    MemParams p_;

    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<PageTable> pageTable_;
    std::unique_ptr<Tlb> tlb_;

    MemoryListener *listener_ = nullptr;
    PrefetchSource *pfSource_ = nullptr;

    /** Translated prefetches waiting for a free MSHR. */
    Ring<LineRequest> pfSkid_;
    /** In-flight demand accesses (reused across the whole run). */
    ObjectPool<DemandTxn> demandTxns_;
    /** Outstanding prefetch translations (bounds TLB pressure). */
    unsigned pfTranslations_ = 0;
    static constexpr unsigned kMaxPfTranslations = 4;

    Stats stats_;
};

} // namespace epf

#endif // EPF_MEM_HIERARCHY_HPP
