/**
 * @file
 * Single-core assembly of the full memory system of Table 1.
 *
 * The machine proper is split into a shared Uncore (banked L2, DRAM,
 * page table, coherence directory — see uncore.hpp) and per-core
 * CorePorts (private L1 + TLB slice — see core_port.hpp).  This wrapper
 * assembles exactly one port over one uncore and re-exposes the
 * original single-core API, for tests, examples and any client that
 * wants "the memory system below one core" without building the
 * multi-core machine by hand.  Multi-core assemblies (the experiment
 * runner) compose Uncore and CorePort directly.
 */

#ifndef EPF_MEM_HIERARCHY_HPP
#define EPF_MEM_HIERARCHY_HPP

#include "mem/core_port.hpp"
#include "mem/uncore.hpp"

namespace epf
{

/** The complete memory system below one core. */
class MemoryHierarchy
{
  public:
    using Stats = CorePort::Stats;

    MemoryHierarchy(EventQueue &eq, GuestMemory &mem,
                    const MemParams &params)
        : uncore_(eq, mem, params, 1), port_(eq, mem, uncore_, params, 0)
    {
    }

    /** The single core port (what a Core instance plugs into). */
    CorePort &port() { return port_; }

    /** The shared half (single-ported here). */
    Uncore &uncore() { return uncore_; }

    // ---- Demand path (core model) ----

    void
    load(Addr vaddr, int stream_id, DoneFn done)
    {
        port_.load(vaddr, stream_id, std::move(done));
    }

    void
    store(Addr vaddr, int stream_id, DoneFn done)
    {
        port_.store(vaddr, stream_id, std::move(done));
    }

    void swPrefetch(Addr vaddr) { port_.swPrefetch(vaddr); }

    // ---- Prefetcher attachment ----

    void setListener(MemoryListener *l) { port_.setListener(l); }
    void setPrefetchSource(PrefetchSource *src) { port_.setPrefetchSource(src); }
    void kickPrefetcher() { port_.kickPrefetcher(); }

    // ---- Introspection ----

    Cache &l1() { return port_.l1(); }
    Cache &l2() { return uncore_.l2Bank(0); }
    Dram &dram() { return uncore_.dram(); }
    Tlb &tlb() { return port_.tlb(); }
    PageTable &pageTable() { return uncore_.pageTable(); }
    const Stats &stats() const { return port_.stats(); }

    void
    resetStats()
    {
        port_.resetStats();
        uncore_.resetStats();
    }

  private:
    Uncore uncore_;
    CorePort port_;
};

} // namespace epf

#endif // EPF_MEM_HIERARCHY_HPP
