/**
 * @file
 * Markov global-history-buffer prefetcher, GHB G/AC (Nesbit & Smith).
 *
 * Table 1's baseline: depth 16, width 6, with "regular" (2048/2048) and
 * "large" state sizes.  The index table maps a miss address to the most
 * recent GHB entry for that address; GHB entries link to the previous
 * occurrence of the same address, so the addresses that followed earlier
 * occurrences can be replayed as prefetch candidates.
 *
 * As in the paper's evaluation, metadata lookups are free (zero latency,
 * unlimited bandwidth): the baseline is given every benefit of the doubt.
 */

#ifndef EPF_PREFETCH_GHB_HPP
#define EPF_PREFETCH_GHB_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace epf
{

/** Configuration of the Markov GHB prefetcher. */
struct GhbParams
{
    /** Entries in the global history buffer (circular). */
    std::size_t ghbEntries = 2048;
    /** Entries in the index table. */
    std::size_t indexEntries = 2048;
    /** Successors replayed per matched occurrence. */
    unsigned width = 6;
    /** Prior occurrences followed through the link chain. */
    unsigned depth = 16;

    /** The paper's "regular" configuration. */
    static GhbParams regular() { return GhbParams{}; }

    /**
     * The paper's "large" configuration (1 GiB of state for full-size
     * inputs).  Scaled with our inputs: large enough to hold the entire
     * miss history of every scaled benchmark.
     */
    static GhbParams
    large()
    {
        GhbParams p;
        p.ghbEntries = std::size_t{1} << 22;
        p.indexEntries = std::size_t{1} << 22;
        return p;
    }
};

/** The Markov GHB G/AC prefetcher. */
class GhbPrefetcher : public QueuedPrefetcher
{
  public:
    struct Stats
    {
        std::uint64_t misses = 0;
        std::uint64_t matches = 0;
        std::uint64_t issued = 0;
    };

    explicit GhbPrefetcher(const GhbParams &params = GhbParams::regular())
        : p_(params), ghb_(params.ghbEntries)
    {
        index_.reserve(std::min<std::size_t>(p_.indexEntries, 1u << 20));
    }

    void
    notifyDemand(Addr vaddr, bool is_load, bool hit, int stream_id) override
    {
        (void)stream_id;
        if (!is_load || hit)
            return; // Markov GHB trains on the miss stream
        ++stats_.misses;

        const Addr line = lineAlign(vaddr);

        // Replay successors of prior occurrences of this line.
        auto it = index_.find(line);
        if (it != index_.end() && entryLive(it->second) &&
            ghb_[it->second % p_.ghbEntries].addr == line) {
            ++stats_.matches;
            unsigned emitted = 0;
            std::uint64_t occ = it->second;
            for (unsigned d = 0; d < p_.depth && emitted < p_.width; ++d) {
                // Emit the addresses that followed this occurrence.
                for (std::uint64_t s = occ + 1;
                     s < head_ && emitted < p_.width; ++s) {
                    if (!entryLive(s))
                        break;
                    const Addr succ = ghb_[s % p_.ghbEntries].addr;
                    if (succ == line)
                        break; // ran into the next occurrence
                    push(succ);
                    ++stats_.issued;
                    ++emitted;
                    if (s - occ >= p_.width)
                        break;
                }
                std::uint64_t prev = ghb_[occ % p_.ghbEntries].prevOcc;
                if (prev == kNoLink || !entryLive(prev) ||
                    ghb_[prev % p_.ghbEntries].addr != line)
                    break;
                occ = prev;
            }
        }

        // Record the miss in the GHB and index table.
        std::uint64_t slot = head_++;
        GhbEntry &e = ghb_[slot % p_.ghbEntries];
        e.addr = line;
        e.prevOcc = kNoLink;
        if (it != index_.end()) {
            e.prevOcc = it->second;
            it->second = slot;
        } else {
            if (index_.size() >= p_.indexEntries) {
                // Capacity-limited index: evict an arbitrary entry (the
                // regular configuration thrashes on big data either way).
                index_.erase(index_.begin());
            }
            index_.emplace(line, slot);
        }
    }

    const Stats &ghbStats() const { return stats_; }

  private:
    static constexpr std::uint64_t kNoLink = UINT64_MAX;

    struct GhbEntry
    {
        Addr addr = 0;
        std::uint64_t prevOcc = kNoLink;
    };

    /** True if logical slot @p occ has not been overwritten. */
    bool
    entryLive(std::uint64_t occ) const
    {
        return occ < head_ && head_ - occ <= p_.ghbEntries;
    }

    GhbParams p_;
    std::vector<GhbEntry> ghb_;
    std::unordered_map<Addr, std::uint64_t> index_;
    std::uint64_t head_ = 0;
    Stats stats_;
};

} // namespace epf

#endif // EPF_PREFETCH_GHB_HPP
