/**
 * @file
 * Base class for queue-based hardware prefetchers.
 *
 * Baseline prefetchers (stride RPT, Markov GHB) observe L1 demand traffic
 * through the MemoryListener interface, push candidate lines into an
 * internal FIFO, and the hierarchy drains that FIFO through the
 * PrefetchSource interface whenever the L1 has spare MSHRs — the same
 * plumbing the programmable prefetcher uses, so all schemes compete under
 * identical resource constraints.
 */

#ifndef EPF_PREFETCH_PREFETCHER_HPP
#define EPF_PREFETCH_PREFETCHER_HPP

#include <cstdint>
#include <deque>

#include "mem/mem_iface.hpp"
#include "sim/types.hpp"

namespace epf
{

/** Common machinery: a bounded FIFO of candidate prefetch addresses. */
class QueuedPrefetcher : public MemoryListener, public PrefetchSource
{
  public:
    struct QueueStats
    {
        std::uint64_t enqueued = 0;
        std::uint64_t droppedFull = 0;
    };

    explicit QueuedPrefetcher(std::size_t queue_capacity = 200)
        : capacity_(queue_capacity)
    {
    }

    // PrefetchSource
    bool hasRequest() const override { return !queue_.empty(); }

    LineRequest
    popRequest() override
    {
        LineRequest r = queue_.front();
        queue_.pop_front();
        return r;
    }

    const QueueStats &queueStats() const { return qstats_; }

  protected:
    /** Enqueue a candidate (drops the oldest when full, as in the paper). */
    void
    push(Addr vaddr)
    {
        LineRequest req;
        req.vaddr = lineAlign(vaddr);
        req.isPrefetch = true;
        if (queue_.size() >= capacity_) {
            queue_.pop_front();
            ++qstats_.droppedFull;
        }
        queue_.push_back(req);
        ++qstats_.enqueued;
    }

  private:
    std::size_t capacity_;
    std::deque<LineRequest> queue_;
    QueueStats qstats_;
};

} // namespace epf

#endif // EPF_PREFETCH_PREFETCHER_HPP
