/**
 * @file
 * Reference-prediction-table stride prefetcher (Chen & Baer), degree 8.
 *
 * Table 1's baseline "Stride Prefetcher".  Entries are indexed by the
 * load's stream id (the PC proxy); a stride is confirmed after two
 * consecutive accesses with the same delta, after which up to @c degree
 * lines ahead are prefetched.
 */

#ifndef EPF_PREFETCH_STRIDE_HPP
#define EPF_PREFETCH_STRIDE_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace epf
{

/** Configuration of the RPT stride prefetcher. */
struct StrideParams
{
    unsigned tableEntries = 256;
    unsigned degree = 8;
};

/** The stride prefetcher. */
class StridePrefetcher : public QueuedPrefetcher
{
  public:
    struct Stats
    {
        std::uint64_t trains = 0;
        std::uint64_t confirms = 0;
        std::uint64_t issued = 0;
    };

    explicit StridePrefetcher(const StrideParams &params = {})
        : p_(params), table_(params.tableEntries)
    {
    }

    void
    notifyDemand(Addr vaddr, bool is_load, bool hit, int stream_id) override
    {
        (void)hit;
        if (!is_load || stream_id < 0)
            return;
        ++stats_.trains;

        Entry &e = table_[static_cast<unsigned>(stream_id) %
                          table_.size()];
        if (e.streamId != stream_id) {
            e = Entry{};
            e.streamId = stream_id;
            e.lastAddr = vaddr;
            return;
        }

        std::int64_t stride = static_cast<std::int64_t>(vaddr) -
                              static_cast<std::int64_t>(e.lastAddr);
        if (stride != 0 && stride == e.stride) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
            e.stride = stride;
        }
        e.lastAddr = vaddr;

        if (e.confidence >= 2 && e.stride != 0) {
            ++stats_.confirms;
            // Issue up to `degree` prefetches ahead, line-deduplicated.
            Addr prev_line = lineAlign(vaddr);
            for (unsigned d = 1; d <= p_.degree; ++d) {
                Addr target = vaddr + static_cast<Addr>(e.stride) * d;
                if (lineAlign(target) == prev_line)
                    continue;
                prev_line = lineAlign(target);
                push(target);
                ++stats_.issued;
            }
        }
    }

    const Stats &strideStats() const { return stats_; }

  private:
    struct Entry
    {
        int streamId = -1;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    StrideParams p_;
    std::vector<Entry> table_;
    Stats stats_;
};

} // namespace epf

#endif // EPF_PREFETCH_STRIDE_HPP
