/**
 * @file
 * Exponentially weighted moving average calculators (Section 4.5).
 *
 * EWMAs are trivially cheap in hardware (a subtract, shift and add); the
 * prefetcher uses them to time loop iterations (inter-access deltas on
 * "time source" filter entries) and prefetch chains (timed-start to
 * timed-end), whose ratio yields the dynamic lookahead distance.
 */

#ifndef EPF_PPF_EWMA_HPP
#define EPF_PPF_EWMA_HPP

#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace epf
{

/** One EWMA accumulator with a power-of-two smoothing factor. */
class Ewma
{
  public:
    /** @param shift smoothing: alpha = 1 / 2^shift.  Must be > 0 (a
     *  shift of 0 is no average at all, and breaks the rounding term). */
    explicit Ewma(unsigned shift = 3) : shift_(shift)
    {
        assert(shift_ > 0 && "Ewma shift must be positive");
    }

    /** Feed one sample. */
    void
    sample(std::uint64_t x)
    {
        if (!seeded_) {
            value_ = x;
            seeded_ = true;
            return;
        }
        // value += round((x - value) / 2^shift), in signed arithmetic.
        // The arithmetic shift alone rounds toward -inf, which biases
        // the average downward: under oscillating input, small negative
        // deltas step down while equally small positive deltas truncate
        // to zero.  Adding half the divisor first gives round-to-nearest
        // and keeps the equilibrium at the input mean.  (The shift_ == 0
        // branch keeps release builds — where the ctor assert compiles
        // out — well-defined: a zero shift divides by one, no rounding.)
        std::int64_t delta = static_cast<std::int64_t>(x) -
                             static_cast<std::int64_t>(value_);
        std::int64_t half =
            shift_ > 0 ? std::int64_t{1} << (shift_ - 1) : 0;
        value_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(value_) + ((delta + half) >> shift_));
    }

    /** Current average (0 until the first sample). */
    std::uint64_t value() const { return value_; }

    /** True once at least one sample has arrived. */
    bool seeded() const { return seeded_; }

    void
    reset()
    {
        value_ = 0;
        seeded_ = false;
    }

  private:
    unsigned shift_;
    std::uint64_t value_ = 0;
    bool seeded_ = false;
};

/**
 * The per-filter-entry timing state: iteration-time EWMA (from observed
 * reads) and chain-latency EWMA (from timed prefetch chains), combined
 * into the lookahead distance PPU kernels read (Section 4.5).
 */
class LookaheadCalculator
{
  public:
    /**
     * @param shift   EWMA smoothing (alpha = 1/2^shift)
     * @param max_lookahead clamp on the distance, in elements
     * @param initial distance used before both EWMAs have samples
     * @param scale   safety margin: the paper notes the distance "must
     *                be overestimated relative to the EWMAs" (Sec. 7.1)
     *                because the out-of-order window issues demands
     *                ahead of the commit frontier
     */
    explicit LookaheadCalculator(unsigned shift = 3,
                                 std::uint64_t max_lookahead = 64,
                                 std::uint64_t initial = 4,
                                 std::uint64_t scale = 2)
        : iter_(shift), chain_(shift), max_(max_lookahead),
          initial_(initial), scale_(scale)
    {
    }

    /** An observed read hit this entry at @p now (inter-access timer). */
    void
    observeAccess(Tick now)
    {
        if (lastAccess_ != kTickMax && now > lastAccess_)
            iter_.sample(now - lastAccess_);
        lastAccess_ = now;
    }

    /** A timed chain originating here completed after @p latency. */
    void observeChain(Tick latency) { chain_.sample(latency); }

    /** Elements ahead to prefetch. */
    std::uint64_t
    lookahead() const
    {
        if (!iter_.seeded() || !chain_.seeded() || iter_.value() == 0)
            return initial_;
        std::uint64_t ratio =
            scale_ * ((chain_.value() + iter_.value() - 1) / iter_.value());
        if (ratio < 1)
            ratio = 1;
        if (ratio > max_)
            ratio = max_;
        return ratio;
    }

    void
    reset()
    {
        iter_.reset();
        chain_.reset();
        lastAccess_ = kTickMax;
    }

    const Ewma &iterEwma() const { return iter_; }
    const Ewma &chainEwma() const { return chain_; }

  private:
    Ewma iter_;
    Ewma chain_;
    Tick lastAccess_ = kTickMax;
    std::uint64_t max_;
    std::uint64_t initial_;
    std::uint64_t scale_;
};

} // namespace epf

#endif // EPF_PPF_EWMA_HPP
