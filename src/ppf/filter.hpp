/**
 * @file
 * The address filter and its configuration table (Section 4.2).
 *
 * The filter snoops every read issued by the main core and every prefetch
 * fill arriving at the L1.  Each entry holds a virtual address range for
 * one data structure, the kernels to run on load/prefetch events in that
 * range, and the flags the EWMA calculators use for scheduling.  Ranges
 * may overlap; every matching entry produces its own observation.
 */

#ifndef EPF_PPF_FILTER_HPP
#define EPF_PPF_FILTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "sim/types.hpp"

namespace epf
{

/** One configured address range. */
struct FilterEntry
{
    std::string name;
    /** Virtual address range [base, limit). */
    Addr base = 0;
    Addr limit = 0;
    /** Kernel run when the core loads in this range (Load Ptr). */
    KernelId onLoad = kNoKernel;
    /** Kernel run when a prefetch into this range completes (PF Ptr). */
    KernelId onPrefetch = kNoKernel;
    /** Record inter-access times here (loop-iteration EWMA source). */
    bool timeSource = false;
    /** Chains produced by this entry's events carry a start timestamp. */
    bool timedStart = false;
    /** A timed chain arriving here samples the chain-latency EWMA. */
    bool timedEnd = false;

    bool
    contains(Addr a) const
    {
        return a >= base && a < limit;
    }
};

/** The filter table: a small array of configured ranges. */
class FilterTable
{
  public:
    /** Add an entry; returns its index (used by lookahead kernels). */
    int
    add(const FilterEntry &e)
    {
        entries_.push_back(e);
        return static_cast<int>(entries_.size() - 1);
    }

    /** Visit every entry containing @p a. */
    template <typename Fn>
    void
    match(Addr a, Fn &&fn) const
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].contains(a))
                fn(static_cast<int>(i), entries_[i]);
        }
    }

    const FilterEntry &operator[](int idx) const { return entries_.at(static_cast<std::size_t>(idx)); }

    std::size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

  private:
    std::vector<FilterEntry> entries_;
};

} // namespace epf

#endif // EPF_PPF_FILTER_HPP
