/**
 * @file
 * The address filter and its configuration table (Section 4.2).
 *
 * The filter snoops every read issued by the main core and every prefetch
 * fill arriving at the L1.  Each entry holds a virtual address range for
 * one data structure, the kernels to run on load/prefetch events in that
 * range, and the flags the EWMA calculators use for scheduling.  Ranges
 * may overlap; every matching entry produces its own observation.
 */

#ifndef EPF_PPF_FILTER_HPP
#define EPF_PPF_FILTER_HPP

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "sim/types.hpp"

namespace epf
{

/** One configured address range. */
struct FilterEntry
{
    std::string name;
    /** Virtual address range [base, limit). */
    Addr base = 0;
    Addr limit = 0;
    /** Kernel run when the core loads in this range (Load Ptr). */
    KernelId onLoad = kNoKernel;
    /** Kernel run when a prefetch into this range completes (PF Ptr). */
    KernelId onPrefetch = kNoKernel;
    /** Record inter-access times here (loop-iteration EWMA source). */
    bool timeSource = false;
    /** Chains produced by this entry's events carry a start timestamp. */
    bool timedStart = false;
    /** A timed chain arriving here samples the chain-latency EWMA. */
    bool timedEnd = false;

    bool
    contains(Addr a) const
    {
        return a >= base && a < limit;
    }
};

/**
 * The filter table: a small array of configured ranges.
 *
 * match() runs on every snooped core read, so lookups go through a
 * sorted interval index instead of a linear scan: spans are kept sorted
 * by base with a running maximum of limits, so a query binary-searches
 * to the last candidate and walks left only while an interval could
 * still cover the address.  Matches are reported in insertion order
 * (the order kernels were configured in), exactly as the linear scan
 * did.
 */
class FilterTable
{
  public:
    /** Hardware-table bound; also sizes match()'s stack buffer. */
    static constexpr std::size_t kMaxEntries = 64;

    /** Add an entry; returns its index (used by lookahead kernels). */
    int
    add(const FilterEntry &e)
    {
        assert(entries_.size() < kMaxEntries &&
               "filter table exceeds its hardware bound");
        entries_.push_back(e);
        const int idx = static_cast<int>(entries_.size() - 1);
        spans_.insert(std::upper_bound(spans_.begin(), spans_.end(), e.base,
                                       [](Addr base, const Span &s) {
                                           return base < s.base;
                                       }),
                      Span{e.base, e.limit, idx});
        rebuildPrefixMax();
        return idx;
    }

    /** Visit every entry containing @p a, in insertion order. */
    template <typename Fn>
    void
    match(Addr a, Fn &&fn) const
    {
        if (spans_.empty())
            return;
        if (entries_.size() > kMaxEntries) {
            // Oversized tables (possible in release builds, where the
            // add() assert compiles out) take the unbounded linear scan
            // instead of risking the fixed match buffer below.
            for (std::size_t i = 0; i < entries_.size(); ++i) {
                if (entries_[i].contains(a))
                    fn(static_cast<int>(i), entries_[i]);
            }
            return;
        }
        // First span with base > a: everything at or after it starts
        // past the address and can never contain it.
        std::size_t lo = 0, hi = spans_.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (spans_[mid].base <= a)
                lo = mid + 1;
            else
                hi = mid;
        }
        int matched[kMaxEntries];
        std::size_t n = 0;
        for (std::size_t i = lo; i-- > 0;) {
            // No span in [0, i] reaches past a: stop.
            if (prefixMaxLimit_[i] <= a)
                break;
            if (spans_[i].limit > a)
                matched[n++] = spans_[i].idx;
        }
        std::sort(matched, matched + n);
        for (std::size_t i = 0; i < n; ++i)
            fn(matched[i], entries_[static_cast<std::size_t>(matched[i])]);
    }

    const FilterEntry &operator[](int idx) const { return entries_.at(static_cast<std::size_t>(idx)); }

    std::size_t size() const { return entries_.size(); }

    void
    clear()
    {
        entries_.clear();
        spans_.clear();
        prefixMaxLimit_.clear();
    }

  private:
    struct Span
    {
        Addr base;
        Addr limit;
        int idx;
    };

    void
    rebuildPrefixMax()
    {
        prefixMaxLimit_.resize(spans_.size());
        Addr running = 0;
        for (std::size_t i = 0; i < spans_.size(); ++i) {
            running = std::max(running, spans_[i].limit);
            prefixMaxLimit_[i] = running;
        }
    }

    std::vector<FilterEntry> entries_;
    /** Entry intervals sorted by base address. */
    std::vector<Span> spans_;
    /** prefixMaxLimit_[i] = max limit over spans_[0..i]. */
    std::vector<Addr> prefixMaxLimit_;
};

} // namespace epf

#endif // EPF_PPF_FILTER_HPP
