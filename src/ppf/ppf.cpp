#include "ppf/ppf.hpp"

#include <cassert>
#include <stdexcept>

namespace epf
{

namespace
{

/** Blocked-mode per-PPU local queue bound: a storming chain fills this
 *  and then drops (with a stat) instead of growing without limit. */
constexpr std::size_t kMaxBlockedLocal = 256;

/** Bounded quarantine transition log (the hash covers everything). */
constexpr std::size_t kMaxQuarantineLog = 256;

} // namespace

ProgrammablePrefetcher::ProgrammablePrefetcher(EventQueue &eq,
                                               GuestMemory &mem,
                                               const PpfConfig &cfg)
    : eq_(eq), mem_(mem), cfg_(cfg), ppuClock_(cfg.ppuPeriod)
{
    // Queue capacities are load-bearing below (drop-oldest pops the
    // front before pushing): a zero capacity would pop an empty ring.
    // These are host configuration errors, not kernel-controlled
    // conditions, so they throw rather than degrade.
    if (cfg_.numPpus == 0)
        throw std::invalid_argument("PpfConfig::numPpus must be positive");
    if (cfg_.ppuPeriod == 0)
        throw std::invalid_argument("PpfConfig::ppuPeriod must be positive");
    if (cfg_.obsQueueCapacity == 0)
        throw std::invalid_argument(
            "PpfConfig::obsQueueCapacity must be positive");
    if (cfg_.reqQueueCapacity == 0)
        throw std::invalid_argument(
            "PpfConfig::reqQueueCapacity must be positive");
    if (cfg_.stormWindowTicks > 0 && cfg_.stormThreshold == 0)
        throw std::invalid_argument(
            "PpfConfig::stormThreshold must be positive when the storm "
            "throttle window is enabled");

    globals_.resize(kGlobalRegs, 0);
    ppus_.resize(cfg_.numPpus);
    ppuStats_.resize(cfg_.numPpus);
}

int
ProgrammablePrefetcher::addFilter(const FilterEntry &e)
{
    int idx = filters_.add(e);
    lookahead_.emplace_back(cfg_.ewmaShift, cfg_.maxLookahead,
                            cfg_.initialLookahead, cfg_.lookaheadScale);
    return idx;
}

std::int32_t
ProgrammablePrefetcher::registerTag(KernelId kernel)
{
    tagKernels_.push_back(kernel);
    return static_cast<std::int32_t>(tagKernels_.size() - 1);
}

void
ProgrammablePrefetcher::setGlobal(unsigned idx, std::uint64_t value)
{
    globals_.at(idx) = value;
    if (idx >= globalsAllocated_)
        globalsAllocated_ = idx + 1;
}

unsigned
ProgrammablePrefetcher::allocGlobal(std::uint64_t value)
{
    unsigned idx = globalsAllocated_++;
    globals_.at(idx) = value;
    return idx;
}

std::uint64_t
ProgrammablePrefetcher::lookaheadOf(int idx) const
{
    return lookahead_.at(static_cast<std::size_t>(idx)).lookahead();
}

void
ProgrammablePrefetcher::reset()
{
    ++epoch_;
    kernels_.clear();
    decoded_.clear(); // stale with the table (version() also moved)
    filters_.clear();
    lookahead_.clear();
    tagKernels_.clear();
    std::fill(globals_.begin(), globals_.end(), 0);
    globalsAllocated_ = 0;
    obsQueue_.clear();
    reqQueue_.clear();
    for (auto &p : ppus_)
        p.clear();
    // Scheduler state is transient, like the PPUs themselves: a stale
    // round-robin cursor would make the first post-reset event land on a
    // history-dependent unit.  (globalsAllocated_ and tagKernels_ are
    // rebuilt above with the rest of the configuration.)
    rrNext_ = 0;
    for (auto &s : ppuStats_)
        s = PpuStats{};
    stormWindow_ = 0;
    stormCount_ = 0;
    throttled_ = false;
    kernelHealth_.clear();
    quarantineLog_.clear();
    quarantineLogHash_ = 0xCBF29CE484222325ULL;
    stats_ = Stats{};
}

void
ProgrammablePrefetcher::contextSwitch()
{
    ++epoch_; // aborts every in-flight event
    obsQueue_.clear();
    reqQueue_.clear();
    for (auto &p : ppus_)
        p.clear();
    // The round-robin cursor goes with the PPU state it points into —
    // it is scheduler state, not saved configuration.
    rrNext_ = 0;
    for (auto &la : lookahead_)
        la.reset();
    // Throttle window accounting is transient scheduler state.
    stormWindow_ = 0;
    stormCount_ = 0;
    throttled_ = false;
    // Configuration (filters, globals, kernels, tags) survives: it is
    // exactly the state the OS saves across context switches (Sec. 5.3).
    // Quarantine state survives too — it is the OS-visible protection
    // record of a misbehaving kernel, not per-episode scratch.
}

// ---------------------------------------------------------------------
// Snoop and fill ports
// ---------------------------------------------------------------------

void
ProgrammablePrefetcher::notifyDemand(Addr vaddr, bool is_load, bool hit,
                                     int stream_id)
{
    (void)hit;
    (void)stream_id;
    if (!is_load)
        return; // the filter snoops reads

    const Tick now = eq_.now();
    filters_.match(vaddr, [&](int idx, const FilterEntry &e) {
        if (e.timeSource)
            lookahead_[static_cast<std::size_t>(idx)].observeAccess(now);
        if (e.onLoad == kNoKernel)
            return;
        Observation obs;
        obs.vaddr = vaddr;
        obs.kernel = e.onLoad;
        obs.hasLine = false;
        if (e.timedStart) {
            obs.hasTimedStart = true;
            obs.timedStart = now;
            obs.timedOrigin = static_cast<std::int16_t>(idx);
        }
        if (cfg_.batchedObservations)
            obsScratch_.push_back(std::move(obs));
        else
            enqueueObservation(std::move(obs));
    });
    if (cfg_.batchedObservations)
        flushObservationScratch();
}

void
ProgrammablePrefetcher::notifyPrefetchFill(const LineRequest &req)
{
    const Tick now = eq_.now();

    // Chain-latency EWMA sampling (timed chains reaching a timed-end
    // range attribute the latency to the chain's origin entry).
    // Synthesised completions involve no memory access and are skipped.
    if (!req.synthesized && req.hasTimedStart && req.timedOrigin >= 0 &&
        static_cast<std::size_t>(req.timedOrigin) < lookahead_.size()) {
        bool ended = false;
        filters_.match(req.vaddr, [&](int, const FilterEntry &e) {
            if (e.timedEnd)
                ended = true;
        });
        if (ended) {
            lookahead_[static_cast<std::size_t>(req.timedOrigin)]
                .observeChain(now - req.timedStart);
            ++stats_.chainSamples;
        }
    }

    routeFill(req);
}

void
ProgrammablePrefetcher::routeFill(const LineRequest &req)
{
    // Blocked mode: fills whose chain stalled a PPU return to that PPU.
    if (cfg_.blocking && req.originPpu >= 0 &&
        static_cast<unsigned>(req.originPpu) < ppus_.size()) {
        Ppu &p = ppus_[static_cast<unsigned>(req.originPpu)];
        if (p.busy && p.pendingFills > 0) {
            --p.pendingFills;
            KernelId k = kNoKernel;
            if (req.cbKernel >= 0)
                k = req.cbKernel;
            else if (req.tag >= 0 &&
                     static_cast<std::size_t>(req.tag) < tagKernels_.size())
                k = tagKernels_[static_cast<std::size_t>(req.tag)];
            if (k != kNoKernel) {
                if (p.local.size() >= kMaxBlockedLocal) {
                    // A storming chain filled the local queue: drop the
                    // continuation (it is a hint) instead of growing.
                    ++stats_.localDropped;
                } else {
                    Observation obs;
                    obs.vaddr = req.vaddr;
                    obs.kernel = k;
                    obs.hasLine =
                        mem_.readLine(lineAlign(req.vaddr), obs.line);
                    obs.hasTimedStart = req.hasTimedStart;
                    obs.timedStart = req.timedStart;
                    obs.timedOrigin = req.timedOrigin;
                    p.local.push_back(std::move(obs));
                }
            }
            pumpBlocked(static_cast<unsigned>(req.originPpu));
            return;
        }
    }

    // Event-triggered routing: explicit callback kernel beats tag beats
    // address-range match (PF Ptr).
    KernelId k = kNoKernel;
    if (req.cbKernel >= 0) {
        k = req.cbKernel;
    } else if (req.tag >= 0 &&
               static_cast<std::size_t>(req.tag) < tagKernels_.size()) {
        k = tagKernels_[static_cast<std::size_t>(req.tag)];
    }

    auto makeObs = [&](KernelId kernel) {
        Observation obs;
        obs.vaddr = req.vaddr;
        obs.kernel = kernel;
        obs.hasLine = mem_.readLine(lineAlign(req.vaddr), obs.line);
        obs.hasTimedStart = req.hasTimedStart;
        obs.timedStart = req.timedStart;
        obs.timedOrigin = req.timedOrigin;
        if (!obs.hasLine) {
            ++stats_.obsNoData;
            return;
        }
        if (cfg_.batchedObservations)
            obsScratch_.push_back(std::move(obs));
        else
            enqueueObservation(std::move(obs));
    };

    if (k != kNoKernel) {
        makeObs(k);
    } else {
        filters_.match(req.vaddr, [&](int, const FilterEntry &e) {
            if (e.onPrefetch != kNoKernel)
                makeObs(e.onPrefetch);
        });
    }
    if (cfg_.batchedObservations)
        flushObservationScratch();
}

void
ProgrammablePrefetcher::notifyPrefetchDropped(const LineRequest &req)
{
    if (cfg_.blocking && req.originPpu >= 0 &&
        static_cast<unsigned>(req.originPpu) < ppus_.size()) {
        Ppu &p = ppus_[static_cast<unsigned>(req.originPpu)];
        if (p.busy && p.pendingFills > 0) {
            --p.pendingFills;
            pumpBlocked(static_cast<unsigned>(req.originPpu));
        }
    }
}

// ---------------------------------------------------------------------
// Observation queue and scheduler
// ---------------------------------------------------------------------

void
ProgrammablePrefetcher::enqueueObservation(Observation obs)
{
    if (faults_ != nullptr) {
        if (faults_->fire(FaultSite::kObsDrop))
            return; // lost before the queue ever saw it
        if (faults_->fire(FaultSite::kObsDelay)) {
            // Late delivery: re-enters past the fault sites, so an
            // injected delay can never re-draw itself, and carries the
            // epoch guard like every other in-flight event.
            const std::uint64_t epoch = epoch_;
            eq_.scheduleIn(faults_->delayTicks(FaultSite::kObsDelay),
                           [this, epoch, obs = std::move(obs)]() mutable {
                               if (epoch != epoch_)
                                   return;
                               enqueueObservationNow(std::move(obs));
                           });
            return;
        }
        if (faults_->fire(FaultSite::kObsOverflow) && !obsQueue_.empty()) {
            // Simulate capacity pressure: evict the oldest entry as a
            // real overflow would.
            obsQueue_.pop_front();
            ++stats_.obsDropped;
        }
    }
    enqueueObservationNow(std::move(obs));
}

void
ProgrammablePrefetcher::enqueueObservationNow(Observation obs)
{
    ++stats_.observations;
    if (obsQueue_.size() >= cfg_.obsQueueCapacity) {
        // Old observations are safely droppable (Section 4.3).
        obsQueue_.pop_front();
        ++stats_.obsDropped;
    }
    obsQueue_.push_back(std::move(obs));
    trySchedule();
}

void
ProgrammablePrefetcher::flushObservationScratch()
{
    if (obsScratch_.empty())
        return;
    if (faults_ != nullptr) {
        // Fault injection draws once per delivered observation, so the
        // batch fast path (which skips the per-observation front door)
        // would skip injection sites.  Always take the per-push path.
        for (Observation &obs : obsScratch_)
            enqueueObservation(std::move(obs));
        obsScratch_.clear();
        return;
    }
    if (obsQueue_.size() + obsScratch_.size() <= cfg_.obsQueueCapacity) {
        // The whole batch fits: no drop is possible, so pushing it all
        // and draining once is observably identical to per-push
        // delivery (the queue is FIFO and the scheduler pops from the
        // front, so assignment order cannot change).
        stats_.observations += obsScratch_.size();
        for (Observation &obs : obsScratch_)
            obsQueue_.push_back(std::move(obs));
        obsScratch_.clear();
        trySchedule();
        return;
    }
    // The batch could overflow the queue: take the per-push path so
    // the drop sequence matches per-match delivery exactly.
    for (Observation &obs : obsScratch_)
        enqueueObservation(std::move(obs));
    obsScratch_.clear();
}

int
ProgrammablePrefetcher::pickFreePpu()
{
    if (cfg_.policy == SchedulePolicy::kLowestId) {
        for (unsigned i = 0; i < ppus_.size(); ++i) {
            if (!ppus_[i].busy)
                return static_cast<int>(i);
        }
        return -1;
    }
    for (unsigned n = 0; n < ppus_.size(); ++n) {
        unsigned i = (rrNext_ + n) % ppus_.size();
        if (!ppus_[i].busy) {
            rrNext_ = (i + 1) % ppus_.size();
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
ProgrammablePrefetcher::trySchedule()
{
    while (!obsQueue_.empty()) {
        int ppu = pickFreePpu();
        if (ppu < 0)
            return;
        Observation obs = std::move(obsQueue_.front());
        obsQueue_.pop_front();
        startEvent(static_cast<unsigned>(ppu), std::move(obs));
    }
}

void
ProgrammablePrefetcher::startEvent(unsigned ppu, Observation obs)
{
    Ppu &p = ppus_[ppu];
    assert(!p.busy);
    p.busy = true;
    p.executing = true;
    p.lastAssign = eq_.now();

    const Tick start = ppuClock_.edgeAtOrAfter(
        eq_.now() + ppuClock_.cyclesToTicks(cfg_.dispatchOverhead));
    const std::uint64_t epoch = epoch_;
    eq_.schedule(start, [this, ppu, epoch, obs = std::move(obs), start] {
        if (epoch != epoch_)
            return; // aborted by a context switch
        executeEvent(ppu, obs, start);
    });
}

void
ProgrammablePrefetcher::executeEvent(unsigned ppu, const Observation &obs,
                                     Tick start)
{
    if (!kernels_.valid(obs.kernel)) {
        releasePpu(ppu, start);
        return;
    }

    if (cfg_.quarantineThreshold > 0 && kernelQuarantined(obs.kernel, start)) {
        ++stats_.quarantineSkips;
        releasePpu(ppu, start);
        return;
    }

    // Snapshot the lookahead values the kernel can read (scratch buffer,
    // capacity reused across events).
    lookaheadScratch_.resize(lookahead_.size());
    for (std::size_t i = 0; i < lookahead_.size(); ++i)
        lookaheadScratch_[i] = lookahead_[i].lookahead();

    EventContext ctx;
    ctx.vaddr = obs.vaddr;
    ctx.hasLine = obs.hasLine;
    ctx.line = obs.line;
    ctx.globalRegs = globals_.data();
    ctx.lookahead = lookaheadScratch_.data();
    ctx.lookaheadEntries = static_cast<unsigned>(lookaheadScratch_.size());

    // The emit buffer must outlive this call (it rides to finishEvent),
    // so it comes from a pool rather than the stack.  Both interpreter
    // paths append straight into it — no per-emit callback indirection.
    std::vector<PrefetchEmit> *emits = emitBuffers_.acquire();
    emits->clear();
    // Injected runaway: the kernel spins its whole watchdog budget and
    // produces nothing — pure lost PPU time, charged below like a real
    // step-limit exhaustion.
    const bool runaway =
        faults_ != nullptr && faults_->fire(FaultSite::kRunaway);
    // The decoded fast path and the reference interpreter are held
    // bit-identical by the differential fuzzer, so this choice cannot
    // affect simulated timing.
    const ExecResult res =
        runaway ? ExecResult{ExitReason::kStepLimit, kMaxKernelSteps, 0}
        : cfg_.predecode
            ? DecodedKernel::run(*decodedFor(obs.kernel), ctx, emits)
            : Interpreter::run(kernels_[obs.kernel], ctx, emits);

    ++stats_.eventsRun;
    ++ppuStats_[ppu].events;
    if (res.exit == ExitReason::kTrapped)
        ++stats_.traps;
    else if (res.exit == ExitReason::kStepLimit)
        ++stats_.stepLimits;
    if (cfg_.quarantineThreshold > 0 && res.exit != ExitReason::kHalted)
        recordKernelFault(obs.kernel, start);

    const Tick finish =
        start + ppuClock_.cyclesToTicks(std::max<std::uint32_t>(res.cycles, 1));
    const std::uint64_t epoch = epoch_;
    eq_.schedule(finish, [this, ppu, epoch, finish, emits, obs] {
        if (epoch != epoch_) {
            emitBuffers_.release(emits); // aborted: just recycle
            return;
        }
        finishEvent(ppu, finish, emits, obs);
    });
}

void
ProgrammablePrefetcher::finishEvent(unsigned ppu, Tick finish,
                                    std::vector<PrefetchEmit> *emits,
                                    Observation obs)
{
    Ppu &p = ppus_[ppu];
    p.executing = false;

    // Injected emit storm: the kernel's emit list replays storm-factor
    // times, as a buggy self-retriggering kernel would flood the queue.
    unsigned reps = 1;
    if (faults_ != nullptr && !emits->empty() &&
        faults_->fire(FaultSite::kEmitStorm)) {
        reps = faults_->config().stormFactor > 0
                   ? faults_->config().stormFactor
                   : 1;
        if (cfg_.quarantineThreshold > 0)
            recordKernelFault(obs.kernel, finish);
    }

    bool chained = false;
    for (unsigned r = 0; r < reps; ++r) {
        for (const auto &e : *emits) {
            bool is_chain = e.cbKernel != kNoKernel || e.tag >= 0;
            if (cfg_.blocking && is_chain) {
                ++p.pendingFills;
                chained = true;
            }
            queueRequest(e, obs, cfg_.blocking && is_chain
                                      ? static_cast<int>(ppu)
                                      : -1);
        }
    }
    stats_.prefetchesEmitted += emits->size() * reps;
    const bool any = !emits->empty();
    emitBuffers_.release(emits);

    if (any && kick_)
        kick_();

    if (cfg_.blocking && (chained || p.pendingFills > 0 || !p.local.empty())) {
        // Blocked mode: the unit stalls until its chain resolves.
        ++stats_.blockedStalls;
        pumpBlocked(ppu);
        return;
    }

    releasePpu(ppu, finish);
}

void
ProgrammablePrefetcher::releasePpu(unsigned ppu, Tick now)
{
    Ppu &p = ppus_[ppu];
    assert(p.busy);
    ppuStats_[ppu].busyTicks += now > p.lastAssign ? now - p.lastAssign : 0;
    p.busy = false;
    p.executing = false;
    p.pendingFills = 0;
    p.local.clear();
    trySchedule();
}

void
ProgrammablePrefetcher::pumpBlocked(unsigned ppu)
{
    Ppu &p = ppus_[ppu];
    if (!p.busy || p.executing)
        return;
    if (!p.local.empty()) {
        Observation obs = std::move(p.local.front());
        p.local.pop_front();
        p.executing = true;
        const Tick start = ppuClock_.edgeAtOrAfter(eq_.now());
        const std::uint64_t epoch = epoch_;
        eq_.schedule(start, [this, ppu, epoch, obs = std::move(obs), start] {
            if (epoch != epoch_)
                return;
            executeEvent(ppu, obs, start);
        });
        return;
    }
    if (p.pendingFills == 0)
        releasePpu(ppu, eq_.now());
}

const DecodedKernel *
ProgrammablePrefetcher::decodedFor(KernelId id)
{
    // Any kernel-table mutation (registration, relocation patching,
    // reset) moves version(): drop the whole cache and rebuild lazily.
    // Between mutations this is two loads and a compare per event.
    if (decodedVersion_ != kernels_.version()) {
        decoded_.clear();
        decodedVersion_ = kernels_.version();
    }
    if (decoded_.size() < kernels_.size())
        decoded_.resize(kernels_.size());
    auto &slot = decoded_[static_cast<std::size_t>(id)];
    if (!slot)
        slot = DecodeCache::decode(kernels_[id], cfg_.superblocks);
    return slot.get();
}

// ---------------------------------------------------------------------
// Prefetch request queue
// ---------------------------------------------------------------------

void
ProgrammablePrefetcher::queueRequest(const PrefetchEmit &e,
                                     const Observation &obs, int origin_ppu)
{
    LineRequest req;
    req.vaddr = e.vaddr;
    req.isPrefetch = true;
    req.tag = e.tag;
    req.cbKernel = e.cbKernel;
    req.hasTimedStart = obs.hasTimedStart;
    req.timedStart = obs.timedStart;
    req.timedOrigin = obs.timedOrigin;
    req.originPpu = static_cast<std::int16_t>(origin_ppu);

    if (faults_ != nullptr) {
        // Target corruption keeps the callback/tag intact on purpose:
        // the misdirected fill still triggers its kernel, on whatever
        // wrong line it fetched — the hardest "pure hint" case.
        if (faults_->fire(FaultSite::kReqCorruptIn))
            req.vaddr = corruptMapped(faults_->draw(FaultSite::kReqCorruptIn));
        if (faults_->fire(FaultSite::kReqCorruptOut)) {
            req.vaddr =
                corruptUnmapped(faults_->draw(FaultSite::kReqCorruptOut));
        }
        if (faults_->fire(FaultSite::kReqDrop)) {
            if (cfg_.blocking && req.originPpu >= 0)
                notifyPrefetchDropped(req);
            return;
        }
        if (faults_->fire(FaultSite::kReqDelay)) {
            const std::uint64_t epoch = epoch_;
            eq_.scheduleIn(faults_->delayTicks(FaultSite::kReqDelay),
                           [this, epoch, req]() mutable {
                               if (epoch != epoch_)
                                   return;
                               queueRequestNow(std::move(req));
                               // finishEvent's kick already ran; a late
                               // request must prod the port itself.
                               if (kick_)
                                   kick_();
                           });
            return;
        }
        if (faults_->fire(FaultSite::kReqOverflow) && !reqQueue_.empty()) {
            LineRequest old = std::move(reqQueue_.front());
            reqQueue_.pop_front();
            ++stats_.reqDropped;
            if (cfg_.blocking && old.originPpu >= 0)
                notifyPrefetchDropped(old);
        }
    }

    queueRequestNow(std::move(req));
}

void
ProgrammablePrefetcher::queueRequestNow(LineRequest req)
{
    // Event-storm backpressure (config-gated): past the per-window
    // budget, requests drop with a stat until the window rolls over.
    if (cfg_.stormWindowTicks > 0) {
        const std::uint64_t window = eq_.now() / cfg_.stormWindowTicks;
        if (window != stormWindow_) {
            stormWindow_ = window;
            stormCount_ = 0;
            throttled_ = false;
        }
        if (throttled_ || ++stormCount_ > cfg_.stormThreshold) {
            if (!throttled_) {
                throttled_ = true;
                ++stats_.throttleEntries;
            }
            ++stats_.throttleDropped;
            if (cfg_.blocking && req.originPpu >= 0)
                notifyPrefetchDropped(req);
            return;
        }
    }

    if (reqQueue_.size() >= cfg_.reqQueueCapacity) {
        // Drop the oldest request (Section 4.6); release any blocked
        // PPU waiting on it.
        LineRequest old = std::move(reqQueue_.front());
        reqQueue_.pop_front();
        ++stats_.reqDropped;
        if (cfg_.blocking && old.originPpu >= 0)
            notifyPrefetchDropped(old);
    }
    reqQueue_.push_back(std::move(req));
}

Addr
ProgrammablePrefetcher::corruptMapped(std::uint64_t bits) const
{
    const auto &regions = mem_.regions();
    if (regions.empty())
        return corruptUnmapped(bits);
    const auto &r = regions[bits % regions.size()];
    const Addr offset = r.size > 0 ? (bits >> 20) % r.size : 0;
    return lineAlign(r.base + offset);
}

Addr
ProgrammablePrefetcher::corruptUnmapped(std::uint64_t bits) const
{
    // Regions allocate upward from GuestMemory::kGuestBase, so a high
    // candidate is almost always free; step until it is.
    Addr a = 0x7F00'0000'0000ULL | (lineAlign(bits) & 0x00FF'FFFF'FFC0ULL);
    while (mem_.contains(a, kLineBytes))
        a += Addr{1} << 30;
    return a;
}

// ---------------------------------------------------------------------
// Quarantine watchdog
// ---------------------------------------------------------------------

bool
ProgrammablePrefetcher::kernelQuarantined(KernelId k, Tick now)
{
    const auto idx = static_cast<std::size_t>(k);
    if (idx >= kernelHealth_.size())
        return false;
    KernelHealth &h = kernelHealth_[idx];
    if (h.quarantinedUntil == 0)
        return false;
    if (now < h.quarantinedUntil)
        return true;
    // Backoff expired: re-enable with a clean fault count.  The backoff
    // level survives, so a kernel that immediately misbehaves again is
    // quarantined for twice as long.
    h.quarantinedUntil = 0;
    h.faults = 0;
    ++stats_.quarantineReenables;
    logQuarantine(now, k, false, h.backoffLevel);
    return false;
}

void
ProgrammablePrefetcher::recordKernelFault(KernelId k, Tick now)
{
    const auto idx = static_cast<std::size_t>(k);
    if (idx >= kernelHealth_.size())
        kernelHealth_.resize(kernels_.size() > idx + 1 ? kernels_.size()
                                                       : idx + 1);
    KernelHealth &h = kernelHealth_[idx];
    if (h.quarantinedUntil != 0)
        return; // already killed; the fault is part of the same episode
    if (++h.faults < cfg_.quarantineThreshold)
        return;

    const unsigned level = h.backoffLevel < cfg_.quarantineBackoffMax
                               ? h.backoffLevel
                               : cfg_.quarantineBackoffMax;
    h.quarantinedUntil = now + (cfg_.quarantineBaseTicks << level);
    ++h.backoffLevel;
    ++stats_.quarantineKills;
    logQuarantine(now, k, true, level);
}

void
ProgrammablePrefetcher::logQuarantine(Tick tick, KernelId k, bool kill,
                                      unsigned level)
{
    if (quarantineLog_.size() < kMaxQuarantineLog)
        quarantineLog_.push_back({tick, k, kill, level});
    // FNV-1a over the transition tuple: coverage never saturates.
    auto mix = [this](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            quarantineLogHash_ ^= (v >> (i * 8)) & 0xFF;
            quarantineLogHash_ *= 0x100000001B3ULL;
        }
    };
    mix(tick);
    mix(static_cast<std::uint64_t>(k));
    mix(kill ? 1 : 0);
    mix(level);
}

LineRequest
ProgrammablePrefetcher::popRequest()
{
    LineRequest r = std::move(reqQueue_.front());
    reqQueue_.pop_front();
    return r;
}

} // namespace epf
