#include "ppf/ppf.hpp"

#include <cassert>

namespace epf
{

ProgrammablePrefetcher::ProgrammablePrefetcher(EventQueue &eq,
                                               GuestMemory &mem,
                                               const PpfConfig &cfg)
    : eq_(eq), mem_(mem), cfg_(cfg), ppuClock_(cfg.ppuPeriod)
{
    globals_.resize(kGlobalRegs, 0);
    ppus_.resize(cfg_.numPpus);
    ppuStats_.resize(cfg_.numPpus);
}

int
ProgrammablePrefetcher::addFilter(const FilterEntry &e)
{
    int idx = filters_.add(e);
    lookahead_.emplace_back(cfg_.ewmaShift, cfg_.maxLookahead,
                            cfg_.initialLookahead, cfg_.lookaheadScale);
    return idx;
}

std::int32_t
ProgrammablePrefetcher::registerTag(KernelId kernel)
{
    tagKernels_.push_back(kernel);
    return static_cast<std::int32_t>(tagKernels_.size() - 1);
}

void
ProgrammablePrefetcher::setGlobal(unsigned idx, std::uint64_t value)
{
    globals_.at(idx) = value;
    if (idx >= globalsAllocated_)
        globalsAllocated_ = idx + 1;
}

unsigned
ProgrammablePrefetcher::allocGlobal(std::uint64_t value)
{
    unsigned idx = globalsAllocated_++;
    globals_.at(idx) = value;
    return idx;
}

std::uint64_t
ProgrammablePrefetcher::lookaheadOf(int idx) const
{
    return lookahead_.at(static_cast<std::size_t>(idx)).lookahead();
}

void
ProgrammablePrefetcher::reset()
{
    ++epoch_;
    kernels_.clear();
    decoded_.clear(); // stale with the table (version() also moved)
    filters_.clear();
    lookahead_.clear();
    tagKernels_.clear();
    std::fill(globals_.begin(), globals_.end(), 0);
    globalsAllocated_ = 0;
    obsQueue_.clear();
    reqQueue_.clear();
    for (auto &p : ppus_)
        p.clear();
    // Scheduler state is transient, like the PPUs themselves: a stale
    // round-robin cursor would make the first post-reset event land on a
    // history-dependent unit.  (globalsAllocated_ and tagKernels_ are
    // rebuilt above with the rest of the configuration.)
    rrNext_ = 0;
    for (auto &s : ppuStats_)
        s = PpuStats{};
    stats_ = Stats{};
}

void
ProgrammablePrefetcher::contextSwitch()
{
    ++epoch_; // aborts every in-flight event
    obsQueue_.clear();
    reqQueue_.clear();
    for (auto &p : ppus_)
        p.clear();
    // The round-robin cursor goes with the PPU state it points into —
    // it is scheduler state, not saved configuration.
    rrNext_ = 0;
    for (auto &la : lookahead_)
        la.reset();
    // Configuration (filters, globals, kernels, tags) survives: it is
    // exactly the state the OS saves across context switches (Sec. 5.3).
}

// ---------------------------------------------------------------------
// Snoop and fill ports
// ---------------------------------------------------------------------

void
ProgrammablePrefetcher::notifyDemand(Addr vaddr, bool is_load, bool hit,
                                     int stream_id)
{
    (void)hit;
    (void)stream_id;
    if (!is_load)
        return; // the filter snoops reads

    const Tick now = eq_.now();
    filters_.match(vaddr, [&](int idx, const FilterEntry &e) {
        if (e.timeSource)
            lookahead_[static_cast<std::size_t>(idx)].observeAccess(now);
        if (e.onLoad == kNoKernel)
            return;
        Observation obs;
        obs.vaddr = vaddr;
        obs.kernel = e.onLoad;
        obs.hasLine = false;
        if (e.timedStart) {
            obs.hasTimedStart = true;
            obs.timedStart = now;
            obs.timedOrigin = static_cast<std::int16_t>(idx);
        }
        if (cfg_.batchedObservations)
            obsScratch_.push_back(std::move(obs));
        else
            enqueueObservation(std::move(obs));
    });
    if (cfg_.batchedObservations)
        flushObservationScratch();
}

void
ProgrammablePrefetcher::notifyPrefetchFill(const LineRequest &req)
{
    const Tick now = eq_.now();

    // Chain-latency EWMA sampling (timed chains reaching a timed-end
    // range attribute the latency to the chain's origin entry).
    // Synthesised completions involve no memory access and are skipped.
    if (!req.synthesized && req.hasTimedStart && req.timedOrigin >= 0 &&
        static_cast<std::size_t>(req.timedOrigin) < lookahead_.size()) {
        bool ended = false;
        filters_.match(req.vaddr, [&](int, const FilterEntry &e) {
            if (e.timedEnd)
                ended = true;
        });
        if (ended) {
            lookahead_[static_cast<std::size_t>(req.timedOrigin)]
                .observeChain(now - req.timedStart);
            ++stats_.chainSamples;
        }
    }

    routeFill(req);
}

void
ProgrammablePrefetcher::routeFill(const LineRequest &req)
{
    // Blocked mode: fills whose chain stalled a PPU return to that PPU.
    if (cfg_.blocking && req.originPpu >= 0 &&
        static_cast<unsigned>(req.originPpu) < ppus_.size()) {
        Ppu &p = ppus_[static_cast<unsigned>(req.originPpu)];
        if (p.busy && p.pendingFills > 0) {
            --p.pendingFills;
            KernelId k = kNoKernel;
            if (req.cbKernel >= 0)
                k = req.cbKernel;
            else if (req.tag >= 0 &&
                     static_cast<std::size_t>(req.tag) < tagKernels_.size())
                k = tagKernels_[static_cast<std::size_t>(req.tag)];
            if (k != kNoKernel) {
                Observation obs;
                obs.vaddr = req.vaddr;
                obs.kernel = k;
                obs.hasLine = mem_.readLine(lineAlign(req.vaddr), obs.line);
                obs.hasTimedStart = req.hasTimedStart;
                obs.timedStart = req.timedStart;
                obs.timedOrigin = req.timedOrigin;
                p.local.push_back(std::move(obs));
            }
            pumpBlocked(static_cast<unsigned>(req.originPpu));
            return;
        }
    }

    // Event-triggered routing: explicit callback kernel beats tag beats
    // address-range match (PF Ptr).
    KernelId k = kNoKernel;
    if (req.cbKernel >= 0) {
        k = req.cbKernel;
    } else if (req.tag >= 0 &&
               static_cast<std::size_t>(req.tag) < tagKernels_.size()) {
        k = tagKernels_[static_cast<std::size_t>(req.tag)];
    }

    auto makeObs = [&](KernelId kernel) {
        Observation obs;
        obs.vaddr = req.vaddr;
        obs.kernel = kernel;
        obs.hasLine = mem_.readLine(lineAlign(req.vaddr), obs.line);
        obs.hasTimedStart = req.hasTimedStart;
        obs.timedStart = req.timedStart;
        obs.timedOrigin = req.timedOrigin;
        if (!obs.hasLine) {
            ++stats_.obsNoData;
            return;
        }
        if (cfg_.batchedObservations)
            obsScratch_.push_back(std::move(obs));
        else
            enqueueObservation(std::move(obs));
    };

    if (k != kNoKernel) {
        makeObs(k);
    } else {
        filters_.match(req.vaddr, [&](int, const FilterEntry &e) {
            if (e.onPrefetch != kNoKernel)
                makeObs(e.onPrefetch);
        });
    }
    if (cfg_.batchedObservations)
        flushObservationScratch();
}

void
ProgrammablePrefetcher::notifyPrefetchDropped(const LineRequest &req)
{
    if (cfg_.blocking && req.originPpu >= 0 &&
        static_cast<unsigned>(req.originPpu) < ppus_.size()) {
        Ppu &p = ppus_[static_cast<unsigned>(req.originPpu)];
        if (p.busy && p.pendingFills > 0) {
            --p.pendingFills;
            pumpBlocked(static_cast<unsigned>(req.originPpu));
        }
    }
}

// ---------------------------------------------------------------------
// Observation queue and scheduler
// ---------------------------------------------------------------------

void
ProgrammablePrefetcher::enqueueObservation(Observation obs)
{
    ++stats_.observations;
    if (obsQueue_.size() >= cfg_.obsQueueCapacity) {
        // Old observations are safely droppable (Section 4.3).
        obsQueue_.pop_front();
        ++stats_.obsDropped;
    }
    obsQueue_.push_back(std::move(obs));
    trySchedule();
}

void
ProgrammablePrefetcher::flushObservationScratch()
{
    if (obsScratch_.empty())
        return;
    if (obsQueue_.size() + obsScratch_.size() <= cfg_.obsQueueCapacity) {
        // The whole batch fits: no drop is possible, so pushing it all
        // and draining once is observably identical to per-push
        // delivery (the queue is FIFO and the scheduler pops from the
        // front, so assignment order cannot change).
        stats_.observations += obsScratch_.size();
        for (Observation &obs : obsScratch_)
            obsQueue_.push_back(std::move(obs));
        obsScratch_.clear();
        trySchedule();
        return;
    }
    // The batch could overflow the queue: take the per-push path so
    // the drop sequence matches per-match delivery exactly.
    for (Observation &obs : obsScratch_)
        enqueueObservation(std::move(obs));
    obsScratch_.clear();
}

int
ProgrammablePrefetcher::pickFreePpu()
{
    if (cfg_.policy == SchedulePolicy::kLowestId) {
        for (unsigned i = 0; i < ppus_.size(); ++i) {
            if (!ppus_[i].busy)
                return static_cast<int>(i);
        }
        return -1;
    }
    for (unsigned n = 0; n < ppus_.size(); ++n) {
        unsigned i = (rrNext_ + n) % ppus_.size();
        if (!ppus_[i].busy) {
            rrNext_ = (i + 1) % ppus_.size();
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
ProgrammablePrefetcher::trySchedule()
{
    while (!obsQueue_.empty()) {
        int ppu = pickFreePpu();
        if (ppu < 0)
            return;
        Observation obs = std::move(obsQueue_.front());
        obsQueue_.pop_front();
        startEvent(static_cast<unsigned>(ppu), std::move(obs));
    }
}

void
ProgrammablePrefetcher::startEvent(unsigned ppu, Observation obs)
{
    Ppu &p = ppus_[ppu];
    assert(!p.busy);
    p.busy = true;
    p.executing = true;
    p.lastAssign = eq_.now();

    const Tick start = ppuClock_.edgeAtOrAfter(
        eq_.now() + ppuClock_.cyclesToTicks(cfg_.dispatchOverhead));
    const std::uint64_t epoch = epoch_;
    eq_.schedule(start, [this, ppu, epoch, obs = std::move(obs), start] {
        if (epoch != epoch_)
            return; // aborted by a context switch
        executeEvent(ppu, obs, start);
    });
}

void
ProgrammablePrefetcher::executeEvent(unsigned ppu, const Observation &obs,
                                     Tick start)
{
    if (!kernels_.valid(obs.kernel)) {
        releasePpu(ppu, start);
        return;
    }

    // Snapshot the lookahead values the kernel can read (scratch buffer,
    // capacity reused across events).
    lookaheadScratch_.resize(lookahead_.size());
    for (std::size_t i = 0; i < lookahead_.size(); ++i)
        lookaheadScratch_[i] = lookahead_[i].lookahead();

    EventContext ctx;
    ctx.vaddr = obs.vaddr;
    ctx.hasLine = obs.hasLine;
    ctx.line = obs.line;
    ctx.globalRegs = globals_.data();
    ctx.lookahead = lookaheadScratch_.data();
    ctx.lookaheadEntries = static_cast<unsigned>(lookaheadScratch_.size());

    // The emit buffer must outlive this call (it rides to finishEvent),
    // so it comes from a pool rather than the stack.  Both interpreter
    // paths append straight into it — no per-emit callback indirection.
    std::vector<PrefetchEmit> *emits = emitBuffers_.acquire();
    emits->clear();
    // The decoded fast path and the reference interpreter are held
    // bit-identical by the differential fuzzer, so this choice cannot
    // affect simulated timing.
    const ExecResult res =
        cfg_.predecode
            ? DecodedKernel::run(*decodedFor(obs.kernel), ctx, emits)
            : Interpreter::run(kernels_[obs.kernel], ctx, emits);

    ++stats_.eventsRun;
    ++ppuStats_[ppu].events;
    if (res.exit == ExitReason::kTrapped)
        ++stats_.traps;
    else if (res.exit == ExitReason::kStepLimit)
        ++stats_.stepLimits;

    const Tick finish =
        start + ppuClock_.cyclesToTicks(std::max<std::uint32_t>(res.cycles, 1));
    const std::uint64_t epoch = epoch_;
    eq_.schedule(finish, [this, ppu, epoch, finish, emits, obs] {
        if (epoch != epoch_) {
            emitBuffers_.release(emits); // aborted: just recycle
            return;
        }
        finishEvent(ppu, finish, emits, obs);
    });
}

void
ProgrammablePrefetcher::finishEvent(unsigned ppu, Tick finish,
                                    std::vector<PrefetchEmit> *emits,
                                    Observation obs)
{
    Ppu &p = ppus_[ppu];
    p.executing = false;

    bool chained = false;
    for (const auto &e : *emits) {
        bool is_chain = e.cbKernel != kNoKernel || e.tag >= 0;
        if (cfg_.blocking && is_chain) {
            ++p.pendingFills;
            chained = true;
        }
        queueRequest(e, obs, cfg_.blocking && is_chain
                                  ? static_cast<int>(ppu)
                                  : -1);
    }
    stats_.prefetchesEmitted += emits->size();
    const bool any = !emits->empty();
    emitBuffers_.release(emits);

    if (any && kick_)
        kick_();

    if (cfg_.blocking && (chained || p.pendingFills > 0 || !p.local.empty())) {
        // Blocked mode: the unit stalls until its chain resolves.
        ++stats_.blockedStalls;
        pumpBlocked(ppu);
        return;
    }

    releasePpu(ppu, finish);
}

void
ProgrammablePrefetcher::releasePpu(unsigned ppu, Tick now)
{
    Ppu &p = ppus_[ppu];
    assert(p.busy);
    ppuStats_[ppu].busyTicks += now > p.lastAssign ? now - p.lastAssign : 0;
    p.busy = false;
    p.executing = false;
    p.pendingFills = 0;
    p.local.clear();
    trySchedule();
}

void
ProgrammablePrefetcher::pumpBlocked(unsigned ppu)
{
    Ppu &p = ppus_[ppu];
    if (!p.busy || p.executing)
        return;
    if (!p.local.empty()) {
        Observation obs = std::move(p.local.front());
        p.local.pop_front();
        p.executing = true;
        const Tick start = ppuClock_.edgeAtOrAfter(eq_.now());
        const std::uint64_t epoch = epoch_;
        eq_.schedule(start, [this, ppu, epoch, obs = std::move(obs), start] {
            if (epoch != epoch_)
                return;
            executeEvent(ppu, obs, start);
        });
        return;
    }
    if (p.pendingFills == 0)
        releasePpu(ppu, eq_.now());
}

const DecodedKernel *
ProgrammablePrefetcher::decodedFor(KernelId id)
{
    // Any kernel-table mutation (registration, relocation patching,
    // reset) moves version(): drop the whole cache and rebuild lazily.
    // Between mutations this is two loads and a compare per event.
    if (decodedVersion_ != kernels_.version()) {
        decoded_.clear();
        decodedVersion_ = kernels_.version();
    }
    if (decoded_.size() < kernels_.size())
        decoded_.resize(kernels_.size());
    auto &slot = decoded_[static_cast<std::size_t>(id)];
    if (!slot)
        slot = DecodeCache::decode(kernels_[id], cfg_.superblocks);
    return slot.get();
}

// ---------------------------------------------------------------------
// Prefetch request queue
// ---------------------------------------------------------------------

void
ProgrammablePrefetcher::queueRequest(const PrefetchEmit &e,
                                     const Observation &obs, int origin_ppu)
{
    LineRequest req;
    req.vaddr = e.vaddr;
    req.isPrefetch = true;
    req.tag = e.tag;
    req.cbKernel = e.cbKernel;
    req.hasTimedStart = obs.hasTimedStart;
    req.timedStart = obs.timedStart;
    req.timedOrigin = obs.timedOrigin;
    req.originPpu = static_cast<std::int16_t>(origin_ppu);

    if (reqQueue_.size() >= cfg_.reqQueueCapacity) {
        // Drop the oldest request (Section 4.6); release any blocked
        // PPU waiting on it.
        LineRequest old = std::move(reqQueue_.front());
        reqQueue_.pop_front();
        ++stats_.reqDropped;
        if (cfg_.blocking && old.originPpu >= 0)
            notifyPrefetchDropped(old);
    }
    reqQueue_.push_back(std::move(req));
}

LineRequest
ProgrammablePrefetcher::popRequest()
{
    LineRequest r = std::move(reqQueue_.front());
    reqQueue_.pop_front();
    return r;
}

} // namespace epf
