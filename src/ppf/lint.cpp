#include "ppf/lint.hpp"

namespace epf
{
namespace
{

using analysis::KernelContext;

/** Trigger kinds a kernel is reachable through. */
struct Roles
{
    bool demand = false; ///< filter onLoad: no line data
    bool fill = false;   ///< filter onPrefetch, tag binding, prefetch.cb
};

std::vector<Roles>
kernelRoles(const ProgrammablePrefetcher &ppf)
{
    const KernelTable &kt = ppf.kernels();
    std::vector<Roles> roles(kt.size());
    auto mark = [&roles, &kt](KernelId id, bool fill) {
        if (id < 0 || !kt.valid(id))
            return;
        (fill ? roles[static_cast<std::size_t>(id)].fill
              : roles[static_cast<std::size_t>(id)].demand) = true;
    };

    const FilterTable &ft = ppf.filters();
    for (std::size_t i = 0; i < ft.size(); ++i) {
        mark(ft[static_cast<int>(i)].onLoad, false);
        mark(ft[static_cast<int>(i)].onPrefetch, true);
    }
    for (KernelId id : ppf.tagKernels())
        mark(id, true);
    for (std::size_t i = 0; i < kt.size(); ++i)
        for (const Instr &in : kt[static_cast<KernelId>(i)].code)
            if (in.op == Opcode::kPrefetchCb)
                mark(static_cast<KernelId>(in.imm), true);
    return roles;
}

KernelContext
contextFromRoles(const ProgrammablePrefetcher &ppf, const Roles &r)
{
    KernelContext ctx;
    if (r.demand && !r.fill)
        ctx.line = KernelContext::Line::kNever;
    else if (r.fill && !r.demand)
        ctx.line = KernelContext::Line::kAlways;
    // both, or not referenced at all: stay kUnknown
    ctx.globalsPresent = true; // the PPF always wires its global file
    ctx.lookaheadEntries = static_cast<int>(ppf.filters().size());
    return ctx;
}

} // namespace

analysis::KernelContext
contextFor(const ProgrammablePrefetcher &ppf, KernelId id)
{
    if (!ppf.kernels().valid(id))
        return {};
    return contextFromRoles(
        ppf, kernelRoles(ppf)[static_cast<std::size_t>(id)]);
}

analysis::TableAnalysis
lintPrefetcher(const ProgrammablePrefetcher &ppf)
{
    const std::vector<Roles> roles = kernelRoles(ppf);
    return analysis::analyzeTable(
        ppf.kernels(), [&ppf, &roles](KernelId id) {
            return contextFromRoles(ppf,
                                    roles[static_cast<std::size_t>(id)]);
        });
}

std::string
formatTableDiags(const KernelTable &table, const analysis::TableAnalysis &ta)
{
    std::string out;
    auto name = [&table](KernelId id) {
        const std::string &s = table[id].name;
        return s.empty() ? "#" + std::to_string(id) : s;
    };
    for (std::size_t i = 0; i < ta.kernels.size(); ++i)
        for (const analysis::Diag &d : ta.kernels[i].diags) {
            out += name(static_cast<KernelId>(i));
            out += ": ";
            out += analysis::formatDiag(d);
            out += '\n';
        }
    for (const analysis::Diag &d : ta.tableDiags) {
        out += "table: ";
        out += analysis::formatDiag(d);
        out += '\n';
    }
    return out;
}

} // namespace epf
