#include "ppf/lint.hpp"

#include <algorithm>
#include <limits>

namespace epf
{
namespace
{

using analysis::KernelContext;

/** Trigger kinds a kernel is reachable through. */
struct Roles
{
    bool demand = false; ///< filter onLoad: no line data
    bool fill = false;   ///< filter onPrefetch, tag binding, prefetch.cb
    /** Reachable via a tag binding or prefetch.cb: the triggering
     *  address is a prefetch target, so no filter range bounds it. */
    bool tagOrCb = false;
    /** Hull of the [base, limit) ranges of referencing filters. */
    bool viaFilter = false;
    Addr lo = 0, hi = 0;
};

std::vector<Roles>
kernelRoles(const ProgrammablePrefetcher &ppf)
{
    const KernelTable &kt = ppf.kernels();
    std::vector<Roles> roles(kt.size());
    auto mark = [&roles, &kt](KernelId id, bool fill) -> Roles * {
        if (id < 0 || !kt.valid(id))
            return nullptr;
        Roles &r = roles[static_cast<std::size_t>(id)];
        (fill ? r.fill : r.demand) = true;
        return &r;
    };

    const FilterTable &ft = ppf.filters();
    for (std::size_t i = 0; i < ft.size(); ++i) {
        const FilterEntry &e = ft[static_cast<int>(i)];
        for (Roles *r : {mark(e.onLoad, false), mark(e.onPrefetch, true)}) {
            if (!r || e.limit <= e.base)
                continue;
            if (!r->viaFilter) {
                r->lo = e.base;
                r->hi = e.limit;
                r->viaFilter = true;
            } else {
                r->lo = std::min(r->lo, e.base);
                r->hi = std::max(r->hi, e.limit);
            }
        }
    }
    for (KernelId id : ppf.tagKernels())
        if (Roles *r = mark(id, true))
            r->tagOrCb = true;
    for (std::size_t i = 0; i < kt.size(); ++i)
        for (const Instr &in : kt[static_cast<KernelId>(i)].code)
            if (in.op == Opcode::kPrefetchCb)
                if (Roles *r = mark(static_cast<KernelId>(in.imm), true))
                    r->tagOrCb = true;
    return roles;
}

KernelContext
contextFromRoles(const ProgrammablePrefetcher &ppf, const Roles &r)
{
    KernelContext ctx;
    if (r.demand && !r.fill)
        ctx.line = KernelContext::Line::kNever;
    else if (r.fill && !r.demand)
        ctx.line = KernelContext::Line::kAlways;
    // both, or not referenced at all: stay kUnknown
    ctx.globalsPresent = true; // the PPF always wires its global file
    ctx.lookaheadEntries = static_cast<int>(ppf.filters().size());

    // Value facts for the dataflow layer — a snapshot of the current
    // configuration, which is the contract of linting: run it after
    // setup, and the proofs hold for that setup.
    for (unsigned i = 0; i < ppf.globalsAllocated(); ++i)
        ctx.globalValues.push_back({i, ppf.global(i)});
    for (const GuestMemory::Region &reg : ppf.guestMem().regions())
        ctx.regions.push_back({reg.base, reg.size});
    // The triggering vaddr is bounded by the referencing filter ranges
    // only when every trigger is a filter (a tag or callback trigger
    // carries an arbitrary prefetch target).
    if (r.viaFilter && !r.tagOrCb &&
        r.hi - 1 <=
            static_cast<Addr>(std::numeric_limits<std::int64_t>::max())) {
        ctx.vaddrLo = static_cast<std::int64_t>(r.lo);
        ctx.vaddrHi = static_cast<std::int64_t>(r.hi - 1);
    }
    return ctx;
}

} // namespace

analysis::KernelContext
contextFor(const ProgrammablePrefetcher &ppf, KernelId id)
{
    if (!ppf.kernels().valid(id))
        return {};
    return contextFromRoles(
        ppf, kernelRoles(ppf)[static_cast<std::size_t>(id)]);
}

analysis::TableAnalysis
lintPrefetcher(const ProgrammablePrefetcher &ppf)
{
    const std::vector<Roles> roles = kernelRoles(ppf);
    return analysis::analyzeTable(
        ppf.kernels(), [&ppf, &roles](KernelId id) {
            return contextFromRoles(ppf,
                                    roles[static_cast<std::size_t>(id)]);
        });
}

std::string
formatTableDiags(const KernelTable &table, const analysis::TableAnalysis &ta)
{
    std::string out;
    auto name = [&table](KernelId id) {
        const std::string &s = table[id].name;
        return s.empty() ? "#" + std::to_string(id) : s;
    };
    for (std::size_t i = 0; i < ta.kernels.size(); ++i)
        for (const analysis::Diag &d : ta.kernels[i].diags) {
            out += name(static_cast<KernelId>(i));
            out += ": ";
            out += analysis::formatDiag(d);
            out += '\n';
        }
    for (const analysis::Diag &d : ta.tableDiags) {
        out += "table: ";
        out += analysis::formatDiag(d);
        out += '\n';
    }
    return out;
}

} // namespace epf
