/**
 * @file
 * The event-triggered programmable prefetcher (Section 4 of the paper).
 *
 * Structure (Fig. 3): snooped core reads and completed prefetch fills pass
 * through the address filter; matching observations enter a 40-entry FIFO
 * observation queue; a scheduler hands them to free programmable prefetch
 * units (12 in-order cores at 1 GHz by default), which run small event
 * kernels that emit new prefetch requests into a 200-entry FIFO request
 * queue.  The L1 drains that queue through the shared TLB whenever it has
 * a spare MSHR.  EWMA calculators time loop iterations and prefetch
 * chains to provide dynamic lookahead distances.  Memory-request tags
 * route fills of non-contiguous structures (linked lists, trees) back to
 * the right kernel.
 *
 * A "blocked" mode (Fig. 11's ablation) makes chained prefetches stall
 * their issuing PPU until the data returns, as a prefetcher without the
 * event-triggered programming model would have to.
 */

#ifndef EPF_PPF_PPF_HPP
#define EPF_PPF_PPF_HPP

#include <cstdint>
#include <vector>

#include "isa/interpreter.hpp"
#include "isa/isa.hpp"
#include "isa/predecode.hpp"
#include "mem/guest_memory.hpp"
#include "mem/mem_iface.hpp"
#include "ppf/ewma.hpp"
#include "ppf/filter.hpp"
#include "sim/clock.hpp"
#include "sim/fault.hpp"
#include "sim/event_queue.hpp"
#include "sim/object_pool.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/small_function.hpp"

namespace epf
{

/** How the scheduler picks among free PPUs. */
enum class SchedulePolicy
{
    kLowestId,   ///< paper's policy (makes Fig. 10's skew visible)
    kRoundRobin, ///< alternative that spreads work evenly
};

/** Configuration of the programmable prefetcher. */
struct PpfConfig
{
    unsigned numPpus = 12;
    /** PPU clock period in ticks (16 => 1 GHz). */
    Tick ppuPeriod = 16;
    /** Scheduler hand-off overhead per event, in PPU cycles. */
    unsigned dispatchOverhead = 2;
    std::size_t obsQueueCapacity = 40;
    std::size_t reqQueueCapacity = 200;
    SchedulePolicy policy = SchedulePolicy::kLowestId;
    /** Fig. 11 ablation: stall PPUs on chained prefetches. */
    bool blocking = false;
    unsigned ewmaShift = 3;
    std::uint64_t maxLookahead = 32;
    std::uint64_t initialLookahead = 4;
    /** Overestimation factor on the EWMA-derived distance (Sec. 7.1). */
    std::uint64_t lookaheadScale = 2;
    /**
     * Run kernels through the pre-decoded direct-threaded interpreter
     * (predecode.hpp).  Simulated timing is bit-identical either way —
     * the differential fuzzer and the golden parity tests prove it —
     * so this only trades host speed for the reference interpreter's
     * simplicity (kept as the oracle, and for A/B debugging).
     */
    bool predecode = true;
    /**
     * Compile proven-trap-free straight-line runs into single decoded
     * superblock ops (predecode.hpp).  Only meaningful when predecode
     * is on; architectural behaviour is identical either way (block
     * cycles are charged as the exact per-block architectural total,
     * with an op-by-op fallback when the step budget cannot cover the
     * block), so like predecode this only trades host speed.
     */
    bool superblocks = true;
    /**
     * Deliver all of a snoop's (or fill's) filter matches to the
     * observation queue in one batch with a single scheduler pass,
     * instead of one enqueue + scheduler pass per match.  Identical to
     * per-match delivery whenever the whole batch fits the queue (the
     * queue is FIFO and the scheduler drains from the front, so
     * interleaving pushes with drains cannot change assignment order);
     * when the batch could overflow, the per-match path is taken so
     * drop order matches exactly.  Off reproduces per-match delivery
     * for the A/B parity suite.
     */
    bool batchedObservations = true;
    /**
     * Event-storm backpressure throttle: when a single window of
     * stormWindowTicks ticks sees more than stormThreshold queued
     * prefetch requests, the remainder of the window is dropped with a
     * stat instead of churning the request queue.  0 disables (the
     * default — the golden runs are throttle-free); the serving mode
     * (ROADMAP item 5) turns it on per tenant.
     */
    Tick stormWindowTicks = 0;
    std::uint64_t stormThreshold = 256;
    /**
     * Per-kernel quarantine watchdog: a kernel accumulating
     * quarantineThreshold faults (traps, watchdog-step exhaustion,
     * injected storms) is killed — its events are skipped — and
     * re-enabled after quarantineBaseTicks << backoff-level ticks
     * (exponential backoff, exponent capped at quarantineBackoffMax).
     * 0 disables (the default: G500-CSR's traversal kernels
     * legitimately run to the step watchdog every event).
     */
    std::uint64_t quarantineThreshold = 0;
    Tick quarantineBaseTicks = 50'000;
    unsigned quarantineBackoffMax = 6;
};

/** The programmable prefetcher. */
class ProgrammablePrefetcher : public MemoryListener, public PrefetchSource
{
  public:
    struct Stats
    {
        std::uint64_t observations = 0;
        std::uint64_t obsDropped = 0;
        std::uint64_t obsNoData = 0;
        std::uint64_t eventsRun = 0;
        std::uint64_t traps = 0;
        std::uint64_t stepLimits = 0;
        std::uint64_t prefetchesEmitted = 0;
        std::uint64_t reqDropped = 0;
        std::uint64_t chainSamples = 0;
        std::uint64_t blockedStalls = 0;
        /** Blocked-mode local queue overflow drops (bounded ring). */
        std::uint64_t localDropped = 0;
        /** Requests dropped by the event-storm throttle. */
        std::uint64_t throttleDropped = 0;
        /** Windows in which the throttle engaged. */
        std::uint64_t throttleEntries = 0;
        /** Kernel kills by the quarantine watchdog. */
        std::uint64_t quarantineKills = 0;
        /** Kernels re-enabled after their backoff expired. */
        std::uint64_t quarantineReenables = 0;
        /** Events skipped because their kernel was quarantined. */
        std::uint64_t quarantineSkips = 0;
    };

    /** One quarantine watchdog transition (for determinism proofs). */
    struct QuarantineEvent
    {
        Tick tick = 0;
        KernelId kernel = kNoKernel;
        bool kill = false; ///< true: killed; false: re-enabled
        unsigned backoffLevel = 0;
    };

    /** Per-PPU accounting for Fig. 10. */
    struct PpuStats
    {
        Tick busyTicks = 0;
        std::uint64_t events = 0;
    };

    ProgrammablePrefetcher(EventQueue &eq, GuestMemory &mem,
                           const PpfConfig &cfg);

    // ---- Configuration API (driven by PfConfig ops in the trace) ----

    /** The kernel store for this application. */
    KernelTable &kernels() { return kernels_; }
    const KernelTable &kernels() const { return kernels_; }

    /** Configure an address range; returns the filter index. */
    int addFilter(const FilterEntry &e);

    /** Register a memory-request tag bound to a fill kernel. */
    std::int32_t registerTag(KernelId kernel);

    /** Write a global register. */
    void setGlobal(unsigned idx, std::uint64_t value);

    /** Allocate the next free global register and initialise it. */
    unsigned allocGlobal(std::uint64_t value);

    std::uint64_t global(unsigned idx) const { return globals_.at(idx); }

    /** Global registers handed out by allocGlobal() so far. */
    unsigned globalsAllocated() const { return globalsAllocated_; }

    /** The guest address space this prefetcher snoops (region map). */
    const GuestMemory &guestMem() const { return mem_; }

    /** Hook to prod the hierarchy when new requests are queued. */
    void setKick(SmallFunction<void()> fn) { kick_ = std::move(fn); }

    /** Attach the run's fault injector (null: fault-free, the default). */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    /** Full reset: configuration, queues, statistics. */
    void reset();

    /**
     * Context switch (Section 5.3): abort in-flight events, drop both
     * queues and EWMA state; configuration and globals survive.
     */
    void contextSwitch();

    // ---- MemoryListener (the snoop/fill port) ----

    void notifyDemand(Addr vaddr, bool is_load, bool hit,
                      int stream_id) override;
    void notifyPrefetchFill(const LineRequest &req) override;
    void notifyPrefetchDropped(const LineRequest &req) override;

    // ---- PrefetchSource (the prefetch request queue) ----

    bool hasRequest() const override { return !reqQueue_.empty(); }
    LineRequest popRequest() override;

    // ---- Introspection ----

    const Stats &stats() const { return stats_; }
    const std::vector<PpuStats> &ppuStats() const { return ppuStats_; }
    const FilterTable &filters() const { return filters_; }
    const PpfConfig &config() const { return cfg_; }

    /** Registered memory-request tags, tag index -> fill kernel.  The
     *  lint layer uses this to type each kernel's trigger events. */
    const std::vector<KernelId> &tagKernels() const { return tagKernels_; }

    /** Current lookahead (elements) for filter entry @p idx. */
    std::uint64_t lookaheadOf(int idx) const;

    /** Recent quarantine transitions (bounded; see quarantineLogHash). */
    const std::vector<QuarantineEvent> &
    quarantineLog() const
    {
        return quarantineLog_;
    }

    /** FNV-1a over every quarantine transition ever taken (unbounded
     *  coverage even when the log itself saturates) — two runs with the
     *  same hash took bit-identical kill/re-enable sequences. */
    std::uint64_t quarantineLogHash() const { return quarantineLogHash_; }

  private:
    /** One queued event. */
    struct Observation
    {
        Addr vaddr = 0;
        KernelId kernel = kNoKernel;
        bool hasLine = false;
        LineData line{};
        bool hasTimedStart = false;
        Tick timedStart = 0;
        std::int16_t timedOrigin = -1;
    };

    struct Ppu
    {
        bool busy = false;
        Tick lastAssign = 0;
        /** Blocked mode: chained prefetches outstanding. */
        unsigned pendingFills = 0;
        /** Blocked mode: fills waiting to run on this unit. */
        Ring<Observation> local;
        /** True while actually executing (vs. stalled). */
        bool executing = false;

        void
        clear()
        {
            busy = false;
            lastAssign = 0;
            pendingFills = 0;
            local.clear();
            executing = false;
        }
    };

    /** Fault-checked delivery front door (drop/delay/overflow sites). */
    void enqueueObservation(Observation obs);
    /** Capacity-checked enqueue proper (delayed deliveries re-enter
     *  here so an injected delay can never re-draw itself). */
    void enqueueObservationNow(Observation obs);
    /** Deliver everything in obsScratch_ (one scheduler pass when the
     *  batch provably cannot drop; per-push fallback otherwise). */
    void flushObservationScratch();
    void trySchedule();
    int pickFreePpu();
    /** Begin executing @p obs on @p ppu at the next PPU clock edge. */
    void startEvent(unsigned ppu, Observation obs);
    /** Interpret the kernel and schedule its completion. */
    void executeEvent(unsigned ppu, const Observation &obs, Tick start);
    void finishEvent(unsigned ppu, Tick finish,
                     std::vector<PrefetchEmit> *emits, Observation obs);
    void releasePpu(unsigned ppu, Tick now);
    /** Blocked mode: run the next queued local observation if idle. */
    void pumpBlocked(unsigned ppu);

    /** Turn a kernel emission into a queued LineRequest. */
    void queueRequest(const PrefetchEmit &e, const Observation &obs,
                      int origin_ppu);
    /** Throttle + capacity-checked push (delayed requests re-enter
     *  here, past the fault sites). */
    void queueRequestNow(LineRequest req);

    /** Redirect a corrupted prefetch target inside a mapped region. */
    Addr corruptMapped(std::uint64_t bits) const;
    /** Redirect a corrupted prefetch target outside every region. */
    Addr corruptUnmapped(std::uint64_t bits) const;

    // ---- Quarantine watchdog ----

    /** True when @p k's events must be skipped now (handles the lazy
     *  backoff-expiry re-enable transition). */
    bool kernelQuarantined(KernelId k, Tick now);
    /** Count one fault against @p k; kill it at the threshold. */
    void recordKernelFault(KernelId k, Tick now);
    void logQuarantine(Tick tick, KernelId k, bool kill, unsigned level);

    /**
     * The decoded program for kernel @p id.  Serves from the local
     * cache; on the first event after any kernel-table mutation
     * (detected via KernelTable::version()) the stale cache is dropped
     * and entries re-intern through the process-wide DecodeCache, so
     * identical kernels across per-core PPF instances share one
     * decoded program.  contextSwitch() leaves the table untouched and
     * therefore preserves the cache; reset() clears the table and so
     * invalidates it.
     */
    const DecodedKernel *decodedFor(KernelId id);

    /** Route a fill to its kernel / PPU. */
    void routeFill(const LineRequest &req);

    EventQueue &eq_;
    GuestMemory &mem_;
    PpfConfig cfg_;
    ClockDomain ppuClock_;

    KernelTable kernels_;
    /** Per-kernel decoded programs (shared read-only via DecodeCache). */
    std::vector<std::shared_ptr<const DecodedKernel>> decoded_;
    /** kernels_.version() the cache was built against. */
    std::uint64_t decodedVersion_ = 0;
    FilterTable filters_;
    std::vector<std::uint64_t> globals_;
    unsigned globalsAllocated_ = 0;
    std::vector<KernelId> tagKernels_;
    std::vector<LookaheadCalculator> lookahead_;

    Ring<Observation> obsQueue_;
    Ring<LineRequest> reqQueue_;
    std::vector<Ppu> ppus_;
    std::vector<PpuStats> ppuStats_;
    unsigned rrNext_ = 0;

    /** Lookahead snapshot handed to kernels (capacity reused). */
    std::vector<std::uint64_t> lookaheadScratch_;
    /** Matched observations of one snoop/fill (capacity reused). */
    std::vector<Observation> obsScratch_;
    /** Emit buffers in flight between execute and finish (pooled). */
    ObjectPool<std::vector<PrefetchEmit>> emitBuffers_;

    /** Epoch guard: context switches invalidate in-flight events. */
    std::uint64_t epoch_ = 0;

    SmallFunction<void()> kick_;
    FaultInjector *faults_ = nullptr;

    // ---- Event-storm throttle state (config-gated) ----
    std::uint64_t stormWindow_ = 0;
    std::uint64_t stormCount_ = 0;
    bool throttled_ = false;

    // ---- Quarantine watchdog state (config-gated) ----
    struct KernelHealth
    {
        std::uint64_t faults = 0;
        unsigned backoffLevel = 0;
        /** 0: not quarantined; else earliest re-enable tick. */
        Tick quarantinedUntil = 0;
    };
    std::vector<KernelHealth> kernelHealth_;
    std::vector<QuarantineEvent> quarantineLog_;
    std::uint64_t quarantineLogHash_ = 0xCBF29CE484222325ULL;

    Stats stats_;
};

} // namespace epf

#endif // EPF_PPF_PPF_HPP
