/**
 * @file
 * Lint a configured prefetcher's kernel store.
 *
 * The verifier (src/isa/analysis) proves more with a KernelContext than
 * without one, and a fully-configured ProgrammablePrefetcher knows the
 * context exactly: which kernels trigger on demand loads (no line data
 * — ldline always traps), which run on fills and callbacks (line always
 * present), and how many lookahead filter entries exist.  This module
 * derives that context from the filter table, the tag bindings and the
 * callback graph, then runs the table-wide analysis.
 */

#ifndef EPF_PPF_LINT_HPP
#define EPF_PPF_LINT_HPP

#include "isa/analysis/verifier.hpp"
#include "ppf/ppf.hpp"

namespace epf
{

/**
 * The event context kernel @p id runs under, derived from @p ppf's
 * configuration: onLoad triggers see no line data, fill/callback/tag
 * triggers always do, and a kernel reachable through both kinds gets
 * Line::kUnknown.  lookaheadEntries is the installed filter count.
 */
analysis::KernelContext contextFor(const ProgrammablePrefetcher &ppf,
                                   KernelId id);

/** Analyze every registered kernel under its derived context. */
analysis::TableAnalysis lintPrefetcher(const ProgrammablePrefetcher &ppf);

/**
 * Render @p ta as "kernel:pc: severity: [code] message" lines, one per
 * diagnostic (kernel names from @p table).  Empty when clean.
 */
std::string formatTableDiags(const KernelTable &table,
                             const analysis::TableAnalysis &ta);

} // namespace epf

#endif // EPF_PPF_LINT_HPP
