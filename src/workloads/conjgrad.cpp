#include "workloads/conjgrad.hpp"

#include <cmath>

#include "isa/builder.hpp"
#include "sim/rng.hpp"

namespace epf
{

ConjGradWorkload::ConjGradWorkload(const WorkloadScale &scale)
{
    n_ = scale.scaled(96 * 1024);
}

void
ConjGradWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    attach(mem);
    Rng rng(seed);
    rowStart_.assign(n_ + 1, 0);
    colIdx_.clear();
    aVal_.clear();

    for (std::uint64_t row = 0; row < n_; ++row) {
        unsigned deg = kNnzPerRow - 2 + static_cast<unsigned>(rng.below(5));
        for (unsigned d = 0; d < deg; ++d) {
            colIdx_.push_back(static_cast<std::uint32_t>(rng.below(n_)));
            aVal_.push_back(1.0 / static_cast<double>(1 + rng.below(1000)));
        }
        rowStart_[row + 1] = colIdx_.size();
    }
    nnz_ = colIdx_.size();

    x_.assign(n_, 1.0);
    y_.assign(n_, 0.0);

    mem.addRegion("cg.rowstart", rowStart_.data(),
                  rowStart_.size() * sizeof(std::uint64_t));
    mem.addRegion("cg.colidx", colIdx_.data(),
                  colIdx_.size() * sizeof(std::uint32_t));
    mem.addRegion("cg.aval", aVal_.data(), aVal_.size() * sizeof(double));
    mem.addRegion("cg.x", x_.data(), x_.size() * sizeof(double));
    mem.addRegion("cg.y", y_.data(), y_.size() * sizeof(double));
}

Generator<MicroOp>
ConjGradWorkload::trace(bool with_swpf)
{
    OpFactory f;

    for (unsigned iter = 0; iter < kIters; ++iter) {
        // y = A * x  (the dominant irregular kernel).
        for (std::uint64_t row = 0; row < n_; ++row) {
            ValueId v_re;
            co_yield f.load(ga(&rowStart_[row + 1]), 1, v_re);
            double sum = 0.0;
            const std::uint64_t kend = rowStart_[row + 1];
            for (std::uint64_t k = rowStart_[row]; k < kend; ++k) {
                if (with_swpf && k + kSwpfDist < nnz_) {
                    // swpf(&x[colidx[k+dist]])
                    ValueId v_c2;
                    co_yield f.load(ga(&colIdx_[k + kSwpfDist]), 2, v_c2);
                    ValueId v_a2;
                    co_yield f.workVal(1, v_a2, v_c2);
                    co_yield OpFactory::swpf(
                        ga(&x_[colIdx_[k + kSwpfDist]]), v_a2);
                }
                ValueId v_c;
                co_yield f.load(ga(&colIdx_[k]), 3, v_c);
                ValueId v_a;
                co_yield f.load(ga(&aVal_[k]), 4, v_a);
                ValueId v_x;
                co_yield f.load(ga(&x_[colIdx_[k]]), 5, v_x, v_c);
                sum += aVal_[k] * x_[colIdx_[k]];
                co_yield OpFactory::workDep(2, v_a, v_x);
            }
            // Row-loop exit mispredicts when the row degree changes.
            const std::uint64_t deg = kend - rowStart_[row];
            if (deg != prevDegree_) {
                prevDegree_ = deg;
                co_yield OpFactory::branchMiss(v_re);
            }
            y_[row] = sum;
            co_yield OpFactory::store(ga(&y_[row]), 6);
        }
        // Vector update phase (streaming): x = y / ||y||-ish scaling.
        double norm = 0.0;
        for (std::uint64_t i = 0; i < n_; ++i)
            norm += y_[i] * y_[i];
        const double inv = norm > 0.0 ? 1.0 / std::sqrt(norm) : 1.0;
        for (std::uint64_t i = 0; i < n_; ++i) {
            ValueId v_y;
            co_yield f.load(ga(&y_[i]), 7, v_y);
            x_[i] = y_[i] * inv;
            co_yield OpFactory::workDep(1, v_y);
            co_yield OpFactory::store(ga(&x_[i]), 8);
        }
    }
}

void
ConjGradWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    const Addr col_base = ga(colIdx_.data());
    const Addr x_base = ga(x_.data());
    const Addr a_base = ga(aVal_.data());

    const unsigned g_col = ppf.allocGlobal(col_base);
    const unsigned g_x = ppf.allocGlobal(x_base);
    const unsigned g_a = ppf.allocGlobal(a_base);

    // on_col_prefetch: the fetched word is a column index; gather x.
    KernelBuilder kpf("on_col_prefetch");
    kpf.vaddr(1)
        .ldLine32(2, 1, 0)
        .shli(2, 2, 3)
        .gread(3, g_x)
        .add(2, 2, 3)
        .prefetch(2)
        .halt();
    KernelId k_pf = ppf.kernels().add(kpf.build());

    // on_col_load: prefetch colidx and a[] ahead, chain into the gather.
    KernelBuilder kld("on_col_load");
    kld.vaddr(1)
        .gread(2, g_col)
        .sub(1, 1, 2)
        .shri(1, 1, 2)   // element index in colidx
        .lookahead(3, 0)
        .add(1, 1, 3)    // idx + lookahead
        .mov(4, 1)
        .shli(4, 4, 3)
        .gread(5, g_a)
        .add(4, 4, 5)
        .prefetch(4)     // a[idx+K]
        .shli(1, 1, 2)
        .add(1, 1, 2)
        .prefetchCb(1, k_pf) // colidx[idx+K] -> gather chain
        .halt();
    KernelId k_ld = ppf.kernels().add(kld.build());

    FilterEntry fe;
    fe.name = "colidx";
    fe.base = col_base;
    fe.limit = col_base + nnz_ * 4;
    fe.onLoad = k_ld;
    fe.timeSource = true;
    fe.timedStart = true;
    ppf.addFilter(fe);

    FilterEntry xe;
    xe.name = "x";
    xe.base = x_base;
    xe.limit = x_base + n_ * 8;
    xe.timedEnd = true;
    ppf.addFilter(xe);
}

std::vector<std::shared_ptr<LoopIR>>
ConjGradWorkload::buildIR()
{
    auto ir = std::make_shared<LoopIR>();
    IrNode *col_b = ir->addArray("colidx", ga(colIdx_.data()), 4, nnz_);
    IrNode *x_b = ir->addArray("x", ga(x_.data()), 8, n_);
    IrNode *a_b = ir->addArray("aval", ga(aVal_.data()), 8, nnz_);
    IrNode *k = ir->indVar();

    // Body (flattened over nnz): c = colidx[k]; sum += a[k] * x[c].
    IrNode *c = ir->load(ir->index(col_b, k, 4), 4, "colidx");
    (void)ir->load(ir->index(a_b, k, 8), 8, "aval");
    (void)ir->load(ir->index(x_b, c, 8), 8, "x");

    // swpf(&x[colidx[k + 48]])
    IrNode *c2 = ir->loadForSwpf(
        ir->index(col_b, ir->bin(IrBin::kAdd, k, ir->cnst(kSwpfDist)), 4),
        4, "colidx_pf");
    ir->swpf(ir->index(x_b, c2, 8));

    return {ir};
}

std::uint64_t
ConjGradWorkload::checksum() const
{
    // Quantised to be robust to floating-point association order.
    double s = 0.0;
    for (double v : x_)
        s += v;
    return static_cast<std::uint64_t>(s * 4096.0);
}

} // namespace epf
