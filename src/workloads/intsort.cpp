#include "workloads/intsort.hpp"

#include "isa/builder.hpp"
#include "sim/rng.hpp"

namespace epf
{

IntSortWorkload::IntSortWorkload(const WorkloadScale &scale)
{
    numKeys_ = scale.scaled(std::uint64_t{1} << 21); // 8 MB of keys
    keyRange_ = std::uint64_t{1} << 19;              // 2 MB of counts
}

void
IntSortWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    attach(mem);
    Rng rng(seed);
    keys_.resize(numKeys_);
    for (auto &k : keys_)
        k = static_cast<std::uint32_t>(rng.below(keyRange_));
    counts_.assign(keyRange_, 0);

    mem.addRegion("is.keys", keys_.data(),
                  keys_.size() * sizeof(std::uint32_t));
    mem.addRegion("is.counts", counts_.data(),
                  counts_.size() * sizeof(std::uint32_t));
}

Generator<MicroOp>
IntSortWorkload::trace(bool with_swpf)
{
    OpFactory f;

    for (unsigned iter = 0; iter < kIters; ++iter) {
        for (std::uint64_t x = 0; x < numKeys_; ++x) {
            if (with_swpf && x + kSwpfDist < numKeys_) {
                // swpf(&counts[keys[x+dist]])
                ValueId v_k2;
                co_yield f.load(ga(&keys_[x + kSwpfDist]), 1, v_k2);
                ValueId v_a2;
                co_yield f.workVal(1, v_a2, v_k2);
                co_yield OpFactory::swpf(
                    ga(&counts_[keys_[x + kSwpfDist]]), v_a2);
            }
            ValueId v_k;
            co_yield f.load(ga(&keys_[x]), 2, v_k);
            const std::uint32_t k = keys_[x];
            ValueId v_c;
            co_yield f.load(ga(&counts_[k]), 3, v_c, v_k);
            counts_[k] += 1;
            co_yield OpFactory::store(ga(&counts_[k]), 4, v_k, v_c);
        }
    }

    // Prefix-sum pass over the counts (streaming; stride friendly).
    std::uint32_t acc = 0;
    for (std::uint64_t i = 0; i < keyRange_; ++i) {
        ValueId v;
        co_yield f.load(ga(&counts_[i]), 5, v);
        acc += counts_[i];
        co_yield OpFactory::work(1);
        counts_[i] = acc;
        co_yield OpFactory::store(ga(&counts_[i]), 6, v);
    }
}

void
IntSortWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    const Addr keys_base = ga(keys_.data());
    const Addr counts_base = ga(counts_.data());

    const unsigned g_keys = ppf.allocGlobal(keys_base);
    const unsigned g_counts = ppf.allocGlobal(counts_base);

    // on_keys_prefetch: bucket index arrives; prefetch its count line.
    KernelBuilder kpf("on_keys_prefetch");
    kpf.vaddr(1)
        .ldLine32(2, 1, 0)
        .shli(2, 2, 2)
        .gread(3, g_counts)
        .add(2, 2, 3)
        .prefetch(2)
        .halt();
    KernelId k_pf = ppf.kernels().add(kpf.build());

    // on_keys_load: chase `lookahead` keys ahead.
    KernelBuilder kld("on_keys_load");
    kld.vaddr(1)
        .gread(2, g_keys)
        .sub(1, 1, 2)
        .shri(1, 1, 2)
        .lookahead(3, 0)
        .add(1, 1, 3)
        .shli(1, 1, 2)
        .add(1, 1, 2)
        .prefetchCb(1, k_pf)
        .halt();
    KernelId k_ld = ppf.kernels().add(kld.build());

    FilterEntry fe;
    fe.name = "keys";
    fe.base = keys_base;
    fe.limit = keys_base + numKeys_ * 4;
    fe.onLoad = k_ld;
    fe.timeSource = true;
    fe.timedStart = true;
    ppf.addFilter(fe);

    FilterEntry ce;
    ce.name = "counts";
    ce.base = counts_base;
    ce.limit = counts_base + keyRange_ * 4;
    ce.timedEnd = true;
    ppf.addFilter(ce);
}

std::vector<std::shared_ptr<LoopIR>>
IntSortWorkload::buildIR()
{
    auto ir = std::make_shared<LoopIR>();
    IrNode *keys_b = ir->addArray("keys", ga(keys_.data()), 4, numKeys_);
    IrNode *counts_b =
        ir->addArray("counts", ga(counts_.data()), 4, keyRange_);
    IrNode *x = ir->indVar();

    // Body: k = keys[x]; counts[k]++.
    IrNode *k = ir->load(ir->index(keys_b, x, 4), 4, "keys");
    (void)ir->load(ir->index(counts_b, k, 4), 4, "counts");

    // swpf(&counts[keys[x + 64]])
    IrNode *k2 = ir->loadForSwpf(
        ir->index(keys_b, ir->bin(IrBin::kAdd, x, ir->cnst(kSwpfDist)), 4),
        4, "keys_pf");
    ir->swpf(ir->index(counts_b, k2, 4));

    return {ir};
}

std::uint64_t
IntSortWorkload::checksum() const
{
    std::uint64_t x = 0;
    for (std::uint32_t v : counts_)
        x = x * 1099511628211ULL + v;
    return x;
}

std::uint64_t
IntSortWorkload::reference(std::uint64_t num_keys, std::uint64_t range,
                           unsigned iters, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> keys(num_keys);
    for (auto &k : keys)
        k = static_cast<std::uint32_t>(rng.below(range));
    std::vector<std::uint32_t> counts(range, 0);
    for (unsigned it = 0; it < iters; ++it) {
        for (auto k : keys)
            counts[k] += 1;
    }
    std::uint32_t acc = 0;
    for (auto &c : counts) {
        acc += c;
        c = acc;
    }
    std::uint64_t x = 0;
    for (std::uint32_t v : counts)
        x = x * 1099511628211ULL + v;
    return x;
}

} // namespace epf
