/**
 * @file
 * PageRank over a power-law web graph (the paper's BGL/web-Google run).
 *
 * Pattern (Table 2): stride-indirect — streaming the edge array and
 * gathering rank/out-degree data of edge targets.  The Boost Graph
 * Library source iterates edge *pairs* through templated iterators, so no
 * address expression is available for manual software prefetches; the
 * pragma pass, working at the IR level, is unaffected (Section 7.1).
 */

#ifndef EPF_WORKLOADS_PAGERANK_HPP
#define EPF_WORKLOADS_PAGERANK_HPP

#include <vector>

#include "workloads/graph_gen.hpp"
#include "workloads/workload.hpp"

namespace epf
{

/** The PageRank workload. */
class PageRankWorkload : public Workload
{
  public:
    explicit PageRankWorkload(const WorkloadScale &scale = {});

    std::string name() const override { return "PageRank"; }
    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    bool supportsSoftware() const override { return false; }
    std::uint64_t checksum() const override;

  private:
    /** Per-node rank state (16 B). */
    struct NodeData
    {
        double rank = 0.0;
        double invOutDeg = 0.0;
    };

    std::uint32_t nodes_;
    std::uint64_t numEdges_;
    std::vector<std::uint64_t> rowStart_;
    std::vector<std::uint64_t> edgeDst_;
    std::vector<NodeData> nodeData_;
    std::vector<double> newRank_;
    /** Last-outcome loop-exit predictor state (trace generation). */
    std::uint64_t prevDegree_ = 0;
};

} // namespace epf

#endif // EPF_WORKLOADS_PAGERANK_HPP
