/**
 * @file
 * Graph generators: Graph500-style R-MAT (Kronecker) and a power-law
 * web-graph generator for PageRank, plus a CSR builder.
 */

#ifndef EPF_WORKLOADS_GRAPH_GEN_HPP
#define EPF_WORKLOADS_GRAPH_GEN_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace epf
{

/** An edge list. */
using EdgeList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/**
 * Graph500 R-MAT generator: 2^scale vertices, edgefactor * 2^scale
 * undirected edges with the standard (A,B,C) = (0.57, 0.19, 0.19)
 * partition probabilities.
 */
EdgeList rmatEdges(unsigned scale, unsigned edgefactor, Rng &rng);

/** Power-law out-degree web graph (for PageRank's web-Google stand-in). */
EdgeList powerLawEdges(std::uint32_t nodes, std::uint64_t edges, Rng &rng);

/** Compressed sparse row form of a directed graph. */
struct Csr
{
    std::uint32_t n = 0;
    /** Row starts: n+1 entries (64-bit, as Graph500's xoff). */
    std::vector<std::uint64_t> rowStart;
    /** Edge targets (64-bit, as Graph500's xadj). */
    std::vector<std::uint64_t> dest;
};

/** Build CSR from an edge list; @p symmetrise adds reverse edges. */
Csr buildCsr(std::uint32_t n, const EdgeList &edges, bool symmetrise);

} // namespace epf

#endif // EPF_WORKLOADS_GRAPH_GEN_HPP
