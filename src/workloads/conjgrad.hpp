/**
 * @file
 * ConjGrad: the NAS CG conjugate-gradient kernel.
 *
 * Pattern (Table 2): stride-indirect.  The dominant cost of CG is the
 * sparse matrix-vector product y = A*x over a CSR matrix: streaming loads
 * of colidx[] and a[] plus the irregular gather x[colidx[k]].  Several CG
 * iterations repeat the identical access pattern, which is what lets a
 * sufficiently large history prefetcher (GHB-large) predict it.
 */

#ifndef EPF_WORKLOADS_CONJGRAD_HPP
#define EPF_WORKLOADS_CONJGRAD_HPP

#include <vector>

#include "workloads/workload.hpp"

namespace epf
{

/** The ConjGrad workload. */
class ConjGradWorkload : public Workload
{
  public:
    explicit ConjGradWorkload(const WorkloadScale &scale = {});

    std::string name() const override { return "ConjGrad"; }
    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    std::uint64_t checksum() const override;

  private:
    static constexpr unsigned kSwpfDist = 48; ///< nnz ahead
    static constexpr unsigned kIters = 3;
    static constexpr unsigned kNnzPerRow = 11;

    std::uint64_t n_;
    std::uint64_t nnz_ = 0;
    std::vector<std::uint64_t> rowStart_; ///< n+1
    std::vector<std::uint32_t> colIdx_;
    std::vector<double> aVal_;
    std::vector<double> x_;
    std::vector<double> y_;
    /** Last-outcome loop-exit predictor state (trace generation). */
    std::uint64_t prevDegree_ = 0;
};

} // namespace epf

#endif // EPF_WORKLOADS_CONJGRAD_HPP
