/**
 * @file
 * Trace replay as a workload.
 *
 * Turns any file captured by TraceWriter into a ninth benchmark: the
 * recorded micro-op stream is fed through the full core + hierarchy +
 * prefetcher stack, and the recorded line payloads are patched back
 * into guest memory at the exact fetch instants they were captured, so
 * the programmable prefetcher observes the same data it saw live.
 *
 * Two modes, chosen by the trace header:
 *  - source-backed: the header names a registry workload; its setup()
 *    is re-run with the recorded seed/scale, recreating the full memory
 *    image, the manual PPU kernels and the compiler IR.  Replay then
 *    reproduces the capture run's stats bit for bit (the golden-replay
 *    ctest case enforces this).
 *  - standalone: unknown origin ("" source).  Regions are recreated as
 *    zero-filled buffers at the recorded guest bases; payload patching
 *    populates them as the run proceeds.  Only non-programmable
 *    techniques and Manual-with-no-kernels apply (buildIR is empty).
 */

#ifndef EPF_WORKLOADS_TRACE_WORKLOAD_HPP
#define EPF_WORKLOADS_TRACE_WORKLOAD_HPP

#include <memory>

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace epf
{

/** Replays a captured trace file. */
class TraceWorkload : public Workload
{
  public:
    /** Loads and validates @p path (throws on malformed input). */
    explicit TraceWorkload(const std::string &path);

    std::string name() const override { return "Trace"; }
    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    bool supportsSoftware() const override;
    std::uint64_t checksum() const override;

    const TraceMeta &meta() const { return reader_->meta(); }

  private:
    std::unique_ptr<TraceReader> reader_;
    /** Source-backed mode: the re-instantiated origin workload. */
    std::unique_ptr<Workload> inner_;
    /** Standalone mode: backing storage for the recorded regions. */
    std::vector<std::vector<std::byte>> buffers_;
};

} // namespace epf

#endif // EPF_WORKLOADS_TRACE_WORKLOAD_HPP
