#include "workloads/workload.hpp"

#include <cstdlib>

#include "workloads/conjgrad.hpp"
#include "workloads/g500_csr.hpp"
#include "workloads/g500_list.hpp"
#include "workloads/hashjoin.hpp"
#include "workloads/intsort.hpp"
#include "workloads/pagerank.hpp"
#include "workloads/randacc.hpp"
#include "workloads/trace_workload.hpp"

namespace epf
{

std::vector<std::string>
workloadNames()
{
    // The order used throughout the paper's figures.
    return {"G500-CSR", "G500-List", "HJ-2",    "HJ-8",
            "PageRank", "RandAcc",   "IntSort", "ConjGrad"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadScale &scale)
{
    if (name == "G500-CSR")
        return std::make_unique<G500CsrWorkload>(scale);
    if (name == "G500-List")
        return std::make_unique<G500ListWorkload>(scale);
    if (name == "HJ-2")
        return std::make_unique<HashJoinWorkload>(
            HashJoinWorkload::Variant::kOpen, scale);
    if (name == "HJ-8")
        return std::make_unique<HashJoinWorkload>(
            HashJoinWorkload::Variant::kChained, scale);
    if (name == "PageRank")
        return std::make_unique<PageRankWorkload>(scale);
    if (name == "RandAcc")
        return std::make_unique<RandAccWorkload>(scale);
    if (name == "IntSort")
        return std::make_unique<IntSortWorkload>(scale);
    if (name == "ConjGrad")
        return std::make_unique<ConjGradWorkload>(scale);
    // The ninth workload: replay of a captured trace.  "trace:<file>"
    // names the file inline (usable in any sweep grid); the bare name
    // "Trace" reads it from EPF_TRACE.  The recorded scale and seed
    // override the caller's (a trace is one specific recorded run).
    if (name.rfind("trace:", 0) == 0)
        return std::make_unique<TraceWorkload>(name.substr(6));
    if (name == "Trace") {
        if (const char *path = std::getenv("EPF_TRACE"))
            return std::make_unique<TraceWorkload>(path);
        return nullptr;
    }
    return nullptr;
}

} // namespace epf
