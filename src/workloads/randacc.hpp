/**
 * @file
 * RandAcc: the HPCC RandomAccess (GUPS) kernel.
 *
 * Pattern (Table 2): stride-hash-indirect.  Batches of 128 LFSR values
 * are generated into a small array, then applied as XOR updates to a
 * large table indexed by the low bits of each value.  The table is far
 * larger than the LLC, so nearly every update misses.
 */

#ifndef EPF_WORKLOADS_RANDACC_HPP
#define EPF_WORKLOADS_RANDACC_HPP

#include <vector>

#include "workloads/workload.hpp"

namespace epf
{

/** The RandAcc workload. */
class RandAccWorkload : public Workload
{
  public:
    explicit RandAccWorkload(const WorkloadScale &scale = {});

    std::string name() const override { return "RandAcc"; }
    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    /**
     * Shards partition the 128 LFSR streams: shard s advances and
     * applies streams [s*128/n, (s+1)*128/n) for every batch.  Each
     * stream's LFSR state is private to its shard and the table updates
     * are XOR (commutative), so the final table — and the checksum —
     * are identical to the serial run regardless of how the shards'
     * traces interleave.
     */
    bool supportsSharding() const override { return true; }
    Generator<MicroOp> shardTrace(unsigned shard, unsigned shards,
                                  bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    std::uint64_t checksum() const override;

    /** Reference result for validation (same updates, plain C++). */
    static std::uint64_t reference(std::uint64_t table_entries,
                                   std::uint64_t updates,
                                   std::uint64_t seed);

  private:
    static constexpr unsigned kBatch = 128;
    static constexpr unsigned kSwpfDist = 32;

    std::uint64_t lfsrNext(std::uint64_t r) const;

    std::uint64_t tableEntries_;
    std::uint64_t updates_;
    std::uint64_t seed_ = 0;
    std::vector<std::uint64_t> table_;
    std::vector<std::uint64_t> ran_;
};

} // namespace epf

#endif // EPF_WORKLOADS_RANDACC_HPP
