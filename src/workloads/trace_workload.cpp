#include "workloads/trace_workload.hpp"

#include <stdexcept>

namespace epf
{

TraceWorkload::TraceWorkload(const std::string &path)
    : reader_(std::make_unique<TraceReader>(path))
{
    const TraceMeta &m = reader_->meta();
    if (!m.sourceWorkload.empty()) {
        WorkloadScale scale;
        scale.factor = m.scaleFactor;
        inner_ = makeWorkload(m.sourceWorkload, scale);
        // An unknown source name (a trace from a newer/other build) is
        // not an error: fall back to standalone replay.
    }
}

void
TraceWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    // The recorded seed reproduces the capture run's data; the sweep
    // cell's seed is deliberately ignored so a trace replays identically
    // under any grid configuration.
    (void)seed;
    attach(mem);
    const TraceMeta &m = reader_->meta();

    if (inner_) {
        inner_->setup(mem, m.seed);
    } else {
        buffers_.clear();
        buffers_.reserve(m.regions.size());
        for (const auto &r : m.regions) {
            buffers_.emplace_back(r.size, std::byte{0});
            mem.addRegion(r.name, buffers_.back().data(), r.size);
        }
    }

    // Regions are assigned deterministic bases in registration order; a
    // mismatch means the memory image cannot line up with the recorded
    // addresses, so replay timing would be garbage.  Fail loudly.
    const auto &live = mem.regions();
    if (live.size() != m.regions.size())
        throw std::runtime_error(
            "TraceWorkload: region count differs from trace header");
    for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].name != m.regions[i].name ||
            live[i].base != m.regions[i].base ||
            live[i].size != m.regions[i].size)
            throw std::runtime_error(
                "TraceWorkload: region \"" + m.regions[i].name +
                "\" does not match the trace header (source workload "
                "changed since capture?)");
    }
}

Generator<MicroOp>
TraceWorkload::trace(bool with_swpf)
{
    // The stream replays as captured; with_swpf only gates availability
    // (see supportsSoftware()), it cannot add or remove recorded ops.
    (void)with_swpf;
    reader_->rewind();
    TraceRecord rec;
    while (reader_->next(rec)) {
        // Restore the touched line first: the capture snapshot was taken
        // at this op's fetch, after the source generator's host-side
        // mutations for it had run.
        if (rec.payloadLen > 0)
            gmem_->write(lineAlign(rec.addr), rec.payload.data(),
                         rec.payloadLen);

        MicroOp op;
        op.kind = rec.kind;
        op.instrs = rec.instrs;
        op.vaddr = rec.addr;
        op.streamId = rec.streamId;
        op.produces = rec.produces;
        op.deps = {rec.deps[0], rec.deps[1]};
        // PfConfig callbacks are not serialisable; replay charges their
        // timing only (kTraceFlagPfConfig marks such traces).
        co_yield op;
    }
}

void
TraceWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    if (inner_)
        inner_->programManual(ppf);
    // Standalone traces carry no kernels: Manual degrades to an armed
    // but unprogrammed prefetcher.
}

std::vector<std::shared_ptr<LoopIR>>
TraceWorkload::buildIR()
{
    return inner_ ? inner_->buildIR()
                  : std::vector<std::shared_ptr<LoopIR>>{};
}

bool
TraceWorkload::supportsSoftware() const
{
    // The software-prefetch variant is a different op stream; it can
    // only be replayed from a capture that recorded it.
    return reader_->meta().withSwpf();
}

std::uint64_t
TraceWorkload::checksum() const
{
    // The functional result of the recorded run.  It is not recomputed:
    // source workloads accumulate parts of their checksum in host-side
    // scalars the replay does not execute.
    return reader_->meta().workloadChecksum;
}

} // namespace epf
