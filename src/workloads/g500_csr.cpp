#include "workloads/g500_csr.hpp"

#include "isa/builder.hpp"
#include "sim/rng.hpp"

namespace epf
{

G500CsrWorkload::G500CsrWorkload(const WorkloadScale &scale,
                                 unsigned graph_scale, unsigned edgefactor)
    : graphScale_(graph_scale), edgeFactor_(edgefactor)
{
    // The workload scale knob shrinks the graph scale (log2 vertices).
    if (scale.factor < 0.5 && graphScale_ > 12)
        graphScale_ -= 2;
    if (scale.factor < 0.15 && graphScale_ > 12)
        graphScale_ -= 1;
}

void
G500CsrWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    attach(mem);
    Rng rng(seed);
    n_ = std::uint32_t{1} << graphScale_;
    EdgeList edges = rmatEdges(graphScale_, edgeFactor_, rng);
    Csr g = buildCsr(n_, edges, /*symmetrise=*/true);
    rowStart_ = std::move(g.rowStart);
    dest_ = std::move(g.dest);
    m_ = dest_.size();

    parent_.assign(n_, kUnvisited);
    queue_.assign(n_, 0);

    // Root: the first vertex with non-trivial degree (Graph500 samples
    // roots with edges).
    root_ = 0;
    for (std::uint32_t v = 0; v < n_; ++v) {
        if (rowStart_[v + 1] - rowStart_[v] >= 2) {
            root_ = v;
            break;
        }
    }

    mem.addRegion("g500.rowstart", rowStart_.data(),
                  rowStart_.size() * sizeof(std::uint64_t));
    mem.addRegion("g500.dest", dest_.data(),
                  dest_.size() * sizeof(std::uint64_t));
    mem.addRegion("g500.parent", parent_.data(),
                  parent_.size() * sizeof(std::uint64_t));
    mem.addRegion("g500.queue", queue_.data(),
                  queue_.size() * sizeof(std::uint64_t));
}

Generator<MicroOp>
G500CsrWorkload::trace(bool with_swpf)
{
    OpFactory f;

    std::uint64_t qhead = 0, qtail = 0;
    queue_[qtail++] = root_;
    parent_[root_] = root_;
    visited_ = 1;

    while (qhead < qtail) {
        if (with_swpf && qhead + kSwpfDistQ < qtail) {
            // swpf(&rowStart[queue[qhead+dist]])
            ValueId v_q2;
            co_yield f.load(ga(&queue_[qhead + kSwpfDistQ]), 1, v_q2);
            ValueId v_a2;
            co_yield f.workVal(1, v_a2, v_q2);
            co_yield OpFactory::swpf(
                ga(&rowStart_[queue_[qhead + kSwpfDistQ]]), v_a2);
        }

        ValueId v_q;
        co_yield f.load(ga(&queue_[qhead]), 2, v_q);
        const std::uint64_t v = queue_[qhead++];

        ValueId v_s;
        co_yield f.load(ga(&rowStart_[v]), 3, v_s, v_q);
        ValueId v_e;
        co_yield f.load(ga(&rowStart_[v + 1]), 3, v_e, v_q);

        const std::uint64_t start = rowStart_[v];
        const std::uint64_t end = rowStart_[v + 1];
        for (std::uint64_t e = start; e < end; ++e) {
            if (with_swpf && e + kSwpfDistE < end) {
                // swpf(&parent[dest[e+dist]])
                ValueId v_d2;
                co_yield f.load(ga(&dest_[e + kSwpfDistE]), 4, v_d2);
                ValueId v_a2;
                co_yield f.workVal(1, v_a2, v_d2);
                co_yield OpFactory::swpf(
                    ga(&parent_[dest_[e + kSwpfDistE]]), v_a2);
            }
            ValueId v_d;
            co_yield f.load(ga(&dest_[e]), 5, v_d, v_s);
            const std::uint64_t w = dest_[e];
            ValueId v_p;
            co_yield f.load(ga(&parent_[w]), 6, v_p, v_d);
            co_yield OpFactory::workDep(2, v_p);
            const bool unvisited = parent_[w] == kUnvisited;
            // The visited check depends on the gathered parent entry; a
            // last-outcome predictor misses whenever it flips.
            if (unvisited != prevUnvisited_) {
                prevUnvisited_ = unvisited;
                co_yield OpFactory::branchMiss(v_p);
            }
            if (unvisited) {
                parent_[w] = v;
                ++visited_;
                co_yield OpFactory::store(ga(&parent_[w]), 7, v_p);
                queue_[qtail] = w;
                co_yield OpFactory::store(ga(&queue_[qtail]), 8, v_p);
                ++qtail;
            }
        }
        // Edge-loop exit mispredicts when the degree changes.
        const std::uint64_t deg = end - start;
        if (deg != prevDegree_) {
            prevDegree_ = deg;
            co_yield OpFactory::branchMiss(v_e);
        }
    }
}

void
G500CsrWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    const Addr q_base = ga(queue_.data());
    const Addr row_base = ga(rowStart_.data());
    const Addr dest_base = ga(dest_.data());
    const Addr par_base = ga(parent_.data());

    const unsigned g_q = ppf.allocGlobal(q_base);
    const unsigned g_row = ppf.allocGlobal(row_base);
    const unsigned g_dest = ppf.allocGlobal(dest_base);
    const unsigned g_par = ppf.allocGlobal(par_base);

    // on_edges_prefetch (tag kernel): an edge line arrived; gather the
    // visited/parent entry of each of its eight targets.
    KernelBuilder kedge("on_edges_prefetch");
    {
        KernelBuilder::Label loop = kedge.newLabel();
        kedge.li(1, 0)         // byte offset in line
            .gread(2, g_par)
            .li(3, kLineBytes)
            .bind(loop)
            .ldLine(4, 1, 0)   // edge target
            .shli(4, 4, 3)
            .add(4, 4, 2)
            .prefetch(4)
            .addi(1, 1, 8)
            .blt(1, 3, loop)
            .halt();
    }
    KernelId k_edge = ppf.kernels().add(kedge.build());
    std::int32_t tag_edges = ppf.registerTag(k_edge);

    // on_vertex_prefetch: row bounds arrived; prefetch the data-
    // dependent range of edge lines (clamped), tagging them so their
    // fills gather parents.  This loop over a loaded range is exactly
    // what the compiler passes cannot generate (Section 7.1).
    KernelBuilder kvtx("on_vertex_prefetch");
    {
        KernelBuilder::Label clamp_lo = kvtx.newLabel();
        KernelBuilder::Label clamp_hi = kvtx.newLabel();
        KernelBuilder::Label loop = kvtx.newLabel();
        kvtx.vaddr(1)
            .ldLine(2, 1, 0)  // start index
            .ldLine(3, 1, 8)  // end index (same line for 7 of 8 vertices)
            .sub(4, 3, 2)     // edge count
            .li(5, 1)
            .bge(4, 5, clamp_lo)
            // r4 = r5 / r5 = 1: same one-cycle effect as mov(4, 5),
            // but a register-divisor div is a may-trap instruction
            // until the value analysis proves r5 == 1 here — this is
            // the shipped consumer of that proof (the decoder marks
            // the pc trap-free; dataflow_test pins it).
            .div(4, 5, 5)
            .bind(clamp_lo)
            .li(5, kMaxEdgeLines * 8)
            .blt(4, 5, clamp_hi)
            .mov(4, 5)
            .bind(clamp_hi)
            // r6 = &dest[start], r4 = end byte address
            .gread(6, g_dest)
            .shli(2, 2, 3)
            .add(6, 6, 2)
            .shli(4, 4, 3)
            .add(4, 6, 4)
            .bind(loop)
            .prefetchTag(6, tag_edges)
            .addi(6, 6, kLineBytes)
            .blt(6, 4, loop)
            .halt();
    }
    KernelId k_vtx = ppf.kernels().add(kvtx.build());

    // on_queue_prefetch: a future queue entry arrived; fetch its row.
    KernelBuilder kqpf("on_queue_prefetch");
    kqpf.vaddr(1)
        .ldLine(2, 1, 0)
        .shli(2, 2, 3)
        .gread(3, g_row)
        .add(2, 2, 3)
        .prefetchCb(2, k_vtx)
        .halt();
    KernelId k_qpf = ppf.kernels().add(kqpf.build());

    // on_queue_load: EWMA lookahead into the FIFO queue.
    KernelBuilder kql("on_queue_load");
    kql.vaddr(1)
        .gread(2, g_q)
        .sub(1, 1, 2)
        .shri(1, 1, 3)
        .lookahead(3, 0)
        .add(1, 1, 3)
        .shli(1, 1, 3)
        .add(1, 1, 2)
        .prefetchCb(1, k_qpf)
        .halt();
    KernelId k_ql = ppf.kernels().add(kql.build());

    FilterEntry fq;
    fq.name = "queue";
    fq.base = q_base;
    fq.limit = q_base + static_cast<std::uint64_t>(n_) * 8;
    fq.onLoad = k_ql;
    fq.timeSource = true;
    fq.timedStart = true;
    ppf.addFilter(fq);

    // Time the first hop of the chain (queue -> vertex row bounds): the
    // full chain's latency includes its own queueing, which would feed
    // back into ever-larger lookahead and thrash the L1.
    FilterEntry fv;
    fv.name = "rowstart";
    fv.base = row_base;
    fv.limit = row_base + (static_cast<std::uint64_t>(n_) + 1) * 8;
    fv.timedEnd = true;
    ppf.addFilter(fv);

    (void)g_q;
}

std::vector<std::shared_ptr<LoopIR>>
G500CsrWorkload::buildIR()
{
    // Outer loop: over the FIFO queue.
    auto outer = std::make_shared<LoopIR>();
    {
        IrNode *q_b = outer->addArray("queue", ga(queue_.data()), 8, n_);
        IrNode *row_b = outer->addArray("rowstart", ga(rowStart_.data()),
                                        8, n_ + 1);
        IrNode *dest_b =
            outer->addArray("dest", ga(dest_.data()), 8, m_);
        IrNode *par_b =
            outer->addArray("parent", ga(parent_.data()), 8, n_);
        IrNode *x = outer->indVar();

        IrNode *qv = outer->load(outer->index(q_b, x, 8), 8, "queue");
        (void)outer->load(outer->index(row_b, qv, 8), 8, "rowstart");

        // swpf(&rowStart[queue[x+8]]) plus "first N" edge/parent
        // prefetches via nested dereferences (fixed N — the data-
        // dependent range cannot be expressed, Section 7.1).
        IrNode *q2 = outer->loadForSwpf(
            outer->index(q_b,
                         outer->bin(IrBin::kAdd, x,
                                    outer->cnst(kSwpfDistQ)),
                         8),
            8, "queue_pf");
        IrNode *row_addr = outer->index(row_b, q2, 8);
        outer->swpf(row_addr);
        IrNode *s = outer->loadForSwpf(row_addr, 8, "rowstart_pf");
        // First two lines of edges.
        IrNode *edge0 = outer->index(dest_b, s, 8);
        outer->swpf(edge0);
        outer->swpf(outer->bin(IrBin::kAdd, edge0, outer->cnst(64)));
        // Parent of the first edge.
        IrNode *d0 = outer->loadForSwpf(edge0, 8, "dest_pf");
        outer->swpf(outer->index(par_b, d0, 8));
    }

    // Inner loop: over the edge array.
    auto inner = std::make_shared<LoopIR>();
    {
        IrNode *dest_b = inner->addArray("dest", ga(dest_.data()), 8, m_);
        IrNode *par_b =
            inner->addArray("parent", ga(parent_.data()), 8, n_);
        IrNode *e = inner->indVar();
        IrNode *d = inner->load(inner->index(dest_b, e, 8), 8, "dest");
        (void)inner->load(inner->index(par_b, d, 8), 8, "parent");

        IrNode *d2 = inner->loadForSwpf(
            inner->index(dest_b,
                         inner->bin(IrBin::kAdd, e,
                                    inner->cnst(kSwpfDistE)),
                         8),
            8, "dest_pf");
        inner->swpf(inner->index(par_b, d2, 8));
    }

    return {outer, inner};
}

std::uint64_t
G500CsrWorkload::checksum() const
{
    std::uint64_t x = visited_;
    for (std::uint64_t p : parent_)
        x = x * 31 + (p == kUnvisited ? 7 : p);
    return x;
}

} // namespace epf
