#include "workloads/graph_gen.hpp"

#include <algorithm>
#include <cmath>

namespace epf
{

EdgeList
rmatEdges(unsigned scale, unsigned edgefactor, Rng &rng)
{
    const std::uint64_t n = std::uint64_t{1} << scale;
    const std::uint64_t m = n * edgefactor;
    EdgeList edges;
    edges.reserve(m);

    // Standard Graph500 Kronecker parameters.
    const double a = 0.57, b = 0.19, c = 0.19;
    const double ab = a + b;
    const double abc = a + b + c;

    for (std::uint64_t e = 0; e < m; ++e) {
        std::uint64_t u = 0, v = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            double r = rng.uniform();
            std::uint64_t ubit = 0, vbit = 0;
            if (r < a) {
                // top-left
            } else if (r < ab) {
                vbit = 1;
            } else if (r < abc) {
                ubit = 1;
            } else {
                ubit = 1;
                vbit = 1;
            }
            u = (u << 1) | ubit;
            v = (v << 1) | vbit;
        }
        edges.emplace_back(static_cast<std::uint32_t>(u),
                           static_cast<std::uint32_t>(v));
    }

    // Graph500 permutes vertex labels to destroy locality.
    std::vector<std::uint32_t> perm(n);
    for (std::uint64_t i = 0; i < n; ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = n - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    for (auto &[u, v] : edges) {
        u = perm[u];
        v = perm[v];
    }
    return edges;
}

EdgeList
powerLawEdges(std::uint32_t nodes, std::uint64_t num_edges, Rng &rng)
{
    EdgeList edges;
    edges.reserve(num_edges);
    // Zipf-ish destination distribution via inverse power sampling;
    // sources roughly uniform (each page links out a few times).
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        std::uint32_t u = static_cast<std::uint32_t>(rng.below(nodes));
        double r = rng.uniform();
        // dst rank ~ r^3 concentrates edges on few hot pages.
        auto dst_rank = static_cast<std::uint32_t>(
            static_cast<double>(nodes - 1) * r * r * r);
        // Hash the rank so hot pages are scattered through memory.
        std::uint32_t v = static_cast<std::uint32_t>(
            splitmix64(dst_rank) % nodes);
        edges.emplace_back(u, v);
    }
    std::sort(edges.begin(), edges.end());
    return edges;
}

Csr
buildCsr(std::uint32_t n, const EdgeList &edges, bool symmetrise)
{
    Csr g;
    g.n = n;
    g.rowStart.assign(static_cast<std::size_t>(n) + 1, 0);

    auto count = [&](std::uint32_t u) { ++g.rowStart[u + 1]; };
    for (const auto &[u, v] : edges) {
        if (u == v)
            continue; // Graph500 drops self loops
        count(u);
        if (symmetrise)
            count(v);
    }
    for (std::uint32_t i = 0; i < n; ++i)
        g.rowStart[i + 1] += g.rowStart[i];

    g.dest.resize(g.rowStart[n]);
    std::vector<std::uint64_t> fill(g.rowStart.begin(),
                                    g.rowStart.end() - 1);
    for (const auto &[u, v] : edges) {
        if (u == v)
            continue;
        g.dest[fill[u]++] = v;
        if (symmetrise)
            g.dest[fill[v]++] = u;
    }
    return g;
}

} // namespace epf
