/**
 * @file
 * G500-CSR: Graph500 breadth-first search over compressed sparse rows.
 *
 * Pattern (Table 2): BFS (arrays).  The queue is streamed; each dequeued
 * vertex's row bounds are loaded from the vertex array; its edges are
 * streamed from the edge array; and the visited/parent array is gathered
 * per edge.  Manual PPU kernels fetch a data-dependent *range* of edges
 * (a loop the compiler passes cannot express) and chase every edge's
 * parent entry, with EWMA-driven lookahead in the queue.
 */

#ifndef EPF_WORKLOADS_G500_CSR_HPP
#define EPF_WORKLOADS_G500_CSR_HPP

#include <vector>

#include "workloads/graph_gen.hpp"
#include "workloads/workload.hpp"

namespace epf
{

/** The G500-CSR workload. */
class G500CsrWorkload : public Workload
{
  public:
    explicit G500CsrWorkload(const WorkloadScale &scale = {},
                             unsigned graph_scale = 17,
                             unsigned edgefactor = 8);

    std::string name() const override { return "G500-CSR"; }
    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    std::uint64_t checksum() const override;

    std::uint64_t verticesVisited() const { return visited_; }

  private:
    static constexpr std::uint64_t kUnvisited = ~std::uint64_t{0};
    static constexpr unsigned kSwpfDistQ = 8;  ///< queue entries ahead
    static constexpr unsigned kSwpfDistE = 16; ///< edges ahead
    /** Edge lines the manual vertex kernel prefetches at most. */
    static constexpr unsigned kMaxEdgeLines = 16;

    unsigned graphScale_;
    unsigned edgeFactor_;
    std::uint32_t n_ = 0;
    std::uint64_t m_ = 0;

    std::vector<std::uint64_t> rowStart_;
    std::vector<std::uint64_t> dest_;
    std::vector<std::uint64_t> parent_;
    std::vector<std::uint64_t> queue_;
    std::uint32_t root_ = 0;
    std::uint64_t visited_ = 0;
    /** Last-outcome branch-predictor state (trace generation). */
    bool prevUnvisited_ = false;
    std::uint64_t prevDegree_ = 0;
};

} // namespace epf

#endif // EPF_WORKLOADS_G500_CSR_HPP
