#include "workloads/g500_list.hpp"

#include "isa/builder.hpp"
#include "sim/rng.hpp"

namespace epf
{

G500ListWorkload::G500ListWorkload(const WorkloadScale &scale,
                                   unsigned graph_scale,
                                   unsigned edgefactor)
    : graphScale_(graph_scale), edgeFactor_(edgefactor)
{
    if (scale.factor < 0.5 && graphScale_ > 11)
        graphScale_ -= 1;
    if (scale.factor < 0.15 && graphScale_ > 11)
        graphScale_ -= 1;
}

void
G500ListWorkload::setup(GuestMemory &mem, std::uint64_t seed)
{
    attach(mem);
    Rng rng(seed);
    n_ = std::uint32_t{1} << graphScale_;
    EdgeList edges = rmatEdges(graphScale_, edgeFactor_, rng);

    // Count directed (symmetrised) edges to size the node pool.
    std::uint64_t directed = 0;
    for (const auto &[u, v] : edges) {
        if (u != v)
            directed += 2;
    }
    pool_.assign(directed, EdgeNode{});
    vertices_.assign(n_, Vertex{});
    parent_.assign(n_, kUnvisited);
    queue_.assign(n_, 0);

    // Regions first: the adjacency links are guest addresses, so the
    // pool's guest base must be known before the lists are built.
    mem.addRegion("g500l.vertices", vertices_.data(),
                  vertices_.size() * sizeof(Vertex));
    poolBase_ = mem.addRegion("g500l.pool", pool_.data(),
                              pool_.size() * sizeof(EdgeNode));
    mem.addRegion("g500l.parent", parent_.data(),
                  parent_.size() * sizeof(std::uint64_t));
    mem.addRegion("g500l.queue", queue_.data(),
                  queue_.size() * sizeof(std::uint64_t));

    // Scatter-allocate nodes from a shuffled pool.
    std::vector<std::uint64_t> perm(directed);
    for (std::uint64_t i = 0; i < directed; ++i)
        perm[i] = i;
    for (std::uint64_t i = directed - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);

    std::uint64_t slot = 0;
    auto link = [&](std::uint32_t from, std::uint32_t to) {
        const std::uint64_t idx = perm[slot++];
        EdgeNode &node = pool_[idx];
        node.dst = to;
        node.next = vertices_[from].head;
        vertices_[from].head = poolBase_ + idx * sizeof(EdgeNode);
        vertices_[from].degree += 1;
    };
    for (const auto &[u, v] : edges) {
        if (u == v)
            continue;
        link(u, v);
        link(v, u);
    }
    m_ = directed;

    // Distinct BFS roots with usable degree.
    roots_.clear();
    for (std::uint32_t v = 0; v < n_ && roots_.size() < kBfsRuns; ++v) {
        if (vertices_[v].degree >= 2)
            roots_.push_back(v);
    }
}

Generator<MicroOp>
G500ListWorkload::trace(bool with_swpf)
{
    OpFactory f;
    visitedTotal_ = 0;

    for (unsigned run = 0; run < roots_.size(); ++run) {
        // Reset the parent array (streaming stores, stride friendly).
        for (std::uint32_t i = 0; i < n_; ++i) {
            parent_[i] = kUnvisited;
            if ((i & 7) == 0)
                co_yield OpFactory::store(ga(&parent_[i]), 9);
        }

        const std::uint32_t root = roots_[run];
        std::uint64_t qhead = 0, qtail = 0;
        queue_[qtail++] = root;
        parent_[root] = root;
        ++visitedTotal_;

        while (qhead < qtail) {
            if (with_swpf && qhead + kSwpfDistQ < qtail) {
                ValueId v_q2;
                co_yield f.load(ga(&queue_[qhead + kSwpfDistQ]), 1, v_q2);
                ValueId v_a2;
                co_yield f.workVal(1, v_a2, v_q2);
                co_yield OpFactory::swpf(
                    ga(&vertices_[queue_[qhead + kSwpfDistQ]]), v_a2);
            }

            ValueId v_q;
            co_yield f.load(ga(&queue_[qhead]), 2, v_q);
            const std::uint64_t v = queue_[qhead++];

            ValueId v_h;
            co_yield f.load(ga(&vertices_[v]), 3, v_h, v_q);

            ValueId v_prev = v_h;
            unsigned len = 0;
            for (Addr l = vertices_[v].head; l != 0;
                 l = nodeAt(l).next) {
                ++len;
                // The node load: dst and next live in one line; its
                // address came from the previous node (pointer chase).
                ValueId v_n;
                co_yield f.load(l, 4, v_n, v_prev);
                const std::uint64_t w = nodeAt(l).dst;
                ValueId v_p;
                co_yield f.load(ga(&parent_[w]), 5, v_p, v_n);
                co_yield OpFactory::workDep(2, v_p);
                const bool unvisited = parent_[w] == kUnvisited;
                if (unvisited != prevUnvisited_) {
                    prevUnvisited_ = unvisited;
                    co_yield OpFactory::branchMiss(v_p);
                }
                if (unvisited) {
                    parent_[w] = v;
                    ++visitedTotal_;
                    co_yield OpFactory::store(ga(&parent_[w]), 6, v_p);
                    queue_[qtail] = w;
                    co_yield OpFactory::store(ga(&queue_[qtail]), 7, v_p);
                    ++qtail;
                }
                v_prev = v_n;
            }
            // List-exit branch: resolves on the last node's next field.
            if (len != prevLen_) {
                prevLen_ = len;
                co_yield OpFactory::branchMiss(v_prev);
            }
        }
    }
}

void
G500ListWorkload::programManual(ProgrammablePrefetcher &ppf)
{
    const Addr q_base = ga(queue_.data());
    const Addr vtx_base = ga(vertices_.data());
    const Addr par_base = ga(parent_.data());

    const unsigned g_q = ppf.allocGlobal(q_base);
    const unsigned g_vtx = ppf.allocGlobal(vtx_base);
    const unsigned g_par = ppf.allocGlobal(par_base);

    // on_node_prefetch (tag kernel): gather this node's parent entry and
    // chase the next pointer until null — the sequential chain that caps
    // this benchmark's speedup.
    KernelBuilder knode("on_node_prefetch");
    {
        KernelBuilder::Label done = knode.newLabel();
        knode.vaddr(1)
            .ldLine(2, 1, 0) // dst
            .shli(2, 2, 3)
            .gread(3, g_par)
            .add(2, 2, 3)
            .prefetch(2)     // parent[dst]
            .ldLine(4, 1, 8) // next
            .li(5, 0)
            .beq(4, 5, done);
        knode.prefetchTag(4, /*tag placeholder*/ 0);
        knode.bind(done).halt();
    }
    KernelId k_node = ppf.kernels().add(knode.build());
    std::int32_t tag_node = ppf.registerTag(k_node);
    for (auto &in : ppf.kernels().mutableKernel(k_node).code) {
        if (in.op == Opcode::kPrefetchTag)
            in.imm = tag_node;
    }

    // on_vertex_prefetch: start the list walk from the head pointer.
    KernelBuilder kvtx("on_vertex_prefetch");
    {
        KernelBuilder::Label done = kvtx.newLabel();
        kvtx.vaddr(1)
            .ldLine(2, 1, 0) // head
            .li(3, 0)
            .beq(2, 3, done)
            .prefetchTag(2, tag_node)
            .bind(done)
            .halt();
    }
    KernelId k_vtx = ppf.kernels().add(kvtx.build());

    // on_queue_prefetch: future queue entry -> vertex header.
    KernelBuilder kqpf("on_queue_prefetch");
    kqpf.vaddr(1)
        .ldLine(2, 1, 0)
        .shli(2, 2, 4) // 16-byte Vertex
        .gread(3, g_vtx)
        .add(2, 2, 3)
        .prefetchCb(2, k_vtx)
        .halt();
    KernelId k_qpf = ppf.kernels().add(kqpf.build());

    KernelBuilder kql("on_queue_load");
    kql.vaddr(1)
        .gread(2, g_q)
        .sub(1, 1, 2)
        .shri(1, 1, 3)
        .lookahead(3, 0)
        .add(1, 1, 3)
        .shli(1, 1, 3)
        .add(1, 1, 2)
        .prefetchCb(1, k_qpf)
        .halt();
    KernelId k_ql = ppf.kernels().add(kql.build());

    FilterEntry fq;
    fq.name = "queue";
    fq.base = q_base;
    fq.limit = q_base + static_cast<std::uint64_t>(n_) * 8;
    fq.onLoad = k_ql;
    fq.timeSource = true;
    fq.timedStart = true;
    ppf.addFilter(fq);

    // First-hop chain timing (queue -> vertex header), as in G500-CSR.
    FilterEntry fv;
    fv.name = "vertices";
    fv.base = vtx_base;
    fv.limit = vtx_base + static_cast<std::uint64_t>(n_) * sizeof(Vertex);
    fv.timedEnd = true;
    ppf.addFilter(fv);
}

std::vector<std::shared_ptr<LoopIR>>
G500ListWorkload::buildIR()
{
    auto ir = std::make_shared<LoopIR>();
    IrNode *q_b = ir->addArray("queue", ga(queue_.data()), 8, n_);
    IrNode *vtx_b = ir->addArray("vertices", ga(vertices_.data()),
                                 sizeof(Vertex), n_);
    IrNode *x = ir->indVar();

    IrNode *qv = ir->load(ir->index(q_b, x, 8), 8, "queue");
    (void)ir->load(ir->index(vtx_b, qv, sizeof(Vertex)), 8, "vertex");

    // The list walk: a loop-carried pointer phi defeats both passes.
    IrNode *l = ir->phi("l");
    (void)ir->load(l, 8, "node");

    // swpf(&vertices[queue[x+8]]) and the first node via a dereference.
    IrNode *q2 = ir->loadForSwpf(
        ir->index(q_b, ir->bin(IrBin::kAdd, x, ir->cnst(kSwpfDistQ)), 8),
        8, "queue_pf");
    IrNode *vtx_addr = ir->index(vtx_b, q2, sizeof(Vertex));
    ir->swpf(vtx_addr);
    IrNode *head = ir->loadForSwpf(vtx_addr, 8, "head_ptr");
    ir->swpf(head);

    return {ir};
}

std::uint64_t
G500ListWorkload::checksum() const
{
    std::uint64_t x = visitedTotal_;
    for (std::uint64_t p : parent_)
        x = x * 31 + (p == kUnvisited ? 7 : p);
    return x;
}

} // namespace epf
