/**
 * @file
 * G500-List: Graph500 BFS over linked-list adjacency structures.
 *
 * Pattern (Table 2): BFS (lists).  Each vertex holds the head of a
 * linked list of edge nodes, scatter-allocated through memory.  Walking
 * a list is inherently sequential — each node's address comes from the
 * previous node — which caps the memory-level parallelism any prefetcher
 * can extract (the paper's lowest speedup, with low L1 utilisation but a
 * large L2 benefit).  Several BFS runs from different roots repeat the
 * per-vertex miss sequences, which is what lets GHB-large help here.
 */

#ifndef EPF_WORKLOADS_G500_LIST_HPP
#define EPF_WORKLOADS_G500_LIST_HPP

#include <vector>

#include "workloads/graph_gen.hpp"
#include "workloads/workload.hpp"

namespace epf
{

/** The G500-List workload. */
class G500ListWorkload : public Workload
{
  public:
    explicit G500ListWorkload(const WorkloadScale &scale = {},
                              unsigned graph_scale = 14,
                              unsigned edgefactor = 16);

    std::string name() const override { return "G500-List"; }
    void setup(GuestMemory &mem, std::uint64_t seed) override;
    Generator<MicroOp> trace(bool with_swpf) override;
    void programManual(ProgrammablePrefetcher &ppf) override;
    std::vector<std::shared_ptr<LoopIR>> buildIR() override;
    std::uint64_t checksum() const override;

  private:
    /** An edge-list node (32 B, scatter-allocated).  Links are *guest*
     *  addresses (0 = null): the PPU kernels read them straight out of
     *  fetched lines, so they must live in the guest address space. */
    struct EdgeNode
    {
        std::uint64_t dst = 0;
        Addr next = 0;
        std::uint64_t pad0 = 0;
        std::uint64_t pad1 = 0;
    };

    /** Per-vertex list header (16 B). */
    struct Vertex
    {
        Addr head = 0; ///< guest address of the first node (0 = empty)
        std::uint64_t degree = 0;
    };

    /** The node behind a guest chain address. */
    const EdgeNode &
    nodeAt(Addr a) const
    {
        return pool_[(a - poolBase_) / sizeof(EdgeNode)];
    }

    static constexpr std::uint64_t kUnvisited = ~std::uint64_t{0};
    static constexpr unsigned kSwpfDistQ = 8;
    static constexpr unsigned kBfsRuns = 2;

    unsigned graphScale_;
    unsigned edgeFactor_;
    std::uint32_t n_ = 0;
    std::uint64_t m_ = 0;

    std::vector<Vertex> vertices_;
    std::vector<EdgeNode> pool_;
    Addr poolBase_ = 0; ///< guest base of pool_
    std::vector<std::uint64_t> parent_;
    std::vector<std::uint64_t> queue_;
    std::vector<std::uint32_t> roots_;
    std::uint64_t visitedTotal_ = 0;
    /** Last-outcome branch-predictor state (trace generation). */
    bool prevUnvisited_ = false;
    unsigned prevLen_ = 0;
};

} // namespace epf

#endif // EPF_WORKLOADS_G500_LIST_HPP
